// Package netsim shapes real network connections to a modelled bandwidth
// and latency on a virtual clock. The full protocol stack (SOAP, GRAM,
// GridFTP, MyProxy) runs over genuine loopback TCP sockets; this package
// only paces writes and accounts bytes, so transfer durations match the
// modelled link (e.g. the paper's ~85 KB/s WAN path to the TeraGrid node)
// while payloads stay byte-for-byte real.
package netsim

import (
	"context"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

// Link is a unidirectional fluid-FIFO bandwidth model shared by every
// connection that sends across it. Concurrent senders serialise in FIFO
// order, which reproduces the contention the paper's stress-test
// discussion predicts for "multiple simultaneous up- and downloads".
type Link struct {
	clock vtime.Clock
	bps   float64

	mu       sync.Mutex
	nextFree time.Time
}

// NewLink returns a link carrying bps bytes per second of virtual time.
// A non-positive bps means unshaped (infinite bandwidth).
func NewLink(clock vtime.Clock, bps float64) *Link {
	return &Link{clock: clock, bps: bps}
}

// Bps reports the configured bandwidth (0 = unshaped).
func (l *Link) Bps() float64 {
	if l == nil {
		return 0
	}
	return l.bps
}

// take blocks until n bytes may enter the link, returning the virtual
// instant the last byte clears it.
//
// Sleeps shorter than the clock's useful granularity are skipped: the
// outstanding pacing debt stays in nextFree and is paid on a later call.
// Without this, time-dilated runs would pay ~1ms of real scheduler
// overhead per 4 KiB chunk and throughput would collapse far below the
// modelled bandwidth.
func (l *Link) take(n int) time.Time {
	now := l.clock.Now()
	if l == nil || l.bps <= 0 || n <= 0 {
		return now
	}
	d := time.Duration(float64(n) / l.bps * float64(time.Second))
	ms := minSleep(l.clock)
	window := 4 * ms
	if window < 50*time.Millisecond {
		window = 50 * time.Millisecond
	}
	l.mu.Lock()
	// Re-anchor only after genuine idleness. While a transfer is in
	// flight, sleep overshoot leaves now slightly past nextFree; keeping
	// the schedule anchored to nextFree lets the next chunk claim the
	// missed model time, so the long-run rate is exactly bps.
	if now.Sub(l.nextFree) > window {
		l.nextFree = now
	}
	l.nextFree = l.nextFree.Add(d)
	clear := l.nextFree
	l.mu.Unlock()
	if wait := clear.Sub(now); wait >= ms {
		l.clock.Sleep(wait)
	}
	return clear
}

// minSleeper is implemented by clocks that know the shortest Sleep they
// can honour with acceptable accuracy (expressed in the clock's own time).
type minSleeper interface {
	MinSleep() time.Duration
}

func minSleep(c vtime.Clock) time.Duration {
	if ms, ok := c.(minSleeper); ok {
		return ms.MinSleep()
	}
	return 0
}

// Profile bundles the two directions of a path plus a one-way latency
// charged at connection setup.
type Profile struct {
	Name    string
	Up      *Link // traffic from the dialing side toward the listener
	Down    *Link // traffic from the listener back to the dialer
	Latency time.Duration
	clock   vtime.Clock
}

// NewProfile builds a Profile with fresh links.
func NewProfile(clock vtime.Clock, name string, upBps, downBps float64, latency time.Duration) *Profile {
	return &Profile{
		Name:    name,
		Up:      NewLink(clock, upBps),
		Down:    NewLink(clock, downBps),
		Latency: latency,
		clock:   clock,
	}
}

// WAN returns the paper's wide-area path to a TeraGrid node: the measured
// transfer rate was "almost constant ... at about 80 to 90 KB/s".
func WAN(clock vtime.Clock) *Profile {
	return NewProfile(clock, "wan", 85<<10, 85<<10, 60*time.Millisecond)
}

// LAN returns the paper's local network: "the used network operates at
// 1000Mbit/s".
func LAN(clock vtime.Clock) *Profile {
	return NewProfile(clock, "lan", 125<<20, 125<<20, 200*time.Microsecond)
}

// Unshaped returns a pass-through profile (tests, in-process wiring).
func Unshaped(clock vtime.Clock) *Profile {
	return NewProfile(clock, "unshaped", 0, 0, 0)
}

// writeChunk is the pacing granularity. Small enough that multi-second
// transfers spread smoothly across 3-second sample buckets.
const writeChunk = 4 << 10

// Conn is a net.Conn whose writes are paced by a Link and whose traffic is
// accounted to a metrics probe.
type Conn struct {
	net.Conn
	clock vtime.Clock
	tx    *Link
	probe *metrics.Probe
}

// Wrap shapes c: writes are paced on tx, and both directions are
// accounted to probe (which may be nil).
func Wrap(c net.Conn, clock vtime.Clock, tx *Link, probe *metrics.Probe) *Conn {
	return &Conn{Conn: c, clock: clock, tx: tx, probe: probe}
}

// Write paces the payload through the link in chunks, accounting each
// chunk as it clears.
func (c *Conn) Write(p []byte) (int, error) {
	var total int
	for len(p) > 0 {
		n := len(p)
		if n > writeChunk {
			n = writeChunk
		}
		at := c.tx.take(n)
		w, err := c.Conn.Write(p[:n])
		if w > 0 {
			c.probe.NetOut(at, w)
			total += w
		}
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

// Read accounts received bytes at arrival time.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.probe.NetIn(c.clock.Now(), n)
	}
	return n, err
}

// Listener wraps Accept so every inbound connection is shaped on the
// profile's Down link (server→client direction) and accounted to probe.
type Listener struct {
	net.Listener
	profile *Profile
	probe   *metrics.Probe
}

// NewListener shapes l with profile, accounting traffic to probe.
func NewListener(l net.Listener, profile *Profile, probe *metrics.Probe) *Listener {
	return &Listener{Listener: l, profile: profile, probe: probe}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(c, l.profile.clock, l.profile.Down, l.probe), nil
}

// Dialer produces shaped client connections: writes are paced on the
// profile's Up link and connection setup pays one latency.
type Dialer struct {
	Profile *Profile
	Probe   *metrics.Probe
	// Base performs the underlying dial; defaults to net.Dialer.
	Base func(ctx context.Context, network, addr string) (net.Conn, error)
}

// DialContext dials and wraps. It satisfies the signature of
// http.Transport.DialContext.
func (d *Dialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	base := d.Base
	if base == nil {
		var nd net.Dialer
		base = nd.DialContext
	}
	c, err := base(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	if d.Profile.Latency > 0 {
		d.Profile.clock.Sleep(d.Profile.Latency)
	}
	return Wrap(c, d.Profile.clock, d.Profile.Up, d.Probe), nil
}
