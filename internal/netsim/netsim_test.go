package netsim

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

func TestLinkPacesToBandwidth(t *testing.T) {
	clk := vtime.NewScaled(100)
	l := NewLink(clk, 1<<20) // 1 MiB/s virtual
	start := clk.Now()
	l.take(1 << 20)
	elapsed := clk.Now().Sub(start)
	if elapsed < 900*time.Millisecond || elapsed > 1500*time.Millisecond {
		t.Fatalf("1 MiB at 1 MiB/s took %v virtual, want ~1s", elapsed)
	}
}

func TestUnshapedLinkInstant(t *testing.T) {
	clk := vtime.NewManual(time.Unix(0, 0))
	l := NewLink(clk, 0)
	done := make(chan struct{})
	go func() { l.take(1 << 30); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("unshaped take blocked")
	}
}

func TestLinkSerialisesConcurrentSenders(t *testing.T) {
	clk := vtime.NewScaled(100)
	l := NewLink(clk, 1<<20)
	start := clk.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); l.take(512 << 10) }()
	}
	wg.Wait()
	// 4 x 0.5 MiB at 1 MiB/s must take ~2 virtual seconds in aggregate.
	elapsed := clk.Now().Sub(start)
	if elapsed < 1800*time.Millisecond {
		t.Fatalf("shared link finished in %v, want >= ~2s", elapsed)
	}
}

func TestNilLinkBps(t *testing.T) {
	var l *Link
	if l.Bps() != 0 {
		t.Fatal("nil link should report 0 bps")
	}
}

// pipeEnds returns a connected TCP pair on loopback so Conn semantics
// (buffered writes) match production use.
func pipeEnds(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			done <- c
		}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server = <-done
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestConnRoundTripPreservesBytes(t *testing.T) {
	clk := vtime.NewScaled(5000)
	c, s := pipeEnds(t)
	link := NewLink(clk, 256<<10)
	sc := Wrap(c, clk, link, nil)
	payload := bytes.Repeat([]byte("cyberaide"), 4000) // 36 KB
	go func() {
		sc.Write(payload)
		c.(*net.TCPConn).CloseWrite()
	}()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d bytes want %d", len(got), len(payload))
	}
}

func TestConnAccountsTraffic(t *testing.T) {
	clk := vtime.NewScaled(5000)
	rec := metrics.NewRecorder(clk, 3*time.Second)
	probe := metrics.NewProbe(rec)
	c, s := pipeEnds(t)
	sc := Wrap(c, clk, NewLink(clk, 0), probe)
	rs := Wrap(s, clk, NewLink(clk, 0), probe)
	msg := make([]byte, 10_000)
	go func() { sc.Write(msg); c.(*net.TCPConn).CloseWrite() }()
	if _, err := io.ReadAll(rs); err != nil {
		t.Fatal(err)
	}
	if got := rec.Total(metrics.NetOut); got != 10_000 {
		t.Fatalf("net out %v, want 10000", got)
	}
	if got := rec.Total(metrics.NetIn); got != 10_000 {
		t.Fatalf("net in %v, want 10000", got)
	}
}

func TestTransferDurationMatchesModel(t *testing.T) {
	clk := vtime.NewScaled(100)
	c, s := pipeEnds(t)
	link := NewLink(clk, 85<<10) // the paper's WAN rate
	sc := Wrap(c, clk, link, nil)
	size := 256 << 10 // 256 KB should take ~3 virtual seconds
	start := clk.Now()
	go func() { io.Copy(io.Discard, s) }()
	if _, err := sc.Write(make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now().Sub(start)
	want := time.Duration(float64(size) / float64(85<<10) * float64(time.Second))
	if elapsed < want*8/10 || elapsed > want*15/10 {
		t.Fatalf("transfer took %v virtual, want ~%v", elapsed, want)
	}
}

func TestProfilesHaveExpectedRates(t *testing.T) {
	clk := vtime.Real{}
	wan := WAN(clk)
	if wan.Up.Bps() != 85<<10 || wan.Down.Bps() != 85<<10 {
		t.Fatalf("wan rates: up %v down %v", wan.Up.Bps(), wan.Down.Bps())
	}
	lan := LAN(clk)
	if lan.Up.Bps() != 125<<20 {
		t.Fatalf("lan up rate %v", lan.Up.Bps())
	}
	un := Unshaped(clk)
	if un.Up.Bps() != 0 || un.Latency != 0 {
		t.Fatal("unshaped profile should carry no shaping")
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	clk := vtime.NewScaled(5000)
	rec := metrics.NewRecorder(clk, 3*time.Second)
	probe := metrics.NewProbe(rec)
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewListener(base, Unshaped(clk), probe)
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(io.Discard, c)
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Write(make([]byte, 5000))
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for rec.Total(metrics.NetIn) < 5000 {
		if time.Now().After(deadline) {
			t.Fatalf("listener-side accounting saw %v bytes", rec.Total(metrics.NetIn))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDialerAppliesLatencyAndShaping(t *testing.T) {
	clk := vtime.NewScaled(5000)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	profile := NewProfile(clk, "test", 1<<20, 1<<20, 2*time.Second)
	d := &Dialer{Profile: profile}
	start := clk.Now()
	c, err := d.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if lat := clk.Now().Sub(start); lat < 1800*time.Millisecond {
		t.Fatalf("dial latency %v virtual, want ~2s", lat)
	}
}

func TestDialerError(t *testing.T) {
	clk := vtime.Real{}
	d := &Dialer{Profile: Unshaped(clk)}
	if _, err := d.DialContext(context.Background(), "tcp", "127.0.0.1:1"); err == nil {
		t.Fatal("expected dial error to closed port")
	}
}
