package netsim

import (
	"io"
	"net"
	"testing"

	"repro/internal/vtime"
)

func BenchmarkUnshapedConnWrite(b *testing.B) {
	clk := vtime.Real{}
	c, s := benchPipe(b)
	sc := Wrap(c, clk, NewLink(clk, 0), nil)
	go io.Copy(io.Discard, s)
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShapedConnWriteDilated(b *testing.B) {
	// 1 MB/s virtual at 10000x dilation: pacing bookkeeping without real
	// sleeps dominating.
	clk := vtime.NewScaled(10000)
	c, s := benchPipe(b)
	sc := Wrap(c, clk, NewLink(clk, 1<<20), nil)
	go io.Copy(io.Discard, s)
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinkTake(b *testing.B) {
	clk := vtime.NewScaled(100000)
	l := NewLink(clk, 1<<30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.take(4 << 10)
	}
}

func benchPipe(b *testing.B) (client, server net.Conn) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			done <- c
		}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	server = <-done
	b.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}
