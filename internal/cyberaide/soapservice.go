package cyberaide

import (
	"encoding/base64"
	"encoding/json"
	"time"

	"repro/internal/jsdl"
	"repro/internal/soap"
	"repro/internal/wsdl"
)

// SOAP identity of the agent service.
const (
	ServiceName = "CyberaideAgent"
	Namespace   = "urn:repro:cyberaide"
)

// SOAPService exposes the agent as a Web service, "the Cyberaide agent
// is a Web service and exposes its functions as Web methods" (paper §VI).
// File payloads travel base64-encoded; job descriptions travel as JSDL
// XML strings.
func (a *Agent) SOAPService() *soap.Service {
	def := wsdl.ServiceDef{
		Name:      ServiceName,
		Namespace: Namespace,
		Doc:       "Cyberaide agent: authenticated access to the production Grid",
		Operations: []wsdl.OperationDef{
			{
				Name: "authenticate",
				Doc:  "MyProxy logon; returns a session id",
				Params: []wsdl.ParamDef{
					{Name: "user", Type: wsdl.TypeString},
					{Name: "passphrase", Type: wsdl.TypeString},
					{Name: "lifetimeSeconds", Type: wsdl.TypeInt},
				},
			},
			{
				Name: "upload",
				Doc:  "Stage a base64 file to a site's GridFTP server; returns the checksum",
				Params: []wsdl.ParamDef{
					{Name: "session", Type: wsdl.TypeString},
					{Name: "site", Type: wsdl.TypeString},
					{Name: "name", Type: wsdl.TypeString},
					{Name: "dataBase64", Type: wsdl.TypeString},
				},
			},
			{
				Name: "submit",
				Doc:  "Submit a JSDL job description; returns the job id",
				Params: []wsdl.ParamDef{
					{Name: "session", Type: wsdl.TypeString},
					{Name: "jsdl", Type: wsdl.TypeString},
				},
			},
			{
				Name: "status",
				Doc:  "Job status as a JSON object",
				Params: []wsdl.ParamDef{
					{Name: "session", Type: wsdl.TypeString},
					{Name: "job", Type: wsdl.TypeString},
				},
			},
			{
				Name: "output",
				Doc:  "Job stdout snapshot",
				Params: []wsdl.ParamDef{
					{Name: "session", Type: wsdl.TypeString},
					{Name: "job", Type: wsdl.TypeString},
				},
			},
			{
				Name: "cancel",
				Doc:  "Cancel a job",
				Params: []wsdl.ParamDef{
					{Name: "session", Type: wsdl.TypeString},
					{Name: "job", Type: wsdl.TypeString},
				},
			},
			{
				Name:   "usage",
				Doc:    "Per-site accounting for the session identity, as a JSON array",
				Params: []wsdl.ParamDef{{Name: "session", Type: wsdl.TypeString}},
			},
			{
				Name: "replicate",
				Doc:  "Third-party transfer of a staged file between sites; returns the checksum",
				Params: []wsdl.ParamDef{
					{Name: "session", Type: wsdl.TypeString},
					{Name: "fromSite", Type: wsdl.TypeString},
					{Name: "toSite", Type: wsdl.TypeString},
					{Name: "name", Type: wsdl.TypeString},
				},
			},
		},
	}
	svc := soap.NewService(def)
	fault := func(err error) (string, error) {
		return "", &soap.Fault{Code: soap.FaultClient, String: err.Error()}
	}
	svc.MustBind("authenticate", func(req *soap.Request) (string, error) {
		seconds, _ := parseSeconds(req.Args["lifetimeSeconds"])
		sess, err := a.Authenticate(req.Args["user"], req.Args["passphrase"],
			time.Duration(seconds)*time.Second)
		if err != nil {
			return fault(err)
		}
		return sess.ID, nil
	})
	svc.MustBind("upload", func(req *soap.Request) (string, error) {
		data, err := base64.StdEncoding.DecodeString(req.Args["dataBase64"])
		if err != nil {
			return fault(err)
		}
		checksum, err := a.Upload(req.Args["session"], req.Args["site"], req.Args["name"], data)
		if err != nil {
			return fault(err)
		}
		return checksum, nil
	})
	svc.MustBind("submit", func(req *soap.Request) (string, error) {
		desc, err := jsdl.Unmarshal([]byte(req.Args["jsdl"]))
		if err != nil {
			return fault(err)
		}
		jobID, err := a.Submit(req.Args["session"], desc)
		if err != nil {
			return fault(err)
		}
		return jobID, nil
	})
	svc.MustBind("status", func(req *soap.Request) (string, error) {
		st, err := a.Status(req.Args["session"], req.Args["job"])
		if err != nil {
			return fault(err)
		}
		b, err := json.Marshal(st)
		if err != nil {
			return "", err
		}
		return string(b), nil
	})
	svc.MustBind("output", func(req *soap.Request) (string, error) {
		out, err := a.Output(req.Args["session"], req.Args["job"])
		if err != nil {
			return fault(err)
		}
		return out, nil
	})
	svc.MustBind("cancel", func(req *soap.Request) (string, error) {
		st, err := a.Cancel(req.Args["session"], req.Args["job"])
		if err != nil {
			return fault(err)
		}
		return st.State, nil
	})
	svc.MustBind("usage", func(req *soap.Request) (string, error) {
		usage, err := a.Usage(req.Args["session"])
		if err != nil {
			return fault(err)
		}
		b, err := json.Marshal(usage)
		if err != nil {
			return "", err
		}
		return string(b), nil
	})
	svc.MustBind("replicate", func(req *soap.Request) (string, error) {
		checksum, err := a.Replicate(req.Args["session"],
			req.Args["fromSite"], req.Args["toSite"], req.Args["name"])
		if err != nil {
			return fault(err)
		}
		return checksum, nil
	})
	return svc
}

func parseSeconds(s string) (d int64, ok bool) {
	var n int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, s != ""
}
