package cyberaide

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gridsim"
	"repro/internal/jsdl"
	"repro/internal/metrics"
	"repro/internal/soap"
	"repro/internal/vtime"
)

// The agent tests need a full grid environment; to avoid an import cycle
// with gridenv (which imports cyberaide for Endpoints), the environment
// is assembled through the lower-level packages here.
import (
	"net"
	"net/http"

	"repro/internal/gram"
	"repro/internal/gridftp"
	"repro/internal/myproxy"
	"repro/internal/xsec"
)

type world struct {
	agent *Agent
	grid  *gridsim.Grid
	clock *vtime.Scaled
	rec   *metrics.Recorder
}

func newWorld(t *testing.T) *world {
	t.Helper()
	clk := vtime.NewScaled(20000)
	ca, err := xsec.NewCA("CA", clk.Now(), 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := xsec.NewTrustStore(ca.Cert)
	grid, err := gridsim.New(clk,
		gridsim.SiteConfig{Name: "siteA", Nodes: 2, CoresPerNode: 4},
		gridsim.SiteConfig{Name: "siteB", Nodes: 2, CoresPerNode: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	gramSrv := httptest.NewServer(gram.NewServer(grid, trust, clk))
	t.Cleanup(gramSrv.Close)
	ftpURLs := map[string]string{}
	for _, name := range grid.SiteNames() {
		site, _ := grid.Site(name)
		s := httptest.NewServer(gridftp.NewServer(site.Store(), trust, clk, nil))
		t.Cleanup(s.Close)
		ftpURLs[name] = s.URL
	}
	mpSrv := myproxy.NewServer(clk)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go mpSrv.Serve(ln)
	t.Cleanup(func() { mpSrv.Close() })

	alice, err := ca.IssueUser("alice", clk.Now(), 30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mpc := &myproxy.Client{Addr: ln.Addr().String()}
	if err := mpc.Put("alice", "pw", alice); err != nil {
		t.Fatal(err)
	}

	rec := metrics.NewRecorder(clk, 3*time.Second)
	agent := New(Options{
		Endpoints: Endpoints{
			GramURL:     gramSrv.URL,
			MyProxyAddr: ln.Addr().String(),
			FTPURLs:     ftpURLs,
		},
		Clock: clk,
		Probe: metrics.NewProbe(rec),
		Cost:  metrics.Cost{Auth: 100 * time.Millisecond},
		HTTP:  http.DefaultClient,
	})
	return &world{agent: agent, grid: grid, clock: clk, rec: rec}
}

func TestAuthenticateUploadSubmitCollect(t *testing.T) {
	w := newWorld(t)
	sess, err := w.agent.Authenticate("alice", "pw", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Identity != "/O=Repro/CN=alice" {
		t.Fatalf("identity %q", sess.Identity)
	}
	if _, err := w.agent.Upload(sess.ID, "siteA", "job.gsh",
		[]byte("echo result=${x}\ncompute 500ms\nwrite data.out 32\n")); err != nil {
		t.Fatal(err)
	}
	jobID, err := w.agent.Submit(sess.ID, &jsdl.Description{
		Executable: "job.gsh",
		Site:       "siteA",
		Arguments:  map[string]string{"x": "41"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tentative polling until terminal.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := w.agent.Status(sess.ID, jobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "DONE" {
			break
		}
		if st.State == "FAILED" || time.Now().After(deadline) {
			t.Fatalf("job state %s: %s", st.State, st.Message)
		}
		time.Sleep(time.Millisecond)
	}
	out, err := w.agent.Output(sess.ID, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if out != "result=41\n" {
		t.Fatalf("output %q", out)
	}
	artifact, err := w.agent.OutputFile(sess.ID, jobID, "data.out")
	if err != nil || len(artifact) != 32 {
		t.Fatalf("artifact %d bytes, err %v", len(artifact), err)
	}
}

func TestAuthenticateBadPassphrase(t *testing.T) {
	w := newWorld(t)
	if _, err := w.agent.Authenticate("alice", "wrong", time.Hour); !errors.Is(err, myproxy.ErrBadPassphrase) {
		t.Fatalf("got %v", err)
	}
}

func TestAuthenticateAccountsCPUCost(t *testing.T) {
	w := newWorld(t)
	if _, err := w.agent.Authenticate("alice", "pw", time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := time.Duration(w.rec.Total(metrics.CPU)); got < 80*time.Millisecond {
		t.Fatalf("auth cost not accounted: %v", got)
	}
}

func TestSessionLifecycle(t *testing.T) {
	w := newWorld(t)
	sess, err := w.agent.Authenticate("alice", "pw", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if w.agent.SessionCount() != 1 {
		t.Fatal("session not registered")
	}
	if _, err := w.agent.Session(sess.ID); err != nil {
		t.Fatal(err)
	}
	w.agent.Logout(sess.ID)
	if _, err := w.agent.Session(sess.ID); !errors.Is(err, ErrNoSession) {
		t.Fatalf("got %v", err)
	}
	if _, err := w.agent.Upload("ghost", "siteA", "f", nil); !errors.Is(err, ErrNoSession) {
		t.Fatalf("got %v", err)
	}
}

func TestSessionExpires(t *testing.T) {
	w := newWorld(t)
	// 1 virtual second at scale 20000 expires almost immediately.
	sess, err := w.agent.Authenticate("alice", "pw", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := w.agent.Session(sess.ID); !errors.Is(err, ErrExpired) {
		t.Fatalf("got %v", err)
	}
}

func TestUploadUnknownSite(t *testing.T) {
	w := newWorld(t)
	sess, _ := w.agent.Authenticate("alice", "pw", time.Hour)
	if _, err := w.agent.Upload(sess.ID, "atlantis", "f", []byte("x")); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("got %v", err)
	}
}

func TestSubmitForcesSessionOwner(t *testing.T) {
	w := newWorld(t)
	sess, _ := w.agent.Authenticate("alice", "pw", time.Hour)
	w.agent.Upload(sess.ID, "siteA", "e.gsh", []byte("echo x\n"))
	// Even a forged owner in the description submits as alice.
	jobID, err := w.agent.Submit(sess.ID, &jsdl.Description{
		Executable: "e.gsh", Site: "siteA", Owner: "/O=Repro/CN=mallory",
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := w.grid.Job(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if job.Desc.Owner != "/O=Repro/CN=alice" {
		t.Fatalf("owner %q", job.Desc.Owner)
	}
}

func TestCancelThroughAgent(t *testing.T) {
	w := newWorld(t)
	sess, _ := w.agent.Authenticate("alice", "pw", time.Hour)
	w.agent.Upload(sess.ID, "siteA", "slow.gsh", []byte("emit 1s 1000 t\n"))
	jobID, err := w.agent.Submit(sess.ID, &jsdl.Description{Executable: "slow.gsh", Site: "siteA"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := w.agent.Cancel(sess.ID, jobID)
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	job, _ := w.grid.Job(jobID)
	select {
	case <-job.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not terminate job")
	}
	if job.State() != gridsim.Cancelled {
		t.Fatalf("state %s", job.State())
	}
}

func TestGridStatsAndSites(t *testing.T) {
	w := newWorld(t)
	sess, _ := w.agent.Authenticate("alice", "pw", time.Hour)
	stats, err := w.agent.GridStats(sess.ID)
	if err != nil || len(stats) != 2 {
		t.Fatalf("stats %v err %v", stats, err)
	}
	if got := w.agent.Sites(); len(got) != 2 || got[0] != "siteA" || got[1] != "siteB" {
		t.Fatalf("sites not sorted: %v", got)
	}
}

func TestAgentStatusBatchAndConditionalOutput(t *testing.T) {
	w := newWorld(t)
	sess, _ := w.agent.Authenticate("alice", "pw", time.Hour)
	w.agent.Upload(sess.ID, "siteA", "hi.gsh", []byte("echo hi\n"))
	jobID, err := w.agent.Submit(sess.ID, &jsdl.Description{Executable: "hi.gsh", Site: "siteA"})
	if err != nil {
		t.Fatal(err)
	}
	job, _ := w.grid.Job(jobID)
	select {
	case <-job.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job stuck")
	}
	entries, err := w.agent.StatusBatch(sess.ID, []string{jobID, "siteA:job-424242"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].State != "DONE" || entries[1].Error == "" {
		t.Fatalf("entries %+v", entries)
	}
	out, ver, changed, err := w.agent.OutputIfChanged(sess.ID, jobID, 0)
	if err != nil || !changed || out != "hi\n" || ver != entries[0].OutputVersion {
		t.Fatalf("fetch: out=%q ver=%d changed=%v err=%v", out, ver, changed, err)
	}
	if _, _, changed, err = w.agent.OutputIfChanged(sess.ID, jobID, ver); err != nil || changed {
		t.Fatalf("unchanged snapshot refetched: changed=%v err=%v", changed, err)
	}
	if _, err := w.agent.StatusBatch("no-such-session", []string{jobID}); !errors.Is(err, ErrNoSession) {
		t.Fatalf("got %v", err)
	}
}

func TestSOAPFacade(t *testing.T) {
	w := newWorld(t)
	container := soap.NewServer(nil, metrics.Cost{})
	if err := container.Deploy(w.agent.SOAPService()); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(container)
	defer hs.Close()
	var c soap.Client
	url := hs.URL + "/services/" + ServiceName

	sessID, err := c.Call(url, Namespace, "authenticate", []soap.Param{
		{Name: "user", Value: "alice"},
		{Name: "passphrase", Value: "pw"},
		{Name: "lifetimeSeconds", Value: "3600"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sessID, "sess-") {
		t.Fatalf("session %q", sessID)
	}

	data := base64.StdEncoding.EncodeToString([]byte("echo via-soap\n"))
	if _, err := c.Call(url, Namespace, "upload", []soap.Param{
		{Name: "session", Value: sessID},
		{Name: "site", Value: "siteA"},
		{Name: "name", Value: "s.gsh"},
		{Name: "dataBase64", Value: data},
	}, nil); err != nil {
		t.Fatal(err)
	}

	desc, _ := jsdl.Marshal(&jsdl.Description{
		Owner: "/O=Repro/CN=alice", Executable: "s.gsh", Site: "siteA",
	})
	jobID, err := c.Call(url, Namespace, "submit", []soap.Param{
		{Name: "session", Value: sessID},
		{Name: "jsdl", Value: string(desc)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		stJSON, err := c.Call(url, Namespace, "status", []soap.Param{
			{Name: "session", Value: sessID}, {Name: "job", Value: jobID},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var st gram.StatusReply
		if err := json.Unmarshal([]byte(stJSON), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "DONE" {
			break
		}
		if st.State == "FAILED" || time.Now().After(deadline) {
			t.Fatalf("state %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	out, err := c.Call(url, Namespace, "output", []soap.Param{
		{Name: "session", Value: sessID}, {Name: "job", Value: jobID},
	}, nil)
	if err != nil || out != "via-soap\n" {
		t.Fatalf("output %q err %v", out, err)
	}
}

func TestSOAPFacadeFaults(t *testing.T) {
	w := newWorld(t)
	container := soap.NewServer(nil, metrics.Cost{})
	container.Deploy(w.agent.SOAPService())
	hs := httptest.NewServer(container)
	defer hs.Close()
	var c soap.Client
	url := hs.URL + "/services/" + ServiceName
	_, err := c.Call(url, Namespace, "authenticate", []soap.Param{
		{Name: "user", Value: "alice"},
		{Name: "passphrase", Value: "bad"},
		{Name: "lifetimeSeconds", Value: "60"},
	}, nil)
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("got %v", err)
	}
	_, err = c.Call(url, Namespace, "upload", []soap.Param{
		{Name: "session", Value: "ghost"},
		{Name: "site", Value: "siteA"},
		{Name: "name", Value: "f"},
		{Name: "dataBase64", Value: "!!!"},
	}, nil)
	if !errors.As(err, &f) {
		t.Fatalf("got %v", err)
	}
}

func TestSubmitBatchForcesSessionOwner(t *testing.T) {
	w := newWorld(t)
	sess, _ := w.agent.Authenticate("alice", "pw", time.Hour)
	w.agent.Upload(sess.ID, "siteA", "e.gsh", []byte("echo x\n"))
	// One forged owner, one blank: both must submit as alice, and the
	// unstaged entry must fail alone without sinking the batch.
	entries, err := w.agent.SubmitBatch(sess.ID, []*jsdl.Description{
		{Executable: "e.gsh", Site: "siteA", Owner: "/O=Repro/CN=mallory"},
		{Executable: "ghost.gsh", Site: "siteA"},
		{Executable: "e.gsh", Site: "siteA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	for _, i := range []int{0, 2} {
		if entries[i].Error != "" || entries[i].JobID == "" {
			t.Fatalf("entry %d: %+v", i, entries[i])
		}
		job, err := w.grid.Job(entries[i].JobID)
		if err != nil {
			t.Fatal(err)
		}
		if job.Desc.Owner != "/O=Repro/CN=alice" {
			t.Fatalf("entry %d owner %q", i, job.Desc.Owner)
		}
	}
	if entries[1].JobID != "" || !strings.Contains(entries[1].Error, "not staged") {
		t.Fatalf("entry 1: %+v", entries[1])
	}
}

func TestSubmitBatchNoSession(t *testing.T) {
	w := newWorld(t)
	_, err := w.agent.SubmitBatch("no-such-session", []*jsdl.Description{
		{Executable: "e.gsh", Site: "siteA"},
	})
	if !errors.Is(err, ErrNoSession) {
		t.Fatalf("got %v, want ErrNoSession", err)
	}
}
