// Package cyberaide implements the Cyberaide agent of the paper's access
// layer: "To create and submit the job to the Grid, Cyberaide agent
// methods are used. The Cyberaide agent is a Web service and exposes its
// functions as Web methods" (§VI). The agent mediates every Grid
// interaction: MyProxy logon, GridFTP staging, GRAM submission, status
// polling, output retrieval, cancellation.
//
// The agent offers a native Go API (used in-process by onServe, as the
// paper's generated client classes were) and a SOAP facade (SOAPService)
// so remote callers can drive it as a Web service.
package cyberaide

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/gram"
	"repro/internal/gridftp"
	"repro/internal/gridsim"
	"repro/internal/jsdl"
	"repro/internal/metrics"
	"repro/internal/myproxy"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/xsec"
)

// DefaultProxyLifetime is the delegated proxy lifetime per session.
const DefaultProxyLifetime = 12 * time.Hour

// Errors.
var (
	ErrNoSession   = errors.New("cyberaide: no such session (authenticate first)")
	ErrExpired     = errors.New("cyberaide: session proxy expired")
	ErrUnknownSite = errors.New("cyberaide: no GridFTP endpoint for site")
)

// Endpoints locates the production Grid's access points.
type Endpoints struct {
	// GramURL is the gatekeeper root.
	GramURL string
	// MyProxyAddr is the credential repository's TCP address.
	MyProxyAddr string
	// FTPURLs maps site name to that site's GridFTP root.
	FTPURLs map[string]string
}

// Session is one authenticated user context holding a delegated proxy.
type Session struct {
	ID       string
	Identity string
	proxy    *xsec.Credential
	gram     *gram.Client
	ftps     map[string]*gridftp.Client
}

// Agent mediates between the access layer and the Grid.
//
// The session table lives behind a pointer so that WithTrace can return
// a cheap shallow copy of the Agent: every copy shares the one table
// (and its lock) while carrying its own trace context.
type Agent struct {
	endpoints Endpoints
	clock     vtime.Clock
	probe     *metrics.Probe
	cost      metrics.Cost
	// HTTP carries all Grid-bound traffic; experiments install a client
	// whose transport dials through the shaped WAN profile.
	http *http.Client
	// myproxyDial lets experiments shape the MyProxy TCP connection.
	myproxyDial func(network, addr string) (net.Conn, error)

	state *sessionTable
	trace trace.SpanContext
}

// sessionTable is the shared mutable state of all WithTrace copies.
type sessionTable struct {
	mu       sync.Mutex
	sessions map[string]*Session
}

// Options configures New.
type Options struct {
	Endpoints Endpoints
	Clock     vtime.Clock
	Probe     *metrics.Probe
	Cost      metrics.Cost
	// HTTP is the client for GRAM/GridFTP traffic; nil uses the default.
	HTTP *http.Client
	// MyProxyDial overrides the MyProxy TCP dialer (for shaping).
	MyProxyDial func(network, addr string) (net.Conn, error)
}

// New builds an agent.
func New(opts Options) *Agent {
	clock := opts.Clock
	if clock == nil {
		clock = vtime.Real{}
	}
	return &Agent{
		endpoints:   opts.Endpoints,
		clock:       clock,
		probe:       opts.Probe,
		cost:        opts.Cost,
		http:        opts.HTTP,
		myproxyDial: opts.MyProxyDial,
		state:       &sessionTable{sessions: make(map[string]*Session)},
	}
}

// WithTrace returns an agent view whose Grid requests carry sc in the
// X-Grid-Trace header, so the myproxy/gridftp/gram servers parent their
// spans under the caller's span. The view shares the session table with
// the receiver. An invalid context returns the receiver unchanged —
// with tracing off this costs nothing.
func (a *Agent) WithTrace(sc trace.SpanContext) *Agent {
	if !sc.Valid() {
		return a
	}
	b := *a
	b.trace = sc
	return &b
}

// gramFor returns the session's GRAM client, stamped with the agent's
// trace context when one is set. The shallow copy keeps the shared
// session client immutable under concurrent invocations.
func (a *Agent) gramFor(sess *Session) *gram.Client {
	if !a.trace.Valid() {
		return sess.gram
	}
	c := *sess.gram
	c.Trace = a.trace.String()
	return &c
}

// ftpFor is gramFor for a site's GridFTP client.
func (a *Agent) ftpFor(sess *Session, site string) (*gridftp.Client, bool) {
	ftp, ok := sess.ftps[site]
	if !ok || !a.trace.Valid() {
		return ftp, ok
	}
	c := *ftp
	c.Trace = a.trace.String()
	return &c, true
}

// Authenticate performs a MyProxy logon, obtaining a freshly delegated
// proxy, and opens a session. This is the "security credential request
// and the associated answer" whose traffic dominates Fig. 6 for small
// payloads.
func (a *Agent) Authenticate(user, passphrase string, lifetime time.Duration) (*Session, error) {
	if lifetime <= 0 {
		lifetime = DefaultProxyLifetime
	}
	a.probe.Burn(a.cost.Auth)
	mp := &myproxy.Client{Addr: a.endpoints.MyProxyAddr, Dial: a.myproxyDial, Trace: a.trace.String()}
	proxy, err := mp.Get(user, passphrase, lifetime)
	if err != nil {
		return nil, fmt.Errorf("cyberaide: myproxy logon for %q: %w", user, err)
	}
	sess := &Session{
		ID:       newSessionID(),
		Identity: xsec.Identity(proxy.Chain),
		proxy:    proxy,
		gram:     &gram.Client{BaseURL: a.endpoints.GramURL, Cred: proxy, HTTP: a.http},
		ftps:     make(map[string]*gridftp.Client, len(a.endpoints.FTPURLs)),
	}
	for site, url := range a.endpoints.FTPURLs {
		sess.ftps[site] = &gridftp.Client{BaseURL: url, Cred: proxy, HTTP: a.http}
	}
	a.state.mu.Lock()
	a.state.sessions[sess.ID] = sess
	a.state.mu.Unlock()
	return sess, nil
}

// Session resolves a session ID, rejecting expired proxies.
func (a *Agent) Session(id string) (*Session, error) {
	a.state.mu.Lock()
	sess, ok := a.state.sessions[id]
	a.state.mu.Unlock()
	if !ok {
		return nil, ErrNoSession
	}
	if leaf := sess.proxy.Leaf(); leaf == nil || !leaf.ValidAt(a.clock.Now()) {
		return nil, ErrExpired
	}
	return sess, nil
}

// Logout discards a session.
func (a *Agent) Logout(id string) {
	a.state.mu.Lock()
	delete(a.state.sessions, id)
	a.state.mu.Unlock()
}

// SessionCount reports open sessions (monitoring).
func (a *Agent) SessionCount() int {
	a.state.mu.Lock()
	defer a.state.mu.Unlock()
	return len(a.state.sessions)
}

// SiteURL reports the GridFTP endpoint configured for site.
func (a *Agent) SiteURL(site string) (string, bool) {
	url, ok := a.endpoints.FTPURLs[site]
	return url, ok
}

// Sites lists the sites the agent can stage to, sorted so callers see a
// deterministic order rather than map iteration order.
func (a *Agent) Sites() []string {
	out := make([]string, 0, len(a.endpoints.FTPURLs))
	for s := range a.endpoints.FTPURLs {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Upload stages a file to a site's GridFTP server under the session
// identity. It returns the content checksum the server confirmed.
func (a *Agent) Upload(sessionID, site, name string, data []byte) (string, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return "", err
	}
	ftp, ok := a.ftpFor(sess, site)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownSite, site)
	}
	checksum, err := ftp.Put(name, data)
	if err != nil {
		return "", fmt.Errorf("cyberaide: stage %s to %s: %w", name, site, err)
	}
	return checksum, nil
}

// UploadChunked stages a file via the chunked, content-addressed GridFTP
// protocol: probe the site for chunks it already holds, ship only the
// missing ones, commit the manifest. gz, when non-nil, is the gzip
// encoding of data and rides the wire instead when smaller (the site
// inflates at commit). Against a site whose server does not speak the
// chunk protocol the transfer silently downgrades to a plain PUT — see
// the returned stats' Fallback field.
func (a *Agent) UploadChunked(sessionID, site, name string, data, gz []byte, chunkBytes int) (*gridftp.ChunkedPutStats, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return nil, err
	}
	ftp, ok := a.ftpFor(sess, site)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSite, site)
	}
	stats, err := ftp.PutChunked(name, data, gz, chunkBytes)
	if err != nil {
		return nil, fmt.Errorf("cyberaide: stage %s to %s (chunked): %w", name, site, err)
	}
	return stats, nil
}

// HaveChunks asks one site's GridFTP server which of the wire-chunk
// digests it does not hold — the dedup/resume probe reused by
// data-aware placement as a possession oracle. Oversized digest lists
// are batched by the client transparently.
func (a *Agent) HaveChunks(sessionID, site string, digests []string) ([]string, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return nil, err
	}
	ftp, ok := a.ftpFor(sess, site)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSite, site)
	}
	missing, err := ftp.HaveChunks(digests)
	if err != nil {
		return nil, fmt.Errorf("cyberaide: probe chunks at %s: %w", site, err)
	}
	return missing, nil
}

// Replicate performs a GridFTP third-party transfer: the toSite server
// pulls name directly from the fromSite server under the session
// identity, so the bytes never cross the agent's own (WAN) path.
func (a *Agent) Replicate(sessionID, fromSite, toSite, name string) (string, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return "", err
	}
	srcURL, ok := a.endpoints.FTPURLs[fromSite]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownSite, fromSite)
	}
	dst, ok := a.ftpFor(sess, toSite)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownSite, toSite)
	}
	checksum, err := dst.FetchFrom(srcURL, name)
	if err != nil {
		return "", fmt.Errorf("cyberaide: replicate %s %s->%s: %w", name, fromSite, toSite, err)
	}
	return checksum, nil
}

// Submit sends a job description through GRAM. The description's owner
// is forced to the session identity — the gatekeeper rejects anything
// else anyway.
func (a *Agent) Submit(sessionID string, desc *jsdl.Description) (string, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return "", err
	}
	d := *desc
	d.Owner = sess.Identity
	jobID, err := a.gramFor(sess).Submit(&d)
	if err != nil {
		return "", fmt.Errorf("cyberaide: submit: %w", err)
	}
	return jobID, nil
}

// SubmitBatch sends many job descriptions in one gatekeeper round-trip
// per gram.MaxBatch chunk (the submit hub's flush primitive). Each
// description's owner is forced to the session identity, like Submit;
// per-description failures come back in each entry's Error field.
func (a *Agent) SubmitBatch(sessionID string, descs []*jsdl.Description) ([]gram.SubmitBatchEntry, error) {
	return a.SubmitBatchTraced(sessionID, descs, nil)
}

// SubmitBatchTraced is SubmitBatch with one trace-context wire string
// per description (the submit hub queues each invocation's submit-span
// context alongside its description). traces may be nil or shorter than
// descs; empty entries mean "untraced".
func (a *Agent) SubmitBatchTraced(sessionID string, descs []*jsdl.Description, traces []string) ([]gram.SubmitBatchEntry, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return nil, err
	}
	owned := make([]*jsdl.Description, len(descs))
	for i, desc := range descs {
		d := *desc
		d.Owner = sess.Identity
		owned[i] = &d
	}
	return a.gramFor(sess).SubmitBatchTraced(owned, traces)
}

// Wait long-polls the gatekeeper until the job is terminal or timeout
// elapses (the extension that obsoletes tentative output polling).
func (a *Agent) Wait(sessionID, jobID string, timeout time.Duration) (*gram.StatusReply, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return nil, err
	}
	return a.gramFor(sess).Wait(jobID, timeout)
}

// Status polls a job.
func (a *Agent) Status(sessionID, jobID string) (*gram.StatusReply, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return nil, err
	}
	return a.gramFor(sess).Status(jobID)
}

// StatusBatch polls many jobs in one gatekeeper round-trip per
// gram.MaxBatch chunk; per-job failures come back in each entry's Error
// field (the poll hub's tick primitive).
func (a *Agent) StatusBatch(sessionID string, jobIDs []string) ([]gram.BatchEntry, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return nil, err
	}
	return a.gramFor(sess).StatusBatch(jobIDs)
}

// OutputIfChanged fetches the job's stdout only when its output version
// moved past since; an unchanged snapshot costs zero body bytes.
func (a *Agent) OutputIfChanged(sessionID, jobID string, since uint64) (out string, version uint64, changed bool, err error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return "", 0, false, err
	}
	return a.gramFor(sess).OutputIfChanged(jobID, since)
}

// Events opens the session's long-lived gatekeeper event stream,
// resuming after cursor since. ErrNoEvents surfaces unwrapped so the
// collector can fall back to polling against a stock gatekeeper.
func (a *Agent) Events(sessionID string, since uint64) (*gram.EventStream, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return nil, err
	}
	return a.gramFor(sess).Events(sessionID, since)
}

// Output fetches the job's stdout snapshot (tentative polling target).
func (a *Agent) Output(sessionID, jobID string) (string, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return "", err
	}
	return a.gramFor(sess).Output(jobID)
}

// OutputFile fetches a named output artifact.
func (a *Agent) OutputFile(sessionID, jobID, name string) ([]byte, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return nil, err
	}
	return a.gramFor(sess).OutputFile(jobID, name)
}

// Cancel stops a job.
func (a *Agent) Cancel(sessionID, jobID string) (*gram.StatusReply, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return nil, err
	}
	return a.gramFor(sess).Cancel(jobID)
}

// Usage fetches the session identity's per-site accounting.
func (a *Agent) Usage(sessionID string) ([]gridsim.SiteUsage, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return nil, err
	}
	return a.gramFor(sess).Usage()
}

// GridStats fetches scheduler statistics from the gatekeeper.
func (a *Agent) GridStats(sessionID string) ([]gridsim.SiteStats, error) {
	sess, err := a.Session(sessionID)
	if err != nil {
		return nil, err
	}
	return a.gramFor(sess).Sites()
}

func newSessionID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("cyberaide: entropy unavailable: " + err.Error())
	}
	return "sess-" + hex.EncodeToString(b[:])
}
