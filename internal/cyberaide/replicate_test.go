package cyberaide

import (
	"errors"
	"testing"
	"time"

	"repro/internal/jsdl"
)

func TestReplicateBetweenSites(t *testing.T) {
	w := newWorld(t)
	sess, err := w.agent.Authenticate("alice", "pw", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	program := []byte("echo replicated\n")
	if _, err := w.agent.Upload(sess.ID, "siteA", "r.gsh", program); err != nil {
		t.Fatal(err)
	}
	if _, err := w.agent.Replicate(sess.ID, "siteA", "siteB", "r.gsh"); err != nil {
		t.Fatal(err)
	}
	// The file is now runnable at siteB without another upload.
	jobID, err := w.agent.Submit(sess.ID, &jsdl.Description{Executable: "r.gsh", Site: "siteB"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := w.agent.Status(sess.ID, jobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "DONE" {
			break
		}
		if st.State == "FAILED" || time.Now().After(deadline) {
			t.Fatalf("replicated job %v", st)
		}
		time.Sleep(time.Millisecond)
	}
	out, _ := w.agent.Output(sess.ID, jobID)
	if out != "replicated\n" {
		t.Fatalf("output %q", out)
	}
}

func TestReplicateErrors(t *testing.T) {
	w := newWorld(t)
	sess, _ := w.agent.Authenticate("alice", "pw", time.Hour)
	if _, err := w.agent.Replicate(sess.ID, "atlantis", "siteB", "f"); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("got %v", err)
	}
	if _, err := w.agent.Replicate(sess.ID, "siteA", "atlantis", "f"); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("got %v", err)
	}
	if _, err := w.agent.Replicate("ghost", "siteA", "siteB", "f"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("got %v", err)
	}
	if _, err := w.agent.Replicate(sess.ID, "siteA", "siteB", "never-staged.gsh"); err == nil {
		t.Fatal("replicating a missing file succeeded")
	}
}
