package wsclient

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/wsdl"
)

func stubDef() *wsdl.ServiceDef {
	return &wsdl.ServiceDef{
		Name:        "DemoService",
		Namespace:   "urn:onserve:DemoService",
		Doc:         "runs demo.gsh on the Grid",
		EndpointURL: "http://appliance:8080/services/DemoService",
		Operations: []wsdl.OperationDef{
			{Name: "execute", Params: []wsdl.ParamDef{
				{Name: "samples", Type: wsdl.TypeInt},
				{Name: "rate", Type: wsdl.TypeDouble},
				{Name: "verbose", Type: wsdl.TypeBoolean},
				{Name: "tag", Type: wsdl.TypeString},
			}},
			{Name: "wait", Params: []wsdl.ParamDef{{Name: "ticket", Type: wsdl.TypeString}}},
		},
	}
}

func TestGenerateStubParsesAsGo(t *testing.T) {
	stub, err := GenerateStub(stubDef())
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "stub.go", stub, 0); err != nil {
		t.Fatalf("generated stub does not parse: %v\n%s", err, stub)
	}
}

func TestGenerateStubContents(t *testing.T) {
	stub, err := GenerateStub(stubDef())
	if err != nil {
		t.Fatal(err)
	}
	s := string(stub)
	for _, want := range []string{
		`const endpoint = "http://appliance:8080/services/DemoService"`,
		`"samples": "0", // int`,
		`"rate": "0.0", // double`,
		`"verbose": "false", // boolean`,
		`"tag": "", // string`,
		`proxy.Invoke("wait"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("stub missing %q", want)
		}
	}
}

func TestGenerateStubWithoutExecute(t *testing.T) {
	def := &wsdl.ServiceDef{
		Name: "Odd", Namespace: "urn:odd", EndpointURL: "http://h/services/Odd",
		Operations: []wsdl.OperationDef{{Name: "ping"}},
	}
	stub, err := GenerateStub(def)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stub), "// ping()") {
		t.Fatalf("operation catalogue missing:\n%s", stub)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "stub.go", stub, 0); err != nil {
		t.Fatalf("stub does not parse: %v", err)
	}
}

func TestGenerateStubRejectsInvalidDef(t *testing.T) {
	if _, err := GenerateStub(&wsdl.ServiceDef{}); err == nil {
		t.Fatal("invalid definition accepted")
	}
}
