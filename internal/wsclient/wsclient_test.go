package wsclient

import (
	"errors"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/soap"
	"repro/internal/wsdl"
)

func deployCalc(t *testing.T) (*soap.Server, *httptest.Server) {
	t.Helper()
	srv := soap.NewServer(nil, metrics.Cost{})
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	svc := soap.NewService(wsdl.ServiceDef{
		Name:        "Calc",
		Namespace:   "urn:calc",
		EndpointURL: hs.URL + "/services/Calc",
		Operations: []wsdl.OperationDef{
			{Name: "mul", Params: []wsdl.ParamDef{
				{Name: "x", Type: wsdl.TypeInt}, {Name: "y", Type: wsdl.TypeInt},
			}},
			{Name: "whoami"},
		},
	})
	svc.MustBind("mul", func(req *soap.Request) (string, error) {
		x, _ := strconv.Atoi(req.Args["x"])
		y, _ := strconv.Atoi(req.Args["y"])
		return strconv.Itoa(x * y), nil
	})
	svc.MustBind("whoami", func(req *soap.Request) (string, error) {
		return req.Msg.Headers["User"], nil
	})
	srv.Deploy(svc)
	return srv, hs
}

func TestImportURLAndInvoke(t *testing.T) {
	_, hs := deployCalc(t)
	p, err := ImportURL(hs.URL+"/services/Calc", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Invoke("mul", map[string]string{"x": "6", "y": "7"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "42" {
		t.Fatalf("mul = %q", got)
	}
}

func TestImportFromDocument(t *testing.T) {
	_, hs := deployCalc(t)
	var c soap.Client
	doc, err := c.FetchWSDL(hs.URL + "/services/Calc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Import(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Def.Name != "Calc" {
		t.Fatalf("imported %q", p.Def.Name)
	}
	got, err := p.Invoke("mul", map[string]string{"x": "3", "y": "5"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "15" {
		t.Fatalf("mul = %q", got)
	}
}

func TestInvokeValidation(t *testing.T) {
	_, hs := deployCalc(t)
	p, err := ImportURL(hs.URL+"/services/Calc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("nosuch", nil); !errors.Is(err, ErrNoOperation) {
		t.Fatalf("got %v", err)
	}
	if _, err := p.Invoke("mul", map[string]string{"x": "1"}); !errors.Is(err, ErrMissingArg) {
		t.Fatalf("got %v", err)
	}
	if _, err := p.Invoke("mul", map[string]string{"x": "1", "y": "2", "z": "3"}); !errors.Is(err, ErrUnknownArg) {
		t.Fatalf("got %v", err)
	}
	if _, err := p.Invoke("mul", map[string]string{"x": "1", "y": "pear"}); err == nil ||
		!strings.Contains(err.Error(), "not an int") {
		t.Fatalf("got %v", err)
	}
}

func TestHeadersTravel(t *testing.T) {
	_, hs := deployCalc(t)
	p, err := ImportURL(hs.URL+"/services/Calc", nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Headers = map[string]string{"User": "alice"}
	got, err := p.Invoke("whoami", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != "alice" {
		t.Fatalf("whoami = %q", got)
	}
}

func TestOperationsSorted(t *testing.T) {
	_, hs := deployCalc(t)
	p, err := ImportURL(hs.URL+"/services/Calc", nil)
	if err != nil {
		t.Fatal(err)
	}
	ops := p.Operations()
	if len(ops) != 2 || ops[0].Name != "mul" || ops[1].Name != "whoami" {
		t.Fatalf("ops %+v", ops)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := Import([]byte("<html/>"), nil); err == nil {
		t.Fatal("garbage imported")
	}
}

func TestImportRejectsNoEndpoint(t *testing.T) {
	doc, err := wsdl.Generate(&wsdl.ServiceDef{
		Name: "X", Namespace: "urn:x",
		Operations: []wsdl.OperationDef{{Name: "op"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Import(doc, nil); err == nil {
		t.Fatal("endpoint-less WSDL imported")
	}
}

func TestImportURLUnreachable(t *testing.T) {
	if _, err := ImportURL("http://127.0.0.1:1/services/X", nil); err == nil {
		t.Fatal("expected connection error")
	}
}
