// Package wsclient is the repository's wsimport: it builds a dynamic
// invocation proxy from a WSDL document. The paper's users "parse the
// WSDL document with an appropriate tool, such as wsimport, which then
// generates all needed classes permitting to use the Web service in a
// comfortable way" (§VII-B); Go needs no code generation, so Import
// returns a ready proxy that validates arguments against the WSDL before
// calling.
package wsclient

import (
	"errors"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/soap"
	"repro/internal/wsdl"
)

// Errors.
var (
	ErrNoOperation = errors.New("wsclient: service has no such operation")
	ErrMissingArg  = errors.New("wsclient: missing argument")
	ErrUnknownArg  = errors.New("wsclient: argument not declared in WSDL")
)

// Proxy is a dynamically generated client for one service.
type Proxy struct {
	Def  *wsdl.ServiceDef
	soap soap.Client
	// Headers are attached to every call (e.g. security tokens).
	Headers map[string]string
}

// Import builds a proxy from a WSDL document. httpClient may be nil.
func Import(doc []byte, httpClient *http.Client) (*Proxy, error) {
	def, err := wsdl.Parse(doc)
	if err != nil {
		return nil, err
	}
	if def.EndpointURL == "" {
		return nil, errors.New("wsclient: WSDL carries no endpoint address")
	}
	return &Proxy{Def: def, soap: soap.Client{HTTP: httpClient}}, nil
}

// ImportURL fetches the WSDL from serviceURL?wsdl and builds a proxy.
func ImportURL(serviceURL string, httpClient *http.Client) (*Proxy, error) {
	c := soap.Client{HTTP: httpClient}
	doc, err := c.FetchWSDL(serviceURL)
	if err != nil {
		return nil, err
	}
	p, err := Import(doc, httpClient)
	if err != nil {
		return nil, err
	}
	// Trust the URL we actually fetched from over a possibly stale
	// address inside the document.
	p.Def.EndpointURL = serviceURL
	return p, nil
}

// Operations lists the operations the proxy can invoke, sorted by name.
func (p *Proxy) Operations() []wsdl.OperationDef {
	out := append([]wsdl.OperationDef(nil), p.Def.Operations...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Invoke calls the named operation with args, validating names and types
// against the WSDL exactly as generated wsimport stubs would at compile
// time.
func (p *Proxy) Invoke(op string, args map[string]string) (string, error) {
	od := p.Def.Operation(op)
	if od == nil {
		return "", fmt.Errorf("%w: %q", ErrNoOperation, op)
	}
	declared := make(map[string]bool, len(od.Params))
	params := make([]soap.Param, 0, len(od.Params))
	for _, pd := range od.Params {
		declared[pd.Name] = true
		v, ok := args[pd.Name]
		if !ok {
			return "", fmt.Errorf("%w: %s.%s", ErrMissingArg, op, pd.Name)
		}
		if err := wsdl.CheckValue(pd.Type, v); err != nil {
			return "", fmt.Errorf("wsclient: %s.%s: %w", op, pd.Name, err)
		}
		params = append(params, soap.Param{Name: pd.Name, Value: v})
	}
	for name := range args {
		if !declared[name] {
			return "", fmt.Errorf("%w: %q", ErrUnknownArg, name)
		}
	}
	return p.soap.Call(p.Def.EndpointURL, p.Def.Namespace, op, params, p.Headers)
}
