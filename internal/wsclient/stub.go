package wsclient

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/wsdl"
)

// GenerateStub renders a standalone Go source file that calls the
// service described by def. The paper notes that "an even more
// comfortable solution may provide the necessary files as a download"
// instead of making every user run wsimport (§VIII-D4); the portal
// serves this stub at /api/client.
//
// The generated file depends only on this repository's public packages
// and compiles as a main package.
func GenerateStub(def *wsdl.ServiceDef) ([]byte, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "// Code generated for %s by Cyberaide onServe; edit freely.\n", def.Name)
	fmt.Fprintf(&b, "// Service: %s\n", def.Doc)
	b.WriteString("package main\n\n")
	b.WriteString("import (\n\t\"fmt\"\n\t\"log\"\n\n\t\"repro/internal/wsclient\"\n)\n\n")
	fmt.Fprintf(&b, "const endpoint = %q\n\n", def.EndpointURL)
	b.WriteString("func main() {\n")
	b.WriteString("\tproxy, err := wsclient.ImportURL(endpoint, nil)\n")
	b.WriteString("\tif err != nil {\n\t\tlog.Fatal(err)\n\t}\n\n")

	if ex := def.Operation("execute"); ex != nil {
		b.WriteString("\t// Execute the service's associated file on the Grid.\n")
		b.WriteString("\tticket, err := proxy.Invoke(\"execute\", map[string]string{\n")
		for _, p := range ex.Params {
			fmt.Fprintf(&b, "\t\t%q: %q, // %s\n", p.Name, zeroValueFor(p.Type), p.Type)
		}
		b.WriteString("\t})\n")
		b.WriteString("\tif err != nil {\n\t\tlog.Fatal(err)\n\t}\n")
		b.WriteString("\tfmt.Println(\"ticket:\", ticket)\n\n")
		if def.Operation("wait") != nil {
			b.WriteString("\tout, err := proxy.Invoke(\"wait\", map[string]string{\"ticket\": ticket})\n")
			b.WriteString("\tif err != nil {\n\t\tlog.Fatal(err)\n\t}\n")
			b.WriteString("\tfmt.Print(out)\n")
		}
	} else {
		b.WriteString("\t// Available operations:\n")
		for _, op := range def.Operations {
			args := make([]string, len(op.Params))
			for i, p := range op.Params {
				args[i] = p.Name + " " + p.Type
			}
			fmt.Fprintf(&b, "\t// %s(%s)\n", op.Name, strings.Join(args, ", "))
		}
		b.WriteString("\t_ = proxy\n")
	}
	b.WriteString("}\n")
	return b.Bytes(), nil
}

func zeroValueFor(typ string) string {
	switch typ {
	case wsdl.TypeInt:
		return "0"
	case wsdl.TypeDouble:
		return "0.0"
	case wsdl.TypeBoolean:
		return "false"
	}
	return ""
}
