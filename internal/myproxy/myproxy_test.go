package myproxy

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/vtime"
	"repro/internal/xsec"
)

var t0 = time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)

type fixture struct {
	ca     *xsec.CA
	user   *xsec.Credential
	trust  *xsec.TrustStore
	client *Client
	server *Server
	clock  *vtime.Manual
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	ca, err := xsec.NewCA("MyProxyCA", t0, 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.IssueUser("alice", t0, 30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clock := vtime.NewManual(t0)
	srv := NewServer(clock)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return &fixture{
		ca:     ca,
		user:   user,
		trust:  xsec.NewTrustStore(ca.Cert),
		client: &Client{Addr: ln.Addr().String()},
		server: srv,
		clock:  clock,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	f := newFixture(t)
	if err := f.client.Put("alice", "s3cret", f.user); err != nil {
		t.Fatal(err)
	}
	proxy, err := f.client.Get("alice", "s3cret", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if proxy.Leaf().Kind != xsec.KindProxy {
		t.Fatal("retrieved credential is not a proxy")
	}
	id, err := f.trust.VerifyChain(proxy.Chain, t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if id != "/O=Repro/CN=alice" {
		t.Fatalf("identity %q", id)
	}
}

func TestGetDelegatesFreshProxyEachTime(t *testing.T) {
	f := newFixture(t)
	f.client.Put("alice", "pw", f.user)
	p1, err := f.client.Get("alice", "pw", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := f.client.Get("alice", "pw", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Leaf().Serial == p2.Leaf().Serial {
		t.Fatal("server handed out the same proxy twice")
	}
}

func TestGetRespectsRequestedLifetime(t *testing.T) {
	f := newFixture(t)
	f.client.Put("alice", "pw", f.user)
	proxy, err := f.client.Get("alice", "pw", 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	got := proxy.Leaf().NotAfter.Sub(t0)
	if got != 2*time.Hour {
		t.Fatalf("proxy lifetime %v, want 2h", got)
	}
}

func TestBadPassphrase(t *testing.T) {
	f := newFixture(t)
	f.client.Put("alice", "right", f.user)
	if _, err := f.client.Get("alice", "wrong", time.Hour); !errors.Is(err, ErrBadPassphrase) {
		t.Fatalf("got %v", err)
	}
}

func TestNoSuchUser(t *testing.T) {
	f := newFixture(t)
	if _, err := f.client.Get("nobody", "pw", time.Hour); !errors.Is(err, ErrNoSuchUser) {
		t.Fatalf("got %v", err)
	}
}

func TestExpiredStoredCredential(t *testing.T) {
	f := newFixture(t)
	f.client.Put("alice", "pw", f.user)
	f.clock.Advance(60 * 24 * time.Hour) // past the 30-day user cert
	if _, err := f.client.Get("alice", "pw", time.Hour); !errors.Is(err, ErrExpired) {
		t.Fatalf("got %v", err)
	}
}

func TestInfo(t *testing.T) {
	f := newFixture(t)
	f.client.Put("alice", "pw", f.user)
	info, err := f.client.Info("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if info.Subject != "/O=Repro/CN=alice" || !info.StoredAt.Equal(t0) {
		t.Fatalf("info %+v", info)
	}
}

func TestDestroy(t *testing.T) {
	f := newFixture(t)
	f.client.Put("alice", "pw", f.user)
	if f.server.Count() != 1 {
		t.Fatal("credential not stored")
	}
	if err := f.client.Destroy("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if f.server.Count() != 0 {
		t.Fatal("credential not removed")
	}
	if _, err := f.client.Get("alice", "pw", time.Hour); !errors.Is(err, ErrNoSuchUser) {
		t.Fatalf("got %v", err)
	}
}

func TestDestroyRequiresPassphrase(t *testing.T) {
	f := newFixture(t)
	f.client.Put("alice", "pw", f.user)
	if err := f.client.Destroy("alice", "nope"); !errors.Is(err, ErrBadPassphrase) {
		t.Fatalf("got %v", err)
	}
	if f.server.Count() != 1 {
		t.Fatal("credential removed despite bad passphrase")
	}
}

func TestPutOverwrites(t *testing.T) {
	f := newFixture(t)
	f.client.Put("alice", "pw1", f.user)
	other, _ := f.ca.IssueUser("alice2", t0, 24*time.Hour)
	if err := f.client.Put("alice", "pw2", other); err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.Get("alice", "pw1", time.Hour); !errors.Is(err, ErrBadPassphrase) {
		t.Fatalf("old passphrase still works: %v", err)
	}
	p, err := f.client.Get("alice", "pw2", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Leaf().Subject, "alice2") {
		t.Fatalf("got proxy for %q", p.Leaf().Subject)
	}
}

func TestUnknownOp(t *testing.T) {
	f := newFixture(t)
	conn, err := net.Dial("tcp", f.client.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeMsg(conn, request{Op: "bogus"}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := readMsg(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Fatalf("resp %+v", resp)
	}
}

func TestMalformedFrameRejected(t *testing.T) {
	f := newFixture(t)
	conn, err := net.Dial("tcp", f.client.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Oversized length prefix.
	conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var resp response
	if err := readMsg(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("server accepted oversized frame")
	}
}

func TestPutRejectsGarbageCredential(t *testing.T) {
	f := newFixture(t)
	conn, err := net.Dial("tcp", f.client.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	writeMsg(conn, request{Op: OpPut, User: "x", Passphrase: "p", Credential: []byte(`"junk"`)})
	var resp response
	if err := readMsg(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("garbage credential accepted")
	}
}

func TestDialFailure(t *testing.T) {
	c := &Client{Addr: "127.0.0.1:1"}
	if _, err := c.Get("a", "b", time.Hour); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestConcurrentClients(t *testing.T) {
	f := newFixture(t)
	f.client.Put("alice", "pw", f.user)
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, err := f.client.Get("alice", "pw", time.Hour)
			errs <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomTokenUnique(t *testing.T) {
	if randomToken() == randomToken() {
		t.Fatal("tokens collide")
	}
}
