package myproxy

import (
	"testing"
	"time"
)

func BenchmarkLogon(b *testing.B) {
	f := newFixture(b)
	if err := f.client.Put("alice", "pw", f.user); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.client.Get("alice", "pw", time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInfo(b *testing.B) {
	f := newFixture(b)
	if err := f.client.Put("alice", "pw", f.user); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.client.Info("alice", "pw"); err != nil {
			b.Fatal(err)
		}
	}
}
