// Package myproxy reimplements the MyProxy online credential repository
// the paper's Grid layer lists ("The production Grid Layer comprises all
// Grid related services and tools (for example MyProxy, CoG Kit, etc.)").
//
// Users store a long-lived proxy credential under a passphrase; services
// acting on the user's behalf (the Cyberaide agent) later log on with the
// passphrase and receive a freshly delegated short-lived proxy — never the
// stored private key's full lifetime. The protocol is a hand-rolled
// length-prefixed JSON exchange over TCP, one request per connection, in
// the spirit of the original MyProxy text protocol.
package myproxy

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/xsec"
)

// Protocol limits.
const (
	// MaxMessage bounds a single protocol message; credentials are small.
	MaxMessage = 1 << 20
	// DefaultLifetime is the delegated proxy lifetime when the client does
	// not request one (MyProxy's historical default is 12 hours).
	DefaultLifetime = 12 * time.Hour
)

// Errors surfaced to clients as response strings and re-materialised by
// the client into these values.
var (
	ErrNoSuchUser    = errors.New("myproxy: no credential stored for user")
	ErrBadPassphrase = errors.New("myproxy: bad passphrase")
	ErrExpired       = errors.New("myproxy: stored credential expired")
	ErrProtocol      = errors.New("myproxy: protocol error")
)

// Op names the protocol operations.
type Op string

// Protocol operations.
const (
	OpPut     Op = "put"     // store a credential
	OpGet     Op = "get"     // retrieve a freshly delegated proxy
	OpInfo    Op = "info"    // describe the stored credential
	OpDestroy Op = "destroy" // remove the stored credential
)

// request is the single wire message a client sends. Trace carries the
// caller's X-Grid-Trace context (the TCP protocol has no headers, so the
// wire string rides in the message itself).
type request struct {
	Op         Op              `json:"op"`
	User       string          `json:"user"`
	Passphrase string          `json:"passphrase"`
	Credential json.RawMessage `json:"credential,omitempty"`
	LifetimeS  int64           `json:"lifetime_s,omitempty"`
	Trace      string          `json:"trace,omitempty"`
}

// response is the single wire message the server answers with.
type response struct {
	OK         bool            `json:"ok"`
	Error      string          `json:"error,omitempty"`
	Credential json.RawMessage `json:"credential,omitempty"`
	Info       *Info           `json:"info,omitempty"`
}

// Info describes a stored credential without revealing secrets.
type Info struct {
	User     string    `json:"user"`
	Subject  string    `json:"subject"`
	NotAfter time.Time `json:"not_after"`
	StoredAt time.Time `json:"stored_at"`
}

type stored struct {
	cred     *xsec.Credential
	passHash [32]byte
	salt     [16]byte
	storedAt time.Time
}

// Server is the repository. Serve accepts connections from any
// net.Listener (including a netsim-shaped one).
type Server struct {
	clock  vtime.Clock
	tracer *trace.Tracer

	mu    sync.Mutex
	creds map[string]*stored
	wg    sync.WaitGroup
	ln    net.Listener
}

// NewServer returns an empty repository on clock.
func NewServer(clock vtime.Clock) *Server {
	if clock == nil {
		clock = vtime.Real{}
	}
	return &Server{clock: clock, creds: make(map[string]*stored)}
}

// Serve accepts and handles connections until the listener closes. It
// always returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(c)
		}()
	}
}

// Close stops the listener passed to Serve.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return nil
	}
	return ln.Close()
}

// SetTracer enables request tracing: traced requests record one
// "myproxy.<op>" span. Call before Serve; a nil tracer keeps tracing
// off.
func (s *Server) SetTracer(t *trace.Tracer) { s.tracer = t }

// Count reports how many credentials are stored (monitoring/tests).
func (s *Server) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.creds)
}

func (s *Server) handle(c net.Conn) {
	defer c.Close()
	var req request
	if err := readMsg(c, &req); err != nil {
		writeMsg(c, response{Error: ErrProtocol.Error()})
		return
	}
	resp := s.dispatch(&req)
	writeMsg(c, resp)
}

func (s *Server) dispatch(req *request) response {
	// The trace context is decoded before the passphrase check; malformed
	// contexts degrade to "untraced", never to a rejection.
	var sp *trace.Span
	if s.tracer != nil {
		if tc, ok := trace.Parse(req.Trace); ok {
			sp = s.tracer.StartSpan("myproxy."+string(req.Op), tc)
			sp.Set("user", req.User)
		}
	}
	resp := s.dispatchOp(req)
	if resp.Error != "" {
		sp.Error(resp.Error)
	}
	sp.End()
	return resp
}

func (s *Server) dispatchOp(req *request) response {
	switch req.Op {
	case OpPut:
		return s.put(req)
	case OpGet:
		return s.get(req)
	case OpInfo:
		return s.info(req)
	case OpDestroy:
		return s.destroy(req)
	default:
		return response{Error: fmt.Sprintf("myproxy: unknown op %q", req.Op)}
	}
}

func (s *Server) put(req *request) response {
	cred, err := xsec.UnmarshalCredential(req.Credential)
	if err != nil || cred.Leaf() == nil {
		return response{Error: ErrProtocol.Error() + ": bad credential"}
	}
	var salt [16]byte
	if _, err := rand.Read(salt[:]); err != nil {
		return response{Error: "myproxy: entropy unavailable"}
	}
	st := &stored{
		cred:     cred,
		salt:     salt,
		passHash: hashPass(salt, req.Passphrase),
		storedAt: s.clock.Now(),
	}
	s.mu.Lock()
	s.creds[req.User] = st
	s.mu.Unlock()
	return response{OK: true}
}

func (s *Server) lookup(req *request) (*stored, error) {
	s.mu.Lock()
	st, ok := s.creds[req.User]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNoSuchUser
	}
	want := hashPass(st.salt, req.Passphrase)
	if subtle.ConstantTimeCompare(want[:], st.passHash[:]) != 1 {
		return nil, ErrBadPassphrase
	}
	return st, nil
}

func (s *Server) get(req *request) response {
	st, err := s.lookup(req)
	if err != nil {
		return response{Error: err.Error()}
	}
	now := s.clock.Now()
	if !st.cred.Leaf().ValidAt(now) {
		return response{Error: ErrExpired.Error()}
	}
	lifetime := DefaultLifetime
	if req.LifetimeS > 0 {
		lifetime = time.Duration(req.LifetimeS) * time.Second
	}
	proxy, err := st.cred.Delegate(now, lifetime)
	if err != nil {
		return response{Error: err.Error()}
	}
	b, err := proxy.Marshal()
	if err != nil {
		return response{Error: err.Error()}
	}
	return response{OK: true, Credential: b}
}

func (s *Server) info(req *request) response {
	st, err := s.lookup(req)
	if err != nil {
		return response{Error: err.Error()}
	}
	leaf := st.cred.Leaf()
	return response{OK: true, Info: &Info{
		User:     req.User,
		Subject:  leaf.Subject,
		NotAfter: leaf.NotAfter,
		StoredAt: st.storedAt,
	}}
}

func (s *Server) destroy(req *request) response {
	if _, err := s.lookup(req); err != nil {
		return response{Error: err.Error()}
	}
	s.mu.Lock()
	delete(s.creds, req.User)
	s.mu.Unlock()
	return response{OK: true}
}

func hashPass(salt [16]byte, pass string) [32]byte {
	h := sha256.New()
	h.Write(salt[:])
	io.WriteString(h, pass)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Client talks to a Server. Dial defaults to net.Dial; override it to
// route through a shaped netsim.Dialer.
type Client struct {
	Addr string
	Dial func(network, addr string) (net.Conn, error)
	// Trace, when non-empty, rides every request so the server parents
	// its spans under the caller's.
	Trace string
}

func (c *Client) dial() (net.Conn, error) {
	d := c.Dial
	if d == nil {
		d = net.Dial
	}
	return d("tcp", c.Addr)
}

func (c *Client) roundTrip(req request) (*response, error) {
	req.Trace = c.Trace
	conn, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("myproxy: dial %s: %w", c.Addr, err)
	}
	defer conn.Close()
	if err := writeMsg(conn, req); err != nil {
		return nil, err
	}
	var resp response
	if err := readMsg(conn, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, mapError(resp.Error)
	}
	return &resp, nil
}

// mapError re-materialises well-known server errors so callers can use
// errors.Is across the wire.
func mapError(msg string) error {
	for _, e := range []error{ErrNoSuchUser, ErrBadPassphrase, ErrExpired} {
		if msg == e.Error() {
			return e
		}
	}
	return errors.New(msg)
}

// Put stores cred for user under passphrase.
func (c *Client) Put(user, passphrase string, cred *xsec.Credential) error {
	b, err := cred.Marshal()
	if err != nil {
		return err
	}
	_, err = c.roundTrip(request{Op: OpPut, User: user, Passphrase: passphrase, Credential: b})
	return err
}

// Get logs on and returns a freshly delegated proxy valid for lifetime.
func (c *Client) Get(user, passphrase string, lifetime time.Duration) (*xsec.Credential, error) {
	resp, err := c.roundTrip(request{
		Op: OpGet, User: user, Passphrase: passphrase,
		LifetimeS: int64(lifetime / time.Second),
	})
	if err != nil {
		return nil, err
	}
	return xsec.UnmarshalCredential(resp.Credential)
}

// Info describes the stored credential.
func (c *Client) Info(user, passphrase string) (*Info, error) {
	resp, err := c.roundTrip(request{Op: OpInfo, User: user, Passphrase: passphrase})
	if err != nil {
		return nil, err
	}
	return resp.Info, nil
}

// Destroy removes the stored credential.
func (c *Client) Destroy(user, passphrase string) error {
	_, err := c.roundTrip(request{Op: OpDestroy, User: user, Passphrase: passphrase})
	return err
}

// readMsg reads one length-prefixed JSON message.
func readMsg(r io.Reader, v any) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return fmt.Errorf("%w: short length: %v", ErrProtocol, err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxMessage {
		return fmt.Errorf("%w: message of %d bytes exceeds limit", ErrProtocol, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("%w: short body: %v", ErrProtocol, err)
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	return nil
}

// writeMsg writes one length-prefixed JSON message.
func writeMsg(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(b)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// randomToken is exported for tests needing unique users.
func randomToken() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}
