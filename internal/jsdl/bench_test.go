package jsdl

import "testing"

func BenchmarkMarshal(b *testing.B) {
	d := validDesc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(&d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	d := validDesc()
	doc, err := Marshal(&d)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSL(b *testing.B) {
	d := validDesc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RSL(&d)
	}
}
