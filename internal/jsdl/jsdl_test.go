package jsdl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func validDesc() Description {
	return Description{
		Name:       "montecarlo-run",
		Owner:      "/O=Repro/CN=alice",
		Executable: "montecarlo.gsh",
		Arguments:  map[string]string{"samples": "10000", "seed": "7"},
		Site:       "ncsa-abe",
		CPUs:       4,
		WallTime:   30 * time.Minute,
		StageIn:    []string{"input.dat"},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	d := validDesc()
	doc, err := Marshal(&d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(doc)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, doc)
	}
	if got.Name != d.Name || got.Owner != d.Owner || got.Executable != d.Executable {
		t.Fatalf("identity lost: %+v", got)
	}
	if got.Site != d.Site || got.CPUs != d.CPUs || got.WallTime != d.WallTime {
		t.Fatalf("resources lost: %+v", got)
	}
	if got.Arguments["samples"] != "10000" || got.Arguments["seed"] != "7" {
		t.Fatalf("arguments lost: %+v", got.Arguments)
	}
	if len(got.StageIn) != 1 || got.StageIn[0] != "input.dat" {
		t.Fatalf("stage-in lost: %+v", got.StageIn)
	}
}

func TestNormalizeDefaultsCPUs(t *testing.T) {
	d := Description{Owner: "o", Executable: "e"}
	d.Normalize()
	if d.CPUs != 1 {
		t.Fatalf("cpus %d", d.CPUs)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		mutate func(*Description)
		want   string
	}{
		{func(d *Description) { d.Executable = "" }, "executable required"},
		{func(d *Description) { d.Owner = "" }, "owner required"},
		{func(d *Description) { d.CPUs = -1 }, "cpus"},
		{func(d *Description) { d.CPUs = MaxCPUs + 1 }, "cpus"},
		{func(d *Description) { d.WallTime = -time.Second }, "walltime"},
		{func(d *Description) { d.WallTime = MaxWallTime + 1 }, "walltime"},
		{func(d *Description) {
			d.Arguments = map[string]string{"": "x"}
		}, "empty argument name"},
	}
	for i, tc := range cases {
		d := validDesc()
		tc.mutate(&d)
		err := d.Validate()
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d: err %v", i, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: err %q, want %q", i, err, tc.want)
		}
	}
}

func TestValidateTooManyArgs(t *testing.T) {
	d := validDesc()
	d.Arguments = map[string]string{}
	for i := 0; i < MaxArgs+1; i++ {
		d.Arguments[strings.Repeat("a", i+1)] = "v"
	}
	if err := d.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("got %v", err)
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	d := Description{}
	if _, err := Marshal(&d); !errors.Is(err, ErrInvalid) {
		t.Fatalf("got %v", err)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	for _, src := range []string{"", "<nope/>", "not xml"} {
		if _, err := Unmarshal([]byte(src)); !errors.Is(err, ErrNotJSDL) {
			t.Errorf("Unmarshal(%q) err %v", src, err)
		}
	}
}

func TestRSLForm(t *testing.T) {
	d := validDesc()
	rsl := RSL(&d)
	for _, want := range []string{
		"&(executable=montecarlo.gsh)", "(count=4)", "(maxWallTime=30)",
		"(resourceManagerContact=ncsa-abe)", "samples=10000",
	} {
		if !strings.Contains(rsl, want) {
			t.Errorf("RSL %q missing %q", rsl, want)
		}
	}
}

func TestRSLQuoting(t *testing.T) {
	d := Description{Owner: "o", Executable: `weird "name".gsh`, CPUs: 1}
	rsl := RSL(&d)
	if !strings.Contains(rsl, `"weird ""name"".gsh"`) {
		t.Fatalf("RSL %q", rsl)
	}
}

func TestRSLDefaultsCount(t *testing.T) {
	d := Description{Owner: "o", Executable: "e"}
	if !strings.Contains(RSL(&d), "(count=1)") {
		t.Fatal("count default missing")
	}
}

// Property: marshal/unmarshal preserves arbitrary argument maps (with
// XML-safe keys).
func TestPropertyArgumentsRoundTrip(t *testing.T) {
	f := func(vals []string) bool {
		d := Description{Owner: "o", Executable: "e.gsh", CPUs: 1}
		d.Arguments = map[string]string{}
		for i, v := range vals {
			if i >= 20 {
				break
			}
			clean := strings.Map(func(r rune) rune {
				if r < 0x20 {
					return -1
				}
				return r
			}, v)
			d.Arguments["arg"+string(rune('a'+i))] = clean
		}
		doc, err := Marshal(&d)
		if err != nil {
			return false
		}
		got, err := Unmarshal(doc)
		if err != nil {
			return false
		}
		if len(got.Arguments) != len(d.Arguments) {
			return false
		}
		for k, v := range d.Arguments {
			if got.Arguments[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
