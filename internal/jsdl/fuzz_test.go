package jsdl

import "testing"

func FuzzUnmarshal(f *testing.F) {
	d := validDesc()
	if doc, err := Marshal(&d); err == nil {
		f.Add(doc)
	}
	f.Add([]byte("<JobDefinition/>"))
	f.Add([]byte(""))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		desc, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted descriptions are valid and round-trip.
		if err := desc.Validate(); err != nil {
			t.Fatalf("unmarshal accepted invalid description: %v", err)
		}
		doc, err := Marshal(desc)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		again, err := Unmarshal(doc)
		if err != nil {
			t.Fatalf("second unmarshal failed: %v", err)
		}
		if again.Executable != desc.Executable || again.CPUs != desc.CPUs {
			t.Fatal("round trip drifted")
		}
	})
}
