// Package appliance implements the Cyberaide onServe virtual appliance:
// the on-demand-deployable access layer of the paper ("The Cyberaide
// onServe virtual appliance is deployed on demand, hosts applications as
// Web services, accepts Web service invocations, and finally ... executes
// them on production Grids"). An Image is built from a configuration
// (the rBuilder step); Boot provisions the portal, the UDDI registry, the
// blob database, the SOAP container, and the Cyberaide agent behind one
// HTTP endpoint, and Shutdown tears it down.
package appliance

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/blobdb"
	"repro/internal/core"
	"repro/internal/cyberaide"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/portal"
	"repro/internal/soap"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/uddi"
	"repro/internal/vtime"
)

// Config describes an appliance image.
type Config struct {
	// Endpoints locates the production Grid's access points.
	Endpoints cyberaide.Endpoints
	// Clock; nil means real time.
	Clock vtime.Clock
	// Probe accounts the appliance host's resources; may be nil.
	Probe *metrics.Probe
	// Cost is the CPU cost model; zero value disables cost burning.
	Cost metrics.Cost
	// DBDir persists the database; empty keeps it in memory.
	DBDir string
	// GridHTTP carries grid-bound traffic (agent); nil uses the default
	// client. Experiments install a shaped transport here.
	GridHTTP *http.Client
	// MyProxyDial overrides the MyProxy TCP dialer (for shaping).
	MyProxyDial func(network, addr string) (net.Conn, error)
	// UserProfile shapes the appliance's user-facing listener (the LAN of
	// Fig. 8); nil leaves it unshaped.
	UserProfile *netsim.Profile
	// PollInterval / InvocationTimeout / ProxyLifetime tune the onServe
	// pipeline; zero values use the core defaults.
	PollInterval      time.Duration
	InvocationTimeout time.Duration
	ProxyLifetime     time.Duration
	// StagingCache / DirectDBWrite / UseLongPoll select the ablation and
	// extension variants (see core.Config).
	StagingCache  bool
	DirectDBWrite bool
	UseLongPoll   bool
	// SessionCache / StatsTTL select the invocation hot-path caches (see
	// core.Config); both default to the paper-faithful behaviour.
	SessionCache bool
	StatsTTL     time.Duration
	// PollHub / PollHubShards select the sharded batched status collector
	// (see core.Config); off keeps one poller goroutine per invocation.
	PollHub       bool
	PollHubShards int
	// PushEvents selects the push-based collector: one long-lived
	// /gram/events stream per session instead of polling, with the poll
	// hub as its fallback rung (see core.Config). Off by default.
	PushEvents bool
	// CoalesceStaging / SubmitHub / SubmitHubWindow select the batched
	// submission front-end (see core.Config); off keeps one upload and
	// one submit RPC per invocation.
	CoalesceStaging bool
	SubmitHub       bool
	SubmitHubWindow time.Duration
	// ChunkedStaging / ChunkBytes / WireCompression select the chunked,
	// content-addressed staging data plane (see core.Config); off keeps
	// the paper's monolithic uncompressed PUT per staging.
	ChunkedStaging  bool
	ChunkBytes      int
	WireCompression bool
	// DataAwarePlacement / PlacementProbeTTL select the possession-aware
	// site scorer; ReplicateTopK / ReplicateWorkers /
	// ReplicateBudgetBytes enable and bound the background pre-replicator
	// (see core.Config). All off by default.
	DataAwarePlacement   bool
	PlacementProbeTTL    time.Duration
	ReplicateTopK        int
	ReplicateWorkers     int
	ReplicateBudgetBytes int64
	// BlobCacheBytes / GroupCommit tune the blob database (see
	// blobdb.Options); zero values keep the stock behaviour.
	BlobCacheBytes int64
	GroupCommit    bool
	// WALShards / SegmentBytes / AutoCompact select the sharded, segmented
	// storage engine and its background compactor (see blobdb.Options);
	// zero values keep the stock single-WAL layout.
	WALShards    int
	SegmentBytes int64
	AutoCompact  bool
	// Trace, when non-nil, turns on distributed tracing in the onServe
	// pipeline, recording spans into this collector. Share one collector
	// with gridenv.Options.Trace to get single cross-service trees.
	Trace *trace.Collector
	// Tenancy, when non-nil, boots the multi-tenant control plane (API
	// keys, policy, rate limits, fair-share quotas, audit) from this
	// declarative config; cmd/onserve loads it from -keys-file. Nil —
	// the default — keeps the appliance fully anonymous.
	Tenancy *tenant.Config
}

// Image is a built appliance image: validated configuration plus the
// component manifest, ready to boot.
type Image struct {
	cfg      Config
	Manifest []string
}

// BuildImage validates cfg and returns a bootable image.
func BuildImage(cfg Config) (*Image, error) {
	if cfg.Endpoints.GramURL == "" || cfg.Endpoints.MyProxyAddr == "" {
		return nil, errors.New("appliance: grid endpoints (GRAM, MyProxy) required")
	}
	if len(cfg.Endpoints.FTPURLs) == 0 {
		return nil, errors.New("appliance: at least one GridFTP endpoint required")
	}
	if cfg.Clock == nil {
		cfg.Clock = vtime.Real{}
	}
	return &Image{
		cfg: cfg,
		Manifest: []string{
			"cyberaide-portal",
			"uddi-registry",
			"blob-database",
			"soap-container",
			"cyberaide-agent",
			"onserve-core",
		},
	}, nil
}

// Appliance is a booted image.
type Appliance struct {
	OnServe   *core.OnServe
	Agent     *cyberaide.Agent
	Registry  *uddi.Registry
	Container *soap.Server
	DB        *blobdb.DB
	Portal    *portal.Portal

	// BaseURL is the appliance's public HTTP root.
	BaseURL string

	srv          *http.Server
	ln           net.Listener
	shutdownOnce sync.Once
}

// Boot starts the appliance on ln; a nil ln listens on an ephemeral
// loopback port. The returned appliance is serving when Boot returns.
func (img *Image) Boot(ln net.Listener) (*Appliance, error) {
	cfg := img.cfg
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("appliance: listen: %w", err)
		}
	}
	baseURL := "http://" + ln.Addr().String()
	if cfg.UserProfile != nil {
		ln = netsim.NewListener(ln, cfg.UserProfile, cfg.Probe)
	}

	dbOpts := blobdb.Options{
		Dir: cfg.DBDir, Clock: cfg.Clock, Probe: cfg.Probe, Cost: cfg.Cost,
		BlobCacheBytes: cfg.BlobCacheBytes, GroupCommit: cfg.GroupCommit,
		WALShards: cfg.WALShards, SegmentBytes: cfg.SegmentBytes,
		AutoCompact: cfg.AutoCompact,
	}
	if cfg.Trace != nil {
		dbOpts.Tracer = trace.NewTracer("blobdb", cfg.Clock, cfg.Trace)
	}
	db, err := blobdb.Open(dbOpts)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("appliance: open database: %w", err)
	}
	container := soap.NewServer(cfg.Probe, cfg.Cost)
	registry := uddi.NewRegistry(cfg.Clock)
	agent := cyberaide.New(cyberaide.Options{
		Endpoints:   cfg.Endpoints,
		Clock:       cfg.Clock,
		Probe:       cfg.Probe,
		Cost:        cfg.Cost,
		HTTP:        cfg.GridHTTP,
		MyProxyDial: cfg.MyProxyDial,
	})
	coreCfg := core.Config{
		DB:                   db,
		Container:            container,
		Registry:             registry,
		Agent:                agent,
		BaseURL:              baseURL,
		Clock:                cfg.Clock,
		Probe:                cfg.Probe,
		Cost:                 cfg.Cost,
		PollInterval:         cfg.PollInterval,
		InvocationTimeout:    cfg.InvocationTimeout,
		ProxyLifetime:        cfg.ProxyLifetime,
		StagingCache:         cfg.StagingCache,
		DirectDBWrite:        cfg.DirectDBWrite,
		UseLongPoll:          cfg.UseLongPoll,
		SessionCache:         cfg.SessionCache,
		StatsTTL:             cfg.StatsTTL,
		PollHub:              cfg.PollHub,
		PollHubShards:        cfg.PollHubShards,
		PushEvents:           cfg.PushEvents,
		CoalesceStaging:      cfg.CoalesceStaging,
		SubmitHub:            cfg.SubmitHub,
		SubmitHubWindow:      cfg.SubmitHubWindow,
		ChunkedStaging:       cfg.ChunkedStaging,
		ChunkBytes:           cfg.ChunkBytes,
		WireCompression:      cfg.WireCompression,
		DataAwarePlacement:   cfg.DataAwarePlacement,
		PlacementProbeTTL:    cfg.PlacementProbeTTL,
		ReplicateTopK:        cfg.ReplicateTopK,
		ReplicateWorkers:     cfg.ReplicateWorkers,
		ReplicateBudgetBytes: cfg.ReplicateBudgetBytes,
	}
	if cfg.Trace != nil {
		coreCfg.Tracing = trace.NewTracer("onserve", cfg.Clock, cfg.Trace)
	}
	var ctl *tenant.Controller
	if cfg.Tenancy != nil {
		topts := tenant.Options{Clock: cfg.Clock, DB: db}
		if cfg.Trace != nil {
			topts.Tracer = trace.NewTracer("tenant", cfg.Clock, cfg.Trace)
		}
		ctl, err = tenant.NewController(*cfg.Tenancy, topts)
		if err != nil {
			db.Close()
			ln.Close()
			return nil, fmt.Errorf("appliance: tenancy: %w", err)
		}
		coreCfg.Tenancy = ctl
	}
	ons, err := core.New(coreCfg)
	if err != nil {
		db.Close()
		ln.Close()
		return nil, err
	}

	// Deploy the built-in toolkit services: the UDDI registry and the
	// Cyberaide agent facade ("A SOAP server runs the deployed Web
	// services as well as some services related to the Cyberaide
	// toolkit").
	if err := container.Deploy(registry.SOAPService()); err != nil {
		db.Close()
		ln.Close()
		return nil, err
	}
	if err := container.Deploy(agent.SOAPService()); err != nil {
		db.Close()
		ln.Close()
		return nil, err
	}

	p := portal.New(ons, registry, cfg.Probe, cfg.Cost)
	mux := http.NewServeMux()
	var services http.Handler = container
	if ctl != nil {
		// The SOAP container is the portal's side door: without this
		// guard a keyless caller could drive generated services (and
		// their execute operations) directly. SOAP calls authenticate
		// with the same X-Grid-Key header and pass the invoke policy;
		// the full rate/quota pipeline stays at the portal edge, which
		// is the only surface that creates invocations on behalf of
		// anonymous SOAP-era clients when tenancy is off.
		services = guardServices(ctl, container)
	}
	mux.Handle("/services/", services)
	mux.Handle("/", p)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)

	return &Appliance{
		OnServe:   ons,
		Agent:     agent,
		Registry:  registry,
		Container: container,
		DB:        db,
		Portal:    p,
		BaseURL:   baseURL,
		srv:       srv,
		ln:        ln,
	}, nil
}

// Shutdown stops the HTTP server and closes the database. It is
// idempotent: fleet supervisors (the gateway's Kill path and its final
// Shutdown sweep) may both reach a crashed appliance.
func (a *Appliance) Shutdown() error {
	var err error
	a.shutdownOnce.Do(func() {
		a.srv.Close()
		a.ln.Close()
		err = a.DB.Close()
	})
	return err
}

// guardServices authenticates SOAP traffic against the tenant control
// plane. Reads (WSDL fetches) stay open; POSTs — SOAP calls — need a
// valid key whose policy permits invoking the addressed service.
// Errors use the portal's JSON envelope so one client error path
// covers both doors.
func guardServices(ctl *tenant.Controller, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet || r.Method == http.MethodHead {
			next.ServeHTTP(w, r)
			return
		}
		pr, err := ctl.Authenticate(r.Header.Get(tenant.KeyHeader), tenant.VerbInvoke)
		if err != nil {
			writeGuardError(w, http.StatusUnauthorized, "unauthorized", err)
			return
		}
		name := strings.TrimPrefix(r.URL.Path, "/services/")
		if !ctl.Allows(pr.Owner, tenant.VerbInvoke, name) {
			writeGuardError(w, http.StatusForbidden, "forbidden", tenant.ErrForbidden)
			return
		}
		next.ServeHTTP(w, r)
	})
}

func writeGuardError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "code": code})
}

// ServicesURL returns the SOAP container root URL.
func (a *Appliance) ServicesURL() string { return a.BaseURL + a.Container.BasePath() }

// RegistryURL returns the UDDI registry service endpoint.
func (a *Appliance) RegistryURL() string { return a.ServicesURL() + uddi.ServiceName }
