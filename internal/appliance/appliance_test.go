package appliance

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"mime/multipart"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cyberaide"
	"repro/internal/gridenv"
	"repro/internal/gridsim"
	"repro/internal/metrics"
	"repro/internal/soap"
	"repro/internal/uddi"
	"repro/internal/vtime"
	"repro/internal/wsclient"
)

type world struct {
	app   *Appliance
	env   *gridenv.Env
	clock *vtime.Scaled
}

func boot(t *testing.T, mutate func(*Config)) *world {
	t.Helper()
	clk := vtime.NewScaled(20000)
	env, err := gridenv.Start(gridenv.Options{
		Clock: clk,
		Sites: []gridsim.SiteConfig{
			{Name: "siteA", Nodes: 2, CoresPerNode: 4},
			{Name: "siteB", Nodes: 1, CoresPerNode: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	if _, err := env.AddUser("alice", "pw", 0); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Endpoints:         env.Endpoints(),
		Clock:             clk,
		Cost:              metrics.DefaultCost(),
		PollInterval:      2 * time.Second,
		InvocationTimeout: time.Hour,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	img, err := BuildImage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := img.Boot(nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { app.Shutdown() })
	app.OnServe.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "pw"})
	return &world{app: app, env: env, clock: clk}
}

func (w *world) uploadViaPortal(t *testing.T, filename, program string, params [][2]string) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("file", filename)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(fw, program)
	mw.WriteField("user", "alice")
	mw.WriteField("description", "uploaded in test")
	for i, p := range params {
		mw.WriteField("paramName"+string(rune('1'+i)), p[0])
		mw.WriteField("paramType"+string(rune('1'+i)), p[1])
	}
	mw.Close()
	resp, err := http.Post(w.app.BaseURL+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("upload reply %q: %v", body, err)
	}
	return out
}

func TestBuildImageValidation(t *testing.T) {
	if _, err := BuildImage(Config{}); err == nil {
		t.Fatal("empty config built")
	}
	img, err := BuildImage(Config{Endpoints: cyberaide.Endpoints{
		GramURL:     "http://gram.test",
		MyProxyAddr: "myproxy.test:7512",
		FTPURLs:     map[string]string{"siteA": "http://ftp.test"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Manifest) < 5 {
		t.Fatalf("manifest %v", img.Manifest)
	}
}

func TestFullSaaSLoopThroughApplianceHTTP(t *testing.T) {
	w := boot(t, nil)

	// Scenario A: upload through the portal.
	rec := w.uploadViaPortal(t, "demo.gsh", "echo v=${x}\ncompute 500ms\n", [][2]string{{"x", "int"}})
	if rec["name"] != "DemoService" {
		t.Fatalf("published %v", rec)
	}

	// Scenario B step 1: discover through the UDDI SOAP service.
	var sc soap.Client
	found, err := sc.Call(w.app.RegistryURL(), uddi.Namespace, "find",
		[]soap.Param{{Name: "pattern", Value: "Demo%"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := uddi.DecodeRecords(found)
	if err != nil || len(recs) != 1 {
		t.Fatalf("uddi records %v err %v", recs, err)
	}

	// Scenario B step 2: wsimport the WSDL and build a client proxy.
	proxy, err := wsclient.ImportURL(recs[0].Endpoint, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Scenario B step 3: invoke; the grid executes; collect output.
	ticket, err := proxy.Invoke("execute", map[string]string{"x": "7"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := proxy.Invoke("wait", map[string]string{"ticket": ticket})
	if err != nil {
		t.Fatal(err)
	}
	if out != "v=7\n" {
		t.Fatalf("output %q", out)
	}
}

func TestPortalHomeListsServices(t *testing.T) {
	w := boot(t, nil)
	w.uploadViaPortal(t, "alpha.gsh", "echo a\n", nil)
	resp, err := http.Get(w.app.BaseURL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "AlphaService") {
		t.Fatalf("home page missing service:\n%s", body)
	}
	if !strings.Contains(string(body), "Upload file and generate WebService") {
		t.Fatal("upload dialog missing")
	}
}

func TestPortalJSONAPI(t *testing.T) {
	w := boot(t, nil)
	w.uploadViaPortal(t, "api.gsh", "echo out=${n}\n", [][2]string{{"n", "int"}})

	// List services.
	resp, err := http.Get(w.app.BaseURL + "/api/services")
	if err != nil {
		t.Fatal(err)
	}
	var services []core.ExecutableInfo
	json.NewDecoder(resp.Body).Decode(&services)
	resp.Body.Close()
	if len(services) != 1 || services[0].ServiceName != "ApiService" {
		t.Fatalf("services %+v", services)
	}

	// Invoke.
	payload, _ := json.Marshal(map[string]any{
		"service": "ApiService", "args": map[string]string{"n": "9"},
	})
	resp, err = http.Post(w.app.BaseURL+"/api/invoke", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var invReply map[string]string
	json.NewDecoder(resp.Body).Decode(&invReply)
	resp.Body.Close()
	ticket := invReply["ticket"]
	if ticket == "" {
		t.Fatalf("invoke reply %v", invReply)
	}

	// Wait for the result.
	resp, err = http.Get(w.app.BaseURL + "/api/wait?ticket=" + ticket)
	if err != nil {
		t.Fatal(err)
	}
	var waitReply map[string]string
	json.NewDecoder(resp.Body).Decode(&waitReply)
	resp.Body.Close()
	if waitReply["state"] != "DONE" || waitReply["output"] != "out=9\n" {
		t.Fatalf("wait reply %v", waitReply)
	}

	// Status and output endpoints agree.
	resp, _ = http.Get(w.app.BaseURL + "/api/status?ticket=" + ticket)
	var st map[string]string
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st["state"] != "DONE" {
		t.Fatalf("status %v", st)
	}
	resp, _ = http.Get(w.app.BaseURL + "/api/output?ticket=" + ticket)
	outBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(outBody) != "out=9\n" {
		t.Fatalf("output %q", outBody)
	}
}

func TestPortalErrors(t *testing.T) {
	w := boot(t, nil)
	// Unknown service info.
	resp, err := http.Get(w.app.BaseURL + "/api/service?name=Nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Unknown ticket.
	resp, _ = http.Get(w.app.BaseURL + "/api/status?ticket=inv-000000-ffffffffffff")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Upload with unregistered user.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormFile("file", "f.gsh")
	io.WriteString(fw, "echo x\n")
	mw.WriteField("user", "mallory")
	mw.Close()
	resp, err = http.Post(w.app.BaseURL+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Upload GET not allowed.
	resp, _ = http.Get(w.app.BaseURL + "/upload")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestPortalDeleteService(t *testing.T) {
	w := boot(t, nil)
	w.uploadViaPortal(t, "gone.gsh", "echo x\n", nil)
	resp, err := http.Post(w.app.BaseURL+"/api/delete?name=GoneService", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := w.app.OnServe.ServiceInfo("GoneService"); !errors.Is(err, core.ErrNoSuchService) {
		t.Fatalf("got %v", err)
	}
}

func TestPortalCancel(t *testing.T) {
	w := boot(t, nil)
	w.uploadViaPortal(t, "long.gsh", "emit 2s 10000 t\n", nil)
	payload, _ := json.Marshal(map[string]any{"service": "LongService"})
	resp, err := http.Post(w.app.BaseURL+"/api/invoke", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var invReply map[string]string
	json.NewDecoder(resp.Body).Decode(&invReply)
	resp.Body.Close()
	resp, err = http.Post(w.app.BaseURL+"/api/cancel?ticket="+invReply["ticket"], "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	inv, err := w.app.OnServe.Invocation(invReply["ticket"])
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-inv.DoneChan():
	case <-time.After(10 * time.Second):
		t.Fatal("cancel never landed")
	}
	if inv.State() != core.InvCancelled {
		t.Fatalf("state %s", inv.State())
	}
}

func TestApplianceHostsToolkitServices(t *testing.T) {
	w := boot(t, nil)
	names := w.app.Container.Names()
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "UDDIRegistry") || !strings.Contains(joined, "CyberaideAgent") {
		t.Fatalf("toolkit services missing: %v", names)
	}
}

func TestAppliancePersistentDBSurvivesReboot(t *testing.T) {
	dir := t.TempDir()
	clk := vtime.NewScaled(20000)
	env, err := gridenv.Start(gridenv.Options{Clock: clk, Sites: []gridsim.SiteConfig{
		{Name: "siteA", Nodes: 1, CoresPerNode: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	env.AddUser("alice", "pw", 0)
	cfg := Config{Endpoints: env.Endpoints(), Clock: clk, DBDir: dir}
	img, err := BuildImage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := img.Boot(nil)
	if err != nil {
		t.Fatal(err)
	}
	app.OnServe.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "pw"})
	if _, err := app.OnServe.UploadAndGenerate("alice", "keep.gsh", "", nil, []byte("echo x\n")); err != nil {
		t.Fatal(err)
	}
	app.Shutdown()

	app2, err := img.Boot(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer app2.Shutdown()
	// The executable record survives the reboot in the database.
	if _, err := app2.DB.Table(core.ExecutablesTable).Stat("KeepService"); err != nil {
		t.Fatalf("record lost across reboot: %v", err)
	}
}
