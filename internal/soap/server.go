package soap

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wsdl"
)

// MaxRequestBytes bounds one SOAP request (uploads travel through the
// portal or GridFTP, not through SOAP bodies, but service generation
// requests can still carry sizeable payloads).
const MaxRequestBytes = 256 << 20

// Handler implements one operation. It receives the decoded message and
// returns the payload for the <return> element.
type Handler func(req *Request) (string, error)

// Request carries everything a handler may need.
type Request struct {
	Msg        *Message
	Args       map[string]string
	RemoteAddr string
	Service    *Service
	Op         *wsdl.OperationDef
	// Trace is the raw X-Grid-Trace header value (possibly empty or
	// malformed — handlers parse it with trace.Parse, which degrades
	// malformed contexts to "untraced").
	Trace string
}

// Service is a deployed SOAP service: its WSDL-facing definition plus the
// operation handlers.
type Service struct {
	Def      wsdl.ServiceDef
	handlers map[string]Handler

	statsMu  sync.Mutex
	requests int64
	faults   int64
}

// ServiceStats is a monitoring snapshot for one deployed service —
// §IV requires that generated services "can be accessed, published,
// monitored and manipulated like a normal Web service".
type ServiceStats struct {
	Name     string `json:"name"`
	Requests int64  `json:"requests"`
	Faults   int64  `json:"faults"`
}

func (s *Service) count(fault bool) {
	s.statsMu.Lock()
	s.requests++
	if fault {
		s.faults++
	}
	s.statsMu.Unlock()
}

// Stats snapshots the service's counters.
func (s *Service) Stats() ServiceStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return ServiceStats{Name: s.Def.Name, Requests: s.requests, Faults: s.faults}
}

// NewService builds a service from a definition. Handlers are attached
// with Bind.
func NewService(def wsdl.ServiceDef) *Service {
	return &Service{Def: def, handlers: make(map[string]Handler)}
}

// Bind attaches a handler to the named operation; the operation must
// exist in the definition.
func (s *Service) Bind(op string, h Handler) error {
	if s.Def.Operation(op) == nil {
		return fmt.Errorf("soap: service %s has no operation %q", s.Def.Name, op)
	}
	s.handlers[op] = h
	return nil
}

// MustBind is Bind for static wiring known correct at compile time.
func (s *Service) MustBind(op string, h Handler) {
	if err := s.Bind(op, h); err != nil {
		panic(err)
	}
}

// Server is the SOAP container. Services deploy and undeploy at runtime —
// the mechanism onServe uses to bring generated services online. It
// serves under basePath (default "/services/"): POST invokes, GET with
// ?wsdl returns the service description.
type Server struct {
	basePath string
	probe    *metrics.Probe
	cost     metrics.Cost

	mu       sync.RWMutex
	services map[string]*Service
}

// NewServer returns an empty container. probe may be nil; cost models the
// per-request container overhead the paper attributes to "tomcat handling
// the request and loading the java-classes".
func NewServer(probe *metrics.Probe, cost metrics.Cost) *Server {
	return &Server{
		basePath: "/services/",
		probe:    probe,
		cost:     cost,
		services: make(map[string]*Service),
	}
}

// Deploy makes the service live. Deploying a name twice replaces the old
// deployment, matching servlet-container redeploy semantics.
func (s *Server) Deploy(svc *Service) error {
	if err := svc.Def.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	s.services[svc.Def.Name] = svc
	s.mu.Unlock()
	return nil
}

// Undeploy removes a service; it reports whether the name was deployed.
func (s *Server) Undeploy(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.services[name]; !ok {
		return false
	}
	delete(s.services, name)
	return true
}

// Lookup returns a deployed service.
func (s *Server) Lookup(name string) (*Service, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	svc, ok := s.services[name]
	return svc, ok
}

// Names lists deployed services, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.services))
	for n := range s.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BasePath reports the URL prefix services live under.
func (s *Server) BasePath() string { return s.basePath }

// Stats snapshots every deployed service's counters, sorted by name.
func (s *Server) Stats() []ServiceStats {
	s.mu.RLock()
	services := make([]*Service, 0, len(s.services))
	for _, svc := range s.services {
		services = append(services, svc)
	}
	s.mu.RUnlock()
	out := make([]ServiceStats, 0, len(services))
	for _, svc := range services {
		out = append(out, svc.Stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, s.basePath) {
		http.NotFound(w, r)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, s.basePath)
	name = strings.TrimSuffix(name, "/")
	if name == "" {
		s.serveIndex(w)
		return
	}
	svc, ok := s.Lookup(name)
	if !ok {
		s.fault(w, http.StatusNotFound, &Fault{Code: FaultClient, String: "no such service: " + name})
		return
	}
	switch r.Method {
	case http.MethodGet:
		if _, wantWSDL := r.URL.Query()["wsdl"]; wantWSDL {
			doc, err := wsdl.Generate(&svc.Def)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			w.Write(doc)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%s: %s\nAppend ?wsdl for the service description.\n", svc.Def.Name, svc.Def.Doc)
	case http.MethodPost:
		s.invoke(w, r, svc)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) serveIndex(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, n := range s.Names() {
		fmt.Fprintln(w, n)
	}
}

// statusWriter observes the response status for monitoring counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) invoke(w http.ResponseWriter, r *http.Request, svc *Service) {
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	w = sw
	defer func() { svc.count(sw.status >= 400) }()

	// Container overhead per request (Fig. 8's CPU commentary).
	s.probe.Burn(s.cost.RequestHandling)

	body, err := io.ReadAll(io.LimitReader(r.Body, MaxRequestBytes+1))
	if err != nil {
		s.fault(w, http.StatusBadRequest, &Fault{Code: FaultClient, String: "read body: " + err.Error()})
		return
	}
	if len(body) > MaxRequestBytes {
		s.fault(w, http.StatusRequestEntityTooLarge, &Fault{Code: FaultClient, String: "request too large"})
		return
	}
	msg, err := Decode(body)
	if err != nil {
		s.fault(w, http.StatusBadRequest, &Fault{Code: FaultClient, String: err.Error()})
		return
	}
	op := svc.Def.Operation(msg.Operation)
	if op == nil {
		s.fault(w, http.StatusBadRequest, &Fault{
			Code:   FaultClient,
			String: fmt.Sprintf("service %s has no operation %q", svc.Def.Name, msg.Operation),
		})
		return
	}
	args := msg.ParamMap()
	for _, p := range op.Params {
		v, ok := args[p.Name]
		if !ok {
			s.fault(w, http.StatusBadRequest, &Fault{
				Code:   FaultClient,
				String: fmt.Sprintf("missing parameter %q for %s", p.Name, op.Name),
			})
			return
		}
		if err := wsdl.CheckValue(p.Type, v); err != nil {
			s.fault(w, http.StatusBadRequest, &Fault{
				Code:   FaultClient,
				String: fmt.Sprintf("parameter %q: %v", p.Name, err),
			})
			return
		}
	}
	h := svc.handlers[op.Name]
	if h == nil {
		s.fault(w, http.StatusInternalServerError, &Fault{
			Code:   FaultServer,
			String: fmt.Sprintf("operation %q deployed without handler", op.Name),
		})
		return
	}
	result, err := h(&Request{
		Msg: msg, Args: args, RemoteAddr: r.RemoteAddr, Service: svc, Op: op,
		Trace: r.Header.Get(trace.Header),
	})
	if err != nil {
		var f *Fault
		if !errors.As(err, &f) {
			f = &Fault{Code: FaultServer, String: err.Error()}
		}
		s.fault(w, http.StatusInternalServerError, f)
		return
	}
	resp := &Message{
		Namespace: svc.Def.Namespace,
		Operation: msg.Operation + "Response",
		Params:    []Param{{Name: "return", Value: result}},
	}
	out, err := Encode(resp)
	if err != nil {
		s.fault(w, http.StatusInternalServerError, &Fault{Code: FaultServer, String: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Write(out)
}

func (s *Server) fault(w http.ResponseWriter, status int, f *Fault) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(status)
	w.Write(EncodeFault(f))
}
