package soap

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Client invokes SOAP operations over HTTP. HTTP defaults to
// http.DefaultClient; experiments substitute a client whose transport
// dials through a netsim-shaped link.
type Client struct {
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c == nil || c.HTTP == nil {
		return http.DefaultClient
	}
	return c.HTTP
}

// Call invokes operation op with params at the service endpoint url and
// returns the <return> payload. Faults come back as *Fault errors.
func (c *Client) Call(url, namespace, op string, params []Param, headers map[string]string) (string, error) {
	req := &Message{Namespace: namespace, Operation: op, Params: params, Headers: headers}
	env, err := Encode(req)
	if err != nil {
		return "", err
	}
	httpReq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(env))
	if err != nil {
		return "", err
	}
	httpReq.Header.Set("Content-Type", "text/xml; charset=utf-8")
	httpReq.Header.Set("SOAPAction", namespace+"/"+op)
	resp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return "", fmt.Errorf("soap: call %s/%s: %w", url, op, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxRequestBytes))
	if err != nil {
		return "", fmt.Errorf("soap: read response: %w", err)
	}
	msg, err := Decode(body)
	if err != nil {
		var f *Fault
		if errors.As(err, &f) {
			return "", f
		}
		return "", fmt.Errorf("soap: decode response (http %d): %w", resp.StatusCode, err)
	}
	if msg.Operation != op+"Response" {
		return "", fmt.Errorf("soap: unexpected response element %q for op %q", msg.Operation, op)
	}
	ret, _ := msg.Get("return")
	return ret, nil
}

// FetchWSDL retrieves the WSDL document of the service at url.
func (c *Client) FetchWSDL(url string) ([]byte, error) {
	resp, err := c.httpClient().Get(url + "?wsdl")
	if err != nil {
		return nil, fmt.Errorf("soap: fetch wsdl: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("soap: fetch wsdl: http %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, MaxRequestBytes))
}
