// Package soap implements the SOAP 1.1 stack the Cyberaide onServe
// appliance hosts its generated services on. The paper deploys one Web
// service per uploaded executable into an Axis2-style container ("A SOAP
// server runs the deployed Web services as well as some services related
// to the Cyberaide toolkit"); this package provides the equivalent
// container: envelope encoding/decoding, a fault model, an HTTP server
// that supports deploying and undeploying services at runtime, and a
// client.
//
// The RPC convention mirrors document/literal wrapped style:
//
//	request body:  <ns:Op xmlns:ns="NS"><param>value</param>...</ns:Op>
//	response body: <ns:OpResponse xmlns:ns="NS"><return>...</return></ns:OpResponse>
package soap

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// encBufPool recycles envelope build buffers: every SOAP request and
// response on the container hot path encodes through here, and the
// envelopes are small enough that the buffers stay warm. The encoded
// bytes are copied out before the buffer returns to the pool.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// EnvelopeNS is the SOAP 1.1 envelope namespace.
const EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"

// Errors.
var (
	ErrNotSOAP     = errors.New("soap: request is not a SOAP envelope")
	ErrNoOperation = errors.New("soap: body carries no operation element")
)

// Fault is the SOAP 1.1 fault structure.
type Fault struct {
	Code   string `xml:"faultcode"`
	String string `xml:"faultstring"`
	Actor  string `xml:"faultactor,omitempty"`
	Detail string `xml:"detail,omitempty"`
}

// Error implements error so faults propagate naturally through Go code.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// Standard fault codes.
const (
	FaultClient = "Client"
	FaultServer = "Server"
)

// Message is a decoded SOAP request or response body: the wrapper
// element's local name, its namespace, and its child elements as an
// ordered list of name/value pairs.
type Message struct {
	Namespace string
	Operation string
	Params    []Param
	Headers   map[string]string // flattened header entries by local name
}

// Param is one child element of the operation wrapper.
type Param struct {
	Name  string
	Value string
}

// Get returns the first parameter named name.
func (m *Message) Get(name string) (string, bool) {
	for _, p := range m.Params {
		if p.Name == name {
			return p.Value, true
		}
	}
	return "", false
}

// ParamMap flattens parameters to a map (last value wins).
func (m *Message) ParamMap() map[string]string {
	out := make(map[string]string, len(m.Params))
	for _, p := range m.Params {
		out[p.Name] = p.Value
	}
	return out
}

// Encode renders the message as a SOAP envelope.
func Encode(m *Message) ([]byte, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer encBufPool.Put(buf)
	buf.WriteString(xml.Header)
	buf.WriteString(`<soapenv:Envelope xmlns:soapenv="` + EnvelopeNS + `">`)
	if len(m.Headers) > 0 {
		buf.WriteString(`<soapenv:Header>`)
		keys := make([]string, 0, len(m.Headers))
		for k := range m.Headers {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeElem(buf, k, m.Headers[k])
		}
		buf.WriteString(`</soapenv:Header>`)
	}
	buf.WriteString(`<soapenv:Body>`)
	buf.WriteString(`<ns:` + m.Operation + ` xmlns:ns="` + m.Namespace + `">`)
	for _, p := range m.Params {
		writeElem(buf, p.Name, p.Value)
	}
	buf.WriteString(`</ns:` + m.Operation + `>`)
	buf.WriteString(`</soapenv:Body></soapenv:Envelope>`)
	return append([]byte(nil), buf.Bytes()...), nil
}

// EncodeFault renders a fault envelope.
func EncodeFault(f *Fault) []byte {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer encBufPool.Put(buf)
	buf.WriteString(xml.Header)
	buf.WriteString(`<soapenv:Envelope xmlns:soapenv="` + EnvelopeNS + `"><soapenv:Body>`)
	buf.WriteString(`<soapenv:Fault>`)
	writeElem(buf, "faultcode", f.Code)
	writeElem(buf, "faultstring", f.String)
	if f.Actor != "" {
		writeElem(buf, "faultactor", f.Actor)
	}
	if f.Detail != "" {
		writeElem(buf, "detail", f.Detail)
	}
	buf.WriteString(`</soapenv:Fault></soapenv:Body></soapenv:Envelope>`)
	return append([]byte(nil), buf.Bytes()...)
}

func writeElem(buf *bytes.Buffer, name, value string) {
	buf.WriteString("<" + name + ">")
	xml.EscapeText(buf, []byte(value))
	buf.WriteString("</" + name + ">")
}

// Decode parses a SOAP envelope into a Message, or returns the carried
// *Fault as an error if the body is a fault.
func Decode(data []byte) (*Message, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	msg := &Message{Headers: map[string]string{}}
	var (
		inHeader  bool
		inBody    bool
		depth     int
		opDepth   = -1
		paramName string
		paramBuf  bytes.Buffer
		fault     *Fault
		faultElem string
	)
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			switch {
			case depth == 1:
				if t.Name.Space != EnvelopeNS || t.Name.Local != "Envelope" {
					return nil, ErrNotSOAP
				}
			case depth == 2 && t.Name.Space == EnvelopeNS && t.Name.Local == "Header":
				inHeader = true
			case depth == 2 && t.Name.Space == EnvelopeNS && t.Name.Local == "Body":
				inBody = true
			case inHeader && depth == 3:
				paramName = t.Name.Local
				paramBuf.Reset()
			case inBody && depth == 3:
				if t.Name.Local == "Fault" {
					fault = &Fault{}
				} else if msg.Operation == "" {
					msg.Operation = t.Name.Local
					msg.Namespace = t.Name.Space
					opDepth = depth
				}
			case fault != nil && depth == 4:
				faultElem = t.Name.Local
				paramBuf.Reset()
			case opDepth > 0 && depth == opDepth+1:
				paramName = t.Name.Local
				paramBuf.Reset()
			}
		case xml.CharData:
			if (inHeader && depth == 3) || (opDepth > 0 && depth == opDepth+1) || (fault != nil && depth == 4) {
				paramBuf.Write(t)
			}
		case xml.EndElement:
			switch {
			case inHeader && depth == 3:
				msg.Headers[paramName] = paramBuf.String()
			case fault != nil && depth == 4:
				switch faultElem {
				case "faultcode":
					fault.Code = paramBuf.String()
				case "faultstring":
					fault.String = paramBuf.String()
				case "faultactor":
					fault.Actor = paramBuf.String()
				case "detail":
					fault.Detail = paramBuf.String()
				}
			case opDepth > 0 && depth == opDepth+1:
				msg.Params = append(msg.Params, Param{Name: paramName, Value: paramBuf.String()})
			case depth == 2 && t.Name.Local == "Header":
				inHeader = false
			case depth == 2 && t.Name.Local == "Body":
				inBody = false
			}
			depth--
		}
	}
	if fault != nil {
		return nil, fault
	}
	if msg.Operation == "" {
		return nil, ErrNoOperation
	}
	return msg, nil
}
