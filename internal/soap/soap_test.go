package soap

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
	"repro/internal/vtime"
	"repro/internal/wsdl"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msg := &Message{
		Namespace: "urn:test",
		Operation: "execute",
		Params: []Param{
			{Name: "a", Value: "1"},
			{Name: "b", Value: "two & <three>"},
			{Name: "a", Value: "repeated"},
		},
		Headers: map[string]string{"Token": "abc=="},
	}
	env, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(env)
	if err != nil {
		t.Fatal(err)
	}
	if got.Namespace != "urn:test" || got.Operation != "execute" {
		t.Fatalf("identity: %+v", got)
	}
	if len(got.Params) != 3 || got.Params[1].Value != "two & <three>" {
		t.Fatalf("params: %+v", got.Params)
	}
	if got.Headers["Token"] != "abc==" {
		t.Fatalf("headers: %+v", got.Headers)
	}
	if v, ok := got.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	if got.ParamMap()["a"] != "repeated" {
		t.Fatal("ParamMap should keep last value")
	}
}

func TestDecodeFault(t *testing.T) {
	f := &Fault{Code: FaultServer, String: "boom", Detail: "stack"}
	env := EncodeFault(f)
	_, err := Decode(env)
	var got *Fault
	if !errors.As(err, &got) {
		t.Fatalf("err %v", err)
	}
	if got.Code != FaultServer || got.String != "boom" || got.Detail != "stack" {
		t.Fatalf("fault %+v", got)
	}
	if !strings.Contains(got.Error(), "boom") {
		t.Fatalf("fault error text %q", got.Error())
	}
}

func TestDecodeRejectsNonSOAP(t *testing.T) {
	if _, err := Decode([]byte("<html></html>")); !errors.Is(err, ErrNotSOAP) {
		t.Fatalf("got %v", err)
	}
	empty := `<soapenv:Envelope xmlns:soapenv="` + EnvelopeNS + `"><soapenv:Body></soapenv:Body></soapenv:Envelope>`
	if _, err := Decode([]byte(empty)); !errors.Is(err, ErrNoOperation) {
		t.Fatalf("got %v", err)
	}
}

func calcService(t *testing.T) *Service {
	t.Helper()
	svc := NewService(wsdl.ServiceDef{
		Name:      "Calc",
		Namespace: "urn:calc",
		Operations: []wsdl.OperationDef{
			{Name: "add", Params: []wsdl.ParamDef{
				{Name: "x", Type: wsdl.TypeInt}, {Name: "y", Type: wsdl.TypeInt},
			}},
			{Name: "echoHeader"},
			{Name: "explode"},
			{Name: "unbound"},
		},
	})
	svc.MustBind("add", func(req *Request) (string, error) {
		x, _ := strconv.Atoi(req.Args["x"])
		y, _ := strconv.Atoi(req.Args["y"])
		return strconv.Itoa(x + y), nil
	})
	svc.MustBind("echoHeader", func(req *Request) (string, error) {
		return req.Msg.Headers["Token"], nil
	})
	svc.MustBind("explode", func(req *Request) (string, error) {
		return "", &Fault{Code: FaultServer, String: "deliberate"}
	})
	return svc
}

func newContainer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(nil, metrics.Cost{})
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs
}

func TestServerInvoke(t *testing.T) {
	srv, hs := newContainer(t)
	srv.Deploy(calcService(t))
	var c Client
	got, err := c.Call(hs.URL+"/services/Calc", "urn:calc", "add",
		[]Param{{Name: "x", Value: "19"}, {Name: "y", Value: "23"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != "42" {
		t.Fatalf("add = %q", got)
	}
}

func TestServerHeadersReachHandler(t *testing.T) {
	srv, hs := newContainer(t)
	srv.Deploy(calcService(t))
	var c Client
	got, err := c.Call(hs.URL+"/services/Calc", "urn:calc", "echoHeader", nil,
		map[string]string{"Token": "tok123"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "tok123" {
		t.Fatalf("header echo %q", got)
	}
}

func TestServerFaults(t *testing.T) {
	srv, hs := newContainer(t)
	srv.Deploy(calcService(t))
	var c Client
	cases := []struct {
		op     string
		params []Param
		want   string
	}{
		{"explode", nil, "deliberate"},
		{"add", []Param{{Name: "x", Value: "1"}}, "missing parameter"},
		{"add", []Param{{Name: "x", Value: "1"}, {Name: "y", Value: "nan"}}, "not an int"},
		{"nosuch", nil, "no operation"},
		{"unbound", nil, "without handler"},
	}
	for _, tc := range cases {
		_, err := c.Call(hs.URL+"/services/Calc", "urn:calc", tc.op, tc.params, nil)
		var f *Fault
		if !errors.As(err, &f) {
			t.Errorf("%s: err %v, want fault", tc.op, err)
			continue
		}
		if !strings.Contains(f.String, tc.want) {
			t.Errorf("%s: fault %q, want substring %q", tc.op, f.String, tc.want)
		}
	}
}

func TestServerNoSuchService(t *testing.T) {
	_, hs := newContainer(t)
	var c Client
	_, err := c.Call(hs.URL+"/services/Ghost", "urn:g", "x", nil, nil)
	var f *Fault
	if !errors.As(err, &f) || !strings.Contains(f.String, "no such service") {
		t.Fatalf("err %v", err)
	}
}

func TestServerWSDLEndpoint(t *testing.T) {
	srv, hs := newContainer(t)
	srv.Deploy(calcService(t))
	var c Client
	doc, err := c.FetchWSDL(hs.URL + "/services/Calc")
	if err != nil {
		t.Fatal(err)
	}
	def, err := wsdl.Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "Calc" || def.Operation("add") == nil {
		t.Fatalf("wsdl def %+v", def)
	}
}

func TestServerIndexAndInfoPages(t *testing.T) {
	srv, hs := newContainer(t)
	srv.Deploy(calcService(t))
	resp, err := http.Get(hs.URL + "/services/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 256)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "Calc") {
		t.Fatalf("index %q", buf[:n])
	}
	resp2, err := http.Get(hs.URL + "/services/Calc")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("info page status %d", resp2.StatusCode)
	}
}

func TestDeployUndeployLifecycle(t *testing.T) {
	srv, hs := newContainer(t)
	svc := calcService(t)
	if err := srv.Deploy(svc); err != nil {
		t.Fatal(err)
	}
	if names := srv.Names(); len(names) != 1 || names[0] != "Calc" {
		t.Fatalf("names %v", names)
	}
	if !srv.Undeploy("Calc") {
		t.Fatal("undeploy reported missing")
	}
	if srv.Undeploy("Calc") {
		t.Fatal("second undeploy reported success")
	}
	var c Client
	if _, err := c.Call(hs.URL+"/services/Calc", "urn:calc", "add", nil, nil); err == nil {
		t.Fatal("undeployed service still answers")
	}
}

func TestDeployRejectsInvalidDef(t *testing.T) {
	srv, _ := newContainer(t)
	err := srv.Deploy(NewService(wsdl.ServiceDef{Name: "", Namespace: ""}))
	if err == nil {
		t.Fatal("invalid service deployed")
	}
}

func TestBindUnknownOperation(t *testing.T) {
	svc := NewService(wsdl.ServiceDef{Name: "S", Namespace: "urn:s"})
	if err := svc.Bind("ghost", nil); err == nil {
		t.Fatal("bound to missing operation")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBind should panic")
		}
	}()
	svc.MustBind("ghost", nil)
}

func TestMethodNotAllowed(t *testing.T) {
	srv, hs := newContainer(t)
	srv.Deploy(calcService(t))
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/services/Calc", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestServerAccountsRequestHandlingCost(t *testing.T) {
	clk := vtime.NewScaled(10000)
	rec := metrics.NewRecorder(clk, 3*time.Second)
	srv := NewServer(metrics.NewProbe(rec), metrics.Cost{RequestHandling: 500 * time.Millisecond})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	srv.Deploy(calcService(t))
	var c Client
	if _, err := c.Call(hs.URL+"/services/Calc", "urn:calc", "add",
		[]Param{{Name: "x", Value: "1"}, {Name: "y", Value: "2"}}, nil); err != nil {
		t.Fatal(err)
	}
	if got := time.Duration(rec.Total(metrics.CPU)); got < 400*time.Millisecond {
		t.Fatalf("request handling cost not accounted: %v", got)
	}
}

// Property: Encode/Decode round-trips arbitrary parameter values,
// including XML metacharacters and control-adjacent text.
func TestPropertyEnvelopeRoundTrip(t *testing.T) {
	f := func(vals []string) bool {
		msg := &Message{Namespace: "urn:p", Operation: "op"}
		for i, v := range vals {
			// XML cannot carry arbitrary control bytes; strip them as any
			// transport binding would.
			clean := strings.Map(func(r rune) rune {
				if r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
					return -1
				}
				return r
			}, v)
			msg.Params = append(msg.Params, Param{Name: fmt.Sprintf("p%d", i), Value: clean})
		}
		env, err := Encode(msg)
		if err != nil {
			return false
		}
		got, err := Decode(env)
		if err != nil {
			return false
		}
		if len(got.Params) != len(msg.Params) {
			return false
		}
		for i := range msg.Params {
			// xml.EscapeText writes \r and \n as character references, so
			// values round-trip exactly.
			if got.Params[i].Value != msg.Params[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
