package soap

import (
	"testing"
)

func TestServiceCountersTrackRequestsAndFaults(t *testing.T) {
	srv, hs := newContainer(t)
	srv.Deploy(calcService(t))
	var c Client
	url := hs.URL + "/services/Calc"
	// Two good calls, one fault.
	for i := 0; i < 2; i++ {
		if _, err := c.Call(url, "urn:calc", "add",
			[]Param{{Name: "x", Value: "1"}, {Name: "y", Value: "2"}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Call(url, "urn:calc", "explode", nil, nil)

	stats := srv.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if stats[0].Name != "Calc" || stats[0].Requests != 3 || stats[0].Faults != 1 {
		t.Fatalf("counters %+v", stats[0])
	}
}

func TestServerStatsSorted(t *testing.T) {
	srv, _ := newContainer(t)
	for _, name := range []string{"Zeta", "Alpha"} {
		svc := calcService(t)
		svc.Def.Name = name
		srv.Deploy(svc)
	}
	stats := srv.Stats()
	if len(stats) != 2 || stats[0].Name != "Alpha" || stats[1].Name != "Zeta" {
		t.Fatalf("stats %+v", stats)
	}
}
