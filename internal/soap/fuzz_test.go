package soap

import "testing"

func FuzzDecode(f *testing.F) {
	good, _ := Encode(&Message{
		Namespace: "urn:x", Operation: "op",
		Params:  []Param{{Name: "a", Value: "1"}},
		Headers: map[string]string{"T": "v"},
	})
	f.Add(good)
	f.Add(EncodeFault(&Fault{Code: FaultServer, String: "boom"}))
	f.Add([]byte("<html/>"))
	f.Add([]byte(""))
	f.Add([]byte(`<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"><soapenv:Body></soapenv:Body></soapenv:Envelope>`))
	f.Add([]byte(`<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"><soapenv:Header><A>1</A></soapenv:Header><soapenv:Body><x:op xmlns:x="u"><p>v</p></x:op></soapenv:Body></soapenv:Envelope>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		// A successful decode must yield a named operation, and the
		// message must re-encode without error.
		if msg.Operation == "" {
			t.Fatalf("decoded message without operation from %q", data)
		}
		if _, err := Encode(msg); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
