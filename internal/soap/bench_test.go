package soap

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/metrics"
	"repro/internal/wsdl"
)

func benchMessage(params int) *Message {
	m := &Message{Namespace: "urn:bench", Operation: "execute"}
	for i := 0; i < params; i++ {
		m.Params = append(m.Params, Param{
			Name:  fmt.Sprintf("param%d", i),
			Value: "some moderately sized value with <xml> & metacharacters",
		})
	}
	return m
}

func BenchmarkEncode(b *testing.B) {
	m := benchMessage(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	env, err := Encode(benchMessage(8))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(env)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerRoundTrip(b *testing.B) {
	srv := NewServer(nil, metrics.Cost{})
	svc := NewService(wsdl.ServiceDef{
		Name: "Bench", Namespace: "urn:bench",
		Operations: []wsdl.OperationDef{{Name: "echo", Params: []wsdl.ParamDef{
			{Name: "v", Type: wsdl.TypeString},
		}}},
	})
	svc.MustBind("echo", func(req *Request) (string, error) { return req.Args["v"], nil })
	srv.Deploy(svc)
	hs := httptest.NewServer(srv)
	defer hs.Close()
	var c Client
	url := hs.URL + "/services/Bench"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := c.Call(url, "urn:bench", "echo", []Param{{Name: "v", Value: "x"}}, nil)
		if err != nil || out != "x" {
			b.Fatalf("out %q err %v", out, err)
		}
	}
}

func BenchmarkFaultEncode(b *testing.B) {
	f := &Fault{Code: FaultServer, String: "boom", Detail: "details"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeFault(f)
	}
}
