package soap

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/wsdl"
)

// TestConcurrentDeployUndeployInvoke exercises the container's runtime
// (un)deployment under concurrent invocations — the paper's appliance
// deploys generated services while others are being called.
func TestConcurrentDeployUndeployInvoke(t *testing.T) {
	srv := NewServer(nil, metrics.Cost{})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	mkSvc := func(name string) *Service {
		svc := NewService(wsdl.ServiceDef{
			Name: name, Namespace: "urn:" + name,
			Operations: []wsdl.OperationDef{{Name: "ping"}},
		})
		svc.MustBind("ping", func(req *Request) (string, error) { return "pong", nil })
		return svc
	}

	// A stable service invoked throughout.
	srv.Deploy(mkSvc("Stable"))

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Churner: deploy/undeploy transient services.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("Transient%d", c)
			for i := 0; i < 25; i++ {
				if err := srv.Deploy(mkSvc(name)); err != nil {
					errs <- err
					return
				}
				srv.Undeploy(name)
			}
		}(c)
	}
	// Callers: hammer the stable service.
	var client Client
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				out, err := client.Call(hs.URL+"/services/Stable", "urn:Stable", "ping", nil, nil)
				if err != nil || out != "pong" {
					errs <- fmt.Errorf("call: %q %v", out, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, ok := srv.Lookup("Stable"); !ok {
		t.Fatal("stable service lost")
	}
}

// TestRedeployReplacesHandler confirms redeploying a name atomically
// swaps the implementation.
func TestRedeployReplacesHandler(t *testing.T) {
	srv, hs := newContainer(t)
	mk := func(answer string) *Service {
		svc := NewService(wsdl.ServiceDef{
			Name: "Swap", Namespace: "urn:swap",
			Operations: []wsdl.OperationDef{{Name: "get"}},
		})
		svc.MustBind("get", func(req *Request) (string, error) { return answer, nil })
		return svc
	}
	srv.Deploy(mk("v1"))
	var c Client
	if out, _ := c.Call(hs.URL+"/services/Swap", "urn:swap", "get", nil, nil); out != "v1" {
		t.Fatalf("got %q", out)
	}
	srv.Deploy(mk("v2"))
	if out, _ := c.Call(hs.URL+"/services/Swap", "urn:swap", "get", nil, nil); out != "v2" {
		t.Fatalf("got %q", out)
	}
}
