package gridsim

import (
	"testing"

	"repro/internal/jsdl"
	"repro/internal/vtime"
)

func BenchmarkSubmitToCompletion(b *testing.B) {
	clk := vtime.NewScaled(100000)
	s := NewSite(SiteConfig{Name: "bench", Nodes: 8, CoresPerNode: 8}, clk)
	if err := s.Store().Put(owner, "e.gsh", []byte("echo done\n")); err != nil {
		b.Fatal(err)
	}
	desc := jsdl.Description{Owner: owner, Executable: "e.gsh"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := s.Submit(desc)
		if err != nil {
			b.Fatal(err)
		}
		<-j.Done()
		if j.State() != Succeeded {
			b.Fatalf("state %s", j.State())
		}
	}
}

func BenchmarkSubmitThroughputParallel(b *testing.B) {
	clk := vtime.NewScaled(100000)
	g, err := TeraGrid(clk)
	if err != nil {
		b.Fatal(err)
	}
	src := []byte("echo done\n")
	for _, name := range g.SiteNames() {
		s, _ := g.Site(name)
		s.Store().Put(owner, "e.gsh", src)
	}
	desc := jsdl.Description{Owner: owner, Executable: "e.gsh"}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			j, err := g.Submit(desc)
			if err != nil {
				b.Fatal(err)
			}
			<-j.Done()
		}
	})
}

func BenchmarkBrokerPickSite(b *testing.B) {
	g, err := TeraGrid(vtime.Real{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.PickSite(4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorePutGet(b *testing.B) {
	st := NewStore()
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data) * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Put("o", "f", data); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Get("o", "f"); err != nil {
			b.Fatal(err)
		}
	}
}
