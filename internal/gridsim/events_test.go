package gridsim

import (
	"testing"
	"time"

	"repro/internal/jsdl"
	"repro/internal/vtime"
)

func busEvent(owner, job string) JobEvent {
	return JobEvent{Type: EventState, JobID: job, Owner: owner, State: "RUNNING"}
}

func TestEventBusReplayAndLive(t *testing.T) {
	b := NewEventBus()
	b.publish(busEvent("alice", "j1"))
	b.publish(busEvent("alice", "j2"))
	sub, replay, resync := b.Subscribe("alice", 0)
	defer b.Unsubscribe(sub)
	if resync {
		t.Fatal("fresh cursor demanded resync")
	}
	if len(replay) != 2 || replay[0].JobID != "j1" || replay[1].JobID != "j2" {
		t.Fatalf("replay %+v", replay)
	}
	if replay[0].Seq == 0 || replay[1].Seq <= replay[0].Seq {
		t.Fatalf("seq not monotonic: %d %d", replay[0].Seq, replay[1].Seq)
	}
	b.publish(busEvent("alice", "j3"))
	select {
	case ev := <-sub.C:
		if ev.JobID != "j3" || ev.Seq <= replay[1].Seq {
			t.Fatalf("live event %+v", ev)
		}
	default:
		t.Fatal("live event not delivered")
	}
}

func TestEventBusCursorSkipsReplayed(t *testing.T) {
	b := NewEventBus()
	b.publish(busEvent("alice", "j1"))
	b.publish(busEvent("alice", "j2"))
	b.publish(busEvent("alice", "j3"))
	_, replay, resync := b.Subscribe("alice", 2)
	if resync {
		t.Fatal("in-window cursor demanded resync")
	}
	if len(replay) != 1 || replay[0].JobID != "j3" {
		t.Fatalf("replay after cursor 2: %+v", replay)
	}
}

func TestEventBusEvictionForcesResync(t *testing.T) {
	b := NewEventBus()
	for i := 0; i < EventRingSize+8; i++ {
		b.publish(busEvent("alice", "j"))
	}
	// Cursor 1 predates the ring: its events were evicted.
	_, replay, resync := b.Subscribe("alice", 1)
	if !resync {
		t.Fatal("evicted cursor did not demand resync")
	}
	if len(replay) != EventRingSize {
		t.Fatalf("replay %d events, ring holds %d", len(replay), EventRingSize)
	}
	// A cursor strictly below the newest evicted seq has a gap; one at
	// exactly the newest evicted seq saw everything that was dropped.
	_, _, resync = b.Subscribe("alice", uint64(7))
	if !resync {
		t.Fatal("cursor below evicted seq did not demand resync")
	}
	_, _, resync = b.Subscribe("alice", uint64(8))
	if resync {
		t.Fatal("edge cursor (== newest evicted) demanded resync")
	}
	_, replay, resync = b.Subscribe("alice", uint64(EventRingSize+7))
	if resync || len(replay) != 1 {
		t.Fatalf("tail cursor: resync=%v replay=%d", resync, len(replay))
	}
}

func TestEventBusFutureCursorForcesResync(t *testing.T) {
	b := NewEventBus()
	b.publish(busEvent("alice", "j1"))
	_, replay, resync := b.Subscribe("alice", 99)
	if !resync || len(replay) != 0 {
		// A cursor from another bus incarnation cannot be trusted.
		t.Fatalf("future cursor: resync=%v replay=%d", resync, len(replay))
	}
}

func TestEventBusOwnerIsolation(t *testing.T) {
	b := NewEventBus()
	b.publish(busEvent("alice", "a1"))
	bobSub, bobReplay, _ := b.Subscribe("bob", 0)
	defer b.Unsubscribe(bobSub)
	if len(bobReplay) != 0 {
		t.Fatalf("bob replayed alice's events: %+v", bobReplay)
	}
	b.publish(busEvent("alice", "a2"))
	select {
	case ev := <-bobSub.C:
		t.Fatalf("bob received alice's event %+v", ev)
	default:
	}
	b.publish(busEvent("bob", "b1"))
	select {
	case ev := <-bobSub.C:
		if ev.JobID != "b1" {
			t.Fatalf("event %+v", ev)
		}
	default:
		t.Fatal("bob's own event not delivered")
	}
}

func TestEventBusOverflowNeverBlocksPublisher(t *testing.T) {
	b := NewEventBus()
	sub, _, _ := b.Subscribe("alice", 0)
	defer b.Unsubscribe(sub)
	// Publish past the subscriber buffer without draining: the publisher
	// must not block, and the subscriber must learn its view has a gap.
	done := make(chan struct{})
	go func() {
		for i := 0; i < subBuffer+16; i++ {
			b.publish(busEvent("alice", "j"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a stalled subscriber")
	}
	select {
	case <-sub.Overflow:
	default:
		t.Fatal("overflow not signalled")
	}
}

func TestEventBusNilSafe(t *testing.T) {
	var b *EventBus
	b.publish(busEvent("alice", "j1")) // must not panic
	b.Unsubscribe(nil)
	NewEventBus().Unsubscribe(nil)
}

// TestGridPublishesJobLifecycle drives a real job through the scheduler
// and checks the bus carries its whole story: a RUNNING transition,
// output bumps with advancing versions, and exactly one terminal state
// whose output version matches the job's final stdout version.
func TestGridPublishesJobLifecycle(t *testing.T) {
	clk := vtime.NewScaled(20000)
	g, err := New(clk, SiteConfig{Name: "siteA", Nodes: 1, CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	site, _ := g.Site("siteA")
	if err := site.Store().Put(owner, "talk.gsh", []byte("echo one\ncompute 500ms\necho two\n")); err != nil {
		t.Fatal(err)
	}
	sub, _, _ := g.Events().Subscribe(owner, 0)
	defer g.Events().Unsubscribe(sub)
	j, err := g.Submit(jsdl.Description{Owner: owner, Executable: "talk.gsh"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)

	var sawRunning, sawTerminal bool
	var outputs int
	var lastVer, terminalVer uint64
	deadline := time.After(5 * time.Second)
	for !sawTerminal {
		select {
		case ev := <-sub.C:
			if ev.JobID != j.ID || ev.Site != "siteA" {
				t.Fatalf("event %+v", ev)
			}
			switch ev.Type {
			case EventState:
				switch ev.State {
				case Running.String():
					sawRunning = true
				case Succeeded.String():
					sawTerminal = true
					terminalVer = ev.OutputVersion
				default:
					t.Fatalf("unexpected state event %+v", ev)
				}
			case EventOutput:
				if ev.OutputVersion <= lastVer {
					t.Fatalf("output version did not advance: %d -> %d", lastVer, ev.OutputVersion)
				}
				lastVer = ev.OutputVersion
				outputs++
			}
		case <-deadline:
			t.Fatalf("terminal event never arrived (running=%v outputs=%d)", sawRunning, outputs)
		}
	}
	if !sawRunning || outputs < 2 {
		t.Fatalf("lifecycle incomplete: running=%v outputs=%d", sawRunning, outputs)
	}
	if terminalVer != j.StdoutVersion() {
		t.Fatalf("terminal event carries version %d, job at %d", terminalVer, j.StdoutVersion())
	}
}

// TestCancelPublishesTerminalEvent covers both cancel paths: a queued
// job (cancelled synchronously by the scheduler) and a running job
// (cancelled by interrupting execution) each publish exactly one
// terminal state event.
func TestCancelPublishesTerminalEvent(t *testing.T) {
	clk := vtime.NewScaled(20000)
	g, err := New(clk, SiteConfig{Name: "siteA", Nodes: 1, CoresPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	site, _ := g.Site("siteA")
	if err := site.Store().Put(owner, "slow.gsh", []byte("emit 500ms 100 tick\n")); err != nil {
		t.Fatal(err)
	}
	sub, _, _ := g.Events().Subscribe(owner, 0)
	defer g.Events().Unsubscribe(sub)
	// One slot: the first job runs, the second queues behind it.
	running, err := g.Submit(jsdl.Description{Owner: owner, Executable: "slow.gsh"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := g.Submit(jsdl.Description{Owner: owner, Executable: "slow.gsh"})
	if err != nil {
		t.Fatal(err)
	}
	if err := site.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if err := site.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	waitJob(t, running)
	waitJob(t, queued)

	cancelled := map[string]int{}
	deadline := time.After(5 * time.Second)
	for cancelled[running.ID] == 0 || cancelled[queued.ID] == 0 {
		select {
		case ev := <-sub.C:
			if ev.Type == EventState && ev.State == Cancelled.String() {
				cancelled[ev.JobID]++
			}
		case <-deadline:
			t.Fatalf("cancel events missing: %v", cancelled)
		}
	}
	// No duplicate terminal publication.
	drain := time.After(50 * time.Millisecond)
	for {
		select {
		case ev := <-sub.C:
			if ev.Type == EventState && ev.State == Cancelled.String() {
				cancelled[ev.JobID]++
			}
		case <-drain:
			for id, n := range cancelled {
				if n != 1 {
					t.Fatalf("job %s published %d terminal events", id, n)
				}
			}
			return
		}
	}
}
