package gridsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Store errors.
var (
	ErrQuota      = errors.New("gridsim: storage quota exceeded")
	ErrNoFile     = errors.New("gridsim: no such staged file")
	ErrEmptyName  = errors.New("gridsim: file name required")
	ErrEmptyOwner = errors.New("gridsim: owner identity required")
	ErrFileTooBig = errors.New("gridsim: staged file exceeds per-file limit")
)

// Default store limits.
const (
	DefaultOwnerQuota = 512 << 20 // per-owner staged bytes
	DefaultFileLimit  = 256 << 20 // per-file bytes
)

// Store is a site's staging area: the GridFTP target where executables
// and input files land before jobs reference them. Files are namespaced
// by owner identity (the DN the transfer authenticated as).
type Store struct {
	ownerQuota int
	fileLimit  int

	mu    sync.RWMutex
	files map[string]map[string][]byte // owner -> name -> data
	used  map[string]int               // owner -> bytes
}

// NewStore returns an empty staging area with default limits.
func NewStore() *Store {
	return NewStoreWithLimits(DefaultOwnerQuota, DefaultFileLimit)
}

// NewStoreWithLimits returns a staging area with explicit limits
// (non-positive values fall back to the defaults).
func NewStoreWithLimits(ownerQuota, fileLimit int) *Store {
	if ownerQuota <= 0 {
		ownerQuota = DefaultOwnerQuota
	}
	if fileLimit <= 0 {
		fileLimit = DefaultFileLimit
	}
	return &Store{
		ownerQuota: ownerQuota,
		fileLimit:  fileLimit,
		files:      make(map[string]map[string][]byte),
		used:       make(map[string]int),
	}
}

// Put stores data under (owner, name), replacing any previous version.
func (s *Store) Put(owner, name string, data []byte) error {
	if owner == "" {
		return ErrEmptyOwner
	}
	if name == "" {
		return ErrEmptyName
	}
	if len(data) > s.fileLimit {
		return ErrFileTooBig
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.files[owner]
	if dir == nil {
		dir = make(map[string][]byte)
		s.files[owner] = dir
	}
	newUsed := s.used[owner] - len(dir[name]) + len(data)
	if newUsed > s.ownerQuota {
		return fmt.Errorf("%w: %d bytes for %s", ErrQuota, newUsed, owner)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	dir[name] = cp
	s.used[owner] = newUsed
	return nil
}

// Get returns a copy of the file.
func (s *Store) Get(owner, name string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.files[owner][name]
	if !ok {
		return nil, fmt.Errorf("%w: %s for %s", ErrNoFile, name, owner)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Size returns the stored size without copying.
func (s *Store) Size(owner, name string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.files[owner][name]
	if !ok {
		return 0, fmt.Errorf("%w: %s for %s", ErrNoFile, name, owner)
	}
	return len(data), nil
}

// Delete removes a file.
func (s *Store) Delete(owner, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.files[owner]
	data, ok := dir[name]
	if !ok {
		return fmt.Errorf("%w: %s for %s", ErrNoFile, name, owner)
	}
	delete(dir, name)
	s.used[owner] -= len(data)
	return nil
}

// List returns the owner's staged file names, sorted.
func (s *Store) List(owner string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dir := s.files[owner]
	out := make([]string, 0, len(dir))
	for n := range dir {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Used reports the owner's consumed bytes.
func (s *Store) Used(owner string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used[owner]
}
