package gridsim

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jsdl"
	"repro/internal/vtime"
)

const owner = "/O=Repro/CN=alice"

func testSite(t *testing.T, slots int) *Site {
	t.Helper()
	clk := vtime.NewScaled(20000)
	return NewSite(SiteConfig{Name: "test", Nodes: 1, CoresPerNode: slots}, clk)
}

func stage(t *testing.T, s *Site, name, src string) {
	t.Helper()
	if err := s.Store().Put(owner, name, []byte(src)); err != nil {
		t.Fatal(err)
	}
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s stuck in %s", j.ID, j.State())
	}
}

func submit(t *testing.T, s *Site, exe string, args map[string]string) *Job {
	t.Helper()
	j, err := s.Submit(jsdl.Description{Owner: owner, Executable: exe, Arguments: args})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJobRunsToCompletion(t *testing.T) {
	s := testSite(t, 4)
	stage(t, s, "hello.gsh", "echo hello ${who}\ncompute 2s\nwrite out.dat 128\n")
	j := submit(t, s, "hello.gsh", map[string]string{"who": "grid"})
	waitJob(t, j)
	if j.State() != Succeeded {
		t.Fatalf("state %s: %s", j.State(), j.ExitMessage())
	}
	if got := j.Stdout(); got != "hello grid\n" {
		t.Fatalf("stdout %q", got)
	}
	if len(j.OutputFile("out.dat")) != 128 {
		t.Fatal("output artifact missing")
	}
	if names := j.OutputNames(); len(names) != 1 || names[0] != "out.dat" {
		t.Fatalf("outputs %v", names)
	}
	sub, start, end := j.Times()
	if sub.IsZero() || start.Before(sub) || end.Before(start) {
		t.Fatalf("times out of order: %v %v %v", sub, start, end)
	}
}

func TestJobFailure(t *testing.T) {
	s := testSite(t, 2)
	stage(t, s, "bad.gsh", "echo starting\nfail kaboom\n")
	j := submit(t, s, "bad.gsh", nil)
	waitJob(t, j)
	if j.State() != Failed || !strings.Contains(j.ExitMessage(), "kaboom") {
		t.Fatalf("state %s msg %q", j.State(), j.ExitMessage())
	}
}

func TestJobSyntaxErrorFails(t *testing.T) {
	s := testSite(t, 2)
	stage(t, s, "junk.gsh", "frobnicate the grid\n")
	j := submit(t, s, "junk.gsh", nil)
	waitJob(t, j)
	if j.State() != Failed || !strings.Contains(j.ExitMessage(), "rejected") {
		t.Fatalf("state %s msg %q", j.State(), j.ExitMessage())
	}
}

func TestSubmitRequiresStagedExecutable(t *testing.T) {
	s := testSite(t, 2)
	_, err := s.Submit(jsdl.Description{Owner: owner, Executable: "ghost.gsh"})
	if !errors.Is(err, ErrNotStaged) {
		t.Fatalf("got %v", err)
	}
}

func TestSubmitRequiresStageInFiles(t *testing.T) {
	s := testSite(t, 2)
	stage(t, s, "e.gsh", "echo x\n")
	_, err := s.Submit(jsdl.Description{
		Owner: owner, Executable: "e.gsh", StageIn: []string{"missing.dat"},
	})
	if !errors.Is(err, ErrNotStaged) {
		t.Fatalf("got %v", err)
	}
}

func TestSubmitRejectsOversizedJob(t *testing.T) {
	s := testSite(t, 2)
	stage(t, s, "e.gsh", "echo x\n")
	_, err := s.Submit(jsdl.Description{Owner: owner, Executable: "e.gsh", CPUs: 3})
	if !errors.Is(err, ErrTooManyCPUs) {
		t.Fatalf("got %v", err)
	}
}

func TestQueueingWhenFull(t *testing.T) {
	s := testSite(t, 1)
	stage(t, s, "slow.gsh", "compute 3s\n")
	j1 := submit(t, s, "slow.gsh", nil)
	j2 := submit(t, s, "slow.gsh", nil)
	// j2 must wait for j1's slot.
	waitJob(t, j1)
	waitJob(t, j2)
	_, start1, end1 := j1.Times()
	_, start2, _ := j2.Times()
	_ = start1
	if start2.Before(end1) {
		t.Fatalf("j2 started %v before j1 ended %v on a 1-slot site", start2, end1)
	}
}

func TestBackfillNarrowJobOvertakesWideJob(t *testing.T) {
	s := testSite(t, 4)
	stage(t, s, "slow.gsh", "compute 5s\n")
	stage(t, s, "quick.gsh", "compute 100ms\n")
	// Occupy 3 of 4 slots.
	hog, err := s.Submit(jsdl.Description{Owner: owner, Executable: "slow.gsh", CPUs: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Wide job cannot start (needs 2, only 1 free).
	wide, err := s.Submit(jsdl.Description{Owner: owner, Executable: "slow.gsh", CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Narrow job fits the remaining slot: backfill should start it now.
	narrow := submit(t, s, "quick.gsh", nil)
	waitJob(t, narrow)
	if wide.State() == Succeeded {
		t.Fatal("wide job finished before the narrow backfill candidate")
	}
	waitJob(t, hog)
	waitJob(t, wide)
	if wide.State() != Succeeded {
		t.Fatalf("wide job %s: %s", wide.State(), wide.ExitMessage())
	}
}

func TestNoOversubscription(t *testing.T) {
	const slots = 3
	s := testSite(t, slots)
	stage(t, s, "c.gsh", "compute 500ms\n")
	var jobs []*Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, submit(t, s, "c.gsh", nil))
	}
	// Sample running counts while draining the queue.
	deadline := time.After(10 * time.Second)
	for {
		stats := s.Stats()
		if stats.FreeSlots < 0 || stats.Running > slots {
			t.Fatalf("oversubscribed: %+v", stats)
		}
		done := 0
		for _, j := range jobs {
			if j.State().Terminal() {
				done++
			}
		}
		if done == len(jobs) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("jobs stuck: %d/%d done", done, len(jobs))
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
	stats := s.Stats()
	if stats.Completed != 12 || stats.FreeSlots != slots {
		t.Fatalf("final stats %+v", stats)
	}
	if stats.CPUSeconds < 5 { // 12 jobs x 0.5s, CPUFactor 1
		t.Fatalf("cpu accounting %v", stats.CPUSeconds)
	}
}

func TestWalltimeEnforced(t *testing.T) {
	clk := vtime.NewScaled(20000)
	s := NewSite(SiteConfig{Name: "t", Nodes: 1, CoresPerNode: 1}, clk)
	stage(t, s, "endless.gsh", "compute 1h\n")
	j, err := s.Submit(jsdl.Description{
		Owner: owner, Executable: "endless.gsh", WallTime: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if j.State() != TimedOut {
		t.Fatalf("state %s", j.State())
	}
	if s.Stats().FreeSlots != 1 {
		t.Fatal("slot leaked after timeout")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := testSite(t, 1)
	stage(t, s, "slow.gsh", "compute 10s\n")
	running := submit(t, s, "slow.gsh", nil)
	queued := submit(t, s, "slow.gsh", nil)
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	waitJob(t, queued)
	if queued.State() != Cancelled {
		t.Fatalf("state %s", queued.State())
	}
	waitJob(t, running)
	if running.State() != Succeeded {
		t.Fatalf("running job %s", running.State())
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := testSite(t, 1)
	stage(t, s, "ticker.gsh", "emit 200ms 1000 tick\n")
	j := submit(t, s, "ticker.gsh", nil)
	// Let it start.
	for j.State() == Queued {
		time.Sleep(time.Millisecond)
	}
	if err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if j.State() != Cancelled {
		t.Fatalf("state %s", j.State())
	}
	if s.Stats().FreeSlots != 1 {
		t.Fatal("slot leaked after cancel")
	}
}

func TestCancelUnknownJob(t *testing.T) {
	s := testSite(t, 1)
	if err := s.Cancel("test:job-999999"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("got %v", err)
	}
}

func TestDrainRejectsSubmissions(t *testing.T) {
	s := testSite(t, 1)
	stage(t, s, "e.gsh", "echo x\n")
	s.Drain()
	if _, err := s.Submit(jsdl.Description{Owner: owner, Executable: "e.gsh"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("got %v", err)
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Queued: "QUEUED", Running: "RUNNING", Succeeded: "DONE",
		Failed: "FAILED", Cancelled: "CANCELLED", TimedOut: "TIMEOUT",
		State(42): "UNKNOWN",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%d.String() = %q", int(st), st.String())
		}
	}
	if Queued.Terminal() || Running.Terminal() || !Succeeded.Terminal() || !TimedOut.Terminal() {
		t.Fatal("terminality wrong")
	}
}

func TestGridBrokerPicksLeastLoaded(t *testing.T) {
	clk := vtime.NewScaled(20000)
	g, err := New(clk,
		SiteConfig{Name: "small", Nodes: 1, CoresPerNode: 1},
		SiteConfig{Name: "big", Nodes: 4, CoresPerNode: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"small", "big"} {
		s, _ := g.Site(name)
		if err := s.Store().Put(owner, "e.gsh", []byte("compute 2s\n")); err != nil {
			t.Fatal(err)
		}
	}
	// Saturate the small site.
	small, _ := g.Site("small")
	small.Submit(jsdl.Description{Owner: owner, Executable: "e.gsh"})
	j, err := g.Submit(jsdl.Description{Owner: owner, Executable: "e.gsh"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Site != "big" {
		t.Fatalf("broker chose %s", j.Site)
	}
}

func TestGridSubmitRequiresStagingSomewhere(t *testing.T) {
	g, _ := New(vtime.Real{}, SiteConfig{Name: "a", Nodes: 1, CoresPerNode: 1})
	_, err := g.Submit(jsdl.Description{Owner: owner, Executable: "nowhere.gsh"})
	if !errors.Is(err, ErrNotStaged) {
		t.Fatalf("got %v", err)
	}
}

func TestGridJobLookup(t *testing.T) {
	clk := vtime.NewScaled(20000)
	g, _ := New(clk, SiteConfig{Name: "a", Nodes: 1, CoresPerNode: 2})
	s, _ := g.Site("a")
	s.Store().Put(owner, "e.gsh", []byte("echo hi\n"))
	j, err := g.Submit(jsdl.Description{Owner: owner, Executable: "e.gsh", Site: "a"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Job(j.ID)
	if err != nil || got != j {
		t.Fatalf("lookup: %v", err)
	}
	if _, err := g.Job("malformed"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("got %v", err)
	}
	if _, err := g.Job("nosite:job-1"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("got %v", err)
	}
}

func TestGridBatchJobLookup(t *testing.T) {
	clk := vtime.NewScaled(20000)
	g, _ := New(clk, SiteConfig{Name: "a", Nodes: 1, CoresPerNode: 4})
	s, _ := g.Site("a")
	s.Store().Put(owner, "e.gsh", []byte("echo hi\n"))
	j1, err := g.Submit(jsdl.Description{Owner: owner, Executable: "e.gsh", Site: "a"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := g.Submit(jsdl.Description{Owner: owner, Executable: "e.gsh", Site: "a"})
	if err != nil {
		t.Fatal(err)
	}
	jobs, errs := g.Jobs([]string{j1.ID, "malformed", j2.ID, "nosite:job-1"})
	if len(jobs) != 4 || len(errs) != 4 {
		t.Fatalf("lengths %d/%d", len(jobs), len(errs))
	}
	if jobs[0] != j1 || errs[0] != nil || jobs[2] != j2 || errs[2] != nil {
		t.Fatalf("good entries mangled: %v %v", errs[0], errs[2])
	}
	if jobs[1] != nil || !errors.Is(errs[1], ErrNoSuchJob) {
		t.Fatalf("malformed id: job=%v err=%v", jobs[1], errs[1])
	}
	if jobs[3] != nil || !errors.Is(errs[3], ErrNoSuchJob) {
		t.Fatalf("unknown site: job=%v err=%v", jobs[3], errs[3])
	}
}

func TestStdoutVersionTracksAppends(t *testing.T) {
	s := testSite(t, 2)
	stage(t, s, "emit.gsh", "emit 2s 3 tick\n")
	j := submit(t, s, "emit.gsh", nil)
	if v := j.StdoutVersion(); v != 0 {
		t.Fatalf("fresh job version %d", v)
	}
	waitJob(t, j)
	out, ver := j.StdoutVersioned()
	if out != "tick\ntick\ntick\n" {
		t.Fatalf("stdout %q", out)
	}
	if ver != 3 {
		t.Fatalf("version %d after 3 appends", ver)
	}
	// Unchanged output keeps an unchanged version.
	if again := j.StdoutVersion(); again != ver {
		t.Fatalf("version moved without output: %d -> %d", ver, again)
	}
}

func TestGridConstructionErrors(t *testing.T) {
	if _, err := New(vtime.Real{}); !errors.Is(err, ErrNoSites) {
		t.Fatalf("got %v", err)
	}
	if _, err := New(vtime.Real{}, SiteConfig{Name: ""}); err == nil {
		t.Fatal("nameless site accepted")
	}
	if _, err := New(vtime.Real{},
		SiteConfig{Name: "a", Nodes: 1, CoresPerNode: 1},
		SiteConfig{Name: "a", Nodes: 1, CoresPerNode: 1},
	); err == nil {
		t.Fatal("duplicate site accepted")
	}
}

func TestTeraGridHasElevenSites(t *testing.T) {
	g, err := TeraGrid(vtime.Real{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(g.SiteNames()); n != 11 {
		t.Fatalf("%d sites, want 11", n)
	}
	stats := g.Stats()
	if len(stats) != 11 {
		t.Fatalf("stats for %d sites", len(stats))
	}
	for _, st := range stats {
		if st.Slots <= 0 || st.FreeSlots != st.Slots {
			t.Fatalf("site %s: %+v", st.Name, st)
		}
	}
}

func TestPickSiteRespectsWidth(t *testing.T) {
	g, _ := New(vtime.Real{},
		SiteConfig{Name: "tiny", Nodes: 1, CoresPerNode: 2},
		SiteConfig{Name: "large", Nodes: 8, CoresPerNode: 8},
	)
	s, err := g.PickSite(16)
	if err != nil || s.Name() != "large" {
		t.Fatalf("picked %v err %v", s, err)
	}
	if _, err := g.PickSite(1000); err == nil {
		t.Fatal("impossible width placed")
	}
}

func TestManySmallJobsAcrossGrid(t *testing.T) {
	clk := vtime.NewScaled(20000)
	g, err := TeraGrid(clk)
	if err != nil {
		t.Fatal(err)
	}
	src := []byte("compute 200ms\necho done\n")
	for _, name := range g.SiteNames() {
		s, _ := g.Site(name)
		s.Store().Put(owner, "tiny.gsh", src)
	}
	const n = 100
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := g.Submit(jsdl.Description{Owner: owner, Executable: "tiny.gsh"})
			if err != nil {
				errs <- err
				return
			}
			<-j.Done()
			if j.State() != Succeeded {
				errs <- errors.New(j.ID + " " + j.State().String())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := 0
	for _, st := range g.Stats() {
		total += st.Completed
	}
	if total != n {
		t.Fatalf("completed %d, want %d", total, n)
	}
}

func TestStoreQuota(t *testing.T) {
	st := NewStore()
	if err := st.Put("", "f", nil); !errors.Is(err, ErrEmptyOwner) {
		t.Fatalf("got %v", err)
	}
	if err := st.Put("o", "", nil); !errors.Is(err, ErrEmptyName) {
		t.Fatalf("got %v", err)
	}
	if err := st.Put("o", "f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Get("o", "f"); string(got) != "data" {
		t.Fatalf("got %q", got)
	}
	if st.Used("o") != 4 {
		t.Fatalf("used %d", st.Used("o"))
	}
	// Replacement adjusts accounting.
	st.Put("o", "f", []byte("xy"))
	if st.Used("o") != 2 {
		t.Fatalf("used after replace %d", st.Used("o"))
	}
	if err := st.Delete("o", "f"); err != nil {
		t.Fatal(err)
	}
	if st.Used("o") != 0 {
		t.Fatalf("used after delete %d", st.Used("o"))
	}
	if err := st.Delete("o", "f"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("got %v", err)
	}
	if _, err := st.Get("o", "f"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("got %v", err)
	}
}

func TestStoreList(t *testing.T) {
	st := NewStore()
	st.Put("o", "b", nil)
	st.Put("o", "a", nil)
	if got := st.List("o"); len(got) != 2 || got[0] != "a" {
		t.Fatalf("list %v", got)
	}
	if got := st.List("stranger"); len(got) != 0 {
		t.Fatalf("list %v", got)
	}
}

func TestJobOutputQuota(t *testing.T) {
	clk := vtime.NewScaled(20000)
	s := NewSite(SiteConfig{Name: "test", Nodes: 1, CoresPerNode: 1, MaxJobOutput: 1000}, clk)
	// Write more than the per-job quota in two files.
	stage(t, s, "big.gsh", "write a.dat 600\nwrite b.dat 600\n")
	j := submit(t, s, "big.gsh", nil)
	waitJob(t, j)
	if j.State() != Failed || !strings.Contains(j.ExitMessage(), "quota") {
		t.Fatalf("state %s msg %q", j.State(), j.ExitMessage())
	}
}

func TestJobConsumesStagedInput(t *testing.T) {
	s := testSite(t, 2)
	stage(t, s, "wordcount.gsh", "read corpus.txt\nprocess corpus.txt 1000\necho counted\n")
	if err := s.Store().Put(owner, "corpus.txt", bytes.Repeat([]byte("w "), 50_000)); err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(jsdl.Description{
		Owner: owner, Executable: "wordcount.gsh", StageIn: []string{"corpus.txt"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if j.State() != Succeeded {
		t.Fatalf("state %s: %s", j.State(), j.ExitMessage())
	}
	if !strings.Contains(j.Stdout(), "read corpus.txt: 100000 bytes") {
		t.Fatalf("stdout %q", j.Stdout())
	}
}

func TestJobReadingUnstagedInputFails(t *testing.T) {
	s := testSite(t, 2)
	// The program reads a file it never declared and which is not staged:
	// submission passes (nothing declared), execution fails cleanly.
	stage(t, s, "sloppy.gsh", "read missing.dat\n")
	j := submit(t, s, "sloppy.gsh", nil)
	waitJob(t, j)
	if j.State() != Failed || !strings.Contains(j.ExitMessage(), "missing.dat") {
		t.Fatalf("state %s msg %q", j.State(), j.ExitMessage())
	}
}

func TestCPUFactorSpeedsJobs(t *testing.T) {
	// A long compute keeps the 4x speed difference far above host jitter.
	clk := vtime.NewScaled(500)
	fast := NewSite(SiteConfig{Name: "fast", Nodes: 1, CoresPerNode: 1, CPUFactor: 4}, clk)
	slow := NewSite(SiteConfig{Name: "slow", Nodes: 1, CoresPerNode: 1, CPUFactor: 1}, clk)
	src := "compute 60s\n"
	fast.Store().Put(owner, "e.gsh", []byte(src))
	slow.Store().Put(owner, "e.gsh", []byte(src))
	jf, _ := fast.Submit(jsdl.Description{Owner: owner, Executable: "e.gsh"})
	js, _ := slow.Submit(jsdl.Description{Owner: owner, Executable: "e.gsh"})
	waitJob(t, jf)
	waitJob(t, js)
	_, fs, fe := jf.Times()
	_, ss, se := js.Times()
	fdur, sdur := fe.Sub(fs), se.Sub(ss)
	if fdur >= sdur {
		t.Fatalf("fast site (%v) not faster than slow site (%v)", fdur, sdur)
	}
}

func TestSubmitManyIsolatesPerEntryErrors(t *testing.T) {
	clk := vtime.NewScaled(20000)
	g, err := New(clk,
		SiteConfig{Name: "siteA", Nodes: 1, CoresPerNode: 4},
		SiteConfig{Name: "siteB", Nodes: 1, CoresPerNode: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	siteA, _ := g.Site("siteA")
	if err := siteA.Store().Put(owner, "hello.gsh", []byte("echo hi\n")); err != nil {
		t.Fatal(err)
	}
	descs := []jsdl.Description{
		{Owner: owner, Executable: "hello.gsh"},
		{Owner: owner, Executable: "ghost.gsh"},
		{Owner: owner, Executable: "hello.gsh", Site: "siteA"},
	}
	jobs, errs := g.SubmitMany(descs)
	if len(jobs) != len(descs) || len(errs) != len(descs) {
		t.Fatalf("SubmitMany returned %d jobs / %d errs for %d descs", len(jobs), len(errs), len(descs))
	}
	if errs[0] != nil || jobs[0] == nil {
		t.Fatalf("entry 0: jobs=%v err=%v", jobs[0], errs[0])
	}
	if !errors.Is(errs[1], ErrNotStaged) || jobs[1] != nil {
		t.Fatalf("entry 1: want ErrNotStaged without a job, got jobs=%v err=%v", jobs[1], errs[1])
	}
	if errs[2] != nil || jobs[2] == nil {
		t.Fatalf("entry 2: jobs=%v err=%v", jobs[2], errs[2])
	}
	waitJob(t, jobs[0])
	waitJob(t, jobs[2])
	for _, i := range []int{0, 2} {
		if st := jobs[i].State(); st != Succeeded {
			t.Fatalf("entry %d finished in %s, want %s", i, st, Succeeded)
		}
	}
}
