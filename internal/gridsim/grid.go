// Package gridsim simulates the production Grid of the paper's
// evaluation: a TeraGrid-like federation of supercomputing centres, each
// with a batch scheduler (FCFS plus aggressive backfill), a staging
// store fed by GridFTP, and a gsh execution engine. The middleware above
// it sees only the JSE contract — stage files, submit a description,
// poll status, fetch output — which is exactly the interface production
// Grids exposed ("a production Grid is normally accessed with strict
// secure interface", §II-B).
package gridsim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/jsdl"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Grid errors.
var (
	ErrNoSites    = errors.New("gridsim: grid has no sites")
	ErrNoSuchSite = errors.New("gridsim: no such site")
)

// Grid federates sites behind a broker.
type Grid struct {
	clock vtime.Clock
	sites map[string]*Site
	order []string
	bus   *EventBus
}

// New builds a grid from site configs.
func New(clock vtime.Clock, configs ...SiteConfig) (*Grid, error) {
	if len(configs) == 0 {
		return nil, ErrNoSites
	}
	if clock == nil {
		clock = vtime.Real{}
	}
	g := &Grid{
		clock: clock,
		sites: make(map[string]*Site, len(configs)),
		bus:   NewEventBus(),
	}
	for _, cfg := range configs {
		if cfg.Name == "" || cfg.slots() <= 0 {
			return nil, fmt.Errorf("gridsim: site %q needs a name and capacity", cfg.Name)
		}
		if _, dup := g.sites[cfg.Name]; dup {
			return nil, fmt.Errorf("gridsim: duplicate site %q", cfg.Name)
		}
		site := NewSite(cfg, clock)
		site.bus = g.bus
		g.sites[cfg.Name] = site
		g.order = append(g.order, cfg.Name)
	}
	sort.Strings(g.order)
	return g, nil
}

// Clock returns the grid's clock.
func (g *Grid) Clock() vtime.Clock { return g.clock }

// Events returns the grid-wide transition bus: every site's job
// lifecycle transitions and stdout bumps publish here, keyed by owner.
// The gatekeeper's event streams subscribe to it so completion is pushed
// instead of discovered by polling.
func (g *Grid) Events() *EventBus { return g.bus }

// SetTracer enables job-lifecycle tracing at every site: traced
// submissions record "job.queue" and "job.run" spans at the exact
// scheduler timestamps. Call before submitting; a nil tracer keeps
// tracing off.
func (g *Grid) SetTracer(t *trace.Tracer) {
	for _, s := range g.sites {
		s.SetTracer(t)
	}
}

// Site returns the named site.
func (g *Grid) Site(name string) (*Site, error) {
	s, ok := g.sites[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchSite, name)
	}
	return s, nil
}

// SiteNames lists sites, sorted.
func (g *Grid) SiteNames() []string {
	return append([]string(nil), g.order...)
}

// PickSite chooses the least-loaded site able to run a job of the given
// width — the broker the Cyberaide agent consults when the description
// does not pin a site.
func (g *Grid) PickSite(cpus int) (*Site, error) {
	var best *Site
	bestLoad := 0.0
	for _, name := range g.order {
		s := g.sites[name]
		if cpus > s.Slots() {
			continue
		}
		load := s.loadFactor()
		if best == nil || load < bestLoad {
			best, bestLoad = s, load
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no site fits %d cpus", ErrNoSuchSite, cpus)
	}
	return best, nil
}

// Submit brokers and submits: the description's Site is honoured when
// set, otherwise the least-loaded site that has the executable staged is
// chosen.
func (g *Grid) Submit(desc jsdl.Description) (*Job, error) {
	return g.SubmitTraced(desc, trace.SpanContext{})
}

// SubmitTraced is Submit with a trace context: when valid (and a tracer
// is set), the job's queue and run phases become spans under it.
func (g *Grid) SubmitTraced(desc jsdl.Description, tc trace.SpanContext) (*Job, error) {
	desc.Normalize()
	if desc.Site != "" {
		site, err := g.Site(desc.Site)
		if err != nil {
			return nil, err
		}
		return site.SubmitTraced(desc, tc)
	}
	// Prefer sites where the executable is already staged.
	var candidates []*Site
	for _, name := range g.order {
		s := g.sites[name]
		if _, err := s.store.Size(desc.Owner, desc.Executable); err == nil && desc.CPUs <= s.Slots() {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: %s staged nowhere for %s", ErrNotStaged, desc.Executable, desc.Owner)
	}
	best := candidates[0]
	bestLoad := best.loadFactor()
	for _, s := range candidates[1:] {
		if load := s.loadFactor(); load < bestLoad {
			best, bestLoad = s, load
		}
	}
	return best.SubmitTraced(desc, tc)
}

// Job resolves a job ID ("site:job-n") anywhere in the grid.
func (g *Grid) Job(id string) (*Job, error) {
	site, _, ok := strings.Cut(id, ":")
	if !ok {
		return nil, fmt.Errorf("%w: malformed id %q", ErrNoSuchJob, id)
	}
	s, err := g.Site(site)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchJob, id)
	}
	return s.Job(id)
}

// Jobs resolves many job IDs in one pass. The result slices are
// parallel to ids: jobs[i] is non-nil exactly when errs[i] is nil. A
// bad ID never fails the batch — callers (the gatekeeper's status-batch
// endpoint) report per-entry errors instead.
func (g *Grid) Jobs(ids []string) (jobs []*Job, errs []error) {
	jobs = make([]*Job, len(ids))
	errs = make([]error, len(ids))
	for i, id := range ids {
		jobs[i], errs[i] = g.Job(id)
	}
	return jobs, errs
}

// SubmitMany submits many descriptions in one pass. The result slices
// are parallel to descs: jobs[i] is non-nil exactly when errs[i] is
// nil. A rejected description never fails the batch — callers (the
// gatekeeper's submit-batch endpoint) report per-entry errors instead.
func (g *Grid) SubmitMany(descs []jsdl.Description) (jobs []*Job, errs []error) {
	return g.SubmitManyTraced(descs, nil)
}

// SubmitManyTraced is SubmitMany with one trace context per description
// (parallel to descs; shorter or nil allowed).
func (g *Grid) SubmitManyTraced(descs []jsdl.Description, tcs []trace.SpanContext) (jobs []*Job, errs []error) {
	jobs = make([]*Job, len(descs))
	errs = make([]error, len(descs))
	for i, desc := range descs {
		var tc trace.SpanContext
		if i < len(tcs) {
			tc = tcs[i]
		}
		jobs[i], errs[i] = g.SubmitTraced(desc, tc)
	}
	return jobs, errs
}

// SiteUsage pairs a site name with one owner's usage there.
type SiteUsage struct {
	Site  string     `json:"site"`
	Usage OwnerUsage `json:"usage"`
}

// Usage reports owner's consumption at every site where it is non-zero.
func (g *Grid) Usage(owner string) []SiteUsage {
	var out []SiteUsage
	for _, name := range g.order {
		u := g.sites[name].Usage(owner)
		if u.Jobs > 0 || u.CPUSeconds > 0 {
			out = append(out, SiteUsage{Site: name, Usage: u})
		}
	}
	return out
}

// Stats snapshots every site.
func (g *Grid) Stats() []SiteStats {
	out := make([]SiteStats, 0, len(g.order))
	for _, name := range g.order {
		out = append(out, g.sites[name].Stats())
	}
	return out
}

// TeraGrid returns the default machine file: eleven centres, echoing
// "the TeraGrid is a production Grid infrastructure which contains 11
// supercomputing centers across U.S." (paper §VIII-A). Capacities are
// stylised, not historical.
func TeraGrid(clock vtime.Clock) (*Grid, error) {
	mk := func(name string, nodes, cores int, factor float64) SiteConfig {
		return SiteConfig{
			Name: name, Nodes: nodes, CoresPerNode: cores,
			CPUFactor: factor, DefaultWallTime: 12 * time.Hour,
		}
	}
	return New(clock,
		mk("ncsa-abe", 120, 8, 1.2),
		mk("sdsc-ds", 96, 8, 1.0),
		mk("psc-pople", 48, 16, 1.1),
		mk("tacc-ranger", 256, 16, 1.3),
		mk("anl-teraport", 32, 4, 0.9),
		mk("purdue-steele", 64, 8, 1.0),
		mk("iu-bigred", 96, 4, 0.9),
		mk("ornl-nstg", 16, 4, 0.8),
		mk("nics-kraken", 256, 12, 1.3),
		mk("lsu-queenbee", 48, 8, 1.0),
		mk("ucanl-uc", 24, 4, 0.8),
	)
}
