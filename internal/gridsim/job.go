package gridsim

import (
	"bytes"
	"sync"
	"time"

	"repro/internal/jsdl"
	"repro/internal/trace"
)

// State is a job's lifecycle state.
type State int

// Job lifecycle. Terminal states are Succeeded and later.
const (
	Queued State = iota
	Running
	Succeeded
	Failed
	Cancelled
	TimedOut
)

// String names the state using classic batch-system vocabulary.
func (s State) String() string {
	switch s {
	case Queued:
		return "QUEUED"
	case Running:
		return "RUNNING"
	case Succeeded:
		return "DONE"
	case Failed:
		return "FAILED"
	case Cancelled:
		return "CANCELLED"
	case TimedOut:
		return "TIMEOUT"
	}
	return "UNKNOWN"
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= Succeeded }

// MaxJobOutputBytes is the default bound on the total output artifacts
// one job may write; sites may override it via SiteConfig.MaxJobOutput.
const MaxJobOutputBytes = 64 << 20

// Job is one unit of work inside a site.
type Job struct {
	// ID is globally unique: "<site>:job-<n>".
	ID string
	// Desc is the submitted description (normalized).
	Desc jsdl.Description
	// Site is the executing site's name.
	Site string

	mu        sync.Mutex
	state     State
	exitMsg   string
	stdout    bytes.Buffer
	stdoutVer uint64
	outputs   map[string][]byte
	outBytes  int
	outQuota  int
	submitted time.Time
	started   time.Time
	ended     time.Time

	// Tracing (nil when the submission was untraced): queueSpan covers
	// Queued->Running, runSpan covers Running->terminal, both children of
	// the submitter's context at exact scheduler timestamps.
	tracer    *trace.Tracer
	traceCtx  trace.SpanContext
	queueSpan *trace.Span
	runSpan   *trace.Span

	// done closes when the job reaches a terminal state.
	done chan struct{}
	// cancel closes to stop the interpreter (cancellation, walltime).
	cancel    chan struct{}
	cancelled bool
}

func newJob(id string, desc jsdl.Description, site string, now time.Time, outQuota int) *Job {
	if outQuota <= 0 {
		outQuota = MaxJobOutputBytes
	}
	return &Job{
		ID:        id,
		Desc:      desc,
		Site:      site,
		state:     Queued,
		outputs:   make(map[string][]byte),
		outQuota:  outQuota,
		submitted: now,
		done:      make(chan struct{}),
		cancel:    make(chan struct{}),
	}
}

// initTrace opens the queue-phase span. Called once, before the job is
// visible to the scheduler.
func (j *Job) initTrace(t *trace.Tracer, tc trace.SpanContext, now time.Time) {
	j.tracer = t
	j.traceCtx = tc
	j.queueSpan = t.StartSpanAt("job.queue", tc, now)
	j.queueSpan.Set("job_id", j.ID)
	j.queueSpan.Set("site", j.Site)
	j.queueSpan.SetInt("cpus", int64(j.Desc.CPUs))
}

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// ExitMessage returns the failure/cancellation message, if any.
func (j *Job) ExitMessage() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.exitMsg
}

// Stdout returns a snapshot of output produced so far — this is what the
// paper's workaround polls "tentatively" while the job runs.
func (j *Job) Stdout() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stdout.String()
}

// StdoutVersion reports the job's output version: a counter bumped on
// every stdout append. Pollers remember the version they last fetched
// and skip re-fetching an unchanged snapshot (the conditional-output
// extension the paper's tentative poller lacked).
func (j *Job) StdoutVersion() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stdoutVer
}

// StdoutVersioned returns the stdout snapshot together with its version,
// read atomically so a caller can cache the pair.
func (j *Job) StdoutVersioned() (string, uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stdout.String(), j.stdoutVer
}

// OutputFile returns a named output artifact (nil if absent).
func (j *Job) OutputFile(name string) []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	b := j.outputs[name]
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// OutputNames lists produced artifacts.
func (j *Job) OutputNames() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, 0, len(j.outputs))
	for n := range j.outputs {
		out = append(out, n)
	}
	return out
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Times returns (submitted, started, ended); zero values where the event
// has not happened.
func (j *Job) Times() (submitted, started, ended time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.ended
}

// writeStdout appends to the job's stdout stream and returns the new
// output version (unchanged when p is empty).
func (j *Job) writeStdout(p []byte) (n int, ver uint64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(p) > 0 {
		j.stdoutVer++
	}
	n, err = j.stdout.Write(p)
	return n, j.stdoutVer, err
}

type stdoutWriter struct {
	j *Job
	s *Site
}

func (w stdoutWriter) Write(p []byte) (int, error) {
	n, ver, err := w.j.writeStdout(p)
	if len(p) > 0 && w.s != nil {
		w.s.publishOutput(w.j, ver)
	}
	return n, err
}

// writeOutput stores an output artifact, enforcing the per-job quota.
func (j *Job) writeOutput(name string, data []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.outBytes+len(data) > j.outQuota {
		return ErrQuota
	}
	if old, ok := j.outputs[name]; ok {
		j.outBytes -= len(old)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	j.outputs[name] = cp
	j.outBytes += len(cp)
	return nil
}

// markRunning transitions Queued→Running; returns false if the job was
// cancelled while queued.
func (j *Job) markRunning(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Queued {
		return false
	}
	j.state = Running
	j.started = now
	j.queueSpan.EndAt(now)
	if j.tracer != nil {
		j.runSpan = j.tracer.StartSpanAt("job.run", j.traceCtx, now)
		j.runSpan.Set("job_id", j.ID)
		j.runSpan.Set("site", j.Site)
	}
	return true
}

// finish transitions to a terminal state exactly once.
func (j *Job) finish(st State, msg string, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	wasQueued := j.state == Queued
	j.state = st
	j.exitMsg = msg
	j.ended = now
	// Close whichever lifecycle span is still open; non-success ends it
	// with error status so cancelled/killed jobs never leak an "ok" tree.
	sp := j.runSpan
	if wasQueued {
		sp = j.queueSpan
	}
	if st != Succeeded {
		sp.Error(msg)
	}
	sp.Set("state", st.String())
	sp.EndAt(now)
	close(j.done)
	return true
}

// requestCancel closes the interpreter's cancel channel once.
func (j *Job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.cancelled {
		j.cancelled = true
		close(j.cancel)
	}
}
