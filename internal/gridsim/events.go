package gridsim

import (
	"sync"
	"time"
)

// Event types carried by JobEvent.Type.
const (
	// EventState marks a lifecycle transition (RUNNING or a terminal
	// state).
	EventState = "state"
	// EventOutput marks a stdout-version bump: the job appended output
	// and OutputVersion is the new version.
	EventOutput = "output"
)

// EventRingSize bounds how many recent events the bus retains per owner
// for cursor resume. A subscriber reconnecting with a cursor older than
// the owner's retained window is told to resynchronise instead of being
// replayed a gapped history.
const EventRingSize = 4096

// JobEvent is one published job transition or output bump. Seq is a
// bus-wide monotonic sequence number: subscribers use the last Seq they
// saw as a resume cursor after a dropped connection.
type JobEvent struct {
	Seq           uint64
	Type          string // EventState or EventOutput
	JobID         string
	Owner         string
	State         string // state name for EventState, "" for EventOutput
	Message       string
	Site          string
	OutputVersion uint64
	At            time.Time
}

// EventBus publishes job transitions to per-owner subscribers — the
// subscription registry between the scheduler and the gatekeeper's event
// streams. Publication is strictly non-blocking: a slow or stalled
// subscriber overflows its buffer and is flagged for resync; the
// scheduler never waits on a network peer.
type EventBus struct {
	mu      sync.Mutex
	seq     uint64
	rings   map[string]*eventRing // owner -> bounded replay history
	subs    map[int]*EventSub
	nextSub int
}

// eventRing is one owner's bounded replay history.
type eventRing struct {
	buf   []JobEvent // circular; cap EventRingSize
	start int        // index of the oldest retained event
	// evicted is the Seq of the newest event dropped from the ring; a
	// resume cursor below it has lost owner events and must resync.
	evicted uint64
}

// EventSub is one subscriber's live feed. Events arrive on C; a receive
// on Overflow means the buffer spilled and the subscriber holds a gapped
// view — the server forwards that as a resync signal.
type EventSub struct {
	owner string
	id    int
	// C carries this owner's events in publication order.
	C chan JobEvent
	// Overflow is signalled (capacity 1) when an event had to be dropped.
	Overflow chan struct{}
}

// subBuffer is the per-subscriber channel capacity; a burst larger than
// this between two reads of a subscriber overflows it into a resync.
const subBuffer = 1024

// NewEventBus builds an empty bus.
func NewEventBus() *EventBus {
	return &EventBus{
		rings: make(map[string]*eventRing),
		subs:  make(map[int]*EventSub),
	}
}

// publish records ev in the owner's replay ring and fans it out to the
// owner's live subscribers without ever blocking.
func (b *EventBus) publish(ev JobEvent) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	r := b.rings[ev.Owner]
	if r == nil {
		r = &eventRing{}
		b.rings[ev.Owner] = r
	}
	if len(r.buf) < EventRingSize {
		r.buf = append(r.buf, ev)
	} else {
		r.evicted = r.buf[r.start].Seq
		r.buf[r.start] = ev
		r.start = (r.start + 1) % len(r.buf)
	}
	for _, sub := range b.subs {
		if sub.owner != ev.Owner {
			continue
		}
		select {
		case sub.C <- ev:
		default:
			// Full buffer: drop the event and nudge the subscriber to
			// resync rather than block the scheduler.
			select {
			case sub.Overflow <- struct{}{}:
			default:
			}
		}
	}
	b.mu.Unlock()
}

// Subscribe opens a live feed of owner's events. Events already
// published with Seq > since are returned as replay (oldest first);
// resync reports that owner events in (since, now] were evicted from the
// ring (or the cursor is bogus), so the subscriber's view has a gap only
// a full state resynchronisation can close. since == 0 means "no cursor":
// the whole retained history is replayed.
func (b *EventBus) Subscribe(owner string, since uint64) (sub *EventSub, replay []JobEvent, resync bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	sub = &EventSub{
		owner:    owner,
		id:       b.nextSub,
		C:        make(chan JobEvent, subBuffer),
		Overflow: make(chan struct{}, 1),
	}
	b.nextSub++
	b.subs[sub.id] = sub
	if since > b.seq {
		return sub, nil, true // cursor from another bus incarnation
	}
	r := b.rings[owner]
	if r == nil {
		return sub, nil, false
	}
	if since > 0 && since < r.evicted {
		resync = true
	}
	for i := 0; i < len(r.buf); i++ {
		ev := r.buf[(r.start+i)%len(r.buf)]
		if ev.Seq > since {
			replay = append(replay, ev)
		}
	}
	return sub, replay, resync
}

// Unsubscribe closes a feed opened by Subscribe.
func (b *EventBus) Unsubscribe(sub *EventSub) {
	if b == nil || sub == nil {
		return
	}
	b.mu.Lock()
	delete(b.subs, sub.id)
	b.mu.Unlock()
}

// Seq returns the bus's current sequence number (the newest published
// event's Seq).
func (b *EventBus) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}
