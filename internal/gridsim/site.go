package gridsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/gsh"
	"repro/internal/jsdl"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Site errors.
var (
	ErrNotStaged   = errors.New("gridsim: executable not staged at site")
	ErrTooManyCPUs = errors.New("gridsim: job requests more CPUs than the site has")
	ErrNoSuchJob   = errors.New("gridsim: no such job")
	ErrDraining    = errors.New("gridsim: site is draining")
)

// Policy selects a site's batch scheduling discipline.
type Policy int

// Scheduling policies.
const (
	// PolicyAggressive starts any queued job that fits the free slots
	// (EASY-style backfill without reservations). This is the default and
	// what most 2010-era TeraGrid sites effectively ran for serial mixes.
	PolicyAggressive Policy = iota
	// PolicyFCFS starts jobs strictly in submission order: the queue
	// head blocks everything behind it until it fits.
	PolicyFCFS
	// PolicyConservative gives the queue head a reservation computed
	// from running jobs' walltime limits; later jobs backfill only if
	// they cannot delay that reservation.
	PolicyConservative
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyAggressive:
		return "aggressive"
	case PolicyFCFS:
		return "fcfs"
	case PolicyConservative:
		return "conservative"
	}
	return "unknown"
}

// SiteConfig describes one supercomputing centre.
type SiteConfig struct {
	// Name identifies the site ("ncsa-abe", ...).
	Name string
	// Policy selects the batch scheduling discipline (default
	// PolicyAggressive).
	Policy Policy
	// Nodes and CoresPerNode define capacity; slots = Nodes*CoresPerNode.
	Nodes        int
	CoresPerNode int
	// CPUFactor scales compute statement durations: 2.0 runs compute
	// twice as fast as nominal. Zero means 1.0.
	CPUFactor float64
	// DefaultWallTime applies when a job requests none. Zero = 12h.
	DefaultWallTime time.Duration
	// MaxJobOutput bounds one job's total output artifacts; zero means
	// the package default MaxJobOutputBytes.
	MaxJobOutput int
}

func (c *SiteConfig) slots() int { return c.Nodes * c.CoresPerNode }

// SiteStats is a snapshot of a site's accounting.
type SiteStats struct {
	Name       string
	Slots      int
	FreeSlots  int
	Queued     int
	Running    int
	Completed  int
	Failed     int
	CPUSeconds float64
}

// Site models one centre: a slot pool, an FCFS queue with aggressive
// backfill, a staging store, and a gsh execution engine.
type Site struct {
	cfg    SiteConfig
	clock  vtime.Clock
	store  *Store
	tracer *trace.Tracer
	// bus receives job transition/output events (nil for a standalone
	// site; Grid.New wires the grid-wide bus in).
	bus *EventBus

	mu        sync.Mutex
	freeSlots int
	queue     []*Job
	jobs      map[string]*Job
	running   map[string]runInfo
	seq       int
	draining  bool
	completed int
	failed    int
	cpuSec    float64
	usage     map[string]*OwnerUsage // by owner identity
}

// OwnerUsage is one identity's consumption at a site — the accounting
// production grids bill allocations against.
type OwnerUsage struct {
	Owner      string  `json:"owner"`
	Jobs       int     `json:"jobs"`
	CPUSeconds float64 `json:"cpu_seconds"`
}

// runInfo tracks a dispatched job's slot claim and its walltime deadline,
// the inputs to conservative-backfill reservations.
type runInfo struct {
	cpus     int
	deadline time.Time
}

// NewSite builds a site from cfg.
func NewSite(cfg SiteConfig, clock vtime.Clock) *Site {
	if cfg.CPUFactor <= 0 {
		cfg.CPUFactor = 1
	}
	if cfg.DefaultWallTime <= 0 {
		cfg.DefaultWallTime = 12 * time.Hour
	}
	if clock == nil {
		clock = vtime.Real{}
	}
	return &Site{
		cfg:       cfg,
		clock:     clock,
		store:     NewStore(),
		freeSlots: cfg.slots(),
		jobs:      make(map[string]*Job),
		running:   make(map[string]runInfo),
		usage:     make(map[string]*OwnerUsage),
	}
}

// Policy reports the scheduling discipline.
func (s *Site) Policy() Policy { return s.cfg.Policy }

// Name returns the site name.
func (s *Site) Name() string { return s.cfg.Name }

// Store returns the site's staging area.
func (s *Site) Store() *Store { return s.store }

// SetTracer enables job-lifecycle spans for traced submissions. Call
// before submitting; a nil tracer keeps tracing off.
func (s *Site) SetTracer(t *trace.Tracer) { s.tracer = t }

// publishState emits a lifecycle-transition event for j; no-op without a
// bus. Called outside s.mu and j.mu.
func (s *Site) publishState(j *Job, st State, msg string, ver uint64, at time.Time) {
	s.bus.publish(JobEvent{
		Type:          EventState,
		JobID:         j.ID,
		Owner:         j.Desc.Owner,
		State:         st.String(),
		Message:       msg,
		Site:          s.cfg.Name,
		OutputVersion: ver,
		At:            at,
	})
}

// publishOutput emits a stdout-version bump for j; no-op without a bus.
func (s *Site) publishOutput(j *Job, ver uint64) {
	s.bus.publish(JobEvent{
		Type:          EventOutput,
		JobID:         j.ID,
		Owner:         j.Desc.Owner,
		Site:          s.cfg.Name,
		OutputVersion: ver,
		At:            s.clock.Now(),
	})
}

// Slots returns total capacity.
func (s *Site) Slots() int { return s.cfg.slots() }

// Submit validates and enqueues a job. The executable must already be
// staged for the owner (the JSE contract: stage first, then submit).
func (s *Site) Submit(desc jsdl.Description) (*Job, error) {
	return s.SubmitTraced(desc, trace.SpanContext{})
}

// SubmitTraced is Submit with a trace context; when valid (and the site
// has a tracer), the job records "job.queue" and "job.run" spans under
// it at exact scheduler timestamps.
func (s *Site) SubmitTraced(desc jsdl.Description, tc trace.SpanContext) (*Job, error) {
	desc.Normalize()
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if desc.CPUs > s.cfg.slots() {
		return nil, fmt.Errorf("%w: %d > %d at %s", ErrTooManyCPUs, desc.CPUs, s.cfg.slots(), s.cfg.Name)
	}
	if _, err := s.store.Size(desc.Owner, desc.Executable); err != nil {
		return nil, fmt.Errorf("%w: %s (owner %s)", ErrNotStaged, desc.Executable, desc.Owner)
	}
	for _, f := range desc.StageIn {
		if _, err := s.store.Size(desc.Owner, f); err != nil {
			return nil, fmt.Errorf("%w: stage-in %s (owner %s)", ErrNotStaged, f, desc.Owner)
		}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.seq++
	id := fmt.Sprintf("%s:job-%06d", s.cfg.Name, s.seq)
	now := s.clock.Now()
	job := newJob(id, desc, s.cfg.Name, now, s.cfg.MaxJobOutput)
	if s.tracer != nil && tc.Valid() {
		// Before enqueue: dispatchLocked may start the job immediately and
		// markRunning must see the queue span.
		job.initTrace(s.tracer, tc, now)
	}
	s.jobs[id] = job
	s.queue = append(s.queue, job)
	s.dispatchLocked()
	s.mu.Unlock()
	return job, nil
}

// Job looks up a job by ID.
func (s *Site) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchJob, id)
	}
	return j, nil
}

// Cancel requests cancellation. Jobs still in the queue finish
// immediately; dispatched jobs stop at the interpreter's next statement
// boundary and their slots return through the runner.
func (s *Site) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	inQueue := false
	s.mu.Lock()
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			inQueue = true
			break
		}
	}
	s.mu.Unlock()
	if inQueue {
		endedAt := s.clock.Now()
		if j.finish(Cancelled, "cancelled by user", endedAt) {
			// Never dispatched: account it here, since no runner will.
			s.mu.Lock()
			s.failed++
			s.mu.Unlock()
			s.publishState(j, Cancelled, "cancelled by user", j.StdoutVersion(), endedAt)
		}
		return nil
	}
	// Dispatched (or already terminal, where this is a no-op): signal the
	// runner, which frees the slots before marking the job terminal.
	j.requestCancel()
	return nil
}

// Drain stops accepting new jobs (used for failure-injection tests).
func (s *Site) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Stats snapshots the site accounting.
func (s *Site) Stats() SiteStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	running := 0
	for _, j := range s.jobs {
		if j.State() == Running {
			running++
		}
	}
	return SiteStats{
		Name:       s.cfg.Name,
		Slots:      s.cfg.slots(),
		FreeSlots:  s.freeSlots,
		Queued:     len(s.queue),
		Running:    running,
		Completed:  s.completed,
		Failed:     s.failed,
		CPUSeconds: s.cpuSec,
	}
}

// ownerUsageLocked returns (creating) the owner's usage row; caller
// holds s.mu.
func (s *Site) ownerUsageLocked(owner string) *OwnerUsage {
	u := s.usage[owner]
	if u == nil {
		u = &OwnerUsage{Owner: owner}
		s.usage[owner] = u
	}
	return u
}

// Usage snapshots one owner's consumption at this site.
func (s *Site) Usage(owner string) OwnerUsage {
	s.mu.Lock()
	defer s.mu.Unlock()
	if u := s.usage[owner]; u != nil {
		return *u
	}
	return OwnerUsage{Owner: owner}
}

// loadFactor estimates contention for the broker: committed CPUs (queued
// + running) per slot.
func (s *Site) loadFactor() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	committed := s.cfg.slots() - s.freeSlots
	for _, j := range s.queue {
		committed += j.Desc.CPUs
	}
	return float64(committed) / float64(s.cfg.slots())
}

// dispatchLocked starts queued jobs according to the site's policy.
// Caller holds s.mu.
func (s *Site) dispatchLocked() {
	switch s.cfg.Policy {
	case PolicyFCFS:
		s.dispatchFCFSLocked()
	case PolicyConservative:
		s.dispatchConservativeLocked()
	default:
		s.dispatchAggressiveLocked()
	}
}

// startLocked claims slots and launches the runner. The start timestamp
// is taken here, under the scheduler lock, so job start ordering matches
// dispatch ordering regardless of goroutine scheduling.
func (s *Site) startLocked(j *Job) {
	s.freeSlots -= j.Desc.CPUs
	now := s.clock.Now()
	s.running[j.ID] = runInfo{
		cpus:     j.Desc.CPUs,
		deadline: now.Add(s.wallTimeOf(j)),
	}
	go s.run(j, now)
}

func (s *Site) wallTimeOf(j *Job) time.Duration {
	if j.Desc.WallTime > 0 {
		return j.Desc.WallTime
	}
	return s.cfg.DefaultWallTime
}

// dispatchAggressiveLocked starts every queued job that fits, in
// submission order, skipping jobs too wide for the current free slots —
// EASY-style backfill without reservations.
func (s *Site) dispatchAggressiveLocked() {
	remaining := s.queue[:0]
	for _, j := range s.queue {
		if j.State().Terminal() {
			continue // cancelled while queued
		}
		if j.Desc.CPUs <= s.freeSlots {
			s.startLocked(j)
		} else {
			remaining = append(remaining, j)
		}
	}
	s.queue = remaining
}

// dispatchFCFSLocked starts jobs strictly in order; the first job that
// does not fit blocks everything behind it.
func (s *Site) dispatchFCFSLocked() {
	i := 0
	for ; i < len(s.queue); i++ {
		j := s.queue[i]
		if j.State().Terminal() {
			continue
		}
		if j.Desc.CPUs > s.freeSlots {
			break
		}
		s.startLocked(j)
	}
	// Compact: drop started/terminal prefix, keep the blocked tail.
	remaining := s.queue[:0]
	for ; i < len(s.queue); i++ {
		if !s.queue[i].State().Terminal() {
			remaining = append(remaining, s.queue[i])
		}
	}
	s.queue = remaining
}

// dispatchConservativeLocked gives the queue head a reservation derived
// from running jobs' walltime deadlines; later jobs may start only if
// they fit now and their own walltime cannot push the reservation back.
func (s *Site) dispatchConservativeLocked() {
	now := s.clock.Now()
	remaining := s.queue[:0]
	var reservation time.Time
	haveHead := false
	for _, j := range s.queue {
		if j.State().Terminal() {
			continue
		}
		switch {
		case !haveHead && j.Desc.CPUs <= s.freeSlots:
			s.startLocked(j)
		case !haveHead:
			// This is the blocked head: reserve its start.
			reservation = s.reservationLocked(j.Desc.CPUs)
			haveHead = true
			remaining = append(remaining, j)
		default:
			// Backfill candidates: must fit now and finish (by walltime
			// bound) before the head's reservation.
			if j.Desc.CPUs <= s.freeSlots && !now.Add(s.wallTimeOf(j)).After(reservation) {
				s.startLocked(j)
				// Starting a backfill job cannot delay the reservation
				// (its slots return before it), so no recompute needed.
			} else {
				remaining = append(remaining, j)
			}
		}
	}
	s.queue = remaining
}

// reservationLocked estimates the earliest instant at which cpus slots
// will be free, assuming running jobs hold their slots until their
// walltime deadlines (the conservative bound).
func (s *Site) reservationLocked(cpus int) time.Time {
	free := s.freeSlots
	now := s.clock.Now()
	if free >= cpus {
		return now
	}
	evs := make([]runInfo, 0, len(s.running))
	for _, ri := range s.running {
		evs = append(evs, ri)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].deadline.Before(evs[j].deadline) })
	for _, e := range evs {
		free += e.cpus
		if free >= cpus {
			if e.deadline.Before(now) {
				return now
			}
			return e.deadline
		}
	}
	// Unreachable for validated submissions (cpus <= site slots).
	return now.Add(s.cfg.DefaultWallTime)
}

// run executes one job, then returns its slots and records the terminal
// state. Slots are freed and the queue redispatched *before* the job is
// marked terminal, so an observer woken by Done() sees consistent site
// accounting.
func (s *Site) run(j *Job, startedAt time.Time) {
	st, msg := s.execute(j, startedAt)
	// The end timestamp is taken before the slots are redispatched, so a
	// successor's start time never precedes this job's end time.
	endedAt := s.clock.Now()
	s.mu.Lock()
	s.freeSlots += j.Desc.CPUs
	delete(s.running, j.ID)
	s.ownerUsageLocked(j.Desc.Owner).Jobs++
	if st == Succeeded {
		s.completed++
	} else {
		s.failed++
	}
	s.dispatchLocked()
	s.mu.Unlock()
	if j.finish(st, msg, endedAt) {
		s.publishState(j, st, msg, j.StdoutVersion(), endedAt)
	}
}

// execute runs the job body and reports the terminal state to record.
func (s *Site) execute(j *Job, startedAt time.Time) (State, string) {
	if !j.markRunning(startedAt) {
		return Cancelled, "cancelled before start" // finished while queued
	}
	s.publishState(j, Running, "", j.StdoutVersion(), startedAt)
	src, err := s.store.Get(j.Desc.Owner, j.Desc.Executable)
	if err != nil {
		return Failed, "stage-in vanished: " + err.Error()
	}
	prog, err := gsh.Parse(src)
	if err != nil {
		return Failed, "executable rejected: " + err.Error()
	}

	wallTime := j.Desc.WallTime
	if wallTime <= 0 {
		wallTime = s.cfg.DefaultWallTime
	}
	env := &gsh.Env{
		Args:   j.Desc.Arguments,
		Stdout: stdoutWriter{j: j, s: s},
		Clock:  s.clock,
		CPU: func(d time.Duration) {
			scaled := time.Duration(float64(d) / s.cfg.CPUFactor)
			s.clock.Sleep(scaled)
			coreSec := scaled.Seconds() * float64(j.Desc.CPUs)
			s.mu.Lock()
			s.cpuSec += coreSec
			s.ownerUsageLocked(j.Desc.Owner).CPUSeconds += coreSec
			s.mu.Unlock()
		},
		WriteFile: j.writeOutput,
		ReadFile: func(name string) ([]byte, error) {
			return s.store.Get(j.Desc.Owner, name)
		},
		Done: j.cancel,
	}

	result := make(chan error, 1)
	go func() { result <- prog.Run(env) }()

	select {
	case err := <-result:
		switch {
		case err == nil:
			return Succeeded, ""
		case errors.Is(err, gsh.ErrCancelled):
			return Cancelled, "cancelled by user"
		default:
			return Failed, err.Error()
		}
	case <-s.clock.After(wallTime):
		// The interpreter goroutine unwinds at its next statement
		// boundary; its late writes are ignored because the job will
		// already be terminal.
		j.requestCancel()
		return TimedOut, fmt.Sprintf("walltime limit %v exceeded", wallTime)
	case <-j.cancel:
		// Cancel of a dispatched job: release the slots immediately even
		// if the interpreter is mid-sleep.
		return Cancelled, "cancelled by user"
	}
}
