package gridsim

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/jsdl"
	"repro/internal/vtime"
)

// Property: for any random mix of job widths and behaviours (success,
// failure, cancellation), every submitted job reaches exactly one
// terminal state, slots are fully returned, and the completed+failed
// accounting matches the number of submissions.
func TestPropertySchedulerConservation(t *testing.T) {
	f := func(widths []uint8, behaviours []uint8) bool {
		if len(widths) == 0 {
			return true
		}
		if len(widths) > 24 {
			widths = widths[:24]
		}
		clk := vtime.NewScaled(50000)
		s := NewSite(SiteConfig{Name: "prop", Nodes: 2, CoresPerNode: 4}, clk)
		s.Store().Put(owner, "ok.gsh", []byte("compute 100ms\n"))
		s.Store().Put(owner, "bad.gsh", []byte("fail nope\n"))
		s.Store().Put(owner, "slow.gsh", []byte("compute 30s\n"))

		var jobs []*Job
		var toCancel []*Job
		for i, w := range widths {
			width := int(w%8) + 1 // 1..8, site has 8 slots
			beh := 0
			if i < len(behaviours) {
				beh = int(behaviours[i] % 3)
			}
			exe := [3]string{"ok.gsh", "bad.gsh", "slow.gsh"}[beh]
			j, err := s.Submit(jsdl.Description{Owner: owner, Executable: exe, CPUs: width})
			if err != nil {
				return false
			}
			jobs = append(jobs, j)
			if beh == 2 {
				toCancel = append(toCancel, j)
			}
		}
		// Cancel the slow ones so the run terminates promptly.
		var wg sync.WaitGroup
		for _, j := range toCancel {
			wg.Add(1)
			go func(j *Job) {
				defer wg.Done()
				s.Cancel(j.ID)
			}(j)
		}
		wg.Wait()
		deadline := time.After(10 * time.Second)
		for _, j := range jobs {
			select {
			case <-j.Done():
			case <-deadline:
				return false
			}
		}
		stats := s.Stats()
		if stats.FreeSlots != stats.Slots || stats.Queued != 0 || stats.Running != 0 {
			return false
		}
		return stats.Completed+stats.Failed == len(jobs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: the grid broker never loses a job either — submissions
// across many sites all terminate and per-site accounting sums to the
// total.
func TestPropertyGridConservation(t *testing.T) {
	clk := vtime.NewScaled(50000)
	g, err := New(clk,
		SiteConfig{Name: "a", Nodes: 1, CoresPerNode: 2},
		SiteConfig{Name: "b", Nodes: 2, CoresPerNode: 2},
		SiteConfig{Name: "c", Nodes: 1, CoresPerNode: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range g.SiteNames() {
		s, _ := g.Site(name)
		s.Store().Put(owner, "j.gsh", []byte("compute 50ms\necho ok\n"))
	}
	const n = 60
	var wg sync.WaitGroup
	failures := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := g.Submit(jsdl.Description{Owner: owner, Executable: "j.gsh"})
			if err != nil {
				failures <- err.Error()
				return
			}
			select {
			case <-j.Done():
				if j.State() != Succeeded {
					failures <- fmt.Sprintf("%s: %s", j.ID, j.State())
				}
			case <-time.After(10 * time.Second):
				failures <- j.ID + " stuck"
			}
		}(i)
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Fatal(f)
	}
	total := 0
	for _, st := range g.Stats() {
		total += st.Completed
		if st.FreeSlots != st.Slots {
			t.Fatalf("site %s leaked slots: %+v", st.Name, st)
		}
	}
	if total != n {
		t.Fatalf("completed %d, want %d", total, n)
	}
}
