package gridsim

import (
	"testing"
	"time"

	"repro/internal/jsdl"
	"repro/internal/vtime"
)

// policySite builds a 4-slot site with the given policy and a staged
// pair of executables: quick (100ms) and slow (5s).
func policySite(t *testing.T, p Policy) *Site {
	t.Helper()
	clk := vtime.NewScaled(20000)
	s := NewSite(SiteConfig{Name: "pol", Nodes: 1, CoresPerNode: 4, Policy: p}, clk)
	stage(t, s, "quick.gsh", "compute 100ms\n")
	stage(t, s, "slow.gsh", "compute 5s\n")
	return s
}

func submitWide(t *testing.T, s *Site, exe string, cpus int, wallTime time.Duration) *Job {
	t.Helper()
	j, err := s.Submit(jsdl.Description{
		Owner: owner, Executable: exe, CPUs: cpus, WallTime: wallTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestPolicyStrings(t *testing.T) {
	if PolicyAggressive.String() != "aggressive" || PolicyFCFS.String() != "fcfs" ||
		PolicyConservative.String() != "conservative" || Policy(9).String() != "unknown" {
		t.Fatal("policy names wrong")
	}
}

func TestFCFSHeadBlocksQueue(t *testing.T) {
	s := policySite(t, PolicyFCFS)
	// Occupy 3 of 4 slots for a while.
	hog := submitWide(t, s, "slow.gsh", 3, time.Minute)
	// Head needs 2: cannot start. A later 1-wide job must NOT overtake
	// under strict FCFS.
	head := submitWide(t, s, "slow.gsh", 2, time.Minute)
	narrow := submitWide(t, s, "quick.gsh", 1, time.Minute)
	waitJob(t, hog)
	waitJob(t, head)
	waitJob(t, narrow)
	_, narrowStart, _ := narrow.Times()
	_, headStart, _ := head.Times()
	if narrowStart.Before(headStart) {
		t.Fatalf("FCFS violated: narrow started %v before head %v", narrowStart, headStart)
	}
}

func TestAggressiveBackfillOvertakes(t *testing.T) {
	s := policySite(t, PolicyAggressive)
	hog := submitWide(t, s, "slow.gsh", 3, time.Minute)
	head := submitWide(t, s, "slow.gsh", 2, time.Minute)
	narrow := submitWide(t, s, "quick.gsh", 1, time.Minute)
	waitJob(t, narrow)
	if head.State() == Succeeded {
		t.Fatal("head finished before the backfilled narrow job")
	}
	_, narrowStart, _ := narrow.Times()
	if narrowStart.IsZero() {
		t.Fatal("narrow never started")
	}
	waitJob(t, hog)
	waitJob(t, head)
}

func TestConservativeBackfillAllowsHarmlessJobs(t *testing.T) {
	// Deterministic version on a manual clock: virtual time advances only
	// when the test says so, making the mid-flight assertions exact.
	clk := vtime.NewManual(time.Unix(0, 0))
	s := NewSite(SiteConfig{Name: "pol", Nodes: 1, CoresPerNode: 4, Policy: PolicyConservative}, clk)
	stage(t, s, "quick.gsh", "compute 100ms\n")
	stage(t, s, "slow.gsh", "compute 5s\n")

	// Hog: 3 slots, walltime 10s. Head: needs 4, reserved for t≈10s.
	hog := submitWide(t, s, "slow.gsh", 3, 10*time.Second)
	head := submitWide(t, s, "slow.gsh", 4, time.Minute)
	// Narrow short job (walltime 2s ≤ reservation at 10s): may backfill.
	harmless := submitWide(t, s, "quick.gsh", 1, 2*time.Second)
	// Narrow long job (walltime 1h > reservation): must NOT backfill.
	harmful := submitWide(t, s, "quick.gsh", 1, time.Hour)

	waitState := func(j *Job, want State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for j.State() != want {
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Before any time passes: hog and harmless run, head and harmful wait.
	waitState(hog, Running)
	waitState(harmless, Running)
	if head.State() != Queued || harmful.State() != Queued {
		t.Fatalf("states: head %s, harmful %s", head.State(), harmful.State())
	}

	clk.Advance(100 * time.Millisecond) // harmless completes
	waitState(harmless, Succeeded)
	// Dispatch ran on completion; the harmful candidate must still be
	// held behind the head's reservation despite free slots.
	if st := harmful.State(); st != Queued {
		t.Fatalf("harmful candidate state %s, want QUEUED", st)
	}

	clk.Advance(5 * time.Second) // hog completes; head (4 slots) starts
	waitState(hog, Succeeded)
	waitState(head, Running)
	clk.Advance(5 * time.Second) // head completes; harmful finally runs
	waitState(head, Succeeded)
	waitState(harmful, Running)
	clk.Advance(time.Second)
	waitState(harmful, Succeeded)

	_, harmfulStart, _ := harmful.Times()
	_, headStart, _ := head.Times()
	if harmfulStart.Before(headStart) {
		t.Fatal("harmful candidate overtook the reserved head")
	}
}

func TestConservativeHeadNotStarved(t *testing.T) {
	// Under aggressive backfill a stream of narrow jobs can starve a
	// wide head; conservative must start the head promptly once the
	// first hog finishes.
	clk := vtime.NewScaled(20000)
	s := NewSite(SiteConfig{Name: "st", Nodes: 1, CoresPerNode: 4, Policy: PolicyConservative}, clk)
	stage(t, s, "medium.gsh", "compute 2s\n")
	hog := submitWide(t, s, "medium.gsh", 4, 3*time.Second)
	head := submitWide(t, s, "medium.gsh", 4, time.Minute)
	// A stream of narrow jobs with walltimes longer than the reservation.
	var narrows []*Job
	for i := 0; i < 6; i++ {
		narrows = append(narrows, submitWide(t, s, "medium.gsh", 1, time.Hour))
	}
	waitJob(t, hog)
	waitJob(t, head)
	_, headStart, _ := head.Times()
	for _, n := range narrows {
		waitJob(t, n)
		_, ns, _ := n.Times()
		if ns.Before(headStart) {
			t.Fatalf("narrow job started %v before reserved head %v", ns, headStart)
		}
	}
}

func TestReservationComputation(t *testing.T) {
	clk := vtime.NewManual(time.Unix(0, 0))
	s := NewSite(SiteConfig{Name: "r", Nodes: 1, CoresPerNode: 4, Policy: PolicyConservative}, clk)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Empty site: reservation is immediate.
	if got := s.reservationLocked(4); !got.Equal(clk.Now()) {
		t.Fatalf("empty-site reservation %v", got)
	}
	// Two running jobs: 2 slots back at t=10, 1 at t=20; 1 slot free now.
	s.freeSlots = 1
	s.running["a"] = runInfo{cpus: 2, deadline: time.Unix(10, 0)}
	s.running["b"] = runInfo{cpus: 1, deadline: time.Unix(20, 0)}
	if got := s.reservationLocked(3); !got.Equal(time.Unix(10, 0)) {
		t.Fatalf("reservation for 3 = %v, want t=10", got)
	}
	if got := s.reservationLocked(4); !got.Equal(time.Unix(20, 0)) {
		t.Fatalf("reservation for 4 = %v, want t=20", got)
	}
	if got := s.reservationLocked(1); !got.Equal(clk.Now()) {
		t.Fatalf("reservation for 1 = %v, want now", got)
	}
}

func TestAllPoliciesConserveJobs(t *testing.T) {
	for _, p := range []Policy{PolicyAggressive, PolicyFCFS, PolicyConservative} {
		t.Run(p.String(), func(t *testing.T) {
			s := policySite(t, p)
			var jobs []*Job
			for i := 0; i < 16; i++ {
				cpus := 1 + i%3
				// Generous walltime: at 20000x dilation a minute of
				// virtual time is 3ms real, within scheduler jitter.
				jobs = append(jobs, submitWide(t, s, "quick.gsh", cpus, time.Hour))
			}
			for _, j := range jobs {
				waitJob(t, j)
				if j.State() != Succeeded {
					t.Fatalf("%s: job %s state %s", p, j.ID, j.State())
				}
			}
			stats := s.Stats()
			if stats.Completed != 16 || stats.FreeSlots != 4 {
				t.Fatalf("%s: stats %+v", p, stats)
			}
		})
	}
}
