package gridftp

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func digestOf(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestChunkedRoundTrip(t *testing.T) {
	f := newFixture(t)
	data := bytes.Repeat([]byte("chunked executable bytes "), 2000)
	stats, err := f.alice.PutChunked("exe.gsh", data, nil, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checksum != digestOf(data) {
		t.Fatalf("checksum %s", stats.Checksum)
	}
	if stats.Fallback || stats.Compressed || stats.Resumed {
		t.Fatalf("unexpected flags: %+v", stats)
	}
	if stats.ChunksShipped == 0 || stats.WireBytes != int64(len(data)) {
		t.Fatalf("shipped %d wire %d", stats.ChunksShipped, stats.WireBytes)
	}
	got, err := f.alice.Get("exe.gsh")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestChunkedGzipRoundTrip(t *testing.T) {
	f := newFixture(t)
	data := bytes.Repeat([]byte("very compressible line\n"), 5000)
	gz := gzipBytes(t, data)
	stats, err := f.alice.PutChunked("exe.gsh", data, gz, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Compressed {
		t.Fatal("gzip wire not negotiated")
	}
	if stats.WireBytes != int64(len(gz)) || stats.WireBytes >= stats.LogicalBytes {
		t.Fatalf("wire %d logical %d", stats.WireBytes, stats.LogicalBytes)
	}
	// The server stores the inflated file and confirms its checksum.
	if stats.Checksum != digestOf(data) {
		t.Fatalf("checksum %s", stats.Checksum)
	}
	got, err := f.alice.Get("exe.gsh")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestChunkPutIdempotent(t *testing.T) {
	f := newFixture(t)
	chunk := []byte("one chunk of wire bytes")
	d := digestOf(chunk)
	if err := f.alice.PutChunk(d, chunk); err != nil {
		t.Fatal(err)
	}
	if err := f.alice.PutChunk(d, chunk); err != nil {
		t.Fatalf("re-ship rejected: %v", err)
	}
	missing, err := f.alice.HaveChunks([]string{d})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("chunk reported missing: %v", missing)
	}
}

func TestChunkPutWrongDigestRejected(t *testing.T) {
	f := newFixture(t)
	chunk := []byte("chunk body")
	wrong := digestOf([]byte("other body"))
	if err := f.alice.PutChunk(wrong, chunk); !errors.Is(err, ErrBadInput) {
		t.Fatalf("got %v", err)
	}
	// The mismatched body must not have been stored under either digest.
	missing, err := f.alice.HaveChunks([]string{wrong, digestOf(chunk)})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 2 {
		t.Fatalf("stored a corrupt chunk: missing=%v", missing)
	}
}

func TestChunkPutEmptyRejected(t *testing.T) {
	f := newFixture(t)
	if err := f.alice.PutChunk(digestOf(nil), nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("got %v", err)
	}
}

func TestCommitMissingChunk(t *testing.T) {
	f := newFixture(t)
	data := []byte("never shipped")
	_, err := f.alice.Commit("f.gsh", "", digestOf(data), []string{digestOf(data)})
	if !errors.Is(err, ErrNoChunk) {
		t.Fatalf("got %v", err)
	}
}

func TestCommitWrongFileChecksum(t *testing.T) {
	f := newFixture(t)
	chunk := []byte("chunk")
	if err := f.alice.PutChunk(digestOf(chunk), chunk); err != nil {
		t.Fatal(err)
	}
	_, err := f.alice.Commit("f.gsh", "", digestOf([]byte("not the file")), []string{digestOf(chunk)})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("got %v", err)
	}
	if _, err := f.alice.Get("f.gsh"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("corrupt file registered: %v", err)
	}
}

func TestCommitBadGzipStream(t *testing.T) {
	f := newFixture(t)
	chunk := []byte("this is not a gzip stream")
	if err := f.alice.PutChunk(digestOf(chunk), chunk); err != nil {
		t.Fatal(err)
	}
	_, err := f.alice.Commit("f.gsh", "gzip", digestOf(chunk), []string{digestOf(chunk)})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("got %v", err)
	}
}

func TestCommitOversizeManifest(t *testing.T) {
	f := newFixture(t)
	chunks := make([]string, MaxManifestChunks+1)
	for i := range chunks {
		chunks[i] = digestOf([]byte{byte(i), byte(i >> 8)})
	}
	_, err := f.alice.Commit("f.gsh", "", chunks[0], chunks)
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("got %v", err)
	}
}

func TestManifestDuplicateRefs(t *testing.T) {
	f := newFixture(t)
	// A file of one block repeated: the manifest references the same
	// digest three times but only one chunk crosses the wire.
	block := bytes.Repeat([]byte("x"), 1024)
	data := bytes.Repeat(block, 3)
	stats, err := f.alice.PutChunked("rep.gsh", data, nil, len(block))
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChunksTotal != 3 || stats.ChunksShipped != 1 || stats.ChunksDeduped != 2 {
		t.Fatalf("total %d shipped %d deduped %d", stats.ChunksTotal, stats.ChunksShipped, stats.ChunksDeduped)
	}
	got, err := f.alice.Get("rep.gsh")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestChunkDedupAcrossOwners(t *testing.T) {
	f := newFixture(t)
	data := bytes.Repeat([]byte("shared content "), 4000)
	if _, err := f.alice.PutChunked("a.gsh", data, nil, 8<<10); err != nil {
		t.Fatal(err)
	}
	// Bob publishes the same bytes: the content-addressed store already
	// holds every chunk, so nothing ships — but the committed file is
	// bob's own, in his namespace.
	stats, err := f.bob.PutChunked("b.gsh", data, nil, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChunksShipped != 0 || stats.ChunksDeduped != stats.ChunksTotal {
		t.Fatalf("shipped %d deduped %d", stats.ChunksShipped, stats.ChunksDeduped)
	}
	got, err := f.bob.Get("b.gsh")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("bob's copy: %v", err)
	}
	if _, err := f.bob.Get("a.gsh"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("ownership leaked: %v", err)
	}
}

func TestChunkedResume(t *testing.T) {
	f := newFixture(t)
	data := bytes.Repeat([]byte("resumable payload bytes "), 4000)
	order, byDigest := cutChunks(data, 8<<10)
	// Simulate a transfer that died mid-flight: only the first half of
	// the chunks reached the server, nothing was committed.
	for _, d := range order[:len(order)/2] {
		if err := f.alice.PutChunk(d, byDigest[d]); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := f.alice.PutChunked("resume.gsh", data, nil, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Resumed {
		t.Fatal("retry did not detect committed chunks")
	}
	if stats.ChunksShipped >= stats.ChunksTotal {
		t.Fatalf("re-shipped everything: %+v", stats)
	}
	got, err := f.alice.Get("resume.gsh")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
}

// TestConcurrentPutChunkedSameName races a resumed transfer (half the
// chunks already at the site from a transfer that died) against a fresh
// upload of the same file: both must land, and the registered file must
// be intact whichever commit wins.
func TestConcurrentPutChunkedSameName(t *testing.T) {
	f := newFixture(t)
	data := bytes.Repeat([]byte("contended payload bytes "), 8000)
	order, byDigest := cutChunks(data, 8<<10)
	for _, d := range order[:len(order)/2] {
		if err := f.alice.PutChunk(d, byDigest[d]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.alice.PutChunked("contended.gsh", data, nil, 8<<10); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	got, err := f.alice.Get("contended.gsh")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("contended file corrupted: %v", err)
	}
}

// stockServer mimics a server predating the chunk protocol: every /ftp/
// path is parsed as a file name, and the "/" inside the chunk paths makes
// them bad file names (400) — the downgrade signal PutChunked relies on.
func stockServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/ftp/")
		if strings.Contains(name, "/") {
			httpError(w, http.StatusBadRequest, "gridftp: bad file name")
			return
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)
	return hs
}

func TestChunkedFallbackToStockServer(t *testing.T) {
	f := newFixture(t)
	hs := stockServer(t, f.srv)
	old := &Client{BaseURL: hs.URL, Cred: f.alice.Cred}
	data := bytes.Repeat([]byte("payload for an old site "), 2000)
	stats, err := old.PutChunked("exe.gsh", data, gzipBytes(t, data), 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Fallback {
		t.Fatal("fallback not reported")
	}
	if stats.Checksum != digestOf(data) {
		t.Fatalf("checksum %s", stats.Checksum)
	}
	got, err := old.Get("exe.gsh")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestChunkStoreEviction(t *testing.T) {
	cs := newChunkStore(100)
	a, b, c := bytes.Repeat([]byte("a"), 60), bytes.Repeat([]byte("b"), 60), bytes.Repeat([]byte("c"), 60)
	cs.put(digestOf(a), a)
	cs.put(digestOf(b), b) // over cap: a evicted
	if cs.has(digestOf(a)) {
		t.Fatal("oldest chunk not evicted")
	}
	if !cs.has(digestOf(b)) {
		t.Fatal("newest chunk evicted")
	}
	cs.put(digestOf(c), c)
	if cs.has(digestOf(b)) || !cs.has(digestOf(c)) {
		t.Fatal("FIFO order violated")
	}
}

func TestChunkEndpointsRequireAuth(t *testing.T) {
	f := newFixture(t)
	chunk := []byte("chunk")
	probe, _ := json.Marshal(haveRequest{Digests: []string{digestOf(chunk)}})
	manifest, _ := json.Marshal(chunkManifest{Name: "f", FileSha256: digestOf(chunk), Chunks: []string{digestOf(chunk)}})
	for _, c := range []struct {
		method, path string
		body         []byte
	}{
		{http.MethodPost, "/ftp/chunks/have", probe},
		{http.MethodPut, "/ftp/chunk/" + digestOf(chunk), chunk},
		{http.MethodPost, "/ftp/commit", manifest},
	} {
		req, _ := http.NewRequest(c.method, f.url+c.path, bytes.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s: status %d", c.method, c.path, resp.StatusCode)
		}
	}
}

// FuzzFtpPath drives the server's raw routing with arbitrary methods and
// paths: nothing may panic, and unauthenticated requests must never
// succeed.
func FuzzFtpPath(f *testing.F) {
	fx := newFixture(f)
	f.Add("GET", "/ftp/exe.gsh")
	f.Add("PUT", "/ftp/chunk/"+strings.Repeat("a", 64))
	f.Add("PUT", "/ftp/chunk/../../etc/passwd")
	f.Add("POST", "/ftp/chunks/have")
	f.Add("POST", "/ftp/commit")
	f.Add("DELETE", "/ftp/")
	f.Add("PATCH", "/ftp/chunk/zz")
	f.Fuzz(func(t *testing.T, method, path string) {
		req := httptest.NewRequest("GET", "http://site/", nil)
		req.Method = method
		req.URL.Path = path
		w := httptest.NewRecorder()
		fx.srv.ServeHTTP(w, req)
		if w.Code < 400 {
			t.Fatalf("%s %q: unauthenticated request answered %d", method, path, w.Code)
		}
	})
}

// FuzzChunkManifest drives the commit and have-probe decoders with
// arbitrary JSON: they must never panic, and whatever they accept must
// satisfy the documented invariants.
func FuzzChunkManifest(f *testing.F) {
	good, _ := json.Marshal(chunkManifest{
		Name: "f.gsh", Encoding: "gzip",
		FileSha256: strings.Repeat("0", 64),
		Chunks:     []string{strings.Repeat("a", 64), strings.Repeat("a", 64)},
	})
	f.Add(good)
	f.Add([]byte(`{"name":"f","file_sha256":"XYZ","chunks":["nothex"]}`))
	f.Add([]byte(`{"name":"a/b","file_sha256":"` + strings.Repeat("0", 64) + `","chunks":[]}`))
	f.Add([]byte(`{"digests":["` + strings.Repeat("f", 64) + `"]}`))
	f.Add([]byte(`{"chunks":` + strings.Repeat("[", 100) + strings.Repeat("]", 100) + `}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, body []byte) {
		if m, err := parseManifest(body); err == nil {
			if m.Name == "" || strings.Contains(m.Name, "/") {
				t.Fatalf("accepted bad name %q", m.Name)
			}
			if m.Encoding != "" && m.Encoding != "gzip" {
				t.Fatalf("accepted encoding %q", m.Encoding)
			}
			if !validDigest(m.FileSha256) {
				t.Fatalf("accepted checksum %q", m.FileSha256)
			}
			if len(m.Chunks) == 0 || len(m.Chunks) > MaxManifestChunks {
				t.Fatalf("accepted %d chunks", len(m.Chunks))
			}
			for _, d := range m.Chunks {
				if !validDigest(d) {
					t.Fatalf("accepted chunk digest %q", d)
				}
			}
		}
		if req, err := parseHaveRequest(body); err == nil {
			if len(req.Digests) == 0 || len(req.Digests) > MaxManifestChunks {
				t.Fatalf("accepted %d digests", len(req.Digests))
			}
			for _, d := range req.Digests {
				if !validDigest(d) {
					t.Fatalf("accepted digest %q", d)
				}
			}
		}
	})
}
