package gridftp

import (
	"fmt"
	"testing"
)

func BenchmarkPut(b *testing.B) {
	f := newFixture(b)
	for _, size := range []int{4 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			data := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.alice.Put("bench.bin", data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGet(b *testing.B) {
	f := newFixture(b)
	data := make([]byte, 256<<10)
	if _, err := f.alice.Put("bench.bin", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.alice.Get("bench.bin"); err != nil {
			b.Fatal(err)
		}
	}
}
