package gridftp

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/gridsim"
	"repro/internal/vtime"
	"repro/internal/xsec"
)

// twoSites builds two GridFTP servers sharing one CA, with clients for
// alice against each.
func twoSites(t *testing.T) (srcClient, dstClient *Client, srcStore, dstStore *gridsim.Store) {
	t.Helper()
	now := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	ca, err := xsec.NewCA("FTPCA", now, 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := ca.IssueUser("alice", now, 365*24*time.Hour)
	trust := xsec.NewTrustStore(ca.Cert)
	clk := vtime.NewManual(now.Add(time.Hour))

	srcStore = gridsim.NewStore()
	dstStore = gridsim.NewStore()
	srcSrv := httptest.NewServer(NewServer(srcStore, trust, clk, nil))
	dstSrv := httptest.NewServer(NewServer(dstStore, trust, clk, nil))
	t.Cleanup(srcSrv.Close)
	t.Cleanup(dstSrv.Close)
	return &Client{BaseURL: srcSrv.URL, Cred: alice},
		&Client{BaseURL: dstSrv.URL, Cred: alice},
		srcStore, dstStore
}

func TestThirdPartyTransfer(t *testing.T) {
	src, dst, _, dstStore := twoSites(t)
	payload := bytes.Repeat([]byte("replicate me "), 1000)
	want, err := src.Put("data.gsh", payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.FetchFrom(src.BaseURL, "data.gsh")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("checksum %s, want %s", got, want)
	}
	// The destination store holds the bytes under alice's identity.
	stored, err := dstStore.Get(dst.Cred.Subject(), "data.gsh")
	if err != nil || !bytes.Equal(stored, payload) {
		t.Fatalf("destination copy wrong: %v", err)
	}
	// And the destination client can read it back through the protocol.
	back, err := dst.Get("data.gsh")
	if err != nil || !bytes.Equal(back, payload) {
		t.Fatalf("read-back wrong: %v", err)
	}
}

func TestThirdPartyTransferMissingSource(t *testing.T) {
	src, dst, _, _ := twoSites(t)
	if _, err := dst.FetchFrom(src.BaseURL, "ghost.gsh"); err == nil {
		t.Fatal("fetch of missing file succeeded")
	}
}

func TestThirdPartyTransferRequiresAuth(t *testing.T) {
	src, dst, _, _ := twoSites(t)
	src.Put("f.gsh", []byte("x"))
	// Forge a fetch with a token signed for a different source URL: the
	// destination must reject it.
	srcToken, _ := dst.sign(http.MethodGet, "f.gsh", "")
	fetchToken, _ := dst.sign("FETCH", "f.gsh", "http://evil.example")
	body := []byte(`{"source_url":"` + src.BaseURL + `","name":"f.gsh","source_token":"` + srcToken + `"}`)
	req, _ := http.NewRequest(http.MethodPost, dst.BaseURL+"/ftp-fetch", bytes.NewReader(body))
	req.Header.Set(TokenHeader, fetchToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status %d, want 403", resp.StatusCode)
	}
}

func TestThirdPartyTransferCapabilityIsScoped(t *testing.T) {
	// A capability signed for one file must not fetch another.
	src, dst, _, _ := twoSites(t)
	src.Put("public.gsh", []byte("ok"))
	src.Put("secret.gsh", []byte("no"))
	wrongCap, _ := dst.sign(http.MethodGet, "public.gsh", "")
	fetchToken, _ := dst.sign("FETCH", "secret.gsh", src.BaseURL)
	body := []byte(`{"source_url":"` + src.BaseURL + `","name":"secret.gsh","source_token":"` + wrongCap + `"}`)
	req, _ := http.NewRequest(http.MethodPost, dst.BaseURL+"/ftp-fetch", bytes.NewReader(body))
	req.Header.Set(TokenHeader, fetchToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The source rejects the mis-scoped capability, surfacing as a bad
	// gateway at the destination.
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if _, err := dst.Get("secret.gsh"); !errors.Is(err, ErrNoFile) {
		t.Fatal("secret file leaked to destination")
	}
}

// countingTransport counts round-trips before delegating to the default
// transport.
type countingTransport struct{ calls int }

func (ct *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	ct.calls++
	return http.DefaultTransport.RoundTrip(r)
}

func TestFetchUsesInjectedHTTPClient(t *testing.T) {
	// The destination server's source-side pull must go through the
	// injected client (the rig routes it through the shaped WAN), not
	// http.DefaultClient.
	now := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	ca, err := xsec.NewCA("FTPCA", now, 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := ca.IssueUser("alice", now, 365*24*time.Hour)
	trust := xsec.NewTrustStore(ca.Cert)
	clk := vtime.NewManual(now.Add(time.Hour))
	ct := &countingTransport{}
	srcStore, dstStore := gridsim.NewStore(), gridsim.NewStore()
	srcSrv := httptest.NewServer(NewServer(srcStore, trust, clk, nil))
	dstSrv := httptest.NewServer(NewServer(dstStore, trust, clk, &http.Client{Transport: ct}))
	t.Cleanup(srcSrv.Close)
	t.Cleanup(dstSrv.Close)
	src := &Client{BaseURL: srcSrv.URL, Cred: alice}
	dst := &Client{BaseURL: dstSrv.URL, Cred: alice}
	if _, err := src.Put("data.gsh", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.FetchFrom(src.BaseURL, "data.gsh"); err != nil {
		t.Fatal(err)
	}
	if ct.calls != 1 {
		t.Fatalf("injected client saw %d calls, want 1", ct.calls)
	}
}

func TestFetchRejectsBadFields(t *testing.T) {
	_, dst, _, _ := twoSites(t)
	fetchToken, _ := dst.sign("FETCH", "f", "u")
	for _, body := range []string{
		"{",
		`{"source_url":"","name":"f","source_token":"x"}`,
		`{"source_url":"http://h","name":"a/b","source_token":"x"}`,
	} {
		req, _ := http.NewRequest(http.MethodPost, dst.BaseURL+"/ftp-fetch", bytes.NewReader([]byte(body)))
		req.Header.Set(TokenHeader, fetchToken)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d", body, resp.StatusCode)
		}
	}
}
