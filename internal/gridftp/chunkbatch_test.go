package gridftp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestHaveChunksBatchesLargeProbes: a probe for more digests than one
// have-request may carry splits into MaxManifestChunks-sized batches and
// merges the missing lists.
func TestHaveChunksBatchesLargeProbes(t *testing.T) {
	f := newFixture(t)
	var probes atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/ftp/chunks/have" {
			probes.Add(1)
		}
		f.srv.ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)
	c := &Client{BaseURL: hs.URL, Cred: f.alice.Cred}

	// Seed one real chunk so the merge has something to subtract.
	known := bytes.Repeat([]byte("known chunk "), 100)
	if _, err := c.PutChunked("seed.gsh", known, nil, 0); err != nil {
		t.Fatal(err)
	}
	probes.Store(0)

	digests := []string{digestOf(known)}
	for i := 0; i < MaxManifestChunks; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("fake-%d", i)))
		digests = append(digests, hex.EncodeToString(sum[:]))
	}
	missing, err := c.HaveChunks(digests)
	if err != nil {
		t.Fatal(err)
	}
	if got := probes.Load(); got != 2 {
		t.Fatalf("%d digests probed in %d requests, want 2", len(digests), got)
	}
	if len(missing) != MaxManifestChunks {
		t.Fatalf("missing %d digests, want %d", len(missing), MaxManifestChunks)
	}
	for _, d := range missing {
		if d == digestOf(known) {
			t.Fatal("present chunk reported missing")
		}
	}
}

func TestWireChunks(t *testing.T) {
	wire := bytes.Repeat([]byte("abcdefgh"), 3000) // 24000 bytes
	digests, sizes := WireChunks(wire, 8<<10)
	if len(digests) == 0 {
		t.Fatal("no digests")
	}
	// Digests are unique and sorted; sizes cover every digest.
	var total int
	for i, d := range digests {
		if i > 0 && digests[i-1] >= d {
			t.Fatalf("digests not sorted unique at %d: %q >= %q", i, digests[i-1], d)
		}
		sz, ok := sizes[d]
		if !ok || sz <= 0 {
			t.Fatalf("digest %q has size %d", d, sz)
		}
		total += sz
	}
	// The repeated content dedupes intra-file: unique chunk bytes cannot
	// exceed the wire, and here the 8 KiB chunks repeat exactly.
	if total > len(wire) {
		t.Fatalf("unique chunk bytes %d exceed wire %d", total, len(wire))
	}
	if len(digests) != 2 { // 2 distinct 8 KiB patterns: repeats + 8000-byte tail
		t.Fatalf("expected heavy intra-file dedup, got %d unique chunks", len(digests))
	}
	if d, s := WireChunks(nil, 0); d != nil || s != nil {
		t.Fatalf("empty wire chunked: %v %v", d, s)
	}
}
