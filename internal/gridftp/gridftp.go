// Package gridftp implements the staging service of the reproduction's
// Grid layer: the paper's executables are "uploaded to the Grid by using
// the functions provided by the Cyberaide agent" over GridFTP-class
// transfers, and the transfer time over the WAN link is the dominant cost
// of Fig. 7 ("It takes about 60 seconds to upload the file to the Grid
// node. The transfer rate is almost constant all the time at about 80 to
// 90 KB/s").
//
// The protocol is HTTP: PUT/GET/DELETE under /ftp/, authenticated with
// xsec signed tokens and integrity-checked with SHA-256 trailers. Each
// server fronts one site's staging store.
package gridftp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/gridsim"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/xsec"
)

// Headers.
const (
	// TokenHeader carries the signed authentication token.
	TokenHeader = "X-Grid-Token"
	// ChecksumHeader carries the hex SHA-256 of the payload.
	ChecksumHeader = "X-Content-Sha256"
)

// MaxFileBytes bounds one staged file (matches the store's limit).
const MaxFileBytes = 256 << 20

// Errors.
var (
	ErrDenied   = errors.New("gridftp: authentication failed")
	ErrChecksum = errors.New("gridftp: checksum mismatch")
	ErrNoFile   = errors.New("gridftp: no such file")
	ErrBadInput = errors.New("gridftp: malformed request")
	// ErrNoChunk flags a commit referencing a chunk the server no longer
	// holds (evicted or never shipped); the client re-probes and re-ships.
	ErrNoChunk = errors.New("gridftp: missing chunk")
)

// Server fronts one site's staging store.
type Server struct {
	store *gridsim.Store
	trust *xsec.TrustStore
	clock vtime.Clock
	// http carries outbound third-party transfers (fetch); nil means
	// http.DefaultClient.
	http *http.Client
	// chunks is the content-addressed store behind the chunked-transfer
	// endpoints (see chunks.go).
	chunks *chunkStore
	// tracer/site enable per-request spans (nil tracer = off).
	tracer *trace.Tracer
	site   string
}

// SetTracer enables request tracing: every request arriving with a valid
// X-Grid-Trace context records one span named after its route (ftp.put,
// ftp.get, ftp.chunk.put, ...) tagged with the given site name and byte
// counts. Call before serving; a nil tracer keeps tracing off.
func (s *Server) SetTracer(t *trace.Tracer, site string) {
	s.tracer = t
	s.site = site
}

// NewServer builds a staging server for store. httpClient carries the
// server's own outbound traffic — the source-side pulls of third-party
// transfers — so rigs can route it through a shaped transport; nil means
// http.DefaultClient.
func NewServer(store *gridsim.Store, trust *xsec.TrustStore, clock vtime.Clock, httpClient *http.Client) *Server {
	if clock == nil {
		clock = vtime.Real{}
	}
	return &Server{
		store:  store,
		trust:  trust,
		clock:  clock,
		http:   httpClient,
		chunks: newChunkStore(defaultChunkStoreBytes),
	}
}

func (s *Server) httpClient() *http.Client {
	if s.http == nil {
		return http.DefaultClient
	}
	return s.http
}

// signPayload is the byte string both sides sign for a request: it binds
// method, file name, and content hash so tokens cannot be replayed
// against other files or operations.
func signPayload(method, name, checksum string) []byte {
	return []byte(method + "\n" + name + "\n" + checksum)
}

func (s *Server) authenticate(r *http.Request, msg []byte) (string, error) {
	tok := r.Header.Get(TokenHeader)
	if tok == "" {
		return "", fmt.Errorf("%w: missing %s", ErrDenied, TokenHeader)
	}
	signed, err := xsec.DecodeSigned(tok)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrDenied, err)
	}
	id, err := s.trust.Verify(msg, signed, s.clock.Now())
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrDenied, err)
	}
	return id, nil
}

// ServeHTTP handles /ftp/<name> plus /ftp-list and /ftp-fetch.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		s.serve(w, r)
		return
	}
	// The trace header is decoded before authentication; malformed or
	// absent headers degrade to "untraced", never to a rejection, and
	// requests without a valid caller context record no span (the server
	// does not mint orphan roots for untraced traffic).
	tc, ok := trace.Parse(r.Header.Get(trace.Header))
	if !ok {
		s.serve(w, r)
		return
	}
	sp := s.tracer.StartSpan(opName(r), tc)
	sp.Set("site", s.site)
	// Swap in this span's own context so outbound legs of the request —
	// the source-side GET of a third-party fetch — parent under it.
	r.Header.Set(trace.Header, sp.Context().String())
	cw := &countingWriter{ResponseWriter: w}
	s.serve(cw, r)
	if r.ContentLength > 0 {
		sp.SetInt("bytes_in", r.ContentLength)
	}
	sp.SetInt("bytes_out", cw.bytes)
	if cw.status >= 400 {
		sp.Error(fmt.Sprintf("http %d", cw.status))
	}
	sp.End()
}

// opName maps a request to its span name.
func opName(r *http.Request) string {
	switch {
	case r.URL.Path == "/ftp-list":
		return "ftp.list"
	case r.URL.Path == "/ftp-fetch":
		return "ftp.fetch"
	case r.URL.Path == "/ftp/chunks/have":
		return "ftp.chunks.have"
	case strings.HasPrefix(r.URL.Path, "/ftp/chunk/"):
		return "ftp.chunk.put"
	case r.URL.Path == "/ftp/commit":
		return "ftp.commit"
	case r.Method == http.MethodPut:
		return "ftp.put"
	case r.Method == http.MethodDelete:
		return "ftp.delete"
	default:
		return "ftp.get"
	}
}

// countingWriter captures the status code and payload size for the span.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *countingWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *countingWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (s *Server) serve(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/ftp-list" && r.Method == http.MethodGet {
		s.list(w, r)
		return
	}
	if r.URL.Path == "/ftp-fetch" && r.Method == http.MethodPost {
		s.fetch(w, r)
		return
	}
	// Chunked-transfer endpoints live under /ftp/ but contain "/" in the
	// trailing component, so stock servers reject them with 400 — that is
	// the downgrade signal clients use to fall back to a plain PUT. They
	// must therefore be routed before the generic /ftp/<name> parse.
	if r.URL.Path == "/ftp/chunks/have" && r.Method == http.MethodPost {
		s.haveChunks(w, r)
		return
	}
	if digest, ok := strings.CutPrefix(r.URL.Path, "/ftp/chunk/"); ok && r.Method == http.MethodPut {
		s.putChunk(w, r, digest)
		return
	}
	if r.URL.Path == "/ftp/commit" && r.Method == http.MethodPost {
		s.commit(w, r)
		return
	}
	if !strings.HasPrefix(r.URL.Path, "/ftp/") {
		httpError(w, http.StatusNotFound, "gridftp: unknown endpoint")
		return
	}
	name, err := url.PathUnescape(strings.TrimPrefix(r.URL.Path, "/ftp/"))
	if err != nil || name == "" || strings.Contains(name, "/") {
		httpError(w, http.StatusBadRequest, ErrBadInput.Error()+": bad file name")
		return
	}
	switch r.Method {
	case http.MethodPut:
		s.put(w, r, name)
	case http.MethodGet:
		s.get(w, r, name)
	case http.MethodDelete:
		s.delete(w, r, name)
	default:
		httpError(w, http.StatusMethodNotAllowed, "gridftp: method not allowed")
	}
}

func (s *Server) put(w http.ResponseWriter, r *http.Request, name string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxFileBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "gridftp: read body: "+err.Error())
		return
	}
	if len(body) > MaxFileBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "gridftp: file too large")
		return
	}
	sum := sha256.Sum256(body)
	checksum := hex.EncodeToString(sum[:])
	if want := r.Header.Get(ChecksumHeader); want != checksum {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("%v: got %s want %s", ErrChecksum, checksum, want))
		return
	}
	id, err := s.authenticate(r, signPayload(http.MethodPut, name, checksum))
	if err != nil {
		httpError(w, http.StatusForbidden, err.Error())
		return
	}
	if err := s.store.Put(id, name, body); err != nil {
		httpError(w, http.StatusInsufficientStorage, err.Error())
		return
	}
	w.Header().Set(ChecksumHeader, checksum)
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) get(w http.ResponseWriter, r *http.Request, name string) {
	id, err := s.authenticate(r, signPayload(http.MethodGet, name, ""))
	if err != nil {
		httpError(w, http.StatusForbidden, err.Error())
		return
	}
	data, err := s.store.Get(id, name)
	if err != nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("%v: %s", ErrNoFile, name))
		return
	}
	sum := sha256.Sum256(data)
	w.Header().Set(ChecksumHeader, hex.EncodeToString(sum[:]))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (s *Server) delete(w http.ResponseWriter, r *http.Request, name string) {
	id, err := s.authenticate(r, signPayload(http.MethodDelete, name, ""))
	if err != nil {
		httpError(w, http.StatusForbidden, err.Error())
		return
	}
	if err := s.store.Delete(id, name); err != nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("%v: %s", ErrNoFile, name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// fetchRequest asks this server to pull a file from another GridFTP
// server — the third-party transfer of real GridFTP. The requester signs
// the fetch itself and encloses a pre-signed GET capability for the
// source, so neither server ever holds the user's key.
type fetchRequest struct {
	SourceURL   string `json:"source_url"`   // source server root
	Name        string `json:"name"`         // file name at source and destination
	SourceToken string `json:"source_token"` // pre-signed GET token for the source
}

// fetch pulls name from another site's server and stores it locally
// under the authenticated identity.
func (s *Server) fetch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<10))
	if err != nil {
		httpError(w, http.StatusBadRequest, "gridftp: read fetch request: "+err.Error())
		return
	}
	var req fetchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, ErrBadInput.Error()+": "+err.Error())
		return
	}
	if req.Name == "" || strings.Contains(req.Name, "/") || req.SourceURL == "" {
		httpError(w, http.StatusBadRequest, ErrBadInput.Error()+": bad fetch fields")
		return
	}
	id, err := s.authenticate(r, signPayload("FETCH", req.Name, req.SourceURL))
	if err != nil {
		httpError(w, http.StatusForbidden, err.Error())
		return
	}
	// Pull from the source with the enclosed capability.
	getReq, err := http.NewRequest(http.MethodGet, req.SourceURL+"/ftp/"+url.PathEscape(req.Name), nil)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	getReq.Header.Set(TokenHeader, req.SourceToken)
	if tc := r.Header.Get(trace.Header); tc != "" {
		getReq.Header.Set(trace.Header, tc)
	}
	resp, err := s.httpClient().Do(getReq)
	if err != nil {
		httpError(w, http.StatusBadGateway, "gridftp: fetch from source: "+err.Error())
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		srcBody, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		httpError(w, http.StatusBadGateway,
			fmt.Sprintf("gridftp: source answered %d: %s", resp.StatusCode, srcBody))
		return
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxFileBytes+1))
	if err != nil {
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	if len(data) > MaxFileBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "gridftp: fetched file too large")
		return
	}
	sum := sha256.Sum256(data)
	checksum := hex.EncodeToString(sum[:])
	if want := resp.Header.Get(ChecksumHeader); want != "" && want != checksum {
		httpError(w, http.StatusBadGateway, ErrChecksum.Error()+": source payload damaged")
		return
	}
	if err := s.store.Put(id, req.Name, data); err != nil {
		httpError(w, http.StatusInsufficientStorage, err.Error())
		return
	}
	w.Header().Set(ChecksumHeader, checksum)
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	id, err := s.authenticate(r, signPayload(http.MethodGet, "/ftp-list", ""))
	if err != nil {
		httpError(w, http.StatusForbidden, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.store.List(id))
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// Client stages files to and from one site's GridFTP server.
type Client struct {
	// BaseURL is the server root, e.g. "http://site-host:2811".
	BaseURL string
	// Cred signs every request; the authenticated identity owns the files.
	Cred *xsec.Credential
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
	// Trace, when non-empty, rides every request as the X-Grid-Trace
	// header so the server parents its spans under the caller's.
	Trace string
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP == nil {
		return http.DefaultClient
	}
	return c.HTTP
}

// setTrace stamps the propagation header on an outgoing request.
func (c *Client) setTrace(req *http.Request) {
	if c.Trace != "" {
		req.Header.Set(trace.Header, c.Trace)
	}
}

func (c *Client) sign(method, name, checksum string) (string, error) {
	tok, err := c.Cred.Sign(signPayload(method, name, checksum))
	if err != nil {
		return "", err
	}
	return xsec.EncodeSigned(tok)
}

// Put uploads data as name, returning the server-confirmed checksum.
func (c *Client) Put(name string, data []byte) (string, error) {
	sum := sha256.Sum256(data)
	checksum := hex.EncodeToString(sum[:])
	tok, err := c.sign(http.MethodPut, name, checksum)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequest(http.MethodPut, c.fileURL(name), bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	req.Header.Set(TokenHeader, tok)
	c.setTrace(req)
	req.Header.Set(ChecksumHeader, checksum)
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("gridftp: put %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", readError(resp)
	}
	if got := resp.Header.Get(ChecksumHeader); got != checksum {
		return "", fmt.Errorf("%w: server stored %s, sent %s", ErrChecksum, got, checksum)
	}
	return checksum, nil
}

// Get downloads name, verifying the checksum trailer.
func (c *Client) Get(name string) ([]byte, error) {
	tok, err := c.sign(http.MethodGet, name, "")
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodGet, c.fileURL(name), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(TokenHeader, tok)
	c.setTrace(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("gridftp: get %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxFileBytes+1))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	if want := resp.Header.Get(ChecksumHeader); want != hex.EncodeToString(sum[:]) {
		return nil, fmt.Errorf("%w: payload damaged in transit", ErrChecksum)
	}
	return data, nil
}

// Delete removes name.
func (c *Client) Delete(name string) error {
	tok, err := c.sign(http.MethodDelete, name, "")
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodDelete, c.fileURL(name), nil)
	if err != nil {
		return err
	}
	req.Header.Set(TokenHeader, tok)
	c.setTrace(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("gridftp: delete %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return readError(resp)
	}
	return nil
}

// FetchFrom asks this client's server (the destination) to pull name
// directly from sourceURL — a third-party transfer. The caller's
// credential signs both the fetch order and the GET capability the
// destination presents to the source; the transfer itself flows
// site-to-site without touching the client's network path.
func (c *Client) FetchFrom(sourceURL, name string) (string, error) {
	srcToken, err := c.sign(http.MethodGet, name, "")
	if err != nil {
		return "", err
	}
	fetchToken, err := c.sign("FETCH", name, sourceURL)
	if err != nil {
		return "", err
	}
	body, err := json.Marshal(fetchRequest{
		SourceURL:   sourceURL,
		Name:        name,
		SourceToken: srcToken,
	})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/ftp-fetch", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set(TokenHeader, fetchToken)
	c.setTrace(req)
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("gridftp: fetch %s from %s: %w", name, sourceURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", readError(resp)
	}
	return resp.Header.Get(ChecksumHeader), nil
}

// List returns the caller's staged file names.
func (c *Client) List() ([]string, error) {
	tok, err := c.sign(http.MethodGet, "/ftp-list", "")
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/ftp-list", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(TokenHeader, tok)
	c.setTrace(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("gridftp: list: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, err
	}
	return names, nil
}

func (c *Client) fileURL(name string) string {
	return c.BaseURL + "/ftp/" + url.PathEscape(name)
}

func readError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var er struct {
		Error string `json:"error"`
	}
	msg := string(body)
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		msg = er.Error
	}
	var sentinel error
	switch resp.StatusCode {
	case http.StatusForbidden:
		sentinel = ErrDenied
	case http.StatusNotFound:
		sentinel = ErrNoFile
	case http.StatusConflict:
		sentinel = ErrNoChunk
	default:
		sentinel = ErrBadInput
	}
	return fmt.Errorf("%w: http %d: %s", sentinel, resp.StatusCode, msg)
}
