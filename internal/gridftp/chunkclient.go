package gridftp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
)

// putChunkWorkers bounds the PUT pipeline of one chunked upload. The
// shaped netsim link serialises bytes FIFO, so the workers overlap
// request setup and round-trip latency, not bandwidth.
const putChunkWorkers = 4

// ChunkedPutStats describes what one PutChunked actually shipped.
type ChunkedPutStats struct {
	// ChunksTotal counts manifest entries (occurrences, not unique).
	ChunksTotal int
	// ChunksShipped counts unique chunks that crossed the wire.
	ChunksShipped int
	// ChunksDeduped counts manifest entries satisfied without a
	// transfer: already on the server (prior version, resumed upload,
	// another owner) or repeated within this file.
	ChunksDeduped int
	// WireBytes is what crossed the WAN; LogicalBytes the file size.
	WireBytes    int64
	LogicalBytes int64
	// Compressed reports whether the wire carried the gzip stream.
	Compressed bool
	// Resumed reports whether the server already held at least one of
	// this manifest's chunks before the upload.
	Resumed bool
	// Fallback reports that the server does not speak the chunk
	// protocol and the transfer downgraded to a plain PUT.
	Fallback bool
	// Checksum is the server-confirmed whole-file SHA-256.
	Checksum string
}

// HaveChunks asks the server which of digests it is missing — the
// dedup/resume probe, reused by data-aware placement as a possession
// oracle. Probes larger than one manifest's worth of digests are split
// into MaxManifestChunks-sized batches transparently; the merged
// missing list covers every batch.
func (c *Client) HaveChunks(digests []string) ([]string, error) {
	if len(digests) <= MaxManifestChunks {
		return c.haveChunksOne(digests)
	}
	var missing []string
	for off := 0; off < len(digests); off += MaxManifestChunks {
		end := off + MaxManifestChunks
		if end > len(digests) {
			end = len(digests)
		}
		m, err := c.haveChunksOne(digests[off:end])
		if err != nil {
			return nil, err
		}
		missing = append(missing, m...)
	}
	return missing, nil
}

// haveChunksOne issues one probe request (≤ MaxManifestChunks digests).
func (c *Client) haveChunksOne(digests []string) ([]string, error) {
	body, err := json.Marshal(haveRequest{Digests: digests})
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(body)
	tok, err := c.sign("CHUNK-HAVE", "", hex.EncodeToString(sum[:]))
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/ftp/chunks/have", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set(TokenHeader, tok)
	c.setTrace(req)
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("gridftp: chunks/have: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	var reply haveReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&reply); err != nil {
		return nil, err
	}
	return reply.Missing, nil
}

// PutChunk ships one wire chunk under its digest.
func (c *Client) PutChunk(digest string, chunk []byte) error {
	tok, err := c.sign("CHUNK-PUT", digest, "")
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, c.BaseURL+"/ftp/chunk/"+digest, bytes.NewReader(chunk))
	if err != nil {
		return err
	}
	req.Header.Set(TokenHeader, tok)
	c.setTrace(req)
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("gridftp: put chunk %s: %w", digest[:12], err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return readError(resp)
	}
	return nil
}

// Commit asks the server to assemble the manifest into name, verify
// fileSha256 and register the file. It returns the confirmed checksum.
func (c *Client) Commit(name, encoding, fileSha256 string, chunks []string) (string, error) {
	body, err := json.Marshal(chunkManifest{
		Name:       name,
		Encoding:   encoding,
		FileSha256: fileSha256,
		Chunks:     chunks,
	})
	if err != nil {
		return "", err
	}
	tok, err := c.sign("CHUNK-COMMIT", name, fileSha256)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/ftp/commit", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set(TokenHeader, tok)
	c.setTrace(req)
	req.Header.Set("Content-Type", "application/json")
	if encoding != "" {
		req.Header.Set(EncodingHeader, encoding)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("gridftp: commit %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", readError(resp)
	}
	return resp.Header.Get(ChecksumHeader), nil
}

// cutChunks splits wire into chunkBytes pieces and returns the ordered
// digest list plus a digest->chunk map (duplicates collapse).
func cutChunks(wire []byte, chunkBytes int) (order []string, byDigest map[string][]byte) {
	byDigest = make(map[string][]byte)
	for off := 0; off < len(wire); off += chunkBytes {
		end := off + chunkBytes
		if end > len(wire) {
			end = len(wire)
		}
		piece := wire[off:end]
		sum := sha256.Sum256(piece)
		d := hex.EncodeToString(sum[:])
		order = append(order, d)
		byDigest[d] = piece
	}
	return order, byDigest
}

// WireChunks summarises how data would chunk on the wire: the unique
// digest set plus each digest's chunk size. It is the read-only half of
// PutChunked's cut, exported so placement can ask a site "which of
// these would you still need?" without preparing an upload.
func WireChunks(wire []byte, chunkBytes int) (digests []string, sizes map[string]int) {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if chunkBytes > MaxChunkBytes {
		chunkBytes = MaxChunkBytes
	}
	if len(wire) == 0 {
		return nil, nil
	}
	_, byDigest := cutChunks(wire, chunkBytes)
	digests = make([]string, 0, len(byDigest))
	sizes = make(map[string]int, len(byDigest))
	for d, chunk := range byDigest {
		digests = append(digests, d)
		sizes[d] = len(chunk)
	}
	sort.Strings(digests)
	return digests, sizes
}

// PutChunked uploads data as name via the chunk protocol: probe the
// server for chunks it already holds, ship only the missing ones
// (pipelined), then commit the manifest. When gz (the gzip encoding of
// data) is non-nil and smaller, the wire carries the compressed stream
// and the server inflates at commit. Against a server that does not
// speak the chunk protocol the transfer falls back to a plain PUT.
//
// A transfer killed mid-flight resumes on retry: chunks that reached the
// server stay in its content-addressed store, so the probe reports them
// present and only the remainder is re-shipped — the restart-marker
// behaviour of real GridFTP.
func (c *Client) PutChunked(name string, data, gz []byte, chunkBytes int) (*ChunkedPutStats, error) {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if chunkBytes > MaxChunkBytes {
		chunkBytes = MaxChunkBytes
	}
	wire, encoding := data, ""
	if gz != nil && len(gz) < len(data) {
		wire, encoding = gz, "gzip"
	}
	if len(wire) == 0 || (len(wire)+chunkBytes-1)/chunkBytes > MaxManifestChunks {
		// Empty or too many chunks for one manifest: plain PUT.
		checksum, err := c.Put(name, data)
		if err != nil {
			return nil, err
		}
		return &ChunkedPutStats{
			WireBytes:    int64(len(data)),
			LogicalBytes: int64(len(data)),
			Fallback:     true,
			Checksum:     checksum,
		}, nil
	}
	fileSum := sha256.Sum256(data)
	fileSha := hex.EncodeToString(fileSum[:])
	order, byDigest := cutChunks(wire, chunkBytes)
	unique := make([]string, 0, len(byDigest))
	for d := range byDigest {
		unique = append(unique, d)
	}

	stats := &ChunkedPutStats{
		ChunksTotal:  len(order),
		LogicalBytes: int64(len(data)),
		Compressed:   encoding == "gzip",
	}
	// One full probe->ship->commit cycle, retried once if the commit
	// races an eviction (ErrNoChunk).
	for attempt := 0; ; attempt++ {
		missing, err := c.HaveChunks(unique)
		if err != nil {
			if errors.Is(err, ErrBadInput) || errors.Is(err, ErrNoFile) {
				// Stock server: the chunk paths are rejected as bad file
				// names. Downgrade to a monolithic PUT.
				checksum, perr := c.Put(name, data)
				if perr != nil {
					return nil, perr
				}
				stats.ChunksTotal = 0
				stats.WireBytes = int64(len(data))
				stats.Fallback = true
				stats.Checksum = checksum
				return stats, nil
			}
			return nil, err
		}
		if attempt == 0 && len(missing) < len(unique) {
			stats.Resumed = true
		}
		if err := c.putChunks(missing, byDigest, stats); err != nil {
			return nil, err
		}
		checksum, err := c.Commit(name, encoding, fileSha, order)
		if err != nil {
			if errors.Is(err, ErrNoChunk) && attempt == 0 {
				continue
			}
			return nil, err
		}
		if checksum != fileSha {
			return nil, fmt.Errorf("%w: server assembled %s, sent %s", ErrChecksum, checksum, fileSha)
		}
		stats.ChunksDeduped = stats.ChunksTotal - stats.ChunksShipped
		stats.Checksum = checksum
		return stats, nil
	}
}

// putChunks ships the missing chunks through a small worker pool.
func (c *Client) putChunks(missing []string, byDigest map[string][]byte, stats *ChunkedPutStats) error {
	if len(missing) == 0 {
		return nil
	}
	workers := putChunkWorkers
	if workers > len(missing) {
		workers = len(missing)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	work := make(chan string)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range work {
				if err := c.PutChunk(d, byDigest[d]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				mu.Lock()
				stats.ChunksShipped++
				stats.WireBytes += int64(len(byDigest[d]))
				mu.Unlock()
			}
		}()
	}
	for _, d := range missing {
		work <- d
	}
	close(work)
	wg.Wait()
	return firstErr
}
