package gridftp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gridsim"
	"repro/internal/vtime"
	"repro/internal/xsec"
)

type fixture struct {
	store *gridsim.Store
	srv   *Server
	alice *Client
	bob   *Client
	url   string
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	now := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	ca, err := xsec.NewCA("FTPCA", now, 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := ca.IssueUser("alice", now, 365*24*time.Hour)
	bob, _ := ca.IssueUser("bob", now, 365*24*time.Hour)
	store := gridsim.NewStore()
	srv := NewServer(store, xsec.NewTrustStore(ca.Cert), vtime.NewManual(now.Add(time.Hour)), nil)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return &fixture{
		store: store,
		srv:   srv,
		alice: &Client{BaseURL: hs.URL, Cred: alice},
		bob:   &Client{BaseURL: hs.URL, Cred: bob},
		url:   hs.URL,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	f := newFixture(t)
	data := bytes.Repeat([]byte("executable bytes "), 500)
	checksum, err := f.alice.Put("exe.gsh", data)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	if checksum != hex.EncodeToString(sum[:]) {
		t.Fatalf("checksum %s", checksum)
	}
	got, err := f.alice.Get("exe.gsh")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload corrupted")
	}
}

func TestFilesAreOwnerScoped(t *testing.T) {
	f := newFixture(t)
	if _, err := f.alice.Put("secret.gsh", []byte("alice data")); err != nil {
		t.Fatal(err)
	}
	// Bob authenticates fine but sees his own (empty) namespace.
	if _, err := f.bob.Get("secret.gsh"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("got %v", err)
	}
	names, err := f.bob.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("bob sees %v", names)
	}
	names, _ = f.alice.List()
	if len(names) != 1 || names[0] != "secret.gsh" {
		t.Fatalf("alice sees %v", names)
	}
}

func TestDelete(t *testing.T) {
	f := newFixture(t)
	f.alice.Put("f.gsh", []byte("x"))
	if err := f.alice.Delete("f.gsh"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.alice.Get("f.gsh"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("got %v", err)
	}
	if err := f.alice.Delete("f.gsh"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("got %v", err)
	}
}

func TestChecksumMismatchRejected(t *testing.T) {
	f := newFixture(t)
	data := []byte("payload")
	sum := sha256.Sum256(data)
	checksum := hex.EncodeToString(sum[:])
	tok, err := f.alice.sign(http.MethodPut, "f.gsh", checksum)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, f.url+"/ftp/f.gsh", bytes.NewReader([]byte("tampered")))
	req.Header.Set(TokenHeader, tok)
	req.Header.Set(ChecksumHeader, checksum)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestTokenBoundToFileName(t *testing.T) {
	f := newFixture(t)
	data := []byte("payload")
	sum := sha256.Sum256(data)
	checksum := hex.EncodeToString(sum[:])
	// Token signed for a different file must not authorize this PUT.
	tok, err := f.alice.sign(http.MethodPut, "other.gsh", checksum)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, f.url+"/ftp/f.gsh", bytes.NewReader(data))
	req.Header.Set(TokenHeader, tok)
	req.Header.Set(ChecksumHeader, checksum)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestUnauthenticatedRejected(t *testing.T) {
	f := newFixture(t)
	req, _ := http.NewRequest(http.MethodGet, f.url+"/ftp/x", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestBadFileNames(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Get(f.url + "/ftp/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty name: status %d", resp.StatusCode)
	}
	resp, err = http.Get(f.url + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	f := newFixture(t)
	req, _ := http.NewRequest(http.MethodPost, f.url+"/ftp/x", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestProxyCredentialWorks(t *testing.T) {
	f := newFixture(t)
	proxy, err := f.alice.Cred.Delegate(time.Date(2010, 6, 1, 0, 30, 0, 0, time.UTC), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxied := &Client{BaseURL: f.url, Cred: proxy}
	if _, err := proxied.Put("via-proxy.gsh", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The proxy acts as alice, so alice sees the file.
	got, err := f.alice.Get("via-proxy.gsh")
	if err != nil || string(got) != "x" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestQuotaSurfacesAsError(t *testing.T) {
	now := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	ca, err := xsec.NewCA("FTPCA", now, 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := ca.IssueUser("alice", now, 365*24*time.Hour)
	store := gridsim.NewStoreWithLimits(1000, 800)
	srv := NewServer(store, xsec.NewTrustStore(ca.Cert), vtime.NewManual(now.Add(time.Hour)), nil)
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := &Client{BaseURL: hs.URL, Cred: alice}
	if _, err := c.Put("a", make([]byte, 700)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("b", make([]byte, 700)); err == nil {
		t.Fatal("quota not enforced")
	}
}

func TestFileNameEscaping(t *testing.T) {
	f := newFixture(t)
	name := "weird name &?.gsh"
	if _, err := f.alice.Put(name, []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := f.alice.Get(name)
	if err != nil || string(got) != "v" {
		t.Fatalf("got %q err %v", got, err)
	}
}

// Property: arbitrary payloads survive the staged round trip bit-exact.
func TestPropertyTransferIntegrity(t *testing.T) {
	f := newFixture(t)
	i := 0
	fn := func(data []byte) bool {
		i++
		name := "blob-" + hex.EncodeToString([]byte{byte(i)}) + ".bin"
		if _, err := f.alice.Put(name, data); err != nil {
			return false
		}
		got, err := f.alice.Get(name)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
