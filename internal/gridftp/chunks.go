// Chunked, content-addressed staging: the reproduction of real
// GridFTP's partial-transfer / restart-marker / data-reduction features.
//
// A client cuts a file into fixed-size chunks, addresses each by its
// SHA-256 digest, and drives three endpoints:
//
//	POST /ftp/chunks/have   which of these digests is the server missing?
//	PUT  /ftp/chunk/<digest> ship one chunk (integrity-checked, idempotent)
//	POST /ftp/commit        manifest -> assemble, verify, register in store
//
// The chunk store is content-addressed and shared across identities:
// possession of a digest acts as the capability (knowing the hash of a
// chunk is equivalent to knowing the chunk), which is what buys
// cross-service and cross-version dedup. Commit is where ownership is
// asserted: the assembled file lands in the site store under the
// authenticated identity, subject to the usual quota.
//
// Chunks address the *wire* bytes: when the client negotiates gzip via
// the X-Grid-Encoding header the digests cover the compressed stream and
// the server inflates at commit. Stock servers answer 400 to the chunk
// paths (they contain "/"), which clients treat as "unsupported" and
// fall back to a plain PUT.
package gridftp

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// EncodingHeader negotiates the wire encoding of a chunked transfer
// ("gzip" or absent). It rides on the commit manifest, not the chunks.
const EncodingHeader = "X-Grid-Encoding"

// Chunked-transfer limits.
const (
	// DefaultChunkBytes is the chunk size when the caller passes 0.
	DefaultChunkBytes = 256 << 10
	// MaxChunkBytes bounds one chunk PUT.
	MaxChunkBytes = 8 << 20
	// MaxManifestChunks bounds one manifest (and one have-probe).
	MaxManifestChunks = 4096
	// defaultChunkStoreBytes caps the per-server chunk cache; oldest
	// chunks are evicted first. Eviction is safe: a client that commits
	// against an evicted chunk re-ships it on retry.
	defaultChunkStoreBytes = 512 << 20
)

// chunkStore holds wire chunks keyed by hex SHA-256 digest, bounded by a
// byte cap with FIFO eviction.
type chunkStore struct {
	mu    sync.Mutex
	data  map[string][]byte
	order []string
	bytes int64
	cap   int64
}

func newChunkStore(capBytes int64) *chunkStore {
	return &chunkStore{data: make(map[string][]byte), cap: capBytes}
}

// put stores a chunk (idempotent) and reports whether it was new.
func (cs *chunkStore) put(digest string, chunk []byte) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, ok := cs.data[digest]; ok {
		return false
	}
	cp := make([]byte, len(chunk))
	copy(cp, chunk)
	cs.data[digest] = cp
	cs.order = append(cs.order, digest)
	cs.bytes += int64(len(cp))
	for cs.bytes > cs.cap && len(cs.order) > 1 {
		old := cs.order[0]
		cs.order = cs.order[1:]
		if victim, ok := cs.data[old]; ok {
			cs.bytes -= int64(len(victim))
			delete(cs.data, old)
		}
	}
	return true
}

func (cs *chunkStore) get(digest string) ([]byte, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	chunk, ok := cs.data[digest]
	return chunk, ok
}

func (cs *chunkStore) has(digest string) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	_, ok := cs.data[digest]
	return ok
}

// validDigest reports whether s is a well-formed lowercase hex SHA-256.
func validDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// haveRequest is the dedup/resume probe body.
type haveRequest struct {
	Digests []string `json:"digests"`
}

// haveReply lists the digests the server does not hold.
type haveReply struct {
	Missing []string `json:"missing"`
}

// chunkManifest is the commit body: the ordered chunk list that
// reassembles one file. Duplicate digests are legal (intra-file dedup).
type chunkManifest struct {
	Name string `json:"name"`
	// Encoding is "" (chunks carry the raw file) or "gzip" (chunks carry
	// the gzip stream; the server inflates at commit).
	Encoding   string   `json:"encoding,omitempty"`
	FileSha256 string   `json:"file_sha256"`
	Chunks     []string `json:"chunks"`
}

// parseHaveRequest decodes and validates a have-probe body. Split out so
// fuzz tests can drive the decoder directly.
func parseHaveRequest(body []byte) (*haveRequest, error) {
	var req haveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if len(req.Digests) == 0 {
		return nil, fmt.Errorf("%w: empty digest list", ErrBadInput)
	}
	if len(req.Digests) > MaxManifestChunks {
		return nil, fmt.Errorf("%w: %d digests exceeds limit %d", ErrBadInput, len(req.Digests), MaxManifestChunks)
	}
	for _, d := range req.Digests {
		if !validDigest(d) {
			return nil, fmt.Errorf("%w: malformed digest %q", ErrBadInput, d)
		}
	}
	return &req, nil
}

// parseManifest decodes and validates a commit body. Split out so fuzz
// tests can drive the decoder directly.
func parseManifest(body []byte) (*chunkManifest, error) {
	var m chunkManifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if m.Name == "" || strings.Contains(m.Name, "/") {
		return nil, fmt.Errorf("%w: bad file name", ErrBadInput)
	}
	if m.Encoding != "" && m.Encoding != "gzip" {
		return nil, fmt.Errorf("%w: unsupported encoding %q", ErrBadInput, m.Encoding)
	}
	if !validDigest(m.FileSha256) {
		return nil, fmt.Errorf("%w: malformed file checksum", ErrBadInput)
	}
	if len(m.Chunks) == 0 {
		return nil, fmt.Errorf("%w: empty chunk list", ErrBadInput)
	}
	if len(m.Chunks) > MaxManifestChunks {
		return nil, fmt.Errorf("%w: %d chunks exceeds limit %d", ErrBadInput, len(m.Chunks), MaxManifestChunks)
	}
	for _, d := range m.Chunks {
		if !validDigest(d) {
			return nil, fmt.Errorf("%w: malformed chunk digest %q", ErrBadInput, d)
		}
	}
	return &m, nil
}

// haveChunks answers the dedup/resume probe: which of these digests does
// the server not hold? The request body (not the chunk data) is bound
// into the auth token.
func (s *Server) haveChunks(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "gridftp: read have request: "+err.Error())
		return
	}
	req, err := parseHaveRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	sum := sha256.Sum256(body)
	if _, err := s.authenticate(r, signPayload("CHUNK-HAVE", "", hex.EncodeToString(sum[:]))); err != nil {
		httpError(w, http.StatusForbidden, err.Error())
		return
	}
	missing := make([]string, 0, len(req.Digests))
	seen := make(map[string]bool, len(req.Digests))
	for _, d := range req.Digests {
		if seen[d] {
			continue
		}
		seen[d] = true
		if !s.chunks.has(d) {
			missing = append(missing, d)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(haveReply{Missing: missing})
}

// putChunk stores one wire chunk under its digest. Integrity-checked
// (the body must hash to the digest in the path) and idempotent: a
// re-shipped chunk answers 201 again without rewriting.
func (s *Server) putChunk(w http.ResponseWriter, r *http.Request, digest string) {
	if !validDigest(digest) {
		httpError(w, http.StatusBadRequest, ErrBadInput.Error()+": malformed chunk digest")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxChunkBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "gridftp: read chunk: "+err.Error())
		return
	}
	if len(body) == 0 {
		httpError(w, http.StatusBadRequest, ErrBadInput.Error()+": empty chunk")
		return
	}
	if len(body) > MaxChunkBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "gridftp: chunk too large")
		return
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != digest {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("%v: chunk hashes to %s not %s", ErrChecksum, got, digest))
		return
	}
	if _, err := s.authenticate(r, signPayload("CHUNK-PUT", digest, "")); err != nil {
		httpError(w, http.StatusForbidden, err.Error())
		return
	}
	s.chunks.put(digest, body)
	w.Header().Set(ChecksumHeader, digest)
	w.WriteHeader(http.StatusCreated)
}

// commit assembles a manifest's chunks into one file, inflates it when
// the manifest negotiated gzip, verifies the whole-file SHA-256, and
// registers the result in the site store under the authenticated
// identity. This is the only chunked operation that takes ownership.
func (s *Server) commit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "gridftp: read commit request: "+err.Error())
		return
	}
	m, err := parseManifest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, err := s.authenticate(r, signPayload("CHUNK-COMMIT", m.Name, m.FileSha256))
	if err != nil {
		httpError(w, http.StatusForbidden, err.Error())
		return
	}
	var wire bytes.Buffer
	for _, d := range m.Chunks {
		chunk, ok := s.chunks.get(d)
		if !ok {
			httpError(w, http.StatusConflict, fmt.Sprintf("%v: missing chunk %s", ErrNoChunk, d))
			return
		}
		if wire.Len()+len(chunk) > MaxFileBytes {
			httpError(w, http.StatusRequestEntityTooLarge, "gridftp: assembled file too large")
			return
		}
		wire.Write(chunk)
	}
	data := wire.Bytes()
	if m.Encoding == "gzip" {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			httpError(w, http.StatusBadRequest, ErrBadInput.Error()+": bad gzip stream: "+err.Error())
			return
		}
		inflated, err := io.ReadAll(io.LimitReader(zr, MaxFileBytes+1))
		if closeErr := zr.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, ErrBadInput.Error()+": bad gzip stream: "+err.Error())
			return
		}
		if len(inflated) > MaxFileBytes {
			httpError(w, http.StatusRequestEntityTooLarge, "gridftp: inflated file too large")
			return
		}
		data = inflated
	}
	sum := sha256.Sum256(data)
	checksum := hex.EncodeToString(sum[:])
	if checksum != m.FileSha256 {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("%v: assembled file hashes to %s not %s", ErrChecksum, checksum, m.FileSha256))
		return
	}
	if err := s.store.Put(id, m.Name, data); err != nil {
		httpError(w, http.StatusInsufficientStorage, err.Error())
		return
	}
	w.Header().Set(ChecksumHeader, checksum)
	w.WriteHeader(http.StatusCreated)
}
