// Package gridenv assembles a complete simulated production Grid on
// loopback TCP: certificate authority, MyProxy credential repository,
// GRAM gatekeeper, and one GridFTP server per site. Tests, examples and
// the figure experiments all build their TeraGrid stand-in through this
// package instead of wiring a dozen servers by hand.
package gridenv

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/cyberaide"
	"repro/internal/gram"
	"repro/internal/gridftp"
	"repro/internal/gridsim"
	"repro/internal/myproxy"
	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/xsec"
)

// Options configures Start.
type Options struct {
	// Clock drives the grid; nil means real time.
	Clock vtime.Clock
	// Sites defaults to gridsim.TeraGrid's machine file.
	Sites []gridsim.SiteConfig
	// Profile shapes the grid servers' outbound (server→client) traffic;
	// nil leaves it unshaped. Client→server shaping belongs to the
	// caller's dialer.
	Profile *netsim.Profile
	// CAValidity defaults to ten years.
	CAValidity time.Duration
	// Trace, when non-nil, turns on distributed tracing: every grid
	// service (GRAM, per-site GridFTP, MyProxy, the simulator's job
	// lifecycle) records spans into this shared collector. Hand the same
	// collector to the appliance so one invocation assembles into a
	// single cross-service tree.
	Trace *trace.Collector
}

// Env is a running grid environment. Close shuts every listener down.
type Env struct {
	Clock vtime.Clock
	CA    *xsec.CA
	Trust *xsec.TrustStore
	Grid  *gridsim.Grid
	// Gatekeeper is the GRAM server behind GramURL; time-dilated rigs
	// tune its event-stream heartbeat through it.
	Gatekeeper *gram.Server

	// Endpoints for the Cyberaide agent.
	GramURL     string
	MyProxyAddr string
	FTPURLs     map[string]string

	myproxySrv *myproxy.Server
	httpSrvs   []*http.Server
	listeners  []net.Listener
}

// Start boots the environment.
func Start(opts Options) (*Env, error) {
	clock := opts.Clock
	if clock == nil {
		clock = vtime.Real{}
	}
	validity := opts.CAValidity
	if validity <= 0 {
		validity = 10 * 365 * 24 * time.Hour
	}
	ca, err := xsec.NewCA("ReproGridCA", clock.Now(), validity)
	if err != nil {
		return nil, err
	}
	trust := xsec.NewTrustStore(ca.Cert)

	var grid *gridsim.Grid
	if len(opts.Sites) == 0 {
		grid, err = gridsim.TeraGrid(clock)
	} else {
		grid, err = gridsim.New(clock, opts.Sites...)
	}
	if err != nil {
		return nil, err
	}

	env := &Env{
		Clock:   clock,
		CA:      ca,
		Trust:   trust,
		Grid:    grid,
		FTPURLs: make(map[string]string),
	}

	listen := func() (net.Listener, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			env.Close()
			return nil, err
		}
		env.listeners = append(env.listeners, ln)
		if opts.Profile != nil {
			return netsim.NewListener(ln, opts.Profile, nil), nil
		}
		return ln, nil
	}
	serveHTTP := func(h http.Handler) (string, error) {
		ln, err := listen()
		if err != nil {
			return "", err
		}
		srv := &http.Server{Handler: h}
		env.httpSrvs = append(env.httpSrvs, srv)
		go srv.Serve(ln)
		return "http://" + ln.Addr().String(), nil
	}

	// Gatekeeper.
	if opts.Trace != nil {
		grid.SetTracer(trace.NewTracer("gridsim", clock, opts.Trace))
	}
	gk := gram.NewServer(grid, trust, clock)
	env.Gatekeeper = gk
	if opts.Trace != nil {
		gk.SetTracer(trace.NewTracer("gram", clock, opts.Trace))
	}
	if env.GramURL, err = serveHTTP(gk); err != nil {
		return nil, err
	}
	// One GridFTP server per site. Third-party transfers (one server
	// pulling from another) must cross the same shaped links as any other
	// grid traffic, so the servers' outbound fetch client dials through
	// the profile too.
	var fetchClient *http.Client
	if opts.Profile != nil {
		dialer := &netsim.Dialer{Profile: opts.Profile}
		fetchClient = &http.Client{Transport: &http.Transport{DialContext: dialer.DialContext}}
	}
	for _, name := range grid.SiteNames() {
		site, err := grid.Site(name)
		if err != nil {
			env.Close()
			return nil, err
		}
		ftp := gridftp.NewServer(site.Store(), trust, clock, fetchClient)
		if opts.Trace != nil {
			ftp.SetTracer(trace.NewTracer("gridftp", clock, opts.Trace), name)
		}
		url, err := serveHTTP(ftp)
		if err != nil {
			return nil, err
		}
		env.FTPURLs[name] = url
	}
	// MyProxy.
	mpLn, err := listen()
	if err != nil {
		return nil, err
	}
	env.myproxySrv = myproxy.NewServer(clock)
	if opts.Trace != nil {
		env.myproxySrv.SetTracer(trace.NewTracer("myproxy", clock, opts.Trace))
	}
	go env.myproxySrv.Serve(mpLn)
	env.MyProxyAddr = mpLn.Addr().String()
	return env, nil
}

// Endpoints packages the environment's access points for an agent.
func (e *Env) Endpoints() cyberaide.Endpoints {
	return cyberaide.Endpoints{
		GramURL:     e.GramURL,
		MyProxyAddr: e.MyProxyAddr,
		FTPURLs:     e.FTPURLs,
	}
}

// AddUser issues a certificate for cn, stores a delegated credential in
// MyProxy under (cn, passphrase), and returns the user credential.
func (e *Env) AddUser(cn, passphrase string, validity time.Duration) (*xsec.Credential, error) {
	if validity <= 0 {
		validity = 30 * 24 * time.Hour
	}
	cred, err := e.CA.IssueUser(cn, e.Clock.Now(), validity)
	if err != nil {
		return nil, err
	}
	mp := &myproxy.Client{Addr: e.MyProxyAddr}
	if err := mp.Put(cn, passphrase, cred); err != nil {
		return nil, fmt.Errorf("gridenv: store credential: %w", err)
	}
	return cred, nil
}

// StageEverywhere puts a file into every site's store for owner —
// convenient for tests that bypass GridFTP.
func (e *Env) StageEverywhere(owner, name string, data []byte) error {
	for _, siteName := range e.Grid.SiteNames() {
		site, err := e.Grid.Site(siteName)
		if err != nil {
			return err
		}
		if err := site.Store().Put(owner, name, data); err != nil {
			return err
		}
	}
	return nil
}

// Close stops every server.
func (e *Env) Close() {
	for _, srv := range e.httpSrvs {
		srv.Close()
	}
	if e.myproxySrv != nil {
		e.myproxySrv.Close()
	}
	for _, ln := range e.listeners {
		ln.Close()
	}
}
