package gridenv

import (
	"testing"
	"time"

	"repro/internal/gram"
	"repro/internal/gridsim"
	"repro/internal/jsdl"
	"repro/internal/myproxy"
	"repro/internal/netsim"
	"repro/internal/vtime"
)

func TestStartDefaultTeraGrid(t *testing.T) {
	env, err := Start(Options{Clock: vtime.NewScaled(20000)})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if len(env.Grid.SiteNames()) != 11 {
		t.Fatalf("sites %v", env.Grid.SiteNames())
	}
	if len(env.FTPURLs) != 11 {
		t.Fatalf("ftp urls %v", env.FTPURLs)
	}
	eps := env.Endpoints()
	if eps.GramURL == "" || eps.MyProxyAddr == "" || len(eps.FTPURLs) != 11 {
		t.Fatalf("endpoints %+v", eps)
	}
}

func TestAddUserAndAuthenticateThroughStack(t *testing.T) {
	clk := vtime.NewScaled(20000)
	env, err := Start(Options{
		Clock: clk,
		Sites: []gridsim.SiteConfig{{Name: "s", Nodes: 1, CoresPerNode: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	cred, err := env.AddUser("dana", "pw", time.Hour*24)
	if err != nil {
		t.Fatal(err)
	}
	if cred.Subject() != "/O=Repro/CN=dana" {
		t.Fatalf("subject %q", cred.Subject())
	}
	// The MyProxy server really holds the credential.
	mp := &myproxy.Client{Addr: env.MyProxyAddr}
	proxy, err := mp.Get("dana", "pw", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// And the delegated proxy is accepted by the gatekeeper.
	if err := env.StageEverywhere(cred.Subject(), "e.gsh", []byte("echo hi\n")); err != nil {
		t.Fatal(err)
	}
	gc := &gram.Client{BaseURL: env.GramURL, Cred: proxy}
	id, err := gc.Submit(&jsdl.Description{Owner: cred.Subject(), Executable: "e.gsh", Site: "s"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := gc.Wait(id, time.Hour)
	if err != nil || st.State != "DONE" {
		t.Fatalf("job %v err %v", st, err)
	}
}

func TestStageEverywhere(t *testing.T) {
	env, err := Start(Options{
		Clock: vtime.Real{},
		Sites: []gridsim.SiteConfig{
			{Name: "a", Nodes: 1, CoresPerNode: 1},
			{Name: "b", Nodes: 1, CoresPerNode: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if err := env.StageEverywhere("owner", "f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for _, name := range env.Grid.SiteNames() {
		site, _ := env.Grid.Site(name)
		if _, err := site.Store().Size("owner", "f"); err != nil {
			t.Fatalf("site %s missing file: %v", name, err)
		}
	}
}

func TestShapedListeners(t *testing.T) {
	clk := vtime.NewScaled(100)
	env, err := Start(Options{
		Clock:   clk,
		Sites:   []gridsim.SiteConfig{{Name: "s", Nodes: 1, CoresPerNode: 1}},
		Profile: netsim.WAN(clk),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	// Just confirm the environment still functions with shaping on.
	if _, err := env.AddUser("u", "p", 0); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIdempotentEnough(t *testing.T) {
	env, err := Start(Options{Sites: []gridsim.SiteConfig{{Name: "s", Nodes: 1, CoresPerNode: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	env.Close()
	env.Close() // second close must not panic
}
