// Long-lived event streams: the push channel the paper's 2010-era
// gatekeepers lacked. GET /gram/events holds one chunked
// text/event-stream connection per session and multiplexes every job
// the authenticated identity owns over it — state transitions and
// stdout-version bumps arrive as SSE-style frames the moment the
// scheduler publishes them, instead of being discovered by status
// polling. Reconnects resume from a Last-Event-ID cursor; a cursor
// older than the server's retained history yields a "resync" frame
// telling the client to re-fetch authoritative state once.
package gram

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/gridsim"
)

// Event frame types on the wire.
const (
	// EventHello is the first frame of every stream; its data carries the
	// negotiated heartbeat interval.
	EventHello = "hello"
	// EventState announces a job lifecycle transition.
	EventState = "state"
	// EventOutput announces a stdout-version bump.
	EventOutput = "output"
	// EventHeartbeat is a keepalive; a client missing several in a row
	// should assume the connection is dead and reconnect.
	EventHeartbeat = "heartbeat"
	// EventResync tells the client its cursor (or buffer) lost events:
	// re-fetch authoritative job state out of band, then keep streaming.
	EventResync = "resync"
)

// DefaultHeartbeatInterval is the idle keepalive cadence.
const DefaultHeartbeatInterval = 5 * time.Second

// maxFrameLine bounds one frame line; longer lines poison the stream.
const maxFrameLine = 64 << 10

// ErrNoEvents reports that the gatekeeper does not implement
// /gram/events (a stock server): callers should fall back to polling.
var ErrNoEvents = errors.New("gram: server does not support event streams")

// EventFrame is one wire frame: an optional cursor ID, an event type,
// and a raw data payload (JSON for hello/state/output, empty for
// heartbeat/resync).
type EventFrame struct {
	ID    uint64
	Event string
	Data  []byte
}

// EventData is the JSON payload of state/output frames.
type EventData struct {
	JobID         string `json:"job_id"`
	State         string `json:"state,omitempty"`
	Message       string `json:"message,omitempty"`
	Site          string `json:"site,omitempty"`
	OutputVersion uint64 `json:"output_version,omitempty"`
	AtUnixNano    int64  `json:"at_unix_ns,omitempty"`
}

// helloData is the JSON payload of the hello frame.
type helloData struct {
	HeartbeatS int    `json:"heartbeat_s"`
	Session    string `json:"session,omitempty"`
}

// SetHeartbeatInterval overrides the stream keepalive cadence (tests
// and time-dilated rigs); zero or negative restores the default.
func (s *Server) SetHeartbeatInterval(d time.Duration) { s.heartbeat = d }

func (s *Server) heartbeatInterval() time.Duration {
	if s.heartbeat > 0 {
		return s.heartbeat
	}
	return DefaultHeartbeatInterval
}

// events serves GET /gram/events: one long-lived stream carrying every
// transition of the authenticated identity's jobs. The session and
// cursor are parsed before authentication (parse-before-auth: malformed
// input degrades, never crashes); the token is verified over the fixed
// message "events" like the other identity-scoped endpoints.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	session := r.URL.Query().Get("session")
	// Cursor: Last-Event-ID header wins (SSE convention), else the
	// ?since query; malformed values degrade to 0 = full replay.
	cursor, _ := strconv.ParseUint(r.Header.Get("Last-Event-ID"), 10, 64)
	if cursor == 0 {
		cursor, _ = strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
	}
	id, err := s.authenticate(r, []byte("events"))
	if err != nil {
		writeJSON(w, http.StatusForbidden, errorReply{Error: err.Error()})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorReply{Error: "gram: streaming unsupported"})
		return
	}
	sub, replay, resync := s.grid.Events().Subscribe(id, cursor)
	defer s.grid.Events().Unsubscribe(sub)

	hb := s.heartbeatInterval()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	hello, _ := json.Marshal(helloData{HeartbeatS: int(hb / time.Second), Session: session})
	if err := writeEventFrame(w, EventFrame{Event: EventHello, Data: hello}); err != nil {
		return
	}
	if resync {
		if err := writeEventFrame(w, EventFrame{Event: EventResync}); err != nil {
			return
		}
	}
	for _, ev := range replay {
		if err := writeEventFrame(w, busFrame(ev)); err != nil {
			return
		}
	}
	flusher.Flush()

	var hbCh <-chan time.Time
	for {
		if hbCh == nil {
			hbCh = s.clock.After(hb)
		}
		select {
		case ev := <-sub.C:
			if err := writeEventFrame(w, busFrame(ev)); err != nil {
				return
			}
			// Drain whatever queued behind it before flushing once.
			for drained := false; !drained; {
				select {
				case ev := <-sub.C:
					if err := writeEventFrame(w, busFrame(ev)); err != nil {
						return
					}
				default:
					drained = true
				}
			}
			flusher.Flush()
		case <-sub.Overflow:
			// The subscriber buffer spilled: the client's view has a gap.
			if err := writeEventFrame(w, EventFrame{Event: EventResync}); err != nil {
				return
			}
			flusher.Flush()
		case <-hbCh:
			hbCh = nil
			if err := writeEventFrame(w, EventFrame{Event: EventHeartbeat}); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// busFrame converts a bus event to its wire frame.
func busFrame(ev gridsim.JobEvent) EventFrame {
	kind := EventOutput
	if ev.Type == gridsim.EventState {
		kind = EventState
	}
	data, _ := json.Marshal(EventData{
		JobID:         ev.JobID,
		State:         ev.State,
		Message:       ev.Message,
		Site:          ev.Site,
		OutputVersion: ev.OutputVersion,
		AtUnixNano:    ev.At.UnixNano(),
	})
	return EventFrame{ID: ev.Seq, Event: kind, Data: data}
}

// writeEventFrame emits one SSE-style frame in a single Write so a
// chunked transfer never splits a frame across a flush boundary.
func writeEventFrame(w io.Writer, f EventFrame) error {
	var buf bytes.Buffer
	if f.ID > 0 {
		fmt.Fprintf(&buf, "id: %d\n", f.ID)
	}
	fmt.Fprintf(&buf, "event: %s\n", f.Event)
	if len(f.Data) > 0 {
		buf.WriteString("data: ")
		buf.Write(f.Data)
		buf.WriteByte('\n')
	}
	buf.WriteByte('\n')
	_, err := w.Write(buf.Bytes())
	return err
}

// readEventFrame parses one frame from the stream. Unknown fields and
// comment lines (":") are skipped per the SSE contract; a malformed id
// degrades to 0; an oversized line or truncated stream is an error —
// the caller reconnects and resumes from its cursor.
func readEventFrame(br *bufio.Reader) (EventFrame, error) {
	var f EventFrame
	seen := false
	for {
		line, err := readBoundedLine(br)
		if err != nil {
			return EventFrame{}, err
		}
		if len(line) == 0 {
			if seen {
				return f, nil
			}
			continue // leading blank lines between frames
		}
		seen = true
		field, value, _ := bytes.Cut(line, []byte(":"))
		value = bytes.TrimPrefix(value, []byte(" "))
		switch string(field) {
		case "id":
			f.ID, _ = strconv.ParseUint(string(value), 10, 64)
		case "event":
			f.Event = string(value)
		case "data":
			f.Data = append([]byte(nil), value...)
		case "":
			// comment line (":...")
		}
	}
}

// readBoundedLine reads one \n-terminated line, rejecting lines longer
// than maxFrameLine.
func readBoundedLine(br *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		chunk, more, err := br.ReadLine()
		if err != nil {
			return nil, err
		}
		line = append(line, chunk...)
		if len(line) > maxFrameLine {
			return nil, fmt.Errorf("%w: frame line over %d bytes", ErrBadInput, maxFrameLine)
		}
		if !more {
			return line, nil
		}
	}
}

// EventStream is one live connection to /gram/events.
type EventStream struct {
	body io.ReadCloser
	br   *bufio.Reader
	// Heartbeat is the server's announced keepalive interval from the
	// hello frame; a reader silent for several multiples of it should
	// treat the stream as dead.
	Heartbeat time.Duration
}

// Next blocks for the next frame. Any error (including a malformed
// frame) means the stream is unusable: close it and reconnect from the
// last good cursor.
func (es *EventStream) Next() (EventFrame, error) {
	return readEventFrame(es.br)
}

// Close tears the stream down; it is safe to call concurrently with
// Next (closing the body unblocks the pending read).
func (es *EventStream) Close() error { return es.body.Close() }

// Events opens the session's event stream, resuming after cursor since
// (0 = from the beginning of retained history). A stock gatekeeper
// without the endpoint yields ErrNoEvents so callers can fall back to
// polling. The first frame (consumed here) must be a hello carrying the
// heartbeat interval.
func (c *Client) Events(session string, since uint64) (*EventStream, error) {
	tok, err := c.sign([]byte("events"))
	if err != nil {
		return nil, err
	}
	u := c.BaseURL + "/gram/events?session=" + url.QueryEscape(session)
	if since > 0 {
		u += "&since=" + strconv.FormatUint(since, 10)
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(TokenHeader, tok)
	if since > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(since, 10))
	}
	c.setTrace(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("gram: /gram/events: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, MaxBody))
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return nil, fmt.Errorf("%w: http 404", ErrNoEvents)
		}
		return nil, decodeError(resp.StatusCode, body)
	}
	es := &EventStream{body: resp.Body, br: bufio.NewReader(resp.Body)}
	first, err := es.Next()
	if err != nil {
		es.Close()
		return nil, fmt.Errorf("gram: event stream handshake: %w", err)
	}
	if first.Event != EventHello {
		es.Close()
		return nil, fmt.Errorf("%w: first frame %q, want hello", ErrBadInput, first.Event)
	}
	var h helloData
	if err := json.Unmarshal(first.Data, &h); err != nil || h.HeartbeatS <= 0 {
		es.Close()
		return nil, fmt.Errorf("%w: bad hello frame", ErrBadInput)
	}
	es.Heartbeat = time.Duration(h.HeartbeatS) * time.Second
	return es, nil
}
