// Package gram implements the gatekeeper protocol of the reproduction —
// the K-GRAM stand-in the onServe middleware submits jobs through. The
// protocol is deliberately narrow, matching what production Grids exposed
// in 2010: submit a job description, poll its status, fetch its stdout
// (the paper's workaround: "the actual status of the job can't be
// retrieved and ... the local client has to request the output
// tentatively"), fetch output files, cancel.
//
// Every request carries an xsec signed token; the gatekeeper verifies the
// chain against its trust store and enforces that callers only touch
// their own jobs.
package gram

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/gridsim"
	"repro/internal/jsdl"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/xsec"
)

// TokenHeader carries the base64 signed token.
const TokenHeader = "X-Grid-Token"

// MaxBody bounds request bodies (job descriptions are small; files go
// through GridFTP, not GRAM).
const MaxBody = 1 << 20

// Errors reconstructed client-side from HTTP status + message.
var (
	ErrDenied    = errors.New("gram: authentication or authorization failed")
	ErrNotOwner  = errors.New("gram: job belongs to another identity")
	ErrNoSuchJob = errors.New("gram: no such job")
	ErrBadInput  = errors.New("gram: malformed request")
)

// StatusReply is the gatekeeper's job status answer.
type StatusReply struct {
	JobID   string `json:"job_id"`
	State   string `json:"state"`
	Message string `json:"message,omitempty"`
	Site    string `json:"site"`
}

// MaxBatch caps how many jobs one status-batch request may name; the
// client chunks larger sets transparently.
const MaxBatch = 256

// batchRequest is the status-batch request body.
type batchRequest struct {
	Jobs []string `json:"jobs"`
}

// BatchEntry is one job's answer inside a status-batch reply. Error is
// set (and the status fields empty) when this entry failed — a bad job
// never fails its batch. OutputVersion mirrors the ETag of /gram/output
// so pollers can skip fetching unchanged stdout.
type BatchEntry struct {
	JobID         string `json:"job_id"`
	State         string `json:"state,omitempty"`
	Message       string `json:"message,omitempty"`
	Site          string `json:"site,omitempty"`
	OutputVersion uint64 `json:"output_version,omitempty"`
	Error         string `json:"error,omitempty"`
}

// BatchReply answers a status-batch request; Entries is parallel to the
// requested job list.
type BatchReply struct {
	Entries []BatchEntry `json:"entries"`
}

// SubmitReply returns the assigned job ID.
type SubmitReply struct {
	JobID string `json:"job_id"`
}

// submitBatchRequest carries many job descriptions (each one jsdl XML
// document) in one submit round-trip. Traces, when present, is parallel
// to Jobs and carries each entry's X-Grid-Trace wire context; riding in
// the signed body keeps batch entries exactly as tamper-proof as the
// single-submit header (which is covered by the token over the body).
type submitBatchRequest struct {
	Jobs   []string `json:"jobs"`
	Traces []string `json:"traces,omitempty"`
}

// SubmitBatchEntry is one description's answer inside a submit-batch
// reply. Error is set (and JobID empty) when this entry was rejected —
// a bad description never fails its batch-mates.
type SubmitBatchEntry struct {
	JobID string `json:"job_id,omitempty"`
	Error string `json:"error,omitempty"`
}

// submitBatchReply answers a submit-batch request; Entries is parallel
// to the submitted descriptions.
type submitBatchReply struct {
	Entries []SubmitBatchEntry `json:"entries"`
}

// errorReply is the uniform error body.
type errorReply struct {
	Error string `json:"error"`
}

// Server is the gatekeeper for one grid.
type Server struct {
	grid   *gridsim.Grid
	trust  *xsec.TrustStore
	clock  vtime.Clock
	tracer *trace.Tracer
	// heartbeat is the event-stream keepalive cadence; zero means
	// DefaultHeartbeatInterval (see SetHeartbeatInterval).
	heartbeat time.Duration
}

// SetTracer enables distributed tracing of submissions: each traced
// submit (single or batch entry) becomes a "gram.submit" span whose
// context is threaded into the grid simulator's job lifecycle spans.
// Call before serving; a nil tracer keeps tracing off.
func (s *Server) SetTracer(t *trace.Tracer) { s.tracer = t }

// NewServer builds a gatekeeper.
func NewServer(grid *gridsim.Grid, trust *xsec.TrustStore, clock vtime.Clock) *Server {
	if clock == nil {
		clock = vtime.Real{}
	}
	return &Server{grid: grid, trust: trust, clock: clock}
}

// authenticate verifies the signed token over msg and returns the caller
// identity.
func (s *Server) authenticate(r *http.Request, msg []byte) (string, error) {
	tok := r.Header.Get(TokenHeader)
	if tok == "" {
		return "", fmt.Errorf("%w: missing %s", ErrDenied, TokenHeader)
	}
	signed, err := xsec.DecodeSigned(tok)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrDenied, err)
	}
	id, err := s.trust.Verify(msg, signed, s.clock.Now())
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrDenied, err)
	}
	return id, nil
}

// ServeHTTP implements http.Handler under the /gram/ prefix.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/gram/submit":
		s.submit(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/gram/status":
		s.withJob(w, r, func(j *gridsim.Job) { writeJSON(w, http.StatusOK, statusOf(j)) })
	case r.Method == http.MethodPost && r.URL.Path == "/gram/submit-batch":
		s.submitBatch(w, r)
	case r.Method == http.MethodPost && r.URL.Path == "/gram/status-batch":
		s.statusBatch(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/gram/output":
		s.withJob(w, r, func(j *gridsim.Job) {
			out, ver := j.StdoutVersioned()
			etag := outputETag(ver)
			w.Header().Set("ETag", etag)
			if r.Header.Get("If-None-Match") == etag {
				w.WriteHeader(http.StatusNotModified)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, out)
		})
	case r.Method == http.MethodGet && r.URL.Path == "/gram/outfile":
		s.withJob(w, r, func(j *gridsim.Job) {
			name := r.URL.Query().Get("name")
			data := j.OutputFile(name)
			if data == nil {
				writeJSON(w, http.StatusNotFound, errorReply{Error: "no output file " + name})
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
		})
	case r.Method == http.MethodGet && r.URL.Path == "/gram/wait":
		s.wait(w, r)
	case r.Method == http.MethodPost && r.URL.Path == "/gram/cancel":
		s.cancel(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/gram/sites":
		s.sites(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/gram/usage":
		s.usage(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/gram/events":
		s.events(w, r)
	default:
		writeJSON(w, http.StatusNotFound, errorReply{Error: "gram: unknown endpoint"})
	}
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	// The trace header is decoded before authentication; a malformed
	// header degrades to "untraced", never to a rejection.
	tc, _ := trace.Parse(r.Header.Get(trace.Header))
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBody+1))
	if err != nil || len(body) > MaxBody {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "gram: bad body"})
		return
	}
	id, err := s.authenticate(r, body)
	if err != nil {
		writeJSON(w, http.StatusForbidden, errorReply{Error: err.Error()})
		return
	}
	desc, err := jsdl.Unmarshal(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: fmt.Sprintf("%v: %v", ErrBadInput, err)})
		return
	}
	if desc.Owner != id {
		writeJSON(w, http.StatusForbidden, errorReply{
			Error: fmt.Sprintf("%v: description owner %q, authenticated %q", ErrDenied, desc.Owner, id),
		})
		return
	}
	sp := s.startSubmitSpan(tc, false)
	job, err := s.grid.SubmitTraced(*desc, sp.Context())
	if err != nil {
		sp.Error(err.Error())
		sp.End()
		writeJSON(w, http.StatusBadRequest, errorReply{Error: err.Error()})
		return
	}
	sp.Set("site", job.Site)
	sp.Set("job_id", job.ID)
	sp.End()
	writeJSON(w, http.StatusOK, SubmitReply{JobID: job.ID})
}

// startSubmitSpan opens a "gram.submit" span under the caller's context,
// or returns nil (a no-op span) when tracing is off or no valid context
// arrived.
func (s *Server) startSubmitSpan(tc trace.SpanContext, batched bool) *trace.Span {
	if s.tracer == nil || !tc.Valid() {
		return nil
	}
	sp := s.tracer.StartSpan("gram.submit", tc)
	if batched {
		sp.Set("batched", "true")
	}
	return sp
}

// submitBatch submits many job descriptions in one round-trip (token
// signed over the body, like submit). Failures are reported per entry:
// a malformed, foreign or rejected description yields an entry with
// Error set and never fails the batch.
func (s *Server) submitBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBody+1))
	if err != nil || len(body) > MaxBody {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "gram: bad body"})
		return
	}
	id, err := s.authenticate(r, body)
	if err != nil {
		writeJSON(w, http.StatusForbidden, errorReply{Error: err.Error()})
		return
	}
	var req submitBatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: fmt.Sprintf("%v: %v", ErrBadInput, err)})
		return
	}
	if len(req.Jobs) == 0 || len(req.Jobs) > MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorReply{
			Error: fmt.Sprintf("%v: batch of %d jobs (1..%d)", ErrBadInput, len(req.Jobs), MaxBatch),
		})
		return
	}
	// Parse and authorize each entry first; only the valid ones reach the
	// grid, with idx mapping their compacted position back. Per-entry
	// trace contexts (parallel to Jobs) get their own "gram.submit"
	// spans; malformed or missing contexts leave their entry untraced.
	entries := make([]SubmitBatchEntry, len(req.Jobs))
	var descs []jsdl.Description
	var idx []int
	var spans []*trace.Span
	var tcs []trace.SpanContext
	for i, doc := range req.Jobs {
		desc, err := jsdl.Unmarshal([]byte(doc))
		if err != nil {
			entries[i].Error = fmt.Sprintf("%v: %v", ErrBadInput, err)
			continue
		}
		if desc.Owner != id {
			entries[i].Error = fmt.Sprintf("%v: description owner %q, authenticated %q", ErrDenied, desc.Owner, id)
			continue
		}
		var tc trace.SpanContext
		if i < len(req.Traces) {
			tc, _ = trace.Parse(req.Traces[i])
		}
		sp := s.startSubmitSpan(tc, true)
		descs = append(descs, *desc)
		idx = append(idx, i)
		spans = append(spans, sp)
		tcs = append(tcs, sp.Context())
	}
	jobs, errs := s.grid.SubmitManyTraced(descs, tcs)
	for k, i := range idx {
		if errs[k] != nil {
			entries[i].Error = errs[k].Error()
			spans[k].Error(errs[k].Error())
			spans[k].End()
			continue
		}
		entries[i].JobID = jobs[k].ID
		spans[k].Set("site", jobs[k].Site)
		spans[k].Set("job_id", jobs[k].ID)
		spans[k].End()
	}
	writeJSON(w, http.StatusOK, submitBatchReply{Entries: entries})
}

// statusBatch answers one status poll for many jobs at once (token
// signed over the body, like submit). Failures are reported per entry:
// an unknown or foreign job yields an entry with Error set and never
// fails the batch.
func (s *Server) statusBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBody+1))
	if err != nil || len(body) > MaxBody {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "gram: bad body"})
		return
	}
	id, err := s.authenticate(r, body)
	if err != nil {
		writeJSON(w, http.StatusForbidden, errorReply{Error: err.Error()})
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: fmt.Sprintf("%v: %v", ErrBadInput, err)})
		return
	}
	if len(req.Jobs) == 0 || len(req.Jobs) > MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorReply{
			Error: fmt.Sprintf("%v: batch of %d jobs (1..%d)", ErrBadInput, len(req.Jobs), MaxBatch),
		})
		return
	}
	jobs, errs := s.grid.Jobs(req.Jobs)
	entries := make([]BatchEntry, len(req.Jobs))
	for i, jobID := range req.Jobs {
		entries[i].JobID = jobID
		switch {
		case errs[i] != nil:
			entries[i].Error = fmt.Sprintf("%v: %s", ErrNoSuchJob, jobID)
		case jobs[i].Desc.Owner != id:
			entries[i].Error = ErrNotOwner.Error()
		default:
			st := statusOf(jobs[i])
			entries[i].State = st.State
			entries[i].Message = st.Message
			entries[i].Site = st.Site
			entries[i].OutputVersion = jobs[i].StdoutVersion()
		}
	}
	writeJSON(w, http.StatusOK, BatchReply{Entries: entries})
}

// withJob authenticates (token over "job:<id>"), resolves and authorizes
// the job, then runs fn.
func (s *Server) withJob(w http.ResponseWriter, r *http.Request, fn func(*gridsim.Job)) {
	jobID := r.URL.Query().Get("job")
	id, err := s.authenticate(r, []byte("job:"+jobID))
	if err != nil {
		writeJSON(w, http.StatusForbidden, errorReply{Error: err.Error()})
		return
	}
	job, err := s.grid.Job(jobID)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorReply{Error: fmt.Sprintf("%v: %s", ErrNoSuchJob, jobID)})
		return
	}
	if job.Desc.Owner != id {
		writeJSON(w, http.StatusForbidden, errorReply{Error: ErrNotOwner.Error()})
		return
	}
	fn(job)
}

// DefaultWaitTimeout bounds one long-poll round.
const DefaultWaitTimeout = 30 * time.Second

// wait is the long-poll extension: it blocks until the job reaches a
// terminal state or the requested timeout elapses, then returns the
// status. The paper's implementation could not retrieve job status and
// fell back to tentative output polling; this endpoint is the fix that
// 2010-era gatekeepers lacked, benchmarked against the workaround in the
// poll-interval ablation.
func (s *Server) wait(w http.ResponseWriter, r *http.Request) {
	s.withJob(w, r, func(j *gridsim.Job) {
		timeout := DefaultWaitTimeout
		if t := r.URL.Query().Get("timeout_s"); t != "" {
			if secs, err := strconv.Atoi(t); err == nil && secs > 0 {
				timeout = time.Duration(secs) * time.Second
			}
		}
		select {
		case <-j.Done():
		case <-s.clock.After(timeout):
		}
		writeJSON(w, http.StatusOK, statusOf(j))
	})
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	s.withJob(w, r, func(j *gridsim.Job) {
		site, err := s.grid.Site(j.Site)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorReply{Error: err.Error()})
			return
		}
		if err := site.Cancel(j.ID); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorReply{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, statusOf(j))
	})
}

func (s *Server) sites(w http.ResponseWriter, r *http.Request) {
	if _, err := s.authenticate(r, []byte("sites")); err != nil {
		writeJSON(w, http.StatusForbidden, errorReply{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.grid.Stats())
}

// usage reports the authenticated caller's accounting (jobs run and
// core-seconds consumed per site) — what allocations are billed against.
func (s *Server) usage(w http.ResponseWriter, r *http.Request) {
	id, err := s.authenticate(r, []byte("usage"))
	if err != nil {
		writeJSON(w, http.StatusForbidden, errorReply{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.grid.Usage(id))
}

func statusOf(j *gridsim.Job) StatusReply {
	return StatusReply{
		JobID:   j.ID,
		State:   j.State().String(),
		Message: j.ExitMessage(),
		Site:    j.Site,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Client is the hand-rolled gatekeeper client.
type Client struct {
	// BaseURL is the gatekeeper root, e.g. "http://grid-host:2119".
	BaseURL string
	// Cred signs every request.
	Cred *xsec.Credential
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
	// Trace, when non-empty, rides every request as the X-Grid-Trace
	// header so the gatekeeper parents its spans under the caller's.
	Trace string
}

// setTrace stamps the propagation header on an outgoing request.
func (c *Client) setTrace(req *http.Request) {
	if c.Trace != "" {
		req.Header.Set(trace.Header, c.Trace)
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP == nil {
		return http.DefaultClient
	}
	return c.HTTP
}

func (c *Client) sign(msg []byte) (string, error) {
	tok, err := c.Cred.Sign(msg)
	if err != nil {
		return "", err
	}
	return xsec.EncodeSigned(tok)
}

// Submit sends the description and returns the job ID.
func (c *Client) Submit(desc *jsdl.Description) (string, error) {
	body, err := jsdl.Marshal(desc)
	if err != nil {
		return "", err
	}
	tok, err := c.sign(body)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/gram/submit", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set(TokenHeader, tok)
	req.Header.Set("Content-Type", "text/xml")
	var reply SubmitReply
	if err := c.do(req, &reply); err != nil {
		return "", err
	}
	return reply.JobID, nil
}

// SubmitBatch submits many descriptions in ⌈n/MaxBatch⌉ round-trips
// instead of one per job. Entries come back parallel to descs;
// per-description failures (including local marshal failures) are
// reported in each entry's Error field, so one bad description never
// fails the rest.
func (c *Client) SubmitBatch(descs []*jsdl.Description) ([]SubmitBatchEntry, error) {
	return c.SubmitBatchTraced(descs, nil)
}

// SubmitBatchTraced is SubmitBatch with one trace-context wire string
// per description (parallel to descs, shorter or nil allowed); each
// non-empty entry parents that job's gatekeeper span.
func (c *Client) SubmitBatchTraced(descs []*jsdl.Description, traces []string) ([]SubmitBatchEntry, error) {
	entries := make([]SubmitBatchEntry, len(descs))
	// Marshal everything first; failures stay local to their entry and
	// idx maps each shippable document back to its description.
	var docs, tcs []string
	anyTrace := false
	var idx []int
	for i, desc := range descs {
		body, err := jsdl.Marshal(desc)
		if err != nil {
			entries[i].Error = fmt.Sprintf("%v: %v", ErrBadInput, err)
			continue
		}
		docs = append(docs, string(body))
		t := ""
		if i < len(traces) {
			t = traces[i]
		}
		anyTrace = anyTrace || t != ""
		tcs = append(tcs, t)
		idx = append(idx, i)
	}
	for start := 0; start < len(docs); start += MaxBatch {
		end := min(start+MaxBatch, len(docs))
		breq := submitBatchRequest{Jobs: docs[start:end]}
		if anyTrace {
			breq.Traces = tcs[start:end]
		}
		body, err := json.Marshal(breq)
		if err != nil {
			return nil, err
		}
		tok, err := c.sign(body)
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/gram/submit-batch", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set(TokenHeader, tok)
		req.Header.Set("Content-Type", "application/json")
		var reply submitBatchReply
		if err := c.do(req, &reply); err != nil {
			return nil, err
		}
		if len(reply.Entries) != end-start {
			return nil, fmt.Errorf("%w: batch answered %d of %d entries", ErrBadInput, len(reply.Entries), end-start)
		}
		for k, e := range reply.Entries {
			entries[idx[start+k]] = e
		}
	}
	return entries, nil
}

// Status polls the job state.
func (c *Client) Status(jobID string) (*StatusReply, error) {
	var reply StatusReply
	if err := c.jobGet("/gram/status", jobID, nil, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Output fetches the job's stdout snapshot — called repeatedly by the
// tentative poller.
func (c *Client) Output(jobID string) (string, error) {
	raw, err := c.jobGetRaw("/gram/output", jobID, nil)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// StatusBatch fetches many job statuses (plus output versions) in
// ⌈len(jobIDs)/MaxBatch⌉ round-trips instead of one per job. Entries
// come back parallel to jobIDs; per-job failures are reported in each
// entry's Error field, so one bad job never fails the rest.
func (c *Client) StatusBatch(jobIDs []string) ([]BatchEntry, error) {
	entries := make([]BatchEntry, 0, len(jobIDs))
	for start := 0; start < len(jobIDs); start += MaxBatch {
		end := min(start+MaxBatch, len(jobIDs))
		body, err := json.Marshal(batchRequest{Jobs: jobIDs[start:end]})
		if err != nil {
			return nil, err
		}
		tok, err := c.sign(body)
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/gram/status-batch", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set(TokenHeader, tok)
		req.Header.Set("Content-Type", "application/json")
		var reply BatchReply
		if err := c.do(req, &reply); err != nil {
			return nil, err
		}
		if len(reply.Entries) != end-start {
			return nil, fmt.Errorf("%w: batch answered %d of %d entries", ErrBadInput, len(reply.Entries), end-start)
		}
		entries = append(entries, reply.Entries...)
	}
	return entries, nil
}

// OutputIfChanged fetches stdout only when the job's output version
// differs from since (If-None-Match on the version ETag). When the
// snapshot is unchanged the reply is 304 — zero body bytes — and
// changed is false. On a fetch, version is the served snapshot's
// version, to be passed back as since next time.
func (c *Client) OutputIfChanged(jobID string, since uint64) (out string, version uint64, changed bool, err error) {
	req, err := c.jobRequest("/gram/output", jobID, nil)
	if err != nil {
		return "", 0, false, err
	}
	req.Header.Set("If-None-Match", outputETag(since))
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		io.Copy(io.Discard, resp.Body)
		return "", since, false, nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, gridsim.MaxJobOutputBytes+1))
	if err != nil {
		return "", 0, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", 0, false, decodeError(resp.StatusCode, body)
	}
	version = since
	if v, ok := parseOutputETag(resp.Header.Get("ETag")); ok {
		version = v
	}
	return string(body), version, true, nil
}

// outputETag formats an output version as the entity tag served by
// /gram/output.
func outputETag(v uint64) string { return fmt.Sprintf(`"v%d"`, v) }

// parseOutputETag inverts outputETag.
func parseOutputETag(tag string) (uint64, bool) {
	if len(tag) < 4 || tag[0] != '"' || tag[1] != 'v' || tag[len(tag)-1] != '"' {
		return 0, false
	}
	v, err := strconv.ParseUint(tag[2:len(tag)-1], 10, 64)
	return v, err == nil
}

// OutputFile fetches a named output artifact.
func (c *Client) OutputFile(jobID, name string) ([]byte, error) {
	return c.jobGetRaw("/gram/outfile", jobID, map[string]string{"name": name})
}

// Cancel stops the job.
func (c *Client) Cancel(jobID string) (*StatusReply, error) {
	tok, err := c.sign([]byte("job:" + jobID))
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/gram/cancel?job="+jobID, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(TokenHeader, tok)
	var reply StatusReply
	if err := c.do(req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Sites fetches grid-wide scheduler statistics.
func (c *Client) Sites() ([]gridsim.SiteStats, error) {
	tok, err := c.sign([]byte("sites"))
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/gram/sites", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(TokenHeader, tok)
	var reply []gridsim.SiteStats
	if err := c.do(req, &reply); err != nil {
		return nil, err
	}
	return reply, nil
}

// Wait long-polls the gatekeeper: one request that blocks server-side
// until the job is terminal or timeout elapses. Callers loop until the
// returned state is terminal.
func (c *Client) Wait(jobID string, timeout time.Duration) (*StatusReply, error) {
	secs := int(timeout / time.Second)
	if secs <= 0 {
		secs = 1
	}
	var reply StatusReply
	err := c.jobGet("/gram/wait", jobID, map[string]string{"timeout_s": strconv.Itoa(secs)}, &reply)
	if err != nil {
		return nil, err
	}
	return &reply, nil
}

// Usage fetches the caller's per-site accounting.
func (c *Client) Usage() ([]gridsim.SiteUsage, error) {
	tok, err := c.sign([]byte("usage"))
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/gram/usage", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(TokenHeader, tok)
	var reply []gridsim.SiteUsage
	if err := c.do(req, &reply); err != nil {
		return nil, err
	}
	return reply, nil
}

// WaitTerminal polls Status until the job is terminal or the deadline
// passes, using the given poll interval on clock. This is deliberately
// the paper's inefficient pattern — there are no callbacks.
func (c *Client) WaitTerminal(jobID string, clock vtime.Clock, interval, timeout time.Duration) (*StatusReply, error) {
	if clock == nil {
		clock = vtime.Real{}
	}
	deadline := clock.Now().Add(timeout)
	for {
		st, err := c.Status(jobID)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "DONE", "FAILED", "CANCELLED", "TIMEOUT":
			return st, nil
		}
		if clock.Now().After(deadline) {
			return st, fmt.Errorf("gram: job %s not terminal after %v", jobID, timeout)
		}
		clock.Sleep(interval)
	}
}

func (c *Client) jobGet(path, jobID string, extra map[string]string, out any) error {
	req, err := c.jobRequest(path, jobID, extra)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) jobGetRaw(path, jobID string, extra map[string]string) ([]byte, error) {
	req, err := c.jobRequest(path, jobID, extra)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, gridsim.MaxJobOutputBytes+1))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp.StatusCode, body)
	}
	return body, nil
}

func (c *Client) jobRequest(path, jobID string, extra map[string]string) (*http.Request, error) {
	tok, err := c.sign([]byte("job:" + jobID))
	if err != nil {
		return nil, err
	}
	url := c.BaseURL + path + "?job=" + jobID
	for k, v := range extra {
		url += "&" + k + "=" + v
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(TokenHeader, tok)
	c.setTrace(req)
	return req, nil
}

func (c *Client) do(req *http.Request, out any) error {
	c.setTrace(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("gram: %s: %w", req.URL.Path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxBody))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp.StatusCode, body)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// decodeError maps server errors back to sentinel errors where possible.
func decodeError(status int, body []byte) error {
	var er errorReply
	msg := string(body)
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		msg = er.Error
	}
	var sentinel error
	switch {
	case status == http.StatusForbidden && msg == ErrNotOwner.Error():
		sentinel = ErrNotOwner
	case status == http.StatusForbidden:
		sentinel = ErrDenied
	case status == http.StatusNotFound:
		sentinel = ErrNoSuchJob
	default:
		sentinel = ErrBadInput
	}
	return fmt.Errorf("%w: http %d: %s", sentinel, status, msg)
}
