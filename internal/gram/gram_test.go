package gram

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gridsim"
	"repro/internal/jsdl"
	"repro/internal/vtime"
	"repro/internal/xsec"
)

var t0 = time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)

type fixture struct {
	grid   *gridsim.Grid
	clock  *vtime.Scaled
	srv    *Server
	client *Client
	other  *Client
	alice  string
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clk := vtime.NewScaled(20000)
	ca, err := xsec.NewCA("GridCA", clk.Now(), 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := ca.IssueUser("alice", clk.Now(), 365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := ca.IssueUser("bob", clk.Now(), 365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := gridsim.New(clk,
		gridsim.SiteConfig{Name: "siteA", Nodes: 2, CoresPerNode: 4},
		gridsim.SiteConfig{Name: "siteB", Nodes: 1, CoresPerNode: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(grid, xsec.NewTrustStore(ca.Cert), clk)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	// Stage a few programs for alice on siteA.
	siteA, _ := grid.Site("siteA")
	siteA.Store().Put(alice.Subject(), "hello.gsh", []byte("echo hello\ncompute 500ms\n"))
	siteA.Store().Put(alice.Subject(), "slow.gsh", []byte("emit 500ms 100 tick\n"))
	siteA.Store().Put(alice.Subject(), "writer.gsh", []byte("write result.dat 64\necho ok\n"))
	return &fixture{
		grid:   grid,
		clock:  clk,
		srv:    srv,
		client: &Client{BaseURL: hs.URL, Cred: alice},
		other:  &Client{BaseURL: hs.URL, Cred: bob},
		alice:  alice.Subject(),
	}
}

func (f *fixture) desc(exe string) *jsdl.Description {
	return &jsdl.Description{Owner: f.alice, Executable: exe, Site: "siteA"}
}

func TestSubmitAndWait(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "siteA:job-") {
		t.Fatalf("job id %q", id)
	}
	st, err := f.client.WaitTerminal(id, f.clock, time.Second, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "DONE" {
		t.Fatalf("state %s: %s", st.State, st.Message)
	}
	out, err := f.client.Output(id)
	if err != nil {
		t.Fatal(err)
	}
	if out != "hello\n" {
		t.Fatalf("output %q", out)
	}
}

func TestOutputFileRetrieval(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("writer.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.WaitTerminal(id, f.clock, time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	data, err := f.client.OutputFile(id, "result.dat")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 64 {
		t.Fatalf("artifact %d bytes", len(data))
	}
	if _, err := f.client.OutputFile(id, "ghost.dat"); !errors.Is(err, ErrNoSuchJob) {
		// 404 for a missing artifact maps to the not-found sentinel.
		t.Fatalf("got %v", err)
	}
}

func TestTentativeOutputPollingSeesPartialOutput(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("slow.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	// Poll until some output appears while the job is still running —
	// the paper's workaround behaviour.
	deadline := time.Now().Add(5 * time.Second)
	var partial string
	for {
		st, err := f.client.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := f.client.Output(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "RUNNING" && strings.Contains(out, "tick") {
			partial = out
			break
		}
		if st.State == "DONE" || time.Now().After(deadline) {
			t.Skip("job finished before a mid-run poll landed; timing too coarse")
		}
		time.Sleep(time.Millisecond)
	}
	full, err := f.client.WaitTerminal(id, f.clock, time.Second, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if full.State != "DONE" {
		t.Fatalf("state %s", full.State)
	}
	final, _ := f.client.Output(id)
	if len(final) <= len(partial) {
		t.Fatalf("final output (%d bytes) not longer than partial (%d)", len(final), len(partial))
	}
}

func TestCancel(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("slow.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st, err := f.client.WaitTerminal(id, f.clock, time.Second, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "CANCELLED" {
		t.Fatalf("state %s", st.State)
	}
}

func TestOwnershipEnforced(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.other.Status(id); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("got %v", err)
	}
	if _, err := f.other.Output(id); err == nil {
		t.Fatal("bob read alice's output")
	}
	if _, err := f.other.Cancel(id); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("got %v", err)
	}
}

func TestStatusBatch(t *testing.T) {
	f := newFixture(t)
	id1, err := f.client.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := f.client.Submit(f.desc("writer.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.WaitTerminal(id1, f.clock, time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.WaitTerminal(id2, f.clock, time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	entries, err := f.client.StatusBatch([]string{id1, "siteA:job-999999", id2})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("%d entries", len(entries))
	}
	if entries[0].JobID != id1 || entries[0].State != "DONE" || entries[0].Error != "" {
		t.Fatalf("entry 0: %+v", entries[0])
	}
	if entries[0].OutputVersion == 0 {
		t.Fatalf("hello.gsh emitted output but version is 0")
	}
	if entries[1].Error == "" || entries[1].State != "" {
		t.Fatalf("bad job did not error per-entry: %+v", entries[1])
	}
	if entries[2].JobID != id2 || entries[2].State != "DONE" || entries[2].Error != "" {
		t.Fatalf("entry 2 after bad entry: %+v", entries[2])
	}
}

func TestStatusBatchOwnershipPerEntry(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := f.other.StatusBatch([]string{id})
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Error == "" || entries[0].State != "" {
		t.Fatalf("bob read alice's job in a batch: %+v", entries[0])
	}
}

func TestStatusBatchRejectsEmpty(t *testing.T) {
	f := newFixture(t)
	// A zero-length batch is degenerate client-side (no chunks, no
	// round-trips, empty result).
	entries, err := f.client.StatusBatch(nil)
	if err != nil || len(entries) != 0 {
		t.Fatalf("entries %v err %v", entries, err)
	}
}

func TestConditionalOutputFetch(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.WaitTerminal(id, f.clock, time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	out, ver, changed, err := f.client.OutputIfChanged(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || out != "hello\n" || ver == 0 {
		t.Fatalf("first fetch: changed=%v out=%q ver=%d", changed, out, ver)
	}
	// Re-fetch at the served version: 304, zero bytes.
	out2, ver2, changed2, err := f.client.OutputIfChanged(id, ver)
	if err != nil {
		t.Fatal(err)
	}
	if changed2 || out2 != "" || ver2 != ver {
		t.Fatalf("unchanged fetch: changed=%v out=%q ver=%d", changed2, out2, ver2)
	}
	// The batch reply advertises the same version the ETag carries.
	entries, err := f.client.StatusBatch([]string{id})
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].OutputVersion != ver {
		t.Fatalf("batch version %d, ETag version %d", entries[0].OutputVersion, ver)
	}
}

func TestConditionalOutputSeesNewOutput(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("slow.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	// Poll conditionally until output appears, then confirm a later poll
	// at the same version returns 304 or fresh output with a higher
	// version — never a stale snapshot.
	deadline := time.Now().Add(5 * time.Second)
	var ver uint64
	for {
		out, v, changed, err := f.client.OutputIfChanged(id, ver)
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			if v <= ver {
				t.Fatalf("version did not advance: %d -> %d", ver, v)
			}
			if !strings.Contains(out, "tick") {
				t.Fatalf("changed fetch with output %q", out)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no output change observed")
		}
		time.Sleep(time.Millisecond)
	}
	f.client.Cancel(id)
}

func TestSubmitOwnerMustMatchIdentity(t *testing.T) {
	f := newFixture(t)
	d := f.desc("hello.gsh") // owner = alice
	if _, err := f.other.Submit(d); !errors.Is(err, ErrDenied) {
		t.Fatalf("got %v", err)
	}
}

func TestSubmitUnstagedExecutable(t *testing.T) {
	f := newFixture(t)
	if _, err := f.client.Submit(f.desc("ghost.gsh")); !errors.Is(err, ErrBadInput) {
		t.Fatalf("got %v", err)
	}
}

func TestUnauthenticatedRejected(t *testing.T) {
	f := newFixture(t)
	bare := &Client{BaseURL: f.client.BaseURL, Cred: &xsec.Credential{}}
	if _, err := bare.Submit(f.desc("hello.gsh")); err == nil {
		t.Fatal("credential-less submit accepted")
	}
}

func TestExpiredProxyRejected(t *testing.T) {
	f := newFixture(t)
	// A proxy that expires in 1 virtual second at scale 20000 is long
	// gone by the time the request lands.
	shortProxy, err := f.client.Cred.Delegate(f.clock.Now(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // > 1s virtual
	expired := &Client{BaseURL: f.client.BaseURL, Cred: shortProxy}
	if _, err := expired.Submit(f.desc("hello.gsh")); !errors.Is(err, ErrDenied) {
		t.Fatalf("got %v", err)
	}
}

func TestStatusOfUnknownJob(t *testing.T) {
	f := newFixture(t)
	if _, err := f.client.Status("siteA:job-999999"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("got %v", err)
	}
}

func TestSites(t *testing.T) {
	f := newFixture(t)
	stats, err := f.client.Sites()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats[0].Name != "siteA" {
		t.Fatalf("stats %+v", stats)
	}
}

func TestUsageAccounting(t *testing.T) {
	f := newFixture(t)
	// Before running anything: empty usage.
	usage, err := f.client.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if len(usage) != 0 {
		t.Fatalf("usage %+v", usage)
	}
	id, err := f.client.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.WaitTerminal(id, f.clock, time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	usage, err = f.client.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if len(usage) != 1 || usage[0].Site != "siteA" {
		t.Fatalf("usage %+v", usage)
	}
	u := usage[0].Usage
	if u.Jobs != 1 || u.CPUSeconds < 0.4 {
		t.Fatalf("owner usage %+v (hello.gsh computes 500ms)", u)
	}
	// Bob's usage is separate — and empty.
	bobUsage, err := f.other.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if len(bobUsage) != 0 {
		t.Fatalf("bob's usage %+v", bobUsage)
	}
}

func TestWaitTerminalTimeout(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("slow.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.client.WaitTerminal(id, f.clock, time.Second, 2*time.Second)
	if err == nil || !strings.Contains(err.Error(), "not terminal") {
		t.Fatalf("got %v", err)
	}
	f.client.Cancel(id)
}

func TestProxySubmission(t *testing.T) {
	f := newFixture(t)
	proxy, err := f.client.Cred.Delegate(f.clock.Now(), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxied := &Client{BaseURL: f.client.BaseURL, Cred: proxy}
	id, err := proxied.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := proxied.WaitTerminal(id, f.clock, time.Second, time.Hour)
	if err != nil || st.State != "DONE" {
		t.Fatalf("proxied job: %v %v", st, err)
	}
}

func TestUnknownEndpoint(t *testing.T) {
	f := newFixture(t)
	resp, err := f.client.httpClient().Get(f.client.BaseURL + "/gram/bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSubmitBatch(t *testing.T) {
	f := newFixture(t)
	entries, err := f.client.SubmitBatch([]*jsdl.Description{
		f.desc("hello.gsh"),
		f.desc("ghost.gsh"), // never staged: per-entry rejection
		f.desc("writer.gsh"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("%d entries", len(entries))
	}
	if entries[0].JobID == "" || entries[0].Error != "" {
		t.Fatalf("entry 0: %+v", entries[0])
	}
	if entries[1].JobID != "" || !strings.Contains(entries[1].Error, "not staged") {
		t.Fatalf("unstaged entry did not error per-entry: %+v", entries[1])
	}
	if entries[2].JobID == "" || entries[2].Error != "" {
		t.Fatalf("entry 2 after bad entry: %+v", entries[2])
	}
	// Both accepted jobs actually run to completion.
	for _, id := range []string{entries[0].JobID, entries[2].JobID} {
		st, err := f.client.WaitTerminal(id, f.clock, time.Second, time.Hour)
		if err != nil || st.State != "DONE" {
			t.Fatalf("job %s: %+v err %v", id, st, err)
		}
	}
}

func TestSubmitBatchOwnershipPerEntry(t *testing.T) {
	f := newFixture(t)
	// bob ships a description claiming alice's identity: the forged entry
	// is rejected, bob's own (unstaged) entry errors independently.
	forged := f.desc("hello.gsh") // Owner = alice
	entries, err := f.other.SubmitBatch([]*jsdl.Description{forged})
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].JobID != "" || !strings.Contains(entries[0].Error, "description owner") {
		t.Fatalf("forged owner not rejected per-entry: %+v", entries[0])
	}
}

func TestSubmitBatchEmpty(t *testing.T) {
	f := newFixture(t)
	// A zero-length batch is degenerate client-side (no chunks, no
	// round-trips, empty result).
	entries, err := f.client.SubmitBatch(nil)
	if err != nil || len(entries) != 0 {
		t.Fatalf("entries %v err %v", entries, err)
	}
}

// countingTransport counts POSTs per path on their way to the wrapped
// round-tripper.
type countingTransport struct {
	base http.RoundTripper
	mu   sync.Mutex
	hits map[string]int
}

func (c *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	if c.hits == nil {
		c.hits = map[string]int{}
	}
	c.hits[req.URL.Path]++
	c.mu.Unlock()
	return c.base.RoundTrip(req)
}

func TestSubmitBatchChunksAtMaxBatch(t *testing.T) {
	f := newFixture(t)
	ct := &countingTransport{base: http.DefaultTransport}
	f.client.HTTP = &http.Client{Transport: ct}
	n := MaxBatch + 44 // 300: two chunks
	descs := make([]*jsdl.Description, n)
	for i := range descs {
		d := f.desc("hello.gsh")
		d.WallTime = time.Hour // queue depth exceeds the slots; give slack
		descs[i] = d
	}
	entries, err := f.client.SubmitBatch(descs)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("%d entries, want %d", len(entries), n)
	}
	seen := map[string]bool{}
	for i, e := range entries {
		if e.Error != "" || e.JobID == "" || seen[e.JobID] {
			t.Fatalf("entry %d: %+v", i, e)
		}
		seen[e.JobID] = true
	}
	want := (n + MaxBatch - 1) / MaxBatch
	ct.mu.Lock()
	got := ct.hits["/gram/submit-batch"]
	ct.mu.Unlock()
	if got != want {
		t.Fatalf("%d descriptions cost %d round-trips, want ceil(n/MaxBatch) = %d", n, got, want)
	}
}

func TestSubmitBatchOversizedRejectedServerSide(t *testing.T) {
	f := newFixture(t)
	// Drive the endpoint directly (the client never builds an oversized
	// chunk): > MaxBatch jobs in one request must be refused.
	docs := make([]string, MaxBatch+1)
	doc, err := jsdl.Marshal(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range docs {
		docs[i] = string(doc)
	}
	body, err := json.Marshal(submitBatchRequest{Jobs: docs})
	if err != nil {
		t.Fatal(err)
	}
	tok, err := f.client.sign(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, f.client.BaseURL+"/gram/submit-batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TokenHeader, tok)
	var reply submitBatchReply
	if err := f.client.do(req, &reply); !errors.Is(err, ErrBadInput) {
		t.Fatalf("oversized batch: %v", err)
	}
}
