package gram

import (
	"testing"
	"time"
)

func TestWaitLongPollReturnsTerminal(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	// One long-poll round with a generous timeout observes completion.
	st, err := f.client.Wait(id, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "DONE" {
		t.Fatalf("state %s: %s", st.State, st.Message)
	}
}

func TestWaitLongPollTimesOutOnRunningJob(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("slow.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	// A short wait round returns RUNNING (or QUEUED) without blocking to
	// completion.
	st, err := f.client.Wait(id, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == "DONE" || st.State == "FAILED" {
		t.Fatalf("slow job already terminal: %s", st.State)
	}
	f.client.Cancel(id)
}

func TestWaitAuthz(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.other.Wait(id, time.Second); err == nil {
		t.Fatal("bob waited on alice's job")
	}
}

func TestWaitLoopUntilTerminal(t *testing.T) {
	f := newFixture(t)
	id, err := f.client.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		st, err := f.client.Wait(id, 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "DONE":
			return
		case "FAILED", "CANCELLED", "TIMEOUT":
			t.Fatalf("unexpected terminal %s: %s", st.State, st.Message)
		}
	}
	t.Fatal("job never finished across 50 wait rounds")
}
