package gram

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/xsec"
)

// readUntilState drains frames until one announces jobID in state want,
// returning every frame read (including the matching one).
func readUntilState(t *testing.T, es *EventStream, jobID, want string) []EventFrame {
	t.Helper()
	var frames []EventFrame
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		f, err := es.Next()
		if err != nil {
			t.Fatalf("stream died after %d frames: %v", len(frames), err)
		}
		frames = append(frames, f)
		if f.Event != EventState {
			continue
		}
		d := decodeEventData(t, f)
		if d.JobID == jobID && d.State == want {
			return frames
		}
	}
	t.Fatalf("no %s frame for %s in %d frames", want, jobID, len(frames))
	return nil
}

func decodeEventData(t *testing.T, f EventFrame) EventData {
	t.Helper()
	var d EventData
	if err := json.Unmarshal(f.Data, &d); err != nil {
		t.Fatalf("frame %+v: %v", f, err)
	}
	return d
}

func TestEventStreamCarriesJobLifecycle(t *testing.T) {
	f := newFixture(t)
	// One virtual hour between keepalives: the lifecycle frames arrive
	// long before the first heartbeat at scale 20000.
	f.srv.SetHeartbeatInterval(time.Hour)
	es, err := f.client.Events("sess-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	if es.Heartbeat != time.Hour {
		t.Fatalf("negotiated heartbeat %v", es.Heartbeat)
	}
	id, err := f.client.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	frames := readUntilState(t, es, id, "DONE")
	var sawRunning, sawOutput bool
	var lastID uint64
	for _, fr := range frames {
		if fr.ID > 0 {
			if fr.ID <= lastID {
				t.Fatalf("frame IDs not monotonic: %d after %d", fr.ID, lastID)
			}
			lastID = fr.ID
		}
		switch fr.Event {
		case EventState:
			d := decodeEventData(t, fr)
			if d.JobID == id && d.State == "RUNNING" {
				sawRunning = true
			}
			if d.Site != "siteA" || d.AtUnixNano == 0 {
				t.Fatalf("state frame missing site/timestamp: %+v", d)
			}
		case EventOutput:
			d := decodeEventData(t, fr)
			if d.JobID == id && d.OutputVersion > 0 {
				sawOutput = true
			}
		}
	}
	if !sawRunning || !sawOutput {
		t.Fatalf("lifecycle incomplete: running=%v output=%v", sawRunning, sawOutput)
	}
	// The terminal frame's version matches the authoritative snapshot.
	last := decodeEventData(t, frames[len(frames)-1])
	_, ver, _, err := f.client.OutputIfChanged(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if last.OutputVersion != ver {
		t.Fatalf("terminal frame version %d, ETag version %d", last.OutputVersion, ver)
	}
}

func TestEventStreamCursorResume(t *testing.T) {
	f := newFixture(t)
	f.srv.SetHeartbeatInterval(time.Hour)
	es, err := f.client.Events("sess-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := f.client.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	frames := readUntilState(t, es, id1, "DONE")
	cursor := frames[len(frames)-1].ID
	es.Close()

	// Everything after the cursor belongs to the second job only.
	id2, err := f.client.Submit(f.desc("writer.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.WaitTerminal(id2, f.clock, time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	es2, err := f.client.Events("sess-1", cursor)
	if err != nil {
		t.Fatal(err)
	}
	defer es2.Close()
	for _, fr := range readUntilState(t, es2, id2, "DONE") {
		if fr.Event == EventResync {
			t.Fatal("in-window cursor forced a resync")
		}
		if fr.ID > 0 && fr.ID <= cursor {
			t.Fatalf("replayed frame %d at or before cursor %d", fr.ID, cursor)
		}
		if fr.Event == EventState || fr.Event == EventOutput {
			if d := decodeEventData(t, fr); d.JobID == id1 {
				t.Fatalf("job 1 frame replayed past its cursor: %+v", d)
			}
		}
	}
}

func TestEventStreamBogusCursorTriggersResync(t *testing.T) {
	f := newFixture(t)
	f.srv.SetHeartbeatInterval(time.Hour)
	// A cursor beyond anything the bus ever issued (e.g. from a previous
	// grid incarnation) cannot be resumed: the first frame after hello
	// must order a resync.
	es, err := f.client.Events("sess-1", 999999)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	fr, err := es.Next()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Event != EventResync {
		t.Fatalf("first frame %q, want resync", fr.Event)
	}
}

func TestEventStreamCrossOwnerIsolation(t *testing.T) {
	f := newFixture(t)
	// Short heartbeat: bob's otherwise-idle stream yields keepalives that
	// bound the test, and any misrouted alice frame would arrive first.
	f.srv.SetHeartbeatInterval(2 * time.Second)
	es, err := f.other.Events("bob-sess", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	id, err := f.client.Submit(f.desc("hello.gsh"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.WaitTerminal(id, f.clock, time.Second, time.Hour); err != nil {
		t.Fatal(err)
	}
	heartbeats := 0
	for heartbeats < 3 {
		fr, err := es.Next()
		if err != nil {
			t.Fatal(err)
		}
		if fr.Event == EventState || fr.Event == EventOutput {
			t.Fatalf("bob's stream carried alice's frame: %+v", fr)
		}
		if fr.Event == EventHeartbeat {
			heartbeats++
		}
	}
}

func TestEventStreamRequiresAuthentication(t *testing.T) {
	f := newFixture(t)
	bare := &Client{BaseURL: f.client.BaseURL, Cred: &xsec.Credential{}}
	if _, err := bare.Events("s", 0); err == nil {
		t.Fatal("credential-less stream accepted")
	}
	// A token signed over the wrong message is rejected too: replaying a
	// status-endpoint token against /gram/events must fail.
	tok, err := f.client.sign([]byte("status"))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodGet, f.client.BaseURL+"/gram/events?session=s", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TokenHeader, tok)
	resp, err := f.client.httpClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-endpoint token replay: status %d", resp.StatusCode)
	}
}

func TestEventsAgainstStockServer(t *testing.T) {
	// A gatekeeper without the endpoint answers 404: the client maps that
	// to ErrNoEvents so collectors fall back to polling.
	hs := httptest.NewServer(http.NotFoundHandler())
	defer hs.Close()
	f := newFixture(t)
	stock := &Client{BaseURL: hs.URL, Cred: f.client.Cred}
	if _, err := stock.Events("s", 0); !errors.Is(err, ErrNoEvents) {
		t.Fatalf("got %v, want ErrNoEvents", err)
	}
}

func TestEventFrameRoundTrip(t *testing.T) {
	cases := []EventFrame{
		{Event: EventHeartbeat},
		{Event: EventResync},
		{ID: 1, Event: EventState, Data: []byte(`{"job_id":"siteA:job-1","state":"DONE"}`)},
		{ID: 18446744073709551615, Event: EventOutput, Data: []byte(`{"job_id":"x","output_version":7}`)},
		{Event: "hello", Data: []byte(`{"heartbeat_s":5}`)},
	}
	for _, want := range cases {
		var buf bytes.Buffer
		if err := writeEventFrame(&buf, want); err != nil {
			t.Fatal(err)
		}
		got, err := readEventFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("frame %+v: %v", want, err)
		}
		if got.ID != want.ID || got.Event != want.Event || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("round trip: %+v -> %+v", want, got)
		}
	}
}

func TestEventFrameParserTolerance(t *testing.T) {
	// Comments, unknown fields, malformed IDs and leading blank lines are
	// all skipped per the SSE contract — the frame still parses.
	raw := "\n: a comment\nretry: 3000\nid: not-a-number\nevent: state\ndata: {\"job_id\":\"j\"}\n\n"
	fr, err := readEventFrame(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if fr.ID != 0 || fr.Event != "state" || string(fr.Data) != `{"job_id":"j"}` {
		t.Fatalf("frame %+v", fr)
	}
	// Truncation mid-frame is an error, never a partial frame.
	if _, err := readEventFrame(bufio.NewReader(strings.NewReader("event: state\n"))); err == nil {
		t.Fatal("truncated frame parsed")
	}
	// An oversized line poisons the stream.
	long := "data: " + strings.Repeat("x", maxFrameLine+1) + "\n\n"
	if _, err := readEventFrame(bufio.NewReader(strings.NewReader(long))); !errors.Is(err, ErrBadInput) {
		t.Fatalf("oversized line: %v", err)
	}
}

// FuzzEventFrame feeds arbitrary bytes to the frame parser: it must
// never panic, and any frame it accepts must survive a
// serialize-reparse round trip (the degradation path for garbage is an
// error that makes the client reconnect and resync — not a wedge).
func FuzzEventFrame(f *testing.F) {
	f.Add([]byte("id: 12\nevent: state\ndata: {\"job_id\":\"siteA:job-1\",\"state\":\"DONE\"}\n\n"))
	f.Add([]byte("event: heartbeat\n\n"))
	f.Add([]byte("event: resync\n\n"))
	f.Add([]byte(": comment\nid: 99999999999999999999\nevent: output\n\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("data only, no colon\n\n"))
	f.Add([]byte("id: 3\nid: 4\ndata: a\ndata: b\nevent: x\n\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, err := readEventFrame(bufio.NewReader(bytes.NewReader(raw)))
		if err != nil {
			return // reconnect-and-resync path; only panics are bugs
		}
		var buf bytes.Buffer
		if err := writeEventFrame(&buf, fr); err != nil {
			t.Fatalf("serialize parsed frame %+v: %v", fr, err)
		}
		again, err := readEventFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("reparse %q: %v", buf.String(), err)
		}
		if again.ID != fr.ID || again.Event != fr.Event || !bytes.Equal(again.Data, fr.Data) {
			t.Fatalf("round trip drifted: %+v -> %+v", fr, again)
		}
	})
}
