package vtime

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowAdvances(t *testing.T) {
	c := Real{}
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	if !c.Now().After(a) {
		t.Fatal("real clock did not advance")
	}
}

func TestScaledRunsFaster(t *testing.T) {
	c := NewScaled(1000)
	start := c.Now()
	time.Sleep(5 * time.Millisecond)
	elapsed := c.Now().Sub(start)
	if elapsed < 2*time.Second {
		t.Fatalf("scaled clock advanced only %v for 5ms real at 1000x", elapsed)
	}
}

func TestScaledSleepIsCompressed(t *testing.T) {
	c := NewScaled(1000)
	real0 := time.Now()
	c.Sleep(2 * time.Second) // should take ~2ms real
	real := time.Since(real0)
	if real > 500*time.Millisecond {
		t.Fatalf("scaled sleep of 2s virtual took %v real", real)
	}
}

func TestScaledSleepNonPositive(t *testing.T) {
	c := NewScaled(10)
	done := make(chan struct{})
	go func() {
		c.Sleep(0)
		c.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("non-positive sleeps blocked")
	}
}

func TestScaledAfter(t *testing.T) {
	c := NewScaled(1000)
	select {
	case <-c.After(time.Second):
	case <-time.After(2 * time.Second):
		t.Fatal("After(1s virtual) did not fire within 2s real at 1000x")
	}
}

func TestScaledPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for scale 0")
		}
	}()
	NewScaled(0)
}

func TestScaledEpochIsUnixZero(t *testing.T) {
	c := NewScaled(100)
	if c.Now().Before(time.Unix(0, 0)) {
		t.Fatal("scaled now precedes epoch")
	}
	if c.Now().Sub(time.Unix(0, 0).UTC()) > time.Hour {
		t.Fatal("scaled now drifted implausibly far from epoch at start")
	}
}

func TestManualSleepBlocksUntilAdvance(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		c.Sleep(10 * time.Second)
		close(done)
	}()
	// Wait until the sleeper registers.
	for c.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("sleep returned before advance")
	default:
	}
	c.Advance(10 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleep did not return after sufficient advance")
	}
}

func TestManualPartialAdvanceKeepsWaiting(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	ch := c.After(10 * time.Second)
	c.Advance(4 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	c.Advance(6 * time.Second)
	select {
	case at := <-ch:
		if got := at.Sub(time.Unix(0, 0)); got != 10*time.Second {
			t.Fatalf("fired at +%v, want +10s", got)
		}
	case <-time.After(time.Second):
		t.Fatal("never fired")
	}
}

func TestManualAfterZeroFiresImmediately(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) should be immediately ready")
	}
}

func TestManualManySleepersReleasedTogether(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	const n = 32
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		d := time.Duration(i+1) * time.Second
		go func() {
			defer wg.Done()
			c.Sleep(d)
		}()
	}
	for c.Pending() < n {
		time.Sleep(time.Millisecond)
	}
	c.Advance(time.Duration(n) * time.Second)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("%d sleepers still pending after full advance", c.Pending())
	}
}
