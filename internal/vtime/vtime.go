// Package vtime provides clock abstractions used throughout the
// reproduction: a real clock, a scaled clock that dilates time so that
// experiments which took minutes on the paper's testbed finish in well
// under a second, and a manually stepped clock for deterministic tests.
//
// All components that wait, time out, or timestamp events take a Clock
// instead of calling the time package directly. Running the full protocol
// stack under a ScaledClock keeps every byte count and event ordering real
// while compressing wall-clock duration; this is how the figure
// experiments reproduce 60-second transfers in milliseconds.
package vtime

import (
	"sync"
	"time"
)

// Clock is the minimal time source used by every simulated and real
// component in the repository.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time after d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed directly by the time package.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// MinSleep reports the shortest sleep the OS honours accurately.
func (Real) MinSleep() time.Duration { return time.Millisecond }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Scaled is a Clock that runs Scale times faster than wall-clock time.
// A Scale of 100 means one real second covers 100 virtual seconds, so a
// component sleeping for a virtual minute blocks for 600ms of real time.
//
// The virtual epoch is fixed at construction, which makes experiment
// timelines start at t=0 regardless of wall-clock start time.
type Scaled struct {
	scale float64
	epoch time.Time // virtual time at start
	start time.Time // real time at start
}

// NewScaled returns a clock running scale× real time. scale must be
// positive; NewScaled panics otherwise because a zero or negative scale is
// always a programming error, never a runtime condition.
func NewScaled(scale float64) *Scaled {
	if scale <= 0 {
		panic("vtime: non-positive scale")
	}
	return &Scaled{
		scale: scale,
		epoch: time.Unix(0, 0).UTC(),
		start: time.Now(),
	}
}

// Scale reports the dilation factor.
func (c *Scaled) Scale() float64 { return c.scale }

// MinSleep reports the shortest virtual sleep this clock honours with
// reasonable accuracy. The OS sleeps reliably down to about a
// millisecond of real time; anything shorter is better skipped by pacing
// code and carried as debt.
func (c *Scaled) MinSleep() time.Duration {
	return time.Duration(float64(time.Millisecond) * c.scale)
}

// Now implements Clock.
func (c *Scaled) Now() time.Time {
	real := time.Since(c.start)
	return c.epoch.Add(time.Duration(float64(real) * c.scale))
}

// Sleep implements Clock. It blocks for d/scale of real time.
func (c *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) / c.scale))
}

// After implements Clock.
func (c *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	go func() {
		c.Sleep(d)
		ch <- c.Now()
	}()
	return ch
}

// Manual is a Clock advanced explicitly by tests. Sleepers block until
// Advance moves the clock past their deadline.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewManual returns a Manual clock positioned at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (c *Manual) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: it blocks until Advance pushes the clock to or
// past now+d.
func (c *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-c.After(d)
}

// After implements Clock.
func (c *Manual) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, waiter{deadline: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward by d, releasing every sleeper whose
// deadline has been reached.
func (c *Manual) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	remaining := c.waiters[:0]
	var fire []waiter
	for _, w := range c.waiters {
		if !w.deadline.After(now) {
			fire = append(fire, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	c.waiters = remaining
	c.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}

// Pending reports how many sleepers are currently blocked; useful for
// deterministic tests that advance the clock only once all actors wait.
func (c *Manual) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
