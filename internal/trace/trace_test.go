package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/vtime"
)

func TestContextRoundTrip(t *testing.T) {
	tr := NewTracer("svc", vtime.Real{}, nil)
	sp := tr.StartRoot("op")
	sc := sp.Context()
	if !sc.Valid() {
		t.Fatal("fresh span has invalid context")
	}
	got, ok := Parse(sc.String())
	if !ok || got != sc {
		t.Fatalf("round trip: %v %v != %v", ok, got, sc)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"abc",
		strings.Repeat("0", 49), // all zero digits, no dash
		strings.Repeat("0", 32) + "-" + strings.Repeat("0", 16), // valid shape, zero ids
		strings.Repeat("g", 32) + "-" + strings.Repeat("a", 16), // non-hex
		strings.Repeat("a", 32) + ":" + strings.Repeat("a", 16), // wrong separator
		strings.Repeat("a", 33) + "-" + strings.Repeat("a", 15), // misplaced dash
		strings.Repeat("a", 32) + "-" + strings.Repeat("a", 17), // too long
	}
	for _, s := range bad {
		if sc, ok := Parse(s); ok || sc.Valid() {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("x")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	// Every method must be callable on the nil span.
	sp.Set("k", "v")
	sp.SetInt("n", 42)
	sp.Error("boom")
	sp.End()
	sp.EndAt(time.Now())
	if sp.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	if tr.Collector() != nil {
		t.Fatal("nil tracer has a collector")
	}
}

// TestNoAllocationWhenOff pins the off-by-default guarantee: the no-op
// path through span start, annotate, and end allocates nothing.
func TestNoAllocationWhenOff(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.StartSpan("op", SpanContext{})
		sp.Set("k", "v")
		sp.SetInt("bytes", 4096)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f times per op", allocs)
	}
}

func TestSpanTreeAssembly(t *testing.T) {
	col := NewCollector(0, 0)
	clk := vtime.NewManual(time.Unix(100, 0))
	tr := NewTracer("svc", clk, col)

	root := tr.StartRoot("invoke")
	root.Set("ticket", "inv-1")
	clk.Advance(time.Second)
	child := tr.StartSpan("stage", root.Context())
	child.SetInt("bytes", 1024)
	clk.Advance(2 * time.Second)
	child.End()
	root.End()

	spans := col.Trace(root.Context().String()[:32])
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "invoke" || spans[0].ParentID != "" {
		t.Fatalf("root wrong: %+v", spans[0])
	}
	if spans[1].Name != "stage" || spans[1].ParentID != spans[0].SpanID {
		t.Fatalf("child not linked: %+v", spans[1])
	}
	if spans[1].DurationMS != 2000 {
		t.Fatalf("child duration %v", spans[1].DurationMS)
	}
	if spans[0].DurationMS != 3000 {
		t.Fatalf("root duration %v", spans[0].DurationMS)
	}
	if spans[1].Attrs["bytes"] != "1024" || spans[0].Attrs["ticket"] != "inv-1" {
		t.Fatalf("attrs lost: %+v %+v", spans[0].Attrs, spans[1].Attrs)
	}
}

func TestErrorStatusAndDoubleEnd(t *testing.T) {
	col := NewCollector(0, 0)
	tr := NewTracer("svc", vtime.Real{}, col)
	sp := tr.StartRoot("op")
	sp.Error("deadline exceeded")
	sp.End()
	sp.End() // second End must not record a duplicate
	spans := col.Trace(sp.Context().String()[:32])
	if len(spans) != 1 {
		t.Fatalf("double end recorded %d spans", len(spans))
	}
	if spans[0].Status != "error" || spans[0].Message != "deadline exceeded" {
		t.Fatalf("status %+v", spans[0])
	}
}

func TestUnendedSpanNotRecorded(t *testing.T) {
	col := NewCollector(0, 0)
	tr := NewTracer("svc", vtime.Real{}, col)
	sp := tr.StartRoot("abandoned")
	if got := col.Trace(sp.Context().String()[:32]); len(got) != 0 {
		t.Fatalf("unended span leaked into the collector: %+v", got)
	}
}

func TestCollectorEntryBound(t *testing.T) {
	col := NewCollector(8, 1<<30)
	tr := NewTracer("svc", vtime.Real{}, col)
	var last *Span
	for i := 0; i < 50; i++ {
		last = tr.StartRoot("op")
		last.End()
	}
	st := col.Stats()
	if st.Spans != 8 || st.Evicted != 42 {
		t.Fatalf("stats %+v", st)
	}
	// The newest span survives, the oldest are gone.
	if got := col.Trace(last.Context().String()[:32]); len(got) != 1 {
		t.Fatalf("newest span evicted: %d", len(got))
	}
}

func TestCollectorByteBound(t *testing.T) {
	col := NewCollector(1<<20, 2048)
	tr := NewTracer("svc", vtime.Real{}, col)
	for i := 0; i < 64; i++ {
		sp := tr.StartRoot("op")
		sp.Set("pad", strings.Repeat("x", 200))
		sp.End()
	}
	st := col.Stats()
	if st.Bytes > 2048 {
		t.Fatalf("byte bound exceeded: %+v", st)
	}
	if st.Evicted == 0 || st.Spans == 0 {
		t.Fatalf("bound never engaged: %+v", st)
	}
}

func TestStartSpanAtAndEndAt(t *testing.T) {
	col := NewCollector(0, 0)
	tr := NewTracer("gridsim", vtime.Real{}, col)
	t0 := time.Unix(500, 0)
	sp := tr.StartSpanAt("job.queue", SpanContext{}, t0)
	sp.EndAt(t0.Add(7 * time.Second))
	spans := col.Trace(sp.Context().String()[:32])
	if len(spans) != 1 || spans[0].DurationMS != 7000 {
		t.Fatalf("retroactive timestamps lost: %+v", spans)
	}
}

// FuzzParse is the X-Grid-Trace codec fuzz target (same rationale as
// gridftp's FuzzFtpPath: the header is decoded before authentication on
// every boundary, so malformed input must degrade to "new root trace" —
// the zero, invalid context — and never panic). Accepted inputs must
// survive a String/Parse round trip.
func FuzzParse(f *testing.F) {
	tr := NewTracer("svc", vtime.Real{}, nil)
	f.Add(tr.StartRoot("x").Context().String())
	f.Add("")
	f.Add(strings.Repeat("0", 32) + "-" + strings.Repeat("0", 16))
	f.Add(strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16))
	f.Add(strings.Repeat("A", 32) + "-" + strings.Repeat("B", 16))
	f.Add(strings.Repeat("a", 49))
	f.Add("deadbeef")
	f.Add("\x00\xff-")
	f.Fuzz(func(t *testing.T, s string) {
		sc, ok := Parse(s)
		if !ok {
			if sc.Valid() {
				t.Fatalf("Parse(%q) rejected but returned a valid context", s)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("Parse(%q) accepted an invalid context", s)
		}
		back, ok2 := Parse(sc.String())
		if !ok2 || back != sc {
			t.Fatalf("round trip broke for %q: %v %v", s, ok2, back)
		}
		// Starting a span under any accepted context must link to it.
		sp := tr.StartSpan("child", sc)
		if sp.Context().TraceID != sc.TraceID {
			t.Fatalf("child left the trace for %q", s)
		}
	})
}
