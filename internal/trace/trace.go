// Package trace is a stdlib-only distributed-tracing subsystem for the
// SaaS→JSE pipeline. Every service (portal, onServe core, MyProxy,
// GridFTP, GRAM, the grid simulator) holds a Tracer bound to one shared
// Collector; context crosses process boundaries as the X-Grid-Trace
// header ("<32-hex trace id>-<16-hex span id>"), so one invocation
// yields a single cross-service span tree with vtime timings and byte
// counts.
//
// Tracing is off by default everywhere. The entire API is nil-safe: a
// nil *Tracer returns nil *Span values, and every Span method no-ops on
// a nil receiver, so instrumented code never branches on "is tracing
// on" and the off path allocates nothing. Span starts deliberately take
// no attribute arguments (attributes are attached via Set/SetInt) so
// the disabled path never builds a varargs slice.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"time"

	"repro/internal/vtime"
)

// Header is the HTTP (and SOAP/myproxy) propagation header.
const Header = "X-Grid-Trace"

// SpanContext identifies one span within one trace. The zero value is
// invalid and means "no context": starting a span under it begins a new
// root trace, which is also the mandated degradation for malformed
// headers (parse-before-auth must never reject a request).
type SpanContext struct {
	TraceID [16]byte
	SpanID  [8]byte
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool {
	return sc.TraceID != [16]byte{} && sc.SpanID != [8]byte{}
}

// String renders the wire form "<32 hex>-<16 hex>"; invalid contexts
// render as "".
func (sc SpanContext) String() string {
	if !sc.Valid() {
		return ""
	}
	var buf [49]byte
	hex.Encode(buf[:32], sc.TraceID[:])
	buf[32] = '-'
	hex.Encode(buf[33:], sc.SpanID[:])
	return string(buf[:])
}

// Parse decodes the wire form. It is strict — exactly 32 lowercase-or-
// uppercase hex digits, a dash, 16 more — and total on malformed input:
// anything else returns the zero context and false, never a panic. This
// runs before authentication on every boundary, so "degrade to new root
// trace" is the only acceptable failure mode.
func Parse(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) != 49 || s[32] != '-' {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[:32])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[33:])); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Tracer mints spans for one named service. A nil Tracer is the "off"
// state and mints nil spans.
type Tracer struct {
	service string
	clock   vtime.Clock
	col     *Collector
}

// NewTracer returns a tracer stamping spans with the given service name,
// timing them on clock, and delivering ended spans to col.
func NewTracer(service string, clock vtime.Clock, col *Collector) *Tracer {
	if clock == nil {
		clock = vtime.Real{}
	}
	return &Tracer{service: service, clock: clock, col: col}
}

// Collector returns the tracer's span sink (nil on a nil tracer).
func (t *Tracer) Collector() *Collector {
	if t == nil {
		return nil
	}
	return t.col
}

// StartRoot begins a span in a fresh trace.
func (t *Tracer) StartRoot(name string) *Span {
	return t.start(name, SpanContext{}, time.Time{})
}

// StartSpan begins a span under parent; an invalid parent begins a new
// root trace instead (the malformed-header degradation).
func (t *Tracer) StartSpan(name string, parent SpanContext) *Span {
	return t.start(name, parent, time.Time{})
}

// StartSpanAt is StartSpan with an explicit start time, for components
// (the grid simulator's job lifecycle) that record transitions
// retroactively at exact scheduler timestamps.
func (t *Tracer) StartSpanAt(name string, parent SpanContext, at time.Time) *Span {
	return t.start(name, parent, at)
}

func (t *Tracer) start(name string, parent SpanContext, at time.Time) *Span {
	if t == nil {
		return nil
	}
	if at.IsZero() {
		at = t.clock.Now()
	}
	sp := &Span{tracer: t, name: name, start: at}
	if parent.Valid() {
		sp.ctx.TraceID = parent.TraceID
		sp.parent = parent.SpanID
	} else {
		rand.Read(sp.ctx.TraceID[:])
	}
	rand.Read(sp.ctx.SpanID[:])
	return sp
}

// Span is one timed operation. All methods no-op on a nil receiver and
// are safe for concurrent use (a watchdog may error a span while the
// poller annotates it).
type Span struct {
	tracer *Tracer
	ctx    SpanContext
	parent [8]byte
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]string
	err   bool
	msg   string
	ended bool
}

// Context returns the span's context for propagation; the zero (invalid)
// context on a nil span, so chained calls compose.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Set attaches a string attribute.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SetInt attaches an integer attribute (byte counts, poll ticks).
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.Set(key, strconv.FormatInt(value, 10))
}

// Error marks the span's status as error with the given message.
func (s *Span) Error(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.err = true
	s.msg = msg
	s.mu.Unlock()
}

// End closes the span at the tracer's current time and delivers it to
// the collector. A span ended twice is recorded once; a span never
// ended is never recorded.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tracer.clock.Now())
}

// EndAt is End with an explicit end time.
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	sd := SpanData{
		TraceID:    hex.EncodeToString(s.ctx.TraceID[:]),
		SpanID:     hex.EncodeToString(s.ctx.SpanID[:]),
		Service:    s.tracer.service,
		Name:       s.name,
		Start:      s.start,
		End:        at,
		DurationMS: float64(at.Sub(s.start)) / float64(time.Millisecond),
		Status:     "ok",
		Message:    s.msg,
	}
	if s.parent != [8]byte{} {
		sd.ParentID = hex.EncodeToString(s.parent[:])
	}
	if s.err {
		sd.Status = "error"
	}
	if len(s.attrs) > 0 {
		sd.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			sd.Attrs[k] = v
		}
	}
	s.mu.Unlock()
	if c := s.tracer.col; c != nil {
		c.add(sd)
	}
}
