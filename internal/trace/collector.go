package trace

import (
	"sort"
	"sync"
	"time"
)

// Default collector bounds. The ring is bounded twice — by entry count
// and by estimated payload bytes — mirroring core.Config's
// InvocationRetention: sustained traffic evicts the oldest spans instead
// of growing the appliance without bound.
const (
	DefaultMaxSpans = 4096
	DefaultMaxBytes = 1 << 20 // 1 MB of span payload
)

// SpanData is one recorded (ended) span, in export form.
type SpanData struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Service    string            `json:"service"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	End        time.Time         `json:"end"`
	DurationMS float64           `json:"duration_ms"`
	Status     string            `json:"status"`
	Message    string            `json:"message,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// approxBytes estimates the span's retained size for the byte bound.
func (sd *SpanData) approxBytes() int64 {
	n := 128 + len(sd.TraceID) + len(sd.SpanID) + len(sd.ParentID) +
		len(sd.Service) + len(sd.Name) + len(sd.Message)
	for k, v := range sd.Attrs {
		n += 32 + len(k) + len(v)
	}
	return int64(n)
}

// CollectorStats snapshots the ring's occupancy.
type CollectorStats struct {
	Spans   int    `json:"spans"`
	Bytes   int64  `json:"bytes"`
	Evicted uint64 `json:"evicted"`
}

// Collector is the bounded ring buffer every tracer in a deployment
// shares. In-process rigs hand one Collector to both the grid
// environment and the appliance, which is what makes the portal's
// /api/trace export a single cross-service tree.
type Collector struct {
	mu       sync.Mutex
	maxSpans int
	maxBytes int64
	ring     []SpanData
	head     int // index of the oldest entry once the ring wrapped
	n        int
	bytes    int64
	evicted  uint64
}

// NewCollector returns a collector bounded to maxSpans entries and
// maxBytes of estimated span payload; zero (or negative) values pick the
// defaults.
func NewCollector(maxSpans int, maxBytes int64) *Collector {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Collector{maxSpans: maxSpans, maxBytes: maxBytes}
}

func (c *Collector) add(sd SpanData) {
	sz := sd.approxBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring == nil {
		c.ring = make([]SpanData, c.maxSpans)
	}
	// Evict oldest-first until both bounds hold. A span larger than the
	// whole byte budget empties the ring and is still admitted: dropping
	// fresh data to preserve stale data would invert the ring's purpose.
	for c.n > 0 && (c.n == c.maxSpans || c.bytes+sz > c.maxBytes) {
		c.bytes -= c.ring[c.head].approxBytes()
		c.ring[c.head] = SpanData{}
		c.head = (c.head + 1) % c.maxSpans
		c.n--
		c.evicted++
	}
	c.ring[(c.head+c.n)%c.maxSpans] = sd
	c.n++
	c.bytes += sz
}

// Trace returns every retained span of one trace, sorted by start time
// (ties broken by span id for determinism). Depth/parent assembly is the
// consumer's job — the waterfall renderers build it from ParentID.
func (c *Collector) Trace(traceID string) []SpanData {
	c.mu.Lock()
	var out []SpanData
	for i := 0; i < c.n; i++ {
		sd := c.ring[(c.head+i)%c.maxSpans]
		if sd.TraceID == traceID {
			out = append(out, sd)
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// Stats reports the ring's current occupancy and lifetime evictions.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CollectorStats{Spans: c.n, Bytes: c.bytes, Evicted: c.evicted}
}
