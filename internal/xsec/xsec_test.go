package xsec

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)

func newCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("TestCA", t0, 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func newUser(t *testing.T, ca *CA, cn string) *Credential {
	t.Helper()
	cred, err := ca.IssueUser(cn, t0, 365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return cred
}

func TestUserChainVerifies(t *testing.T) {
	ca := newCA(t)
	alice := newUser(t, ca, "alice")
	ts := NewTrustStore(ca.Cert)
	id, err := ts.VerifyChain(alice.Chain, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if id != "/O=Repro/CN=alice" {
		t.Fatalf("identity %q", id)
	}
}

func TestProxyChainVerifies(t *testing.T) {
	ca := newCA(t)
	alice := newUser(t, ca, "alice")
	proxy, err := alice.Delegate(t0, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Cert)
	id, err := ts.VerifyChain(proxy.Chain, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if id != "/O=Repro/CN=alice" {
		t.Fatalf("proxy should speak for alice, got %q", id)
	}
	if proxy.Leaf().Kind != KindProxy {
		t.Fatal("leaf not a proxy")
	}
}

func TestNestedDelegation(t *testing.T) {
	ca := newCA(t)
	cred := newUser(t, ca, "bob")
	ts := NewTrustStore(ca.Cert)
	for i := 0; i < 3; i++ {
		next, err := cred.Delegate(t0, time.Hour)
		if err != nil {
			t.Fatalf("delegation %d: %v", i, err)
		}
		cred = next
	}
	if len(cred.Chain) != 4 {
		t.Fatalf("chain length %d, want 4", len(cred.Chain))
	}
	if id, err := ts.VerifyChain(cred.Chain, t0.Add(time.Minute)); err != nil || id != "/O=Repro/CN=bob" {
		t.Fatalf("nested chain: id=%q err=%v", id, err)
	}
}

func TestDelegationDepthLimit(t *testing.T) {
	ca := newCA(t)
	cred := newUser(t, ca, "deep")
	var err error
	for i := 0; i < MaxProxyDepth; i++ {
		cred, err = cred.Delegate(t0, time.Hour)
		if err != nil {
			t.Fatalf("delegation %d failed early: %v", i, err)
		}
	}
	if _, err = cred.Delegate(t0, time.Hour); !errors.Is(err, ErrProxyTooDeep) {
		t.Fatalf("expected depth error, got %v", err)
	}
}

func TestExpiredCertRejected(t *testing.T) {
	ca := newCA(t)
	alice := newUser(t, ca, "alice")
	ts := NewTrustStore(ca.Cert)
	late := t0.Add(2 * 365 * 24 * time.Hour)
	if _, err := ts.VerifyChain(alice.Chain, late); !errors.Is(err, ErrExpired) {
		t.Fatalf("expected expiry error, got %v", err)
	}
	early := t0.Add(-time.Hour)
	if _, err := ts.VerifyChain(alice.Chain, early); !errors.Is(err, ErrExpired) {
		t.Fatalf("expected not-yet-valid error, got %v", err)
	}
}

func TestProxyLifetimeClippedToSigner(t *testing.T) {
	ca := newCA(t)
	alice := newUser(t, ca, "alice") // valid 1 year
	proxy, err := alice.Delegate(t0, 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if proxy.Leaf().NotAfter.After(alice.Leaf().NotAfter) {
		t.Fatal("proxy outlives signer despite clipping")
	}
}

func TestTamperedProxyLifetimeRejected(t *testing.T) {
	ca := newCA(t)
	alice := newUser(t, ca, "alice")
	proxy, _ := alice.Delegate(t0, time.Hour)
	// Forge a longer lifetime without re-signing.
	proxy.Chain[0].NotAfter = alice.Leaf().NotAfter.Add(24 * time.Hour)
	ts := NewTrustStore(ca.Cert)
	if _, err := ts.VerifyChain(proxy.Chain, t0.Add(time.Minute)); err == nil {
		t.Fatal("tampered proxy accepted")
	}
}

func TestUntrustedCARejected(t *testing.T) {
	ca := newCA(t)
	other, _ := NewCA("Rogue", t0, 24*time.Hour)
	mallory := newUser(t, other, "mallory")
	ts := NewTrustStore(ca.Cert)
	if _, err := ts.VerifyChain(mallory.Chain, t0.Add(time.Minute)); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("expected untrusted error, got %v", err)
	}
}

func TestForgedSignatureRejected(t *testing.T) {
	ca := newCA(t)
	alice := newUser(t, ca, "alice")
	alice.Chain[0].Subject = "/O=Repro/CN=root" // tamper
	ts := NewTrustStore(ca.Cert)
	if _, err := ts.VerifyChain(alice.Chain, t0.Add(time.Minute)); err == nil {
		t.Fatal("tampered certificate accepted")
	}
}

func TestEmptyChain(t *testing.T) {
	ts := NewTrustStore()
	if _, err := ts.VerifyChain(nil, t0); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("got %v", err)
	}
	var c Credential
	if _, err := c.Sign([]byte("x")); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("got %v", err)
	}
	if _, err := c.Delegate(t0, time.Hour); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("got %v", err)
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	ca := newCA(t)
	alice := newUser(t, ca, "alice")
	proxy, _ := alice.Delegate(t0, time.Hour)
	ts := NewTrustStore(ca.Cert)
	msg := []byte("submit job 42")
	tok, err := proxy.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := ts.Verify(msg, tok, t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if id != "/O=Repro/CN=alice" {
		t.Fatalf("id %q", id)
	}
	if _, err := ts.Verify([]byte("submit job 43"), tok, t0.Add(time.Minute)); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("altered message accepted: %v", err)
	}
	if _, err := ts.Verify(msg, nil, t0); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("nil token: %v", err)
	}
}

func TestSignedTokenWireRoundTrip(t *testing.T) {
	ca := newCA(t)
	alice := newUser(t, ca, "alice")
	tok, _ := alice.Sign([]byte("payload"))
	enc, err := EncodeSigned(tok)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSigned(enc)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Cert)
	if _, err := ts.Verify([]byte("payload"), dec, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSignedGarbage(t *testing.T) {
	if _, err := DecodeSigned("!!not-base64!!"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeSigned("aGVsbG8="); err == nil { // valid b64, bad JSON
		t.Fatal("non-JSON accepted")
	}
}

func TestCredentialMarshalRoundTrip(t *testing.T) {
	ca := newCA(t)
	alice := newUser(t, ca, "alice")
	proxy, _ := alice.Delegate(t0, time.Hour)
	b, err := proxy.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCredential(b)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Cert)
	if _, err := ts.VerifyChain(got.Chain, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	// The decoded key must still sign verifiably.
	tok, err := got.Sign([]byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Verify([]byte("m"), tok, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
}

func TestChainWireRoundTrip(t *testing.T) {
	ca := newCA(t)
	alice := newUser(t, ca, "alice")
	enc, err := MarshalChain(alice.Chain)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := UnmarshalChain(enc)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Cert)
	if _, err := ts.VerifyChain(chain, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalChain("%%%"); err == nil {
		t.Fatal("garbage chain accepted")
	}
}

func TestIdentityHelper(t *testing.T) {
	ca := newCA(t)
	alice := newUser(t, ca, "alice")
	proxy, _ := alice.Delegate(t0, time.Hour)
	if got := Identity(proxy.Chain); got != "/O=Repro/CN=alice" {
		t.Fatalf("identity %q", got)
	}
	if got := Identity(nil); got != "" {
		t.Fatalf("empty identity %q", got)
	}
}

func TestFingerprintStableAndDistinct(t *testing.T) {
	ca := newCA(t)
	a := newUser(t, ca, "a")
	b := newUser(t, ca, "b")
	if a.Leaf().Fingerprint() != a.Leaf().Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	if a.Leaf().Fingerprint() == b.Leaf().Fingerprint() {
		t.Fatal("distinct certs share fingerprint")
	}
}

func TestKindString(t *testing.T) {
	if KindCA.String() != "ca" || KindUser.String() != "user" || KindProxy.String() != "proxy" {
		t.Fatal("kind names wrong")
	}
	if CertKind(7).String() != "kind(7)" {
		t.Fatal("unknown kind formatting")
	}
}

// Property: any message signed by a freshly delegated proxy verifies, and
// any single-byte mutation of the message does not.
func TestPropertySignedMessageIntegrity(t *testing.T) {
	ca := newCA(t)
	alice := newUser(t, ca, "alice")
	proxy, err := alice.Delegate(t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Cert)
	at := t0.Add(time.Minute)
	f := func(msg []byte, flip uint16) bool {
		tok, err := proxy.Sign(msg)
		if err != nil {
			return false
		}
		if _, err := ts.Verify(msg, tok, at); err != nil {
			return false
		}
		if len(msg) == 0 {
			return true
		}
		mut := append([]byte(nil), msg...)
		mut[int(flip)%len(mut)] ^= 0xFF
		_, err = ts.Verify(mut, tok, at)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
