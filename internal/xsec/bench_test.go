package xsec

import (
	"testing"
	"time"
)

func benchSetup(b *testing.B) (*CA, *Credential, *Credential, *TrustStore) {
	b.Helper()
	ca, err := NewCA("BenchCA", t0, 10*365*24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	user, err := ca.IssueUser("bench", t0, 365*24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	proxy, err := user.Delegate(t0, 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	return ca, user, proxy, NewTrustStore(ca.Cert)
}

func BenchmarkDelegate(b *testing.B) {
	_, user, _, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := user.Delegate(t0, time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSign(b *testing.B) {
	_, _, proxy, _ := benchSetup(b)
	msg := []byte("submit job with some payload attached to it")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifySignedProxyChain(b *testing.B) {
	_, _, proxy, ts := benchSetup(b)
	msg := []byte("submit job with some payload attached to it")
	tok, err := proxy.Sign(msg)
	if err != nil {
		b.Fatal(err)
	}
	at := t0.Add(time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ts.Verify(msg, tok, at); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyChainOnly(b *testing.B) {
	_, _, proxy, ts := benchSetup(b)
	at := t0.Add(time.Minute)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ts.VerifyChain(proxy.Chain, at); err != nil {
			b.Fatal(err)
		}
	}
}
