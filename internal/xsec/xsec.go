// Package xsec implements the Grid security substrate the paper relies
// on: X.509-style identity certificates, limited proxy certificates with
// delegation chains (the Globus GSI model), and message signing. A
// production Grid "is normally accessed with strict secure interface, for
// example, with x.509 Certificates and Proxies" (paper §II-B); every
// authenticated protocol in this repository (MyProxy, GRAM, GridFTP, the
// Cyberaide agent) carries these credentials.
//
// The implementation is a faithful miniature rather than RFC 5280: Ed25519
// keys, canonical-JSON signing, and the GSI proxy rules that matter for
// behaviour (proxies are signed by the end-entity they extend, cannot
// outlive their signer, and have bounded delegation depth).
package xsec

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Errors returned by chain verification.
var (
	ErrExpired       = errors.New("xsec: certificate expired or not yet valid")
	ErrBadSignature  = errors.New("xsec: bad signature")
	ErrUntrusted     = errors.New("xsec: chain does not terminate at a trusted CA")
	ErrNotCA         = errors.New("xsec: issuer is not a CA")
	ErrProxyRule     = errors.New("xsec: proxy certificate violates delegation rules")
	ErrEmptyChain    = errors.New("xsec: empty chain")
	ErrProxyTooDeep  = errors.New("xsec: proxy delegation depth exceeded")
	ErrProxyOutlives = errors.New("xsec: proxy outlives its signer")
)

// MaxProxyDepth bounds delegation chains, as GSI deployments do.
const MaxProxyDepth = 8

// CertKind distinguishes the three certificate roles.
type CertKind int

// Certificate roles.
const (
	KindCA CertKind = iota
	KindUser
	KindProxy
)

// String names the kind.
func (k CertKind) String() string {
	switch k {
	case KindCA:
		return "ca"
	case KindUser:
		return "user"
	case KindProxy:
		return "proxy"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Certificate is the signed public statement binding a subject name to a
// public key.
type Certificate struct {
	Serial    string            `json:"serial"`
	Kind      CertKind          `json:"kind"`
	Subject   string            `json:"subject"` // e.g. "/O=Repro/CN=alice"
	Issuer    string            `json:"issuer"`
	NotBefore time.Time         `json:"not_before"`
	NotAfter  time.Time         `json:"not_after"`
	PublicKey ed25519.PublicKey `json:"public_key"`
	Signature []byte            `json:"signature"`
}

// tbs returns the canonical to-be-signed encoding (everything except the
// signature). Field order is fixed by the struct, so JSON is canonical.
func (c *Certificate) tbs() []byte {
	cp := *c
	cp.Signature = nil
	b, err := json.Marshal(&cp)
	if err != nil {
		// Marshalling a plain struct of scalars cannot fail.
		panic("xsec: tbs marshal: " + err.Error())
	}
	return b
}

// Fingerprint returns a short stable identifier for the certificate.
func (c *Certificate) Fingerprint() string {
	h := sha256.Sum256(c.tbs())
	return hex.EncodeToString(h[:8])
}

// ValidAt reports whether the validity window covers at.
func (c *Certificate) ValidAt(at time.Time) bool {
	return !at.Before(c.NotBefore) && !at.After(c.NotAfter)
}

// Credential is a certificate chain plus the private key for its leaf.
// For a user credential the chain is [user]. For a proxy it is
// [proxy, ..., user] — leaf first, exactly as transmitted on the wire.
type Credential struct {
	Chain []Certificate      `json:"chain"`
	Key   ed25519.PrivateKey `json:"key"`
}

// Leaf returns the end of the chain the private key belongs to.
func (c *Credential) Leaf() *Certificate {
	if len(c.Chain) == 0 {
		return nil
	}
	return &c.Chain[0]
}

// Subject returns the leaf subject, or "" for an empty credential.
func (c *Credential) Subject() string {
	if l := c.Leaf(); l != nil {
		return l.Subject
	}
	return ""
}

// Identity returns the end-entity (user) subject a chain speaks for: the
// subject of the first non-proxy certificate.
func Identity(chain []Certificate) string {
	for i := range chain {
		if chain[i].Kind != KindProxy {
			return chain[i].Subject
		}
	}
	if len(chain) > 0 {
		return strings.SplitN(chain[0].Subject, "/CN=proxy", 2)[0]
	}
	return ""
}

// CA is a certificate authority able to issue user certificates.
type CA struct {
	Cert Certificate
	key  ed25519.PrivateKey
}

// NewCA creates a self-signed authority named name, valid for validity.
func NewCA(name string, now time.Time, validity time.Duration) (*CA, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("xsec: generate CA key: %w", err)
	}
	subject := "/O=Repro/CN=" + name
	cert := Certificate{
		Serial:    newSerial(),
		Kind:      KindCA,
		Subject:   subject,
		Issuer:    subject,
		NotBefore: now,
		NotAfter:  now.Add(validity),
		PublicKey: pub,
	}
	cert.Signature = ed25519.Sign(priv, cert.tbs())
	return &CA{Cert: cert, key: priv}, nil
}

// IssueUser issues an end-entity certificate for cn.
func (ca *CA) IssueUser(cn string, now time.Time, validity time.Duration) (*Credential, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("xsec: generate user key: %w", err)
	}
	cert := Certificate{
		Serial:    newSerial(),
		Kind:      KindUser,
		Subject:   "/O=Repro/CN=" + cn,
		Issuer:    ca.Cert.Subject,
		NotBefore: now,
		NotAfter:  now.Add(validity),
		PublicKey: pub,
	}
	cert.Signature = ed25519.Sign(ca.key, cert.tbs())
	return &Credential{Chain: []Certificate{cert}, Key: priv}, nil
}

// Delegate creates a proxy credential signed by c's private key. The
// proxy's lifetime is clipped to its signer's (GSI rule: a proxy cannot
// outlive the credential that signed it).
func (c *Credential) Delegate(now time.Time, validity time.Duration) (*Credential, error) {
	leaf := c.Leaf()
	if leaf == nil {
		return nil, ErrEmptyChain
	}
	if depth := proxyDepth(c.Chain); depth >= MaxProxyDepth {
		return nil, ErrProxyTooDeep
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("xsec: generate proxy key: %w", err)
	}
	notAfter := now.Add(validity)
	if notAfter.After(leaf.NotAfter) {
		notAfter = leaf.NotAfter
	}
	cert := Certificate{
		Serial:    newSerial(),
		Kind:      KindProxy,
		Subject:   leaf.Subject + "/CN=proxy",
		Issuer:    leaf.Subject,
		NotBefore: now,
		NotAfter:  notAfter,
		PublicKey: pub,
	}
	cert.Signature = ed25519.Sign(c.Key, cert.tbs())
	chain := append([]Certificate{cert}, c.Chain...)
	return &Credential{Chain: chain, Key: priv}, nil
}

func proxyDepth(chain []Certificate) int {
	n := 0
	for i := range chain {
		if chain[i].Kind == KindProxy {
			n++
		}
	}
	return n
}

// TrustStore holds the CA certificates a verifier accepts.
type TrustStore struct {
	roots map[string]Certificate // by subject
}

// NewTrustStore builds a store from root certificates.
func NewTrustStore(roots ...Certificate) *TrustStore {
	ts := &TrustStore{roots: make(map[string]Certificate, len(roots))}
	for _, r := range roots {
		ts.roots[r.Subject] = r
	}
	return ts
}

// Add registers another trusted root.
func (ts *TrustStore) Add(root Certificate) { ts.roots[root.Subject] = root }

// VerifyChain checks a leaf-first chain at instant at: every signature,
// every validity window, the proxy delegation rules, and that the chain
// terminates at a trusted CA. On success it returns the end-entity
// identity the chain speaks for.
func (ts *TrustStore) VerifyChain(chain []Certificate, at time.Time) (string, error) {
	if len(chain) == 0 {
		return "", ErrEmptyChain
	}
	if d := proxyDepth(chain); d > MaxProxyDepth {
		return "", ErrProxyTooDeep
	}
	for i := range chain {
		cert := &chain[i]
		if !cert.ValidAt(at) {
			return "", fmt.Errorf("%w: %s [%s..%s] at %s", ErrExpired,
				cert.Subject, cert.NotBefore.Format(time.RFC3339),
				cert.NotAfter.Format(time.RFC3339), at.Format(time.RFC3339))
		}
		if i+1 < len(chain) {
			parent := &chain[i+1]
			if !ed25519.Verify(parent.PublicKey, cert.tbs(), cert.Signature) {
				return "", fmt.Errorf("%w: %s not signed by %s", ErrBadSignature, cert.Subject, parent.Subject)
			}
			if cert.Issuer != parent.Subject {
				return "", fmt.Errorf("%w: issuer %q != parent subject %q", ErrBadSignature, cert.Issuer, parent.Subject)
			}
			switch cert.Kind {
			case KindProxy:
				// A proxy is signed by the credential it extends (user or
				// another proxy), never directly by a CA.
				if parent.Kind == KindCA {
					return "", fmt.Errorf("%w: proxy signed by CA", ErrProxyRule)
				}
				if cert.NotAfter.After(parent.NotAfter) {
					return "", ErrProxyOutlives
				}
				if !strings.HasPrefix(cert.Subject, parent.Subject) {
					return "", fmt.Errorf("%w: proxy subject %q does not extend %q", ErrProxyRule, cert.Subject, parent.Subject)
				}
			case KindUser:
				if parent.Kind != KindCA {
					return "", fmt.Errorf("%w: user certificate issued by %s", ErrNotCA, parent.Kind)
				}
			case KindCA:
				return "", fmt.Errorf("%w: CA certificate inside chain", ErrProxyRule)
			}
		}
	}
	// The last element must be anchored at a trusted root: either it is a
	// trusted CA cert itself, or (the common wire form) it is an end-entity
	// cert whose issuer we trust.
	last := &chain[len(chain)-1]
	if last.Kind == KindCA {
		root, ok := ts.roots[last.Subject]
		if !ok || !sameCert(&root, last) {
			return "", ErrUntrusted
		}
	} else {
		root, ok := ts.roots[last.Issuer]
		if !ok {
			return "", ErrUntrusted
		}
		if !ed25519.Verify(root.PublicKey, last.tbs(), last.Signature) {
			return "", fmt.Errorf("%w: %s not signed by trusted root", ErrBadSignature, last.Subject)
		}
		if !root.ValidAt(at) {
			return "", fmt.Errorf("%w: trusted root %s", ErrExpired, root.Subject)
		}
	}
	return Identity(chain), nil
}

func sameCert(a, b *Certificate) bool {
	return a.Serial == b.Serial && string(a.Signature) == string(b.Signature)
}

// Signed is a detached signature over an arbitrary message, carrying the
// chain that authenticates the signer. This is how GRAM/GridFTP/agent
// requests are authenticated.
type Signed struct {
	Chain     []Certificate `json:"chain"`
	Signature []byte        `json:"signature"`
}

// Sign produces a Signed token over msg with c's key.
func (c *Credential) Sign(msg []byte) (*Signed, error) {
	if c.Leaf() == nil {
		return nil, ErrEmptyChain
	}
	h := sha256.Sum256(msg)
	return &Signed{
		Chain:     c.Chain,
		Signature: ed25519.Sign(c.Key, h[:]),
	}, nil
}

// Verify checks the token authenticates msg under ts at instant at and
// returns the end-entity identity.
func (ts *TrustStore) Verify(msg []byte, s *Signed, at time.Time) (string, error) {
	if s == nil || len(s.Chain) == 0 {
		return "", ErrEmptyChain
	}
	id, err := ts.VerifyChain(s.Chain, at)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256(msg)
	if !ed25519.Verify(s.Chain[0].PublicKey, h[:], s.Signature) {
		return "", ErrBadSignature
	}
	return id, nil
}

// Marshal encodes a credential for storage or wire transport.
func (c *Credential) Marshal() ([]byte, error) { return json.Marshal(c) }

// UnmarshalCredential decodes a credential produced by Marshal.
func UnmarshalCredential(b []byte) (*Credential, error) {
	var c Credential
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("xsec: decode credential: %w", err)
	}
	return &c, nil
}

// MarshalChain encodes a bare chain (public half) as base64 JSON, the form
// embedded in protocol headers.
func MarshalChain(chain []Certificate) (string, error) {
	b, err := json.Marshal(chain)
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(b), nil
}

// UnmarshalChain reverses MarshalChain.
func UnmarshalChain(s string) ([]Certificate, error) {
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("xsec: decode chain: %w", err)
	}
	var chain []Certificate
	if err := json.Unmarshal(b, &chain); err != nil {
		return nil, fmt.Errorf("xsec: decode chain: %w", err)
	}
	return chain, nil
}

// EncodeSigned encodes a Signed token for a protocol header.
func EncodeSigned(s *Signed) (string, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(b), nil
}

// DecodeSigned reverses EncodeSigned.
func DecodeSigned(s string) (*Signed, error) {
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("xsec: decode signed token: %w", err)
	}
	var out Signed
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("xsec: decode signed token: %w", err)
	}
	return &out, nil
}

func newSerial() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("xsec: entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
