package core

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cyberaide"
	"repro/internal/gridftp"
	"repro/internal/wsdl"
)

// flakyTransport fails the first failures matching grid-bound file PUTs
// with a transport error, then passes everything through — the WAN blip
// the bounded upload retry exists for.
type flakyTransport struct {
	failures atomic.Int32
}

func (ft *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Method == http.MethodPut && strings.HasPrefix(req.URL.Path, "/ftp/") {
		if ft.failures.Add(-1) >= 0 {
			return nil, errors.New("injected transport blip")
		}
	}
	return http.DefaultTransport.RoundTrip(req)
}

func TestUploadRetriesTransientFault(t *testing.T) {
	ft := &flakyTransport{}
	ft.failures.Store(1)
	f := newFixtureHTTP(t, &http.Client{Transport: ft}, nil)
	f.uploadDemo(t)
	if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "1"}); err != nil {
		t.Fatalf("invocation did not survive the blip: %v", err)
	}
	st := f.ons.SubmitStats()
	if st.UploadRetries != 1 {
		t.Fatalf("upload retries %d, want 1", st.UploadRetries)
	}
	if st.Uploads != 2 {
		t.Fatalf("uploads %d, want 2 (failed attempt + retry)", st.Uploads)
	}
}

func TestUploadGivesUpAfterSecondFault(t *testing.T) {
	ft := &flakyTransport{}
	ft.failures.Store(2)
	f := newFixtureHTTP(t, &http.Client{Transport: ft}, func(cfg *Config) {
		// One candidate site: no failover to mask the exhausted retry.
		cfg.StatsTTL = 0
	})
	f.uploadDemo(t)
	_, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "1"})
	// Both attempts at the first site fail; the pipeline moves on to the
	// second candidate site, whose transfer now passes through. Either
	// way exactly one retry was spent per failed site pair.
	st := f.ons.SubmitStats()
	if err != nil && st.UploadRetries == 0 {
		t.Fatalf("no retry before giving up: %v", err)
	}
	if st.UploadRetries != 1 {
		t.Fatalf("upload retries %d, want 1 (bounded)", st.UploadRetries)
	}
}

func TestSessionFaultNotRetried(t *testing.T) {
	f := newFixture(t, nil)
	_, err := f.ons.uploadExecutable("no-such-session", "XService", "staged.gsh", "siteA", []byte("x"), nil)
	if !errors.Is(err, cyberaide.ErrNoSession) {
		t.Fatalf("got %v", err)
	}
	st := f.ons.SubmitStats()
	if st.UploadRetries != 0 {
		t.Fatalf("session fault consumed %d retries", st.UploadRetries)
	}
	if st.Uploads != 1 {
		t.Fatalf("uploads %d, want 1", st.Uploads)
	}
}

func TestRetryableStageErrClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{cyberaide.ErrNoSession, false},
		{cyberaide.ErrExpired, false},
		{cyberaide.ErrUnknownSite, false},
		{fmt.Errorf("wrap: %w", gridftp.ErrDenied), false},
		{fmt.Errorf("wrap: %w", gridftp.ErrBadInput), false},
		{fmt.Errorf("wrap: %w", gridftp.ErrNoFile), false},
		{fmt.Errorf("wrap: %w", gridftp.ErrChecksum), true},
		{fmt.Errorf("wrap: %w", gridftp.ErrNoChunk), true},
		{io.ErrUnexpectedEOF, true},
		{errors.New("connection reset by peer"), true},
	}
	for _, c := range cases {
		if got := retryableStageErr(c.err); got != c.want {
			t.Errorf("retryableStageErr(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestChunkedStagingEndToEnd(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.ChunkedStaging = true
		cfg.ChunkBytes = 4 << 10
		cfg.WireCompression = true
	})
	f.uploadDemo(t)
	if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "3"}); err != nil {
		t.Fatal(err)
	}
	st := f.ons.StageStats()
	if st.ChunkedUploads != 1 {
		t.Fatalf("chunked uploads %d, want 1", st.ChunkedUploads)
	}
	if st.ChunksShipped == 0 || st.LogicalBytes == 0 {
		t.Fatalf("stats not accounted: %+v", st)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("fell back to plain PUT against a chunk-capable site: %+v", st)
	}
}

func TestChunkedStagingOffKeepsStatsZero(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "3"}); err != nil {
		t.Fatal(err)
	}
	if st := f.ons.StageStats(); st != (StageStats{}) {
		t.Fatalf("stock staging touched chunk counters: %+v", st)
	}
}

// TestConcurrentChunkedStagingCoalesced races many cold invocations of
// one service through the chunked data plane with staging coalescing on:
// per site, one invocation transfers and the rest share its flight.
func TestConcurrentChunkedStagingCoalesced(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.SessionCache = true
		cfg.StagingCache = true
		cfg.CoalesceStaging = true
		cfg.ChunkedStaging = true
		cfg.ChunkBytes = 4 << 10
		cfg.WireCompression = true
	})
	f.uploadDemo(t)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "5"}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	st := f.ons.SubmitStats()
	// Two candidate sites at most: everything beyond one transfer per
	// site must have been coalesced or served by the staging cache.
	if st.Uploads > 2 {
		t.Fatalf("uploads %d, want at most one per site", st.Uploads)
	}
	if sg := f.ons.StageStats(); sg.ChunkedUploads != st.Uploads {
		t.Fatalf("chunked uploads %d, uploads %d", sg.ChunkedUploads, st.Uploads)
	}
}

// TestConcurrentChunkedStagingManyServices races distinct services —
// and so distinct transfers, often to different sites — through the
// shared chunk counters and the per-site chunk stores.
func TestConcurrentChunkedStagingManyServices(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.SessionCache = true
		cfg.StagingCache = true
		cfg.CoalesceStaging = true
		cfg.ChunkedStaging = true
		cfg.ChunkBytes = 4 << 10
	})
	const services = 4
	names := make([]string, services)
	for i := range names {
		file := fmt.Sprintf("job%c.gsh", 'a'+i)
		program := fmt.Sprintf("echo job %d\ncompute 1s\n%s", i, strings.Repeat("# filler line\n", 40*(i+1)))
		rec, err := f.ons.UploadAndGenerate("alice", file, "stage race", []wsdl.ParamDef{}, []byte(program))
		if err != nil {
			t.Fatal(err)
		}
		names[i] = rec.Name
	}
	var wg sync.WaitGroup
	errs := make(chan error, services)
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := f.ons.ExecuteAndWait(name, nil); err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
			}
		}(name)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	st := f.ons.StageStats()
	if st.ChunkedUploads != services {
		t.Fatalf("chunked uploads %d, want %d", st.ChunkedUploads, services)
	}
	if st.ChunksShipped == 0 || st.LogicalBytes == 0 {
		t.Fatalf("stats not accounted: %+v", st)
	}
}
