package core

import (
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/blobdb"
	"repro/internal/cyberaide"
	"repro/internal/gridenv"
	"repro/internal/gridsim"
	"repro/internal/metrics"
	"repro/internal/soap"
	"repro/internal/trace"
	"repro/internal/uddi"
	"repro/internal/vtime"
	"repro/internal/wsdl"
)

type fixture struct {
	ons   *OnServe
	env   *gridenv.Env
	rec   *metrics.Recorder
	clock *vtime.Scaled
	cfg   Config
}

// newFixture wires a full onServe over a two-site grid with fast polling
// so invocations finish quickly under the scaled clock.
func newFixture(t *testing.T, mutate func(*Config)) *fixture {
	return newFixtureHTTP(t, nil, mutate)
}

// newFixtureHTTP is newFixture with a caller-supplied grid-bound HTTP
// client (the staging tests inject transport faults there).
func newFixtureHTTP(t *testing.T, gridHTTP *http.Client, mutate func(*Config)) *fixture {
	return newFixtureTraced(t, gridHTTP, nil, mutate)
}

// newFixtureTraced is newFixtureHTTP with a shared span collector wired
// into every grid service and the onServe core.
func newFixtureTraced(t *testing.T, gridHTTP *http.Client, col *trace.Collector, mutate func(*Config)) *fixture {
	t.Helper()
	clk := vtime.NewScaled(20000)
	env, err := gridenv.Start(gridenv.Options{
		Clock: clk,
		Sites: []gridsim.SiteConfig{
			{Name: "siteA", Nodes: 2, CoresPerNode: 4},
			{Name: "siteB", Nodes: 2, CoresPerNode: 4},
		},
		Trace: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	// At scale 20000 the default 5s event-stream heartbeat is 0.25ms of
	// real time, so the client's 3-heartbeat liveness budget (0.75ms)
	// false-trips on scheduler jitter; a 10-minute virtual heartbeat
	// keeps the liveness check meaningful under dilation.
	env.Gatekeeper.SetHeartbeatInterval(10 * time.Minute)
	if _, err := env.AddUser("alice", "pw", 0); err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(clk, 3*time.Second)
	probe := metrics.NewProbe(rec)
	db, err := blobdb.Open(blobdb.Options{Clock: clk, Probe: probe, Cost: metrics.DefaultCost()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	agent := cyberaide.New(cyberaide.Options{
		Endpoints: env.Endpoints(), Clock: clk, Probe: probe, Cost: metrics.DefaultCost(),
		HTTP: gridHTTP,
	})
	cfg := Config{
		DB:                db,
		Container:         soap.NewServer(probe, metrics.DefaultCost()),
		Registry:          uddi.NewRegistry(clk),
		Agent:             agent,
		BaseURL:           "http://appliance.test",
		Clock:             clk,
		Probe:             probe,
		Cost:              metrics.DefaultCost(),
		PollInterval:      2 * time.Second,
		InvocationTimeout: time.Hour,
	}
	if col != nil {
		cfg.Tracing = trace.NewTracer("onserve", clk, col)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ons, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ons.RegisterUser("alice", UserAuth{MyProxyUser: "alice", Passphrase: "pw"})
	return &fixture{ons: ons, env: env, rec: rec, clock: clk, cfg: cfg}
}

const demoProgram = "echo pi=${digits}\ncompute 1s\nwrite result.dat 256\n"

func (f *fixture) uploadDemo(t *testing.T) *uddi.Record {
	t.Helper()
	rec, err := f.ons.UploadAndGenerate("alice", "montecarlo.gsh", "estimates pi",
		[]wsdl.ParamDef{{Name: "digits", Type: wsdl.TypeInt}}, []byte(demoProgram))
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestServiceNameFor(t *testing.T) {
	ok := map[string]string{
		"montecarlo.gsh":  "MontecarloService",
		"word-count.gsh":  "WordCountService",
		"my_app.v2.gsh":   "MyAppV2Service",
		"Already":         "AlreadyService",
		"nested name.gsh": "NestedNameService",
	}
	for in, want := range ok {
		got, err := ServiceNameFor(in)
		if err != nil || got != want {
			t.Errorf("ServiceNameFor(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "...", "bad/name.gsh", "ok?.gsh"} {
		if _, err := ServiceNameFor(bad); !errors.Is(err, ErrBadName) {
			t.Errorf("ServiceNameFor(%q) err = %v", bad, err)
		}
	}
}

func TestUploadAndGenerate(t *testing.T) {
	f := newFixture(t, nil)
	rec := f.uploadDemo(t)
	if rec.Name != "MontecarloService" {
		t.Fatalf("published %q", rec.Name)
	}
	if !strings.HasSuffix(rec.Endpoint, "/services/MontecarloService") {
		t.Fatalf("endpoint %q", rec.Endpoint)
	}
	// Deployed in the container with the full operation set.
	svc, ok := f.cfg.Container.Lookup("MontecarloService")
	if !ok {
		t.Fatal("service not deployed")
	}
	for _, op := range []string{"execute", "status", "output", "wait", "cancel"} {
		if svc.Def.Operation(op) == nil {
			t.Errorf("operation %s missing", op)
		}
	}
	// Stored in the database.
	if _, err := f.cfg.DB.Table(ExecutablesTable).Stat("MontecarloService"); err != nil {
		t.Fatal(err)
	}
	// Discoverable through UDDI.
	if got := f.cfg.Registry.Find("Monte%"); len(got) != 1 {
		t.Fatalf("uddi find %v", got)
	}
	// Info reflects the upload.
	info, err := f.ons.ServiceInfo("MontecarloService")
	if err != nil {
		t.Fatal(err)
	}
	if info.Owner != "alice" || len(info.Params) != 1 || info.Params[0].Name != "digits" {
		t.Fatalf("info %+v", info)
	}
}

func TestUploadValidation(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.ons.UploadAndGenerate("stranger", "x.gsh", "", nil, []byte("echo x\n")); !errors.Is(err, ErrNoSuchUser) {
		t.Fatalf("got %v", err)
	}
	if _, err := f.ons.UploadAndGenerate("alice", "x.gsh", "", nil, []byte("not a program")); !errors.Is(err, ErrBadProgram) {
		t.Fatalf("got %v", err)
	}
	if _, err := f.ons.UploadAndGenerate("alice", "x.gsh", "",
		[]wsdl.ParamDef{{Name: "p", Type: "blob"}}, []byte("echo x\n")); !errors.Is(err, ErrBadName) {
		t.Fatalf("got %v", err)
	}
	if _, err := f.ons.UploadAndGenerate("alice", "///", "", nil, []byte("echo x\n")); !errors.Is(err, ErrBadName) {
		t.Fatalf("got %v", err)
	}
}

func TestDuplicateUploadRejected(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	_, err := f.ons.UploadAndGenerate("alice", "montecarlo.gsh", "again", nil, []byte("echo x\n"))
	if err == nil {
		t.Fatal("duplicate service published")
	}
}

func TestInvokeEndToEnd(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	out, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "314"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "pi=314\n" {
		t.Fatalf("output %q", out)
	}
}

func TestInvokeStagesAndRunsOnGrid(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	inv, err := f.ons.Invoke("MontecarloService", map[string]string{"digits": "3"})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Site == "" || inv.JobID == "" || !strings.HasPrefix(inv.Ticket, "inv-") {
		t.Fatalf("invocation %+v", inv)
	}
	job, err := f.env.Grid.Job(inv.JobID)
	if err != nil {
		t.Fatal(err)
	}
	<-inv.DoneChan()
	if inv.State() != InvDone {
		t.Fatalf("state %s: %s", inv.State(), inv.Message())
	}
	if job.State() != gridsim.Succeeded {
		t.Fatalf("grid job %s", job.State())
	}
	// The executable really was staged at the chosen site.
	site, _ := f.env.Grid.Site(inv.Site)
	if _, err := site.Store().Size("/O=Repro/CN=alice", "MontecarloService.gsh"); err != nil {
		t.Fatal("staged file missing:", err)
	}
}

func TestInvokeUnknownService(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.ons.Invoke("GhostService", nil); !errors.Is(err, ErrNoSuchService) {
		t.Fatalf("got %v", err)
	}
}

func TestInvokeFailingJob(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.ons.UploadAndGenerate("alice", "boom.gsh", "always fails", nil,
		[]byte("fail exploded\n")); err != nil {
		t.Fatal(err)
	}
	_, err := f.ons.ExecuteAndWait("BoomService", nil)
	if err == nil || !strings.Contains(err.Error(), "FAILED") {
		t.Fatalf("got %v", err)
	}
}

func TestTentativePollingAccumulatesOutput(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.ons.UploadAndGenerate("alice", "ticker.gsh", "", nil,
		[]byte("emit 2s 5 line\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("TickerService", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-inv.DoneChan()
	if got := strings.Count(inv.Output(), "line"); got != 5 {
		t.Fatalf("final output has %d lines: %q", got, inv.Output())
	}
	// Polling wrote output snapshots to disk repeatedly.
	if f.rec.Total(metrics.DiskWrite) == 0 {
		t.Fatal("no poll-induced disk writes accounted")
	}
}

func TestWatchdogKillsRunawayInvocation(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.InvocationTimeout = 20 * time.Second
		cfg.PollInterval = 2 * time.Second
	})
	if _, err := f.ons.UploadAndGenerate("alice", "forever.gsh", "", nil,
		[]byte("compute 23h\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("ForeverService", nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-inv.DoneChan():
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never fired")
	}
	if inv.State() != InvKilled {
		t.Fatalf("state %s: %s", inv.State(), inv.Message())
	}
	if !strings.Contains(inv.Message(), "watchdog") && !strings.Contains(inv.Message(), "walltime") {
		t.Fatalf("message %q", inv.Message())
	}
}

func TestCancelInvocation(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.ons.UploadAndGenerate("alice", "slow.gsh", "", nil,
		[]byte("emit 2s 10000 t\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("SlowService", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ons.CancelInvocation(inv.Ticket); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inv.DoneChan():
	case <-time.After(10 * time.Second):
		t.Fatal("cancel never completed")
	}
	if inv.State() != InvCancelled {
		t.Fatalf("state %s", inv.State())
	}
	if err := f.ons.CancelInvocation(inv.Ticket); err != nil {
		t.Fatalf("cancel of terminal invocation: %v", err)
	}
	if _, err := f.ons.Invocation("inv-xxxxxx-nope"); !errors.Is(err, ErrNoTicket) {
		t.Fatalf("got %v", err)
	}
	if err := f.ons.CancelInvocation("inv-xxxxxx-nope"); !errors.Is(err, ErrNoTicket) {
		t.Fatalf("got %v", err)
	}
}

func TestStagingCacheAvoidsReupload(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.StagingCache = true })
	f.uploadDemo(t)
	if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "1"}); err != nil {
		t.Fatal(err)
	}
	inv1 := f.ons.Invocations()[0]
	site, _ := f.env.Grid.Site(inv1.Site)
	// Poison the staged copy: if onServe re-uploads, it will be repaired;
	// with the cache it stays poisoned and the job fails.
	if err := site.Store().Put("/O=Repro/CN=alice", "MontecarloService.gsh", []byte("fail poisoned\n")); err != nil {
		t.Fatal(err)
	}
	inv2, err := f.ons.Invoke("MontecarloService", map[string]string{"digits": "2"})
	if err != nil {
		t.Fatal(err)
	}
	<-inv2.DoneChan()
	if inv2.Site == inv1.Site && inv2.State() == InvDone {
		t.Fatal("staging cache did not prevent re-upload")
	}
}

func TestStagingCacheReplicatesAcrossSites(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.StagingCache = true })
	// A long-running first job keeps its site busy so the broker sends
	// the second invocation to the other site.
	if _, err := f.ons.UploadAndGenerate("alice", "rep.gsh", "", nil,
		[]byte("compute 100ms\necho good copy\n")); err != nil {
		t.Fatal(err)
	}
	inv1, err := f.ons.Invoke("RepService", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-inv1.DoneChan()
	if inv1.State() != InvDone {
		t.Fatalf("first invocation %s: %s", inv1.State(), inv1.Message())
	}
	// Corrupt the database copy: if the appliance re-uploads from the DB
	// the next job fails; replication from the already-staged good copy
	// succeeds.
	meta := map[string]string{"owner": "alice", "description": "", "file_name": "rep.gsh", "params": "null"}
	if err := f.cfg.DB.Table(ExecutablesTable).Put("RepService", meta, []byte("fail poisoned-db\n")); err != nil {
		t.Fatal(err)
	}
	// Saturate inv1's site so the broker must pick the sibling.
	site, _ := f.env.Grid.Site(inv1.Site)
	site.Store().Put("/O=Repro/CN=alice", "hog.gsh", []byte("emit 1s 10000 t\n"))
	var hogs []string
	for site.Stats().FreeSlots > 0 {
		j, err := site.Submit(jsdlFor("hog.gsh"))
		if err != nil {
			t.Fatal(err)
		}
		hogs = append(hogs, j.ID)
	}
	defer func() {
		for _, id := range hogs {
			site.Cancel(id)
		}
	}()

	inv2, err := f.ons.Invoke("RepService", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inv2.Site == inv1.Site {
		t.Skipf("broker picked the same site; replication path not exercised")
	}
	<-inv2.DoneChan()
	if inv2.State() != InvDone {
		t.Fatalf("replicated invocation %s: %s", inv2.State(), inv2.Message())
	}
	if out := inv2.Output(); out != "good copy\n" {
		t.Fatalf("output %q", out)
	}
}

func TestNoStagingCacheReuploadsEveryTime(t *testing.T) {
	f := newFixture(t, nil) // cache off: the paper's behaviour
	f.uploadDemo(t)
	if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "1"}); err != nil {
		t.Fatal(err)
	}
	inv1 := f.ons.Invocations()[0]
	site, _ := f.env.Grid.Site(inv1.Site)
	site.Store().Put("/O=Repro/CN=alice", "MontecarloService.gsh", []byte("fail poisoned\n"))
	// Re-invoking repairs the staged copy because the file is re-uploaded.
	out, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "2"})
	if err != nil {
		t.Fatalf("re-invocation failed (%q): %v", out, err)
	}
}

func TestStageInDataService(t *testing.T) {
	f := newFixture(t, nil)
	// A data-processing service: reads and processes a corpus the owner
	// stages separately.
	if _, err := f.ons.UploadAndGenerate("alice", "wordcount.gsh", "counts words", nil,
		[]byte("process corpus.txt 1000\necho counted\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.ons.SetStageIn("WordcountService", []string{"corpus.txt"}); err != nil {
		t.Fatal(err)
	}
	info, err := f.ons.ServiceInfo("WordcountService")
	if err != nil || len(info.StageIn) != 1 || info.StageIn[0] != "corpus.txt" {
		t.Fatalf("info %+v err %v", info, err)
	}

	// Without the data staged anywhere, invocation fails with a staging
	// error rather than a confusing runtime one.
	if _, err := f.ons.Invoke("WordcountService", nil); err == nil ||
		!strings.Contains(err.Error(), "not staged") {
		t.Fatalf("got %v", err)
	}

	// The owner stages the corpus; invocation now runs and reads it.
	if err := f.env.StageEverywhere("/O=Repro/CN=alice", "corpus.txt",
		[]byte(strings.Repeat("word ", 10_000))); err != nil {
		t.Fatal(err)
	}
	out, err := f.ons.ExecuteAndWait("WordcountService", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "process corpus.txt: 50000 bytes") || !strings.Contains(out, "counted") {
		t.Fatalf("output %q", out)
	}
}

func TestSetStageInValidation(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	if err := f.ons.SetStageIn("GhostService", []string{"x"}); !errors.Is(err, ErrNoSuchService) {
		t.Fatalf("got %v", err)
	}
	for _, bad := range [][]string{{""}, {"a/b"}, {"a,b"}} {
		if err := f.ons.SetStageIn("MontecarloService", bad); !errors.Is(err, ErrBadName) {
			t.Fatalf("SetStageIn(%v) err %v", bad, err)
		}
	}
}

func TestDeleteService(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	if err := f.ons.DeleteService("MontecarloService"); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.cfg.Container.Lookup("MontecarloService"); ok {
		t.Fatal("service still deployed")
	}
	if f.cfg.Registry.Len() != 0 {
		t.Fatal("uddi record remains")
	}
	if _, err := f.ons.ServiceInfo("MontecarloService"); !errors.Is(err, ErrNoSuchService) {
		t.Fatalf("got %v", err)
	}
	if err := f.ons.DeleteService("MontecarloService"); !errors.Is(err, ErrNoSuchService) {
		t.Fatalf("double delete: %v", err)
	}
	// Name is free for a fresh upload.
	f.uploadDemo(t)
}

func TestServicesListing(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	if _, err := f.ons.UploadAndGenerate("alice", "wordcount.gsh", "", nil, []byte("echo 1\n")); err != nil {
		t.Fatal(err)
	}
	list, err := f.ons.Services()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("services %+v", list)
	}
}

func TestDoubleWriteAccounting(t *testing.T) {
	stock := newFixture(t, nil)
	stock.uploadDemo(t)
	stockWrites := stock.rec.Total(metrics.DiskWrite)

	direct := newFixture(t, func(cfg *Config) { cfg.DirectDBWrite = true })
	direct.uploadDemo(t)
	directWrites := direct.rec.Total(metrics.DiskWrite)

	if stockWrites <= directWrites {
		t.Fatalf("double-write path (%v) should write more than direct path (%v)", stockWrites, directWrites)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestWatchdogStop(t *testing.T) {
	clk := vtime.NewScaled(20000)
	fired := false
	wd := NewWatchdog(clk, time.Hour, func() { fired = true })
	wd.Stop()
	wd.Stop() // idempotent
	time.Sleep(5 * time.Millisecond)
	if fired {
		t.Fatal("stopped watchdog fired")
	}
}

func TestWatchdogFires(t *testing.T) {
	clk := vtime.NewScaled(20000)
	wd := NewWatchdog(clk, 10*time.Second, func() {})
	select {
	case <-wd.Fired():
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired")
	}
	wd.Stop()
}

func TestGeneratedServiceOverSOAP(t *testing.T) {
	// Full SaaS loop through the deployed SOAP service, as a remote
	// client would drive it.
	f := newFixture(t, nil)
	f.uploadDemo(t)
	// The container is not mounted on a real HTTP server in this fixture;
	// mount it.
	hs := newHTTPServer(t, f.cfg.Container)
	var c soap.Client
	url := hs + "/services/MontecarloService"
	ns := "urn:onserve:MontecarloService"
	ticket, err := c.Call(url, ns, "execute", []soap.Param{{Name: "digits", Value: "42"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Call(url, ns, "wait", []soap.Param{{Name: "ticket", Value: ticket}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != "pi=42\n" {
		t.Fatalf("output %q", out)
	}
	stJSON, err := c.Call(url, ns, "status", []soap.Param{{Name: "ticket", Value: ticket}}, nil)
	if err != nil || !strings.Contains(stJSON, "DONE") {
		t.Fatalf("status %q err %v", stJSON, err)
	}
}

func TestGeneratedServiceRejectsBadArgs(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	hs := newHTTPServer(t, f.cfg.Container)
	var c soap.Client
	url := hs + "/services/MontecarloService"
	ns := "urn:onserve:MontecarloService"
	_, err := c.Call(url, ns, "execute", []soap.Param{{Name: "digits", Value: "not-a-number"}}, nil)
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("got %v", err)
	}
}
