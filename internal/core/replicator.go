// Background pre-replication (Config.ReplicateTopK): after a service's
// chunks land at one site, push them asynchronously to the K
// least-loaded sibling sites through the chunked pipeline, so a hot
// executable is warm everywhere before the next burst arrives. The
// pushes ride the same content-addressed protocol as staging — a site
// that already holds the chunks costs a probe, not a transfer — and are
// bounded by a small worker pool plus a per-cycle wire-byte budget so
// replication can never starve foreground staging of the shaped WAN.
package core

import (
	"sort"
	"sync"
	"time"

	"repro/internal/trace"
)

// Replicator defaults.
const (
	// DefaultReplicateWorkers is the push worker-pool size when
	// Config.ReplicateWorkers is unset.
	DefaultReplicateWorkers = 2
	// DefaultReplicateBudgetBytes caps the wire bytes the replicator may
	// push per cycle when Config.ReplicateBudgetBytes is unset.
	DefaultReplicateBudgetBytes = 256 << 20
	// replicateCycle is the budget window.
	replicateCycle = time.Minute
)

// repTask is one queued pre-replication: push service's executable from
// where it just landed to the top-K least-loaded siblings.
type repTask struct {
	sessionID  string
	service    string
	stagedName string
	sourceSite string
	checksum   string
	blob       []byte
}

// replicator runs the bounded push pipeline. Workers start lazily on
// the first enqueue and exit when the queue drains — OnServe has no
// shutdown hook, so nothing may idle forever (the poll hub's shard
// workers set the pattern).
type replicator struct {
	o *OnServe

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []repTask
	workers int
	active  int
	// seen dedupes enqueues: one replication round per service version.
	seen map[string]string
	// cycleStart/cycleBytes implement the per-cycle byte budget.
	cycleStart time.Time
	cycleBytes int64
}

func newReplicator(o *OnServe) *replicator {
	r := &replicator{o: o, seen: make(map[string]string)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// enqueue schedules one replication round for a freshly staged service
// version. Duplicate versions (the rest of a burst, a re-invocation)
// are dropped; a re-publish with a new checksum queues again.
func (r *replicator) enqueue(t repTask) {
	r.mu.Lock()
	if r.seen[t.service] == t.checksum {
		r.mu.Unlock()
		return
	}
	r.seen[t.service] = t.checksum
	r.queue = append(r.queue, t)
	if r.workers < r.o.cfg.ReplicateWorkers {
		r.workers++
		go r.run()
	}
	r.mu.Unlock()
}

// forget drops the service's dedup record (DeleteService), so a
// re-published service replicates again.
func (r *replicator) forget(service string) {
	r.mu.Lock()
	delete(r.seen, service)
	r.mu.Unlock()
}

// run is one worker: drain tasks, exit when the queue is empty. The
// exit happens under the lock, so an enqueue that observes workers <
// max never races a worker that is about to leave.
func (r *replicator) run() {
	for {
		r.mu.Lock()
		if len(r.queue) == 0 {
			r.workers--
			if r.active == 0 {
				r.cond.Broadcast()
			}
			r.mu.Unlock()
			return
		}
		t := r.queue[0]
		r.queue = r.queue[1:]
		r.active++
		r.mu.Unlock()

		r.pushAll(t)

		r.mu.Lock()
		r.active--
		if r.active == 0 && len(r.queue) == 0 {
			r.cond.Broadcast()
		}
		r.mu.Unlock()
	}
}

// Drain blocks until the replicator's queue is empty and every push in
// flight has finished — the synchronisation point tests and experiments
// use before asserting on the pushed state. A nil replicator (knob off)
// drains instantly.
func (o *OnServe) DrainReplicator() {
	if o.rep == nil {
		return
	}
	r := o.rep
	r.mu.Lock()
	for len(r.queue) > 0 || r.active > 0 {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

// pushAll replicates one task to the top-K least-loaded sites.
func (r *replicator) pushAll(t repTask) {
	o := r.o
	stats, err := o.gridStats(t.sessionID)
	if err != nil {
		o.placement.repFailures.Add(1)
		return
	}
	cands := o.stageableLoads(stats)
	if o.cfg.Tenancy != nil {
		// Pre-replication must respect the owner's site allow-list: a
		// policy that pins a tenant to certain sites would be defeated
		// by background copies landing elsewhere.
		if info, err := o.ServiceInfo(t.service); err == nil {
			cands = o.siteFilter(info.Owner, cands)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load < cands[j].load
		}
		return cands[i].name < cands[j].name
	})
	pushed := 0
	for _, c := range cands {
		if pushed >= o.cfg.ReplicateTopK {
			break
		}
		if c.name == t.sourceSite {
			continue
		}
		pushed++
		r.pushOne(t, c.name)
	}
}

// pushOne ships one service to one target site, subject to the cycle
// budget. The budget is a soft cap checked before the transfer and
// charged with the actual wire bytes after it, so at most one push can
// overshoot per cycle.
func (r *replicator) pushOne(t repTask, site string) {
	o := r.o
	r.mu.Lock()
	now := o.clock.Now()
	if r.cycleStart.IsZero() || now.Sub(r.cycleStart) >= replicateCycle {
		r.cycleStart, r.cycleBytes = now, 0
	}
	budget := o.cfg.ReplicateBudgetBytes
	if r.cycleBytes >= budget {
		r.mu.Unlock()
		o.placement.repSkips.Add(1)
		return
	}
	r.mu.Unlock()

	sp := o.cfg.Tracing.StartSpan("replicate", trace.SpanContext{})
	sp.Set("service", t.service)
	sp.Set("from", t.sourceSite)
	sp.Set("site", site)
	gz := o.storedGzip(t.service, t.blob)
	st, err := o.cfg.Agent.WithTrace(sp.Context()).UploadChunked(t.sessionID, site, t.stagedName, t.blob, gz, o.cfg.ChunkBytes)
	if err != nil {
		o.placement.repFailures.Add(1)
		sp.Error(err.Error())
		sp.End()
		return
	}
	r.mu.Lock()
	r.cycleBytes += st.WireBytes
	r.mu.Unlock()
	o.placement.repPushes.Add(1)
	o.placement.repPushBytes.Add(uint64(st.WireBytes))
	sp.SetInt("wire_bytes", st.WireBytes)
	sp.SetInt("chunks_shipped", int64(st.ChunksShipped))
	sp.End()

	// The target is now warm: credit it in the possession cache and —
	// when the staging cache is on — record the replica so foreground
	// stagings skip the WAN entirely.
	o.notePossession(t.service, site, st.LogicalBytes)
	if o.cfg.StagingCache {
		o.mu.Lock()
		o.staged[t.service+"|"+site] = st.Checksum
		o.mu.Unlock()
	}
}
