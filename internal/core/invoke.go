package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/blobdb"
	"repro/internal/cyberaide"
	"repro/internal/gridsim"
	"repro/internal/jsdl"
	"repro/internal/soap"
	"repro/internal/trace"
)

// InvState is an invocation's lifecycle state.
type InvState string

// Invocation states.
const (
	InvSubmitting InvState = "SUBMITTING"
	InvRunning    InvState = "RUNNING"
	InvDone       InvState = "DONE"
	InvFailed     InvState = "FAILED"
	InvCancelled  InvState = "CANCELLED"
	InvKilled     InvState = "KILLED" // watchdog
)

// Terminal reports whether the state is final.
func (s InvState) Terminal() bool {
	switch s {
	case InvDone, InvFailed, InvCancelled, InvKilled:
		return true
	}
	return false
}

// Invocation tracks one execute() call from ticket issue to final output.
type Invocation struct {
	Ticket    string
	Service   string
	JobID     string
	Site      string
	User      string
	StartedAt time.Time

	sessionID string

	// onTerminal, when set, is called exactly once after the invocation
	// reaches a terminal state (outside the invocation lock); OnServe
	// uses it to prune old terminal tickets.
	onTerminal func(*Invocation)

	// rootSpan/collectSpan are the invocation's trace spans (nil when
	// tracing is off). Written before the collection goroutine starts,
	// ended exactly once by finish.
	rootSpan    *trace.Span
	collectSpan *trace.Span

	mu      sync.Mutex
	state   InvState
	output  string
	message string
	endedAt time.Time
	done    chan struct{}
}

// State returns the current state.
func (inv *Invocation) State() InvState {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.state
}

// Output returns the stdout gathered so far by the tentative poller.
func (inv *Invocation) Output() string {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.output
}

// Message returns the failure message, if any.
func (inv *Invocation) Message() string {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.message
}

// DoneChan closes when the invocation is terminal.
func (inv *Invocation) DoneChan() <-chan struct{} { return inv.done }

// EndedAt returns when the invocation reached a terminal state (zero
// while still in flight) — the collector-side endpoint of the
// completion-detection latency the pollhub ablation measures.
func (inv *Invocation) EndedAt() time.Time {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.endedAt
}

// TraceID returns the invocation's hex trace id, or "" when untraced.
func (inv *Invocation) TraceID() string {
	s := inv.rootSpan.Context().String()
	if s == "" {
		return ""
	}
	return s[:32]
}

// collectCtx is the parent context for per-tick poll spans.
func (inv *Invocation) collectCtx() trace.SpanContext { return inv.collectSpan.Context() }

// StatusJSON renders the externally visible status.
func (inv *Invocation) StatusJSON() (string, error) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	b, err := json.Marshal(map[string]string{
		"ticket":  inv.Ticket,
		"service": inv.Service,
		"job_id":  inv.JobID,
		"site":    inv.Site,
		"state":   string(inv.state),
		"message": inv.message,
	})
	return string(b), err
}

func (inv *Invocation) setOutput(out string) {
	inv.mu.Lock()
	inv.output = out
	inv.mu.Unlock()
}

// finish records a terminal state once.
func (inv *Invocation) finish(s InvState, msg string, at time.Time) {
	inv.mu.Lock()
	if inv.state.Terminal() {
		inv.mu.Unlock()
		return
	}
	inv.state = s
	inv.message = msg
	inv.endedAt = at
	close(inv.done)
	cb := inv.onTerminal
	inv.mu.Unlock()
	// End the span tree exactly once, on whichever path won the race —
	// stock poller, long-poll, hub, watchdog, or cancel. Any non-DONE
	// terminal state ends it with error status, so cancelled and
	// watchdog-killed invocations never leak an open or "ok" tree.
	if s != InvDone {
		inv.collectSpan.Error(msg)
		inv.rootSpan.Error(msg)
	}
	inv.collectSpan.Set("state", string(s))
	inv.collectSpan.EndAt(at)
	inv.rootSpan.EndAt(at)
	if cb != nil {
		cb(inv)
	}
}

// Invoke is Use Scenario B (paper §VII-B): translate one Web-service
// invocation into the JSE model. The pipeline follows the paper's steps
// literally: file retrieval from the database, authentication through
// the Cyberaide agent, upload to the Grid, job description generation,
// and job submission — then the tentative output poller takes over.
func (o *OnServe) Invoke(serviceName string, args map[string]string) (*Invocation, error) {
	return o.InvokeCtx(serviceName, args, trace.SpanContext{})
}

// InvokeCtx is Invoke with a caller trace context: with Config.Tracing
// set, the invocation records an "invoke" root span (under the caller's
// context when valid, a new root trace otherwise) with child spans for
// every pipeline stage, and propagates context to every grid service.
// With Tracing nil this is Invoke — no spans, no allocations.
func (o *OnServe) InvokeCtx(serviceName string, args map[string]string, parent trace.SpanContext) (*Invocation, error) {
	root := o.cfg.Tracing.StartSpan("invoke", parent)
	root.Set("service", serviceName)
	inv, err := o.invoke(serviceName, args, root)
	if err != nil {
		root.Error(err.Error())
		root.End()
		return nil, err
	}
	return inv, nil
}

func (o *OnServe) invoke(serviceName string, args map[string]string, root *trace.Span) (*Invocation, error) {
	info, err := o.ServiceInfo(serviceName)
	if err != nil {
		return nil, err
	}
	root.Set("user", info.Owner)
	auth, err := o.userAuth(info.Owner)
	if err != nil {
		return nil, err
	}

	// File retrieval: "the lookup of the associated file in the database.
	// It is loaded from the database and then stored in a temporary
	// location." Loading decompresses (the first CPU peak of Fig. 6);
	// the temporary spill is a disk write.
	dbSp := o.cfg.Tracing.StartSpan("db.fetch", root.Context())
	rec, err := o.cfg.DB.Table(ExecutablesTable).Get(serviceName)
	if err != nil {
		dbSp.Error(err.Error())
		dbSp.End()
		return nil, fmt.Errorf("onserve: load executable: %w", err)
	}
	dbSp.SetInt("bytes", int64(len(rec.Blob)))
	dbSp.End()
	o.cfg.Probe.DiskWrite(len(rec.Blob))

	// Authentication: "Before any use of the Grid is possible, an
	// authentication is required and performed by the Cyberaide agent."
	// With the session cache on, the previous logon's session is reused
	// until its proxy nears expiry; an auth fault on a cached session
	// invalidates it and the pipeline retries once with a fresh logon.
	lg := o.cfg.Tracing.StartSpan("logon", root.Context())
	sessID, cached, err := o.gridSession(info.Owner, auth, lg.Context())
	if err != nil {
		lg.Error(err.Error())
		lg.End()
		return nil, err
	}
	lg.Set("cached", fmt.Sprintf("%t", cached))
	lg.End()
	site, jobID, err := o.submitPipeline(sessID, serviceName, info, args, rec.Blob, root.Context())
	if err != nil && cached && isSessionFault(err) {
		o.invalidateSession(info.Owner, sessID)
		lg = o.cfg.Tracing.StartSpan("logon", root.Context())
		if sessID, _, err = o.gridSession(info.Owner, auth, lg.Context()); err != nil {
			lg.Error(err.Error())
			lg.End()
			return nil, err
		}
		lg.Set("cached", "false")
		lg.End()
		site, jobID, err = o.submitPipeline(sessID, serviceName, info, args, rec.Blob, root.Context())
	}
	if err != nil {
		return nil, err
	}

	o.mu.Lock()
	o.seq++
	inv := &Invocation{
		Ticket:    newTicket(o.seq),
		Service:   serviceName,
		JobID:     jobID,
		Site:      site,
		User:      info.Owner,
		StartedAt: o.clock.Now(),
		sessionID: sessID,
		state:     InvRunning,
		done:      make(chan struct{}),
	}
	inv.onTerminal = o.noteTerminal
	inv.rootSpan = root
	inv.collectSpan = o.cfg.Tracing.StartSpan("collect", root.Context())
	o.invocations[inv.Ticket] = inv
	o.mu.Unlock()
	root.Set("ticket", inv.Ticket)
	root.Set("site", site)
	root.Set("job_id", jobID)

	switch {
	case o.events != nil:
		o.events.register(inv)
	case o.hub != nil:
		o.hub.register(inv)
	case o.cfg.UseLongPoll:
		go o.waitLongPoll(inv)
	default:
		go o.pollOutput(inv)
	}
	return inv, nil
}

// submitPipeline is the grid-facing half of Invoke: site choice, staging
// and submission under one agent session. Services with declared
// stage-in data may only run where the owner staged it, so later
// candidates are tried when submission reports a staging problem.
func (o *OnServe) submitPipeline(sessionID, serviceName string, info *ExecutableInfo, args map[string]string, blob []byte, tc trace.SpanContext) (site, jobID string, err error) {
	candidates, err := o.pickSites(sessionID, serviceName, info.Owner, blob, tc)
	if err != nil {
		return "", "", err
	}
	stagedName := serviceName + ".gsh"
	for i, candidate := range candidates {
		st := o.cfg.Tracing.StartSpan("stage", tc)
		st.Set("site", candidate)
		st.SetInt("bytes", int64(len(blob)))
		if err = o.stageExecutable(sessionID, serviceName, stagedName, candidate, blob, st); err != nil {
			st.Error(err.Error())
			st.End()
			return "", "", err
		}
		st.End()
		// Job description generation + submission: "a job description is
		// generated by using the specified parameters and the name of the
		// executable. Finally, the job is submitted to the Grid." This is
		// the second CPU peak of Fig. 6.
		o.cfg.Probe.Burn(o.cfg.Cost.JobSubmit)
		desc := jsdl.Description{
			Name:       serviceName,
			Executable: stagedName,
			Site:       candidate,
			Arguments:  args,
			WallTime:   o.cfg.InvocationTimeout,
			StageIn:    info.StageIn,
		}
		sb := o.cfg.Tracing.StartSpan("submit", tc)
		sb.Set("site", candidate)
		jobID, err = o.submitJob(sessionID, &desc, sb.Context())
		if err == nil {
			sb.Set("job_id", jobID)
			sb.End()
			return candidate, jobID, nil
		}
		sb.Error(err.Error())
		sb.End()
		// Only a missing stage-in file justifies trying the next site.
		if len(info.StageIn) == 0 || i == len(candidates)-1 ||
			!strings.Contains(err.Error(), "not staged") {
			return "", "", fmt.Errorf("onserve: submit: %w", err)
		}
	}
	return "", "", fmt.Errorf("onserve: submit: %w", err)
}

// gridSession returns an authenticated session ID for owner: the cached
// one when Config.SessionCache is on and the proxy is comfortably inside
// its lifetime, a fresh MyProxy logon otherwise. cached reports whether
// the ID came from the cache (and so may need the fault-retry path).
func (o *OnServe) gridSession(owner string, auth UserAuth, tc trace.SpanContext) (id string, cached bool, err error) {
	if o.cfg.SessionCache {
		o.mu.Lock()
		s := o.sessions[owner]
		o.mu.Unlock()
		if s != nil && o.clock.Now().Before(s.expiresAt) {
			return s.id, true, nil
		}
	}
	sess, err := o.cfg.Agent.WithTrace(tc).Authenticate(auth.MyProxyUser, auth.Passphrase, o.cfg.ProxyLifetime)
	if err != nil {
		return "", false, fmt.Errorf("onserve: authenticate %s: %w", owner, err)
	}
	if o.cfg.SessionCache {
		// Stop reusing a little before the proxy actually expires so
		// in-flight pipelines don't start on a session about to die.
		margin := o.cfg.ProxyLifetime / 10
		o.mu.Lock()
		o.sessions[owner] = &ownerSession{id: sess.ID, expiresAt: o.clock.Now().Add(o.cfg.ProxyLifetime - margin)}
		o.mu.Unlock()
	}
	return sess.ID, false, nil
}

// invalidateSession drops owner's cached session if it still is id.
func (o *OnServe) invalidateSession(owner, id string) {
	o.mu.Lock()
	if s := o.sessions[owner]; s != nil && s.id == id {
		delete(o.sessions, owner)
	}
	o.mu.Unlock()
}

// isSessionFault reports whether err is an agent auth fault — the only
// failures a cached session justifies retrying with a fresh logon.
func isSessionFault(err error) bool {
	return errors.Is(err, cyberaide.ErrExpired) || errors.Is(err, cyberaide.ErrNoSession)
}

// pickSites asks the gatekeeper for scheduler statistics and orders the
// stageable sites best-first: by load alone (the paper's behaviour),
// or — with Config.DataAwarePlacement — by a score that also weighs
// chunk possession and the cold-transfer cost of the missing bytes.
// With Config.StatsTTL set, the snapshot is cached so heavy invocation
// traffic stops paying one SOAP round-trip per call; slightly stale
// load data only shifts which site wins, never correctness.
func (o *OnServe) pickSites(sessionID, serviceName, owner string, blob []byte, tc trace.SpanContext) ([]string, error) {
	stats, err := o.gridStats(sessionID)
	if err != nil {
		return nil, fmt.Errorf("onserve: grid stats: %w", err)
	}
	cands := o.siteFilter(owner, o.stageableLoads(stats))
	if len(cands) == 0 {
		return nil, fmt.Errorf("onserve: no stageable site available")
	}
	if o.cfg.DataAwarePlacement {
		return o.placeDataAware(sessionID, serviceName, cands, blob, tc), nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load < cands[j].load
		}
		return cands[i].name < cands[j].name
	})
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out, nil
}

// siteLoad is one stageable site's load term: committed plus queued
// work per slot.
type siteLoad struct {
	name string
	load float64
}

// siteFilter drops candidate sites the owner's tenancy policy
// excludes. The principal here is the service's owner, not the
// invoking caller: placement is a property of whose executable runs
// where, and the core never sees the caller's key. With tenancy off
// (or an unconstrained owner) the slice passes through untouched.
func (o *OnServe) siteFilter(owner string, cands []siteLoad) []siteLoad {
	ctl := o.cfg.Tenancy
	if ctl == nil || owner == "" {
		return cands
	}
	kept := cands[:0]
	for _, c := range cands {
		if ctl.SiteAllowed(owner, c.name) {
			kept = append(kept, c)
		}
	}
	return kept
}

// stageableLoads maps a scheduler-statistics snapshot to the load terms
// of the sites the agent can stage to (order as reported).
func (o *OnServe) stageableLoads(stats []gridsim.SiteStats) []siteLoad {
	var cands []siteLoad
	for _, st := range stats {
		if _, ok := o.cfg.Agent.SiteURL(st.Name); !ok {
			continue // no staging endpoint for this site
		}
		// A drained site (zero slots) counts as fully loaded: dividing by
		// Slots would yield NaN/Inf and corrupt the sort order.
		load := math.Inf(1)
		if st.Slots > 0 {
			load = float64(st.Slots-st.FreeSlots+st.Queued) / float64(st.Slots)
		}
		cands = append(cands, siteLoad{name: st.Name, load: load})
	}
	return cands
}

// gridStats fetches (or serves from the TTL cache) the gatekeeper's
// scheduler statistics. With the TTL on, concurrent callers that all
// observe an expired snapshot collapse onto one in-flight fetch instead
// of stampeding the gatekeeper with identical requests; a leader
// failure wakes the waiters, and the next one through retries.
func (o *OnServe) gridStats(sessionID string) ([]gridsim.SiteStats, error) {
	ttl := o.cfg.StatsTTL
	if ttl <= 0 {
		// Paper-faithful: one scheduler round-trip per invocation.
		o.submit.statsRPCs.Add(1)
		return o.cfg.Agent.GridStats(sessionID)
	}
	for {
		o.mu.Lock()
		if o.stats != nil && o.clock.Now().Sub(o.statsAt) < ttl {
			stats := o.stats
			o.mu.Unlock()
			return stats, nil
		}
		if f := o.statsFlight; f != nil {
			o.mu.Unlock()
			<-f.done
			if f.err == nil {
				o.submit.statsCollapsed.Add(1)
				return f.stats, nil
			}
			continue // leader failed: re-check the cache or take over
		}
		f := &statsFlight{done: make(chan struct{})}
		o.statsFlight = f
		o.mu.Unlock()
		o.submit.statsRPCs.Add(1)
		f.stats, f.err = o.cfg.Agent.GridStats(sessionID)
		o.mu.Lock()
		o.statsFlight = nil
		if f.err == nil {
			o.stats, o.statsAt = f.stats, o.clock.Now()
		}
		o.mu.Unlock()
		close(f.done)
		return f.stats, f.err
	}
}

// statsFlight is one in-flight scheduler-statistics fetch concurrent
// pickSites callers wait on. err and stats are written by the leader
// before done closes and only read by waiters after.
type statsFlight struct {
	done  chan struct{}
	stats []gridsim.SiteStats
	err   error
}

// stageExecutable makes sure the service's executable is present at the
// target site. With Config.CoalesceStaging on, concurrent cold
// invocations of one service single-flight the transfer per
// service|site: the first arrival performs it, the rest block on its
// result, so a cold burst costs exactly one WAN transfer per site. A
// leader failure wakes the waiters and exactly one of them takes over
// (each failed flight releases its leader with the error), so the
// stampede can never come back through the retry path.
func (o *OnServe) stageExecutable(sessionID, serviceName, stagedName, site string, blob []byte, sp *trace.Span) error {
	if !o.cfg.CoalesceStaging {
		return o.stageExecutableOnce(sessionID, serviceName, stagedName, site, blob, sp)
	}
	key := serviceName + "|" + site
	for {
		o.mu.Lock()
		if f := o.stagingFlights[key]; f != nil {
			o.mu.Unlock()
			<-f.done
			if f.err == nil {
				o.submit.uploadsCoalesced.Add(1)
				sp.Set("coalesced", "true")
				return nil
			}
			continue // leader failed: elect a new one
		}
		f := &stagingFlight{done: make(chan struct{})}
		o.stagingFlights[key] = f
		o.mu.Unlock()
		f.err = o.stageExecutableOnce(sessionID, serviceName, stagedName, site, blob, sp)
		o.mu.Lock()
		delete(o.stagingFlights, key)
		o.mu.Unlock()
		close(f.done)
		return f.err
	}
}

// stagingFlight is one in-flight staging transfer waiters block on. err
// is written by the leader before done closes and only read after.
type stagingFlight struct {
	done chan struct{}
	err  error
}

// stageExecutableOnce performs one staging transfer: through the
// staging cache and site-to-site replication when enabled, otherwise by
// uploading across the WAN — the paper's behaviour, where files "will
// even be reloaded when executed a 2nd time".
func (o *OnServe) stageExecutableOnce(sessionID, serviceName, stagedName, site string, blob []byte, sp *trace.Span) error {
	cacheKey := serviceName + "|" + site
	if o.cfg.StagingCache {
		o.mu.Lock()
		cached := o.staged[cacheKey]
		// Not at the target site, but maybe at a sibling: a GridFTP
		// third-party transfer moves it site-to-site without re-crossing
		// the appliance's WAN link.
		replicateFrom := ""
		if cached == "" {
			replicateFrom = replicaSource(o.staged, serviceName)
		}
		o.mu.Unlock()
		if cached != "" {
			sp.Set("cache", "hit")
			return nil
		}
		if replicateFrom != "" {
			sp.Set("replicated_from", replicateFrom)
			sum, err := o.cfg.Agent.WithTrace(sp.Context()).Replicate(sessionID, replicateFrom, site, stagedName)
			if err == nil {
				o.mu.Lock()
				o.staged[cacheKey] = sum
				o.mu.Unlock()
				return nil
			}
			// A session fault would doom the fresh upload too: surface it
			// so Invoke's invalidate-and-retry path fires instead of
			// burning a second WAN round-trip on a dead session.
			if isSessionFault(err) {
				return fmt.Errorf("onserve: stage executable: %w", err)
			}
			// On any other replication failure, fall through to a fresh
			// upload.
		}
	}
	checksum, err := o.uploadExecutable(sessionID, serviceName, stagedName, site, blob, sp)
	if err != nil {
		return fmt.Errorf("onserve: stage executable: %w", err)
	}
	if o.rep != nil {
		// The executable just landed cold at one site: queue a background
		// push to the top-K least-loaded siblings (deduped per version).
		o.rep.enqueue(repTask{
			sessionID:  sessionID,
			service:    serviceName,
			stagedName: stagedName,
			sourceSite: site,
			checksum:   checksum,
			blob:       blob,
		})
	}
	if o.cfg.StagingCache {
		o.mu.Lock()
		o.staged[cacheKey] = checksum
		o.mu.Unlock()
	}
	return nil
}

// replicaSource picks the site a staged replica of serviceName is pulled
// from. Candidates are sorted so the choice is deterministic (map
// iteration order is not), which keeps replication fan-out stable and
// testable.
func replicaSource(staged map[string]string, serviceName string) string {
	prefix := serviceName + "|"
	best := ""
	for k := range staged {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if site := strings.TrimPrefix(k, prefix); best == "" || site < best {
			best = site
		}
	}
	return best
}

// pollOutput is the paper's workaround loop: "the local client has to
// request the output tentatively. Finally this may result in a service
// customer that requests the application's output more often than
// necessary". Each poll fetches the whole stdout snapshot and writes it
// to the local disk — the periodic disk-write peaks of Figs. 6 and 7 —
// and the watchdog kills invocations that exceed their deadline ("a
// watchdog class, that is used to react correctly ... when a process
// takes too long to complete").
func (o *OnServe) pollOutput(inv *Invocation) {
	wd := NewWatchdog(o.clock, o.cfg.InvocationTimeout, func() {
		o.cfg.Agent.Cancel(inv.sessionID, inv.JobID)
		inv.finish(InvKilled, fmt.Sprintf("watchdog: invocation exceeded %v", o.cfg.InvocationTimeout), o.clock.Now())
	})
	defer wd.Stop()
	lastLen := -1
	for {
		o.clock.Sleep(o.cfg.PollInterval)
		if inv.State().Terminal() {
			return // watchdog or cancel got there first
		}
		// Status first, then one output fetch: when the job turns out to
		// be terminal, the snapshot taken after observing the terminal
		// state is current by construction, so no second fetch is needed
		// (the stock loop fetched the whole stdout twice on the DONE
		// round).
		ps := o.cfg.Tracing.StartSpan("poll", inv.collectCtx())
		o.collector.statusRPCs.Add(1)
		st, err := o.cfg.Agent.Status(inv.sessionID, inv.JobID)
		if err != nil {
			continue // transient; keep polling until the watchdog decides
		}
		changed := false
		out, outErr := o.cfg.Agent.Output(inv.sessionID, inv.JobID)
		if outErr == nil {
			// The snapshot is written to disk on every poll, whether or
			// not anything changed.
			o.collector.outputFetches.Add(1)
			o.collector.outputBytes.Add(uint64(len(out)))
			o.collector.pollDiskWrites.Add(1)
			o.cfg.Probe.DiskWrite(len(out))
			inv.setOutput(out)
			changed = len(out) != lastLen
			lastLen = len(out)
			ps.SetInt("bytes", int64(len(out)))
		}
		// Record only informative ticks (output moved or terminal state
		// observed); a quiet tick abandons its span unrecorded, so
		// sustained polling cannot flood the ring with no-op spans.
		terminal := st.State == "DONE" || st.State == "FAILED" ||
			st.State == "CANCELLED" || st.State == "TIMEOUT"
		if changed || terminal {
			ps.Set("state", st.State)
			ps.End()
		}
		switch st.State {
		case "DONE":
			inv.finish(InvDone, "", o.clock.Now())
			return
		case "FAILED":
			inv.finish(InvFailed, st.Message, o.clock.Now())
			return
		case "CANCELLED":
			inv.finish(InvCancelled, st.Message, o.clock.Now())
			return
		case "TIMEOUT":
			inv.finish(InvKilled, st.Message, o.clock.Now())
			return
		}
	}
}

// waitLongPoll is the fixed collection path: block on the gatekeeper's
// long-poll wait, then fetch the output exactly once. The watchdog still
// guards runaway invocations.
func (o *OnServe) waitLongPoll(inv *Invocation) {
	wd := NewWatchdog(o.clock, o.cfg.InvocationTimeout, func() {
		o.cfg.Agent.Cancel(inv.sessionID, inv.JobID)
		inv.finish(InvKilled, fmt.Sprintf("watchdog: invocation exceeded %v", o.cfg.InvocationTimeout), o.clock.Now())
	})
	defer wd.Stop()
	for {
		if inv.State().Terminal() {
			return
		}
		// The span is recorded only for the round that observes the
		// terminal state; elapsed or failed rounds abandon it unrecorded.
		ps := o.cfg.Tracing.StartSpan("poll", inv.collectCtx())
		ps.Set("long_poll", "true")
		o.collector.statusRPCs.Add(1)
		st, err := o.cfg.Agent.Wait(inv.sessionID, inv.JobID, 30*time.Second)
		if err != nil {
			// Transient gatekeeper trouble: back off one poll interval and
			// retry until the watchdog decides.
			o.clock.Sleep(o.cfg.PollInterval)
			continue
		}
		var terminal InvState
		switch st.State {
		case "DONE":
			terminal = InvDone
		case "FAILED":
			terminal = InvFailed
		case "CANCELLED":
			terminal = InvCancelled
		case "TIMEOUT":
			terminal = InvKilled
		default:
			continue // long-poll round elapsed without a terminal state
		}
		if out, err := o.cfg.Agent.Output(inv.sessionID, inv.JobID); err == nil {
			o.collector.outputFetches.Add(1)
			o.collector.outputBytes.Add(uint64(len(out)))
			o.collector.pollDiskWrites.Add(1)
			o.cfg.Probe.DiskWrite(len(out))
			inv.setOutput(out)
			ps.SetInt("bytes", int64(len(out)))
		}
		ps.Set("state", st.State)
		ps.End()
		inv.finish(terminal, st.Message, o.clock.Now())
		return
	}
}

// noteTerminal records a newly terminal invocation and prunes the
// oldest terminal tickets beyond the retention cap, so sustained traffic
// cannot grow the ticket map without bound. Pruned invocations stay in
// Monitoring through the retained tallies.
func (o *OnServe) noteTerminal(inv *Invocation) {
	retain := o.cfg.InvocationRetention
	if retain == 0 {
		retain = DefaultInvocationRetention
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.termOrder = append(o.termOrder, inv.Ticket)
	if retain < 0 {
		return
	}
	for len(o.termOrder) > retain {
		oldest := o.termOrder[0]
		o.termOrder = o.termOrder[1:]
		old, ok := o.invocations[oldest]
		if !ok {
			continue
		}
		o.termTallies[old.State()]++
		delete(o.invocations, oldest)
	}
}

// Invocation resolves a ticket.
func (o *OnServe) Invocation(ticket string) (*Invocation, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	inv, ok := o.invocations[ticket]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTicket, ticket)
	}
	return inv, nil
}

// CancelInvocation cancels the underlying Grid job; the poller records
// the terminal state.
func (o *OnServe) CancelInvocation(ticket string) error {
	inv, err := o.Invocation(ticket)
	if err != nil {
		return err
	}
	if inv.State().Terminal() {
		return nil
	}
	if _, err := o.cfg.Agent.Cancel(inv.sessionID, inv.JobID); err != nil {
		return fmt.Errorf("onserve: cancel %s: %w", inv.JobID, err)
	}
	return nil
}

// InvocationOutputFile fetches a named output artifact of the
// invocation's Grid job through the agent.
func (o *OnServe) InvocationOutputFile(ticket, name string) ([]byte, error) {
	inv, err := o.Invocation(ticket)
	if err != nil {
		return nil, err
	}
	return o.cfg.Agent.OutputFile(inv.sessionID, inv.JobID, name)
}

// Invocations lists tickets issued so far, ordered by ticket (the
// sequence-number prefix makes that issue order); map iteration order
// must not leak into listings.
func (o *OnServe) Invocations() []*Invocation {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*Invocation, 0, len(o.invocations))
	for _, inv := range o.invocations {
		out = append(out, inv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ticket < out[j].Ticket })
	return out
}

// Monitoring is the appliance's observability snapshot: per-service
// request counters from the SOAP container plus invocation tallies by
// state — the "monitored ... like a normal Web service" requirement of
// paper §IV.
type Monitoring struct {
	Services    []soap.ServiceStats `json:"services"`
	Invocations map[string]int      `json:"invocations"`
	// DB surfaces the blob store's WAL and compaction counters —
	// per-shard when the sharded engine (blobdb.Options.WALShards) is on.
	DB blobdb.Stats `json:"db"`
}

// Monitoring snapshots the middleware's counters. Tallies cover both the
// invocations still resolvable by ticket and those already pruned by the
// retention cap.
func (o *OnServe) Monitoring() Monitoring {
	m := Monitoring{
		Services:    o.cfg.Container.Stats(),
		Invocations: map[string]int{},
		DB:          o.cfg.DB.Stats(),
	}
	o.mu.Lock()
	for st, n := range o.termTallies {
		m.Invocations[string(st)] += n
	}
	o.mu.Unlock()
	for _, inv := range o.Invocations() {
		m.Invocations[string(inv.State())]++
	}
	return m
}

// ExecuteAndWait is the synchronous convenience used by examples: invoke,
// block until terminal, return the final output.
func (o *OnServe) ExecuteAndWait(serviceName string, args map[string]string) (string, error) {
	inv, err := o.Invoke(serviceName, args)
	if err != nil {
		return "", err
	}
	<-inv.DoneChan()
	if st := inv.State(); st != InvDone {
		return inv.Output(), fmt.Errorf("onserve: invocation %s ended %s: %s", inv.Ticket, st, inv.Message())
	}
	return inv.Output(), nil
}
