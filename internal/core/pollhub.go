package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/gram"
)

// CollectorStats counts the work the output-collection path performs,
// whichever path is active (stock tentative poller, long-poll wait, or
// the sharded hub). The poll-hub ablation reads it to compare gatekeeper
// round-trips, bytes fetched and disk writes across variants.
type CollectorStats struct {
	// StatusRPCs is the number of gatekeeper status round-trips: one per
	// Status/Wait call, one per status-batch chunk.
	StatusRPCs uint64 `json:"status_rpcs"`
	// OutputFetches counts output fetches that returned a body.
	OutputFetches uint64 `json:"output_fetches"`
	// OutputNotModified counts polls that confirmed an unchanged
	// snapshot without transferring it (version match or 304).
	OutputNotModified uint64 `json:"output_not_modified"`
	// OutputBytes is the total stdout bytes fetched from the gatekeeper.
	OutputBytes uint64 `json:"output_bytes"`
	// PollDiskWrites counts local snapshot spills to the appliance disk.
	PollDiskWrites uint64 `json:"poll_disk_writes"`
}

// collectorCounters is the mutable, atomically updated form.
type collectorCounters struct {
	statusRPCs        atomic.Uint64
	outputFetches     atomic.Uint64
	outputNotModified atomic.Uint64
	outputBytes       atomic.Uint64
	pollDiskWrites    atomic.Uint64
}

// CollectorStats snapshots the collection-path counters.
func (o *OnServe) CollectorStats() CollectorStats {
	return CollectorStats{
		StatusRPCs:        o.collector.statusRPCs.Load(),
		OutputFetches:     o.collector.outputFetches.Load(),
		OutputNotModified: o.collector.outputNotModified.Load(),
		OutputBytes:       o.collector.outputBytes.Load(),
		PollDiskWrites:    o.collector.pollDiskWrites.Load(),
	}
}

// pollHub is the sharded replacement for the paper's per-invocation
// tentative pollers (Config.PollHub). Invocations are hashed onto a
// small fixed set of shards; each shard worker wakes once per poll
// interval, batches all its in-flight job IDs into one gatekeeper
// status-batch round-trip per session, and fetches stdout only for jobs
// whose output version moved since the last fetch. Watchdog and cancel
// semantics are exactly the stock poller's: a per-invocation watchdog
// still cancels and kills overdue jobs, and externally cancelled jobs
// are finished from the batched status like any other terminal state.
type pollHub struct {
	o      *OnServe
	shards []*hubShard
}

// hubShard owns a subset of in-flight invocations. Its worker goroutine
// is lazy: started by the first registration, exits when the shard
// drains (OnServe has no shutdown hook, so idle shards must not leak
// goroutines).
type hubShard struct {
	hub *pollHub

	mu      sync.Mutex
	jobs    map[string]*hubJob // ticket -> entry
	running bool
}

// hubJob is one invocation's hub-side state. After registration it is
// only touched by the shard worker.
type hubJob struct {
	inv *Invocation
	wd  *Watchdog
	// lastVer is the output version of the snapshot last stored in the
	// invocation; 0 before any output was seen.
	lastVer uint64
}

func newPollHub(o *OnServe, shards int) *pollHub {
	h := &pollHub{o: o}
	for i := 0; i < shards; i++ {
		h.shards = append(h.shards, &hubShard{hub: h, jobs: make(map[string]*hubJob)})
	}
	return h
}

// register hands a freshly submitted invocation to its shard, arming the
// same watchdog the stock poller would.
func (h *pollHub) register(inv *Invocation) {
	o := h.o
	wd := NewWatchdog(o.clock, o.cfg.InvocationTimeout, func() {
		o.cfg.Agent.Cancel(inv.sessionID, inv.JobID)
		inv.finish(InvKilled, fmt.Sprintf("watchdog: invocation exceeded %v", o.cfg.InvocationTimeout), o.clock.Now())
	})
	h.adopt(inv, wd, 0)
}

// adopt inserts an invocation whose watchdog is already armed — a fresh
// registration, or one handed down by the event collector when the push
// channel died. The transferred output cursor keeps the conditional
// fetch path from re-shipping a snapshot the event path already stored.
func (h *pollHub) adopt(inv *Invocation, wd *Watchdog, lastVer uint64) {
	sh := h.shards[shardIndex(inv.Ticket, len(h.shards))]
	sh.mu.Lock()
	sh.jobs[inv.Ticket] = &hubJob{inv: inv, wd: wd, lastVer: lastVer}
	if !sh.running {
		sh.running = true
		go sh.run()
	}
	sh.mu.Unlock()
}

// shardIndex maps a ticket onto a shard.
func shardIndex(ticket string, shards int) int {
	f := fnv.New32a()
	f.Write([]byte(ticket))
	return int(f.Sum32() % uint32(shards))
}

// run is the shard worker loop: sleep one poll interval, reap terminal
// entries, then poll the survivors in one batch per session (tokens are
// signed per credential, so a batch cannot span sessions).
func (sh *hubShard) run() {
	o := sh.hub.o
	for {
		o.clock.Sleep(o.cfg.PollInterval)
		sh.mu.Lock()
		for ticket, hj := range sh.jobs {
			if hj.inv.State().Terminal() {
				hj.wd.Stop()
				delete(sh.jobs, ticket)
			}
		}
		if len(sh.jobs) == 0 {
			// Exit under the lock so a concurrent register either sees
			// running==true and relies on this loop, or restarts it.
			sh.running = false
			sh.mu.Unlock()
			return
		}
		groups := make(map[string][]*hubJob)
		for _, hj := range sh.jobs {
			groups[hj.inv.sessionID] = append(groups[hj.inv.sessionID], hj)
		}
		sh.mu.Unlock()
		for sessionID, batch := range groups {
			sh.pollBatch(sessionID, batch)
		}
	}
}

// pollBatch issues one status-batch round-trip (per gram.MaxBatch chunk)
// for the session's jobs and processes each entry in isolation.
func (sh *hubShard) pollBatch(sessionID string, batch []*hubJob) {
	o := sh.hub.o
	sort.Slice(batch, func(i, j int) bool { return batch[i].inv.JobID < batch[j].inv.JobID })
	ids := make([]string, len(batch))
	for i, hj := range batch {
		ids[i] = hj.inv.JobID
	}
	o.collector.statusRPCs.Add(uint64((len(ids) + gram.MaxBatch - 1) / gram.MaxBatch))
	entries, err := o.cfg.Agent.StatusBatch(sessionID, ids)
	if err != nil || len(entries) != len(batch) {
		return // transport trouble: retry next tick; the watchdog decides
	}
	for i, hj := range batch {
		sh.collectOne(sessionID, hj, entries[i])
	}
}

// collectOne applies one batch entry to its invocation: fetch output if
// (and only if) the version moved, then record a terminal state. A
// per-job error in the entry never affects its batch-mates.
func (sh *hubShard) collectOne(sessionID string, hj *hubJob, e gram.BatchEntry) {
	o := sh.hub.o
	inv := hj.inv
	if e.Error != "" {
		return // isolated per-job failure: keep polling until the watchdog decides
	}
	if inv.State().Terminal() {
		return // cancel or watchdog got there between batching and now
	}
	terminal := e.State == "DONE" || e.State == "FAILED" ||
		e.State == "CANCELLED" || e.State == "TIMEOUT"
	// As in the stock poller, only informative ticks (output moved or
	// terminal) record their span; quiet ticks abandon it unrecorded.
	ps := o.cfg.Tracing.StartSpan("poll", inv.collectCtx())
	ps.Set("batched", "true")
	fetched := false
	if e.OutputVersion != hj.lastVer {
		out, ver, changed, err := o.cfg.Agent.OutputIfChanged(sessionID, inv.JobID, hj.lastVer)
		if err != nil {
			if terminal {
				return // retry next tick rather than finish with stale output
			}
		} else if changed {
			hj.lastVer = ver
			o.collector.outputFetches.Add(1)
			o.collector.outputBytes.Add(uint64(len(out)))
			o.collector.pollDiskWrites.Add(1)
			o.cfg.Probe.DiskWrite(len(out))
			inv.setOutput(out)
			fetched = true
			ps.SetInt("bytes", int64(len(out)))
		} else {
			o.collector.outputNotModified.Add(1)
		}
	} else {
		// The gatekeeper reads job state before the output version, so a
		// terminal state with an unchanged version means the snapshot we
		// already hold is the final output — no fetch at all.
		o.collector.outputNotModified.Add(1)
	}
	if fetched || terminal {
		ps.Set("state", e.State)
		ps.End()
	}
	if !terminal {
		return
	}
	switch e.State {
	case "DONE":
		inv.finish(InvDone, "", o.clock.Now())
	case "FAILED":
		inv.finish(InvFailed, e.Message, o.clock.Now())
	case "CANCELLED":
		inv.finish(InvCancelled, e.Message, o.clock.Now())
	case "TIMEOUT":
		inv.finish(InvKilled, e.Message, o.clock.Now())
	}
	// The run loop reaps the now-terminal entry (and stops its watchdog)
	// on the next tick.
}
