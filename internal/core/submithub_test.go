package core

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/blobdb"
	"repro/internal/cyberaide"
	"repro/internal/gridenv"
	"repro/internal/gridsim"
	"repro/internal/gsh"
	"repro/internal/jsdl"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/soap"
	"repro/internal/trace"
	"repro/internal/uddi"
	"repro/internal/vtime"
)

// newWANFixture wires an onServe over a single-site grid whose servers
// answer across the paper's shaped WAN (~85 KB/s), at a caller-chosen
// time dilation so one staging transfer occupies tens of real
// milliseconds — long enough that a concurrent burst reliably overlaps
// the in-flight upload, which is what the coalescing tests need to be
// deterministic.
func newWANFixture(t *testing.T, scale float64, mutate func(*Config)) *fixture {
	t.Helper()
	clk := vtime.NewScaled(scale)
	env, err := gridenv.Start(gridenv.Options{
		Clock:   clk,
		Sites:   []gridsim.SiteConfig{{Name: "siteA", Nodes: 2, CoresPerNode: 4}},
		Profile: netsim.WAN(clk),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	if _, err := env.AddUser("alice", "pw", 0); err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(clk, 3*time.Second)
	probe := metrics.NewProbe(rec)
	db, err := blobdb.Open(blobdb.Options{Clock: clk, Probe: probe, Cost: metrics.DefaultCost()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	agent := cyberaide.New(cyberaide.Options{
		Endpoints: env.Endpoints(), Clock: clk, Probe: probe, Cost: metrics.DefaultCost(),
	})
	cfg := Config{
		DB:                db,
		Container:         soap.NewServer(probe, metrics.DefaultCost()),
		Registry:          uddi.NewRegistry(clk),
		Agent:             agent,
		BaseURL:           "http://appliance.test",
		Clock:             clk,
		Probe:             probe,
		Cost:              metrics.DefaultCost(),
		PollInterval:      2 * time.Second,
		InvocationTimeout: time.Hour,
		SessionCache:      true,
		StatsTTL:          time.Hour,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ons, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ons.RegisterUser("alice", UserAuth{MyProxyUser: "alice", Passphrase: "pw"})
	return &fixture{ons: ons, env: env, rec: rec, clock: clk, cfg: cfg}
}

// stagingBurst uploads a padded executable, warms the session and stats
// caches with one sequential invocation, then fires n simultaneous
// invocations and returns the submit-counter deltas over the burst.
func stagingBurst(t *testing.T, f *fixture, n int) SubmitStats {
	t.Helper()
	program := gsh.Pad([]byte("compute 1s\necho ok\n"), 512<<10)
	if _, err := f.ons.UploadAndGenerate("alice", "burst.gsh", "", nil, program); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ons.ExecuteAndWait("BurstService", nil); err != nil {
		t.Fatal(err)
	}
	before := f.ons.SubmitStats()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inv, err := f.ons.Invoke("BurstService", nil)
			if err != nil {
				errs <- err
				return
			}
			<-inv.DoneChan()
			if st := inv.State(); st != InvDone {
				errs <- errors.New("invocation ended " + string(st) + ": " + inv.Message())
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	after := f.ons.SubmitStats()
	return SubmitStats{
		Uploads:          after.Uploads - before.Uploads,
		UploadsCoalesced: after.UploadsCoalesced - before.UploadsCoalesced,
		SubmitRPCs:       after.SubmitRPCs - before.SubmitRPCs,
		SubmitsBatched:   after.SubmitsBatched - before.SubmitsBatched,
		StatsRPCs:        after.StatsRPCs - before.StatsRPCs,
		StatsCollapsed:   after.StatsCollapsed - before.StatsCollapsed,
	}
}

func TestColdBurstStagingStockUploadsPerInvocation(t *testing.T) {
	f := newWANFixture(t, 300, nil)
	const n = 8
	d := stagingBurst(t, f, n)
	// Paper-faithful: every invocation pushes the full blob across the
	// WAN again, even while an identical transfer is in flight.
	if d.Uploads != n {
		t.Fatalf("stock burst made %d uploads, want %d", d.Uploads, n)
	}
	if d.UploadsCoalesced != 0 {
		t.Fatalf("stock burst coalesced %d uploads", d.UploadsCoalesced)
	}
}

func TestColdBurstStagingCoalescedSingleUpload(t *testing.T) {
	// Scale 75 (not the stock test's 300): the leader upload's ~18
	// virtual seconds span ~240 real ms, so even a burst goroutine the
	// race detector stalls for ~100 ms still reaches stageExecutable
	// while the flight is open and joins it — at 300 the ~60 ms window
	// flaked under full-suite -race load.
	f := newWANFixture(t, 75, func(cfg *Config) { cfg.CoalesceStaging = true })
	const n = 8
	d := stagingBurst(t, f, n)
	if d.Uploads != 1 {
		t.Fatalf("coalesced burst made %d uploads, want exactly 1", d.Uploads)
	}
	if d.UploadsCoalesced != n-1 {
		t.Fatalf("coalesced burst: %d waiters coalesced, want %d", d.UploadsCoalesced, n-1)
	}
}

func TestStagingSessionFaultRetriesWithFreshLogon(t *testing.T) {
	// A session fault surfacing during staging must flow through Invoke's
	// invalidate-and-retry path and complete the invocation on a fresh
	// logon — with and without coalescing (a flight leader's failure is
	// handed to the pipeline the same way).
	for _, coalesce := range []bool{false, true} {
		f := newFixture(t, func(cfg *Config) {
			cfg.SessionCache = true
			cfg.StatsTTL = time.Hour
			cfg.CoalesceStaging = coalesce
		})
		f.uploadDemo(t)
		if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "1"}); err != nil {
			t.Fatal(err)
		}
		// Kill the cached session behind onServe's back: the next staging
		// upload fails with ErrNoSession.
		f.ons.mu.Lock()
		cached := f.ons.sessions["alice"].id
		f.ons.mu.Unlock()
		f.cfg.Agent.Logout(cached)
		out, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "2"})
		if err != nil {
			t.Fatalf("coalesce=%v: invocation after session death: %v (%q)", coalesce, err, out)
		}
	}
}

func TestReplicateSessionFaultPropagatesWithoutDoomedUpload(t *testing.T) {
	// Regression: stageExecutable used to swallow every Replicate error
	// and fall through to a fresh upload. For a session fault the upload
	// is doomed too — the error must surface (so Invoke's retry fires)
	// without burning a second WAN round-trip on the dead session.
	f := newFixture(t, func(cfg *Config) { cfg.StagingCache = true })
	sess, err := f.cfg.Agent.Authenticate("alice", "pw", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("echo hi\n")
	if err := f.ons.stageExecutable(sess.ID, "RepService", "RepService.gsh", "siteA", blob, nil); err != nil {
		t.Fatal(err)
	}
	f.cfg.Agent.Logout(sess.ID)
	before := f.ons.SubmitStats().Uploads
	err = f.ons.stageExecutable(sess.ID, "RepService", "RepService.gsh", "siteB", blob, nil)
	if !errors.Is(err, cyberaide.ErrNoSession) {
		t.Fatalf("replicate session fault not propagated: %v", err)
	}
	if got := f.ons.SubmitStats().Uploads; got != before {
		t.Fatalf("doomed fall-through upload attempted (%d -> %d uploads)", before, got)
	}
}

func TestInvocationsSortedByTicket(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	var issued []string
	for i := 0; i < 5; i++ {
		inv, err := f.ons.Invoke("MontecarloService", map[string]string{"digits": "1"})
		if err != nil {
			t.Fatal(err)
		}
		issued = append(issued, inv.Ticket)
		<-inv.DoneChan()
	}
	listed := f.ons.Invocations()
	if len(listed) != len(issued) {
		t.Fatalf("listed %d invocations, want %d", len(listed), len(issued))
	}
	for i, inv := range listed {
		if inv.Ticket != issued[i] {
			t.Fatalf("listing not in issue order: position %d has %s, want %s", i, inv.Ticket, issued[i])
		}
	}
	if !sort.SliceIsSorted(listed, func(i, j int) bool { return listed[i].Ticket < listed[j].Ticket }) {
		t.Fatal("listing not sorted by ticket")
	}
}

// hubWindow is the submit-hub window used by the hub tests: 10 virtual
// minutes at the fixture's 20000x dilation is ~30 real milliseconds —
// wide enough that a goroutine burst lands inside one window.
const hubWindow = 10 * time.Minute

func TestSubmitHubBatchesConcurrentSubmissions(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.SubmitHub = true
		cfg.SubmitHubWindow = hubWindow
	})
	sess, err := f.cfg.Agent.Authenticate("alice", "pw", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.cfg.Agent.Upload(sess.ID, "siteA", "hello.gsh", []byte("echo hello\n")); err != nil {
		t.Fatal(err)
	}
	before := f.ons.SubmitStats()
	const n = 8
	jobIDs := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			desc := jsdl.Description{Executable: "hello.gsh", Site: "siteA", WallTime: time.Hour}
			id, err := f.ons.submitJob(sess.ID, &desc, trace.SpanContext{})
			if err != nil {
				errs <- err
				return
			}
			jobIDs[i] = id
		}(i)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, id := range jobIDs {
		if id == "" || seen[id] {
			t.Fatalf("job %d: bad or duplicate id %q", i, id)
		}
		seen[id] = true
	}
	d := f.ons.SubmitStats()
	if got := d.SubmitRPCs - before.SubmitRPCs; got != 1 {
		t.Fatalf("burst of %d submissions cost %d RPCs, want 1", n, got)
	}
	if got := d.SubmitsBatched - before.SubmitsBatched; got != n {
		t.Fatalf("%d submissions batched, want %d", got, n)
	}
}

func TestSubmitHubIsolatesPerEntryFailures(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.SubmitHub = true
		cfg.SubmitHubWindow = hubWindow
	})
	sess, err := f.cfg.Agent.Authenticate("alice", "pw", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.cfg.Agent.Upload(sess.ID, "siteA", "good.gsh", []byte("echo ok\n")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var goodID string
	var goodErr, badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		desc := jsdl.Description{Executable: "good.gsh", Site: "siteA", WallTime: time.Hour}
		goodID, goodErr = f.ons.submitJob(sess.ID, &desc, trace.SpanContext{})
	}()
	go func() {
		defer wg.Done()
		desc := jsdl.Description{Executable: "ghost.gsh", Site: "siteA", WallTime: time.Hour}
		_, badErr = f.ons.submitJob(sess.ID, &desc, trace.SpanContext{})
	}()
	wg.Wait()
	if goodErr != nil || goodID == "" {
		t.Fatalf("good submission failed alongside a bad batch-mate: %v", goodErr)
	}
	// The per-entry error keeps the substring submitPipeline's candidate
	// retry keys on.
	if badErr == nil || !strings.Contains(badErr.Error(), "not staged") {
		t.Fatalf("unstaged submission error %v, want a per-entry \"not staged\"", badErr)
	}
}

func TestSubmitHubDeliversSessionFaultUnwrapped(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.SubmitHub = true })
	desc := jsdl.Description{Executable: "x.gsh", Site: "siteA"}
	_, err := f.ons.submitJob("no-such-session", &desc, trace.SpanContext{})
	// Invoke's invalidate-and-retry path matches with errors.Is: the hub
	// must not lose the sentinel on the way back to each submitter.
	if !errors.Is(err, cyberaide.ErrNoSession) {
		t.Fatalf("whole-batch session fault not delivered as sentinel: %v", err)
	}
}

func TestSubmitHubEndToEndBurst(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.SessionCache = true
		cfg.SubmitHub = true
		cfg.SubmitHubWindow = hubWindow
	})
	f.uploadDemo(t)
	if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "1"}); err != nil {
		t.Fatal(err)
	}
	before := f.ons.SubmitStats()
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "3"})
			if err != nil {
				errs <- err
				return
			}
			if !strings.Contains(out, "pi=3") {
				errs <- errors.New("unexpected output " + out)
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	d := f.ons.SubmitStats()
	if got := d.SubmitsBatched - before.SubmitsBatched; got != n {
		t.Fatalf("%d submissions went through the hub, want %d", got, n)
	}
	if got := d.SubmitRPCs - before.SubmitRPCs; got >= n {
		t.Fatalf("burst of %d cost %d submit RPCs: no coalescing", n, got)
	}
}

func TestSubmitHubStageInRetryFallsBackToStagedSite(t *testing.T) {
	// The per-candidate-site retry on "not staged" must survive the hub:
	// the first candidate's per-entry rejection sends the pipeline to the
	// site where the owner actually staged the data.
	f := newFixture(t, func(cfg *Config) { cfg.SubmitHub = true })
	if _, err := f.ons.UploadAndGenerate("alice", "wordcount.gsh", "", nil,
		[]byte("process corpus.txt 1000\necho counted\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.ons.SetStageIn("WordcountService", []string{"corpus.txt"}); err != nil {
		t.Fatal(err)
	}
	// Corpus staged at siteB only; both sites idle, so pickSites tries
	// siteA first and its submission is rejected "not staged".
	siteB, _ := f.env.Grid.Site("siteB")
	siteB.Store().Put("/O=Repro/CN=alice", "corpus.txt", []byte(strings.Repeat("word ", 1000)))
	inv, err := f.ons.Invoke("WordcountService", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Site != "siteB" {
		t.Fatalf("submitted to %s, want the staged-data fallback siteB", inv.Site)
	}
	<-inv.DoneChan()
	if inv.State() != InvDone {
		t.Fatalf("state %s: %s", inv.State(), inv.Message())
	}
}

func TestSubmitHubWatchdogKillsOverdueInvocation(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.SubmitHub = true
		cfg.InvocationTimeout = 15 * time.Second
	})
	if _, err := f.ons.UploadAndGenerate("alice", "forever.gsh", "", nil, []byte("compute 10h\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("ForeverService", nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-inv.DoneChan():
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never fired under the hub")
	}
	if inv.State() != InvKilled {
		t.Fatalf("state %s", inv.State())
	}
}

func TestCancelOnCompletionTickSubmitHub(t *testing.T) {
	cancelOnCompletionTick(t, func(cfg *Config) {
		cfg.SubmitHub = true
		cfg.SubmitHubWindow = time.Minute
	})
}

func TestGridStatsExpiryStampedeCollapsesToOneFetch(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.StatsTTL = 30 * time.Second })
	sess, err := f.cfg.Agent.Authenticate("alice", "pw", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Plant an expired snapshot so every caller observes a miss at once.
	f.ons.mu.Lock()
	f.ons.stats = []gridsim.SiteStats{{Name: "siteA", Slots: 8, FreeSlots: 8}}
	f.ons.statsAt = f.clock.Now().Add(-time.Hour)
	f.ons.mu.Unlock()
	before := f.ons.SubmitStats().StatsRPCs
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, err := f.ons.gridStats(sess.ID)
			if err != nil {
				errs <- err
				return
			}
			if len(stats) == 0 {
				errs <- errors.New("empty stats snapshot")
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if got := f.ons.SubmitStats().StatsRPCs - before; got != 1 {
		t.Fatalf("stampede on the expired snapshot cost %d fetches, want 1", got)
	}
}
