package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gram"
)

// EventStats counts the push-collection path's work (Config.PushEvents):
// how many event streams were opened, what flowed over them, and how
// often the collector had to fall back down the ladder (push → poll hub).
type EventStats struct {
	// StreamsOpened counts successful /gram/events connections
	// (including reconnects).
	StreamsOpened uint64 `json:"streams_opened"`
	// EventsDelivered counts state/output frames routed to an invocation
	// or stashed for one about to register.
	EventsDelivered uint64 `json:"events_delivered"`
	// Heartbeats counts keepalive frames received.
	Heartbeats uint64 `json:"heartbeats"`
	// Reconnects counts connections after the first per session worker.
	Reconnects uint64 `json:"reconnects"`
	// ResumedFromCursor counts reconnects that presented a Last-Event-ID
	// cursor (so the server replayed the missed window).
	ResumedFromCursor uint64 `json:"resumed_from_cursor"`
	// FallbacksToPoll counts in-flight invocations re-registered with the
	// poll hub after the push channel died or was absent.
	FallbacksToPoll uint64 `json:"fallbacks_to_poll"`
}

// eventCounters is the mutable, atomically updated form.
type eventCounters struct {
	streamsOpened     atomic.Uint64
	eventsDelivered   atomic.Uint64
	heartbeats        atomic.Uint64
	reconnects        atomic.Uint64
	resumedFromCursor atomic.Uint64
	fallbacksToPoll   atomic.Uint64
}

// EventStats snapshots the push-path counters.
func (o *OnServe) EventStats() EventStats {
	return EventStats{
		StreamsOpened:     o.push.streamsOpened.Load(),
		EventsDelivered:   o.push.eventsDelivered.Load(),
		Heartbeats:        o.push.heartbeats.Load(),
		Reconnects:        o.push.reconnects.Load(),
		ResumedFromCursor: o.push.resumedFromCursor.Load(),
		FallbacksToPoll:   o.push.fallbacksToPoll.Load(),
	}
}

// maxConnectAttempts bounds consecutive failed stream connects before a
// worker abandons push and hands its jobs to the poll hub.
const maxConnectAttempts = 3

// maxServeStrikes bounds consecutive connections that died without
// delivering a single frame (heartbeat-timeout or instant close) before
// falling back — one flaky drop is retried, a dead server is not.
const maxServeStrikes = 2

// maxPendingEvents caps the stash of events for jobs whose registration
// has not landed yet (latest event per job wins).
const maxPendingEvents = 4096

// eventCollector is the push-based replacement for the poll hub's
// periodic batches (Config.PushEvents): one long-lived /gram/events
// stream per session carries every job's transitions, so steady-state
// status RPCs drop to zero and detection latency is bounded by delivery,
// not the poll interval. The ladder degrades gracefully: a stock
// gatekeeper (404 on /gram/events) or a dead stream re-registers every
// in-flight invocation with the poll hub, which is always constructed
// alongside the collector.
type eventCollector struct {
	o *OnServe

	mu      sync.Mutex
	workers map[string]*eventWorker // sessionID -> stream worker
	// unsupported latches once the gatekeeper answers 404: every later
	// registration goes straight to the poll hub.
	unsupported bool
}

// eventWorker owns one session's stream: the connect/reconnect loop,
// the cursor, and the set of in-flight invocations events route to.
type eventWorker struct {
	ec        *eventCollector
	sessionID string

	mu   sync.Mutex
	jobs map[string]*evJob // jobID -> entry
	// pending stashes the latest event per job that arrived (via replay
	// or a publish racing registration) before its invocation was added;
	// register applies it immediately.
	pending map[string]gram.EventData
	// stopped latches when the worker drained or fell back; a register
	// that observes it retries against a fresh worker.
	stopped bool

	// cursor is the last state/output frame ID seen; reconnects resume
	// from it so no transition is lost across a drop.
	cursor atomic.Uint64
	// hbTimedOut is set by the heartbeat monitor before it severs a
	// silent stream.
	hbTimedOut atomic.Bool
}

// evJob is one invocation's event-side state.
type evJob struct {
	inv *Invocation
	wd  *Watchdog
	// lastVer is the output version last stored into the invocation;
	// guarded by the worker's mu.
	lastVer uint64
}

func newEventCollector(o *OnServe) *eventCollector {
	return &eventCollector{o: o, workers: make(map[string]*eventWorker)}
}

// register hands a freshly submitted invocation to its session's stream
// worker (starting one if needed), arming the same watchdog every other
// collection path does. Against a known-stock gatekeeper it delegates to
// the poll hub directly.
func (ec *eventCollector) register(inv *Invocation) {
	o := ec.o
	for {
		ec.mu.Lock()
		if ec.unsupported {
			ec.mu.Unlock()
			o.hub.register(inv)
			return
		}
		w := ec.workers[inv.sessionID]
		if w == nil {
			w = &eventWorker{
				ec:        ec,
				sessionID: inv.sessionID,
				jobs:      make(map[string]*evJob),
				pending:   make(map[string]gram.EventData),
			}
			ec.workers[inv.sessionID] = w
			go w.run()
		}
		w.mu.Lock()
		if w.stopped {
			// Lost a race with drain/fallback; the map entry is gone —
			// retry against whatever register finds next.
			w.mu.Unlock()
			ec.mu.Unlock()
			continue
		}
		wd := NewWatchdog(o.clock, o.cfg.InvocationTimeout, func() {
			o.cfg.Agent.Cancel(inv.sessionID, inv.JobID)
			inv.finish(InvKilled, fmt.Sprintf("watchdog: invocation exceeded %v", o.cfg.InvocationTimeout), o.clock.Now())
		})
		w.jobs[inv.JobID] = &evJob{inv: inv, wd: wd}
		pend, havePend := w.pending[inv.JobID]
		if havePend {
			delete(w.pending, inv.JobID)
		}
		w.mu.Unlock()
		ec.mu.Unlock()
		if havePend {
			// The job's events outran its registration (replay on a fresh
			// stream, or publish racing the submit reply): apply the latest
			// one now so a terminal state is never lost.
			w.processEvent(pend, false)
		}
		return
	}
}

// markUnsupported latches the stock-server verdict.
func (ec *eventCollector) markUnsupported() {
	ec.mu.Lock()
	ec.unsupported = true
	ec.mu.Unlock()
}

// run is the worker's connect/serve/reconnect loop. Connection failures
// and zero-frame connections strike toward fallback; a healthy stream
// resets the strikes. The loop exits when the worker drains (no jobs, no
// stash) or falls back.
func (w *eventWorker) run() {
	o := w.ec.o
	attempts := 0
	strikes := 0
	first := true
	for {
		cursor := w.cursor.Load()
		es, err := o.cfg.Agent.Events(w.sessionID, cursor)
		if err != nil {
			if errors.Is(err, gram.ErrNoEvents) {
				// Stock gatekeeper: no event endpoint, ever. Latch and
				// re-register everything with the poll hub.
				w.ec.markUnsupported()
				w.fallback()
				return
			}
			attempts++
			if attempts >= maxConnectAttempts {
				w.fallback()
				return
			}
			o.clock.Sleep(o.cfg.PollInterval)
			continue
		}
		attempts = 0
		o.push.streamsOpened.Add(1)
		if !first {
			o.push.reconnects.Add(1)
			if cursor > 0 {
				o.push.resumedFromCursor.Add(1)
			}
		}
		first = false
		if cursor == 0 {
			// No cursor means no replay guarantee beyond the server's
			// retained ring: fetch authoritative state once.
			w.syncAll()
		}
		frames := w.serve(es)
		if w.tryStop() {
			return
		}
		if frames == 0 {
			strikes++
			if strikes >= maxServeStrikes {
				w.fallback()
				return
			}
		} else {
			strikes = 0
		}
	}
}

// serve consumes one stream until it dies (error, heartbeat timeout) or
// the worker drains; it returns how many frames arrived. A heartbeat
// monitor severs the stream when it has been silent for over three
// announced intervals.
func (w *eventWorker) serve(es *gram.EventStream) (frames int) {
	o := w.ec.o
	w.hbTimedOut.Store(false)
	var lastFrame atomic.Int64
	lastFrame.Store(o.clock.Now().UnixNano())
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-o.clock.After(es.Heartbeat):
			}
			if o.clock.Now().UnixNano()-lastFrame.Load() > 3*int64(es.Heartbeat) {
				w.hbTimedOut.Store(true)
				es.Close()
				return
			}
		}
	}()
	defer es.Close()
	for {
		f, err := es.Next()
		if err != nil {
			return frames
		}
		frames++
		lastFrame.Store(o.clock.Now().UnixNano())
		switch f.Event {
		case gram.EventHeartbeat:
			o.push.heartbeats.Add(1)
		case gram.EventResync:
			// The server's replay window (or our subscriber buffer) lost
			// events: re-fetch authoritative state, then keep streaming.
			w.syncAll()
		case gram.EventState, gram.EventOutput:
			if f.ID > w.cursor.Load() {
				w.cursor.Store(f.ID)
			}
			var ev gram.EventData
			if err := json.Unmarshal(f.Data, &ev); err != nil || ev.JobID == "" {
				// Malformed frame: the stream framing still holds, but this
				// event's content is lost — resync rather than guess.
				w.syncAll()
				continue
			}
			o.push.eventsDelivered.Add(1)
			w.processEvent(ev, true)
		}
		if w.drained() {
			return frames
		}
	}
}

// drained reports an empty worker (no in-flight jobs, no stash).
func (w *eventWorker) drained() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.jobs) == 0 && len(w.pending) == 0
}

// tryStop retires a drained worker (removing it from the collector) so
// idle sessions hold no stream and leak no goroutines — the same
// discipline as the poll hub's lazy shards. Returns false if jobs
// remain or arrived concurrently.
func (w *eventWorker) tryStop() bool {
	w.ec.mu.Lock()
	defer w.ec.mu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.jobs) > 0 || len(w.pending) > 0 {
		return false
	}
	w.stopped = true
	if w.ec.workers[w.sessionID] == w {
		delete(w.ec.workers, w.sessionID)
	}
	return true
}

// fallback retires the worker and re-registers every in-flight
// invocation with the poll hub, transferring each one's armed watchdog
// and output cursor intact — no lost terminal states, no double kill
// timers.
func (w *eventWorker) fallback() {
	o := w.ec.o
	w.ec.mu.Lock()
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		w.ec.mu.Unlock()
		return
	}
	w.stopped = true
	if w.ec.workers[w.sessionID] == w {
		delete(w.ec.workers, w.sessionID)
	}
	jobs := w.jobs
	w.jobs = make(map[string]*evJob)
	w.pending = make(map[string]gram.EventData)
	w.mu.Unlock()
	w.ec.mu.Unlock()
	for _, ej := range jobs {
		if ej.inv.State().Terminal() {
			ej.wd.Stop()
			continue
		}
		o.push.fallbacksToPoll.Add(1)
		o.hub.adopt(ej.inv, ej.wd, ej.lastVer)
	}
}

// syncAll fetches authoritative state for every registered job in one
// status-batch round-trip — the resync the push channel falls back on
// when its event history has a gap.
func (w *eventWorker) syncAll() {
	o := w.ec.o
	w.mu.Lock()
	ids := make([]string, 0, len(w.jobs))
	for id := range w.jobs {
		ids = append(ids, id)
	}
	w.mu.Unlock()
	if len(ids) == 0 {
		return
	}
	sort.Strings(ids)
	o.collector.statusRPCs.Add(uint64((len(ids) + gram.MaxBatch - 1) / gram.MaxBatch))
	entries, err := o.cfg.Agent.StatusBatch(w.sessionID, ids)
	if err != nil || len(entries) != len(ids) {
		return // transient: the stream (or the watchdog) decides
	}
	for _, e := range entries {
		if e.Error != "" {
			continue
		}
		w.processEvent(gram.EventData{
			JobID:         e.JobID,
			State:         e.State,
			Message:       e.Message,
			Site:          e.Site,
			OutputVersion: e.OutputVersion,
		}, false)
	}
}

// processEvent routes one event (pushed, replayed, or synthesised by a
// resync) to its invocation: fetch stdout through the hub's conditional
// path when the version moved, then record a terminal state. Collection
// semantics — counters, disk accounting, span discipline, terminal
// mapping — mirror the poll hub's collectOne exactly. stash controls
// whether an event for an unknown job is kept for its registration.
func (w *eventWorker) processEvent(ev gram.EventData, stash bool) {
	o := w.ec.o
	w.mu.Lock()
	ej := w.jobs[ev.JobID]
	if ej == nil {
		if stash && !w.stopped && len(w.pending) < maxPendingEvents {
			w.pending[ev.JobID] = ev // in-order stream: latest event wins
		}
		w.mu.Unlock()
		return
	}
	lastVer := ej.lastVer
	w.mu.Unlock()
	inv := ej.inv
	if inv.State().Terminal() {
		// Cancel or watchdog got there between publish and delivery.
		w.reap(ej)
		return
	}
	terminal := ev.State == "DONE" || ev.State == "FAILED" ||
		ev.State == "CANCELLED" || ev.State == "TIMEOUT"
	// As on the poll paths, only informative deliveries (output fetched
	// or terminal) record their span; the rest abandon it unrecorded.
	ps := o.cfg.Tracing.StartSpan("event", inv.collectCtx())
	if ev.AtUnixNano > 0 {
		ps.SetInt("delivery_us", o.clock.Now().Sub(time.Unix(0, ev.AtUnixNano)).Microseconds())
	}
	fetched := false
	if ev.OutputVersion > lastVer {
		out, ver, changed, err := o.cfg.Agent.OutputIfChanged(w.sessionID, ev.JobID, lastVer)
		switch {
		case err != nil:
			if terminal {
				// Never finish with stale output: retry the final fetch off
				// the stream loop; the watchdog bounds how long.
				go w.finishWhenFetchable(ej, ev)
				return
			}
		case changed:
			w.mu.Lock()
			newer := ver > ej.lastVer
			if newer {
				ej.lastVer = ver
			}
			w.mu.Unlock()
			if newer {
				o.collector.outputFetches.Add(1)
				o.collector.outputBytes.Add(uint64(len(out)))
				o.collector.pollDiskWrites.Add(1)
				o.cfg.Probe.DiskWrite(len(out))
				inv.setOutput(out)
				fetched = true
				ps.SetInt("bytes", int64(len(out)))
			} else {
				o.collector.outputNotModified.Add(1)
			}
		default:
			o.collector.outputNotModified.Add(1)
		}
	} else if terminal {
		// Events arrive in publication order, so a terminal event whose
		// version we already fetched means the snapshot we hold is final.
		o.collector.outputNotModified.Add(1)
	}
	if fetched || terminal {
		if ev.State != "" {
			ps.Set("state", ev.State)
		}
		ps.End()
	}
	if terminal {
		w.finishInv(ej, ev)
	}
}

// finishWhenFetchable retries the final output fetch of a terminal
// event until it lands (or the invocation went terminal another way),
// then finishes the invocation. The watchdog bounds the retries.
func (w *eventWorker) finishWhenFetchable(ej *evJob, ev gram.EventData) {
	o := w.ec.o
	for {
		o.clock.Sleep(o.cfg.PollInterval)
		if ej.inv.State().Terminal() {
			w.reap(ej)
			return
		}
		out, ver, changed, err := o.cfg.Agent.OutputIfChanged(w.sessionID, ev.JobID, 0)
		if err != nil {
			continue
		}
		if changed {
			w.mu.Lock()
			if ver > ej.lastVer {
				ej.lastVer = ver
			}
			w.mu.Unlock()
			o.collector.outputFetches.Add(1)
			o.collector.outputBytes.Add(uint64(len(out)))
			o.collector.pollDiskWrites.Add(1)
			o.cfg.Probe.DiskWrite(len(out))
			ej.inv.setOutput(out)
		}
		w.finishInv(ej, ev)
		return
	}
}

// finishInv records the terminal state (same mapping as every other
// collection path), disarms the watchdog and reaps the entry.
func (w *eventWorker) finishInv(ej *evJob, ev gram.EventData) {
	o := w.ec.o
	switch ev.State {
	case "DONE":
		ej.inv.finish(InvDone, "", o.clock.Now())
	case "FAILED":
		ej.inv.finish(InvFailed, ev.Message, o.clock.Now())
	case "CANCELLED":
		ej.inv.finish(InvCancelled, ev.Message, o.clock.Now())
	case "TIMEOUT":
		ej.inv.finish(InvKilled, ev.Message, o.clock.Now())
	}
	w.reap(ej)
}

// reap drops a terminal invocation's entry and stops its watchdog.
func (w *eventWorker) reap(ej *evJob) {
	ej.wd.Stop()
	w.mu.Lock()
	if w.jobs[ej.inv.JobID] == ej {
		delete(w.jobs, ej.inv.JobID)
	}
	w.mu.Unlock()
}
