package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/gridsim"
	"repro/internal/trace"
)

// waitFor polls cond until it holds or the (real-time) deadline passes.
// Terminal callbacks run on poller goroutines just after DoneChan closes,
// so map-shape assertions need a grace period.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSessionCacheReusesSession(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.SessionCache = true })
	f.uploadDemo(t)
	for i := 0; i < 3; i++ {
		if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "1"}); err != nil {
			t.Fatal(err)
		}
	}
	if n := f.cfg.Agent.SessionCount(); n != 1 {
		t.Fatalf("agent holds %d sessions, want 1 reused session", n)
	}
}

func TestStockAuthenticatesPerInvocation(t *testing.T) {
	f := newFixture(t, nil) // cache off: the paper's behaviour
	f.uploadDemo(t)
	for i := 0; i < 2; i++ {
		if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "1"}); err != nil {
			t.Fatal(err)
		}
	}
	if n := f.cfg.Agent.SessionCount(); n != 2 {
		t.Fatalf("agent holds %d sessions, want one fresh logon per invocation", n)
	}
}

func TestGridSessionExpiryReauthenticates(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.SessionCache = true })
	auth := UserAuth{MyProxyUser: "alice", Passphrase: "pw"}
	id1, cached, err := f.ons.gridSession("alice", auth, trace.SpanContext{})
	if err != nil || cached {
		t.Fatalf("first session id=%q cached=%v err=%v", id1, cached, err)
	}
	id2, cached, err := f.ons.gridSession("alice", auth, trace.SpanContext{})
	if err != nil || !cached || id2 != id1 {
		t.Fatalf("second session id=%q cached=%v err=%v, want cached %q", id2, cached, err, id1)
	}
	// Age the cached entry past its expiry margin: the next call must
	// perform a fresh logon instead of handing out the stale session.
	f.ons.mu.Lock()
	f.ons.sessions["alice"].expiresAt = f.clock.Now().Add(-time.Second)
	f.ons.mu.Unlock()
	id3, cached, err := f.ons.gridSession("alice", auth, trace.SpanContext{})
	if err != nil || cached {
		t.Fatalf("expired session id=%q cached=%v err=%v, want fresh logon", id3, cached, err)
	}
	if f.cfg.Agent.SessionCount() != 2 {
		t.Fatalf("agent sessions %d, want 2 (initial + re-auth)", f.cfg.Agent.SessionCount())
	}
}

func TestSessionCacheInvalidatedOnAuthFault(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.SessionCache = true })
	f.uploadDemo(t)
	if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "1"}); err != nil {
		t.Fatal(err)
	}
	f.ons.mu.Lock()
	cachedID := f.ons.sessions["alice"].id
	f.ons.mu.Unlock()
	// Kill the session behind the cache's back (an agent-side expiry): the
	// next invocation must invalidate the stale entry, re-authenticate and
	// still succeed.
	f.cfg.Agent.Logout(cachedID)
	if out, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "2"}); err != nil {
		t.Fatalf("invocation after session loss failed (%q): %v", out, err)
	}
	f.ons.mu.Lock()
	newID := f.ons.sessions["alice"].id
	f.ons.mu.Unlock()
	if newID == cachedID {
		t.Fatalf("stale session %q still cached", cachedID)
	}
}

func TestStatsTTLServesCachedSnapshot(t *testing.T) {
	ttl := 10 * time.Minute
	f := newFixture(t, func(cfg *Config) { cfg.StatsTTL = ttl })
	auth := UserAuth{MyProxyUser: "alice", Passphrase: "pw"}
	sessID, _, err := f.ons.gridSession("alice", auth, trace.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ons.pickSites(sessID, "MontecarloService", "", nil, trace.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	// Plant a sentinel snapshot: while the TTL holds, pickSites must use
	// it rather than ask the gatekeeper again.
	f.ons.mu.Lock()
	f.ons.stats = []gridsim.SiteStats{{Name: "siteB", Slots: 8, FreeSlots: 8}}
	f.ons.statsAt = f.clock.Now()
	f.ons.mu.Unlock()
	sites, err := f.ons.pickSites(sessID, "MontecarloService", "", nil, trace.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 || sites[0] != "siteB" {
		t.Fatalf("pickSites ignored cached snapshot: %v", sites)
	}
	// Expire the snapshot: the next call refetches both sites.
	f.ons.mu.Lock()
	f.ons.statsAt = f.clock.Now().Add(-2 * ttl)
	f.ons.mu.Unlock()
	sites, err = f.ons.pickSites(sessID, "MontecarloService", "", nil, trace.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 2 {
		t.Fatalf("expired snapshot not refreshed: %v", sites)
	}
}

func TestConcurrentWarmInvocations(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.SessionCache = true
		cfg.StatsTTL = 30 * time.Second
	})
	f.uploadDemo(t)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "7"}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if n := f.cfg.Agent.SessionCount(); n < 1 || n > workers {
		t.Fatalf("agent sessions %d", n)
	}
}

func TestInvocationPruning(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.InvocationRetention = 2 })
	f.uploadDemo(t)
	var tickets []string
	for i := 0; i < 4; i++ {
		inv, err := f.ons.Invoke("MontecarloService", map[string]string{"digits": "1"})
		if err != nil {
			t.Fatal(err)
		}
		<-inv.DoneChan()
		if inv.State() != InvDone {
			t.Fatalf("invocation %d ended %s: %s", i, inv.State(), inv.Message())
		}
		tickets = append(tickets, inv.Ticket)
	}
	waitFor(t, func() bool { return len(f.ons.Invocations()) == 2 })
	// The two oldest tickets are pruned, the two newest still resolve.
	for _, old := range tickets[:2] {
		if _, err := f.ons.Invocation(old); !errors.Is(err, ErrNoTicket) {
			t.Fatalf("pruned ticket %s resolved: %v", old, err)
		}
	}
	for _, fresh := range tickets[2:] {
		if _, err := f.ons.Invocation(fresh); err != nil {
			t.Fatalf("retained ticket %s: %v", fresh, err)
		}
	}
	// Monitoring still tallies all four through the retained counters.
	if got := f.ons.Monitoring().Invocations[string(InvDone)]; got != 4 {
		t.Fatalf("monitoring DONE = %d, want 4", got)
	}
}

func TestUnlimitedRetentionKeepsEverything(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.InvocationRetention = -1 })
	f.uploadDemo(t)
	for i := 0; i < 3; i++ {
		if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "1"}); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(f.ons.Invocations()); n != 3 {
		t.Fatalf("invocations retained %d, want 3", n)
	}
	if got := f.ons.Monitoring().Invocations[string(InvDone)]; got != 3 {
		t.Fatalf("monitoring DONE = %d, want 3", got)
	}
}

func TestReplicaSource(t *testing.T) {
	staged := map[string]string{
		"SvcService|siteC":   "sum1",
		"SvcService|siteA":   "sum2",
		"OtherService|siteZ": "sum3",
	}
	if got := replicaSource(staged, "SvcService"); got != "siteA" {
		t.Fatalf("replicaSource = %q, want deterministic smallest site siteA", got)
	}
	if got := replicaSource(staged, "MissingService"); got != "" {
		t.Fatalf("replicaSource for unstaged service = %q", got)
	}
	// "Svc" must not prefix-match "SvcService|..." keys.
	if got := replicaSource(staged, "Svc"); got != "" {
		t.Fatalf("replicaSource prefix leak: %q", got)
	}
}
