package core

import (
	"sync"
	"time"

	"repro/internal/vtime"
)

// Watchdog fires a callback once if it is not stopped before the timeout
// elapses on the given clock — the reproduction of the paper's "watchdog
// class, that is used to react correctly in some situations where a
// problem may occur (for example when a process takes too long to
// complete)".
type Watchdog struct {
	stopCh chan struct{}
	once   sync.Once
	fired  chan struct{}
}

// NewWatchdog arms a watchdog. onTimeout runs at most once, from the
// watchdog's own goroutine.
func NewWatchdog(clock vtime.Clock, timeout time.Duration, onTimeout func()) *Watchdog {
	w := &Watchdog{
		stopCh: make(chan struct{}),
		fired:  make(chan struct{}),
	}
	go func() {
		select {
		case <-clock.After(timeout):
			onTimeout()
			close(w.fired)
		case <-w.stopCh:
		}
	}()
	return w
}

// Stop disarms the watchdog; safe to call multiple times and after fire.
func (w *Watchdog) Stop() {
	w.once.Do(func() { close(w.stopCh) })
}

// Fired returns a channel closed after the callback has run.
func (w *Watchdog) Fired() <-chan struct{} { return w.fired }
