package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/gridsim"
	"repro/internal/jsdl"
)

// Failure injection: the middleware must degrade with useful errors, not
// hangs, when the substrates misbehave.

func TestInvokeWhenAllSitesDraining(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	for _, name := range f.env.Grid.SiteNames() {
		site, _ := f.env.Grid.Site(name)
		site.Drain()
	}
	_, err := f.ons.Invoke("MontecarloService", map[string]string{"digits": "1"})
	if err == nil || !strings.Contains(err.Error(), "submit") {
		t.Fatalf("got %v", err)
	}
}

func TestInvokeAfterExecutableDeletedFromDB(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	// Pull the record out from under the deployed service.
	if err := f.cfg.DB.Table(ExecutablesTable).Delete("MontecarloService"); err != nil {
		t.Fatal(err)
	}
	_, err := f.ons.Invoke("MontecarloService", map[string]string{"digits": "1"})
	if !errors.Is(err, ErrNoSuchService) {
		t.Fatalf("got %v", err)
	}
}

func TestInvokeWithRevokedMyProxyCredential(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	// alice rotates her MyProxy passphrase; the appliance's stored logon
	// is now stale.
	f.ons.RegisterUser("alice", UserAuth{MyProxyUser: "alice", Passphrase: "stale"})
	_, err := f.ons.Invoke("MontecarloService", map[string]string{"digits": "1"})
	if err == nil || !strings.Contains(err.Error(), "authenticate") {
		t.Fatalf("got %v", err)
	}
}

func TestInvokeWithGridDown(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	f.env.Close() // the whole grid vanishes
	_, err := f.ons.Invoke("MontecarloService", map[string]string{"digits": "1"})
	if err == nil {
		t.Fatal("invoke succeeded against a dead grid")
	}
}

func TestStagedFileVanishesBeforeRun(t *testing.T) {
	// Occupy the only slot, submit a second job, then delete its staged
	// executable before it can start: the grid job must fail cleanly and
	// the invocation must follow.
	f := newFixture(t, nil)
	f.uploadDemo(t)
	inv1, err := f.ons.Invoke("MontecarloService", map[string]string{"digits": "1"})
	if err != nil {
		t.Fatal(err)
	}
	site, _ := f.env.Grid.Site(inv1.Site)
	job1, _ := f.env.Grid.Job(inv1.JobID)

	// Saturate the site with effectively endless hogs so the next job
	// queues behind them (cancelled at the end of the test).
	hogSrc := "compute 23h\n"
	site.Store().Put("/O=Repro/CN=alice", "hog.gsh", []byte(hogSrc))
	var hogs []*gridsim.Job
	for site.Stats().FreeSlots > 0 {
		j, err := site.Submit(jsdlFor("hog.gsh"))
		if err != nil {
			t.Fatal(err)
		}
		hogs = append(hogs, j)
	}
	defer func() {
		for _, h := range hogs {
			site.Cancel(h.ID)
		}
	}()
	inv2, err := f.ons.Invoke("MontecarloService", map[string]string{"digits": "2"})
	if err != nil {
		// The broker may reject if every site saturated; nothing to test.
		t.Skipf("invocation rejected: %v", err)
	}
	if inv2.Site != inv1.Site {
		t.Skip("broker picked an unsaturated sibling; vanish path not exercised")
	}
	job2, err := f.env.Grid.Job(inv2.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if job2.State() != gridsim.Queued {
		t.Skip("job dispatched before the file could vanish")
	}
	// Queued behind the hogs: remove its staged file, then release slots.
	site.Store().Delete("/O=Repro/CN=alice", "MontecarloService.gsh")
	for _, h := range hogs {
		site.Cancel(h.ID)
	}
	<-inv1.DoneChan()
	<-job1.Done()
	<-inv2.DoneChan()
	if inv2.State() == InvDone {
		t.Fatal("job ran without its staged executable")
	}
	if !strings.Contains(inv2.Message(), "stage-in vanished") {
		t.Fatalf("message %q", inv2.Message())
	}
}

func jsdlFor(exe string) jsdl.Description {
	return jsdl.Description{Owner: "/O=Repro/CN=alice", Executable: exe}
}

func TestWatchdogCancelRace(t *testing.T) {
	// Cancel and watchdog racing on the same invocation must settle on
	// exactly one terminal state and never hang.
	f := newFixture(t, func(cfg *Config) {
		cfg.InvocationTimeout = 15 * time.Second
		cfg.PollInterval = 2 * time.Second
	})
	if _, err := f.ons.UploadAndGenerate("alice", "racy.gsh", "", nil, []byte("compute 10h\n")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		inv, err := f.ons.Invoke("RacyService", nil)
		if err != nil {
			t.Fatal(err)
		}
		go f.ons.CancelInvocation(inv.Ticket)
		select {
		case <-inv.DoneChan():
		case <-time.After(10 * time.Second):
			t.Fatal("invocation hung under cancel/watchdog race")
		}
		st := inv.State()
		if st != InvCancelled && st != InvKilled {
			t.Fatalf("state %s", st)
		}
	}
}
