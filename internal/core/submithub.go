package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/gram"
	"repro/internal/jsdl"
	"repro/internal/trace"
)

// SubmitStats counts the work the submission front-end performs on the
// way *into* the grid — the twin of CollectorStats for the output side.
// The submit ablation reads it to compare WAN uploads, gatekeeper
// submit round-trips and scheduler-statistics fetches across variants.
type SubmitStats struct {
	// Uploads is the number of executable stagings that crossed the WAN
	// (Agent.Upload calls).
	Uploads uint64 `json:"uploads"`
	// UploadsCoalesced counts stagings served by another invocation's
	// in-flight upload (Config.CoalesceStaging) instead of their own.
	UploadsCoalesced uint64 `json:"uploads_coalesced"`
	// UploadRetries counts transfers that failed transiently and were
	// retried once after a backoff (each retry is also in Uploads).
	UploadRetries uint64 `json:"upload_retries"`
	// SubmitRPCs is the number of gatekeeper submit round-trips: one per
	// Submit call, one per submit-batch chunk.
	SubmitRPCs uint64 `json:"submit_rpcs"`
	// SubmitsBatched counts job descriptions that travelled inside a
	// submit-batch RPC (Config.SubmitHub).
	SubmitsBatched uint64 `json:"submits_batched"`
	// StatsRPCs is the number of scheduler-statistics fetches that went
	// to the gatekeeper.
	StatsRPCs uint64 `json:"stats_rpcs"`
	// StatsCollapsed counts pickSites callers that shared an in-flight
	// statistics fetch instead of issuing their own (Config.StatsTTL).
	StatsCollapsed uint64 `json:"stats_collapsed"`
}

// submitCounters is the mutable, atomically updated form.
type submitCounters struct {
	uploads          atomic.Uint64
	uploadsCoalesced atomic.Uint64
	uploadRetries    atomic.Uint64
	submitRPCs       atomic.Uint64
	submitsBatched   atomic.Uint64
	statsRPCs        atomic.Uint64
	statsCollapsed   atomic.Uint64
}

// SubmitStats snapshots the submission-path counters.
func (o *OnServe) SubmitStats() SubmitStats {
	return SubmitStats{
		Uploads:          o.submit.uploads.Load(),
		UploadsCoalesced: o.submit.uploadsCoalesced.Load(),
		UploadRetries:    o.submit.uploadRetries.Load(),
		SubmitRPCs:       o.submit.submitRPCs.Load(),
		SubmitsBatched:   o.submit.submitsBatched.Load(),
		StatsRPCs:        o.submit.statsRPCs.Load(),
		StatsCollapsed:   o.submit.statsCollapsed.Load(),
	}
}

// submitJob sends one job description to the gatekeeper, through the
// submit hub when Config.SubmitHub is on and directly otherwise. Either
// way the caller sees the per-job result, so submitPipeline's
// per-candidate-site staging-retry semantics are unchanged.
func (o *OnServe) submitJob(sessionID string, desc *jsdl.Description, tc trace.SpanContext) (string, error) {
	if o.shub != nil {
		return o.shub.submit(sessionID, desc, tc)
	}
	o.submit.submitRPCs.Add(1)
	return o.cfg.Agent.WithTrace(tc).Submit(sessionID, desc)
}

// submitHub coalesces GRAM submissions (Config.SubmitHub): submissions
// arriving within one SubmitHubWindow are collected and sent as a
// single submit-batch round-trip per gatekeeper session (tokens are
// signed per credential, so a batch cannot span sessions). Per-job
// failures come back in their own batch entry and are delivered to only
// that submitter, so one bad description never fails its batch-mates.
type submitHub struct {
	o *OnServe

	mu sync.Mutex
	// pending queues submissions per session until the window closes;
	// the first arrival of a window starts its flusher.
	pending map[string][]*submitTicket
}

// submitTicket is one queued submission and its reply channel. trace is
// the submitter's wire context, carried through the batch so the
// gatekeeper's per-entry span parents under the right invocation.
type submitTicket struct {
	desc  *jsdl.Description
	trace string
	done  chan submitOutcome
}

// submitOutcome is one submission's result.
type submitOutcome struct {
	jobID string
	err   error
}

func newSubmitHub(o *OnServe) *submitHub {
	return &submitHub{o: o, pending: make(map[string][]*submitTicket)}
}

// submit enqueues one description and blocks until its batch round-trip
// delivers the assigned job ID or this entry's error.
func (h *submitHub) submit(sessionID string, desc *jsdl.Description, tc trace.SpanContext) (string, error) {
	t := &submitTicket{desc: desc, trace: tc.String(), done: make(chan submitOutcome, 1)}
	h.mu.Lock()
	h.pending[sessionID] = append(h.pending[sessionID], t)
	if len(h.pending[sessionID]) == 1 {
		go h.flushAfterWindow(sessionID)
	}
	h.mu.Unlock()
	out := <-t.done
	return out.jobID, out.err
}

// flushAfterWindow waits out the coalescing window, then submits
// everything the session queued in one batch RPC (per gram.MaxBatch
// chunk). Arrivals during the RPC start a fresh window.
func (h *submitHub) flushAfterWindow(sessionID string) {
	o := h.o
	o.clock.Sleep(o.cfg.SubmitHubWindow)
	h.mu.Lock()
	batch := h.pending[sessionID]
	delete(h.pending, sessionID)
	h.mu.Unlock()
	descs := make([]*jsdl.Description, len(batch))
	traces := make([]string, len(batch))
	for i, t := range batch {
		descs[i] = t.desc
		traces[i] = t.trace
	}
	o.submit.submitRPCs.Add(uint64((len(descs) + gram.MaxBatch - 1) / gram.MaxBatch))
	o.submit.submitsBatched.Add(uint64(len(descs)))
	entries, err := o.cfg.Agent.SubmitBatchTraced(sessionID, descs, traces)
	if err == nil && len(entries) != len(batch) {
		err = fmt.Errorf("onserve: submit batch answered %d of %d entries", len(entries), len(batch))
	}
	for i, t := range batch {
		switch {
		case err != nil:
			// Whole-batch failure (transport, or a session fault from
			// resolving the credential): every submitter sees it, and
			// Invoke's session-fault retry still fires because the error
			// value is delivered unwrapped.
			t.done <- submitOutcome{err: err}
		case entries[i].Error != "":
			t.done <- submitOutcome{err: errors.New(entries[i].Error)}
		default:
			t.done <- submitOutcome{jobID: entries[i].JobID}
		}
	}
}
