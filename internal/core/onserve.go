// Package core implements Cyberaide onServe, the paper's contribution: a
// lightweight middleware that realises the SaaS model on production Grids
// by translating Web-service invocations into the Job-Submission-
// Execution model. It accepts user executables, stores them in the blob
// database, synthesises and deploys one SOAP service per executable,
// publishes it in the UDDI registry, and — on invocation — retrieves the
// file, authenticates through the Cyberaide agent, stages the executable
// to a Grid site, generates a job description, submits it, and polls the
// output tentatively (the paper's workaround for missing job callbacks).
package core

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
	"unicode"

	"repro/internal/blobdb"
	"repro/internal/cyberaide"
	"repro/internal/gridsim"
	"repro/internal/gsh"
	"repro/internal/metrics"
	"repro/internal/soap"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/uddi"
	"repro/internal/vtime"
	"repro/internal/wsdl"
)

// Defaults.
const (
	// DefaultPollInterval is the tentative output polling cadence; the
	// paper's figures show output written to disk "in a relative constant
	// interval" of roughly three sample buckets.
	DefaultPollInterval = 9 * time.Second
	// DefaultInvocationTimeout is the watchdog limit per invocation.
	DefaultInvocationTimeout = 2 * time.Hour
	// ExecutablesTable is the blobdb table holding uploads.
	ExecutablesTable = "executables"
	// DefaultInvocationRetention is how many terminal invocations stay
	// resolvable by ticket before the oldest are pruned (their state
	// tallies are retained for Monitoring).
	DefaultInvocationRetention = 4096
	// DefaultPollHubShards is how many shard workers the poll hub runs
	// when Config.PollHubShards is unset.
	DefaultPollHubShards = 4
	// DefaultSubmitHubWindow is the submit hub's coalescing window when
	// Config.SubmitHubWindow is unset.
	DefaultSubmitHubWindow = 5 * time.Millisecond
)

// Errors.
var (
	ErrBadName       = errors.New("onserve: invalid service name")
	ErrNoSuchService = errors.New("onserve: no such service")
	ErrNoSuchUser    = errors.New("onserve: user has no grid credentials registered")
	ErrNoTicket      = errors.New("onserve: no such invocation ticket")
	ErrBadProgram    = errors.New("onserve: uploaded executable is not a valid gsh program")
)

// UserAuth holds the MyProxy logon data onServe uses to act for a portal
// user.
type UserAuth struct {
	MyProxyUser string
	Passphrase  string
}

// Config wires an OnServe instance.
type Config struct {
	// DB stores uploaded executables.
	DB *blobdb.DB
	// Container hosts the generated SOAP services.
	Container *soap.Server
	// Registry is the UDDI registry services are published into.
	Registry *uddi.Registry
	// Agent mediates all Grid access.
	Agent *cyberaide.Agent
	// BaseURL is the public root of the SOAP container, used in WSDL
	// endpoint addresses and UDDI records.
	BaseURL string
	// Clock; nil means real time.
	Clock vtime.Clock
	// Probe accounts appliance-host resources; may be nil.
	Probe *metrics.Probe
	// Cost supplies the CPU cost model.
	Cost metrics.Cost
	// PollInterval overrides DefaultPollInterval.
	PollInterval time.Duration
	// InvocationTimeout overrides DefaultInvocationTimeout (watchdog).
	InvocationTimeout time.Duration
	// ProxyLifetime for per-invocation MyProxy logons; default 12h.
	ProxyLifetime time.Duration
	// StagingCache, when true, skips re-uploading an executable whose
	// checksum is already staged at the target site. The paper leaves
	// this off — files "will even be reloaded when executed a 2nd time" —
	// and suggests the cache as an improvement; it is benchmarked as an
	// ablation.
	StagingCache bool
	// DirectDBWrite, when true, skips the temporary-file spill before the
	// database insert. The paper's implementation has the double write
	// ("the file is first stored temporarily and then in the database");
	// the fix is benchmarked as an ablation.
	DirectDBWrite bool
	// UseLongPoll replaces the tentative output polling with the GRAM
	// long-poll wait extension: one blocking request per invocation
	// instead of periodic output fetches. This is the fix for the
	// paper's workaround ("the local client has to request the output
	// tentatively"), benchmarked in the poll-interval ablation.
	UseLongPoll bool
	// SessionCache, when true, reuses one authenticated agent session per
	// owner across invocations until the delegated proxy nears expiry,
	// instead of performing a fresh MyProxy logon per invocation (the
	// paper's behaviour — "Before any use of the Grid is possible, an
	// authentication is required"). Cached sessions are invalidated on
	// auth faults and the invocation retried once with a fresh logon.
	SessionCache bool
	// StatsTTL, when positive, caches the gatekeeper scheduler-statistics
	// snapshot pickSites orders sites by, so site selection stops costing
	// one SOAP round-trip per invocation under load. Zero keeps the
	// paper-faithful fetch-per-invocation.
	StatsTTL time.Duration
	// InvocationRetention caps terminal invocations kept in the ticket
	// map: 0 means DefaultInvocationRetention, negative means unlimited.
	// Pruned invocations keep contributing to Monitoring through
	// retained per-state tallies.
	InvocationRetention int
	// PollHub replaces the per-invocation tentative pollers with a small
	// fixed set of shard workers: each tick a shard batches all its
	// in-flight job IDs into one gatekeeper status-batch round-trip per
	// session, and fetches stdout only when the reply's output version
	// says it changed (conditional fetch; an unchanged snapshot costs
	// zero body bytes and zero disk writes). Watchdog and cancel
	// semantics are identical to the stock poller. Off by default: the
	// paper-faithful one-goroutine-per-invocation poller stays the
	// baseline, and the hub is measured as an ablation.
	PollHub bool
	// PollHubShards is the hub's worker count; 0 means
	// DefaultPollHubShards. Ignored unless PollHub is set.
	PollHubShards int
	// PushEvents replaces polling altogether with the gatekeeper's
	// long-lived event stream: one /gram/events connection per session
	// multiplexes every job's state transitions and stdout-version bumps,
	// so steady-state status RPCs drop to ~zero and completion is
	// detected at push-delivery latency instead of the poll interval.
	// Output payloads still ride the hub's conditional /gram/output
	// fetch. The fallback ladder degrades gracefully: a stock gatekeeper
	// (404 on /gram/events) or a dead stream hands every in-flight
	// invocation to the poll hub, which is always constructed alongside
	// the collector; reconnects resume from a Last-Event-ID cursor so no
	// transition is lost. Watchdog and cancel semantics are identical to
	// the poll paths. Off by default: the paper-faithful poller stays the
	// baseline, and push is measured as an ablation.
	PushEvents bool
	// CoalesceStaging single-flights concurrent stagings of one
	// executable to one site, so a cold burst of N invocations costs one
	// WAN transfer per site instead of N. Off by default: the paper
	// re-stages per invocation.
	CoalesceStaging bool
	// SubmitHub coalesces job submissions arriving within
	// SubmitHubWindow into one gatekeeper submit-batch round-trip per
	// session, with per-entry error isolation. Off by default: the paper
	// submits one RPC per invocation.
	SubmitHub bool
	// SubmitHubWindow is the hub's coalescing window; 0 means
	// DefaultSubmitHubWindow. Ignored unless SubmitHub is set.
	SubmitHubWindow time.Duration
	// ChunkedStaging routes executable staging through the chunked,
	// content-addressed GridFTP protocol: the site is probed for chunks
	// it already holds, only missing chunks cross the WAN, and a transfer
	// killed mid-flight resumes from the committed chunk set instead of
	// byte zero (real GridFTP's partial transfers and restart markers).
	// Off by default: the paper ships every staging as one monolithic
	// PUT. Sites whose servers predate the chunk protocol transparently
	// fall back to that PUT.
	ChunkedStaging bool
	// ChunkBytes is the chunk size for ChunkedStaging; 0 means
	// gridftp.DefaultChunkBytes.
	ChunkBytes int
	// WireCompression, with ChunkedStaging, ships the database's stored
	// gzip bytes across the WAN instead of the inflated executable; the
	// site decompresses at commit. Off by default (the paper stages the
	// raw file). Compressed chunking trades dedup granularity for wire
	// bytes: a mid-file edit perturbs the gzip stream from that point on,
	// so re-publish dedup works best with WireCompression off.
	WireCompression bool
	// DataAwarePlacement replaces load-only site ordering with a scorer
	// that also weighs how many of the service's wire chunks each site
	// already possesses (discovered through the chunk store's dedup
	// probe, cached per service|site with singleflight) and the
	// estimated cold-transfer time of the missing bytes over the shaped
	// WAN. Off by default: the paper orders sites by load alone. A probe
	// failure degrades the site to possession-unknown, never fails
	// placement.
	DataAwarePlacement bool
	// PlacementProbeTTL is how long one possession probe's answer is
	// trusted; 0 means DefaultPlacementProbeTTL.
	PlacementProbeTTL time.Duration
	// ReplicateTopK, when positive, enables the background
	// pre-replicator: after a service's executable lands cold at one
	// site, push it asynchronously to the K least-loaded sibling sites
	// through the chunked pipeline. 0 (the default) disables it.
	ReplicateTopK int
	// ReplicateWorkers bounds the replicator's concurrent pushes; 0
	// means DefaultReplicateWorkers.
	ReplicateWorkers int
	// ReplicateBudgetBytes caps the wire bytes the replicator pushes per
	// minute-long cycle; 0 means DefaultReplicateBudgetBytes.
	ReplicateBudgetBytes int64
	// Tracing, when set, records a distributed span tree per invocation
	// (logon, DB fetch, staging, submit, polling, output collection) and
	// propagates context to every grid service via the X-Grid-Trace
	// header. Off (nil) by default; the nil tracer is a zero-allocation
	// no-op, so the invoke hot path is untouched when tracing is off.
	Tracing *trace.Tracer
	// Tenancy, when set, is the multi-tenant control plane (API keys,
	// policy, rate limits, fair-share quotas, audit). The core consults
	// it for per-site allow-lists when placing work; admission itself
	// happens at the portal edge. Off (nil) by default: the stock path
	// performs no tenancy work at all.
	Tenancy *tenant.Controller
}

// OnServe is the middleware instance.
type OnServe struct {
	cfg   Config
	clock vtime.Clock
	// hub is the sharded poller (Config.PollHub); nil runs the stock
	// per-invocation collection paths.
	hub *pollHub
	// collector tallies the output-collection work all three paths do.
	collector collectorCounters
	// events is the push-based collector (Config.PushEvents); nil routes
	// registrations to the hub or the stock pollers.
	events *eventCollector
	// push tallies the event-stream work (Config.PushEvents).
	push eventCounters
	// shub is the submission coalescer (Config.SubmitHub); nil submits
	// one RPC per invocation.
	shub *submitHub
	// submit tallies the submission-path work (uploads, submit RPCs,
	// stats fetches) across stock and batched paths.
	submit submitCounters
	// stage tallies the chunked staging data plane (Config.ChunkedStaging).
	stage stageCounters
	// placement tallies the data-aware placement control plane
	// (Config.DataAwarePlacement and the replicator).
	placement placementCounters
	// poss is the possession probe cache data-aware placement reads.
	poss possState
	// rep is the background pre-replicator (Config.ReplicateTopK); nil
	// when replication is off.
	rep *replicator

	mu          sync.Mutex
	users       map[string]UserAuth    // portal user -> myproxy logon
	invocations map[string]*Invocation // ticket -> invocation
	staged      map[string]string      // service+site -> staged checksum
	seq         int
	// sessions caches one authenticated agent session per owner
	// (Config.SessionCache).
	sessions map[string]*ownerSession
	// stats / statsAt cache the grid-stats snapshot (Config.StatsTTL);
	// statsFlight is the in-flight refresh concurrent callers share.
	stats       []gridsim.SiteStats
	statsAt     time.Time
	statsFlight *statsFlight
	// stagingFlights holds in-flight staging transfers keyed
	// service|site (Config.CoalesceStaging).
	stagingFlights map[string]*stagingFlight
	// termOrder tracks terminal tickets oldest-first for pruning;
	// termTallies retains per-state counts of pruned invocations so
	// Monitoring stays correct.
	termOrder   []string
	termTallies map[InvState]int
}

// ownerSession is one cached authenticated session.
type ownerSession struct {
	id        string
	expiresAt time.Time
}

// New builds an OnServe over the supplied substrates.
func New(cfg Config) (*OnServe, error) {
	if cfg.DB == nil || cfg.Container == nil || cfg.Registry == nil || cfg.Agent == nil {
		return nil, errors.New("onserve: DB, Container, Registry and Agent are required")
	}
	if cfg.Clock == nil {
		cfg.Clock = vtime.Real{}
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.InvocationTimeout <= 0 {
		cfg.InvocationTimeout = DefaultInvocationTimeout
	}
	if cfg.ProxyLifetime <= 0 {
		cfg.ProxyLifetime = 12 * time.Hour
	}
	if cfg.PollHubShards <= 0 {
		cfg.PollHubShards = DefaultPollHubShards
	}
	if cfg.SubmitHubWindow <= 0 {
		cfg.SubmitHubWindow = DefaultSubmitHubWindow
	}
	if cfg.PlacementProbeTTL <= 0 {
		cfg.PlacementProbeTTL = DefaultPlacementProbeTTL
	}
	if cfg.ReplicateWorkers <= 0 {
		cfg.ReplicateWorkers = DefaultReplicateWorkers
	}
	if cfg.ReplicateBudgetBytes <= 0 {
		cfg.ReplicateBudgetBytes = DefaultReplicateBudgetBytes
	}
	o := &OnServe{
		cfg:            cfg,
		clock:          cfg.Clock,
		users:          make(map[string]UserAuth),
		invocations:    make(map[string]*Invocation),
		staged:         make(map[string]string),
		sessions:       make(map[string]*ownerSession),
		termTallies:    make(map[InvState]int),
		stagingFlights: make(map[string]*stagingFlight),
	}
	o.poss.cache = make(map[string]possEntry)
	o.poss.flights = make(map[string]*possFlight)
	if cfg.PollHub || cfg.PushEvents {
		// PushEvents always builds the hub too: it is the fallback rung
		// when the event channel is absent or dies.
		o.hub = newPollHub(o, cfg.PollHubShards)
	}
	if cfg.PushEvents {
		o.events = newEventCollector(o)
	}
	if cfg.SubmitHub {
		o.shub = newSubmitHub(o)
	}
	if cfg.ReplicateTopK > 0 {
		o.rep = newReplicator(o)
	}
	return o, nil
}

// Tracer returns the configured tracer (nil when tracing is off).
func (o *OnServe) Tracer() *trace.Tracer { return o.cfg.Tracing }

// InvocationTrace returns every retained span of the invocation's trace,
// sorted by start time. Unknown tickets error; an untraced invocation
// (tracing off, or spans already evicted from the ring) returns an empty
// slice.
func (o *OnServe) InvocationTrace(ticket string) ([]trace.SpanData, error) {
	inv, err := o.Invocation(ticket)
	if err != nil {
		return nil, err
	}
	id := inv.TraceID()
	col := o.cfg.Tracing.Collector()
	if id == "" || col == nil {
		return nil, nil
	}
	return col.Trace(id), nil
}

// RegisterUser records the MyProxy logon onServe performs when executing
// on behalf of user.
func (o *OnServe) RegisterUser(user string, auth UserAuth) {
	o.mu.Lock()
	o.users[user] = auth
	o.mu.Unlock()
}

func (o *OnServe) userAuth(user string) (UserAuth, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	auth, ok := o.users[user]
	if !ok {
		return UserAuth{}, fmt.Errorf("%w: %q", ErrNoSuchUser, user)
	}
	return auth, nil
}

// ExecutableInfo describes one uploaded executable / generated service.
type ExecutableInfo struct {
	ServiceName string          `json:"service_name"`
	FileName    string          `json:"file_name"`
	Description string          `json:"description"`
	Owner       string          `json:"owner"`
	Params      []wsdl.ParamDef `json:"params"`
	// StageIn lists input files every invocation's job declares; the
	// owner stages them to the Grid out of band (agent or shell).
	StageIn    []string  `json:"stage_in,omitempty"`
	UploadedAt time.Time `json:"uploaded_at"`
	SizeBytes  int       `json:"size_bytes"`
	WSDLURL    string    `json:"wsdl_url"`
	Endpoint   string    `json:"endpoint"`
}

// ServiceNameFor derives the generated service's name from the uploaded
// file name, mirroring the paper's ant build which "uses a Web service
// template file and modifies its name": "montecarlo.gsh" becomes
// "MontecarloService".
func ServiceNameFor(fileName string) (string, error) {
	base := fileName
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	var sb strings.Builder
	up := true
	for _, r := range base {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			if up {
				sb.WriteRune(unicode.ToUpper(r))
				up = false
			} else {
				sb.WriteRune(r)
			}
		case r == '-' || r == '_' || r == ' ' || r == '.':
			up = true
		default:
			return "", fmt.Errorf("%w: character %q in %q", ErrBadName, r, fileName)
		}
	}
	if sb.Len() == 0 {
		return "", fmt.Errorf("%w: %q", ErrBadName, fileName)
	}
	return sb.String() + "Service", nil
}

// UploadAndGenerate is Use Scenario A (paper §VII-A): store the uploaded
// executable in the database, build a Web service linked to it, deploy
// the service, and publish it in the UDDI registry. It returns the
// published record.
func (o *OnServe) UploadAndGenerate(user, fileName, description string, params []wsdl.ParamDef, content []byte) (*uddi.Record, error) {
	return o.UploadAndGenerateCtx(user, fileName, description, params, content, trace.SpanContext{})
}

// UploadAndGenerateCtx is UploadAndGenerate with a caller trace context:
// the upload records one "upload" span (a new root trace when the parent
// is invalid, e.g. the portal received no X-Grid-Trace header).
func (o *OnServe) UploadAndGenerateCtx(user, fileName, description string, params []wsdl.ParamDef, content []byte, parent trace.SpanContext) (*uddi.Record, error) {
	sp := o.cfg.Tracing.StartSpan("upload", parent)
	sp.Set("user", user)
	sp.Set("file", fileName)
	sp.SetInt("bytes", int64(len(content)))
	rec, err := o.uploadAndGenerate(user, fileName, description, params, content)
	if err != nil {
		sp.Error(err.Error())
	} else {
		sp.Set("service", rec.Name)
	}
	sp.End()
	return rec, err
}

func (o *OnServe) uploadAndGenerate(user, fileName, description string, params []wsdl.ParamDef, content []byte) (*uddi.Record, error) {
	if _, err := o.userAuth(user); err != nil {
		return nil, err
	}
	serviceName, err := ServiceNameFor(fileName)
	if err != nil {
		return nil, err
	}
	for _, p := range params {
		if p.Name == "" || !wsdl.ValidType(p.Type) {
			return nil, fmt.Errorf("%w: parameter %q type %q", ErrBadName, p.Name, p.Type)
		}
	}
	// The uploaded file must be an executable the Grid can actually run.
	if _, err := gsh.Parse(content); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProgram, err)
	}

	// Storage (paper §VII-A "Storage"). The stock implementation spills
	// the upload to a temporary file and then inserts it into the
	// database — "there are at least two write operations and one read
	// operation necessary just to store one file" (§VIII-D3). These are
	// the two disk-write peaks of Fig. 8.
	if !o.cfg.DirectDBWrite {
		o.cfg.Probe.DiskWrite(len(content)) // temp spill
		o.cfg.Probe.DiskRead(len(content))  // read back for the insert
	}
	paramsJSON, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	meta := map[string]string{
		"owner":       user,
		"description": description,
		"file_name":   fileName,
		"params":      string(paramsJSON),
	}
	if err := o.cfg.DB.Table(ExecutablesTable).Put(serviceName, meta, content); err != nil {
		return nil, fmt.Errorf("onserve: store executable: %w", err)
	}

	// Service build (paper §VII-A "Service build"): the ant-build stand-in
	// instantiates the service template — a CPU burst on the appliance.
	o.cfg.Probe.Burn(o.cfg.Cost.ServiceBuild)
	svc := o.buildService(serviceName, description, params)
	if err := o.cfg.Container.Deploy(svc); err != nil {
		return nil, fmt.Errorf("onserve: deploy %s: %w", serviceName, err)
	}

	// Publishing (paper §VII-A "Publishing").
	endpoint := o.cfg.BaseURL + o.cfg.Container.BasePath() + serviceName
	rec := uddi.Record{
		Name:        serviceName,
		Description: description,
		WSDLURL:     endpoint + "?wsdl",
		Endpoint:    endpoint,
		Owner:       user,
	}
	key, err := o.cfg.Registry.Publish(rec)
	if err != nil {
		o.cfg.Container.Undeploy(serviceName)
		return nil, fmt.Errorf("onserve: publish %s: %w", serviceName, err)
	}
	published, err := o.cfg.Registry.Get(key)
	if err != nil {
		return nil, err
	}
	return &published, nil
}

// SetStageIn declares the staged input files every invocation of the
// service requires. The owner is responsible for staging them (through
// the Cyberaide agent or shell); jobs then read them with gsh's
// read/process statements.
func (o *OnServe) SetStageIn(serviceName string, files []string) error {
	for _, f := range files {
		if f == "" || strings.ContainsAny(f, "/,") {
			return fmt.Errorf("%w: stage-in file %q", ErrBadName, f)
		}
	}
	rec, err := o.cfg.DB.Table(ExecutablesTable).Get(serviceName)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrNoSuchService, serviceName)
	}
	rec.Meta["stage_in"] = strings.Join(files, ",")
	return o.cfg.DB.Table(ExecutablesTable).Put(serviceName, rec.Meta, rec.Blob)
}

// RedeployAll regenerates, deploys and republishes a service for every
// executable in the database that is not already live — the boot-time
// step that makes a persistent appliance's database authoritative across
// reboots. It returns how many services were brought back.
func (o *OnServe) RedeployAll() (int, error) {
	infos, err := o.Services()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, info := range infos {
		if _, deployed := o.cfg.Container.Lookup(info.ServiceName); deployed {
			continue
		}
		o.cfg.Probe.Burn(o.cfg.Cost.ServiceBuild)
		svc := o.buildService(info.ServiceName, info.Description, info.Params)
		if err := o.cfg.Container.Deploy(svc); err != nil {
			return n, fmt.Errorf("onserve: redeploy %s: %w", info.ServiceName, err)
		}
		if _, err := o.cfg.Registry.GetByName(info.ServiceName); err != nil {
			if _, err := o.cfg.Registry.Publish(uddi.Record{
				Name:        info.ServiceName,
				Description: info.Description,
				WSDLURL:     info.WSDLURL,
				Endpoint:    info.Endpoint,
				Owner:       info.Owner,
			}); err != nil {
				return n, fmt.Errorf("onserve: republish %s: %w", info.ServiceName, err)
			}
		}
		n++
	}
	return n, nil
}

// DeleteService undeploys the generated service, removes its UDDI record
// and deletes the stored executable.
func (o *OnServe) DeleteService(serviceName string) error {
	if _, err := o.cfg.DB.Table(ExecutablesTable).Stat(serviceName); err != nil {
		return fmt.Errorf("%w: %s", ErrNoSuchService, serviceName)
	}
	o.cfg.Container.Undeploy(serviceName)
	if rec, err := o.cfg.Registry.GetByName(serviceName); err == nil {
		o.cfg.Registry.Delete(rec.Key)
	}
	if err := o.cfg.DB.Table(ExecutablesTable).Delete(serviceName); err != nil {
		return err
	}
	o.mu.Lock()
	for k := range o.staged {
		if strings.HasPrefix(k, serviceName+"|") {
			delete(o.staged, k)
		}
	}
	o.mu.Unlock()
	o.forgetPossession(serviceName)
	if o.rep != nil {
		o.rep.forget(serviceName)
	}
	return nil
}

// Tenancy exposes the multi-tenant control plane; nil when the
// subsystem is off, which callers treat as "admit everything".
func (o *OnServe) Tenancy() *tenant.Controller { return o.cfg.Tenancy }

// SetTenancy installs the controller after construction. Call it before
// serving traffic — the admission path reads the field without a lock.
func (o *OnServe) SetTenancy(ctl *tenant.Controller) { o.cfg.Tenancy = ctl }

// Services lists the generated services, sorted by service name. The
// order is part of the API: fleet gateways merge listings from many
// appliances and diff replicated registry views against authoritative
// ones, which only works if every listing is deterministic.
func (o *OnServe) Services() ([]ExecutableInfo, error) {
	tab := o.cfg.DB.Table(ExecutablesTable)
	var out []ExecutableInfo
	for _, key := range tab.Keys() {
		info, err := o.ServiceInfo(key)
		if err != nil {
			if errors.Is(err, ErrNoSuchService) {
				continue // deleted concurrently
			}
			return nil, err
		}
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ServiceName < out[j].ServiceName })
	return out, nil
}

// ServiceInfo describes one generated service.
func (o *OnServe) ServiceInfo(serviceName string) (*ExecutableInfo, error) {
	rec, err := o.cfg.DB.Table(ExecutablesTable).Stat(serviceName)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchService, serviceName)
	}
	var params []wsdl.ParamDef
	if s := rec.Meta["params"]; s != "" {
		if err := json.Unmarshal([]byte(s), &params); err != nil {
			return nil, fmt.Errorf("onserve: corrupt params for %s: %w", serviceName, err)
		}
	}
	var stageIn []string
	if s := rec.Meta["stage_in"]; s != "" {
		stageIn = strings.Split(s, ",")
	}
	endpoint := o.cfg.BaseURL + o.cfg.Container.BasePath() + serviceName
	return &ExecutableInfo{
		ServiceName: serviceName,
		FileName:    rec.Meta["file_name"],
		Description: rec.Meta["description"],
		Owner:       rec.Meta["owner"],
		Params:      params,
		StageIn:     stageIn,
		UploadedAt:  rec.StoredAt,
		SizeBytes:   rec.CompressedSize,
		WSDLURL:     endpoint + "?wsdl",
		Endpoint:    endpoint,
	}, nil
}

func newTicket(seq int) string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("onserve: entropy unavailable: " + err.Error())
	}
	return fmt.Sprintf("inv-%06d-%s", seq, hex.EncodeToString(b[:]))
}
