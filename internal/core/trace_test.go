package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// indexSpans groups one trace's spans by name and span id.
func indexSpans(spans []trace.SpanData) (byName map[string][]trace.SpanData, byID map[string]trace.SpanData) {
	byName = make(map[string][]trace.SpanData)
	byID = make(map[string]trace.SpanData)
	for _, sd := range spans {
		byName[sd.Name] = append(byName[sd.Name], sd)
		byID[sd.SpanID] = sd
	}
	return
}

// assertSingleTree fails unless spans form one tree: a single root,
// every parent link resolving to a retained span, one shared trace id.
func assertSingleTree(t *testing.T, spans []trace.SpanData) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	_, byID := indexSpans(spans)
	roots := 0
	for _, sd := range spans {
		if sd.TraceID != spans[0].TraceID {
			t.Fatalf("span %s/%s left the trace: %s != %s", sd.Service, sd.Name, sd.TraceID, spans[0].TraceID)
		}
		if sd.ParentID == "" {
			roots++
			continue
		}
		if _, ok := byID[sd.ParentID]; !ok {
			t.Errorf("orphan span %s/%s: parent %s not retained", sd.Service, sd.Name, sd.ParentID)
		}
	}
	if roots != 1 {
		t.Fatalf("got %d roots, want 1", roots)
	}
}

// TestTraceEndToEnd is the acceptance check: one quickstart-style
// invocation with Tracing on yields a single span tree covering logon,
// blob fetch, staging, submit, polling, and output collection across
// the onServe core and all four grid services, with byte and duration
// attributes.
func TestTraceEndToEnd(t *testing.T) {
	col := trace.NewCollector(0, 0)
	f := newFixtureTraced(t, nil, col, nil)
	f.uploadDemo(t)
	inv, err := f.ons.Invoke("MontecarloService", map[string]string{"digits": "7"})
	if err != nil {
		t.Fatal(err)
	}
	<-inv.DoneChan()
	if got := inv.State(); got != InvDone {
		t.Fatalf("state %s: %s", got, inv.Message())
	}
	spans, err := f.ons.InvocationTrace(inv.Ticket)
	if err != nil {
		t.Fatal(err)
	}
	assertSingleTree(t, spans)

	services := map[string]bool{}
	for _, sd := range spans {
		services[sd.Service] = true
	}
	for _, svc := range []string{"onserve", "myproxy", "gridftp", "gram", "gridsim"} {
		if !services[svc] {
			t.Errorf("service %s recorded no spans", svc)
		}
	}
	byName, byID := indexSpans(spans)
	for _, name := range []string{
		"invoke", "logon", "db.fetch", "stage", "submit", "collect", "poll",
		"myproxy.get", "ftp.put", "gram.submit", "job.queue", "job.run",
	} {
		if len(byName[name]) == 0 {
			t.Errorf("span %q missing from the tree", name)
		}
	}
	t.Logf("trace: %d spans across %d services", len(spans), len(services))
	if len(byName["invoke"]) > 0 {
		root := byName["invoke"][0]
		if root.ParentID != "" || root.Status != "ok" {
			t.Errorf("root span wrong: %+v", root)
		}
		if root.Attrs["ticket"] != inv.Ticket {
			t.Errorf("root ticket attr = %q, want %q", root.Attrs["ticket"], inv.Ticket)
		}
		if root.DurationMS <= 0 {
			t.Errorf("root duration %v", root.DurationMS)
		}
	}
	for _, name := range []string{"db.fetch", "stage"} {
		for _, sd := range byName[name] {
			if sd.Attrs["bytes"] == "" || sd.Attrs["bytes"] == "0" {
				t.Errorf("%s span has no byte count: %+v", name, sd.Attrs)
			}
		}
	}
	// The grid-side spans hang off the core's pipeline spans, proving
	// the header crossed every HTTP boundary.
	for child, parent := range map[string]string{
		"myproxy.get": "logon", "ftp.put": "stage", "gram.submit": "submit",
	} {
		for _, sd := range byName[child] {
			p, ok := byID[sd.ParentID]
			if !ok || p.Name != parent {
				t.Errorf("%s parent = %q, want %s", child, p.Name, parent)
			}
		}
	}
}

// TestTraceHubPathsLinkParent is the satellite-2 regression: with the
// submit hub and poll hub on, the batched submit and status entries
// still parent under their own invocation's span tree — no orphan
// spans, and the batched work is attributable per invocation.
func TestTraceHubPathsLinkParent(t *testing.T) {
	col := trace.NewCollector(0, 0)
	f := newFixtureTraced(t, nil, col, func(c *Config) {
		c.SubmitHub = true
		c.CoalesceStaging = true
		c.PollHub = true
	})
	f.uploadDemo(t)

	const n = 3
	invs := make([]*Invocation, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inv, err := f.ons.Invoke("MontecarloService", map[string]string{"digits": "9"})
			if err != nil {
				t.Error(err)
				return
			}
			<-inv.DoneChan()
			invs[i] = inv
		}(i)
	}
	wg.Wait()

	for _, inv := range invs {
		if inv == nil {
			t.Fatal("invocation failed")
		}
		if inv.State() != InvDone {
			t.Fatalf("state %s: %s", inv.State(), inv.Message())
		}
		spans, err := f.ons.InvocationTrace(inv.Ticket)
		if err != nil {
			t.Fatal(err)
		}
		assertSingleTree(t, spans)
		byName, byID := indexSpans(spans)
		subs := byName["gram.submit"]
		if len(subs) == 0 {
			t.Fatal("batched submit recorded no gram.submit span")
		}
		for _, sd := range subs {
			if sd.Attrs["batched"] != "true" {
				t.Errorf("gram.submit not marked batched: %+v", sd.Attrs)
			}
			if p, ok := byID[sd.ParentID]; !ok || p.Name != "submit" {
				t.Errorf("batched gram.submit detached from its invocation's submit span")
			}
		}
		polled := false
		for _, sd := range byName["poll"] {
			if sd.Attrs["batched"] != "true" {
				t.Errorf("hub poll span not marked batched: %+v", sd.Attrs)
			}
			if p, ok := byID[sd.ParentID]; !ok || p.Name != "collect" {
				t.Errorf("hub poll span detached from its invocation's collect span")
			}
			polled = true
		}
		if !polled {
			t.Error("poll hub recorded no poll span")
		}
	}
}

const slowProgram = "compute 600s\n"

// TestTraceCancelEndsSpanTree is the satellite-3 regression for the
// stock poller: a cancelled invocation ends its root and collect spans
// with error status instead of leaking them open (an unended span is
// never recorded, so presence in the collector proves the end).
func TestTraceCancelEndsSpanTree(t *testing.T) {
	col := trace.NewCollector(0, 0)
	f := newFixtureTraced(t, nil, col, nil)
	if _, err := f.ons.UploadAndGenerate("alice", "slow.gsh", "sleeps", nil, []byte(slowProgram)); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("SlowService", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ons.CancelInvocation(inv.Ticket); err != nil {
		t.Fatal(err)
	}
	<-inv.DoneChan()
	if inv.State() != InvCancelled {
		t.Fatalf("state %s: %s", inv.State(), inv.Message())
	}
	assertTreeEndedWithError(t, f, inv)
}

// TestTraceWatchdogEndsSpanTree is satellite 3 for the watchdog, under
// both the stock poller and the poll hub: when the deadline kills the
// invocation, the span tree still closes, with error status.
func TestTraceWatchdogEndsSpanTree(t *testing.T) {
	for _, tc := range []struct {
		name string
		hub  bool
	}{{"stock", false}, {"pollhub", true}} {
		t.Run(tc.name, func(t *testing.T) {
			col := trace.NewCollector(0, 0)
			f := newFixtureTraced(t, nil, col, func(c *Config) {
				c.InvocationTimeout = 20 * time.Second
				c.PollHub = tc.hub
			})
			if _, err := f.ons.UploadAndGenerate("alice", "slow.gsh", "sleeps", nil, []byte(slowProgram)); err != nil {
				t.Fatal(err)
			}
			inv, err := f.ons.Invoke("SlowService", nil)
			if err != nil {
				t.Fatal(err)
			}
			<-inv.DoneChan()
			if inv.State() != InvKilled {
				t.Fatalf("state %s: %s", inv.State(), inv.Message())
			}
			// Two enforcement paths race at the same deadline: the client
			// watchdog, and the site's own walltime limit (derived from
			// the invocation timeout) observed as a TIMEOUT status. Either
			// way the invocation is killed and the tree must close.
			if !strings.Contains(inv.Message(), "watchdog") &&
				!strings.Contains(inv.Message(), "walltime") {
				t.Fatalf("message %q", inv.Message())
			}
			assertTreeEndedWithError(t, f, inv)
		})
	}
}

func assertTreeEndedWithError(t *testing.T, f *fixture, inv *Invocation) {
	t.Helper()
	spans, err := f.ons.InvocationTrace(inv.Ticket)
	if err != nil {
		t.Fatal(err)
	}
	assertSingleTree(t, spans)
	byName, _ := indexSpans(spans)
	for _, name := range []string{"invoke", "collect"} {
		got := byName[name]
		if len(got) != 1 {
			t.Fatalf("%s recorded %d times, want 1 (leaked or unended span)", name, len(got))
		}
		if got[0].Status != "error" {
			t.Errorf("%s span status %q, want error (%+v)", name, got[0].Status, got[0])
		}
	}
}
