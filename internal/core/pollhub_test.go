package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gridsim"
	"repro/internal/trace"
)

func TestPollHubEndToEnd(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.PollHub = true })
	if _, err := f.ons.UploadAndGenerate("alice", "ticker.gsh", "", nil,
		[]byte("emit 2s 5 line\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("TickerService", nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-inv.DoneChan():
	case <-time.After(10 * time.Second):
		t.Fatal("hub never finished the invocation")
	}
	if inv.State() != InvDone {
		t.Fatalf("state %s: %s", inv.State(), inv.Message())
	}
	if got := strings.Count(inv.Output(), "line"); got != 5 {
		t.Fatalf("final output has %d lines: %q", got, inv.Output())
	}
	stats := f.ons.CollectorStats()
	if stats.StatusRPCs == 0 || stats.OutputFetches == 0 {
		t.Fatalf("collector saw no work: %+v", stats)
	}
}

func TestPollHubSkipsUnchangedSnapshots(t *testing.T) {
	// A job that is silent for three poll ticks and then emits once: the
	// hub must confirm the unchanged snapshot without fetching any bytes.
	f := newFixture(t, func(cfg *Config) { cfg.PollHub = true })
	if _, err := f.ons.UploadAndGenerate("alice", "quiet.gsh", "", nil,
		[]byte("compute 5m\necho fin\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("QuietService", nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-inv.DoneChan():
	case <-time.After(10 * time.Second):
		t.Fatal("invocation stuck")
	}
	if inv.State() != InvDone || inv.Output() != "fin\n" {
		t.Fatalf("state %s output %q", inv.State(), inv.Output())
	}
	stats := f.ons.CollectorStats()
	if stats.OutputNotModified == 0 {
		t.Fatalf("silent ticks fetched output anyway: %+v", stats)
	}
	if stats.OutputBytes != uint64(len("fin\n")) {
		t.Fatalf("fetched %d bytes for %d bytes of output", stats.OutputBytes, len("fin\n"))
	}
	if stats.PollDiskWrites != 1 {
		t.Fatalf("%d disk writes for one output change", stats.PollDiskWrites)
	}
}

// runBatchWorkload invokes n overlapping jobs and waits for all of
// them. It reports failures with t.Error (not t.Fatal) so callers may
// run it off the test goroutine.
func runBatchWorkload(t *testing.T, f *fixture, n int) {
	t.Helper()
	if _, err := f.ons.UploadAndGenerate("alice", "batchy.gsh", "", nil,
		[]byte("compute 30m\necho ok\n")); err != nil {
		t.Error(err)
		return
	}
	invs := make([]*Invocation, 0, n)
	for i := 0; i < n; i++ {
		inv, err := f.ons.Invoke("BatchyService", nil)
		if err != nil {
			t.Error(err)
			return
		}
		invs = append(invs, inv)
	}
	for _, inv := range invs {
		select {
		case <-inv.DoneChan():
		case <-time.After(10 * time.Second):
			t.Error("invocation stuck")
			return
		}
		if inv.State() != InvDone {
			t.Errorf("state %s: %s", inv.State(), inv.Message())
			return
		}
	}
}

func TestPollHubBatchesStatusRPCs(t *testing.T) {
	// Same workload, stock poller vs single-shard hub: the hub needs one
	// status round-trip per tick where the stock poller needs one per
	// invocation per tick. The two workloads run concurrently so both
	// see the same real-time machine load — run back to back, a stall
	// (full-suite -race scheduling) landing on only one phase starves
	// its pollers of ticks and can invert the count comparison.
	const n = 6
	stock := newFixture(t, func(cfg *Config) { cfg.SessionCache = true })
	hub := newFixture(t, func(cfg *Config) {
		cfg.SessionCache = true
		cfg.PollHub = true
		cfg.PollHubShards = 1
	})
	var wg sync.WaitGroup
	for _, f := range []*fixture{stock, hub} {
		wg.Add(1)
		go func(f *fixture) {
			defer wg.Done()
			runBatchWorkload(t, f, n)
		}(f)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	sRPC := stock.ons.CollectorStats().StatusRPCs
	hRPC := hub.ons.CollectorStats().StatusRPCs
	if hRPC == 0 || hRPC >= sRPC {
		t.Fatalf("hub used %d status RPCs, stock %d", hRPC, sRPC)
	}
}

func TestPollHubIsolatesFailingJob(t *testing.T) {
	// A failing job and a succeeding one share a session (and with one
	// shard, a batch); each must reach its own terminal state.
	f := newFixture(t, func(cfg *Config) {
		cfg.SessionCache = true
		cfg.PollHub = true
		cfg.PollHubShards = 1
	})
	if _, err := f.ons.UploadAndGenerate("alice", "boom.gsh", "", nil,
		[]byte("compute 4s\nfail kaboom\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ons.UploadAndGenerate("alice", "fine.gsh", "", nil,
		[]byte("compute 4s\necho good\n")); err != nil {
		t.Fatal(err)
	}
	bad, err := f.ons.Invoke("BoomService", nil)
	if err != nil {
		t.Fatal(err)
	}
	good, err := f.ons.Invoke("FineService", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, inv := range []*Invocation{bad, good} {
		select {
		case <-inv.DoneChan():
		case <-time.After(10 * time.Second):
			t.Fatal("invocation stuck")
		}
	}
	if bad.State() != InvFailed || !strings.Contains(bad.Message(), "kaboom") {
		t.Fatalf("bad: %s %q", bad.State(), bad.Message())
	}
	if good.State() != InvDone || good.Output() != "good\n" {
		t.Fatalf("good: %s %q", good.State(), good.Output())
	}
}

func TestPollHubWatchdogKillsRunaway(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.PollHub = true
		cfg.InvocationTimeout = 20 * time.Second
	})
	if _, err := f.ons.UploadAndGenerate("alice", "forever.gsh", "", nil,
		[]byte("compute 23h\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("ForeverService", nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-inv.DoneChan():
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never fired under the hub")
	}
	if inv.State() != InvKilled {
		t.Fatalf("state %s: %s", inv.State(), inv.Message())
	}
}

func TestPollHubCancelInvocation(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.PollHub = true })
	if _, err := f.ons.UploadAndGenerate("alice", "slow.gsh", "", nil,
		[]byte("emit 2s 10000 t\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("SlowService", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ons.CancelInvocation(inv.Ticket); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inv.DoneChan():
	case <-time.After(10 * time.Second):
		t.Fatal("cancel never completed under the hub")
	}
	if inv.State() != InvCancelled {
		t.Fatalf("state %s", inv.State())
	}
}

// cancelOnCompletionTick races CancelInvocation against jobs that are
// just completing: whichever side wins, the invocation must finish
// exactly once with a terminal state (finish double-closing DoneChan
// would panic, and -race flags unsynchronised state).
func cancelOnCompletionTick(t *testing.T, mutate func(*Config)) {
	t.Helper()
	f := newFixture(t, mutate)
	if _, err := f.ons.UploadAndGenerate("alice", "quick.gsh", "", nil,
		[]byte("compute 1s\necho done\n")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		inv, err := f.ons.Invoke("QuickService", nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.ons.CancelInvocation(inv.Ticket)
		}()
		select {
		case <-inv.DoneChan():
		case <-time.After(10 * time.Second):
			t.Fatal("invocation hung under the cancel/complete race")
		}
		if st := inv.State(); !st.Terminal() {
			t.Fatalf("non-terminal state %s after DoneChan", st)
		}
	}
	wg.Wait()
}

func TestCancelOnCompletionTickStockPoller(t *testing.T) {
	cancelOnCompletionTick(t, nil)
}

func TestCancelOnCompletionTickPollHub(t *testing.T) {
	cancelOnCompletionTick(t, func(cfg *Config) {
		cfg.PollHub = true
		cfg.PollHubShards = 2
	})
}

func TestPickSitesZeroSlotSiteSortsLast(t *testing.T) {
	// Regression: a drained site reporting zero slots used to make the
	// load formula divide by zero, and the resulting NaN corrupted the
	// sort (the drained site could come back first). A zero-slot site is
	// fully loaded: it must sort after every site with capacity.
	f := newFixture(t, func(cfg *Config) { cfg.StatsTTL = time.Hour })
	f.ons.mu.Lock()
	f.ons.stats = []gridsim.SiteStats{
		{Name: "siteA", Slots: 0, FreeSlots: 0, Queued: 0}, // drained
		{Name: "siteB", Slots: 8, FreeSlots: 2, Queued: 3},
	}
	f.ons.statsAt = f.clock.Now()
	f.ons.mu.Unlock()
	sites, err := f.ons.pickSites("session-unused-cache-warm", "MontecarloService", "", nil, trace.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 2 || sites[0] != "siteB" || sites[1] != "siteA" {
		t.Fatalf("zero-slot site not sorted last: %v", sites)
	}
}
