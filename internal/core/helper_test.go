package core

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// newHTTPServer mounts h on a test HTTP server and returns its base URL.
func newHTTPServer(t *testing.T, h http.Handler) string {
	t.Helper()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return hs.URL
}
