// Data-aware placement (Config.DataAwarePlacement): pickSites stops
// ordering sites by load alone and instead scores every candidate by
// the estimated seconds until its job could be running — the queue/load
// term plus the cold-transfer time of whatever wire chunks the site is
// still missing. Possession is discovered through the chunk store's
// dedup probe (POST /ftp/chunks/have), which PR 4 already exposes as a
// free data-locality oracle; a per-service|site TTL cache with
// singleflight makes a 64-way burst cost one probe per site, not 64.
package core

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gridftp"
	"repro/internal/trace"
)

const (
	// DefaultPlacementProbeTTL is how long one possession probe's answer
	// is trusted when Config.PlacementProbeTTL is unset. Staleness is
	// benign in both directions: chunks only accumulate (an overestimate
	// of missing bytes just re-probes sooner), and eviction at the site
	// is healed by the upload path's own probe-and-ship cycle.
	DefaultPlacementProbeTTL = 30 * time.Second
	// placementLoadPenalty converts the load term (committed+queued work
	// per slot) into comparable seconds: one full load unit is scored as
	// this much queueing delay. It is a coarse stand-in for the paper
	// grid's job granularity, not a calibrated estimator — the point is
	// that a near-idle site must transfer a lot of bytes to beat a
	// possessing site with a slot or two taken.
	placementLoadPenalty = 30 * time.Second
	// placementWANBps mirrors netsim.WAN's shaped rate ("about 80 to 90
	// KB/s"), the path every cold chunk crosses.
	placementWANBps = 85 << 10
)

// PlacementStats counts the data-aware placement control plane's work.
// All zero while Config.DataAwarePlacement and the replicator are off.
type PlacementStats struct {
	// ProbesSent counts possession probes issued to sites (one per site
	// per cache miss; concurrent misses collapse onto one probe).
	ProbesSent uint64 `json:"probes_sent"`
	// ProbeCacheHits counts placements served from a fresh cached
	// possession answer, including waiters that joined an in-flight
	// probe instead of issuing their own.
	ProbeCacheHits uint64 `json:"probe_cache_hits"`
	// ProbeFailures counts probes that errored; the site is then scored
	// possession-unknown (no credit) instead of failing placement.
	ProbeFailures uint64 `json:"probe_failures"`
	// PlacementsScored counts data-aware site choices; Redirected counts
	// the subset where possession overruled the pure load order.
	PlacementsScored     uint64 `json:"placements_scored"`
	PlacementsRedirected uint64 `json:"placements_redirected"`
	// ReplicatorPushes/PushBytes/Failures/Skips count the background
	// pre-replicator's work: completed pushes, their wire bytes, failed
	// pushes, and pushes dropped by the per-cycle byte budget.
	ReplicatorPushes    uint64 `json:"replicator_pushes"`
	ReplicatorPushBytes uint64 `json:"replicator_push_bytes"`
	ReplicatorFailures  uint64 `json:"replicator_failures"`
	ReplicatorSkips     uint64 `json:"replicator_skips"`
}

// placementCounters is the mutable, atomically updated form.
type placementCounters struct {
	probesSent     atomic.Uint64
	probeCacheHits atomic.Uint64
	probeFailures  atomic.Uint64
	scored         atomic.Uint64
	redirected     atomic.Uint64
	repPushes      atomic.Uint64
	repPushBytes   atomic.Uint64
	repFailures    atomic.Uint64
	repSkips       atomic.Uint64
}

// PlacementStats snapshots the placement control-plane counters.
func (o *OnServe) PlacementStats() PlacementStats {
	return PlacementStats{
		ProbesSent:           o.placement.probesSent.Load(),
		ProbeCacheHits:       o.placement.probeCacheHits.Load(),
		ProbeFailures:        o.placement.probeFailures.Load(),
		PlacementsScored:     o.placement.scored.Load(),
		PlacementsRedirected: o.placement.redirected.Load(),
		ReplicatorPushes:     o.placement.repPushes.Load(),
		ReplicatorPushBytes:  o.placement.repPushBytes.Load(),
		ReplicatorFailures:   o.placement.repFailures.Load(),
		ReplicatorSkips:      o.placement.repSkips.Load(),
	}
}

// possEntry is one cached possession answer for a service|site pair.
type possEntry struct {
	// missing is the wire bytes the site lacked at probe time; total the
	// service's full wire size then. ok is false when the probe failed
	// (possession-unknown): the entry still occupies the cache for one
	// TTL so a dead site is not re-probed per invocation.
	missing int64
	total   int64
	ok      bool
	at      time.Time
}

// possession is the fraction of wire bytes the site already holds.
func (e *possEntry) possession() float64 {
	if !e.ok || e.total <= 0 {
		return 0
	}
	return 1 - float64(e.missing)/float64(e.total)
}

// possFlight is one in-flight possession probe concurrent placements
// wait on. entry is written by the leader before done closes.
type possFlight struct {
	done  chan struct{}
	entry possEntry
}

// possState is the possession probe cache: answers keyed service|site
// plus the in-flight probes concurrent bursts collapse onto.
type possState struct {
	mu      sync.Mutex
	cache   map[string]possEntry
	flights map[string]*possFlight
}

// wireChunkSet lazily summarises how a service's blob would chunk on
// the wire, so a placement where every site answers from cache never
// pays the SHA-256 pass. ok is false when the chunk protocol would not
// apply (empty wire or oversized manifest) and possession cannot be
// probed.
type wireChunkSet struct {
	o       *OnServe
	service string
	blob    []byte

	once    sync.Once
	digests []string
	sizes   map[string]int
	total   int64
	ok      bool
}

func (w *wireChunkSet) cut() ([]string, map[string]int, int64, bool) {
	w.once.Do(func() {
		wire := w.blob
		if gz := w.o.storedGzip(w.service, w.blob); gz != nil && len(gz) < len(w.blob) {
			wire = gz
		}
		chunkBytes := w.o.cfg.ChunkBytes
		if chunkBytes <= 0 {
			chunkBytes = gridftp.DefaultChunkBytes
		}
		if chunkBytes > gridftp.MaxChunkBytes {
			chunkBytes = gridftp.MaxChunkBytes
		}
		if len(wire) == 0 || (len(wire)+chunkBytes-1)/chunkBytes > gridftp.MaxManifestChunks {
			// The staging path would fall back to a monolithic PUT here;
			// there is no possession to discover.
			return
		}
		w.digests, w.sizes = gridftp.WireChunks(wire, chunkBytes)
		w.total = int64(len(wire))
		w.ok = true
	})
	return w.digests, w.sizes, w.total, w.ok
}

// storedGzip returns the database's stored gzip stream for serviceName
// when wire compression is on and the stored record still matches blob
// (a concurrent re-publish may have moved it). Shared by the staging
// upload, the placement scorer and the replicator so all three agree on
// what the wire would carry.
func (o *OnServe) storedGzip(serviceName string, blob []byte) []byte {
	if !o.cfg.WireCompression {
		return nil
	}
	comp, rawSize, err := o.cfg.DB.Table(ExecutablesTable).GetCompressed(serviceName)
	if err != nil || rawSize != len(blob) {
		return nil
	}
	return comp
}

// placementScore folds one site's load and missing wire bytes into the
// estimated seconds until its job could be running. Lower is better.
func placementScore(load float64, missingBytes int64) float64 {
	return load*placementLoadPenalty.Seconds() + float64(missingBytes)/float64(placementWANBps)
}

// siteScore is one candidate's scored placement verdict.
type siteScore struct {
	name       string
	load       float64
	possession float64
	missing    int64
	probed     bool // false: possession unknown (probe failed/unsupported)
	score      float64
}

// orderScores sorts scored candidates best-first with a deterministic
// tie-break: equal scores order by site name, so identical inputs place
// identically across runs.
func orderScores(scores []siteScore) {
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].score != scores[j].score {
			return scores[i].score < scores[j].score
		}
		return scores[i].name < scores[j].name
	})
}

// placeDataAware is pickSites' scoring branch: probe every candidate's
// chunk possession (cache and singleflight absorb bursts), fold it with
// the load term into one comparable score, and order best-first. A
// failed probe degrades that site to possession-unknown — scored on
// load alone plus a full cold transfer, never an error. The decision is
// recorded as a "place" span under the invocation.
func (o *OnServe) placeDataAware(sessionID, serviceName string, cands []siteLoad, blob []byte, tc trace.SpanContext) []string {
	sp := o.cfg.Tracing.StartSpan("place", tc)
	sp.Set("service", serviceName)
	chunks := &wireChunkSet{o: o, service: serviceName, blob: blob}

	scores := make([]siteScore, len(cands))
	var wg sync.WaitGroup
	for i, c := range cands {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			entry, hit := o.probePossession(sessionID, serviceName, c.name, chunks)
			scores[i] = siteScore{
				name:       c.name,
				load:       c.load,
				possession: entry.possession(),
				missing:    entry.missing,
				probed:     entry.ok,
				score:      placementScore(c.load, entry.missing),
			}
			if hit {
				o.placement.probeCacheHits.Add(1)
			}
		}()
	}
	wg.Wait()

	// The pure load order's winner, for the redirect counter: did
	// possession overrule it?
	loadWinner := cands[0]
	for _, c := range cands[1:] {
		if c.load < loadWinner.load || (c.load == loadWinner.load && c.name < loadWinner.name) {
			loadWinner = c
		}
	}
	orderScores(scores)
	o.placement.scored.Add(1)
	if scores[0].name != loadWinner.name {
		o.placement.redirected.Add(1)
		sp.Set("redirected", "true")
	}
	sp.Set("site", scores[0].name)
	sp.Set("possession", fmtPossession(scores[0].possession))
	sp.Set("probe", probeLabel(scores[0].probed))
	sp.SetInt("missing_bytes", scores[0].missing)
	sp.End()

	out := make([]string, len(scores))
	for i, s := range scores {
		out[i] = s.name
	}
	return out
}

// probePossession answers "how much of serviceName's wire is already at
// site?" from the TTL cache when fresh, otherwise through one batched
// HaveChunks probe concurrent callers share. hit reports whether the
// answer came without issuing a new probe (cache or joined flight).
func (o *OnServe) probePossession(sessionID, serviceName, site string, chunks *wireChunkSet) (possEntry, bool) {
	key := serviceName + "|" + site
	ttl := o.cfg.PlacementProbeTTL
	if ttl <= 0 {
		ttl = DefaultPlacementProbeTTL
	}
	for {
		o.poss.mu.Lock()
		if e, ok := o.poss.cache[key]; ok && o.clock.Now().Sub(e.at) < ttl {
			o.poss.mu.Unlock()
			return e, true
		}
		if f := o.poss.flights[key]; f != nil {
			o.poss.mu.Unlock()
			<-f.done
			return f.entry, true
		}
		f := &possFlight{done: make(chan struct{})}
		o.poss.flights[key] = f
		o.poss.mu.Unlock()

		f.entry = o.probeOnce(sessionID, serviceName, site, chunks)
		o.poss.mu.Lock()
		delete(o.poss.flights, key)
		o.poss.cache[key] = f.entry
		o.poss.mu.Unlock()
		close(f.done)
		return f.entry, false
	}
}

// probeOnce issues one possession probe against site.
func (o *OnServe) probeOnce(sessionID, serviceName, site string, chunks *wireChunkSet) possEntry {
	now := o.clock.Now()
	digests, sizes, total, ok := chunks.cut()
	if !ok {
		// Chunk protocol inapplicable: possession unknown, score the site
		// as a full cold transfer of the raw blob.
		return possEntry{missing: int64(len(chunks.blob)), total: int64(len(chunks.blob)), at: now}
	}
	o.placement.probesSent.Add(1)
	missing, err := o.cfg.Agent.HaveChunks(sessionID, site, digests)
	if err != nil {
		// Degradation, not failure: the site is scored possession-unknown
		// — the load term plus a full cold transfer — so a dead or
		// stock-protocol server costs it the possession credit but never
		// fails pickSites.
		o.placement.probeFailures.Add(1)
		return possEntry{missing: total, total: total, at: now}
	}
	var missingBytes int64
	for _, d := range missing {
		missingBytes += int64(sizes[d])
	}
	return possEntry{missing: missingBytes, total: total, ok: true, at: now}
}

// notePossession records that site now holds serviceName's full wire
// (a staging or replicator push just completed there), so the next
// placement credits it without waiting out the probe TTL.
func (o *OnServe) notePossession(serviceName, site string, total int64) {
	if !o.cfg.DataAwarePlacement {
		return
	}
	o.poss.mu.Lock()
	o.poss.cache[serviceName+"|"+site] = possEntry{missing: 0, total: total, ok: true, at: o.clock.Now()}
	o.poss.mu.Unlock()
}

// forgetPossession drops every cached possession answer for serviceName
// (DeleteService).
func (o *OnServe) forgetPossession(serviceName string) {
	prefix := serviceName + "|"
	o.poss.mu.Lock()
	for k := range o.poss.cache {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(o.poss.cache, k)
		}
	}
	o.poss.mu.Unlock()
}

func fmtPossession(f float64) string {
	return strconv.FormatFloat(f, 'f', 2, 64)
}

func probeLabel(probed bool) string {
	if probed {
		return "known"
	}
	return "unknown"
}
