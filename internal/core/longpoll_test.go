package core

import (
	"encoding/base64"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/soap"
)

func TestLongPollCollectsOutput(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.UseLongPoll = true })
	f.uploadDemo(t)
	out, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "777"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "pi=777\n" {
		t.Fatalf("output %q", out)
	}
}

func TestLongPollHandlesFailure(t *testing.T) {
	f := newFixture(t, func(cfg *Config) { cfg.UseLongPoll = true })
	if _, err := f.ons.UploadAndGenerate("alice", "lpboom.gsh", "", nil, []byte("fail lp-exploded\n")); err != nil {
		t.Fatal(err)
	}
	_, err := f.ons.ExecuteAndWait("LpboomService", nil)
	if err == nil || !strings.Contains(err.Error(), "FAILED") {
		t.Fatalf("got %v", err)
	}
}

func TestLongPollAvoidsPeriodicDiskWrites(t *testing.T) {
	// The workaround writes the output snapshot on every poll; long-poll
	// writes it exactly once. Compare disk traffic for the same job.
	jobSrc := "emit 2s 8 line\n"

	stock := newFixture(t, nil)
	if _, err := stock.ons.UploadAndGenerate("alice", "lpjob.gsh", "", nil, []byte(jobSrc)); err != nil {
		t.Fatal(err)
	}
	if _, err := stock.ons.ExecuteAndWait("LpjobService", nil); err != nil {
		t.Fatal(err)
	}
	stockWrites := stock.rec.Total(metrics.DiskWrite)

	lp := newFixture(t, func(cfg *Config) { cfg.UseLongPoll = true })
	if _, err := lp.ons.UploadAndGenerate("alice", "lpjob.gsh", "", nil, []byte(jobSrc)); err != nil {
		t.Fatal(err)
	}
	if _, err := lp.ons.ExecuteAndWait("LpjobService", nil); err != nil {
		t.Fatal(err)
	}
	lpWrites := lp.rec.Total(metrics.DiskWrite)

	if lpWrites >= stockWrites {
		t.Fatalf("long-poll should write less: stock %v vs longpoll %v", stockWrites, lpWrites)
	}
}

func TestLongPollWatchdogStillGuards(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.UseLongPoll = true
		cfg.InvocationTimeout = 20 * time.Second
	})
	if _, err := f.ons.UploadAndGenerate("alice", "lpforever.gsh", "", nil, []byte("compute 23h\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("LpforeverService", nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-inv.DoneChan():
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never fired under long-poll")
	}
	if inv.State() != InvKilled {
		t.Fatalf("state %s: %s", inv.State(), inv.Message())
	}
}

func TestOutputFileThroughGeneratedService(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.ons.UploadAndGenerate("alice", "artifacts.gsh", "", nil,
		[]byte("write data.bin 64\necho done\n")); err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(t, f.cfg.Container)
	var c soap.Client
	url := hs + "/services/ArtifactsService"
	ns := "urn:onserve:ArtifactsService"
	ticket, err := c.Call(url, ns, "execute", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(url, ns, "wait", []soap.Param{{Name: "ticket", Value: ticket}}, nil); err != nil {
		t.Fatal(err)
	}
	enc, err := c.Call(url, ns, "outputFile", []soap.Param{
		{Name: "ticket", Value: ticket}, {Name: "name", Value: "data.bin"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := base64.StdEncoding.DecodeString(enc)
	if err != nil || len(data) != 64 {
		t.Fatalf("artifact %d bytes err %v", len(data), err)
	}
	// Missing artifact faults.
	_, err = c.Call(url, ns, "outputFile", []soap.Param{
		{Name: "ticket", Value: ticket}, {Name: "name", Value: "ghost.bin"},
	}, nil)
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("got %v", err)
	}
}

func TestInvocationOutputFileBadTicket(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.ons.InvocationOutputFile("inv-000000-ffffffffffff", "x"); !errors.Is(err, ErrNoTicket) {
		t.Fatalf("got %v", err)
	}
}
