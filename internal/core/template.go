package core

import (
	"encoding/base64"

	"repro/internal/soap"
	"repro/internal/trace"
	"repro/internal/wsdl"
)

// buildService instantiates the GridService template for one executable —
// the Go analogue of the paper's "GridService template-class [which]
// contains the code that actually initializes the execution of an
// associated executable on the Grid" plus the ant build that stamps the
// service's name into it.
//
// Every generated service carries the user-declared execute parameters
// plus the standard lifecycle operations driven by an invocation ticket:
//
//	execute(<params>)    -> ticket
//	status(ticket)       -> invocation state (JSON)
//	output(ticket)       -> stdout snapshot so far (tentative polling)
//	wait(ticket)         -> blocks until terminal, returns final output
//	cancel(ticket)       -> requests cancellation
func (o *OnServe) buildService(serviceName, description string, params []wsdl.ParamDef) *soap.Service {
	ticketParam := []wsdl.ParamDef{{Name: "ticket", Type: wsdl.TypeString, Doc: "invocation ticket from execute"}}
	def := wsdl.ServiceDef{
		Name:        serviceName,
		Namespace:   "urn:onserve:" + serviceName,
		Doc:         description,
		EndpointURL: o.cfg.BaseURL + o.cfg.Container.BasePath() + serviceName,
		Operations: []wsdl.OperationDef{
			{
				Name:   "execute",
				Doc:    "Execute the associated file on the Grid; returns an invocation ticket",
				Params: params,
			},
			{Name: "status", Doc: "Invocation status as JSON", Params: ticketParam},
			{Name: "output", Doc: "Stdout snapshot gathered so far", Params: ticketParam},
			{
				Name: "outputFile",
				Doc:  "Fetch a named output artifact of the job, base64-encoded",
				Params: []wsdl.ParamDef{
					{Name: "ticket", Type: wsdl.TypeString},
					{Name: "name", Type: wsdl.TypeString, Doc: "artifact file name"},
				},
			},
			{Name: "wait", Doc: "Block until the invocation is terminal; returns the final output", Params: ticketParam},
			{Name: "cancel", Doc: "Request cancellation of the invocation", Params: ticketParam},
		},
	}
	svc := soap.NewService(def)
	fault := func(err error) (string, error) {
		return "", &soap.Fault{Code: soap.FaultClient, String: err.Error()}
	}
	svc.MustBind("execute", func(req *soap.Request) (string, error) {
		// Malformed headers degrade to a new root trace, never a fault.
		tc, _ := trace.Parse(req.Trace)
		inv, err := o.InvokeCtx(serviceName, req.Args, tc)
		if err != nil {
			return fault(err)
		}
		return inv.Ticket, nil
	})
	svc.MustBind("status", func(req *soap.Request) (string, error) {
		inv, err := o.Invocation(req.Args["ticket"])
		if err != nil {
			return fault(err)
		}
		return inv.StatusJSON()
	})
	svc.MustBind("output", func(req *soap.Request) (string, error) {
		inv, err := o.Invocation(req.Args["ticket"])
		if err != nil {
			return fault(err)
		}
		return inv.Output(), nil
	})
	svc.MustBind("outputFile", func(req *soap.Request) (string, error) {
		data, err := o.InvocationOutputFile(req.Args["ticket"], req.Args["name"])
		if err != nil {
			return fault(err)
		}
		return base64.StdEncoding.EncodeToString(data), nil
	})
	svc.MustBind("wait", func(req *soap.Request) (string, error) {
		inv, err := o.Invocation(req.Args["ticket"])
		if err != nil {
			return fault(err)
		}
		<-inv.DoneChan()
		if msg := inv.Message(); inv.State() != InvDone && msg != "" {
			return "", &soap.Fault{Code: soap.FaultServer, String: msg}
		}
		return inv.Output(), nil
	})
	svc.MustBind("cancel", func(req *soap.Request) (string, error) {
		inv, err := o.Invocation(req.Args["ticket"])
		if err != nil {
			return fault(err)
		}
		if err := o.CancelInvocation(inv.Ticket); err != nil {
			return fault(err)
		}
		return "cancelling", nil
	})
	return svc
}
