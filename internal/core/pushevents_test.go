package core

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// eventsGate wraps a transport to fault-inject only the /gram/events
// path: pass frames through, refuse connections, or answer like a stock
// gatekeeper (404). Live stream bodies are tracked so a test can sever
// them mid-flight, simulating a gatekeeper restart.
type eventsGate struct {
	base http.RoundTripper

	mu     sync.Mutex
	mode   int // gatePass | gateRefuse | gateNotFound
	bodies []io.Closer
}

const (
	gatePass = iota
	gateRefuse
	gateNotFound
)

func (g *eventsGate) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path != "/gram/events" {
		return g.base.RoundTrip(req)
	}
	g.mu.Lock()
	mode := g.mode
	g.mu.Unlock()
	switch mode {
	case gateRefuse:
		return nil, errors.New("eventsGate: connection refused")
	case gateNotFound:
		return &http.Response{
			Status:     "404 Not Found",
			StatusCode: http.StatusNotFound,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"application/json"}},
			Body:    io.NopCloser(strings.NewReader(`{"error":"gram: unknown endpoint"}`)),
			Request: req,
		}, nil
	}
	resp, err := g.base.RoundTrip(req)
	if err == nil {
		g.mu.Lock()
		g.bodies = append(g.bodies, resp.Body)
		g.mu.Unlock()
	}
	return resp, err
}

func (g *eventsGate) setMode(mode int) {
	g.mu.Lock()
	g.mode = mode
	g.mu.Unlock()
}

// killStreams severs every stream opened so far.
func (g *eventsGate) killStreams() {
	g.mu.Lock()
	bodies := g.bodies
	g.bodies = nil
	g.mu.Unlock()
	for _, b := range bodies {
		b.Close()
	}
}

func newPushFixture(t *testing.T, gate *eventsGate, mutate func(*Config)) *fixture {
	t.Helper()
	var client *http.Client
	if gate != nil {
		if gate.base == nil {
			gate.base = http.DefaultTransport
		}
		client = &http.Client{Transport: gate}
	}
	return newFixtureHTTP(t, client, func(cfg *Config) {
		cfg.PushEvents = true
		if mutate != nil {
			mutate(cfg)
		}
	})
}

func waitInv(t *testing.T, inv *Invocation, what string) {
	t.Helper()
	select {
	case <-inv.DoneChan():
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: invocation stuck in %s", what, inv.State())
	}
}

func TestPushEventsEndToEnd(t *testing.T) {
	f := newPushFixture(t, nil, nil)
	if _, err := f.ons.UploadAndGenerate("alice", "ticker.gsh", "", nil,
		[]byte("emit 2s 5 line\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("TickerService", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitInv(t, inv, "push end-to-end")
	if inv.State() != InvDone {
		t.Fatalf("state %s: %s", inv.State(), inv.Message())
	}
	if got := strings.Count(inv.Output(), "line"); got != 5 {
		t.Fatalf("final output has %d lines: %q", got, inv.Output())
	}
	if inv.EndedAt().IsZero() {
		t.Fatal("terminal invocation has no end time")
	}
	es := f.ons.EventStats()
	if es.StreamsOpened == 0 || es.EventsDelivered == 0 {
		t.Fatalf("push channel saw no traffic: %+v", es)
	}
	if es.FallbacksToPoll != 0 {
		t.Fatalf("healthy server forced a fallback: %+v", es)
	}
}

func TestPushEventsSteadyStateStatusRPCsNearZero(t *testing.T) {
	// The acceptance bar: under a concurrent burst, the push collector's
	// only status traffic is the one bootstrap resync per fresh stream —
	// every poll tick that the stock/hub paths spend on /gram/status*
	// costs the push path nothing.
	const n = 8
	f := newPushFixture(t, nil, func(cfg *Config) { cfg.SessionCache = true })
	runBatchWorkload(t, f, n)
	stats := f.ons.CollectorStats()
	es := f.ons.EventStats()
	if es.StreamsOpened == 0 || es.EventsDelivered == 0 {
		t.Fatalf("push channel unused: %+v", es)
	}
	if es.FallbacksToPoll != 0 {
		t.Fatalf("fallbacks under a healthy server: %+v", es)
	}
	// One sync per stream open is the whole status budget; jobs ran ~30
	// virtual minutes against a 2s poll interval, so the poll paths would
	// have spent hundreds of RPCs here.
	if stats.StatusRPCs > es.StreamsOpened {
		t.Fatalf("steady-state status RPCs not ≈ 0: %d RPCs over %d streams (%+v)",
			stats.StatusRPCs, es.StreamsOpened, stats)
	}
	if es.StreamsOpened > n {
		t.Fatalf("more streams than invocations: %+v", es)
	}
}

func TestPushEventsStockServerFallsBackToHub(t *testing.T) {
	// A gatekeeper without /gram/events must cost one probe, then behave
	// exactly like the poll hub — no lost terminal states.
	gate := &eventsGate{mode: gateNotFound}
	f := newPushFixture(t, gate, nil)
	if _, err := f.ons.UploadAndGenerate("alice", "ticker.gsh", "", nil,
		[]byte("emit 2s 5 line\n")); err != nil {
		t.Fatal(err)
	}
	invs := make([]*Invocation, 4)
	for i := range invs {
		inv, err := f.ons.Invoke("TickerService", nil)
		if err != nil {
			t.Fatal(err)
		}
		invs[i] = inv
	}
	for _, inv := range invs {
		waitInv(t, inv, "stock fallback")
		if inv.State() != InvDone {
			t.Fatalf("state %s: %s", inv.State(), inv.Message())
		}
		if got := strings.Count(inv.Output(), "line"); got != 5 {
			t.Fatalf("output lost in fallback: %q", inv.Output())
		}
	}
	f.ons.events.mu.Lock()
	unsupported := f.ons.events.unsupported
	f.ons.events.mu.Unlock()
	if !unsupported {
		t.Fatal("stock-server verdict not latched")
	}
	if f.ons.EventStats().StreamsOpened != 0 {
		t.Fatalf("stream counted against a 404 server: %+v", f.ons.EventStats())
	}
	if f.ons.CollectorStats().StatusRPCs == 0 {
		t.Fatal("poll hub never polled after the fallback")
	}
}

func TestPushEventsMidStreamKillFallsBackThenRecovers(t *testing.T) {
	// Sever the stream mid-job and refuse reconnects: the worker must
	// hand its in-flight invocation to the poll hub (watchdog intact)
	// and the job must still finish. Once the server "heals", the next
	// invocation rides a fresh stream again.
	gate := &eventsGate{}
	f := newPushFixture(t, gate, func(cfg *Config) {
		cfg.InvocationTimeout = 3 * time.Hour
	})
	// Mostly silent and long: the stream is up (and killable) for the
	// whole middle of the job, and the adopting hub's ticks stay cheap.
	if _, err := f.ons.UploadAndGenerate("alice", "longer.gsh", "", nil,
		[]byte("echo head\ncompute 40m\necho tail\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("LongerService", nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.ons.EventStats().EventsDelivered == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never delivered a frame")
		}
		time.Sleep(time.Millisecond)
	}
	gate.setMode(gateRefuse)
	gate.killStreams()
	waitInv(t, inv, "mid-stream kill")
	if inv.State() != InvDone {
		t.Fatalf("state %s: %s (events %+v collector %+v)",
			inv.State(), inv.Message(), f.ons.EventStats(), f.ons.CollectorStats())
	}
	if inv.Output() != "head\ntail\n" {
		t.Fatalf("output lost across the fallback: %q", inv.Output())
	}
	mid := f.ons.EventStats()
	if mid.FallbacksToPoll == 0 {
		t.Fatalf("no fallback recorded after the kill: %+v", mid)
	}

	// Recovery: the latch is per-failure, not permanent — a healed
	// server gets a fresh stream for the next invocation.
	gate.setMode(gatePass)
	if _, err := f.ons.UploadAndGenerate("alice", "quick.gsh", "", nil,
		[]byte("compute 1s\necho back\n")); err != nil {
		t.Fatal(err)
	}
	inv2, err := f.ons.Invoke("QuickService", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitInv(t, inv2, "post-recovery")
	if inv2.State() != InvDone || inv2.Output() != "back\n" {
		t.Fatalf("recovered invocation: %s %q", inv2.State(), inv2.Output())
	}
	after := f.ons.EventStats()
	if after.StreamsOpened <= mid.StreamsOpened {
		t.Fatalf("no new stream after recovery: %+v -> %+v", mid, after)
	}
}

func TestPushEventsWatchdogKillsRunaway(t *testing.T) {
	f := newPushFixture(t, nil, func(cfg *Config) {
		cfg.InvocationTimeout = 20 * time.Second
	})
	if _, err := f.ons.UploadAndGenerate("alice", "forever.gsh", "", nil,
		[]byte("compute 23h\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("ForeverService", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitInv(t, inv, "watchdog under push")
	// Either enforcement path may win the race: the client watchdog, or
	// the site's own walltime limit (the job's walltime is derived from
	// the invocation timeout) arriving as a pushed TIMEOUT event. Both
	// must land on InvKilled.
	if inv.State() != InvKilled {
		t.Fatalf("state %s: %s", inv.State(), inv.Message())
	}
}

func TestPushEventsCancelInvocation(t *testing.T) {
	// Cancel mid-run: the CANCELLED transition arrives as a pushed event
	// and must settle the invocation exactly as the poll paths do.
	f := newPushFixture(t, nil, nil)
	if _, err := f.ons.UploadAndGenerate("alice", "slow.gsh", "", nil,
		[]byte("emit 2s 10000 t\n")); err != nil {
		t.Fatal(err)
	}
	inv, err := f.ons.Invoke("SlowService", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ons.CancelInvocation(inv.Ticket); err != nil {
		t.Fatal(err)
	}
	waitInv(t, inv, "cancel under push")
	if inv.State() != InvCancelled {
		t.Fatalf("state %s", inv.State())
	}
}

func TestCancelOnCompletionTickPushEvents(t *testing.T) {
	// The cancel-racing-terminal-event race: whichever of the pushed
	// terminal frame and CancelInvocation wins, the invocation finishes
	// exactly once (finish double-closing DoneChan would panic; -race
	// covers the rest).
	cancelOnCompletionTick(t, func(cfg *Config) { cfg.PushEvents = true })
}

func TestPushEventsTwoSessionsDoNotCrossDeliver(t *testing.T) {
	// Two users, two sessions, two streams: each invocation must settle
	// from its own session's events with its own output.
	f := newPushFixture(t, nil, nil)
	if _, err := f.env.AddUser("bob", "pw2", 0); err != nil {
		t.Fatal(err)
	}
	f.ons.RegisterUser("bob", UserAuth{MyProxyUser: "bob", Passphrase: "pw2"})
	if _, err := f.ons.UploadAndGenerate("alice", "amine.gsh", "", nil,
		[]byte("emit 2s 4 alice-line\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ons.UploadAndGenerate("bob", "bmine.gsh", "", nil,
		[]byte("emit 2s 7 bob-line\n")); err != nil {
		t.Fatal(err)
	}
	a, err := f.ons.Invoke("AmineService", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.ons.Invoke("BmineService", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitInv(t, a, "alice")
	waitInv(t, b, "bob")
	if a.State() != InvDone || strings.Count(a.Output(), "alice-line") != 4 ||
		strings.Contains(a.Output(), "bob-line") {
		t.Fatalf("alice: %s %q", a.State(), a.Output())
	}
	if b.State() != InvDone || strings.Count(b.Output(), "bob-line") != 7 ||
		strings.Contains(b.Output(), "alice-line") {
		t.Fatalf("bob: %s %q", b.State(), b.Output())
	}
	if es := f.ons.EventStats(); es.StreamsOpened < 2 {
		t.Fatalf("two sessions shared a stream: %+v", es)
	}
}

// TestTracePushPathLinksParent is the trace-linkage regression for the
// push channel: every recorded "event" span parents under its own
// invocation's collect span (one tree per invocation, no orphans) and
// the terminal event records its delivery latency.
func TestTracePushPathLinksParent(t *testing.T) {
	col := trace.NewCollector(0, 0)
	f := newFixtureTraced(t, nil, col, func(cfg *Config) {
		cfg.PushEvents = true
		cfg.SessionCache = true
	})
	// Long enough that the stream is connected well before the job ends:
	// the terminal state then arrives as a pushed frame (carrying its
	// publication timestamp) rather than through the bootstrap resync.
	if _, err := f.ons.UploadAndGenerate("alice", "traced.gsh", "", nil,
		[]byte("echo begin\ncompute 10m\necho fin\n")); err != nil {
		t.Fatal(err)
	}
	const n = 3
	invs := make([]*Invocation, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inv, err := f.ons.Invoke("TracedService", nil)
			if err != nil {
				t.Error(err)
				return
			}
			<-inv.DoneChan()
			invs[i] = inv
		}(i)
	}
	wg.Wait()
	for _, inv := range invs {
		if inv == nil {
			t.Fatal("invocation failed")
		}
		if inv.State() != InvDone {
			t.Fatalf("state %s: %s", inv.State(), inv.Message())
		}
		spans, err := f.ons.InvocationTrace(inv.Ticket)
		if err != nil {
			t.Fatal(err)
		}
		assertSingleTree(t, spans)
		byName, byID := indexSpans(spans)
		events := byName["event"]
		if len(events) == 0 {
			t.Fatal("push collection recorded no event span")
		}
		terminalSeen := false
		for _, sd := range events {
			if p, ok := byID[sd.ParentID]; !ok || p.Name != "collect" {
				t.Errorf("event span detached from its invocation's collect span: %+v", sd)
			}
			if sd.Attrs["state"] == "DONE" {
				terminalSeen = true
				if sd.Attrs["delivery_us"] == "" {
					t.Errorf("terminal event span has no delivery latency: %+v", sd.Attrs)
				}
			}
		}
		if !terminalSeen {
			t.Error("no event span recorded the terminal state")
		}
		// The push path must not have fallen back to polling mid-test.
		if len(byName["poll"]) != 0 {
			t.Errorf("poll spans under the push collector: %d", len(byName["poll"]))
		}
	}
}
