package core

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/cyberaide"
	"repro/internal/gridftp"
	"repro/internal/trace"
)

// stageRetryBackoff is how long the stock upload path waits before its
// single bounded retry of a transiently failed WAN transfer.
const stageRetryBackoff = 500 * time.Millisecond

// StageStats counts the chunked staging data plane's work: what crossed
// the WAN versus what the content-addressed chunk store absorbed. All
// zero while Config.ChunkedStaging is off.
type StageStats struct {
	// ChunkedUploads is how many stagings went through the chunk
	// protocol (including ones that resumed or fully deduped).
	ChunkedUploads uint64 `json:"chunked_uploads"`
	// ChunksShipped counts chunks that actually crossed the WAN.
	ChunksShipped uint64 `json:"chunks_shipped"`
	// ChunksDeduped counts manifest entries satisfied without a
	// transfer: already at the site (prior version, resumed transfer,
	// sibling service) or repeated within one file.
	ChunksDeduped uint64 `json:"chunks_deduped"`
	// WireBytes is what chunked stagings sent over the WAN; LogicalBytes
	// the file sizes they delivered. WireBytes < LogicalBytes measures
	// the combined dedup + compression win.
	WireBytes    uint64 `json:"wire_bytes"`
	LogicalBytes uint64 `json:"logical_bytes"`
	// Resumes counts chunked uploads that found at least one of their
	// chunks already at the site — a prior transfer's restart marker.
	Resumes uint64 `json:"resumes"`
	// Fallbacks counts chunked stagings that downgraded to a monolithic
	// PUT because the site's server does not speak the chunk protocol.
	Fallbacks uint64 `json:"fallbacks"`
}

// stageCounters is the mutable, atomically updated form.
type stageCounters struct {
	chunkedUploads atomic.Uint64
	chunksShipped  atomic.Uint64
	chunksDeduped  atomic.Uint64
	wireBytes      atomic.Uint64
	logicalBytes   atomic.Uint64
	resumes        atomic.Uint64
	fallbacks      atomic.Uint64
}

// StageStats snapshots the staging data-plane counters.
func (o *OnServe) StageStats() StageStats {
	return StageStats{
		ChunkedUploads: o.stage.chunkedUploads.Load(),
		ChunksShipped:  o.stage.chunksShipped.Load(),
		ChunksDeduped:  o.stage.chunksDeduped.Load(),
		WireBytes:      o.stage.wireBytes.Load(),
		LogicalBytes:   o.stage.logicalBytes.Load(),
		Resumes:        o.stage.resumes.Load(),
		Fallbacks:      o.stage.fallbacks.Load(),
	}
}

// uploadExecutable performs stageExecutableOnce's WAN transfer: through
// the chunk protocol when Config.ChunkedStaging is on, as the paper's
// monolithic PUT otherwise. Either way a transiently failed transfer is
// retried exactly once after a short backoff — a blip at second 59 of a
// 60 s WAN upload no longer kills the invocation. Session faults are
// never retried here (Invoke's invalidate-and-retry owns those), and
// neither are the server's definitive rejections.
func (o *OnServe) uploadExecutable(sessionID, serviceName, stagedName, site string, blob []byte, sp *trace.Span) (string, error) {
	checksum, err := o.uploadOnce(sessionID, serviceName, stagedName, site, blob, sp)
	if err == nil || !retryableStageErr(err) {
		return checksum, err
	}
	o.submit.uploadRetries.Add(1)
	sp.Set("retried", "true")
	o.clock.Sleep(stageRetryBackoff)
	return o.uploadOnce(sessionID, serviceName, stagedName, site, blob, sp)
}

// uploadOnce is one transfer attempt.
func (o *OnServe) uploadOnce(sessionID, serviceName, stagedName, site string, blob []byte, sp *trace.Span) (string, error) {
	o.submit.uploads.Add(1)
	ag := o.cfg.Agent.WithTrace(sp.Context())
	if !o.cfg.ChunkedStaging {
		return ag.Upload(sessionID, site, stagedName, blob)
	}
	// Ship the database's stored gzip stream as-is when wire compression
	// is on — no re-compress CPU on the appliance (see storedGzip for
	// the re-publish guard).
	gz := o.storedGzip(serviceName, blob)
	stats, err := ag.UploadChunked(sessionID, site, stagedName, blob, gz, o.cfg.ChunkBytes)
	if err != nil {
		return "", err
	}
	o.stage.chunkedUploads.Add(1)
	o.stage.chunksShipped.Add(uint64(stats.ChunksShipped))
	o.stage.chunksDeduped.Add(uint64(stats.ChunksDeduped))
	o.stage.wireBytes.Add(uint64(stats.WireBytes))
	o.stage.logicalBytes.Add(uint64(stats.LogicalBytes))
	if stats.Resumed {
		o.stage.resumes.Add(1)
	}
	if stats.Fallback {
		o.stage.fallbacks.Add(1)
	}
	sp.SetInt("wire_bytes", stats.WireBytes)
	sp.SetInt("chunks_shipped", int64(stats.ChunksShipped))
	sp.SetInt("chunks_deduped", int64(stats.ChunksDeduped))
	if !stats.Fallback {
		// The site's chunk store now holds the full wire: credit it in
		// the possession cache without waiting out the probe TTL. A
		// fallback PUT leaves the chunk store untouched, so it earns no
		// credit.
		o.notePossession(serviceName, site, stats.LogicalBytes)
	}
	return stats.Checksum, nil
}

// retryableStageErr reports whether a failed transfer is worth the one
// bounded retry: transient transport trouble is, a session fault or the
// server's definitive rejection is not. A checksum mismatch is
// retryable — both transfer paths are idempotent.
func retryableStageErr(err error) bool {
	if err == nil || isSessionFault(err) {
		return false
	}
	if errors.Is(err, cyberaide.ErrUnknownSite) ||
		errors.Is(err, gridftp.ErrDenied) ||
		errors.Is(err, gridftp.ErrBadInput) ||
		errors.Is(err, gridftp.ErrNoFile) {
		return false
	}
	return true
}
