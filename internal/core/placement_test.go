package core

import (
	"errors"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// fillerProgram is a valid gsh program padded with comment lines to
// roughly size bytes, so chunked-staging tests get multi-chunk wires.
func fillerProgram(size int) string {
	var b strings.Builder
	b.WriteString("compute 1s\necho staged ok\n")
	line := "# " + strings.Repeat("filler data for the placement tests ", 3) + "\n"
	for b.Len() < size {
		b.WriteString(line)
	}
	return b.String()
}

func TestPlacementScoreWeighting(t *testing.T) {
	cases := []struct {
		name           string
		loadA          float64
		missA          int64
		loadB          float64
		missB          int64
		wantAFirst     bool
		wantAFirstNote string
	}{
		{
			// A tiny payload is not worth chasing: the idle site wins even
			// though it holds nothing.
			name:  "small payload follows load",
			loadA: 0, missA: 64 << 10, // ~0.75 s transfer
			loadB: 0.25, missB: 0, // 7.5 s queueing
			wantAFirst: true,
		},
		{
			// A big payload is: the loaded-but-possessing site beats an idle
			// site that would cold-transfer everything.
			name:  "large payload follows data",
			loadA: 0, missA: 4 << 20, // ~48 s transfer
			loadB: 0.75, missB: 0, // 22.5 s queueing
			wantAFirst: false,
		},
		{
			name:  "all else equal lower load wins",
			loadA: 0.5, missA: 0,
			loadB: 0.25, missB: 0,
			wantAFirst: false,
		},
		{
			name:  "all else equal possession wins",
			loadA: 0.5, missA: 0,
			loadB: 0.5, missB: 1 << 20,
			wantAFirst: true,
		},
	}
	for _, c := range cases {
		a := placementScore(c.loadA, c.missA)
		b := placementScore(c.loadB, c.missB)
		if (a < b) != c.wantAFirst {
			t.Errorf("%s: score A %.2f vs B %.2f, want A first %v", c.name, a, b, c.wantAFirst)
		}
	}
}

func TestOrderScoresDeterministic(t *testing.T) {
	// Equal scores must order by name no matter the input order.
	perms := [][]string{
		{"siteC", "siteA", "siteB"},
		{"siteB", "siteC", "siteA"},
		{"siteA", "siteB", "siteC"},
	}
	for _, p := range perms {
		scores := make([]siteScore, len(p))
		for i, name := range p {
			scores[i] = siteScore{name: name, score: 7.5}
		}
		orderScores(scores)
		if scores[0].name != "siteA" || scores[1].name != "siteB" || scores[2].name != "siteC" {
			t.Fatalf("permutation %v ordered as %v", p, scores)
		}
	}
	// Unequal scores order ascending regardless of name.
	scores := []siteScore{
		{name: "siteA", score: 9},
		{name: "siteZ", score: 1},
		{name: "siteM", score: 5},
	}
	orderScores(scores)
	if scores[0].name != "siteZ" || scores[1].name != "siteM" || scores[2].name != "siteA" {
		t.Fatalf("ordered %v", scores)
	}
}

// TestDataAwarePlacementPrefersPossessingSite is the tentpole's warm
// path: once a service's chunks live at one site, later invocations land
// there and their stagings cross the WAN empty-handed.
func TestDataAwarePlacementPrefersPossessingSite(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.InvocationTimeout = 100 * time.Hour
		cfg.ChunkedStaging = true
		cfg.ChunkBytes = 4 << 10
		cfg.DataAwarePlacement = true
		// Far beyond the test's virtual runtime (the scaled clock turns
		// milliseconds of wall time into virtual hours).
		cfg.PlacementProbeTTL = 1000 * time.Hour
	})
	if _, err := f.ons.UploadAndGenerate("alice", "warm.gsh", "", nil,
		[]byte(fillerProgram(64<<10))); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ons.ExecuteAndWait("WarmService", nil); err != nil {
		t.Fatal(err)
	}
	inv1 := f.ons.Invocations()[0]
	shipped := f.ons.StageStats().ChunksShipped
	if shipped == 0 {
		t.Fatal("cold staging shipped no chunks")
	}

	inv2, err := f.ons.Invoke("WarmService", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-inv2.DoneChan()
	if inv2.State() != InvDone {
		t.Fatalf("second invocation %s: %s", inv2.State(), inv2.Message())
	}
	if inv2.Site != inv1.Site {
		t.Fatalf("second invocation left the possessing site: %s then %s", inv1.Site, inv2.Site)
	}
	if got := f.ons.StageStats().ChunksShipped; got != shipped {
		t.Fatalf("warm staging shipped %d chunks, want 0", got-shipped)
	}
	st := f.ons.PlacementStats()
	if st.PlacementsScored != 2 {
		t.Fatalf("placements scored %d, want 2", st.PlacementsScored)
	}
	// First placement probed both sites; the second was answered entirely
	// from the possession cache (the upload's own credit for the winner,
	// the still-fresh probe answer for the loser).
	if st.ProbesSent != 2 {
		t.Fatalf("probes sent %d, want 2", st.ProbesSent)
	}
	if st.ProbeCacheHits != 2 {
		t.Fatalf("probe cache hits %d, want 2", st.ProbeCacheHits)
	}
}

// killSwitch fails every request to one grid host once armed — a site
// dropping off the network mid-burst.
type killSwitch struct {
	host atomic.Value // string
	dead atomic.Bool
}

func (k *killSwitch) RoundTrip(req *http.Request) (*http.Response, error) {
	if k.dead.Load() && req.URL.Host == k.host.Load().(string) {
		return nil, errors.New("injected: site unreachable")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestPlacementProbeFailureDegradesToLoad kills one site's GridFTP
// server mid-burst: probes against it fail, it is scored
// possession-unknown, and every invocation still completes at the
// surviving possessing site — degradation, never an error.
func TestPlacementProbeFailureDegradesToLoad(t *testing.T) {
	ks := &killSwitch{}
	ks.host.Store("")
	// No session cache: every invocation logs on with a fresh proxy, so a
	// slow -race run's virtual hours cannot expire a shared session.
	f := newFixtureHTTP(t, &http.Client{Transport: ks}, func(cfg *Config) {
		// A -race run burns virtual hours of scaled clock on real work
		// (six concurrent 3 MB stagings probing a dead site): keep the
		// watchdog, walltime and per-invocation proxy expiry out of the
		// way — this test is about placement, not deadlines. The timeout
		// stays under jsdl.MaxWallTime since it doubles as the walltime.
		cfg.InvocationTimeout = 160 * time.Hour
		cfg.ProxyLifetime = 1000 * time.Hour
		cfg.ChunkedStaging = true
		cfg.DataAwarePlacement = true
		// Expire possession answers immediately so the burst keeps probing
		// the dead site instead of coasting on the cache.
		cfg.PlacementProbeTTL = time.Nanosecond
	})
	// Big enough that the possessing site wins even while the burst loads
	// it: a full cold transfer scores worse than six busy slots.
	if _, err := f.ons.UploadAndGenerate("alice", "big.gsh", "", nil,
		[]byte(fillerProgram(3<<20))); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ons.ExecuteAndWait("BigService", nil); err != nil {
		t.Fatal(err)
	}
	home := f.ons.Invocations()[0].Site

	// Kill the sibling's GridFTP host.
	var sibling string
	for _, s := range []string{"siteA", "siteB"} {
		if s != home {
			sibling = s
		}
	}
	ftpURL, ok := f.cfg.Agent.SiteURL(sibling)
	if !ok {
		t.Fatalf("no FTP URL for %s", sibling)
	}
	u, err := url.Parse(ftpURL)
	if err != nil {
		t.Fatal(err)
	}
	ks.host.Store(u.Host)
	ks.dead.Store(true)

	const burst = 6
	var wg sync.WaitGroup
	invs := make([]*Invocation, burst)
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			inv, err := f.ons.Invoke("BigService", nil)
			invs[i], errs[i] = inv, err
			if err == nil {
				<-inv.DoneChan()
			}
		}()
	}
	wg.Wait()
	for i := 0; i < burst; i++ {
		if errs[i] != nil {
			t.Fatalf("invocation %d failed outright: %v", i, errs[i])
		}
		if st := invs[i].State(); st != InvDone {
			t.Fatalf("invocation %d %s: %s", i, st, invs[i].Message())
		}
		if invs[i].Site != home {
			t.Fatalf("invocation %d placed at the dead site %s", i, invs[i].Site)
		}
	}
	st := f.ons.PlacementStats()
	if st.ProbeFailures == 0 {
		t.Fatalf("dead site's probes never failed: %+v", st)
	}
	if st.PlacementsScored < burst {
		t.Fatalf("placements scored %d, want at least %d", st.PlacementsScored, burst)
	}
}

// TestReplicatorPushesToSiblings: after one cold staging the background
// replicator warms the sibling site and records the replica in the
// staging cache.
func TestReplicatorPushesToSiblings(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.ChunkedStaging = true
		cfg.ChunkBytes = 4 << 10
		cfg.StagingCache = true
		cfg.ReplicateTopK = 1
	})
	if _, err := f.ons.UploadAndGenerate("alice", "hot.gsh", "", nil,
		[]byte(fillerProgram(32<<10))); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ons.ExecuteAndWait("HotService", nil); err != nil {
		t.Fatal(err)
	}
	home := f.ons.Invocations()[0].Site
	f.ons.DrainReplicator()

	st := f.ons.PlacementStats()
	if st.ReplicatorPushes != 1 {
		t.Fatalf("replicator pushes %d, want 1: %+v", st.ReplicatorPushes, st)
	}
	if st.ReplicatorPushBytes == 0 || st.ReplicatorFailures != 0 {
		t.Fatalf("replicator stats %+v", st)
	}
	var sibling string
	for _, s := range []string{"siteA", "siteB"} {
		if s != home {
			sibling = s
		}
	}
	f.ons.mu.Lock()
	_, warm := f.ons.staged["HotService|"+sibling]
	f.ons.mu.Unlock()
	if !warm {
		t.Fatalf("staging cache has no replica entry for %s", sibling)
	}

	// The push pipeline really delivered the runnable file to the sibling.
	site, _ := f.env.Grid.Site(sibling)
	if _, err := site.Store().Size("/O=Repro/CN=alice", "HotService.gsh"); err != nil {
		t.Fatalf("replica missing at %s: %v", sibling, err)
	}

	// The same version never replicates twice.
	if _, err := f.ons.ExecuteAndWait("HotService", nil); err != nil {
		t.Fatal(err)
	}
	f.ons.DrainReplicator()
	if got := f.ons.PlacementStats().ReplicatorPushes; got != 1 {
		t.Fatalf("re-invocation re-replicated: %d pushes", got)
	}
}

// TestReplicatorBudgetSkips pins the per-cycle byte budget: with the
// cycle pinned open and the budget exhausted, the next push is dropped
// and counted, not queued forever.
func TestReplicatorBudgetSkips(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.ChunkedStaging = true
		cfg.ChunkBytes = 4 << 10
		cfg.ReplicateTopK = 1
	})
	if _, err := f.ons.UploadAndGenerate("alice", "first.gsh", "", nil,
		[]byte(fillerProgram(16<<10))); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ons.ExecuteAndWait("FirstService", nil); err != nil {
		t.Fatal(err)
	}
	f.ons.DrainReplicator()
	if got := f.ons.PlacementStats().ReplicatorPushes; got != 1 {
		t.Fatalf("pushes %d, want 1", got)
	}

	// Exhaust the budget and pin the cycle open (a start time in the
	// future never expires), then stage a second service.
	r := f.ons.rep
	r.mu.Lock()
	r.cycleStart = f.clock.Now().Add(time.Hour)
	r.cycleBytes = 10
	r.mu.Unlock()
	f.ons.cfg.ReplicateBudgetBytes = 1

	if _, err := f.ons.UploadAndGenerate("alice", "second.gsh", "", nil,
		[]byte(fillerProgram(16<<10))); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ons.ExecuteAndWait("SecondService", nil); err != nil {
		t.Fatal(err)
	}
	f.ons.DrainReplicator()
	st := f.ons.PlacementStats()
	if st.ReplicatorSkips != 1 {
		t.Fatalf("replicator skips %d, want 1: %+v", st.ReplicatorSkips, st)
	}
	if st.ReplicatorPushes != 1 {
		t.Fatalf("budget-blocked push went out anyway: %+v", st)
	}
}

// TestConcurrentPlacementAndReplication races a burst through every
// placement-path feature at once — probe cache, singleflight, staging
// coalescing and the background replicator — under -race.
func TestConcurrentPlacementAndReplication(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.InvocationTimeout = 100 * time.Hour
		cfg.StagingCache = true
		cfg.CoalesceStaging = true
		cfg.ChunkedStaging = true
		cfg.ChunkBytes = 4 << 10
		cfg.DataAwarePlacement = true
		cfg.ReplicateTopK = 1
		cfg.StatsTTL = 3 * time.Second
	})
	if _, err := f.ons.UploadAndGenerate("alice", "racey.gsh", "", nil,
		[]byte(fillerProgram(32<<10))); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.ons.ExecuteAndWait("RaceyService", nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	f.ons.DrainReplicator()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	st := f.ons.PlacementStats()
	if st.PlacementsScored != workers {
		t.Fatalf("placements scored %d, want %d", st.PlacementsScored, workers)
	}
	if st.ProbeFailures != 0 || st.ReplicatorFailures != 0 {
		t.Fatalf("healthy grid produced failures: %+v", st)
	}
}

// TestPlacementStatsZeroWhenOff pins the paper-faithful default: with
// the knobs off, no probes, no scoring, no replication.
func TestPlacementStatsZeroWhenOff(t *testing.T) {
	f := newFixture(t, nil)
	f.uploadDemo(t)
	if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "3"}); err != nil {
		t.Fatal(err)
	}
	if st := f.ons.PlacementStats(); st != (PlacementStats{}) {
		t.Fatalf("stock invocation touched placement counters: %+v", st)
	}
}

// TestDeleteServiceForgetsPossession: deleting a service drops its
// cached possession answers so a re-published namesake starts cold.
func TestDeleteServiceForgetsPossession(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.ChunkedStaging = true
		cfg.DataAwarePlacement = true
		cfg.PlacementProbeTTL = 10 * time.Minute
	})
	f.uploadDemo(t)
	if _, err := f.ons.ExecuteAndWait("MontecarloService", map[string]string{"digits": "1"}); err != nil {
		t.Fatal(err)
	}
	f.ons.poss.mu.Lock()
	cached := len(f.ons.poss.cache)
	f.ons.poss.mu.Unlock()
	if cached == 0 {
		t.Fatal("placement left no possession answers behind")
	}
	if err := f.ons.DeleteService("MontecarloService"); err != nil {
		t.Fatal(err)
	}
	f.ons.poss.mu.Lock()
	for k := range f.ons.poss.cache {
		if strings.HasPrefix(k, "MontecarloService|") {
			t.Errorf("stale possession entry %q survived delete", k)
		}
	}
	f.ons.poss.mu.Unlock()
}

// TestProbeCacheSingleflight: concurrent placements for one cold
// service|site pair collapse onto a single probe.
func TestProbeCacheSingleflight(t *testing.T) {
	f := newFixture(t, func(cfg *Config) {
		cfg.SessionCache = true
		cfg.ChunkedStaging = true
		cfg.DataAwarePlacement = true
		cfg.PlacementProbeTTL = 10 * time.Minute
	})
	if _, err := f.ons.UploadAndGenerate("alice", "flock.gsh", "", nil,
		[]byte(fillerProgram(16<<10))); err != nil {
		t.Fatal(err)
	}
	auth, err := f.ons.userAuth("alice")
	if err != nil {
		t.Fatal(err)
	}
	sess, _, err := f.ons.gridSession("alice", auth, trace.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f.cfg.DB.Table(ExecutablesTable).Get("FlockService")
	if err != nil {
		t.Fatal(err)
	}
	blob := rec.Blob
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chunks := &wireChunkSet{o: f.ons, service: "FlockService", blob: blob}
			f.ons.probePossession(sess, "FlockService", "siteA", chunks)
		}()
	}
	wg.Wait()
	st := f.ons.PlacementStats()
	if st.ProbesSent != 1 {
		t.Fatalf("%d concurrent placements sent %d probes, want 1", callers, st.ProbesSent)
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtPossession(0.5); got != "0.50" {
		t.Fatalf("fmtPossession %q", got)
	}
	if probeLabel(true) != "known" || probeLabel(false) != "unknown" {
		t.Fatal("probeLabel labels wrong")
	}
	e := possEntry{missing: 25, total: 100, ok: true}
	if got := e.possession(); got != 0.75 {
		t.Fatalf("possession %v", got)
	}
	bad := possEntry{missing: 100, total: 100}
	if got := bad.possession(); got != 0 {
		t.Fatalf("unknown possession %v, want 0", got)
	}
}
