package tenant

import (
	"strings"
	"testing"
)

// FuzzKeyHeader pins that the key-header parser — which runs before
// authentication on every request — is total: no input panics, and
// anything it accepts is a bounded, visible-ASCII token that re-parses
// to itself (so a proxied header survives a second hop unchanged).
func FuzzKeyHeader(f *testing.F) {
	f.Add("secret-1")
	f.Add("Grid secret-1")
	f.Add("grid\t secret-1 ")
	f.Add("")
	f.Add("Grid ")
	f.Add("two words")
	f.Add(strings.Repeat("a", maxKeyLen+1))
	f.Add("caf\xc3\xa9")
	f.Add("\x00\x01\x02")
	f.Fuzz(func(t *testing.T, in string) {
		tok, ok := ParseKeyHeader(in)
		if !ok {
			if tok != "" {
				t.Fatalf("rejected input returned token %q", tok)
			}
			return
		}
		if len(tok) == 0 || len(tok) > maxKeyLen {
			t.Fatalf("accepted token length %d out of bounds", len(tok))
		}
		for i := 0; i < len(tok); i++ {
			if tok[i] < '!' || tok[i] > '~' {
				t.Fatalf("accepted token has invisible byte %#x", tok[i])
			}
		}
		again, ok2 := ParseKeyHeader(tok)
		if !ok2 || again != tok {
			t.Fatalf("token %q does not re-parse to itself (%q, %v)", tok, again, ok2)
		}
	})
}

// FuzzPolicyMatch pins that the glob matcher never panics and honours
// its invariants on adversarial patterns (star floods, mismatched
// metacharacters, non-UTF8 bytes).
func FuzzPolicyMatch(f *testing.F) {
	f.Add("*", "anything")
	f.Add("Admin*", "AdminPanel")
	f.Add("a*b*c", "axxbyyc")
	f.Add("*a*a*a*a*a*", "aaaaaaaaaaaaaaab")
	f.Add("????", "abc")
	f.Add("", "")
	f.Add("\xff*\xfe", "\xff\xfe")
	f.Fuzz(func(t *testing.T, pattern, name string) {
		got := Match(pattern, name)
		if Match("*", name) != true {
			t.Fatal("star must match everything")
		}
		if !strings.ContainsAny(pattern, "*?") {
			if got != (pattern == name) {
				t.Fatalf("literal pattern %q vs %q = %v", pattern, name, got)
			}
		}
		if got && !Match("*"+pattern+"*", name) {
			t.Fatalf("widening %q with stars stopped matching %q", pattern, name)
		}
	})
}
