package tenant

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blobdb"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func manualClock() *vtime.Manual {
	return vtime.NewManual(time.Date(2010, 9, 13, 0, 0, 0, 0, time.UTC))
}

func TestParseKeyHeader(t *testing.T) {
	long := make([]byte, maxKeyLen+1)
	for i := range long {
		long[i] = 'a'
	}
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"secret-1", "secret-1", true},
		{"  secret-1\t", "secret-1", true},
		{"Grid secret-1", "secret-1", true},
		{"grid\tsecret-1", "secret-1", true},
		{"GRID secret-1", "secret-1", true},
		{"gridlock", "gridlock", true}, // no scheme separator: literal token
		{"", "", false},
		{"   ", "", false},
		{"Grid ", "Grid", true}, // trailing space trims away: literal token
		{"two words", "", false},
		{"ctrl\x01char", "", false},
		{"café", "", false},
		{string(long), "", false},
		{string(long[:maxKeyLen]), string(long[:maxKeyLen]), true},
	}
	for _, c := range cases {
		got, ok := ParseKeyHeader(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseKeyHeader(%q) = %q,%v want %q,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestKeysetLookupAndRotation(t *testing.T) {
	var ks keyset
	ks.set("alpha", "alice")
	ks.set("beta", "bob")
	if owner, ok := ks.lookup("alpha"); !ok || owner != "alice" {
		t.Fatalf("lookup alpha = %q,%v", owner, ok)
	}
	if _, ok := ks.lookup("gamma"); ok {
		t.Fatal("unknown key resolved")
	}
	// Rotation: register the new key, then revoke the old.
	ks.set("alpha2", "alice")
	if !ks.revoke("alpha") {
		t.Fatal("revoke alpha failed")
	}
	if _, ok := ks.lookup("alpha"); ok {
		t.Fatal("revoked key still resolves")
	}
	if owner, ok := ks.lookup("alpha2"); !ok || owner != "alice" {
		t.Fatalf("rotated key = %q,%v", owner, ok)
	}
	if ks.size() != 2 {
		t.Fatalf("size = %d want 2", ks.size())
	}
}

func TestMatch(t *testing.T) {
	cases := []struct {
		pat, name string
		want      bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"Wordcount", "Wordcount", true},
		{"Wordcount", "wordcount", false},
		{"Admin*", "AdminPanel", true},
		{"Admin*", "Panel", false},
		{"*count", "Wordcount", true},
		{"W?rdcount", "Wordcount", true},
		{"W?rdcount", "Wrdcount", false},
		{"a*b*c", "axxbyyc", true},
		{"a*b*c", "axxbyy", false},
		{"*a*a*a*", "aaa", true},
		{"**", "x", true},
	}
	for _, c := range cases {
		if got := Match(c.pat, c.name); got != c.want {
			t.Errorf("Match(%q,%q) = %v want %v", c.pat, c.name, got, c.want)
		}
	}
}

func TestPolicyDenyOverrides(t *testing.T) {
	p := Policy{
		Allow: []Rule{{Verbs: []string{"invoke", "upload"}, Services: []string{"*"}}},
		Deny:  []Rule{{Services: []string{"Admin*"}}},
	}
	if !p.Allows(VerbInvoke, "Wordcount") {
		t.Fatal("allow rule should admit Wordcount invoke")
	}
	if p.Allows(VerbInvoke, "AdminPanel") {
		t.Fatal("deny must override allow")
	}
	if p.Allows(VerbDelete, "Wordcount") {
		t.Fatal("verb outside allow list admitted")
	}
	// Empty allow = everything (minus denies).
	open := Policy{Deny: []Rule{{Verbs: []string{"delete"}}}}
	if !open.Allows(VerbInvoke, "X") || open.Allows(VerbDelete, "X") {
		t.Fatal("empty-allow policy misevaluated")
	}
	// Site allow-list.
	sited := Policy{Sites: []string{"ncsa-*", "sdsc"}}
	if !sited.SiteAllowed("ncsa-abe") || sited.SiteAllowed("tacc") || !sited.SiteAllowed("sdsc") {
		t.Fatal("site allow-list misevaluated")
	}
	if !(Policy{}).SiteAllowed("anywhere") {
		t.Fatal("empty site list must allow all sites")
	}
}

func TestRateLimiter(t *testing.T) {
	clk := manualClock()
	rl := newRateLimiter(clk)
	// rate 2/s, burst 2: two immediate tokens, then dry.
	for i := 0; i < 2; i++ {
		if !rl.allow("alice", VerbInvoke, 2, 2) {
			t.Fatalf("token %d denied", i)
		}
	}
	if rl.allow("alice", VerbInvoke, 2, 2) {
		t.Fatal("bucket should be empty")
	}
	clk.Advance(500 * time.Millisecond) // refills one token
	if !rl.allow("alice", VerbInvoke, 2, 2) {
		t.Fatal("refilled token denied")
	}
	if rl.allow("alice", VerbInvoke, 2, 2) {
		t.Fatal("second token should not have refilled")
	}
	// Other owner+verb buckets are independent; rate 0 is unlimited.
	if !rl.allow("bob", VerbInvoke, 2, 2) || !rl.allow("alice", VerbUpload, 2, 2) {
		t.Fatal("buckets not independent")
	}
	for i := 0; i < 100; i++ {
		if !rl.allow("alice", VerbCancel, 0, 0) {
			t.Fatal("rate 0 must be unlimited")
		}
	}
}

// TestQuotaDRRWakeOrder pins the deficit-round-robin interleave: with
// weights 2:1 and a single slot releasing repeatedly, wakes go
// A,A,B,A,A,B — not the FIFO A,A,A,A,B,B arrival order.
func TestQuotaDRRWakeOrder(t *testing.T) {
	clk := manualClock()
	q := newQuota(clk, 1, 0, 0)
	q.configure("A", 0, 2)
	q.configure("B", 0, 1)
	q.configure("seed", 0, 1)
	if queued, _, err := q.acquire("seed"); queued || err != nil {
		t.Fatalf("seed acquire: queued=%v err=%v", queued, err)
	}

	woke := make(chan string, 8)
	// Park waiters one at a time — count them after each spawn — so
	// arrival order is deterministic.
	owners := []string{"A", "A", "A", "A", "B", "B"}
	for i, o := range owners {
		o := o
		go func() {
			if _, _, err := q.acquire(o); err != nil {
				woke <- "err:" + err.Error()
				return
			}
			woke <- o
		}()
		waitFor(t, func() bool {
			_, waiting, _ := q.gauges()
			return waiting == i+1
		})
	}

	var order []string
	release := "seed"
	for i := 0; i < len(owners); i++ {
		q.release(release)
		got := <-woke
		order = append(order, got)
		release = got // hand the slot back next round
	}
	want := []string{"A", "A", "B", "A", "A", "B"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("wake order %v, want %v", order, want)
	}
	q.release(release)
	total, waiting, _ := q.gauges()
	if total != 0 || waiting != 0 {
		t.Fatalf("leaked slots: total=%d waiting=%d", total, waiting)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

func TestQuotaQueueBoundAndOwnerCap(t *testing.T) {
	clk := manualClock()
	q := newQuota(clk, 0, 2, 0)
	q.configure("alice", 1, 1)
	if queued, _, err := q.acquire("alice"); queued || err != nil {
		t.Fatalf("first acquire: %v %v", queued, err)
	}
	// Owner cap reached: next two queue, third bounces off the bound.
	for i := 0; i < 2; i++ {
		go q.acquire("alice")
		want := i + 1
		waitFor(t, func() bool { _, w, _ := q.gauges(); return w == want })
	}
	if _, _, err := q.acquire("alice"); err != ErrSaturated {
		t.Fatalf("queue overflow err = %v, want ErrSaturated", err)
	}
}

func TestQuotaTimeout(t *testing.T) {
	clk := manualClock()
	q := newQuota(clk, 1, 0, time.Second)
	q.configure("alice", 0, 1)
	q.acquire("alice")
	done := make(chan error, 1)
	go func() {
		_, _, err := q.acquire("alice")
		done <- err
	}()
	waitFor(t, func() bool { _, w, _ := q.gauges(); return w == 1 })
	waitFor(t, func() bool { return clk.Pending() > 0 })
	clk.Advance(2 * time.Second)
	if err := <-done; err != ErrSaturated {
		t.Fatalf("timeout err = %v, want ErrSaturated", err)
	}
	// The abandoned waiter must not absorb the next release.
	q.release("alice")
	if queued, _, err := q.acquire("alice"); err != nil {
		t.Fatalf("post-timeout acquire failed: queued=%v err=%v", queued, err)
	}
}

func TestAuditRingOverflowNewestFirst(t *testing.T) {
	clk := manualClock()
	l := newAuditLog(4, clk, nil)
	for i := 0; i < 10; i++ {
		owner := "alice"
		if i%2 == 1 {
			owner = "bob"
		}
		l.append(Record{Owner: owner, Verb: "invoke", Service: fmt.Sprintf("svc%d", i)})
	}
	got := l.query("", 0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	for i, want := range []string{"svc9", "svc8", "svc7", "svc6"} {
		if got[i].Service != want {
			t.Fatalf("query[%d] = %s, want %s (newest first)", i, got[i].Service, want)
		}
	}
	if got[0].Seq != 10 || got[3].Seq != 7 {
		t.Fatalf("seqs %d..%d, want 10..7", got[0].Seq, got[3].Seq)
	}
	if l.drops() != 6 {
		t.Fatalf("drops = %d, want 6", l.drops())
	}
	if bob := l.query("bob", 1); len(bob) != 1 || bob[0].Service != "svc9" {
		t.Fatalf("owner filter broken: %+v", bob)
	}
}

func TestAuditPersistence(t *testing.T) {
	clk := manualClock()
	db, err := blobdb.Open(blobdb.Options{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	l := newAuditLog(8, clk, db)
	l.append(Record{Owner: "alice", Verb: "upload", Outcome: "ok"})
	l.append(Record{Owner: "alice", Verb: "invoke", Outcome: "denied"})
	if n := db.Table(AuditTable).Len(); n != 2 {
		t.Fatalf("persisted %d records, want 2", n)
	}
	rec, err := db.Table(AuditTable).Get(fmt.Sprintf("%016d", 2))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Meta["verb"] != "invoke" || rec.Meta["outcome"] != "denied" {
		t.Fatalf("archive meta = %v", rec.Meta)
	}
}

func newTestController(t *testing.T, cfg Config, opts Options) *Controller {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = manualClock()
	}
	c, err := NewController(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestControllerPipeline(t *testing.T) {
	clk := manualClock()
	col := trace.NewCollector(64, 0)
	tr := trace.NewTracer("tenant", clk, col)
	c := newTestController(t, Config{
		Owners: []OwnerConfig{{
			Name:   "alice",
			Policy: Policy{Deny: []Rule{{Services: []string{"Admin*"}}}},
		}},
		Keys: []KeyConfig{{Key: "alice-key", Owner: "alice"}},
	}, Options{Clock: clk, Tracer: tr})

	// Unknown and missing keys deny with one audit record each.
	if _, err := c.Authenticate("bogus", VerbInvoke); err != ErrUnauthorized {
		t.Fatalf("bogus key err = %v", err)
	}
	if _, err := c.Authenticate("", VerbUpload); err != ErrUnauthorized {
		t.Fatalf("missing key err = %v", err)
	}
	pr, err := c.Authenticate("Grid alice-key", VerbInvoke)
	if err != nil || pr.Owner != "alice" {
		t.Fatalf("auth = %+v, %v", pr, err)
	}

	// Policy denial audits immediately.
	if _, err := c.Admit(pr, VerbInvoke, "AdminPanel", trace.SpanContext{}); err != ErrForbidden {
		t.Fatalf("deny err = %v", err)
	}
	// Admission + Finish audits exactly once, with a resolvable trace.
	adm, err := c.Admit(pr, VerbInvoke, "Wordcount", trace.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	adm.Finish("ticket-1", nil)
	adm.Finish("ticket-1", nil) // second call must not duplicate
	adm.Release()
	adm.Release()

	recs := c.Audit("", 0)
	if len(recs) != 4 {
		t.Fatalf("audit has %d records, want 4: %+v", len(recs), recs)
	}
	if recs[0].Outcome != "ok" || recs[0].Ticket != "ticket-1" || recs[0].TraceID == "" {
		t.Fatalf("newest record = %+v", recs[0])
	}
	if recs[1].Code != "forbidden" || recs[1].TraceID == "" {
		t.Fatalf("deny record = %+v", recs[1])
	}
	if recs[2].Code != "unauthorized" || recs[2].Owner != UnknownOwner {
		t.Fatalf("auth-deny record = %+v", recs[2])
	}

	st := c.Stats()
	if st.Admitted != 1 || st.Denied != 3 || st.Keys != 1 || st.AuditRecords != 4 {
		t.Fatalf("stats = %+v", st)
	}
	alice := st.Owners["alice"]
	if alice.Admitted != 1 || alice.Denied != 1 {
		t.Fatalf("alice stats = %+v", alice)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight leak: %d", st.InFlight)
	}
}

func TestControllerRateLimitDeny(t *testing.T) {
	clk := manualClock()
	c := newTestController(t, Config{
		Owners: []OwnerConfig{{Name: "alice", Rates: map[string]float64{"invoke": 1}}},
		Keys:   []KeyConfig{{Key: "k", Owner: "alice"}},
	}, Options{Clock: clk})
	pr := Principal{Owner: "alice"}
	adm, err := c.Admit(pr, VerbInvoke, "S", trace.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	adm.Finish("", nil)
	adm.Release()
	if _, err := c.Admit(pr, VerbInvoke, "S", trace.SpanContext{}); err != ErrRateLimited {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	// Other verbs are unconstrained, and time refills the bucket.
	if _, err := c.Admit(pr, VerbCancel, "S", trace.SpanContext{}); err != nil {
		t.Fatalf("cancel verb limited: %v", err)
	}
	clk.Advance(time.Second)
	if _, err := c.Admit(pr, VerbInvoke, "S", trace.SpanContext{}); err != nil {
		t.Fatalf("post-refill err = %v", err)
	}
	if st := c.Stats(); st.RateLimited != 1 {
		t.Fatalf("rate-limited counter = %d", st.RateLimited)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Keys: 2, Admitted: 10, Denied: 1, InFlight: 3, QueueDepth: 1,
		Owners: map[string]OwnerStats{"alice": {Admitted: 10, InFlight: 3}}}
	b := Stats{Keys: 2, Admitted: 5, RateLimited: 2, InFlight: 7, QueueDepth: 0,
		Owners: map[string]OwnerStats{"alice": {Admitted: 5, InFlight: 7}, "bob": {Denied: 4}}}
	a.Merge(b)
	if a.Admitted != 15 || a.Denied != 1 || a.RateLimited != 2 {
		t.Fatalf("counters: %+v", a)
	}
	if a.InFlight != 7 || a.QueueDepth != 1 || a.Keys != 2 {
		t.Fatalf("gauges: %+v", a)
	}
	if al := a.Owners["alice"]; al.Admitted != 15 || al.InFlight != 7 {
		t.Fatalf("owner merge: %+v", al)
	}
	if a.Owners["bob"].Denied != 4 {
		t.Fatalf("new owner not merged")
	}
}

// TestConcurrentAdmitsRaceRelease hammers Admit/Release from many
// goroutines against a small quota; run under -race this pins the
// locking, and the final gauges prove no slot leaks.
func TestConcurrentAdmitsRaceRelease(t *testing.T) {
	c := newTestController(t, Config{
		Owners: []OwnerConfig{
			{Name: "alice", Weight: 2, MaxInFlight: 2},
			{Name: "bob", Weight: 1, MaxInFlight: 2},
		},
		Limits: LimitsConfig{MaxInFlight: 3, QueueDepth: 64},
	}, Options{Clock: vtime.Real{}})
	var wg sync.WaitGroup
	var denied atomic64
	for g := 0; g < 8; g++ {
		owner := "alice"
		if g%2 == 1 {
			owner = "bob"
		}
		wg.Add(1)
		go func(owner string) {
			defer wg.Done()
			pr := Principal{Owner: owner}
			for i := 0; i < 50; i++ {
				adm, err := c.Admit(pr, VerbInvoke, "S", trace.SpanContext{})
				if err != nil {
					denied.add(1)
					continue
				}
				adm.Finish("", nil)
				adm.Release()
			}
		}(owner)
	}
	wg.Wait()
	st := c.Stats()
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("leaked: %+v", st)
	}
	if st.Admitted+st.Denied != 400 {
		t.Fatalf("admitted %d + denied %d != 400", st.Admitted, st.Denied)
	}
	if int(st.AuditRecords) != len(c.Audit("", 0)) && st.AuditDropped == 0 {
		t.Fatalf("audit count mismatch without drops")
	}
}

type atomic64 struct {
	mu sync.Mutex
	n  uint64
}

func (a *atomic64) add(d uint64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }

// TestKeyRotationMidBurst rotates and revokes keys while readers
// authenticate concurrently; run under -race this pins the keyset
// locking, and the end state proves rotation took effect.
func TestKeyRotationMidBurst(t *testing.T) {
	c := newTestController(t, Config{
		Keys: []KeyConfig{{Key: "gen-0", Owner: "alice"}},
	}, Options{Clock: vtime.Real{}})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Some generation's key must always resolve: rotation
				// registers the new key before revoking the old.
				if pr, err := c.Authenticate(fmt.Sprintf("gen-%d", gen), VerbInvoke); err == nil {
					if pr.Owner != "alice" {
						t.Errorf("owner = %q", pr.Owner)
						return
					}
				} else if gen < 40 {
					gen++
				}
			}
		}()
	}
	for gen := 1; gen <= 40; gen++ {
		if err := c.SetKey(fmt.Sprintf("gen-%d", gen), "alice"); err != nil {
			t.Fatal(err)
		}
		c.RevokeKey(fmt.Sprintf("gen-%d", gen-1))
	}
	close(stop)
	wg.Wait()
	if _, err := c.Authenticate("gen-40", VerbInvoke); err != nil {
		t.Fatalf("final key rejected: %v", err)
	}
	if _, err := c.Authenticate("gen-39", VerbInvoke); err == nil {
		t.Fatal("revoked key still accepted")
	}
	if c.keys.size() != 1 {
		t.Fatalf("keyset size = %d, want 1", c.keys.size())
	}
}

func TestParseConfigRejectsBadDocuments(t *testing.T) {
	if _, err := ParseConfig([]byte(`{"keys":[{"key":"","owner":"a"}]}`)); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := ParseConfig([]byte(`{"keys":[{"key":"k","owner":""}]}`)); err == nil {
		t.Fatal("empty owner accepted")
	}
	if _, err := ParseConfig([]byte(`{"owners":[{"name":"a"},{"name":"a"}]}`)); err == nil {
		t.Fatal("duplicate owner accepted")
	}
	if _, err := ParseConfig([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	cfg, err := ParseConfig([]byte(`{"owners":[{"name":"alice","weight":2}],"keys":[{"key":"k","owner":"alice"}],"limits":{"max_inflight":8}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Owners[0].Weight != 2 || cfg.Limits.MaxInFlight != 8 {
		t.Fatalf("cfg = %+v", cfg)
	}
}
