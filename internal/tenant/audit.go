package tenant

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/blobdb"
	"repro/internal/vtime"
)

// AuditTable is the blobdb table audit records persist into when
// Config.Audit.Persist is set.
const AuditTable = "tenant_audit"

// Record is one audited action. Every upload/invoke/cancel/delete that
// reaches the admission pipeline produces exactly one record: denials
// are written at denial time, admitted actions when the handler
// finishes, so outcome and latency are final values, never updates.
type Record struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Owner   string    `json:"owner"`
	Verb    string    `json:"verb"`
	Service string    `json:"service,omitempty"`
	// Outcome is ok | error | denied; Code classifies non-ok outcomes
	// (unauthorized, forbidden, rate_limited, quota_exceeded, or the
	// handler's error class).
	Outcome string `json:"outcome"`
	Code    string `json:"code,omitempty"`
	Ticket  string `json:"ticket,omitempty"`
	// TraceID links the record to its tenant.admit span (and, for
	// invocations, the whole invoke trace) in /api/trace.
	TraceID string `json:"trace_id,omitempty"`
	// WaitMS is time spent queued for a quota slot; LatencyMS spans
	// admission start to handler finish (denials: admission start to
	// denial).
	WaitMS    float64 `json:"wait_ms"`
	LatencyMS float64 `json:"latency_ms"`
}

// auditLog is a bounded append-only ring. Overflow evicts the oldest
// record and counts the drop (globally and against the evicted
// record's owner), so readers can tell "quiet system" from "ring too
// small". Queries return newest-first.
type auditLog struct {
	mu      sync.Mutex
	buf     []Record
	start   int // index of oldest record
	n       int // live records
	seq     uint64
	dropped uint64
	clock   vtime.Clock
	db      *blobdb.DB // optional persistence
}

func newAuditLog(size int, clock vtime.Clock, db *blobdb.DB) *auditLog {
	if size <= 0 {
		size = 4096
	}
	return &auditLog{buf: make([]Record, size), clock: clock, db: db}
}

// append stamps and stores the record. It returns the owner of a
// record evicted by overflow ("" when nothing dropped) so the caller
// can charge the drop to the right tenant's counters.
func (l *auditLog) append(r Record) (droppedOwner string, dropped bool) {
	l.mu.Lock()
	l.seq++
	r.Seq = l.seq
	r.Time = l.clock.Now()
	if l.n == len(l.buf) {
		droppedOwner = l.buf[l.start].Owner
		dropped = true
		l.dropped++
		l.start = (l.start + 1) % len(l.buf)
		l.n--
	}
	l.buf[(l.start+l.n)%len(l.buf)] = r
	l.n++
	db := l.db
	l.mu.Unlock()
	if db != nil {
		// Best-effort durability outside the lock: the in-memory ring
		// is the source of truth for /api/audit; blobdb is the archive.
		if blob, err := json.Marshal(r); err == nil {
			_ = db.Table(AuditTable).Put(fmt.Sprintf("%016d", r.Seq), map[string]string{
				"owner": r.Owner, "verb": r.Verb, "outcome": r.Outcome,
			}, blob)
		}
	}
	return droppedOwner, dropped
}

// query returns up to n records, newest first, optionally filtered by
// owner ("" = all owners).
func (l *auditLog) query(owner string, n int) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.n {
		n = l.n
	}
	out := make([]Record, 0, n)
	for i := l.n - 1; i >= 0 && len(out) < n; i-- {
		r := l.buf[(l.start+i)%len(l.buf)]
		if owner != "" && r.Owner != owner {
			continue
		}
		out = append(out, r)
	}
	return out
}

// drops reports how many records overflow has evicted.
func (l *auditLog) drops() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}
