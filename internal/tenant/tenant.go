// Package tenant is the multi-tenant control plane: per-owner API
// keys, a policy evaluator, token-bucket rate limits, fair-share
// concurrency quotas, and an append-only audit log.
//
// The admission pipeline runs in a fixed order — key, policy, rate
// limit, quota, audit — chosen so each stage only spends what the
// previous one justified: authentication is a header lookup and needs
// no body; policy is a pure function and must run before any tokens
// are consumed (a forbidden caller should not drain its own budget);
// the rate limiter is an immediate-deny damper that protects the
// quota's queue from being flooded; the quota is the only stage that
// blocks, and it wakes waiters in deficit-round-robin order so a
// saturating tenant cannot starve the others; audit records the final
// outcome exactly once, whichever stage decided it.
//
// The whole subsystem is an opt-in knob (core.Config.Tenancy,
// cmd/onserve -tenancy -keys-file). With it off the portal's wire
// behaviour is byte-identical to an appliance built without it.
package tenant

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blobdb"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Verb names an auditable action class.
type Verb string

const (
	VerbUpload Verb = "upload"
	VerbInvoke Verb = "invoke"
	VerbCancel Verb = "cancel"
	VerbDelete Verb = "delete"
)

// UnknownOwner labels audit records and counters for requests whose
// key did not resolve.
const UnknownOwner = "unknown"

// Admission failures, ordered by pipeline stage.
var (
	ErrUnauthorized = errors.New("tenant: missing or unknown API key")
	ErrForbidden    = errors.New("tenant: policy forbids this action")
	ErrRateLimited  = errors.New("tenant: rate limit exceeded")
	ErrSaturated    = errors.New("tenant: concurrency quota exhausted")
)

// OwnerConfig is one tenant's declarative record.
type OwnerConfig struct {
	Name string `json:"name"`
	// Weight is the DRR quantum for quota wakeups (default 1).
	Weight int `json:"weight,omitempty"`
	// MaxInFlight caps this owner's concurrent invocations; 0 falls
	// back to Limits.OwnerMaxInFlight (0 there = unlimited).
	MaxInFlight int `json:"max_inflight,omitempty"`
	// Rates maps verb -> tokens/second (0/absent = unlimited);
	// Bursts maps verb -> bucket depth (default max(1, rate)).
	Rates  map[string]float64 `json:"rates,omitempty"`
	Bursts map[string]float64 `json:"bursts,omitempty"`
	Policy Policy             `json:"policy,omitempty"`
}

// KeyConfig binds an API key to an owner. Keys are opaque bearer
// tokens (1..128 visible-ASCII bytes).
type KeyConfig struct {
	Key   string `json:"key"`
	Owner string `json:"owner"`
}

// LimitsConfig holds appliance-wide admission bounds.
type LimitsConfig struct {
	// MaxInFlight caps concurrent invocations across all owners
	// (0 = unlimited).
	MaxInFlight int `json:"max_inflight,omitempty"`
	// OwnerMaxInFlight is the default per-owner cap (0 = unlimited).
	OwnerMaxInFlight int `json:"owner_max_inflight,omitempty"`
	// QueueDepth bounds each owner's quota wait queue (default 64).
	QueueDepth int `json:"queue_depth,omitempty"`
	// QueueTimeoutMS bounds a queued admit's wait (default 30000).
	QueueTimeoutMS int `json:"queue_timeout_ms,omitempty"`
}

// AuditConfig sizes the audit ring and its optional archive.
type AuditConfig struct {
	// Ring is the in-memory record capacity (default 4096).
	Ring int `json:"ring,omitempty"`
	// Persist archives every record into blobdb when the controller
	// was given a DB.
	Persist bool `json:"persist,omitempty"`
}

// Config is the declarative control-plane document, the JSON shape
// cmd/onserve -keys-file loads.
type Config struct {
	Owners []OwnerConfig `json:"owners,omitempty"`
	Keys   []KeyConfig   `json:"keys,omitempty"`
	Limits LimitsConfig  `json:"limits,omitempty"`
	Audit  AuditConfig   `json:"audit,omitempty"`
}

// ParseConfig decodes and validates a Config document.
func ParseConfig(blob []byte) (Config, error) {
	var cfg Config
	if err := json.Unmarshal(blob, &cfg); err != nil {
		return Config{}, fmt.Errorf("tenant: bad config: %w", err)
	}
	seen := make(map[string]bool, len(cfg.Owners))
	for _, o := range cfg.Owners {
		if o.Name == "" {
			return Config{}, errors.New("tenant: owner with empty name")
		}
		if seen[o.Name] {
			return Config{}, fmt.Errorf("tenant: duplicate owner %q", o.Name)
		}
		seen[o.Name] = true
	}
	for _, k := range cfg.Keys {
		if _, ok := ParseKeyHeader(k.Key); !ok {
			return Config{}, fmt.Errorf("tenant: invalid key for owner %q (need 1..%d visible-ASCII bytes)", k.Owner, maxKeyLen)
		}
		if k.Owner == "" {
			return Config{}, errors.New("tenant: key with empty owner")
		}
	}
	return cfg, nil
}

// LoadConfig reads a keys file from disk.
func LoadConfig(path string) (Config, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	return ParseConfig(blob)
}

// Options carries the controller's runtime dependencies.
type Options struct {
	// Clock drives rate refill, queue timeouts, and audit timestamps
	// (default vtime.Real).
	Clock vtime.Clock
	// Tracer, when set, emits a tenant.admit span per admission with
	// wait-time attributes.
	Tracer *trace.Tracer
	// DB, when set together with Config.Audit.Persist, archives audit
	// records into the tenant_audit table.
	DB *blobdb.DB
}

// ownerState is an owner's live record: config plus counters.
type ownerState struct {
	cfg          OwnerConfig
	admitted     atomic.Uint64
	denied       atomic.Uint64
	rateLimited  atomic.Uint64
	queued       atomic.Uint64
	auditDropped atomic.Uint64
}

// Controller is the live control plane. One instance guards one
// appliance; a fleet runs one per shard (the gateway forwards the
// key header, per-shard enforcement stays authoritative).
type Controller struct {
	clock  vtime.Clock
	tracer *trace.Tracer
	keys   keyset
	rate   *rateLimiter
	quota  *quota
	audit  *auditLog
	limits LimitsConfig

	mu      sync.RWMutex
	owners  map[string]*ownerState
	records atomic.Uint64 // audit records appended
}

// NewController builds a controller from a validated Config.
func NewController(cfg Config, opts Options) (*Controller, error) {
	clock := opts.Clock
	if clock == nil {
		clock = vtime.Real{}
	}
	if cfg.Limits.QueueDepth == 0 {
		cfg.Limits.QueueDepth = 64
	}
	if cfg.Limits.QueueTimeoutMS == 0 {
		cfg.Limits.QueueTimeoutMS = 30_000
	}
	var db *blobdb.DB
	if cfg.Audit.Persist {
		db = opts.DB
	}
	c := &Controller{
		clock:  clock,
		tracer: opts.Tracer,
		rate:   newRateLimiter(clock),
		quota: newQuota(clock, cfg.Limits.MaxInFlight, cfg.Limits.QueueDepth,
			time.Duration(cfg.Limits.QueueTimeoutMS)*time.Millisecond),
		audit:  newAuditLog(cfg.Audit.Ring, clock, db),
		limits: cfg.Limits,
		owners: make(map[string]*ownerState),
	}
	for _, o := range cfg.Owners {
		if o.Name == "" {
			return nil, errors.New("tenant: owner with empty name")
		}
		c.SetOwner(o)
	}
	for _, k := range cfg.Keys {
		if err := c.SetKey(k.Key, k.Owner); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// SetOwner registers or replaces an owner's config.
func (c *Controller) SetOwner(cfg OwnerConfig) {
	if cfg.Weight < 1 {
		cfg.Weight = 1
	}
	max := cfg.MaxInFlight
	if max == 0 {
		max = c.limits.OwnerMaxInFlight
	}
	c.mu.Lock()
	st := c.owners[cfg.Name]
	if st == nil {
		st = &ownerState{}
		c.owners[cfg.Name] = st
	}
	st.cfg = cfg
	c.mu.Unlock()
	c.quota.configure(cfg.Name, max, cfg.Weight)
}

// SetKey registers (or rotates) an API key for owner, creating a
// default owner record if none exists. Safe mid-burst: in-flight
// requests authenticated under the old key keep their admission.
func (c *Controller) SetKey(key, owner string) error {
	tok, ok := ParseKeyHeader(key)
	if !ok {
		return fmt.Errorf("tenant: invalid key for owner %q", owner)
	}
	if owner == "" {
		return errors.New("tenant: key with empty owner")
	}
	c.mu.RLock()
	_, known := c.owners[owner]
	c.mu.RUnlock()
	if !known {
		c.SetOwner(OwnerConfig{Name: owner})
	}
	c.keys.set(tok, owner)
	return nil
}

// RevokeKey removes a key; it reports whether the key existed.
func (c *Controller) RevokeKey(key string) bool {
	tok, ok := ParseKeyHeader(key)
	if !ok {
		return false
	}
	return c.keys.revoke(tok)
}

// Principal is an authenticated caller.
type Principal struct {
	Owner string
}

// Authenticate resolves the X-Grid-Key header value to a principal.
// It reads nothing but the header — the portal calls it before any
// body bytes are consumed — and audits the denial when the key is
// missing or unknown.
func (c *Controller) Authenticate(header string, verb Verb) (Principal, error) {
	if tok, ok := ParseKeyHeader(header); ok {
		if owner, ok := c.keys.lookup(tok); ok {
			return Principal{Owner: owner}, nil
		}
	}
	// The denial gets its own root span — there is no request trace yet
	// this early in the pipeline — so even unauthenticated attempts leave
	// a resolvable trace ID in the audit log.
	sp := c.tracer.StartSpan("tenant.admit", trace.SpanContext{})
	sp.Set("tenant.owner", UnknownOwner)
	sp.Set("tenant.verb", string(verb))
	sp.Set("tenant.outcome", "denied")
	sp.Error(ErrUnauthorized.Error())
	sp.End()
	c.deny(UnknownOwner, verb, "", "unauthorized", traceID(sp.Context()), 0, 0)
	return Principal{}, ErrUnauthorized
}

// state returns owner's live record, creating a default one so keys
// registered without an owners entry still get counters and quota.
func (c *Controller) state(owner string) *ownerState {
	c.mu.RLock()
	st := c.owners[owner]
	c.mu.RUnlock()
	if st != nil {
		return st
	}
	c.SetOwner(OwnerConfig{Name: owner})
	c.mu.RLock()
	st = c.owners[owner]
	c.mu.RUnlock()
	return st
}

// SiteAllowed reports whether owner's policy permits staging or
// running on site. Unknown owners (services published before tenancy
// was configured) are unconstrained.
func (c *Controller) SiteAllowed(owner, site string) bool {
	c.mu.RLock()
	st := c.owners[owner]
	c.mu.RUnlock()
	if st == nil {
		return true
	}
	return st.cfg.Policy.SiteAllowed(site)
}

// Allows answers the pure policy question without admitting anything
// (used by the SOAP container guard, which has its own accounting).
func (c *Controller) Allows(owner string, verb Verb, service string) bool {
	c.mu.RLock()
	st := c.owners[owner]
	c.mu.RUnlock()
	if st == nil {
		return true
	}
	return st.cfg.Policy.Allows(verb, service)
}

// Admission is one admitted action. The caller must call Finish
// exactly once (writing the audit record) and, for invocations,
// Release when the invocation reaches a terminal state (returning the
// quota slot). All methods are nil-safe so call sites need no
// tenancy-enabled branches.
type Admission struct {
	ctl     *Controller
	owner   string
	verb    Verb
	service string
	sctx    trace.SpanContext
	start   time.Time
	wait    time.Duration
	queued  bool
	slot    bool

	mu       sync.Mutex
	finished bool
	released bool
}

// Admit runs policy, rate limit, and (for invocations) the fair-share
// quota for an authenticated principal. Denials are audited
// immediately; the returned Admission audits on Finish. The
// tenant.admit span covers exactly the admission (its duration is the
// quota wait), and the span's context is the parent handed to the
// invocation so audit trace IDs resolve to full waterfalls.
func (c *Controller) Admit(pr Principal, verb Verb, service string, parent trace.SpanContext) (*Admission, error) {
	st := c.state(pr.Owner)
	start := c.clock.Now()
	sp := c.tracer.StartSpan("tenant.admit", parent)
	sp.Set("tenant.owner", pr.Owner)
	sp.Set("tenant.verb", string(verb))
	if service != "" {
		sp.Set("tenant.service", service)
	}
	deny := func(code string, err error, wait time.Duration) (*Admission, error) {
		sp.Set("tenant.outcome", "denied")
		sp.Error(err.Error())
		sp.End()
		c.deny(pr.Owner, verb, service, code, traceID(sp.Context()), wait, c.clock.Now().Sub(start))
		return nil, err
	}

	if !st.cfg.Policy.Allows(verb, service) {
		st.denied.Add(1)
		return deny("forbidden", ErrForbidden, 0)
	}
	if !c.rate.allow(pr.Owner, verb, st.cfg.Rates[string(verb)], st.cfg.Bursts[string(verb)]) {
		st.rateLimited.Add(1)
		return deny("rate_limited", ErrRateLimited, 0)
	}
	var (
		queued bool
		waited time.Duration
		slot   bool
	)
	if verb == VerbInvoke {
		var err error
		queued, waited, err = c.quota.acquire(pr.Owner)
		if err != nil {
			st.denied.Add(1)
			if queued {
				st.queued.Add(1)
			}
			return deny("quota_exceeded", ErrSaturated, waited)
		}
		slot = true
	}
	st.admitted.Add(1)
	if queued {
		st.queued.Add(1)
	}
	sp.SetInt("tenant.wait_us", waited.Microseconds())
	if queued {
		sp.Set("tenant.queued", "true")
	}
	sp.End()
	return &Admission{
		ctl:     c,
		owner:   pr.Owner,
		verb:    verb,
		service: service,
		sctx:    sp.Context(),
		start:   start,
		wait:    waited,
		queued:  queued,
		slot:    slot,
	}, nil
}

// deny writes the audit record for a rejected action and bumps the
// per-owner drop counter when the ring overflowed.
func (c *Controller) deny(owner string, verb Verb, service, code, traceID string, wait, latency time.Duration) {
	if owner == UnknownOwner {
		c.state(owner).denied.Add(1)
	}
	c.record(Record{
		Owner:     owner,
		Verb:      string(verb),
		Service:   service,
		Outcome:   "denied",
		Code:      code,
		TraceID:   traceID,
		WaitMS:    ms(wait),
		LatencyMS: ms(latency),
	})
}

// record appends to the audit log, charging overflow drops.
func (c *Controller) record(r Record) {
	c.records.Add(1)
	if droppedOwner, dropped := c.audit.append(r); dropped {
		c.state(droppedOwner).auditDropped.Add(1)
	}
}

// Owner reports who was admitted ("" on a nil admission).
func (a *Admission) Owner() string {
	if a == nil {
		return ""
	}
	return a.owner
}

// ParentFor picks the trace parent for the admitted work: the
// tenant.admit span when one was recorded, otherwise the caller's
// inbound context unchanged — so with tenancy (or tracing) off the
// wire-visible trace topology is untouched.
func (a *Admission) ParentFor(tc trace.SpanContext) trace.SpanContext {
	if a == nil || !a.sctx.Valid() {
		return tc
	}
	return a.sctx
}

// Release returns the quota slot. Idempotent and nil-safe; for
// invocations the portal defers it until the invocation is terminal.
func (a *Admission) Release() {
	if a == nil {
		return
	}
	a.mu.Lock()
	doit := a.slot && !a.released
	a.released = true
	a.mu.Unlock()
	if doit {
		a.ctl.quota.release(a.owner)
	}
}

// Finish writes the admission's audit record with the handler's
// outcome. Exactly the first call records; later calls are no-ops.
func (a *Admission) Finish(ticket string, err error) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.finished {
		a.mu.Unlock()
		return
	}
	a.finished = true
	a.mu.Unlock()
	outcome, code := "ok", ""
	if err != nil {
		outcome, code = "error", "internal"
	}
	a.ctl.record(Record{
		Owner:     a.owner,
		Verb:      string(a.verb),
		Service:   a.service,
		Outcome:   outcome,
		Code:      code,
		Ticket:    ticket,
		TraceID:   traceID(a.sctx),
		WaitMS:    ms(a.wait),
		LatencyMS: ms(a.ctl.clock.Now().Sub(a.start)),
	})
}

// Audit returns up to n audit records, newest first, optionally
// filtered by owner ("" = all).
func (c *Controller) Audit(owner string, n int) []Record {
	return c.audit.query(owner, n)
}

// AuditDropped reports how many records the ring has evicted.
func (c *Controller) AuditDropped() uint64 { return c.audit.drops() }

// Stats snapshots the control plane's counters and gauges.
func (c *Controller) Stats() Stats {
	total, waiting, perOwner := c.quota.gauges()
	s := Stats{
		Keys:         c.keys.size(),
		AuditDropped: c.audit.drops(),
		AuditRecords: c.records.Load(),
		InFlight:     total,
		QueueDepth:   waiting,
		Owners:       make(map[string]OwnerStats),
	}
	c.mu.RLock()
	for name, st := range c.owners {
		o := OwnerStats{
			Admitted:     st.admitted.Load(),
			Denied:       st.denied.Load(),
			RateLimited:  st.rateLimited.Load(),
			Queued:       st.queued.Load(),
			AuditDropped: st.auditDropped.Load(),
		}
		if g, ok := perOwner[name]; ok {
			o.InFlight, o.QueueDepth = g[0], g[1]
		}
		s.Owners[name] = o
		s.Admitted += o.Admitted
		s.Denied += o.Denied
		s.RateLimited += o.RateLimited
		s.Queued += o.Queued
	}
	c.mu.RUnlock()
	return s
}

// ms converts a duration to float milliseconds for JSON.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// traceID renders the 32-hex trace ID ("" when tracing is off).
func traceID(sc trace.SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	return hex.EncodeToString(sc.TraceID[:])
}
