package tenant

// OwnerStats is one tenant's admission counters and gauges. Counters
// are monotonic; InFlight and QueueDepth are instantaneous gauges.
type OwnerStats struct {
	Admitted     uint64 `json:"admitted"`
	Denied       uint64 `json:"denied"`
	RateLimited  uint64 `json:"rate_limited"`
	Queued       uint64 `json:"queued"`
	AuditDropped uint64 `json:"audit_dropped"`
	InFlight     int    `json:"in_flight"`
	QueueDepth   int    `json:"queue_depth"`
}

// Stats is the control plane's observability block, surfaced under
// "tenant" in /api/stats and scatter-gathered by the fleet gateway.
type Stats struct {
	Keys         int    `json:"keys"`
	Admitted     uint64 `json:"admitted"`
	Denied       uint64 `json:"denied"`
	RateLimited  uint64 `json:"rate_limited"`
	Queued       uint64 `json:"queued"`
	AuditDropped uint64 `json:"audit_dropped"`
	// AuditRecords counts records appended over the controller's
	// lifetime (the ring may hold fewer).
	AuditRecords uint64                `json:"audit_records"`
	InFlight     int                   `json:"in_flight"`
	QueueDepth   int                   `json:"queue_depth"`
	Owners       map[string]OwnerStats `json:"owners,omitempty"`
}

// Merge folds src into s the way the fleet gateway aggregates shard
// documents: counters sum (each shard admitted its own share), gauges
// take the max (summing instantaneous depths across shards would
// overstate pressure on any one appliance; max reports the hottest
// shard). Keys takes the max too — every shard loads the same keys
// file, so summing would multiply-count the fleet's keyspace.
func (s *Stats) Merge(src Stats) {
	if src.Keys > s.Keys {
		s.Keys = src.Keys
	}
	s.Admitted += src.Admitted
	s.Denied += src.Denied
	s.RateLimited += src.RateLimited
	s.Queued += src.Queued
	s.AuditDropped += src.AuditDropped
	s.AuditRecords += src.AuditRecords
	if src.InFlight > s.InFlight {
		s.InFlight = src.InFlight
	}
	if src.QueueDepth > s.QueueDepth {
		s.QueueDepth = src.QueueDepth
	}
	if len(src.Owners) > 0 && s.Owners == nil {
		s.Owners = make(map[string]OwnerStats, len(src.Owners))
	}
	for name, o := range src.Owners {
		m := s.Owners[name]
		m.Admitted += o.Admitted
		m.Denied += o.Denied
		m.RateLimited += o.RateLimited
		m.Queued += o.Queued
		m.AuditDropped += o.AuditDropped
		if o.InFlight > m.InFlight {
			m.InFlight = o.InFlight
		}
		if o.QueueDepth > m.QueueDepth {
			m.QueueDepth = o.QueueDepth
		}
		s.Owners[name] = m
	}
}
