package tenant

import (
	"sync"
	"time"

	"repro/internal/vtime"
)

// rateLimiter holds one token bucket per owner+verb. Buckets are
// created lazily and refilled from the controller's clock, so dilated
// experiments refill at virtual speed.
type rateLimiter struct {
	mu      sync.Mutex
	clock   vtime.Clock
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(clock vtime.Clock) *rateLimiter {
	return &rateLimiter{clock: clock, buckets: make(map[string]*bucket)}
}

// allow consumes one token from owner's bucket for verb. rate is
// tokens/second; rate <= 0 means unlimited. burst <= 0 defaults to
// max(1, rate) so a fresh bucket admits an initial burst of one
// second's allowance. Denials are immediate — a rate-limited caller
// gets a 429, it never queues — which keeps the limiter a pure
// damper in front of the fair-share quota.
func (r *rateLimiter) allow(owner string, verb Verb, rate, burst float64) bool {
	if rate <= 0 {
		return true
	}
	if burst <= 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	key := owner + "|" + string(verb)
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.buckets[key]
	if b == nil {
		b = &bucket{tokens: burst, last: now}
		r.buckets[key] = b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * rate
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// quota is the fair-share concurrency gate: a per-owner and global
// cap on in-flight invocations, with a deficit-round-robin wake order
// when the appliance is saturated. Waiters park per owner; each slot
// release wakes the next waiter in DRR order — the pointer visits
// owner queues cyclically, each visit deposits the owner's weight as
// deficit, and the owner admits while deficit lasts — so a tenant
// with weight 2 drains twice as fast as one with weight 1, and a
// thousand queued invocations from one tenant cannot starve another's
// single waiter the way a FIFO queue would.
type quota struct {
	mu        sync.Mutex
	clock     vtime.Clock
	globalMax int           // 0 = unlimited
	queueMax  int           // per-owner waiter cap, 0 = unlimited
	timeout   time.Duration // max queue wait, 0 = wait forever
	total     int           // granted slots
	waiting   int           // live waiters across owners
	owners    map[string]*ownerQ
	active    []string // owners with waiters, in arrival order
	rrIdx     int      // DRR pointer into active
	fresh     bool     // next visit deposits a quantum
}

type ownerQ struct {
	name     string
	max      int // per-owner in-flight cap, 0 = unlimited
	weight   int // DRR quantum, >= 1
	inflight int
	deficit  float64
	q        []*waiter
}

type waiter struct {
	ch      chan struct{}
	granted bool
	gone    bool // abandoned by timeout; skip on dispatch
}

func newQuota(clock vtime.Clock, globalMax, queueMax int, timeout time.Duration) *quota {
	return &quota{
		clock:     clock,
		globalMax: globalMax,
		queueMax:  queueMax,
		timeout:   timeout,
		owners:    make(map[string]*ownerQ),
		fresh:     true,
	}
}

// configure registers or updates an owner's cap and weight.
func (q *quota) configure(owner string, max, weight int) {
	if weight < 1 {
		weight = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	oq := q.owners[owner]
	if oq == nil {
		oq = &ownerQ{name: owner}
		q.owners[owner] = oq
	}
	oq.max = max
	oq.weight = weight
}

// acquire takes one in-flight slot for owner, queueing when the
// owner or the appliance is at its cap. It reports whether the admit
// queued and for how long; err is ErrSaturated when the queue is full
// or the wait timed out.
func (q *quota) acquire(owner string) (queued bool, waited time.Duration, err error) {
	q.mu.Lock()
	oq := q.owners[owner]
	if oq == nil {
		oq = &ownerQ{name: owner, weight: 1}
		q.owners[owner] = oq
	}
	// Fast path: no one is queued anywhere and there is room. Any live
	// waiter — even another owner's — forces the queue so arrivals
	// cannot barge past the DRR order.
	if q.waiting == 0 && q.roomFor(oq) {
		oq.inflight++
		q.total++
		q.mu.Unlock()
		return false, 0, nil
	}
	if q.queueMax > 0 && len(oq.q) >= q.queueMax {
		q.mu.Unlock()
		return false, 0, ErrSaturated
	}
	w := &waiter{ch: make(chan struct{})}
	oq.q = append(oq.q, w)
	q.waiting++
	if !q.inActive(owner) {
		q.active = append(q.active, owner)
	}
	// Capacity may exist even with waiters present (e.g. every waiter
	// belongs to a cap-blocked owner), so dispatch before parking.
	q.dispatch()
	if w.granted {
		q.mu.Unlock()
		return true, 0, nil
	}
	q.mu.Unlock()

	start := q.clock.Now()
	var timeoutCh <-chan time.Time
	if q.timeout > 0 {
		timeoutCh = q.clock.After(q.timeout)
	}
	select {
	case <-w.ch:
		return true, q.clock.Now().Sub(start), nil
	case <-timeoutCh:
		q.mu.Lock()
		if w.granted {
			// The grant raced the timeout; the slot is ours.
			q.mu.Unlock()
			return true, q.clock.Now().Sub(start), nil
		}
		w.gone = true
		q.waiting--
		q.mu.Unlock()
		return true, q.clock.Now().Sub(start), ErrSaturated
	}
}

// release returns owner's slot and wakes the next waiter in DRR order.
func (q *quota) release(owner string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	oq := q.owners[owner]
	if oq == nil || oq.inflight == 0 {
		return
	}
	oq.inflight--
	q.total--
	q.dispatch()
}

// roomFor reports whether one more slot fits under both caps.
func (q *quota) roomFor(oq *ownerQ) bool {
	if q.globalMax > 0 && q.total >= q.globalMax {
		return false
	}
	if oq.max > 0 && oq.inflight >= oq.max {
		return false
	}
	return true
}

func (q *quota) inActive(owner string) bool {
	for _, o := range q.active {
		if o == owner {
			return true
		}
	}
	return false
}

// dispatch hands free slots to waiters in deficit-round-robin order.
// The pointer state (rrIdx, fresh, per-owner deficit) persists across
// calls because slots usually free one at a time: a visit that was cut
// short by capacity resumes at the same owner with its remaining
// deficit, which is what makes the weighted A,A,B,A,A,B interleave
// emerge from single-slot releases. Callers hold q.mu.
func (q *quota) dispatch() {
	stalls := 0
	for q.waiting > 0 {
		if q.globalMax > 0 && q.total >= q.globalMax {
			return // no capacity anywhere; resume this visit on release
		}
		if len(q.active) == 0 {
			return
		}
		if q.rrIdx >= len(q.active) {
			q.rrIdx = 0
		}
		oq := q.owners[q.active[q.rrIdx]]
		oq.prune()
		if len(oq.q) == 0 {
			q.active = append(q.active[:q.rrIdx], q.active[q.rrIdx+1:]...)
			oq.deficit = 0
			q.fresh = true
			continue
		}
		if q.fresh {
			oq.deficit += float64(oq.weight)
			// Cap accumulated credit so an owner that sat cap-blocked
			// through several visits cannot later monopolise releases.
			if max := 2 * float64(oq.weight); oq.deficit > max {
				oq.deficit = max
			}
			q.fresh = false
		}
		if oq.deficit < 1 || !q.roomFor(oq) {
			q.rrIdx++
			q.fresh = true
			stalls++
			if stalls > len(q.active)+1 {
				return // every waiting owner is blocked by its own cap
			}
			continue
		}
		w := oq.q[0]
		oq.q = oq.q[1:]
		if w.gone {
			continue
		}
		w.granted = true
		close(w.ch)
		oq.inflight++
		q.total++
		oq.deficit--
		q.waiting--
		stalls = 0
	}
}

// prune drops abandoned waiters so they neither count against the
// queue bound nor absorb grants.
func (oq *ownerQ) prune() {
	live := oq.q[:0]
	for _, w := range oq.q {
		if !w.gone {
			live = append(live, w)
		}
	}
	oq.q = live
}

// gauges snapshots (in-flight, queued) globally and per owner.
func (q *quota) gauges() (total, waiting int, perOwner map[string][2]int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	perOwner = make(map[string][2]int, len(q.owners))
	for name, oq := range q.owners {
		live := 0
		for _, w := range oq.q {
			if !w.gone {
				live++
			}
		}
		perOwner[name] = [2]int{oq.inflight, live}
	}
	return q.total, q.waiting, perOwner
}
