package tenant

// Rule matches a (verb, service) pair. An empty Verbs list matches
// every verb; an empty Services list matches every service. Service
// patterns are globs: '*' matches any run of characters (including
// none), '?' matches exactly one.
type Rule struct {
	Verbs    []string `json:"verbs,omitempty"`
	Services []string `json:"services,omitempty"`
}

// matches reports whether the rule covers verb acting on service.
func (r Rule) matches(verb Verb, service string) bool {
	if len(r.Verbs) > 0 {
		ok := false
		for _, v := range r.Verbs {
			if v == string(verb) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(r.Services) == 0 {
		return true
	}
	for _, pat := range r.Services {
		if Match(pat, service) {
			return true
		}
	}
	return false
}

// Policy is one owner's authorization surface. Evaluation is
// deny-overrides: a matching Deny rule rejects regardless of Allow;
// with no Deny match, an empty Allow list means "everything" while a
// non-empty one requires a match. Sites is an allow-list of site-name
// globs constraining where this owner's services may be placed; empty
// means any site.
type Policy struct {
	Allow []Rule   `json:"allow,omitempty"`
	Deny  []Rule   `json:"deny,omitempty"`
	Sites []string `json:"sites,omitempty"`
}

// Allows evaluates the policy for verb acting on service.
func (p Policy) Allows(verb Verb, service string) bool {
	for _, r := range p.Deny {
		if r.matches(verb, service) {
			return false
		}
	}
	if len(p.Allow) == 0 {
		return true
	}
	for _, r := range p.Allow {
		if r.matches(verb, service) {
			return true
		}
	}
	return false
}

// SiteAllowed reports whether the policy permits placement on site.
func (p Policy) SiteAllowed(site string) bool {
	if len(p.Sites) == 0 {
		return true
	}
	for _, pat := range p.Sites {
		if Match(pat, site) {
			return true
		}
	}
	return false
}

// Match is the glob matcher behind service and site patterns: '*'
// matches any run (including empty), '?' exactly one byte, everything
// else literally. The implementation is the classic two-pointer
// backtracking scan — linear in practice, never recursive, never
// panics — because it runs on every admission and is fuzzed
// (FuzzPolicyMatch) against adversarial patterns.
func Match(pattern, name string) bool {
	p, n := 0, 0
	star, mark := -1, 0
	for n < len(name) {
		switch {
		// '*' is a wildcard before it is a literal: a name that itself
		// contains '*' must still be swallowed by a pattern star.
		case p < len(pattern) && pattern[p] == '*':
			star = p
			mark = n
			p++
		case p < len(pattern) && (pattern[p] == '?' || pattern[p] == name[n]):
			p++
			n++
		case star >= 0:
			p = star + 1
			mark++
			n = mark
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}
