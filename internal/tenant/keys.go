package tenant

import (
	"crypto/sha256"
	"crypto/subtle"
	"sync"
)

// KeyHeader is the HTTP header carrying the caller's API key. The
// portal reads it from the request header block — which arrives before
// any body bytes — so authentication never requires touching the body.
const KeyHeader = "X-Grid-Key"

// maxKeyLen bounds accepted key material. Keys are opaque bearer
// tokens; 128 bytes is far beyond any reasonable entropy requirement
// and keeps the constant-time digest work bounded.
const maxKeyLen = 128

// ParseKeyHeader extracts the bearer token from an X-Grid-Key header
// value. It accepts the raw token or a "Grid <token>" scheme prefix,
// tolerates surrounding whitespace, and requires 1..128 visible-ASCII
// bytes. It is total: any input returns (token, true) or ("", false),
// never a panic — it runs before authentication on every request, so
// it is fuzzed (FuzzKeyHeader) the same way the trace and route
// parsers are.
func ParseKeyHeader(v string) (string, bool) {
	v = trimSpace(v)
	if len(v) >= 5 && equalFold(v[:4], "grid") && (v[4] == ' ' || v[4] == '\t') {
		v = trimSpace(v[5:])
	}
	if len(v) == 0 || len(v) > maxKeyLen {
		return "", false
	}
	for i := 0; i < len(v); i++ {
		if v[i] < '!' || v[i] > '~' {
			return "", false
		}
	}
	return v, true
}

// trimSpace trims ASCII space and tab without pulling in strings'
// unicode machinery for a hot pre-auth path.
func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// equalFold is ASCII-only case folding for the scheme tag.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// keyset maps API keys to owners. Keys are stored as SHA-256 digests —
// the plaintext never lives in memory past registration — and lookup
// scans every entry with a constant-time digest compare, accumulating
// the match instead of early-exiting, so response timing does not leak
// how close a guess came or where in the set a key sits.
type keyset struct {
	mu      sync.RWMutex
	entries []keyEntry
}

type keyEntry struct {
	digest [sha256.Size]byte
	owner  string
}

// lookup resolves a token to its owner.
func (k *keyset) lookup(token string) (string, bool) {
	d := sha256.Sum256([]byte(token))
	k.mu.RLock()
	defer k.mu.RUnlock()
	owner := ""
	found := false
	for i := range k.entries {
		if subtle.ConstantTimeCompare(d[:], k.entries[i].digest[:]) == 1 && !found {
			owner = k.entries[i].owner
			found = true
		}
	}
	return owner, found
}

// set registers (or re-points) a key. Rotation is set(new)+revoke(old);
// both orders are safe mid-burst because lookup holds only a read lock
// per request.
func (k *keyset) set(token, owner string) {
	d := sha256.Sum256([]byte(token))
	k.mu.Lock()
	defer k.mu.Unlock()
	for i := range k.entries {
		if k.entries[i].digest == d {
			k.entries[i].owner = owner
			return
		}
	}
	k.entries = append(k.entries, keyEntry{digest: d, owner: owner})
}

// revoke removes a key; it reports whether the key existed.
func (k *keyset) revoke(token string) bool {
	d := sha256.Sum256([]byte(token))
	k.mu.Lock()
	defer k.mu.Unlock()
	for i := range k.entries {
		if k.entries[i].digest == d {
			k.entries = append(k.entries[:i], k.entries[i+1:]...)
			return true
		}
	}
	return false
}

// size reports how many keys are registered.
func (k *keyset) size() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.entries)
}
