package gateway

import (
	"sort"
	"sync"

	"repro/internal/uddi"
)

// view is the gateway's replicated UDDI cache: every registration in the
// fleet, keyed by service name, so any gateway resolves any service's
// owner and endpoint without a cross-shard hop. It converges two ways —
// a periodic pull of every healthy appliance's registry listing, and an
// on-write push: the gateway that proxies an upload or delete upserts
// its own view synchronously and pushes the change to its peer gateways'
// /gateway/uddi endpoints.
type view struct {
	mu   sync.RWMutex
	recs map[string]uddi.Record
}

func newView() *view {
	return &view{recs: make(map[string]uddi.Record)}
}

func (v *view) upsert(rec uddi.Record) {
	if rec.Name == "" {
		return
	}
	v.mu.Lock()
	v.recs[rec.Name] = rec
	v.mu.Unlock()
}

func (v *view) remove(name string) {
	v.mu.Lock()
	delete(v.recs, name)
	v.mu.Unlock()
}

// owner resolves a service's owner — the second half of the routing key.
func (v *view) owner(name string) (string, bool) {
	v.mu.RLock()
	rec, ok := v.recs[name]
	v.mu.RUnlock()
	return rec.Owner, ok
}

func (v *view) lookup(name string) (uddi.Record, bool) {
	v.mu.RLock()
	rec, ok := v.recs[name]
	v.mu.RUnlock()
	return rec, ok
}

// list returns the whole view sorted by service name, matching the
// deterministic order the appliances' own registry listings use so
// replicated and authoritative listings compare stably.
func (v *view) list(pattern string) []uddi.Record {
	v.mu.RLock()
	out := make([]uddi.Record, 0, len(v.recs))
	for _, rec := range v.recs {
		if uddi.MatchPattern(pattern, rec.Name) {
			out = append(out, rec)
		}
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// replaceAll installs a freshly pulled union snapshot.
func (v *view) replaceAll(recs []uddi.Record) {
	next := make(map[string]uddi.Record, len(recs))
	for _, rec := range recs {
		if rec.Name != "" {
			next[rec.Name] = rec
		}
	}
	v.mu.Lock()
	v.recs = next
	v.mu.Unlock()
}

func (v *view) size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.recs)
}
