package gateway

import "sync/atomic"

// Stats is the gateway's observability block, surfaced under "gateway"
// in the front door's /api/stats document and via GatewayStats() —
// consistent with the appliance's CollectorStats/SubmitStats/
// PlacementStats counters.
type Stats struct {
	// RingMembers / VirtualNodes describe the consistent-hash ring.
	RingMembers  int `json:"ring_members"`
	VirtualNodes int `json:"virtual_nodes"`
	// Routed counts keyed dispatches; StickyHits those that landed on the
	// ring primary (stickiness = sticky_hits/routed), Failovers those
	// diverted to a successor because the primary was ejected.
	Routed     uint64 `json:"routed"`
	StickyHits uint64 `json:"sticky_hits"`
	Failovers  uint64 `json:"failovers"`
	// Retried counts second attempts on the next healthy successor after
	// a transport error.
	Retried uint64 `json:"retried"`
	// Scatters counts fan-out requests (/api/services, /api/stats,
	// unknown-ticket searches); TicketRoutes direct ticket dispatches.
	Scatters     uint64 `json:"scatters"`
	TicketRoutes uint64 `json:"ticket_routes"`
	// Redeploys counts catalog replays onto an upstream that answered
	// 404 for a service the fleet owns (failover or rejoin warm-up).
	Redeploys uint64 `json:"redeploys"`
	// Ejections / Recoveries sum the upstream circuit transitions.
	Ejections  uint64 `json:"ejections"`
	Recoveries uint64 `json:"recoveries"`
	// ViewServices / ViewPulls / ViewPushes describe the replicated UDDI
	// view: its size, periodic pull cycles, and peer pushes applied.
	ViewServices int    `json:"view_services"`
	ViewPulls    uint64 `json:"view_pulls"`
	ViewPushes   uint64 `json:"view_pushes"`
	// Upstreams is the per-appliance health and traffic breakdown.
	Upstreams []UpstreamStats `json:"upstreams"`
}

// UpstreamStats is one appliance's health state and counters as the
// gateway sees them.
type UpstreamStats struct {
	ID               string `json:"id"`
	Base             string `json:"base"`
	State            string `json:"state"` // healthy | ejected | half-open
	ConsecutiveFails int    `json:"consecutive_fails"`
	Probes           uint64 `json:"probes"`
	ProbeFails       uint64 `json:"probe_fails"`
	HalfOpenTrials   uint64 `json:"half_open_trials"`
	Proxied          uint64 `json:"proxied"`
	ProxyErrors      uint64 `json:"proxy_errors"`
	Ejections        uint64 `json:"ejections"`
	Recoveries       uint64 `json:"recoveries"`
	Redeploys        uint64 `json:"redeploys"`
}

// counters groups the gateway-wide atomics.
type counters struct {
	routed, sticky, failovers atomic.Uint64
	retried                   atomic.Uint64
	scatters, ticketRoutes    atomic.Uint64
	redeploys                 atomic.Uint64
	viewPulls, viewPushes     atomic.Uint64
}

// GatewayStats snapshots the gateway block.
func (g *Gateway) GatewayStats() Stats {
	now := g.clock.Now()
	st := Stats{
		RingMembers:  g.ring.size(),
		VirtualNodes: g.cfg.VirtualNodes,
		Routed:       g.ctr.routed.Load(),
		StickyHits:   g.ctr.sticky.Load(),
		Failovers:    g.ctr.failovers.Load(),
		Retried:      g.ctr.retried.Load(),
		Scatters:     g.ctr.scatters.Load(),
		TicketRoutes: g.ctr.ticketRoutes.Load(),
		Redeploys:    g.ctr.redeploys.Load(),
		ViewServices: g.view.size(),
		ViewPulls:    g.ctr.viewPulls.Load(),
		ViewPushes:   g.ctr.viewPushes.Load(),
	}
	for _, m := range g.members {
		m.mu.Lock()
		fails := m.fails
		base := m.base
		m.mu.Unlock()
		st.Ejections += m.ejections.Load()
		st.Recoveries += m.recoveries.Load()
		st.Upstreams = append(st.Upstreams, UpstreamStats{
			ID:               m.id,
			Base:             base,
			State:            m.stateName(now),
			ConsecutiveFails: fails,
			Probes:           m.probes.Load(),
			ProbeFails:       m.probeFails.Load(),
			HalfOpenTrials:   m.halfOpenTrials.Load(),
			Proxied:          m.proxied.Load(),
			ProxyErrors:      m.proxyErrs.Load(),
			Ejections:        m.ejections.Load(),
			Recoveries:       m.recoveries.Load(),
			Redeploys:        m.redeploys.Load(),
		})
	}
	return st
}
