package gateway

import (
	"fmt"
	"reflect"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("shard-%d", i)
	}
	return ids
}

func TestRingDeterministicAndComplete(t *testing.T) {
	a := newRing(64, ringIDs(5))
	b := newRing(64, ringIDs(5))
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("Service%d|owner%d", i, i%7)
		sa, sb := a.successors(key), b.successors(key)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("two identical rings disagree for %q: %v vs %v", key, sa, sb)
		}
		if len(sa) != 5 {
			t.Fatalf("successors(%q) = %v, want all 5 members", key, sa)
		}
		seen := make(map[string]bool)
		for _, id := range sa {
			if seen[id] {
				t.Fatalf("successors(%q) repeats %s: %v", key, id, sa)
			}
			seen[id] = true
		}
	}
}

// TestRingRemapFraction pins the consistent-hashing property the fleet
// depends on: removing one of N members remaps only the keys that
// member owned (~1/N of them), and every other key keeps its primary —
// so a crash reshuffles one shard's traffic, not the fleet's.
func TestRingRemapFraction(t *testing.T) {
	const members, keys = 16, 8192
	full := newRing(64, ringIDs(members))
	smaller := newRing(64, ringIDs(members)[:members-1]) // drop shard-15

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("Svc%d|owner%d", i, i%97)
		before := full.successors(key)[0]
		after := smaller.successors(key)[0]
		if before != after {
			if before != "shard-15" {
				t.Fatalf("key %q moved %s -> %s although its owner survived", key, before, after)
			}
			moved++
		}
	}
	frac := float64(moved) / keys
	// Expect ~1/16 = 6.25%; accept generous bounds around it.
	if frac < 0.02 || frac > 0.14 {
		t.Fatalf("removing 1 of %d members remapped %.1f%% of keys, want ~%.1f%%",
			members, 100*frac, 100.0/members)
	}
}

func TestRingBalance(t *testing.T) {
	r := newRing(64, ringIDs(8))
	counts := make(map[string]int)
	for i := 0; i < 8192; i++ {
		counts[r.successors(fmt.Sprintf("S%d|u%d", i, i))[0]]++
	}
	min, max := 1<<30, 0
	for _, id := range ringIDs(8) {
		c := counts[id]
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// 64 vnodes keeps shards within a loose factor of each other.
	if min == 0 || max > 4*min {
		t.Fatalf("unbalanced ring: min %d max %d (%v)", min, max, counts)
	}
}

func TestRingRebuildRestoresMapping(t *testing.T) {
	r := newRing(64, ringIDs(4))
	key := "MonteCarloService|alice"
	orig := r.successors(key)[0]
	r.rebuild(ringIDs(3))
	r.rebuild(ringIDs(4))
	if got := r.successors(key)[0]; got != orig {
		t.Fatalf("rebuild with original members moved %q: %s -> %s", key, orig, got)
	}
}
