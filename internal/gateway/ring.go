package gateway

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// ring is a consistent-hash ring with virtual nodes. Each member
// contributes vnodes points; a key routes to the first point clockwise
// from its hash, and the ordered walk from there yields the failover
// successors. With vnodes high enough (the default 64) adding or
// removing one member remaps roughly 1/N of the keyspace and leaves
// every other key where it was — the property that keeps an owner's
// sessions, cached stats and staged executables co-located on one shard
// while the fleet grows.
type ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	ids    []string
}

type ringPoint struct {
	hash uint64
	id   string
}

func newRing(vnodes int, ids []string) *ring {
	r := &ring{vnodes: vnodes}
	r.rebuild(ids)
	return r
}

// rebuild replaces the membership. Ejection does not rebuild the ring —
// health is a dispatch-time concern, so a recovered member gets its old
// keys back — only genuine fleet-size changes do.
func (r *ring) rebuild(ids []string) {
	pts := make([]ringPoint, 0, len(ids)*r.vnodes)
	for _, id := range ids {
		for v := 0; v < r.vnodes; v++ {
			pts = append(pts, ringPoint{hash: hash64(id + "#" + strconv.Itoa(v)), id: id})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].id < pts[j].id
	})
	r.mu.Lock()
	r.points = pts
	r.ids = append([]string(nil), ids...)
	r.mu.Unlock()
}

// successors returns every member id in ring order starting at key's
// hash: the primary first, then the failover order. The slice is freshly
// allocated and safe to retain.
func (r *ring) successors(key string) []string {
	h := hash64(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.ids))
	seen := make(map[string]bool, len(r.ids))
	for i := 0; i < len(r.points) && len(out) < len(r.ids); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

// size reports the member count.
func (r *ring) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ids)
}

// hash64 is FNV-64a with a splitmix64 finalizer. Raw FNV of the nearly
// identical vnode labels ("shard-3#17", "shard-3#18", ...) clusters on
// the ring badly enough to skew shard load several-fold; the finalizer
// decorrelates them so 64 vnodes balance within the expected few
// percent.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
