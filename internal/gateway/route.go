package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/core"
)

// Kind classifies how the gateway dispatches one portal request.
type Kind int

const (
	// KindAny has no placement affinity: any healthy appliance serves it
	// (the home page, the SOAP index, unrecognised paths).
	KindAny Kind = iota
	// KindUpload creates a service: POST /upload, keyed by the service
	// name the portal will derive from the uploaded file plus the owner.
	KindUpload
	// KindInvoke starts an invocation: POST /api/invoke, keyed by the
	// target service (owner resolved from the replicated UDDI view).
	KindInvoke
	// KindService reads one existing service: /api/service, /api/client.
	KindService
	// KindSOAP is a generated-service call: /services/<name> (POST SOAP
	// envelope or GET ?wsdl), keyed like KindService.
	KindSOAP
	// KindDelete removes a service: POST /api/delete.
	KindDelete
	// KindTicket follows an invocation ticket back to the appliance that
	// issued it: /api/status, /api/output, /api/outfile, /api/wait,
	// /api/cancel, /api/trace[/<ticket>], /trace.
	KindTicket
	// KindServices scatter-gathers /api/services across the fleet.
	KindServices
	// KindStats scatter-gathers /api/stats and prepends the gateway block.
	KindStats
	// KindAudit scatter-gathers /api/audit across the fleet and merges
	// the per-shard tenancy audit records newest-first.
	KindAudit
	// KindRegistry serves the replicated UDDI view locally.
	KindRegistry
)

func (k Kind) String() string {
	switch k {
	case KindUpload:
		return "upload"
	case KindInvoke:
		return "invoke"
	case KindService:
		return "service"
	case KindSOAP:
		return "soap"
	case KindDelete:
		return "delete"
	case KindTicket:
		return "ticket"
	case KindServices:
		return "services"
	case KindStats:
		return "stats"
	case KindAudit:
		return "audit"
	case KindRegistry:
		return "registry"
	default:
		return "any"
	}
}

// Route is one decoded dispatch decision.
type Route struct {
	Kind    Kind
	Service string // keyed kinds: the service the request addresses
	Owner   string // KindUpload only; other kinds resolve it via the view
	Ticket  string // KindTicket: may be empty (the appliance will 404)
}

// Keyed reports whether the route shards by consistent hash.
func (rt Route) Keyed() bool {
	switch rt.Kind {
	case KindUpload, KindInvoke, KindService, KindSOAP, KindDelete:
		return true
	}
	return false
}

// Key is the consistent-hash routing key: "service|owner". The owner
// half co-locates all of one owner's services (grid sessions, cached
// stats, submit batches, chunk possession) on one shard when the view
// knows it; the composition is deterministic in the route fields, so
// two gateways with converged views can never disagree on placement.
func (rt Route) Key(owner string) string {
	if owner == "" {
		owner = rt.Owner
	}
	return rt.Service + "|" + owner
}

// errBadRequest wraps decode failures the gateway answers with 400
// without consulting any upstream (parse-before-proxy).
var errBadRequest = errors.New("gateway: bad request")

// DecodeRoute classifies one request from its method, already-decoded
// URL path, raw query, content type, and (for POSTs) fully buffered
// body. It is a total function: any input yields either a Route or an
// error (never a panic), and identical inputs always yield identical
// routes — the property that makes cross-shard misroutes impossible and
// that FuzzRoutePath pins.
func DecodeRoute(method, path, rawQuery, contentType string, body []byte) (Route, error) {
	switch path {
	case "/upload":
		if method != http.MethodPost {
			return Route{Kind: KindAny}, nil // the portal answers 405
		}
		return decodeUpload(contentType, body)
	case "/api/invoke":
		if method != http.MethodPost {
			return Route{Kind: KindAny}, nil
		}
		var req struct {
			Service string `json:"service"`
		}
		if err := json.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
			return Route{}, fmt.Errorf("%w: invoke body: %v", errBadRequest, err)
		}
		return Route{Kind: KindInvoke, Service: req.Service}, nil
	case "/api/service", "/api/client":
		name, err := queryValue(rawQuery, "name")
		if err != nil {
			return Route{}, err
		}
		return Route{Kind: KindService, Service: name}, nil
	case "/api/delete":
		name, err := queryValue(rawQuery, "name")
		if err != nil {
			return Route{}, err
		}
		return Route{Kind: KindDelete, Service: name}, nil
	case "/api/status", "/api/output", "/api/outfile", "/api/wait", "/api/cancel", "/api/trace", "/trace":
		ticket, err := queryValue(rawQuery, "ticket")
		if err != nil {
			return Route{}, err
		}
		return Route{Kind: KindTicket, Ticket: ticket}, nil
	case "/api/services":
		return Route{Kind: KindServices}, nil
	case "/api/stats":
		return Route{Kind: KindStats}, nil
	case "/api/audit":
		return Route{Kind: KindAudit}, nil
	case "/registry":
		return Route{Kind: KindRegistry}, nil
	}
	if t, ok := strings.CutPrefix(path, "/api/trace/"); ok {
		return Route{Kind: KindTicket, Ticket: t}, nil
	}
	if rest, ok := strings.CutPrefix(path, "/services/"); ok && rest != "" {
		name, _, _ := strings.Cut(rest, "/")
		if name == "" {
			return Route{Kind: KindAny}, nil
		}
		return Route{Kind: KindSOAP, Service: name}, nil
	}
	return Route{Kind: KindAny}, nil
}

// decodeUpload extracts the upload's routing identity — the service name
// the portal will derive from the file name, and the owner — by walking
// the multipart body exactly as the portal's ParseMultipartForm will.
func decodeUpload(contentType string, body []byte) (Route, error) {
	mediaType, params, err := mime.ParseMediaType(contentType)
	if err != nil || !strings.HasPrefix(mediaType, "multipart/") || params["boundary"] == "" {
		return Route{}, fmt.Errorf("%w: upload content type %q", errBadRequest, contentType)
	}
	mr := multipart.NewReader(bytes.NewReader(body), params["boundary"])
	var service, owner string
	for {
		part, err := mr.NextPart()
		if err != nil {
			break // io.EOF or malformed tail: judge by what we saw
		}
		switch part.FormName() {
		case "file":
			if service == "" && part.FileName() != "" {
				name, err := core.ServiceNameFor(part.FileName())
				if err != nil {
					part.Close()
					return Route{}, fmt.Errorf("%w: %v", errBadRequest, err)
				}
				service = name
			}
		case "user":
			if b, err := io.ReadAll(io.LimitReader(part, 4096)); err == nil {
				owner = string(b)
			}
		}
		part.Close()
	}
	if service == "" {
		return Route{}, fmt.Errorf("%w: upload carries no file", errBadRequest)
	}
	return Route{Kind: KindUpload, Service: service, Owner: owner}, nil
}

// queryValue parses rawQuery and returns key's value; a query string
// that does not parse is the caller's 400.
func queryValue(rawQuery, key string) (string, error) {
	q, err := url.ParseQuery(rawQuery)
	if err != nil {
		return "", fmt.Errorf("%w: query: %v", errBadRequest, err)
	}
	return q.Get(key), nil
}
