package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/gridenv"
	"repro/internal/gridsim"
	"repro/internal/metrics"
	"repro/internal/uddi"
	"repro/internal/vtime"
)

type fleetWorld struct {
	gw    *Gateway
	env   *gridenv.Env
	clock *vtime.Scaled
}

// bootFleet boots one simulated grid plus a gateway fronting n
// appliances. The probe/pull cadences are on the scaled clock, chosen so
// the prober stays active without busy-looping at 20000x.
func bootFleet(t *testing.T, n int, mutate func(*Config)) *fleetWorld {
	t.Helper()
	clk := vtime.NewScaled(20000)
	env, err := gridenv.Start(gridenv.Options{
		Clock: clk,
		Sites: []gridsim.SiteConfig{
			{Name: "siteA", Nodes: 2, CoresPerNode: 8},
			{Name: "siteB", Nodes: 2, CoresPerNode: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	if _, err := env.AddUser("alice", "pw", 0); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Fleet: n,
		Appliance: appliance.Config{
			Endpoints:         env.Endpoints(),
			Clock:             clk,
			Cost:              metrics.DefaultCost(),
			PollInterval:      2 * time.Second,
			InvocationTimeout: time.Hour,
		},
		Clock:         clk,
		ProbeInterval: 10 * time.Minute, // ~30ms real at 20000x
		HalfOpenAfter: 20 * time.Minute,
		PullInterval:  time.Hour,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	gw, err := Boot(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Shutdown() })
	gw.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "pw"})
	return &fleetWorld{gw: gw, env: env, clock: clk}
}

func (w *fleetWorld) upload(t *testing.T, base, filename, program string) uddi.Record {
	t.Helper()
	ct, body := multipartUploadProgram(t, filename, "alice", program)
	resp, err := http.Post(base+"/upload", ct, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload %s: status %d: %s", filename, resp.StatusCode, raw)
	}
	var rec uddi.Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("upload reply %q: %v", raw, err)
	}
	return rec
}

func multipartUploadProgram(t testing.TB, filename, user, program string) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("file", filename)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(fw, program)
	mw.WriteField("user", user)
	mw.WriteField("description", "fleet test")
	mw.Close()
	return mw.FormDataContentType(), buf.Bytes()
}

// invokeWait drives one invocation end to end through base, returning
// the ticket and output. A non-200 anywhere is returned as err with the
// body, so callers can re-issue.
func invokeWait(base, service string, args map[string]string) (ticket, output string, err error) {
	payload, _ := json.Marshal(map[string]any{"service": service, "args": args})
	resp, err := http.Post(base+"/api/invoke", "application/json", bytes.NewReader(payload))
	if err != nil {
		return "", "", err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("invoke: status %d: %s", resp.StatusCode, raw)
	}
	var inv struct {
		Ticket string `json:"ticket"`
	}
	if err := json.Unmarshal(raw, &inv); err != nil || inv.Ticket == "" {
		return "", "", fmt.Errorf("invoke reply %q: %v", raw, err)
	}
	resp, err = http.Get(base + "/api/wait?ticket=" + inv.Ticket)
	if err != nil {
		return inv.Ticket, "", err
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return inv.Ticket, "", fmt.Errorf("wait: status %d: %s", resp.StatusCode, raw)
	}
	var done struct {
		State  string `json:"state"`
		Output string `json:"output"`
	}
	if err := json.Unmarshal(raw, &done); err != nil {
		return inv.Ticket, "", err
	}
	if done.State != "DONE" {
		return inv.Ticket, done.Output, fmt.Errorf("wait: state %s", done.State)
	}
	return inv.Ticket, done.Output, nil
}

func gatewayStats(t *testing.T, gw *Gateway) Stats {
	t.Helper()
	resp, err := http.Get(gw.BaseURL + "/gateway/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFleetRoutingSticksAndMerges(t *testing.T) {
	w := bootFleet(t, 3, nil)

	// Publish six services through the front door and invoke each one.
	spread := make(map[int]bool)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("job%d.gsh", i)
		rec := w.upload(t, w.gw.BaseURL, name, "echo v=${x}\n")
		want := fmt.Sprintf("Job%dService", i)
		if rec.Name != want {
			t.Fatalf("published %q, want %q", rec.Name, want)
		}
		spread[w.gw.PrimaryFor(rec.Name, "alice")] = true
		_, out, err := invokeWait(w.gw.BaseURL, rec.Name, map[string]string{"x": fmt.Sprint(i)})
		if err != nil {
			t.Fatal(err)
		}
		if out != fmt.Sprintf("v=%d\n", i) {
			t.Fatalf("output %q", out)
		}
	}
	if len(spread) < 2 {
		t.Fatalf("6 services landed on %d shard(s); ring is not spreading", len(spread))
	}

	// With every upstream healthy, all keyed routing is sticky.
	st := gatewayStats(t, w.gw)
	if st.Routed == 0 || st.StickyHits != st.Routed {
		t.Fatalf("routed %d sticky %d: expected 100%% stickiness on a healthy fleet", st.Routed, st.StickyHits)
	}
	if st.RingMembers != 3 || len(st.Upstreams) != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.TicketRoutes == 0 {
		t.Fatal("wait calls did not use learned ticket routes")
	}

	// The merged /api/services listing covers the whole fleet, sorted.
	resp, err := http.Get(w.gw.BaseURL + "/api/services")
	if err != nil {
		t.Fatal(err)
	}
	var services []core.ExecutableInfo
	json.NewDecoder(resp.Body).Decode(&services)
	resp.Body.Close()
	if len(services) != 6 {
		t.Fatalf("merged listing has %d services", len(services))
	}
	for i := 1; i < len(services); i++ {
		if services[i-1].ServiceName >= services[i].ServiceName {
			t.Fatalf("merged listing not sorted: %q then %q", services[i-1].ServiceName, services[i].ServiceName)
		}
	}

	// /api/stats carries the gateway block plus one doc per shard.
	resp, err = http.Get(w.gw.BaseURL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	var statsDoc struct {
		Gateway Stats `json:"gateway"`
		Fleet   []struct {
			ID    string          `json:"id"`
			State string          `json:"state"`
			Stats json.RawMessage `json:"stats"`
		} `json:"fleet"`
	}
	json.NewDecoder(resp.Body).Decode(&statsDoc)
	resp.Body.Close()
	if statsDoc.Gateway.RingMembers != 3 || len(statsDoc.Fleet) != 3 {
		t.Fatalf("stats doc %+v", statsDoc)
	}
	for _, sh := range statsDoc.Fleet {
		if sh.State != "healthy" || len(sh.Stats) == 0 {
			t.Fatalf("shard doc %+v", sh)
		}
	}
}

// TestFleetOfOneMatchesSingleAppliance pins the opt-in contract: a
// gateway fronting one appliance returns byte-identical portal API
// bodies to the appliance itself.
func TestFleetOfOneMatchesSingleAppliance(t *testing.T) {
	w := bootFleet(t, 1, nil)
	w.upload(t, w.gw.BaseURL, "solo.gsh", "echo s=${x}\n")

	direct := w.gw.Fleet()[0].BaseURL
	for _, path := range []string{"/api/services", "/api/service?name=SoloService", "/registry"} {
		viaGW, err := http.Get(w.gw.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		gwBody, _ := io.ReadAll(viaGW.Body)
		viaGW.Body.Close()
		viaApp, err := http.Get(direct + path)
		if err != nil {
			t.Fatal(err)
		}
		appBody, _ := io.ReadAll(viaApp.Body)
		viaApp.Body.Close()
		if path == "/registry" {
			// The gateway renders the replicated view with its own template;
			// require the same records, not the same HTML.
			if !strings.Contains(string(gwBody), "SoloService") {
				t.Fatalf("gateway registry page missing service:\n%s", gwBody)
			}
			continue
		}
		if !bytes.Equal(gwBody, appBody) {
			t.Fatalf("%s differs through the gateway:\n gw: %s\napp: %s", path, gwBody, appBody)
		}
	}
}

func TestFleetKillFailoverAndRejoin(t *testing.T) {
	w := bootFleet(t, 3, func(cfg *Config) {
		cfg.FailThreshold = 2
	})
	rec := w.upload(t, w.gw.BaseURL, "resilient.gsh", "echo r=${x}\n")
	victim := w.gw.PrimaryFor(rec.Name, "alice")
	if victim < 0 {
		t.Fatal("no primary")
	}

	// Warm invocation on the healthy primary.
	if _, out, err := invokeWait(w.gw.BaseURL, rec.Name, map[string]string{"x": "1"}); err != nil || out != "r=1\n" {
		t.Fatalf("warm invoke: %q %v", out, err)
	}

	// Kill the primary. A first attempt may die with an ambiguous EOF on a
	// pooled connection (a write the gateway must NOT retry — it could
	// double-execute), so the client re-issues; the re-issue hits a clean
	// dial error, fails over to the ring successor, which 404s until the
	// gateway replays the catalogued upload onto it.
	if err := w.gw.Kill(victim); err != nil {
		t.Fatal(err)
	}
	var out string
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if _, out, err = invokeWait(w.gw.BaseURL, rec.Name, map[string]string{"x": "2"}); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("failover invoke: %v", err)
	}
	if out != "r=2\n" {
		t.Fatalf("failover output %q", out)
	}
	st := gatewayStats(t, w.gw)
	if st.Retried == 0 {
		t.Fatalf("expected a retry on the successor: %+v", st)
	}
	if st.Redeploys == 0 {
		t.Fatalf("expected a catalog replay on the successor: %+v", st)
	}

	// The prober ejects the corpse; then the shard rejoins, the catalog is
	// replayed onto the fresh appliance, the half-open trial readmits it,
	// and its keys route home again.
	waitFor(t, 10*time.Second, func() bool {
		return gatewayStats(t, w.gw).Ejections > 0
	}, "primary never ejected")
	if err := w.gw.Rejoin(victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		st := gatewayStats(t, w.gw)
		return st.Recoveries > 0 && st.Upstreams[victim].State == "healthy"
	}, "rejoined shard never recovered")

	before := gatewayStats(t, w.gw)
	if _, out, err := invokeWait(w.gw.BaseURL, rec.Name, map[string]string{"x": "3"}); err != nil || out != "r=3\n" {
		t.Fatalf("post-rejoin invoke: %q %v", out, err)
	}
	after := gatewayStats(t, w.gw)
	if after.StickyHits <= before.StickyHits {
		t.Fatalf("post-rejoin invoke was not sticky: %+v -> %+v", before, after)
	}
}

// TestFleetConcurrentBurstSurvivesKillAndRejoin is the race-gate
// workhorse: a concurrent burst runs through the gateway while one
// appliance is killed and later rejoins. Every invocation must complete
// (clients re-issue on failure) and no invocation may execute twice —
// pinned by every successful invoke returning a distinct ticket.
func TestFleetConcurrentBurstSurvivesKillAndRejoin(t *testing.T) {
	w := bootFleet(t, 3, func(cfg *Config) {
		cfg.FailThreshold = 2
	})
	services := make([]string, 3)
	for i := range services {
		rec := w.upload(t, w.gw.BaseURL, fmt.Sprintf("burst%d.gsh", i), "echo b=${x}\n")
		services[i] = rec.Name
	}
	victim := w.gw.PrimaryFor(services[0], "alice")

	const calls = 18
	var (
		mu      sync.Mutex
		tickets = make(map[string]string) // ticket -> caller id
		wg      sync.WaitGroup
	)
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc := services[i%len(services)]
			arg := map[string]string{"x": fmt.Sprint(i)}
			var lastErr error
			for attempt := 0; attempt < 8; attempt++ {
				ticket, out, err := invokeWait(w.gw.BaseURL, svc, arg)
				if err == nil {
					if out != fmt.Sprintf("b=%d\n", i) {
						errs <- fmt.Errorf("call %d: output %q", i, out)
						return
					}
					mu.Lock()
					if prev, dup := tickets[ticket]; dup {
						mu.Unlock()
						errs <- fmt.Errorf("ticket %s issued to both %s and call %d", ticket, prev, i)
						return
					}
					tickets[ticket] = fmt.Sprintf("call %d", i)
					mu.Unlock()
					return
				}
				lastErr = err
				time.Sleep(50 * time.Millisecond)
			}
			errs <- fmt.Errorf("call %d never completed: %v", i, lastErr)
		}()
	}

	// Mid-burst: kill one shard, let the circuit open, then rejoin it.
	time.Sleep(100 * time.Millisecond)
	if err := w.gw.Kill(victim); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := w.gw.Rejoin(victim); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	mu.Lock()
	n := len(tickets)
	mu.Unlock()
	if n != calls {
		t.Fatalf("%d distinct tickets for %d completed calls", n, calls)
	}
	st := gatewayStats(t, w.gw)
	if st.Routed == 0 {
		t.Fatalf("stats %+v", st)
	}
	t.Logf("burst: routed=%d sticky=%d failovers=%d retried=%d redeploys=%d ejections=%d recoveries=%d",
		st.Routed, st.StickyHits, st.Failovers, st.Retried, st.Redeploys, st.Ejections, st.Recoveries)
}

// TestReplicatedUDDIWriteVsResolve races an upload through gateway A
// against resolves on gateway B (attached to the same fleet, linked as
// peers): B must become able to route the service without ever serving
// a torn view, and B's replicated listing must converge to A's.
func TestReplicatedUDDIWriteVsResolve(t *testing.T) {
	w := bootFleet(t, 2, nil)
	gwB, err := Boot(Config{
		Attach:        w.gw.Fleet(),
		Clock:         w.clock,
		ProbeInterval: 10 * time.Minute,
		HalfOpenAfter: 20 * time.Minute,
		PullInterval:  time.Hour,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gwB.Shutdown() })
	w.gw.SetPeers(gwB.BaseURL)
	gwB.SetPeers(w.gw.BaseURL)

	done := make(chan struct{})
	var resolveErr error
	go func() {
		defer close(done)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			// Hammer B's replicated view while A is writing it.
			resp, err := http.Get(gwB.BaseURL + "/gateway/uddi")
			if err != nil {
				resolveErr = err
				return
			}
			var recs []uddi.Record
			err = json.NewDecoder(resp.Body).Decode(&recs)
			resp.Body.Close()
			if err != nil {
				resolveErr = fmt.Errorf("torn view: %v", err)
				return
			}
			for _, rec := range recs {
				if rec.Name == "RacedService" && rec.Owner == "alice" {
					return // converged
				}
			}
		}
		resolveErr = fmt.Errorf("gateway B never saw the pushed record")
	}()

	w.upload(t, w.gw.BaseURL, "raced.gsh", "echo raced=${x}\n")
	<-done
	if resolveErr != nil {
		t.Fatal(resolveErr)
	}

	// B can now route the service sticky (same ring, converged view).
	if got, want := gwB.PrimaryFor("RacedService", ""), w.gw.PrimaryFor("RacedService", ""); got != want {
		t.Fatalf("gateways disagree on placement: %d vs %d", got, want)
	}
	if _, out, err := invokeWait(gwB.BaseURL, "RacedService", map[string]string{"x": "7"}); err != nil || out != "raced=7\n" {
		t.Fatalf("invoke via B: %q %v", out, err)
	}
	stB := gatewayStats(t, gwB)
	if stB.ViewPushes == 0 {
		t.Fatalf("B never applied a peer push: %+v", stB)
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal(msg)
}
