package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/tenant"
)

func fleetTenancyConfig() *tenant.Config {
	return &tenant.Config{
		Owners: []tenant.OwnerConfig{{Name: "acme", Weight: 1, MaxInFlight: 8}},
		Keys:   []tenant.KeyConfig{{Key: "acme-secret", Owner: "acme"}},
		Limits: tenant.LimitsConfig{MaxInFlight: 16},
	}
}

func keyedDo(t *testing.T, method, url, key, contentType string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if key != "" {
		req.Header.Set(tenant.KeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

// TestFleetTenancyForwardsKeysAndMerges proves per-shard enforcement
// through the gateway: the X-Grid-Key header rides the proxy hop, shard
// denials pass through verbatim, and /api/stats and /api/audit present
// one fleet-wide tenant view.
func TestFleetTenancyForwardsKeysAndMerges(t *testing.T) {
	w := bootFleet(t, 2, func(cfg *Config) {
		cfg.Appliance.Tenancy = fleetTenancyConfig()
	})

	// An unauthenticated upload is denied by the owning shard; the
	// gateway passes the upstream envelope through untouched.
	ct, body := multipartUploadProgram(t, "tenantfleet.gsh", "alice", "compute 1s\necho ok\n")
	resp, raw := keyedDo(t, http.MethodPost, w.gw.BaseURL+"/upload", "", ct, body)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous upload status %d, want 401: %s", resp.StatusCode, raw)
	}
	var env map[string]string
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("envelope %q: %v", raw, err)
	}
	if env["code"] != "unauthorized" {
		t.Fatalf("envelope code %q", env["code"])
	}

	// With the key the same request sails through the proxy hop.
	resp, raw = keyedDo(t, http.MethodPost, w.gw.BaseURL+"/upload", "acme-secret", ct, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed upload status %d: %s", resp.StatusCode, raw)
	}
	payload, _ := json.Marshal(map[string]any{"service": "TenantfleetService", "args": map[string]string{"x": "1"}})
	resp, raw = keyedDo(t, http.MethodPost, w.gw.BaseURL+"/api/invoke", "acme-secret", "application/json", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed invoke status %d: %s", resp.StatusCode, raw)
	}

	// Fleet stats carry one merged tenant block: counters summed over
	// the shards that enforced anything.
	resp, raw = keyedDo(t, http.MethodGet, w.gw.BaseURL+"/api/stats", "", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats struct {
		Tenant *tenant.Stats `json:"tenant"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Tenant == nil {
		t.Fatalf("fleet stats missing merged tenant block: %s", raw)
	}
	if stats.Tenant.Admitted < 2 {
		t.Fatalf("merged admitted %d, want >= 2 (upload + invoke)", stats.Tenant.Admitted)
	}
	if stats.Tenant.Denied < 1 {
		t.Fatalf("merged denied %d, want >= 1", stats.Tenant.Denied)
	}

	// The fleet audit view merges shard logs newest-first.
	resp, raw = keyedDo(t, http.MethodGet, w.gw.BaseURL+"/api/audit?n=100", "", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audit status %d: %s", resp.StatusCode, raw)
	}
	var audit struct {
		Records []tenant.Record `json:"records"`
	}
	if err := json.Unmarshal(raw, &audit); err != nil {
		t.Fatal(err)
	}
	okInvokes, denials := 0, 0
	for i, rec := range audit.Records {
		if i > 0 && rec.Time.After(audit.Records[i-1].Time) {
			t.Fatalf("audit records not newest-first at %d", i)
		}
		switch {
		case rec.Outcome == "ok" && rec.Verb == "invoke":
			okInvokes++
		case rec.Outcome == "denied":
			denials++
		}
	}
	if okInvokes != 1 || denials != 1 {
		t.Fatalf("fleet audit ok-invokes=%d denials=%d, want 1/1 (records: %+v)", okInvokes, denials, audit.Records)
	}
}

// TestFleetAuditOffMatchesStock404 pins the off behaviour at the fleet
// edge: with no shard enforcing tenancy, /api/audit answers the stock
// 404 page.
func TestFleetAuditOffMatchesStock404(t *testing.T) {
	w := bootFleet(t, 2, nil)
	resp, raw := keyedDo(t, http.MethodGet, w.gw.BaseURL+"/api/audit", "", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("audit status %d, want 404", resp.StatusCode)
	}
	if string(raw) != "404 page not found\n" {
		t.Fatalf("audit body %q, want the stock NotFound page", raw)
	}
}

// TestGatewayOwnEnvelopeCarriesCode pins the gateway-originated error
// envelope: routing failures answer with the same {"error","code"}
// contract the portal uses.
func TestGatewayOwnEnvelopeCarriesCode(t *testing.T) {
	w := bootFleet(t, 1, nil)
	resp, raw := keyedDo(t, http.MethodPost, w.gw.BaseURL+"/api/invoke", "", "application/json", []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad invoke status %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "\"code\":\"bad_request\"") {
		t.Fatalf("gateway envelope %q lacks the bad_request code", raw)
	}
}
