package gateway

import (
	"bytes"
	"errors"
	"mime/multipart"
	"net/http"
	"strings"
	"testing"
)

func multipartUpload(t testing.TB, filename, user string) (string, []byte) {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("file", filename)
	if err != nil {
		t.Fatal(err)
	}
	fw.Write([]byte("echo hi\n"))
	mw.WriteField("user", user)
	mw.WriteField("description", "test")
	mw.Close()
	return mw.FormDataContentType(), buf.Bytes()
}

func TestDecodeRouteTable(t *testing.T) {
	uploadCT, uploadBody := multipartUpload(t, "monte.gsh", "alice")
	cases := []struct {
		name                       string
		method, path, rawQuery, ct string
		body                       []byte
		want                       Route
		wantErr                    bool
	}{
		{"upload", "POST", "/upload", "", uploadCT, uploadBody,
			Route{Kind: KindUpload, Service: "MonteService", Owner: "alice"}, false},
		{"upload GET passes through", "GET", "/upload", "", "", nil, Route{Kind: KindAny}, false},
		{"upload bad content type", "POST", "/upload", "", "text/plain", nil, Route{}, true},
		{"upload bad filename", "POST", "/upload", "", func() string {
			ct, _ := multipartUpload(t, "../../etc/passwd", "alice")
			return ct
		}(), func() []byte {
			_, b := multipartUpload(t, "../../etc/passwd", "alice")
			return b
		}(), Route{}, true},
		{"invoke", "POST", "/api/invoke", "", "application/json",
			[]byte(`{"service":"MonteService","args":{"x":"1"}}`),
			Route{Kind: KindInvoke, Service: "MonteService"}, false},
		{"invoke garbage body", "POST", "/api/invoke", "", "application/json",
			[]byte(`{{{`), Route{}, true},
		{"service read", "GET", "/api/service", "name=MonteService", "", nil,
			Route{Kind: KindService, Service: "MonteService"}, false},
		{"client", "GET", "/api/client", "name=X", "", nil,
			Route{Kind: KindService, Service: "X"}, false},
		{"delete", "POST", "/api/delete", "name=X", "", nil,
			Route{Kind: KindDelete, Service: "X"}, false},
		{"status", "GET", "/api/status", "ticket=t-1", "", nil,
			Route{Kind: KindTicket, Ticket: "t-1"}, false},
		{"wait", "GET", "/api/wait", "ticket=t-2", "", nil,
			Route{Kind: KindTicket, Ticket: "t-2"}, false},
		{"trace page", "GET", "/trace", "ticket=t-3", "", nil,
			Route{Kind: KindTicket, Ticket: "t-3"}, false},
		{"trace path", "GET", "/api/trace/t-4", "", "", nil,
			Route{Kind: KindTicket, Ticket: "t-4"}, false},
		{"bad query", "GET", "/api/status", "a=%zz", "", nil, Route{}, true},
		{"soap", "POST", "/services/MonteService", "", "text/xml", []byte("<x/>"),
			Route{Kind: KindSOAP, Service: "MonteService"}, false},
		{"soap wsdl", "GET", "/services/MonteService", "wsdl", "", nil,
			Route{Kind: KindSOAP, Service: "MonteService"}, false},
		{"services", "GET", "/api/services", "", "", nil, Route{Kind: KindServices}, false},
		{"stats", "GET", "/api/stats", "", "", nil, Route{Kind: KindStats}, false},
		{"registry", "GET", "/registry", "", "", nil, Route{Kind: KindRegistry}, false},
		{"home", "GET", "/", "", "", nil, Route{Kind: KindAny}, false},
		{"unknown", "GET", "/nope", "", "", nil, Route{Kind: KindAny}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeRoute(tc.method, tc.path, tc.rawQuery, tc.ct, tc.body)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("DecodeRoute = %+v, want error", got)
				}
				if !errors.Is(err, errBadRequest) {
					t.Fatalf("error %v does not wrap errBadRequest", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("DecodeRoute = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestRouteKeyDeterministic(t *testing.T) {
	rt := Route{Kind: KindInvoke, Service: "S"}
	if rt.Key("alice") != "S|alice" {
		t.Fatalf("key %q", rt.Key("alice"))
	}
	up := Route{Kind: KindUpload, Service: "S", Owner: "bob"}
	if up.Key("") != "S|bob" {
		t.Fatalf("upload key %q", up.Key(""))
	}
	// An invoke whose owner resolves must land on the upload's shard.
	if rt.Key("bob") != up.Key("") {
		t.Fatal("upload and invoke disagree on the routing key")
	}
}

// FuzzRoutePath pins the gateway's parse-before-proxy contract: DecodeRoute
// never panics, is deterministic (same request bytes can never route to two
// different shards), rejects garbage with errBadRequest (the gateway's 400),
// and every keyed route has a stable non-empty key component layout.
func FuzzRoutePath(f *testing.F) {
	uploadCT, uploadBody := multipartUpload(f, "demo.gsh", "alice")
	f.Add("POST", "/upload", "", uploadCT, uploadBody)
	f.Add("POST", "/api/invoke", "", "application/json", []byte(`{"service":"S"}`))
	f.Add("GET", "/api/status", "ticket=t-9", "", []byte(nil))
	f.Add("GET", "/api/trace/abc", "", "", []byte(nil))
	f.Add("POST", "/services/DemoService", "", "text/xml", []byte("<e/>"))
	f.Add("GET", "/api/status", "a=%zz", "", []byte(nil))
	f.Add("POST", "/upload", "", "multipart/form-data; boundary=x", []byte("--x--"))
	f.Add("GET", "/\x00\xff", "=&=%", "garbage", []byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, method, path, rawQuery, contentType string, body []byte) {
		rt1, err1 := DecodeRoute(method, path, rawQuery, contentType, body)
		rt2, err2 := DecodeRoute(method, path, rawQuery, contentType, body)
		if (err1 == nil) != (err2 == nil) || rt1 != rt2 {
			t.Fatalf("non-deterministic: %+v/%v vs %+v/%v", rt1, err1, rt2, err2)
		}
		if err1 != nil {
			// Every decode failure is the gateway's own 400.
			if !errors.Is(err1, errBadRequest) {
				t.Fatalf("error %v does not wrap errBadRequest", err1)
			}
			return
		}
		switch rt1.Kind {
		case KindAny, KindUpload, KindInvoke, KindService, KindSOAP,
			KindDelete, KindTicket, KindServices, KindStats, KindRegistry:
		default:
			t.Fatalf("invalid kind %d", rt1.Kind)
		}
		if rt1.Keyed() {
			key := rt1.Key("ownerX")
			if key != rt1.Key("ownerX") {
				t.Fatal("unstable key")
			}
			if !strings.Contains(key, "|") {
				t.Fatalf("key %q lacks separator", key)
			}
			// A successful upload decode always carries a portal-legal
			// service name.
			if rt1.Kind == KindUpload && rt1.Service == "" {
				t.Fatal("upload route with empty service")
			}
		}
		if method == http.MethodPost && path == "/upload" && rt1.Kind != KindUpload && rt1.Kind != KindAny {
			t.Fatalf("POST /upload decoded as %v", rt1.Kind)
		}
	})
}
