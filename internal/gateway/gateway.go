// Package gateway is the fleet front door: a stdlib-only reverse proxy
// that boots N onServe appliances (reusing appliance.BuildImage/Boot)
// and shards every portal API call across them by consistent hashing on
// "service|owner". One shard therefore owns everything downstream for
// its keys — grid sessions, cached stats, submit-hub batches, staged
// chunks — while read-style fan-out endpoints (/api/services,
// /api/stats, unknown-ticket lookups) scatter-gather and merge.
//
// Each upstream is health-checked actively (a periodic /api/stats probe
// with consecutive-failure ejection and half-open recovery) and
// passively (proxy transport errors feed the same circuit), idempotent
// reads retry once on the next healthy ring successor, and a replicated
// UDDI view (periodic pull plus on-write push to peer gateways) lets
// any gateway resolve any service without a cross-shard hop. The
// gateway keeps a catalog of every upload it proxied, so when a shard
// dies mid-burst its keys remap to the ring successor and the first 404
// there triggers a transparent catalog replay — invocations complete
// via failover instead of erroring until an operator re-publishes.
//
// Everything here is opt-in: with no gateway in front (the default), a
// single appliance's wire behaviour is untouched.
package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/portal"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/uddi"
	"repro/internal/vtime"
)

// Config describes a fleet gateway. The zero value of every tuning field
// selects a sensible default; only Fleet (or Attach) plus the appliance
// template are required.
type Config struct {
	// Fleet is how many appliances to boot from the Appliance template.
	Fleet int
	// Appliance is the per-shard image template. A non-empty DBDir gets a
	// "shard-<i>" subdirectory per member so fleets can persist.
	Appliance appliance.Config
	// PerShard, when non-nil, customises shard i's config (per-shard
	// probes, shaped grid dialers, trace collectors).
	PerShard func(i int, cfg appliance.Config) appliance.Config
	// Attach routes across an existing fleet instead of booting one —
	// how a second gateway shares the appliances of the first. Attached
	// appliances are not shut down, killed, or rejoined by this gateway.
	Attach []*appliance.Appliance
	// VirtualNodes per member on the hash ring (default 64).
	VirtualNodes int
	// FailThreshold consecutive failures eject an upstream (default 3).
	FailThreshold int
	// ProbeInterval is the active health-check cadence on Clock
	// (default 2s); ProbeTimeout is the probe's real-time deadline
	// (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// HalfOpenAfter is the ejection cooldown before a single half-open
	// trial probe is admitted (default 10s on Clock).
	HalfOpenAfter time.Duration
	// PullInterval is the replicated-UDDI refresh cadence (default 15s).
	PullInterval time.Duration
	// Clock paces probes and the view puller; nil means real time.
	Clock vtime.Clock
	// HTTP carries gateway→appliance traffic; nil uses a fresh client.
	HTTP *http.Client
	// Trace, when non-nil, records one gateway span per proxied request
	// and forwards its context in X-Grid-Trace, so appliance-side
	// waterfalls hang under the gateway hop. Share the collector with the
	// appliances' to get single gateway→appliance trees.
	Trace *trace.Collector
}

func (cfg *Config) fill() {
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = 64
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.HalfOpenAfter <= 0 {
		cfg.HalfOpenAfter = 10 * time.Second
	}
	if cfg.PullInterval <= 0 {
		cfg.PullInterval = 15 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = vtime.Real{}
	}
}

// maxBody bounds one buffered request body: the portal's upload cap
// plus envelope slack.
const maxBody = portal.MaxUploadBytes + (1 << 20)

// catalogEntry is one proxied upload, kept verbatim so the gateway can
// replay it onto a ring successor (failover) or a rejoined shard.
type catalogEntry struct {
	service     string
	owner       string
	contentType string
	body        []byte
}

// Gateway is a booted fleet front door.
type Gateway struct {
	cfg     Config
	clock   vtime.Clock
	httpc   *http.Client
	tracer  *trace.Tracer
	ring    *ring
	members []*member
	byID    map[string]*member
	view    *view
	ctr     counters

	mu      sync.Mutex
	catalog map[string]*catalogEntry
	users   map[string]core.UserAuth
	peers   []string

	tickets sync.Map // ticket -> *member

	rr      uint64 // round-robin cursor for KindAny (under atomic)
	rrMu    sync.Mutex
	BaseURL string
	srv     *http.Server
	ln      net.Listener
	stop    chan struct{}
	bg      sync.WaitGroup
}

// Boot builds and boots the fleet (or attaches to cfg.Attach), starts
// the health probers and the UDDI view puller, and serves the front
// door on ln (nil: an ephemeral loopback port).
func Boot(cfg Config, ln net.Listener) (*Gateway, error) {
	cfg.fill()
	if cfg.Fleet <= 0 && len(cfg.Attach) == 0 {
		return nil, errors.New("gateway: Fleet must be >= 1 (or Attach non-empty)")
	}
	httpc := cfg.HTTP
	if httpc == nil {
		httpc = &http.Client{}
	}
	g := &Gateway{
		cfg:     cfg,
		clock:   cfg.Clock,
		httpc:   httpc,
		view:    newView(),
		catalog: make(map[string]*catalogEntry),
		users:   make(map[string]core.UserAuth),
		stop:    make(chan struct{}),
	}
	if cfg.Trace != nil {
		g.tracer = trace.NewTracer("gateway", cfg.Clock, cfg.Trace)
	}

	if len(cfg.Attach) > 0 {
		for i, app := range cfg.Attach {
			g.members = append(g.members, &member{
				id: fmt.Sprintf("shard-%d", i), idx: i, gw: g,
				app: app, base: app.BaseURL, attached: true,
			})
		}
	} else {
		for i := 0; i < cfg.Fleet; i++ {
			app, err := g.bootShard(i)
			if err != nil {
				for _, m := range g.members {
					m.app.Shutdown()
				}
				return nil, err
			}
			g.members = append(g.members, &member{
				id: fmt.Sprintf("shard-%d", i), idx: i, gw: g,
				app: app, base: app.BaseURL,
			})
		}
	}
	ids := make([]string, len(g.members))
	g.byID = make(map[string]*member, len(g.members))
	for i, m := range g.members {
		ids[i] = m.id
		g.byID[m.id] = m
	}
	g.ring = newRing(cfg.VirtualNodes, ids)

	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			g.shutdownFleet()
			return nil, fmt.Errorf("gateway: listen: %w", err)
		}
	}
	g.ln = ln
	g.BaseURL = "http://" + ln.Addr().String()
	g.srv = &http.Server{Handler: g}
	go g.srv.Serve(ln)

	// Seed the view before traffic arrives, then keep it fresh.
	g.refreshView()
	for _, m := range g.members {
		m := m
		g.bg.Add(1)
		go func() {
			defer g.bg.Done()
			g.probeLoop(m)
		}()
	}
	g.bg.Add(1)
	go func() {
		defer g.bg.Done()
		g.pullLoop()
	}()
	return g, nil
}

// bootShard builds and boots shard i from the template.
func (g *Gateway) bootShard(i int) (*appliance.Appliance, error) {
	cfg := g.cfg.Appliance
	if cfg.DBDir != "" {
		cfg.DBDir = filepath.Join(cfg.DBDir, fmt.Sprintf("shard-%d", i))
	}
	if g.cfg.PerShard != nil {
		cfg = g.cfg.PerShard(i, cfg)
	}
	img, err := appliance.BuildImage(cfg)
	if err != nil {
		return nil, fmt.Errorf("gateway: shard %d: %w", i, err)
	}
	app, err := img.Boot(nil)
	if err != nil {
		return nil, fmt.Errorf("gateway: boot shard %d: %w", i, err)
	}
	return app, nil
}

// Fleet returns the live appliances, index-aligned with the shards.
func (g *Gateway) Fleet() []*appliance.Appliance {
	out := make([]*appliance.Appliance, len(g.members))
	for i, m := range g.members {
		_, out[i] = m.snapshot()
	}
	return out
}

// RegisterUser registers grid credentials on every shard (and on shards
// that rejoin later).
func (g *Gateway) RegisterUser(user string, auth core.UserAuth) {
	g.mu.Lock()
	g.users[user] = auth
	g.mu.Unlock()
	for _, m := range g.members {
		if _, app := m.snapshot(); app != nil {
			app.OnServe.RegisterUser(user, auth)
		}
	}
}

// SetPeers names the sibling gateways' base URLs for on-write UDDI
// pushes.
func (g *Gateway) SetPeers(urls ...string) {
	g.mu.Lock()
	g.peers = append([]string(nil), urls...)
	g.mu.Unlock()
}

// PrimaryFor reports which shard index the ring maps service|owner to —
// the stickiness target, health aside. Experiments and tests use it to
// pick a victim shard.
func (g *Gateway) PrimaryFor(service, owner string) int {
	if owner == "" {
		owner, _ = g.view.owner(service)
	}
	succ := g.ring.successors(service + "|" + owner)
	if len(succ) == 0 {
		return -1
	}
	return g.byID[succ[0]].idx
}

// Kill hard-stops shard i's appliance (listener and all), simulating a
// crashed box. Detection is organic: in-flight proxies fail passively
// and the prober ejects the upstream after FailThreshold consecutive
// failures.
func (g *Gateway) Kill(i int) error {
	if i < 0 || i >= len(g.members) {
		return fmt.Errorf("gateway: no shard %d", i)
	}
	m := g.members[i]
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.attached {
		return fmt.Errorf("gateway: shard %d is attached, not owned", i)
	}
	if m.killed || m.app == nil {
		return nil
	}
	m.killed = true
	return m.app.Shutdown()
}

// Rejoin boots a fresh appliance for a killed shard, re-registers every
// known user, replays the upload catalog so the newcomer can serve any
// service, and leaves the member ejected with an elapsed cooldown — the
// next probe is the half-open trial that readmits it. The shard keeps
// its ring position, so its old keys remap straight back.
func (g *Gateway) Rejoin(i int) error {
	if i < 0 || i >= len(g.members) {
		return fmt.Errorf("gateway: no shard %d", i)
	}
	m := g.members[i]
	m.mu.Lock()
	if m.attached {
		m.mu.Unlock()
		return fmt.Errorf("gateway: shard %d is attached, not owned", i)
	}
	if !m.killed {
		m.mu.Unlock()
		return fmt.Errorf("gateway: shard %d is not killed", i)
	}
	m.mu.Unlock()

	app, err := g.bootShard(i)
	if err != nil {
		return err
	}
	g.mu.Lock()
	users := make(map[string]core.UserAuth, len(g.users))
	for u, a := range g.users {
		users[u] = a
	}
	entries := make([]*catalogEntry, 0, len(g.catalog))
	for _, e := range g.catalog {
		entries = append(entries, e)
	}
	g.mu.Unlock()
	for u, a := range users {
		app.OnServe.RegisterUser(u, a)
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].service < entries[b].service })
	for _, e := range entries {
		if err := g.replayUpload(app.BaseURL, e); err != nil {
			app.Shutdown()
			return fmt.Errorf("gateway: rejoin shard %d: replay %s: %w", i, e.service, err)
		}
	}

	m.mu.Lock()
	m.app = app
	m.base = app.BaseURL
	m.killed = false
	m.fails = 0
	m.state = stateEjected
	// Cooldown already elapsed: the very next probe is the half-open
	// trial.
	m.ejectedAt = g.clock.Now().Add(-g.cfg.HalfOpenAfter)
	m.mu.Unlock()
	return nil
}

// Shutdown stops the background loops, the front listener, and every
// owned appliance.
func (g *Gateway) Shutdown() error {
	close(g.stop)
	g.srv.Close()
	g.ln.Close()
	g.shutdownFleet()
	g.bg.Wait()
	return nil
}

func (g *Gateway) shutdownFleet() {
	for _, m := range g.members {
		m.mu.Lock()
		if !m.attached && !m.killed && m.app != nil {
			m.app.Shutdown()
			m.killed = true
		}
		m.mu.Unlock()
	}
}

// probeLoop runs shard health checks until shutdown.
func (g *Gateway) probeLoop(m *member) {
	for {
		select {
		case <-g.stop:
			return
		case <-g.clock.After(g.cfg.ProbeInterval):
		}
		m.probe()
	}
}

// pullLoop periodically refreshes the replicated UDDI view.
func (g *Gateway) pullLoop() {
	for {
		select {
		case <-g.stop:
			return
		case <-g.clock.After(g.cfg.PullInterval):
		}
		g.refreshView()
	}
}

// refreshView pulls every healthy appliance's registry listing and
// installs the union. Ejected members keep their last-known records so
// a crashed shard's services remain resolvable for rerouting.
func (g *Gateway) refreshView() {
	union := make(map[string]uddi.Record)
	for _, rec := range g.view.list("") {
		union[rec.Name] = rec
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range g.members {
		if !m.healthy() && g.ctr.viewPulls.Load() > 0 {
			continue
		}
		base, _ := m.snapshot()
		wg.Add(1)
		go func() {
			defer wg.Done()
			recs, err := g.fetchRegistry(base)
			if err != nil {
				return
			}
			mu.Lock()
			for _, rec := range recs {
				union[rec.Name] = rec
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	recs := make([]uddi.Record, 0, len(union))
	for _, rec := range union {
		recs = append(recs, rec)
	}
	g.view.replaceAll(recs)
	g.ctr.viewPulls.Add(1)
}

func (g *Gateway) fetchRegistry(base string) ([]uddi.Record, error) {
	resp, err := g.httpc.Get(base + "/api/registry")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("gateway: registry pull: %s", resp.Status)
	}
	var recs []uddi.Record
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// pushPeers sends one view mutation to every peer gateway.
func (g *Gateway) pushPeers(op string, rec uddi.Record) {
	g.mu.Lock()
	peers := append([]string(nil), g.peers...)
	g.mu.Unlock()
	if len(peers) == 0 {
		return
	}
	body, err := json.Marshal(map[string]any{"op": op, "record": rec})
	if err != nil {
		return
	}
	for _, peer := range peers {
		peer := peer
		g.bg.Add(1)
		go func() {
			defer g.bg.Done()
			resp, err := g.httpc.Post(peer+"/gateway/uddi", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
}

// replayUpload re-POSTs a catalogued upload to one appliance.
func (g *Gateway) replayUpload(base string, e *catalogEntry) error {
	resp, err := g.httpc.Post(base+"/upload", e.contentType, bytes.NewReader(e.body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gateway: replay upload: %s", resp.Status)
	}
	return nil
}

// ---- dispatch ----

// ServeHTTP is the front door.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/gateway/") {
		g.serveInternal(w, r)
		return
	}
	var body []byte
	if r.Body != nil && r.Method != http.MethodGet && r.Method != http.MethodHead {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxBody))
		if err != nil {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("gateway: read body: %w", err))
			return
		}
	}
	rt, err := DecodeRoute(r.Method, r.URL.Path, r.URL.RawQuery, r.Header.Get("Content-Type"), body)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	switch rt.Kind {
	case KindStats:
		g.ctr.scatters.Add(1)
		g.serveStats(w, r)
	case KindAudit:
		g.ctr.scatters.Add(1)
		g.serveAudit(w, r)
	case KindServices:
		g.ctr.scatters.Add(1)
		g.serveServices(w, r)
	case KindRegistry:
		g.serveRegistry(w, r)
	case KindTicket:
		g.serveTicket(w, r, rt, body)
	case KindAny:
		g.serveAny(w, r, body)
	default:
		g.serveKeyed(w, r, rt, body)
	}
}

// orderedMembers resolves the successor list to members.
func (g *Gateway) orderedMembers(key string) []*member {
	ids := g.ring.successors(key)
	out := make([]*member, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.byID[id])
	}
	return out
}

// pickHealthy returns the first healthy member of succ, falling back to
// the primary when the whole fleet looks down (the attempt itself is
// the passive probe that will flip someone back).
func pickHealthy(succ []*member) (*member, int) {
	for i, m := range succ {
		if m.healthy() {
			return m, i
		}
	}
	if len(succ) == 0 {
		return nil, -1
	}
	return succ[0], 0
}

// serveKeyed routes one consistent-hash request, with one retry on the
// next healthy successor where that cannot double-execute, and a
// catalog replay when an upstream turns out not to hold a service the
// fleet owns.
func (g *Gateway) serveKeyed(w http.ResponseWriter, r *http.Request, rt Route, body []byte) {
	owner := rt.Owner
	if owner == "" && rt.Service != "" {
		owner, _ = g.view.owner(rt.Service)
	}
	succ := g.orderedMembers(rt.Key(owner))
	m, pos := pickHealthy(succ)
	if m == nil {
		jsonError(w, http.StatusServiceUnavailable, errors.New("gateway: no upstreams"))
		return
	}
	g.ctr.routed.Add(1)
	if pos == 0 {
		g.ctr.sticky.Add(1)
	} else {
		g.ctr.failovers.Add(1)
	}

	sp := g.startSpan(r, rt, m)
	resp, err := g.forward(m, r, body, sp)
	if err != nil {
		m.fail()
		// Retry once on the next healthy successor. GETs are idempotent;
		// POSTs retry only when the dial itself failed, so the request
		// can never have reached (or executed on) the first upstream.
		if retry := g.nextHealthy(succ, m); retry != nil && safeToRetry(r.Method, err) {
			g.ctr.retried.Add(1)
			sp.Set("retry", retry.id)
			resp, err = g.forward(retry, r, body, sp)
			if err != nil {
				retry.fail()
			} else {
				m = retry
			}
		}
		if err != nil {
			sp.Error(err.Error())
			sp.End()
			jsonError(w, http.StatusBadGateway, fmt.Errorf("gateway: upstream %s: %w", m.id, err))
			return
		}
	}
	m.ok()

	// A 404 for a service the fleet owns means this upstream simply has
	// not seen the upload (ring failover or a fresh rejoin): replay the
	// catalog entry onto it and retry the original request once.
	if resp.status == http.StatusNotFound && rt.Service != "" && rt.Kind != KindUpload && rt.Kind != KindDelete {
		if e := g.catalogGet(rt.Service); e != nil {
			if err := g.replayUpload(memberBase(m), e); err == nil {
				g.ctr.redeploys.Add(1)
				m.redeploys.Add(1)
				sp.Set("redeploy", rt.Service)
				if resp2, err2 := g.forward(m, r, body, sp); err2 == nil {
					resp = resp2
				}
			}
		}
	}

	g.learn(rt, m, body, r.Header.Get("Content-Type"), resp)
	sp.SetInt("status", int64(resp.status))
	sp.End()
	resp.write(w)
}

// nextHealthy returns the first healthy member after skip.
func (g *Gateway) nextHealthy(succ []*member, skip *member) *member {
	for _, m := range succ {
		if m != skip && m.healthy() {
			return m
		}
	}
	return nil
}

// learn harvests placement facts from a successful response: tickets
// map back to the shard that issued them, uploads enter the catalog and
// the replicated view, deletes leave both.
func (g *Gateway) learn(rt Route, m *member, body []byte, contentType string, resp *bufferedResponse) {
	if resp.status != http.StatusOK {
		return
	}
	switch rt.Kind {
	case KindInvoke:
		var out struct {
			Ticket string `json:"ticket"`
		}
		if json.Unmarshal(resp.body, &out) == nil && out.Ticket != "" {
			g.tickets.Store(out.Ticket, m)
			m.ticketHints.Add(1)
		}
	case KindUpload:
		e := &catalogEntry{
			service:     rt.Service,
			owner:       rt.Owner,
			contentType: contentType,
			body:        append([]byte(nil), body...),
		}
		g.mu.Lock()
		g.catalog[rt.Service] = e
		g.mu.Unlock()
		var rec uddi.Record
		if json.Unmarshal(resp.body, &rec) == nil && rec.Name != "" {
			g.view.upsert(rec)
			g.pushPeers("upsert", rec)
		}
	case KindDelete:
		g.mu.Lock()
		delete(g.catalog, rt.Service)
		g.mu.Unlock()
		g.view.remove(rt.Service)
		g.pushPeers("delete", uddi.Record{Name: rt.Service})
		// Failover replays may have spread the service: sweep the rest of
		// the fleet so a later scatter cannot resurrect it.
		for _, other := range g.members {
			if other == m || !other.healthy() {
				continue
			}
			base, _ := other.snapshot()
			req, err := http.NewRequest(http.MethodPost, base+"/api/delete?name="+rt.Service, nil)
			if err != nil {
				continue
			}
			if resp, err := g.httpc.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	}
}

func (g *Gateway) catalogGet(service string) *catalogEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.catalog[service]
}

// serveTicket routes ticket-addressed requests to the shard that issued
// the ticket, scattering only for tickets this gateway never saw (for
// example a sibling gateway issued them).
func (g *Gateway) serveTicket(w http.ResponseWriter, r *http.Request, rt Route, body []byte) {
	if v, ok := g.tickets.Load(rt.Ticket); ok {
		m := v.(*member)
		g.ctr.ticketRoutes.Add(1)
		sp := g.startSpan(r, rt, m)
		resp, err := g.forward(m, r, body, sp)
		if err != nil {
			m.fail()
			sp.Error(err.Error())
			sp.End()
			jsonError(w, http.StatusBadGateway, fmt.Errorf("gateway: upstream %s: %w", m.id, err))
			return
		}
		m.ok()
		sp.End()
		resp.write(w)
		return
	}
	g.ctr.scatters.Add(1)
	var last *bufferedResponse
	for _, m := range g.members {
		if !m.healthy() {
			continue
		}
		resp, err := g.forward(m, r, body, nil)
		if err != nil {
			m.fail()
			continue
		}
		m.ok()
		if resp.status != http.StatusNotFound {
			if rt.Ticket != "" {
				g.tickets.Store(rt.Ticket, m)
			}
			resp.write(w)
			return
		}
		last = resp
	}
	if last != nil {
		last.write(w)
		return
	}
	jsonError(w, http.StatusBadGateway, errors.New("gateway: no upstream answered"))
}

// serveAny proxies affinity-free requests round-robin over the healthy
// fleet, retrying transport errors once.
func (g *Gateway) serveAny(w http.ResponseWriter, r *http.Request, body []byte) {
	g.rrMu.Lock()
	start := g.rr
	g.rr++
	g.rrMu.Unlock()
	n := len(g.members)
	var firstErr error
	for i := 0; i < n; i++ {
		m := g.members[(int(start)+i)%n]
		if !m.healthy() && i < n-1 {
			continue
		}
		resp, err := g.forward(m, r, body, nil)
		if err != nil {
			m.fail()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m.ok()
		resp.write(w)
		return
	}
	if firstErr == nil {
		firstErr = errors.New("gateway: no upstreams")
	}
	jsonError(w, http.StatusBadGateway, firstErr)
}

// serveStats scatter-gathers /api/stats and prepends the gateway block.
func (g *Gateway) serveStats(w http.ResponseWriter, r *http.Request) {
	type shardDoc struct {
		ID    string          `json:"id"`
		Base  string          `json:"base"`
		State string          `json:"state"`
		Stats json.RawMessage `json:"stats,omitempty"`
	}
	now := g.clock.Now()
	docs := make([]shardDoc, len(g.members))
	var wg sync.WaitGroup
	for i, m := range g.members {
		base, _ := m.snapshot()
		docs[i] = shardDoc{ID: m.id, Base: base, State: m.stateName(now)}
		if !m.healthy() {
			continue
		}
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			resp, err := g.forward(m, r, nil, nil)
			if err != nil {
				m.fail()
				return
			}
			m.ok()
			if resp.status == http.StatusOK {
				docs[i].Stats = json.RawMessage(resp.body)
			}
		}(i, m)
	}
	wg.Wait()
	doc := map[string]any{
		"gateway": g.GatewayStats(),
		"fleet":   docs,
	}
	// When any shard runs with tenancy on, surface a fleet-wide tenant
	// block: counters sum across shards, gauges take the fleet max.
	var merged tenant.Stats
	found := false
	for _, d := range docs {
		if len(d.Stats) == 0 {
			continue
		}
		var payload struct {
			Tenant *tenant.Stats `json:"tenant"`
		}
		if json.Unmarshal(d.Stats, &payload) != nil || payload.Tenant == nil {
			continue
		}
		merged.Merge(*payload.Tenant)
		found = true
	}
	if found {
		doc["tenant"] = merged
	}
	writeJSON(w, http.StatusOK, doc)
}

// serveAudit scatter-gathers /api/audit across the fleet: per-shard
// enforcement means each shard holds only the audit records for actions
// it admitted or denied, so the fleet-wide view merges them newest
// first. When no shard runs with tenancy on, the gateway answers 404
// exactly like a single appliance would.
func (g *Gateway) serveAudit(w http.ResponseWriter, r *http.Request) {
	n := 50
	if s := r.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	type auditDoc struct {
		Records []tenant.Record `json:"records"`
		Dropped uint64          `json:"dropped"`
	}
	docs := make([]*auditDoc, len(g.members))
	var wg sync.WaitGroup
	for i, m := range g.members {
		if !m.healthy() {
			continue
		}
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			resp, err := g.forward(m, r, nil, nil)
			if err != nil {
				m.fail()
				return
			}
			m.ok()
			if resp.status != http.StatusOK {
				return
			}
			var doc auditDoc
			if json.Unmarshal(resp.body, &doc) == nil {
				docs[i] = &doc
			}
		}(i, m)
	}
	wg.Wait()
	var records []tenant.Record
	var dropped uint64
	found := false
	for _, d := range docs {
		if d == nil {
			continue
		}
		found = true
		records = append(records, d.Records...)
		dropped += d.Dropped
	}
	if !found {
		http.NotFound(w, r)
		return
	}
	sort.Slice(records, func(i, j int) bool {
		if !records[i].Time.Equal(records[j].Time) {
			return records[i].Time.After(records[j].Time)
		}
		return records[i].Seq > records[j].Seq
	})
	if len(records) > n {
		records = records[:n]
	}
	if records == nil {
		records = []tenant.Record{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"records": records,
		"dropped": dropped,
	})
}

// serveServices scatter-gathers /api/services, deduplicates by service
// name (failover replays can make a service live on two shards), and
// returns a deterministically sorted merge.
func (g *Gateway) serveServices(w http.ResponseWriter, r *http.Request) {
	var mu sync.Mutex
	merged := make(map[string]core.ExecutableInfo)
	var wg sync.WaitGroup
	for _, m := range g.members {
		if !m.healthy() {
			continue
		}
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			resp, err := g.forward(m, r, nil, nil)
			if err != nil {
				m.fail()
				return
			}
			m.ok()
			if resp.status != http.StatusOK {
				return
			}
			var infos []core.ExecutableInfo
			if json.Unmarshal(resp.body, &infos) != nil {
				return
			}
			mu.Lock()
			for _, info := range infos {
				if _, ok := merged[info.ServiceName]; !ok {
					merged[info.ServiceName] = info
				}
			}
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	out := make([]core.ExecutableInfo, 0, len(merged))
	for _, info := range merged {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ServiceName < out[j].ServiceName })
	writeJSON(w, http.StatusOK, out)
}

var registryTmpl = template.Must(template.New("registry").Parse(`<!DOCTYPE html>
<html><head><title>Replicated UDDI view</title></head>
<body>
<h1>Replicated UDDI view</h1>
<p>{{len .}} service(s) across the fleet. Pattern filtering: append ?pattern=Monte%25</p>
<table border="1" cellpadding="4">
<tr><th>name</th><th>owner</th><th>endpoint</th><th>WSDL</th></tr>
{{range .}}<tr>
  <td>{{.Name}}</td><td>{{.Owner}}</td>
  <td><a href="{{.Endpoint}}">{{.Endpoint}}</a></td>
  <td><a href="{{.WSDLURL}}">wsdl</a></td>
</tr>
{{end}}</table>
</body></html>
`))

// serveRegistry renders the replicated view — the fleet-wide answer to
// the portal's /registry browser, no cross-shard hop required.
func (g *Gateway) serveRegistry(w http.ResponseWriter, r *http.Request) {
	recs := g.view.list(r.URL.Query().Get("pattern"))
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	registryTmpl.Execute(w, recs)
}

// serveInternal handles the gateway's own endpoints: the replicated
// view as JSON (GET /gateway/uddi), peer pushes (POST /gateway/uddi),
// and the stats block (GET /gateway/stats).
func (g *Gateway) serveInternal(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/gateway/uddi" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, g.view.list(r.URL.Query().Get("pattern")))
	case r.URL.Path == "/gateway/uddi" && r.Method == http.MethodPost:
		var push struct {
			Op     string      `json:"op"`
			Record uddi.Record `json:"record"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&push); err != nil {
			jsonError(w, http.StatusBadRequest, err)
			return
		}
		switch push.Op {
		case "upsert":
			g.view.upsert(push.Record)
		case "delete":
			g.view.remove(push.Record.Name)
		default:
			jsonError(w, http.StatusBadRequest, fmt.Errorf("gateway: unknown op %q", push.Op))
			return
		}
		g.ctr.viewPushes.Add(1)
		writeJSON(w, http.StatusOK, map[string]string{"applied": push.Op})
	case r.URL.Path == "/gateway/stats" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, g.GatewayStats())
	default:
		http.NotFound(w, r)
	}
}

// ---- proxy plumbing ----

// bufferedResponse is one upstream response, fully read so the gateway
// can learn from it and retries can never interleave half-written
// bodies.
type bufferedResponse struct {
	status int
	header http.Header
	body   []byte
}

func (b *bufferedResponse) write(w http.ResponseWriter) {
	h := w.Header()
	for k, vs := range b.header {
		h[k] = vs
	}
	w.WriteHeader(b.status)
	w.Write(b.body)
}

// forward proxies one request to m, buffering the response. sp, when
// non-nil, is the gateway span whose context replaces X-Grid-Trace on
// the hop so appliance spans hang under it.
func (g *Gateway) forward(m *member, r *http.Request, body []byte, sp *trace.Span) (*bufferedResponse, error) {
	base, _ := m.snapshot()
	req, err := http.NewRequest(r.Method, base+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		req.Header[k] = vs
	}
	if hop := sp.Context(); hop.Valid() {
		req.Header.Set(trace.Header, hop.String())
	}
	m.proxied.Add(1)
	resp, err := g.httpc.Do(req)
	if err != nil {
		m.proxyErrs.Add(1)
		// Flush pooled keep-alive connections: a crashed upstream surfaces
		// as an ambiguous EOF on a reused conn (never retried — the
		// request may have executed), but once the pool is clean the next
		// attempt fails at dial, which is provably safe to retry on a
		// ring successor.
		g.httpc.CloseIdleConnections()
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		m.proxyErrs.Add(1)
		return nil, err
	}
	header := resp.Header.Clone()
	header.Del("Content-Length") // length may change if callers re-frame
	return &bufferedResponse{status: resp.StatusCode, header: header, body: respBody}, nil
}

// startSpan opens the gateway-side span for one proxied request. Nil
// tracer (the default) yields a nil span; every Span method no-ops.
func (g *Gateway) startSpan(r *http.Request, rt Route, m *member) *trace.Span {
	if g.tracer == nil {
		return nil
	}
	parent, _ := trace.Parse(r.Header.Get(trace.Header))
	sp := g.tracer.StartSpan("route:"+rt.Kind.String(), parent)
	sp.Set("upstream", m.id)
	if rt.Service != "" {
		sp.Set("service", rt.Service)
	}
	return sp
}

// safeToRetry reports whether a failed attempt may be retried on a
// successor: reads always, writes only when the dial never connected —
// a request that was never sent cannot have executed.
func safeToRetry(method string, err error) bool {
	if method == http.MethodGet || method == http.MethodHead {
		return true
	}
	var opErr *net.OpError
	return errors.As(err, &opErr) && opErr.Op == "dial"
}

func memberBase(m *member) string {
	base, _ := m.snapshot()
	return base
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func jsonError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": errCode(status)})
}

// errCode mirrors the portal's machine-readable error codes so a client
// behind the gateway sees one envelope vocabulary. Upstream envelopes
// pass through verbatim; this only names errors the gateway itself
// originates.
func errCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusForbidden:
		return "forbidden"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusBadGateway:
		return "bad_gateway"
	default:
		return "internal"
	}
}
