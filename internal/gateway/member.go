package gateway

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/appliance"
)

// memberState is the health FSM: healthy → (FailThreshold consecutive
// failures) ejected → (HalfOpenAfter cooldown) half-open trial → healthy
// on success, back to ejected (cooldown restarted) on failure. Both
// active probes and passive proxy errors feed the same counters, so a
// mid-burst crash ejects on the burst's own failures without waiting for
// the prober.
type memberState int32

const (
	stateHealthy memberState = iota
	stateEjected
)

// member is one appliance behind the gateway.
type member struct {
	id  string
	idx int
	gw  *Gateway

	mu        sync.Mutex
	app       *appliance.Appliance // nil only transiently during rejoin
	base      string
	attached  bool // not owned: Kill/Rejoin/Shutdown leave it alone
	killed    bool
	state     memberState
	fails     int       // consecutive failures
	ejectedAt time.Time // gateway clock; start of the half-open cooldown

	// Counters (atomic; read by GatewayStats).
	probes, probeFails     atomic.Uint64
	proxied, proxyErrs     atomic.Uint64
	ejections, recoveries  atomic.Uint64
	halfOpenTrials         atomic.Uint64
	redeploys, ticketHints atomic.Uint64
}

// snapshot returns the base URL and appliance under the lock.
func (m *member) snapshot() (string, *appliance.Appliance) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.base, m.app
}

func (m *member) healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state == stateHealthy
}

// stateName renders the FSM state for stats, deriving "half-open" from
// an elapsed cooldown.
func (m *member) stateName(now time.Time) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == stateHealthy {
		return "healthy"
	}
	if now.Sub(m.ejectedAt) >= m.gw.cfg.HalfOpenAfter {
		return "half-open"
	}
	return "ejected"
}

// fail records one failed probe or proxy attempt.
func (m *member) fail() {
	now := m.gw.clock.Now()
	m.mu.Lock()
	m.fails++
	switch m.state {
	case stateHealthy:
		if m.fails >= m.gw.cfg.FailThreshold {
			m.state = stateEjected
			m.ejectedAt = now
			m.ejections.Add(1)
		}
	case stateEjected:
		m.ejectedAt = now // failed trial restarts the cooldown
	}
	m.mu.Unlock()
}

// ok records one successful probe or proxy response.
func (m *member) ok() {
	m.mu.Lock()
	m.fails = 0
	if m.state != stateHealthy {
		m.state = stateHealthy
		m.recoveries.Add(1)
	}
	m.mu.Unlock()
}

// probe runs one active health check: GET /api/stats with a short real
// deadline. Ejected members probe only once their half-open cooldown has
// elapsed, and that trial is the single request the circuit admits.
func (m *member) probe() {
	m.mu.Lock()
	if m.state == stateEjected {
		if m.gw.clock.Now().Sub(m.ejectedAt) < m.gw.cfg.HalfOpenAfter {
			m.mu.Unlock()
			return
		}
		m.halfOpenTrials.Add(1)
	}
	base := m.base
	m.mu.Unlock()

	m.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), m.gw.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/stats", nil)
	if err != nil {
		m.probeFails.Add(1)
		m.fail()
		return
	}
	resp, err := m.gw.httpc.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		m.probeFails.Add(1)
		m.fail()
		return
	}
	resp.Body.Close()
	m.ok()
}
