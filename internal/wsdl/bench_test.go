package wsdl

import "testing"

func BenchmarkGenerate(b *testing.B) {
	def := demoDef()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(def); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	doc, err := Generate(demoDef())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(doc); err != nil {
			b.Fatal(err)
		}
	}
}
