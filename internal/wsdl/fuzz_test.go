package wsdl

import "testing"

func FuzzParse(f *testing.F) {
	if doc, err := Generate(demoDef()); err == nil {
		f.Add(doc)
	}
	f.Add([]byte("<definitions/>"))
	f.Add([]byte("not xml"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		def, err := Parse(data)
		if err != nil {
			return
		}
		// Anything accepted must be valid and regeneratable.
		if err := def.Validate(); err != nil {
			t.Fatalf("parse accepted invalid definition: %v", err)
		}
		if _, err := Generate(def); err != nil {
			t.Fatalf("regenerate failed: %v", err)
		}
	})
}
