// Package wsdl models, generates, and parses WSDL 1.1 service
// descriptions. Every service the onServe middleware generates is
// published "together with the descriptions, the WSDL files, and the
// service endpoint" (paper §V); clients then build call proxies from the
// WSDL exactly as the paper's users run wsimport (see internal/wsclient).
package wsdl

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// XSD simple types supported for operation parameters.
const (
	TypeString  = "string"
	TypeInt     = "int"
	TypeDouble  = "double"
	TypeBoolean = "boolean"
)

// Errors.
var (
	ErrBadType  = errors.New("wsdl: unsupported parameter type")
	ErrNotWSDL  = errors.New("wsdl: document is not a WSDL definition")
	ErrBadValue = errors.New("wsdl: value does not conform to declared type")
)

// ValidType reports whether t is a supported simple type.
func ValidType(t string) bool {
	switch t {
	case TypeString, TypeInt, TypeDouble, TypeBoolean:
		return true
	}
	return false
}

// CheckValue validates a lexical value against a declared type.
func CheckValue(typ, val string) error {
	switch typ {
	case TypeString:
		return nil
	case TypeInt:
		if _, err := strconv.ParseInt(val, 10, 64); err != nil {
			return fmt.Errorf("%w: %q is not an int", ErrBadValue, val)
		}
	case TypeDouble:
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("%w: %q is not a double", ErrBadValue, val)
		}
	case TypeBoolean:
		if val != "true" && val != "false" && val != "0" && val != "1" {
			return fmt.Errorf("%w: %q is not a boolean", ErrBadValue, val)
		}
	default:
		return fmt.Errorf("%w: %q", ErrBadType, typ)
	}
	return nil
}

// ParamDef declares one operation parameter.
type ParamDef struct {
	Name string
	Type string // one of the Type* constants
	Doc  string
}

// OperationDef declares one service operation.
type OperationDef struct {
	Name       string
	Doc        string
	Params     []ParamDef
	ReturnType string // empty means TypeString
}

// ServiceDef is the complete description of a deployed service.
type ServiceDef struct {
	Name        string
	Namespace   string
	Doc         string
	EndpointURL string
	Operations  []OperationDef
}

// Operation returns the named operation, or nil.
func (d *ServiceDef) Operation(name string) *OperationDef {
	for i := range d.Operations {
		if d.Operations[i].Name == name {
			return &d.Operations[i]
		}
	}
	return nil
}

// Validate checks the definition is generatable.
func (d *ServiceDef) Validate() error {
	if d.Name == "" || d.Namespace == "" {
		return errors.New("wsdl: service needs name and namespace")
	}
	seen := map[string]bool{}
	for _, op := range d.Operations {
		if op.Name == "" {
			return errors.New("wsdl: operation needs a name")
		}
		if seen[op.Name] {
			return fmt.Errorf("wsdl: duplicate operation %q", op.Name)
		}
		seen[op.Name] = true
		for _, p := range op.Params {
			if p.Name == "" {
				return fmt.Errorf("wsdl: operation %q has unnamed parameter", op.Name)
			}
			if !ValidType(p.Type) {
				return fmt.Errorf("%w: %s.%s is %q", ErrBadType, op.Name, p.Name, p.Type)
			}
		}
		if op.ReturnType != "" && !ValidType(op.ReturnType) {
			return fmt.Errorf("%w: return of %s is %q", ErrBadType, op.Name, op.ReturnType)
		}
	}
	return nil
}

// Generate renders the definition as a WSDL 1.1 document.
func Generate(d *ServiceDef) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var b bytes.Buffer
	b.WriteString(xml.Header)
	fmt.Fprintf(&b, `<wsdl:definitions name=%q targetNamespace=%q`+"\n", d.Name, d.Namespace)
	b.WriteString(`    xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"` + "\n")
	b.WriteString(`    xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"` + "\n")
	b.WriteString(`    xmlns:xsd="http://www.w3.org/2001/XMLSchema"` + "\n")
	fmt.Fprintf(&b, `    xmlns:tns=%q>`+"\n", d.Namespace)
	if d.Doc != "" {
		fmt.Fprintf(&b, "  <wsdl:documentation>%s</wsdl:documentation>\n", escape(d.Doc))
	}

	// Types: one wrapper element per operation and response.
	fmt.Fprintf(&b, "  <wsdl:types>\n    <xsd:schema targetNamespace=%q>\n", d.Namespace)
	for _, op := range d.Operations {
		fmt.Fprintf(&b, "      <xsd:element name=%q><xsd:complexType><xsd:sequence>\n", op.Name)
		for _, p := range op.Params {
			fmt.Fprintf(&b, "        <xsd:element name=%q type=\"xsd:%s\"", p.Name, p.Type)
			if p.Doc != "" {
				fmt.Fprintf(&b, "><xsd:annotation><xsd:documentation>%s</xsd:documentation></xsd:annotation></xsd:element>\n", escape(p.Doc))
			} else {
				b.WriteString("/>\n")
			}
		}
		b.WriteString("      </xsd:sequence></xsd:complexType></xsd:element>\n")
		ret := op.ReturnType
		if ret == "" {
			ret = TypeString
		}
		fmt.Fprintf(&b, "      <xsd:element name=\"%sResponse\"><xsd:complexType><xsd:sequence>\n", op.Name)
		fmt.Fprintf(&b, "        <xsd:element name=\"return\" type=\"xsd:%s\"/>\n", ret)
		b.WriteString("      </xsd:sequence></xsd:complexType></xsd:element>\n")
	}
	b.WriteString("    </xsd:schema>\n  </wsdl:types>\n")

	// Messages, portType, binding, service.
	for _, op := range d.Operations {
		fmt.Fprintf(&b, "  <wsdl:message name=\"%sRequest\"><wsdl:part name=\"parameters\" element=\"tns:%s\"/></wsdl:message>\n", op.Name, op.Name)
		fmt.Fprintf(&b, "  <wsdl:message name=\"%sResponse\"><wsdl:part name=\"parameters\" element=\"tns:%sResponse\"/></wsdl:message>\n", op.Name, op.Name)
	}
	fmt.Fprintf(&b, "  <wsdl:portType name=\"%sPortType\">\n", d.Name)
	for _, op := range d.Operations {
		fmt.Fprintf(&b, "    <wsdl:operation name=%q>\n", op.Name)
		if op.Doc != "" {
			fmt.Fprintf(&b, "      <wsdl:documentation>%s</wsdl:documentation>\n", escape(op.Doc))
		}
		fmt.Fprintf(&b, "      <wsdl:input message=\"tns:%sRequest\"/>\n", op.Name)
		fmt.Fprintf(&b, "      <wsdl:output message=\"tns:%sResponse\"/>\n", op.Name)
		b.WriteString("    </wsdl:operation>\n")
	}
	b.WriteString("  </wsdl:portType>\n")
	fmt.Fprintf(&b, "  <wsdl:binding name=\"%sBinding\" type=\"tns:%sPortType\">\n", d.Name, d.Name)
	b.WriteString("    <soap:binding transport=\"http://schemas.xmlsoap.org/soap/http\" style=\"document\"/>\n")
	for _, op := range d.Operations {
		fmt.Fprintf(&b, "    <wsdl:operation name=%q><soap:operation soapAction=\"%s/%s\"/>\n", op.Name, d.Namespace, op.Name)
		b.WriteString("      <wsdl:input><soap:body use=\"literal\"/></wsdl:input>\n")
		b.WriteString("      <wsdl:output><soap:body use=\"literal\"/></wsdl:output>\n")
		b.WriteString("    </wsdl:operation>\n")
	}
	b.WriteString("  </wsdl:binding>\n")
	fmt.Fprintf(&b, "  <wsdl:service name=%q>\n", d.Name)
	fmt.Fprintf(&b, "    <wsdl:port name=\"%sPort\" binding=\"tns:%sBinding\">\n", d.Name, d.Name)
	fmt.Fprintf(&b, "      <soap:address location=%q/>\n", d.EndpointURL)
	b.WriteString("    </wsdl:port>\n  </wsdl:service>\n</wsdl:definitions>\n")
	return b.Bytes(), nil
}

func escape(s string) string {
	var b bytes.Buffer
	xml.EscapeText(&b, []byte(s))
	return b.String()
}

// Parse reconstructs a ServiceDef from a WSDL document produced by
// Generate (or any document using the same document/literal wrapped
// conventions).
func Parse(data []byte) (*ServiceDef, error) {
	type xsdAnnotated struct {
		Name string `xml:"name,attr"`
		Type string `xml:"type,attr"`
		Doc  string `xml:"annotation>documentation"`
	}
	type xsdElement struct {
		Name     string         `xml:"name,attr"`
		Children []xsdAnnotated `xml:"complexType>sequence>element"`
	}
	type doc struct {
		XMLName   xml.Name     `xml:"definitions"`
		Name      string       `xml:"name,attr"`
		TargetNS  string       `xml:"targetNamespace,attr"`
		Doc       string       `xml:"documentation"`
		Elements  []xsdElement `xml:"types>schema>element"`
		PortTypes []struct {
			Operations []struct {
				Name string `xml:"name,attr"`
				Doc  string `xml:"documentation"`
			} `xml:"operation"`
		} `xml:"portType"`
		Services []struct {
			Ports []struct {
				Address struct {
					Location string `xml:"location,attr"`
				} `xml:"address"`
			} `xml:"port"`
		} `xml:"service"`
	}
	var d doc
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotWSDL, err)
	}
	if d.XMLName.Local != "definitions" || d.TargetNS == "" {
		return nil, ErrNotWSDL
	}
	out := &ServiceDef{Name: d.Name, Namespace: d.TargetNS, Doc: strings.TrimSpace(d.Doc)}
	if len(d.Services) > 0 && len(d.Services[0].Ports) > 0 {
		out.EndpointURL = d.Services[0].Ports[0].Address.Location
	}
	elems := map[string]xsdElement{}
	for _, e := range d.Elements {
		elems[e.Name] = e
	}
	for _, pt := range d.PortTypes {
		for _, op := range pt.Operations {
			od := OperationDef{Name: op.Name, Doc: strings.TrimSpace(op.Doc)}
			if req, ok := elems[op.Name]; ok {
				for _, c := range req.Children {
					od.Params = append(od.Params, ParamDef{
						Name: c.Name,
						Type: strings.TrimPrefix(c.Type, "xsd:"),
						Doc:  strings.TrimSpace(c.Doc),
					})
				}
			}
			if resp, ok := elems[op.Name+"Response"]; ok && len(resp.Children) > 0 {
				od.ReturnType = strings.TrimPrefix(resp.Children[0].Type, "xsd:")
			}
			out.Operations = append(out.Operations, od)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("%w: parsed document invalid: %v", ErrNotWSDL, err)
	}
	return out, nil
}
