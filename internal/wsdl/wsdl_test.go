package wsdl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func demoDef() *ServiceDef {
	return &ServiceDef{
		Name:        "MonteCarloService",
		Namespace:   "urn:onserve:montecarlo",
		Doc:         "Runs the uploaded montecarlo executable on the Grid",
		EndpointURL: "http://appliance:8080/services/MonteCarloService",
		Operations: []OperationDef{
			{
				Name: "execute",
				Doc:  "Execute the associated file on the Grid",
				Params: []ParamDef{
					{Name: "samples", Type: TypeInt, Doc: "number of samples"},
					{Name: "seed", Type: TypeInt},
					{Name: "tag", Type: TypeString},
				},
				ReturnType: TypeString,
			},
			{Name: "status", Params: []ParamDef{{Name: "ticket", Type: TypeString}}},
		},
	}
}

func TestGenerateParseRoundTrip(t *testing.T) {
	def := demoDef()
	doc, err := Generate(def)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(doc)
	if err != nil {
		t.Fatalf("parse generated doc: %v\n%s", err, doc)
	}
	if got.Name != def.Name || got.Namespace != def.Namespace || got.EndpointURL != def.EndpointURL {
		t.Fatalf("identity lost: %+v", got)
	}
	if got.Doc != def.Doc {
		t.Fatalf("doc lost: %q", got.Doc)
	}
	if len(got.Operations) != 2 {
		t.Fatalf("ops %d", len(got.Operations))
	}
	ex := got.Operation("execute")
	if ex == nil || len(ex.Params) != 3 {
		t.Fatalf("execute op %+v", ex)
	}
	if ex.Params[0].Name != "samples" || ex.Params[0].Type != TypeInt || ex.Params[0].Doc != "number of samples" {
		t.Fatalf("param %+v", ex.Params[0])
	}
	if ex.ReturnType != TypeString {
		t.Fatalf("return type %q", ex.ReturnType)
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	cases := []*ServiceDef{
		{Namespace: "urn:x"}, // no name
		{Name: "X"},          // no namespace
		{Name: "X", Namespace: "urn:x", Operations: []OperationDef{{Name: ""}}},
		{Name: "X", Namespace: "urn:x", Operations: []OperationDef{{Name: "a"}, {Name: "a"}}},
		{Name: "X", Namespace: "urn:x", Operations: []OperationDef{{Name: "a", Params: []ParamDef{{Name: "p", Type: "blob"}}}}},
		{Name: "X", Namespace: "urn:x", Operations: []OperationDef{{Name: "a", Params: []ParamDef{{Name: "", Type: TypeString}}}}},
		{Name: "X", Namespace: "urn:x", Operations: []OperationDef{{Name: "a", ReturnType: "blob"}}},
	}
	for i, def := range cases {
		if _, err := Generate(def); err == nil {
			t.Errorf("case %d: invalid definition generated", i)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, src := range []string{"", "<html/>", "not xml at all", "<definitions/>"} {
		if _, err := Parse([]byte(src)); !errors.Is(err, ErrNotWSDL) {
			t.Errorf("Parse(%q) err = %v, want ErrNotWSDL", src, err)
		}
	}
}

func TestGenerateEscapesDocumentation(t *testing.T) {
	def := demoDef()
	def.Doc = `runs <fast> & "loose"`
	doc, err := Generate(def)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(doc), "<fast>") {
		t.Fatal("documentation not escaped")
	}
	got, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Doc != def.Doc {
		t.Fatalf("escaped doc round-trip: %q", got.Doc)
	}
}

func TestCheckValue(t *testing.T) {
	ok := [][2]string{
		{TypeString, "anything"}, {TypeInt, "-42"}, {TypeDouble, "3.25"},
		{TypeDouble, "1e9"}, {TypeBoolean, "true"}, {TypeBoolean, "0"},
	}
	for _, c := range ok {
		if err := CheckValue(c[0], c[1]); err != nil {
			t.Errorf("CheckValue(%q, %q) = %v", c[0], c[1], err)
		}
	}
	bad := [][2]string{
		{TypeInt, "3.5"}, {TypeInt, "x"}, {TypeDouble, "abc"},
		{TypeBoolean, "yes"}, {"blob", "x"},
	}
	for _, c := range bad {
		if err := CheckValue(c[0], c[1]); err == nil {
			t.Errorf("CheckValue(%q, %q) accepted", c[0], c[1])
		}
	}
}

func TestValidType(t *testing.T) {
	for _, typ := range []string{TypeString, TypeInt, TypeDouble, TypeBoolean} {
		if !ValidType(typ) {
			t.Errorf("ValidType(%q) = false", typ)
		}
	}
	if ValidType("bytes") || ValidType("") {
		t.Error("invalid type accepted")
	}
}

func TestOperationLookup(t *testing.T) {
	def := demoDef()
	if def.Operation("execute") == nil {
		t.Fatal("execute not found")
	}
	if def.Operation("nope") != nil {
		t.Fatal("phantom operation found")
	}
}

// Property: any definition built from sanitised fragments survives a
// Generate/Parse round trip with operations and parameter types intact.
func TestPropertyRoundTrip(t *testing.T) {
	types := []string{TypeString, TypeInt, TypeDouble, TypeBoolean}
	f := func(nOps, nParams uint8, seed uint32) bool {
		def := &ServiceDef{
			Name:        "Svc" + strings.Repeat("x", int(seed%5)+1),
			Namespace:   "urn:test:svc",
			EndpointURL: "http://h:1/services/S",
		}
		ops := int(nOps%4) + 1
		for i := 0; i < ops; i++ {
			op := OperationDef{Name: "op" + string(rune('A'+i))}
			params := int(nParams % 5)
			for j := 0; j < params; j++ {
				op.Params = append(op.Params, ParamDef{
					Name: "p" + string(rune('a'+j)),
					Type: types[(int(seed)+i+j)%len(types)],
				})
			}
			def.Operations = append(def.Operations, op)
		}
		doc, err := Generate(def)
		if err != nil {
			return false
		}
		got, err := Parse(doc)
		if err != nil {
			return false
		}
		if len(got.Operations) != len(def.Operations) {
			return false
		}
		for i, op := range def.Operations {
			g := got.Operations[i]
			if g.Name != op.Name || len(g.Params) != len(op.Params) {
				return false
			}
			for j, p := range op.Params {
				if g.Params[j].Name != p.Name || g.Params[j].Type != p.Type {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
