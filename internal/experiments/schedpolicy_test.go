package experiments

import (
	"strings"
	"testing"
)

func TestSchedulerPolicies(t *testing.T) {
	// The workload's walltime slack (5s virtual) must stay well above
	// host scheduling jitter, which time dilation amplifies and the race
	// detector inflates further.
	scale := 300.0
	if raceEnabled {
		scale = 100
	}
	res, err := SchedulerPolicies(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %+v", res.Rows)
	}
	byPolicy := map[string]SchedulerRow{}
	for _, row := range res.Rows {
		byPolicy[row.Policy] = row
	}
	agg, fcfs, cons := byPolicy["aggressive"], byPolicy["fcfs"], byPolicy["conservative"]

	// Narrow jobs wait least under aggressive backfill (they overtake
	// freely) and most under strict FCFS (they inherit wide jobs' waits).
	if agg.MeanWaitNarrow >= fcfs.MeanWaitNarrow {
		t.Fatalf("narrow waits: aggressive %.1f >= fcfs %.1f", agg.MeanWaitNarrow, fcfs.MeanWaitNarrow)
	}
	// Conservative protects wide jobs relative to aggressive backfill.
	if cons.MeanWaitWideS > agg.MeanWaitWideS {
		t.Fatalf("wide waits: conservative %.1f > aggressive %.1f", cons.MeanWaitWideS, agg.MeanWaitWideS)
	}
	// All policies finish the same work; makespans are the same order.
	for _, row := range res.Rows {
		if row.MakespanS <= 0 || row.MakespanS > 10*agg.MakespanS {
			t.Fatalf("makespan out of range: %+v", row)
		}
	}
	if !strings.Contains(res.Render(), "scheduler policy") {
		t.Fatal("render malformed")
	}
}
