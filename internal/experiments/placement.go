package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/gridsim"
	"repro/internal/gsh"
	"repro/internal/jsdl"
	"repro/internal/wsclient"
)

// PlacementVariants lists the site-selection ablation variants: the
// paper's load-only broker, the possession-aware scorer (probe the chunk
// stores, weigh missing bytes as WAN seconds against queue load), and
// the scorer plus the background pre-replicator that warms the sibling
// site before the burst arrives.
var PlacementVariants = []string{"load-only", "data-aware", "data-aware+replicate"}

// placementChunkBytes matches the stage ablation's chunk size.
const placementChunkBytes = 64 << 10

// AblationPlacement measures where a simultaneous cold burst lands and
// what that choice costs in WAN bytes and makespan. Every variant runs
// the chunked staging data plane with staging coalescing on and the
// staging cache off, so each invocation re-stages and only the site
// order differs:
//
//   - load-only spreads the burst across sites by queue load, so half of
//     it re-ships the executable to a site that never saw the bytes;
//   - data-aware sends the burst to the possessing site until its queue
//     costs more than the cold transfer it avoids, so the chunk store
//     answers nearly every staging without a WAN payload;
//   - data-aware+replicate pre-pushes the executable to the sibling site
//     after the priming invocation, so the burst splits by load again —
//     but both halves stage warm.
//
// The sizeKB grid pins the tradeoff the scorer encodes: a small payload
// is cheaper to re-ship than to queue behind one busy site, a large one
// is not. With no explicit variants, every entry of PlacementVariants
// runs at each size.
func AblationPlacement(opts Options, invocations int, sizesKB []int, variants ...string) (*AblationResult, error) {
	if invocations <= 0 {
		invocations = 64
	}
	if len(sizesKB) == 0 {
		sizesKB = []int{64, 1536}
	}
	if len(variants) == 0 {
		variants = PlacementVariants
	}
	// Like the stage ablation: the chunked data plane plus per-site
	// probes make many more round-trips than a stock PUT, so cap the
	// dilation or their real scheduling cost would bias the makespan.
	if opts.Scale <= 0 || opts.Scale > 40 {
		opts.Scale = 40
	}
	res := &AblationResult{Notes: []string{
		fmt.Sprintf("%d simultaneous invocations of one executable; chunked staging + coalescing on, staging cache off for every variant", invocations),
		"one priming invocation stages the payload at a single site — steered away from the load broker's idle-grid favourite, so possession and load order disagree when the burst arrives",
		"load-only: the paper's broker — sites ordered by queue load alone",
		"data-aware: sites scored by load seconds + missing wire bytes over the ~85 KB/s WAN (possession probed via the chunk stores, TTL cache + singleflight)",
		"data-aware+replicate: the scorer plus a top-1 background pre-push after the priming staging (drained before the burst)",
		"wan_wire_b is appliance WAN net-out during the burst; chunk_wire_b counts chunk payload bytes only; probe_rpcs the possession probes actually issued",
		"small payloads place like load-only (re-shipping is cheaper than queueing); large payloads chase the bytes — that crossover is the scorer's whole point",
	}}

	for _, sizeKB := range sizesKB {
		study := fmt.Sprintf("placement-%dkb", sizeKB)
		for _, variant := range variants {
			o := opts
			o.SessionCache = true
			o.StagingCache = false
			o.CoalesceStaging = true
			o.ChunkedStaging = true
			o.ChunkBytes = placementChunkBytes
			o.PollInterval = 3 * time.Second
			switch variant {
			case "load-only":
			case "data-aware":
				o.DataAwarePlacement = true
			case "data-aware+replicate":
				o.DataAwarePlacement = true
				o.ReplicateTopK = 1
			default:
				return nil, fmt.Errorf("experiments: unknown placement variant %q", variant)
			}
			rows, err := placementBurst(o, study, variant, sizeKB, invocations)
			if err != nil {
				return nil, fmt.Errorf("experiments: placement %s/%s: %w", study, variant, err)
			}
			res.Rows = append(res.Rows, rows...)
		}
	}
	return res, nil
}

// hogTieBreakSite fills a few slots of the load broker's idle-grid
// favourite (alphabetically first site) with long-running jobs, so the
// next placement prefers the sibling. Returns the site and the hog job
// IDs so the caller can cancel them.
func hogTieBreakSite(r *rig) (*gridsim.Site, []string, error) {
	names := make([]string, 0, 2)
	for name := range r.env.Endpoints().FTPURLs {
		names = append(names, name)
	}
	sort.Strings(names)
	site, err := r.env.Grid.Site(names[0])
	if err != nil {
		return nil, nil, err
	}
	const owner = "/O=Repro/CN=alice"
	if err := site.Store().Put(owner, "hog.gsh", []byte("compute 10h\n")); err != nil {
		return nil, nil, err
	}
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		j, err := site.Submit(jsdl.Description{Owner: owner, Executable: "hog.gsh"})
		if err != nil {
			return nil, nil, err
		}
		ids = append(ids, j.ID)
	}
	return site, ids, nil
}

// placementBurst boots one rig, primes one site with the payload, then
// fires the burst and accounts the deltas.
func placementBurst(o Options, study, variant string, sizeKB, invocations int) ([]AblationRow, error) {
	r, err := newRig(o)
	if err != nil {
		return nil, err
	}
	defer r.close()

	program := string(gsh.Pad([]byte("compute 1s\necho ok\n"), sizeKB<<10))
	if err := r.uploadViaPortal("burstjob.gsh", program); err != nil {
		return nil, err
	}
	proxy, err := wsclient.ImportURL(r.app.BaseURL+"/services/BurstjobService", r.userHTTP)
	if err != nil {
		return nil, err
	}
	// Priming invocation: shares one grid session with the burst and
	// stages the payload at exactly one site. A few hog jobs briefly load
	// the broker's tie-break favourite so the priming lands at the OTHER
	// site — the bytes end up where load alone would not send the burst,
	// which is exactly the asymmetry a data-aware scorer exists for. The
	// hogs are cancelled before timing starts, so both sites enter the
	// burst idle.
	hogSite, hogIDs, err := hogTieBreakSite(r)
	if err != nil {
		return nil, err
	}
	ticket, err := proxy.Invoke("execute", nil)
	if err == nil {
		_, err = proxy.Invoke("wait", map[string]string{"ticket": ticket})
	}
	if err != nil {
		return nil, fmt.Errorf("priming invocation: %w", err)
	}
	for _, id := range hogIDs {
		hogSite.Cancel(id)
	}
	// The replicate variant drains the background push so the sibling is
	// warm before timing starts.
	r.app.OnServe.DrainReplicator()

	placeBefore := r.app.OnServe.PlacementStats()
	stageBefore := r.app.OnServe.StageStats()
	r.rec.Reset()
	start := r.clock.Now()
	var wg sync.WaitGroup
	errs := make(chan error, invocations)
	for i := 0; i < invocations; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticket, err := proxy.Invoke("execute", nil)
			if err != nil {
				errs <- err
				return
			}
			if _, err := proxy.Invoke("wait", map[string]string{"ticket": ticket}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	elapsed := r.clock.Now().Sub(start).Seconds()
	place := r.app.OnServe.PlacementStats()
	stage := r.app.OnServe.StageStats()
	wireB := seriesSummary(r.rec.Series())["net_out_total_b"]

	row := func(metric string, v float64) AblationRow {
		return AblationRow{Study: study, Variant: variant, Metric: metric, Value: v}
	}
	return []AblationRow{
		row("makespan_s", elapsed),
		row("wan_wire_b", wireB),
		row("chunk_wire_b", float64(stage.WireBytes-stageBefore.WireBytes)),
		row("chunks_shipped", float64(stage.ChunksShipped-stageBefore.ChunksShipped)),
		row("probe_rpcs", float64(place.ProbesSent-placeBefore.ProbesSent)),
		row("probe_cache_hits", float64(place.ProbeCacheHits-placeBefore.ProbeCacheHits)),
		row("placements_redirected", float64(place.PlacementsRedirected-placeBefore.PlacementsRedirected)),
		// Lifetime replicator totals: the pre-push happens before the
		// burst, which is the point.
		row("replicator_pushes", float64(place.ReplicatorPushes)),
		row("replicator_push_bytes", float64(place.ReplicatorPushBytes)),
	}, nil
}
