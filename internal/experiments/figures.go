package experiments

import (
	"bytes"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"strings"

	"repro/internal/gsh"
	"repro/internal/metrics"
	"repro/internal/wsclient"
)

// smallProgram is the Fig. 6 workload: "a very small file (some bytes)".
// It computes briefly, emits output periodically (so the tentative
// poller has something to write to disk), and finishes.
const smallProgram = "# tiny grid job\ncompute 2s\nemit 9s 3 partial-output ${tag}\necho final ${tag}\n"

// largeProgramSize is Fig. 7's "much larger file (~5MB)".
const largeProgramSize = 5 << 20

// uploadViaPortal posts the multipart upload form, as the paper's
// browser dialog does.
func (r *rig) uploadViaPortal(fileName, program string, paramNames ...string) error {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("file", fileName)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(fw, program); err != nil {
		return err
	}
	mw.WriteField("user", "alice")
	mw.WriteField("description", "experiment upload")
	for i, name := range paramNames {
		mw.WriteField(fmt.Sprintf("paramName%d", i+1), name)
		mw.WriteField(fmt.Sprintf("paramType%d", i+1), "string")
	}
	mw.Close()
	resp, err := r.userHTTP.Post(r.app.BaseURL+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("experiments: upload failed (%d): %s", resp.StatusCode, body)
	}
	return nil
}

// invokeGenerated drives the generated service through a wsimport-style
// proxy: execute, then wait for the final output.
func (r *rig) invokeGenerated(serviceName string, args map[string]string) (string, error) {
	proxy, err := wsclient.ImportURL(r.app.BaseURL+"/services/"+serviceName, r.userHTTP)
	if err != nil {
		return "", err
	}
	ticket, err := proxy.Invoke("execute", args)
	if err != nil {
		return "", err
	}
	return proxy.Invoke("wait", map[string]string{"ticket": ticket})
}

// Fig6 reproduces "Web service execution: CPU utilization, network and
// hard disk I/O (3 seconds interval)". Expected shape: hard-disk use very
// low; traffic dominated by the security credential exchange; one CPU
// phase when the file is loaded and decompressed from the database and a
// second when the job is created and submitted; periodic disk writes
// from the tentative output polling.
func Fig6(opts Options) (*Result, error) {
	r, err := newRig(opts)
	if err != nil {
		return nil, err
	}
	defer r.close()
	if err := r.uploadViaPortal("smalljob.gsh", smallProgram, "tag"); err != nil {
		return nil, err
	}

	// Measurement covers only the Web-service execution.
	r.rec.Reset()
	out, err := r.invokeGenerated("SmalljobService", map[string]string{"tag": "fig6"})
	if err != nil {
		return nil, err
	}
	if !strings.Contains(out, "final fig6") {
		return nil, fmt.Errorf("experiments: unexpected job output %q", out)
	}
	series := r.rec.Series()
	sum := seriesSummary(series)
	sum["disk_write_peaks"] = float64(countPeaks(series,
		func(s metrics.Sample) float64 { return s.DiskWriteBytes }, 1))
	return &Result{
		Name:    "fig6",
		Title:   "Web service execution, small file: CPU, network, disk I/O (3s interval)",
		Series:  series,
		Summary: sum,
		Notes: []string{
			"hard disk utilisation is very low, as is the data sent to the Grid",
			"a relatively large part of the traffic is the security credential request and answer",
			"CPU peaks: DB load+decompress, then job creation+submission",
			"periodic hard-disk write peaks from tentative output polling",
		},
	}, nil
}

// Fig7 reproduces "Web service execution, larger file: network and hard
// disk I/O (3 seconds interval)". Expected shape: the first disk peak is
// the temporary spill; the upload then saturates the WAN at a nearly
// constant 80-90 KB/s for about 60 seconds; the disk is not the limiting
// factor.
func Fig7(opts Options) (*Result, error) {
	r, err := newRig(opts)
	if err != nil {
		return nil, err
	}
	defer r.close()
	program := string(gsh.Pad([]byte(smallProgram), largeProgramSize))
	if err := r.uploadViaPortal("bigjob.gsh", program, "tag"); err != nil {
		return nil, err
	}

	r.rec.Reset()
	if _, err := r.invokeGenerated("BigjobService", map[string]string{"tag": "fig7"}); err != nil {
		return nil, err
	}
	series := r.rec.Series()
	sum := seriesSummary(series)

	// Estimate the upload plateau: buckets where outbound traffic is
	// within half of the per-bucket WAN capacity.
	capacity := 85.0 * 1024 * 3 // bytes per 3s bucket at 85 KB/s
	plateau := 0
	var plateauBytes float64
	for _, s := range series {
		if s.NetOutBytes > capacity/2 {
			plateau++
			plateauBytes += s.NetOutBytes
		}
	}
	sum["upload_plateau_s"] = float64(plateau) * 3
	if plateau > 0 {
		sum["upload_rate_kbps"] = plateauBytes / float64(plateau) / 3 / 1024
	}
	return &Result{
		Name:    "fig7",
		Title:   "Web service execution, ~5MB file: network and disk I/O (3s interval)",
		Series:  series,
		Summary: sum,
		Notes: []string{
			"first disk peak: the file is written temporarily to the hard disk",
			"the network, not the disk, is the limiting factor",
			"the transfer rate is almost constant at about 80 to 90 KB/s",
			"the upload takes on the order of 60 seconds",
		},
	}, nil
}

// Fig8 reproduces "Upload file and generate Web service: CPU utilization,
// network and hard disk I/O (3 seconds interval)". Expected shape: a tall
// network-input peak (the 1000 Mbit/s LAN delivering the file), high CPU
// (reception + container request handling + compression + service
// build), and two disk-write peaks — the temporary file and the database
// insert — the paper's double-write flaw.
func Fig8(opts Options) (*Result, error) {
	r, err := newRig(opts)
	if err != nil {
		return nil, err
	}
	defer r.close()
	program := string(gsh.Pad([]byte(smallProgram), largeProgramSize))

	r.rec.Reset()
	if err := r.uploadViaPortal("genjob.gsh", program, "tag"); err != nil {
		return nil, err
	}
	series := r.rec.Series()
	sum := seriesSummary(series)
	sum["disk_write_peaks"] = float64(countPeaks(series,
		func(s metrics.Sample) float64 { return s.DiskWriteBytes }, float64(largeProgramSize)/4))
	return &Result{
		Name:    "fig8",
		Title:   "Upload file and generate Web service: CPU, network, disk I/O (3s interval)",
		Series:  series,
		Summary: sum,
		Notes: []string{
			"high network-input peak: the 1000 Mbit/s LAN delivers the file quickly",
			"CPU is high while receiving/storing the file and building the service",
			"two disk-write activity phases: the file is written twice (temp file, then database)",
		},
	}, nil
}
