package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/gridsim"
	"repro/internal/jsdl"
	"repro/internal/vtime"
)

// SchedulerRow summarises one policy's behaviour on the mixed workload.
type SchedulerRow struct {
	Policy         string
	MakespanS      float64
	MeanWaitWideS  float64
	MeanWaitNarrow float64
}

// SchedulerResult compares the site scheduling policies.
type SchedulerResult struct {
	Rows  []SchedulerRow
	Notes []string
}

// Render prints the comparison.
func (r *SchedulerResult) Render() string {
	var sb strings.Builder
	sb.WriteString("== scheduler policy ablation (gridsim substrate) ==\n")
	sb.WriteString("policy        makespan_s  wait_wide_s  wait_narrow_s\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-13s %10.1f %12.1f %14.1f\n",
			row.Policy, row.MakespanS, row.MeanWaitWideS, row.MeanWaitNarrow)
	}
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// SchedulerPolicies runs an identical mixed workload — wide long jobs
// interleaved with narrow short ones — under each of the site's batch
// disciplines. The production-grid substrate is a real system in its own
// right; this ablation documents the fairness/throughput trade of the
// backfill choice DESIGN.md calls out.
func SchedulerPolicies(scale float64) (*SchedulerResult, error) {
	if scale <= 0 {
		scale = 2000
	}
	res := &SchedulerResult{Notes: []string{
		"workload: 6 wide jobs (8 cpus, 20s) interleaved with 24 narrow jobs (1 cpu, 5s) on 16 slots",
		"aggressive: narrow jobs overtake freely; wide jobs wait longest",
		"fcfs: strict order; narrow jobs inherit the wide jobs' waits",
		"conservative: wide jobs hold reservations; harmless narrow jobs still backfill",
	}}
	for _, policy := range []gridsim.Policy{
		gridsim.PolicyAggressive, gridsim.PolicyFCFS, gridsim.PolicyConservative,
	} {
		row, err := runPolicyWorkload(policy, scale)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runPolicyWorkload(policy gridsim.Policy, scale float64) (*SchedulerRow, error) {
	clk := vtime.NewScaled(scale)
	site := gridsim.NewSite(gridsim.SiteConfig{
		Name: "abl", Nodes: 2, CoresPerNode: 8, Policy: policy,
	}, clk)
	const owner = "/O=Repro/CN=bench"
	if err := site.Store().Put(owner, "wide.gsh", []byte("compute 20s\n")); err != nil {
		return nil, err
	}
	if err := site.Store().Put(owner, "narrow.gsh", []byte("compute 5s\n")); err != nil {
		return nil, err
	}

	start := clk.Now()
	var wide, narrow []*gridsim.Job
	// Interleave: one wide job, then four narrow, repeated.
	for round := 0; round < 6; round++ {
		j, err := site.Submit(jsdl.Description{
			Owner: owner, Executable: "wide.gsh", CPUs: 8, WallTime: 25 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		wide = append(wide, j)
		for n := 0; n < 4; n++ {
			j, err := site.Submit(jsdl.Description{
				Owner: owner, Executable: "narrow.gsh", CPUs: 1, WallTime: 8 * time.Second,
			})
			if err != nil {
				return nil, err
			}
			narrow = append(narrow, j)
		}
	}
	for _, j := range append(append([]*gridsim.Job{}, wide...), narrow...) {
		select {
		case <-j.Done():
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("schedpolicy: %s stuck in %s under %s", j.ID, j.State(), policy)
		}
		if j.State() != gridsim.Succeeded {
			return nil, fmt.Errorf("schedpolicy: %s ended %s (%s) under %s",
				j.ID, j.State(), j.ExitMessage(), policy)
		}
	}
	makespan := clk.Now().Sub(start).Seconds()
	return &SchedulerRow{
		Policy:         policy.String(),
		MakespanS:      makespan,
		MeanWaitWideS:  meanWait(wide),
		MeanWaitNarrow: meanWait(narrow),
	}, nil
}

func meanWait(jobs []*gridsim.Job) float64 {
	var total float64
	for _, j := range jobs {
		submitted, started, _ := j.Times()
		total += started.Sub(submitted).Seconds()
	}
	return total / float64(len(jobs))
}
