package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/wsclient"
)

// SmallJobsResult quantifies §VIII-B's closing observation: "the provided
// solution is quite good in a scenario using a lot of relatively small
// files. The network limitation doesn't play a huge role in this case and
// K-GRAM permits to submit a large number of jobs quite efficiently."
type SmallJobsResult struct {
	Jobs          int
	Workers       int
	MakespanS     float64
	JobsPerMinute float64
	// OverheadS is the mean middleware overhead per job: wall time per
	// job minus the job's own compute time.
	OverheadS   float64
	ComputeS    float64
	NetOutKB    float64
	DiskWriteKB float64
}

// Render prints the observation.
func (r *SmallJobsResult) Render() string {
	var sb strings.Builder
	sb.WriteString("== many small jobs (§VIII-B) ==\n")
	fmt.Fprintf(&sb, "jobs            %d (workers %d)\n", r.Jobs, r.Workers)
	fmt.Fprintf(&sb, "makespan        %.1f s virtual\n", r.MakespanS)
	fmt.Fprintf(&sb, "throughput      %.1f jobs/min\n", r.JobsPerMinute)
	fmt.Fprintf(&sb, "per-job compute %.1f s, middleware overhead %.1f s\n", r.ComputeS, r.OverheadS)
	fmt.Fprintf(&sb, "net out         %.0f KB total (small: network is not the bottleneck)\n", r.NetOutKB)
	fmt.Fprintf(&sb, "disk writes     %.0f KB total\n", r.DiskWriteKB)
	return sb.String()
}

// SmallJobs submits jobs invocations of a small executable through the
// generated service with the given number of concurrent clients.
func SmallJobs(opts Options, jobs, workers int) (*SmallJobsResult, error) {
	if jobs <= 0 {
		jobs = 50
	}
	if workers <= 0 {
		workers = 8
	}
	const computeSeconds = 1.0
	r, err := newRig(opts)
	if err != nil {
		return nil, err
	}
	defer r.close()
	if err := r.uploadViaPortal("tiny.gsh", "compute 1s\necho ok ${i}\n", "i"); err != nil {
		return nil, err
	}
	proxy, err := wsclient.ImportURL(r.app.BaseURL+"/services/TinyService", r.userHTTP)
	if err != nil {
		return nil, err
	}

	r.rec.Reset()
	start := r.clock.Now()
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ticket, err := proxy.Invoke("execute", map[string]string{"i": fmt.Sprint(i)})
			if err != nil {
				errs <- err
				return
			}
			out, err := proxy.Invoke("wait", map[string]string{"ticket": ticket})
			if err != nil {
				errs <- err
				return
			}
			if !strings.Contains(out, fmt.Sprintf("ok %d", i)) {
				errs <- fmt.Errorf("job %d wrong output %q", i, out)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, fmt.Errorf("experiments: small jobs: %w", err)
	}
	makespan := r.clock.Now().Sub(start).Seconds()
	sum := seriesSummary(r.rec.Series())
	perJobWall := makespan * float64(workers) / float64(jobs)
	return &SmallJobsResult{
		Jobs:          jobs,
		Workers:       workers,
		MakespanS:     makespan,
		JobsPerMinute: float64(jobs) / (makespan / 60),
		ComputeS:      computeSeconds,
		OverheadS:     perJobWall - computeSeconds,
		NetOutKB:      sum["net_out_total_b"] / 1024,
		DiskWriteKB:   sum["disk_write_total_b"] / 1024,
	}, nil
}
