package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/gram"
	"repro/internal/gridftp"
	"repro/internal/gsh"
	"repro/internal/jsdl"
	"repro/internal/myproxy"
	"repro/internal/netsim"
	"repro/internal/wsclient"
	"repro/internal/xsec"
)

// BaselineRow compares one access model.
type BaselineRow struct {
	Model     string  // "jse-direct" or "onserve-saas"
	LatencyS  float64 // virtual seconds for one run
	WANBytes  float64 // bytes that crossed the WAN
	UserSteps int     // protocol interactions the *user* must script
}

// BaselineResult contrasts raw JSE access with the SaaS path.
type BaselineResult struct {
	Rows  []BaselineRow
	Notes []string
}

// Render prints the comparison.
func (r *BaselineResult) Render() string {
	var sb strings.Builder
	sb.WriteString("== baseline: raw JSE access vs onServe SaaS ==\n")
	sb.WriteString("model         latency_s   wan_kb   user_steps\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-13s %9.1f %8.1f %12d\n",
			row.Model, row.LatencyS, row.WANBytes/1024, row.UserSteps)
	}
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// BaselineJSE quantifies the paper's motivation: accessing a production
// Grid directly means hand-scripting the JSE model (MyProxy logon,
// GridFTP staging, job description, GRAM submission, polling), while the
// SaaS model reduces the user's side to one Web-service call. The
// comparison runs the identical job both ways over the same shaped WAN
// and reports the latency, WAN traffic, and the number of protocol
// interactions the user must implement themselves.
func BaselineJSE(opts Options, fileKB int) (*BaselineResult, error) {
	if fileKB <= 0 {
		fileKB = 256
	}
	program := gsh.Pad([]byte("compute 2s\necho baseline done\n"), fileKB<<10)

	res := &BaselineResult{Notes: []string{
		"identical executable and job, identical ~85 KB/s WAN",
		"jse-direct: the user scripts logon, staging, jsdl, submission and polling",
		"onserve-saas: the user makes one execute call; the appliance does the JSE work",
		"user_steps counts distinct protocol interactions the user must implement",
	}}

	// --- JSE direct: the user's own client drives every grid protocol.
	{
		r, err := newRig(opts)
		if err != nil {
			return nil, err
		}
		// The "user" works from their own machine across the WAN.
		dialer := &netsim.Dialer{Profile: r.wan, Probe: r.probe}
		userGridHTTP := &http.Client{Transport: &http.Transport{DialContext: dialer.DialContext}}

		r.rec.Reset()
		start := r.clock.Now()
		// Step 1: MyProxy logon.
		mp := &myproxy.Client{
			Addr: r.env.MyProxyAddr,
			Dial: func(network, addr string) (nc net.Conn, err error) {
				return dialer.DialContext(context.Background(), network, addr)
			},
		}
		proxy, err := mp.Get("alice", "pw", time.Hour)
		if err != nil {
			r.close()
			return nil, fmt.Errorf("baseline: logon: %w", err)
		}
		// Step 2: choose a site and stage the executable via GridFTP.
		siteName := r.env.Grid.SiteNames()[0]
		ftp := &gridftp.Client{BaseURL: r.env.FTPURLs[siteName], Cred: proxy, HTTP: userGridHTTP}
		if _, err := ftp.Put("baseline.gsh", program); err != nil {
			r.close()
			return nil, fmt.Errorf("baseline: stage: %w", err)
		}
		// Step 3: write the job description; Step 4: submit via GRAM. The
		// proxy speaks for alice, so the owner is the end-entity identity.
		gc := &gram.Client{BaseURL: r.env.GramURL, Cred: proxy, HTTP: userGridHTTP}
		jobID, err := gc.Submit(&jsdl.Description{
			Owner: xsec.Identity(proxy.Chain), Executable: "baseline.gsh", Site: siteName,
		})
		if err != nil {
			r.close()
			return nil, fmt.Errorf("baseline: submit: %w", err)
		}
		// Step 5: poll status; Step 6: fetch output.
		st, err := gc.WaitTerminal(jobID, r.clock, 9*time.Second, time.Hour)
		if err != nil || st.State != "DONE" {
			r.close()
			return nil, fmt.Errorf("baseline: job %v: %v", st, err)
		}
		if _, err := gc.Output(jobID); err != nil {
			r.close()
			return nil, err
		}
		elapsed := r.clock.Now().Sub(start).Seconds()
		sum := seriesSummary(r.rec.Series())
		res.Rows = append(res.Rows, BaselineRow{
			Model: "jse-direct", LatencyS: elapsed,
			WANBytes: sum["net_out_total_b"] + sum["net_in_total_b"], UserSteps: 6,
		})
		r.close()
	}

	// --- SaaS through onServe: one service invocation.
	{
		r, err := newRig(opts)
		if err != nil {
			return nil, err
		}
		if err := r.uploadViaPortal("baseline.gsh", string(program)); err != nil {
			r.close()
			return nil, err
		}
		proxy, err := wsclient.ImportURL(r.app.BaseURL+"/services/BaselineService", r.userHTTP)
		if err != nil {
			r.close()
			return nil, err
		}
		r.rec.Reset()
		start := r.clock.Now()
		ticket, err := proxy.Invoke("execute", nil)
		if err != nil {
			r.close()
			return nil, err
		}
		if _, err := proxy.Invoke("wait", map[string]string{"ticket": ticket}); err != nil {
			r.close()
			return nil, err
		}
		elapsed := r.clock.Now().Sub(start).Seconds()
		sum := seriesSummary(r.rec.Series())
		res.Rows = append(res.Rows, BaselineRow{
			Model: "onserve-saas", LatencyS: elapsed,
			WANBytes: sum["net_out_total_b"] + sum["net_in_total_b"], UserSteps: 2,
		})
		r.close()
	}
	return res, nil
}
