package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/gsh"
	"repro/internal/trace"
	"repro/internal/wsclient"
)

// TraceSpanSummary aggregates one span name within one scenario.
type TraceSpanSummary struct {
	Service string  `json:"service"`
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// TraceScenario is one traced invocation's breakdown.
type TraceScenario struct {
	Scenario  string             `json:"scenario"`
	Ticket    string             `json:"ticket"`
	SpanCount int                `json:"span_count"`
	Services  []string           `json:"services"`
	Orphans   int                `json:"orphans"`
	WallMS    float64            `json:"wall_ms"`
	Breakdown []TraceSpanSummary `json:"breakdown"`
}

// TraceResult is the -trace experiment outcome (results/trace.json).
type TraceResult struct {
	Name  string          `json:"name"`
	Title string          `json:"title"`
	Rows  []TraceScenario `json:"rows"`
	Notes []string        `json:"notes"`
}

// Render prints the per-scenario span breakdown as a table.
func (r *TraceResult) Render() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.Name, r.Title)
	for _, row := range r.Rows {
		out += fmt.Sprintf("-- %s: %d spans, %d services, %.0f ms wall, %d orphan(s) --\n",
			row.Scenario, row.SpanCount, len(row.Services), row.WallMS, row.Orphans)
		for _, b := range row.Breakdown {
			out += fmt.Sprintf("  %-10s %-14s x%-4d %10.1f ms\n", b.Service, b.Name, b.Count, b.TotalMS)
		}
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// invokeTicketed is invokeGenerated, but returns the invocation ticket
// so the caller can pull its trace afterwards.
func (r *rig) invokeTicketed(serviceName string, args map[string]string) (string, error) {
	proxy, err := wsclient.ImportURL(r.app.BaseURL+"/services/"+serviceName, r.userHTTP)
	if err != nil {
		return "", err
	}
	ticket, err := proxy.Invoke("execute", args)
	if err != nil {
		return "", err
	}
	if _, err := proxy.Invoke("wait", map[string]string{"ticket": ticket}); err != nil {
		return "", err
	}
	return ticket, nil
}

// fetchTrace pulls the invocation's span tree through the portal's JSON
// export, exercising the same path `onserve-cli trace` uses.
func (r *rig) fetchTrace(ticket string) ([]trace.SpanData, error) {
	resp, err := r.userHTTP.Get(r.app.BaseURL + "/api/trace/" + ticket)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("experiments: trace fetch failed (%d): %s", resp.StatusCode, body)
	}
	var doc struct {
		Spans []trace.SpanData `json:"spans"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, err
	}
	return doc.Spans, nil
}

func summarize(scenario, ticket string, spans []trace.SpanData) TraceScenario {
	row := TraceScenario{Scenario: scenario, Ticket: ticket, SpanCount: len(spans)}
	if len(spans) == 0 {
		return row
	}
	ids := make(map[string]bool, len(spans))
	for _, sd := range spans {
		ids[sd.SpanID] = true
	}
	services := map[string]bool{}
	agg := map[string]*TraceSpanSummary{}
	t0, t1 := spans[0].Start, spans[0].End
	for _, sd := range spans {
		services[sd.Service] = true
		if sd.ParentID != "" && !ids[sd.ParentID] {
			row.Orphans++
		}
		if sd.Start.Before(t0) {
			t0 = sd.Start
		}
		if sd.End.After(t1) {
			t1 = sd.End
		}
		key := sd.Service + "/" + sd.Name
		s := agg[key]
		if s == nil {
			s = &TraceSpanSummary{Service: sd.Service, Name: sd.Name}
			agg[key] = s
		}
		s.Count++
		s.TotalMS += sd.DurationMS
	}
	for svc := range services {
		row.Services = append(row.Services, svc)
	}
	sort.Strings(row.Services)
	row.WallMS = float64(t1.Sub(t0)) / 1e6
	for _, s := range agg {
		row.Breakdown = append(row.Breakdown, *s)
	}
	sort.Slice(row.Breakdown, func(i, j int) bool {
		return row.Breakdown[i].TotalMS > row.Breakdown[j].TotalMS
	})
	return row
}

// TraceBreakdown runs the Fig. 6/7-style small and large invocations,
// stock and with every optimisation knob on, with tracing enabled, and
// reports each run's span breakdown: the per-request attribution of
// where an invocation spends its time (credential traffic, DB fetch,
// staging, submit, polling) that the 3-second resource buckets cannot
// resolve. largeBytes <= 0 picks the paper's ~5 MB file.
func TraceBreakdown(opts Options, largeBytes int) (*TraceResult, error) {
	if largeBytes <= 0 {
		largeBytes = largeProgramSize
	}
	allKnobs := func(o Options) Options {
		o.StagingCache = true
		o.SessionCache = true
		o.StatsTTL = 30 * time.Second
		o.BlobCacheBytes = 64 << 20
		o.GroupCommit = true
		o.PollHub = true
		o.CoalesceStaging = true
		o.SubmitHub = true
		o.ChunkedStaging = true
		o.WireCompression = true
		return o
	}
	largeProgram := string(gsh.Pad([]byte(smallProgram), largeBytes))
	scenarios := []struct {
		name    string
		program string
		opts    Options
	}{
		{"small-stock", smallProgram, opts},
		{"small-allknobs", smallProgram, allKnobs(opts)},
		{"large-stock", largeProgram, opts},
		{"large-allknobs", largeProgram, allKnobs(opts)},
	}
	res := &TraceResult{
		Name:  "trace",
		Title: "Per-request span breakdown, small vs large invocation, stock vs all knobs",
		Notes: []string{
			"each scenario is one invocation's full cross-service span tree",
			"stock rows show the paper's pipeline: logon, db.fetch, stage, submit, poll ticks",
			"all-knobs rows show the optimised pipeline: cached logon, coalesced/chunked staging, batched submit and poll",
		},
	}
	for _, sc := range scenarios {
		o := sc.opts
		o.Tracing = true
		r, err := newRig(o)
		if err != nil {
			return nil, err
		}
		err = func() error {
			defer r.close()
			if err := r.uploadViaPortal("tracejob.gsh", sc.program, "tag"); err != nil {
				return err
			}
			ticket, err := r.invokeTicketed("TracejobService", map[string]string{"tag": sc.name})
			if err != nil {
				return err
			}
			spans, err := r.fetchTrace(ticket)
			if err != nil {
				return err
			}
			res.Rows = append(res.Rows, summarize(sc.name, ticket, spans))
			return nil
		}()
		if err != nil {
			return nil, fmt.Errorf("trace %s: %w", sc.name, err)
		}
	}
	return res, nil
}
