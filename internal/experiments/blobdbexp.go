package experiments

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/blobdb"
)

// incompressible fills n bytes from a xorshift stream so gzip cannot
// shrink the payload — the studies below measure the WAL, not the
// compressor.
func incompressible(n int, seed uint64) []byte {
	b := make([]byte, n)
	x := seed*2654435761 + 1
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}

func durP99(d []time.Duration) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

// AblationBlobDB measures the sharded, segmented storage engine against
// the stock single-WAL layout. Like AblationGroupCommit it runs in real
// time against real files — time dilation would hide exactly the fsync
// and lock-hold costs the sharding exists to remove. Three studies:
//
//   - throughput: concurrent group-committed puts/sec as the shard count
//     grows (1 = stock layout); more shards means narrower mutexes and
//     parallel per-shard fsyncs.
//   - p99: per-put latency on an overwrite-heavy store while compaction
//     runs — the stock engine's stop-the-world Compact() against the
//     sharded engine's incremental background compactor.
//   - replay: cold-boot Open() wall time on a replayRecords-record
//     store — one sequential log against parallel per-shard replay.
func AblationBlobDB(replayRecords int) (*AblationResult, error) {
	if replayRecords <= 0 {
		replayRecords = 1_000_000
	}
	res := &AblationResult{Notes: []string{
		"real-time study of the blobdb storage engine (see DESIGN.md, storage engine section)",
		"throughput: sustained overwrite load on a store that must reclaim space while serving; shards-1 is the stock layout with periodic stop-the-world Compact(), shards-N reclaim in the background one 1/N-of-keyspace snapshot at a time",
		"p99: overwrite-heavy 32 KB puts on a preloaded store; stock reclaims space stop-the-world mid-run, sharded-8 compacts incrementally in the background",
		fmt.Sprintf("replay: cold Open() of a %d-record store (page cache dropped when permitted); sharded-16 replays shards in parallel, overlapping decode with reads", replayRecords),
	}}
	if err := blobThroughput(res); err != nil {
		return nil, err
	}
	if err := blobCompactionP99(res); err != nil {
		return nil, err
	}
	if err := blobReplay(res, replayRecords); err != nil {
		return nil, err
	}
	return res, nil
}

// blobThroughput: sustained puts/sec vs shard count on a store that has
// to reclaim space while serving. A WAL-structured store cannot run an
// overwrite workload forever without compaction, so compaction is part
// of the steady state being measured: the stock layout (shards-1) can
// only reclaim with stop-the-world Compact(), which rewrites the whole
// store under the WAL mutex while every writer waits; a sharded store
// reclaims in the background, one shard at a time, each snapshot
// covering 1/N of the keyspace — so more shards means smaller, shorter
// reclamation units and more puts landing between them.
func blobThroughput(res *AblationResult) error {
	const keys, writers, perWriter, payload = 512, 8, 500, 32 << 10
	blob := incompressible(payload, 7)
	for _, shards := range []int{1, 4, 16} {
		dir, err := os.MkdirTemp("", "blobdb-tput-*")
		if err != nil {
			return err
		}
		opts := blobdb.Options{Dir: dir, WALShards: shards}
		if shards > 1 {
			opts.SegmentBytes = 1 << 20
			opts.AutoCompact = true
			opts.CompactEvery = 50 * time.Millisecond
		}
		db, err := blobdb.Open(opts)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		tab := db.Table("bench")
		for i := 0; i < keys; i++ {
			if err := tab.Put(fmt.Sprintf("k%04d", i), nil, blob); err != nil {
				db.Close()
				os.RemoveAll(dir)
				return err
			}
		}
		// The stock variant reclaims the only way it can: periodic
		// stop-the-world compaction alongside the writers.
		stop := make(chan struct{})
		var compWG sync.WaitGroup
		if shards == 1 {
			compWG.Add(1)
			go func() {
				defer compWG.Done()
				tick := time.NewTicker(50 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						db.Compact()
					}
				}
			}()
		}
		start := time.Now()
		var wg sync.WaitGroup
		errc := make(chan error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					if err := tab.Put(fmt.Sprintf("k%04d", (w*perWriter+i)%keys), nil, blob); err != nil {
						errc <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errc)
		close(stop)
		compWG.Wait()
		if err := <-errc; err != nil {
			db.Close()
			os.RemoveAll(dir)
			return err
		}
		st := db.Stats()
		if err := db.Close(); err != nil {
			os.RemoveAll(dir)
			return err
		}
		os.RemoveAll(dir)
		variant := fmt.Sprintf("shards-%d", shards)
		puts := float64(writers * perWriter)
		res.Rows = append(res.Rows,
			AblationRow{Study: "blobdb-tput", Variant: variant, Metric: "puts_per_s", Value: puts / elapsed.Seconds()},
			AblationRow{Study: "blobdb-tput", Variant: variant, Metric: "wall_ms", Value: float64(elapsed.Milliseconds())},
			AblationRow{Study: "blobdb-tput", Variant: variant, Metric: "segments_retired", Value: float64(st.Compactor.SegmentsRetired)},
		)
	}
	return nil
}

// blobCompactionP99: tail latency of puts while the store reclaims an
// overwrite-heavy WAL. The stock engine can only Compact() stop-the-world
// — every put issued during the rewrite waits for the whole snapshot.
// The sharded engine's background compactor holds a shard lock only to
// snapshot its in-memory state, so puts slip between compactions.
func blobCompactionP99(res *AblationResult) error {
	const keys, writers, perWriter, payload = 512, 4, 500, 32 << 10
	blob := incompressible(payload, 11)
	run := func(opts blobdb.Options, stopWorld bool) (lat []time.Duration, compactions float64, retired float64, err error) {
		dir, err := os.MkdirTemp("", "blobdb-p99-*")
		if err != nil {
			return nil, 0, 0, err
		}
		defer os.RemoveAll(dir)
		opts.Dir = dir
		db, err := blobdb.Open(opts)
		if err != nil {
			return nil, 0, 0, err
		}
		defer db.Close()
		tab := db.Table("bench")
		for i := 0; i < keys; i++ {
			if err := tab.Put(fmt.Sprintf("k%04d", i), nil, blob); err != nil {
				return nil, 0, 0, err
			}
		}
		// The stock variant reclaims space the only way it can: periodic
		// stop-the-world compaction concurrent with the writers. Every put
		// issued while the snapshot is rewritten waits on the WAL mutex.
		stop := make(chan struct{})
		var compWG sync.WaitGroup
		var manual int
		if stopWorld {
			compWG.Add(1)
			go func() {
				defer compWG.Done()
				tick := time.NewTicker(50 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						if err := db.Compact(); err == nil {
							manual++
						}
					}
				}
			}()
		}
		var mu sync.Mutex
		lat = make([]time.Duration, 0, writers*perWriter)
		var wg sync.WaitGroup
		errc := make(chan error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				local := make([]time.Duration, 0, perWriter)
				for i := 0; i < perWriter; i++ {
					k := fmt.Sprintf("k%04d", (w*perWriter+i)%keys)
					t0 := time.Now()
					if err := tab.Put(k, nil, blob); err != nil {
						errc <- err
						return
					}
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				lat = append(lat, local...)
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		close(errc)
		close(stop)
		compWG.Wait()
		if err := <-errc; err != nil {
			return nil, 0, 0, err
		}
		st := db.Stats()
		if stopWorld {
			return lat, float64(manual), 0, nil
		}
		return lat, float64(st.Compactor.Snapshots), float64(st.Compactor.SegmentsRetired), nil
	}

	stockLat, stockComp, _, err := run(blobdb.Options{}, true)
	if err != nil {
		return err
	}
	shardLat, shardSnaps, shardRetired, err := run(blobdb.Options{
		WALShards: 8, SegmentBytes: 2 << 20,
		AutoCompact: true, CompactEvery: 50 * time.Millisecond,
	}, false)
	if err != nil {
		return err
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	res.Rows = append(res.Rows,
		AblationRow{Study: "blobdb-p99", Variant: "stock-stopworld", Metric: "p99_put_ms", Value: ms(durP99(stockLat))},
		AblationRow{Study: "blobdb-p99", Variant: "stock-stopworld", Metric: "compactions", Value: stockComp},
		AblationRow{Study: "blobdb-p99", Variant: "sharded-bg", Metric: "p99_put_ms", Value: ms(durP99(shardLat))},
		AblationRow{Study: "blobdb-p99", Variant: "sharded-bg", Metric: "compactions", Value: shardSnaps},
		AblationRow{Study: "blobdb-p99", Variant: "sharded-bg", Metric: "segments_retired", Value: shardRetired},
	)
	return nil
}

// dropPageCache makes a reopen genuinely cold. Best-effort: it needs
// root, and the study is still meaningful (if noisier) without it —
// warm replay is CPU-bound on decode, cold replay also pays the reads.
func dropPageCache() {
	syscall.Sync()
	os.WriteFile("/proc/sys/vm/drop_caches", []byte("3"), 0)
}

// blobReplay: cold-boot recovery time. Both variants hold the same
// records; the stock layout replays one log with a single goroutine —
// its entry decode stalls behind every read — while the sharded layout
// replays every shard on its own goroutine, overlapping one shard's
// decode with the others' reads.
func blobReplay(res *AblationResult, records int) error {
	blob := incompressible(64, 13)
	for _, shards := range []int{1, 16} {
		dir, err := os.MkdirTemp("", "blobdb-replay-*")
		if err != nil {
			return err
		}
		opts := blobdb.Options{Dir: dir, WALShards: shards, SegmentBytes: 64 << 20}
		db, err := blobdb.Open(opts)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		tab := db.Table("bench")
		for i := 0; i < records; i++ {
			if err := tab.Put(fmt.Sprintf("k%07d", i), nil, blob); err != nil {
				db.Close()
				os.RemoveAll(dir)
				return err
			}
		}
		if err := db.Close(); err != nil {
			os.RemoveAll(dir)
			return err
		}
		dropPageCache()
		start := time.Now()
		db, err = blobdb.Open(opts)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		elapsed := time.Since(start)
		n := db.Table("bench").Len()
		db.Close()
		os.RemoveAll(dir)
		if n != records {
			return fmt.Errorf("blobdb replay: recovered %d of %d records (shards=%d)", n, records, shards)
		}
		variant := fmt.Sprintf("shards-%d", shards)
		res.Rows = append(res.Rows,
			AblationRow{Study: "blobdb-replay", Variant: variant, Metric: "open_ms", Value: float64(elapsed.Milliseconds())},
			AblationRow{Study: "blobdb-replay", Variant: variant, Metric: "records_per_s", Value: float64(records) / elapsed.Seconds()},
		)
	}
	return nil
}
