// Package experiments regenerates the paper's evaluation (Section VIII):
// Figure 6 (Web-service execution with a small file), Figure 7 (the same
// with a ~5 MB file), Figure 8 (upload and Web-service generation), the
// scalability discussion of §VIII-D, and the many-small-jobs observation
// of §VIII-B. Each experiment boots the full stack — simulated TeraGrid,
// appliance, portal, SOAP container — over loopback TCP with a
// time-dilated clock, shapes the appliance's grid path to the paper's
// WAN (~85 KB/s) and its user path to the paper's LAN (1000 Mbit/s), and
// samples the appliance host's CPU, disk, and network at 3-second
// virtual intervals exactly as the paper did.
package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/gridenv"
	"repro/internal/gridsim"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Options tunes an experiment run.
type Options struct {
	// Scale is the time dilation factor; default 200 (one real second
	// covers 200 virtual seconds).
	Scale float64
	// SampleInterval defaults to the paper's 3 seconds.
	SampleInterval time.Duration
	// PollInterval is the tentative output polling cadence; default 9s.
	PollInterval time.Duration
	// Sites defaults to a compact two-site grid (the figures measure the
	// appliance host, not the grid).
	Sites []gridsim.SiteConfig
	// StagingCache / DirectDBWrite / UseLongPoll select ablation and
	// extension variants.
	StagingCache  bool
	DirectDBWrite bool
	UseLongPoll   bool
	// SessionCache / StatsTTL / BlobCacheBytes / GroupCommit select the
	// invocation hot-path optimisations (see core.Config and
	// blobdb.Options); zero values keep the paper-faithful behaviour.
	SessionCache   bool
	StatsTTL       time.Duration
	BlobCacheBytes int64
	GroupCommit    bool
	// WALShards / SegmentBytes / AutoCompact select the sharded, segmented
	// storage engine and its background compactor (see blobdb.Options);
	// zero values keep the stock single-WAL layout.
	WALShards    int
	SegmentBytes int64
	AutoCompact  bool
	// PollHub / PollHubShards select the sharded batched status collector
	// (see core.Config); off keeps the paper's per-invocation poller.
	PollHub       bool
	PollHubShards int
	// PushEvents selects the push-based collector: job completion rides
	// one long-lived gatekeeper event stream per session instead of any
	// polling (see core.Config); the poll hub rides along as fallback.
	PushEvents bool
	// CoalesceStaging / SubmitHub / SubmitHubWindow select the batched
	// submission front-end (see core.Config); off keeps one upload and
	// one submit RPC per invocation.
	CoalesceStaging bool
	SubmitHub       bool
	SubmitHubWindow time.Duration
	// ChunkedStaging / ChunkBytes / WireCompression select the chunked,
	// content-addressed staging data plane (see core.Config); off keeps
	// the paper's monolithic uncompressed PUT per staging.
	ChunkedStaging  bool
	ChunkBytes      int
	WireCompression bool
	// DataAwarePlacement / PlacementProbeTTL / ReplicateTopK select the
	// possession-aware site scorer and the background pre-replicator
	// (see core.Config); zero values keep load-only placement.
	DataAwarePlacement bool
	PlacementProbeTTL  time.Duration
	ReplicateTopK      int
	// Tenancy enables the multi-tenant control plane (API keys, policy,
	// rate limits, fair-share quotas, audit); nil keeps it off.
	Tenancy *tenant.Config
	// Cost overrides the appliance CPU cost model (nil = defaults).
	Cost *metrics.Cost
	// Tracing turns on the distributed tracer: one collector shared by
	// the grid environment and the appliance, so each invocation yields
	// a single cross-service span tree (read back via rig.trace).
	Tracing bool
}

func (o *Options) fill() {
	if o.Scale <= 0 {
		o.Scale = 200
	}
	if o.SampleInterval <= 0 {
		o.SampleInterval = 3 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 9 * time.Second
	}
	if len(o.Sites) == 0 {
		o.Sites = []gridsim.SiteConfig{
			{Name: "ncsa-abe", Nodes: 8, CoresPerNode: 8},
			{Name: "sdsc-ds", Nodes: 8, CoresPerNode: 8},
		}
	}
}

// Result is one experiment's outcome.
type Result struct {
	// Name identifies the experiment ("fig6", ...).
	Name string
	// Title is the paper caption it reproduces.
	Title string
	// Series is the appliance host's 3-second-bucket resource series.
	Series []metrics.Sample
	// Summary holds derived scalars (upload seconds, totals, peaks).
	Summary map[string]float64
	// Notes explain what to look for, mirroring the paper's commentary.
	Notes []string
}

// CSV renders the series.
func (r *Result) CSV() string { return metrics.CSV(r.Series) }

// Render produces the terminal "figure": one ASCII chart per plotted
// quantity, as the paper plots CPU, network, and disk I/O.
func (r *Result) Render() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.Name, r.Title)
	out += metrics.Chart("CPU utilisation", "%", r.Series, func(s metrics.Sample) float64 { return s.CPUPct })
	out += metrics.Chart("Network in", "B/bucket", r.Series, func(s metrics.Sample) float64 { return s.NetInBytes })
	out += metrics.Chart("Network out", "B/bucket", r.Series, func(s metrics.Sample) float64 { return s.NetOutBytes })
	out += metrics.Chart("Disk write", "B/bucket", r.Series, func(s metrics.Sample) float64 { return s.DiskWriteBytes })
	out += metrics.Chart("Disk read", "B/bucket", r.Series, func(s metrics.Sample) float64 { return s.DiskReadBytes })
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	for k, v := range r.Summary {
		out += fmt.Sprintf("summary: %s = %.4g\n", k, v)
	}
	return out
}

// rig is the booted measurement stack.
type rig struct {
	clock *vtime.Scaled
	rec   *metrics.Recorder
	probe *metrics.Probe
	env   *gridenv.Env
	app   *appliance.Appliance
	wan   *netsim.Profile
	lan   *netsim.Profile
	// userHTTP reaches the appliance over the shaped LAN; gridHTTP is the
	// appliance's own client toward the grid over the shaped WAN.
	userHTTP *http.Client
	// trace is the shared span collector; nil unless Options.Tracing.
	trace *trace.Collector
}

// newRig boots the grid and appliance with the paper's link profiles.
func newRig(opts Options) (*rig, error) {
	opts.fill()
	clk := vtime.NewScaled(opts.Scale)
	rec := metrics.NewRecorder(clk, opts.SampleInterval)
	probe := metrics.NewProbe(rec)
	wan := netsim.WAN(clk)
	lan := netsim.LAN(clk)
	var col *trace.Collector
	if opts.Tracing {
		col = trace.NewCollector(0, 0)
	}

	env, err := gridenv.Start(gridenv.Options{
		Clock:   clk,
		Sites:   opts.Sites,
		Profile: wan, // grid servers answer the appliance across the WAN
		Trace:   col,
	})
	if err != nil {
		return nil, err
	}
	// Time dilation shrinks the default event-stream heartbeat to a few
	// real milliseconds; one virtual minute keeps the client's liveness
	// budget well clear of real scheduler jitter.
	env.Gatekeeper.SetHeartbeatInterval(time.Minute)
	if _, err := env.AddUser("alice", "pw", 0); err != nil {
		env.Close()
		return nil, err
	}

	gridDialer := &netsim.Dialer{Profile: wan, Probe: probe}
	gridHTTP := &http.Client{Transport: &http.Transport{DialContext: gridDialer.DialContext}}
	myproxyDial := func(network, addr string) (net.Conn, error) {
		return gridDialer.DialContext(context.Background(), network, addr)
	}

	cost := metrics.DefaultCost()
	if opts.Cost != nil {
		cost = *opts.Cost
	}
	img, err := appliance.BuildImage(appliance.Config{
		Endpoints:          env.Endpoints(),
		Clock:              clk,
		Probe:              probe,
		Cost:               cost,
		GridHTTP:           gridHTTP,
		MyProxyDial:        myproxyDial,
		UserProfile:        lan,
		PollInterval:       opts.PollInterval,
		InvocationTimeout:  time.Hour,
		StagingCache:       opts.StagingCache,
		DirectDBWrite:      opts.DirectDBWrite,
		UseLongPoll:        opts.UseLongPoll,
		SessionCache:       opts.SessionCache,
		StatsTTL:           opts.StatsTTL,
		BlobCacheBytes:     opts.BlobCacheBytes,
		GroupCommit:        opts.GroupCommit,
		WALShards:          opts.WALShards,
		SegmentBytes:       opts.SegmentBytes,
		AutoCompact:        opts.AutoCompact,
		PollHub:            opts.PollHub,
		PollHubShards:      opts.PollHubShards,
		PushEvents:         opts.PushEvents,
		CoalesceStaging:    opts.CoalesceStaging,
		SubmitHub:          opts.SubmitHub,
		SubmitHubWindow:    opts.SubmitHubWindow,
		ChunkedStaging:     opts.ChunkedStaging,
		ChunkBytes:         opts.ChunkBytes,
		WireCompression:    opts.WireCompression,
		DataAwarePlacement: opts.DataAwarePlacement,
		PlacementProbeTTL:  opts.PlacementProbeTTL,
		ReplicateTopK:      opts.ReplicateTopK,
		Tenancy:            opts.Tenancy,
		Trace:              col,
	})
	if err != nil {
		env.Close()
		return nil, err
	}
	app, err := img.Boot(nil)
	if err != nil {
		env.Close()
		return nil, err
	}
	app.OnServe.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "pw"})

	userDialer := &netsim.Dialer{Profile: lan}
	userHTTP := &http.Client{Transport: &http.Transport{DialContext: userDialer.DialContext}}

	return &rig{
		clock: clk, rec: rec, probe: probe,
		env: env, app: app, wan: wan, lan: lan,
		userHTTP: userHTTP, trace: col,
	}, nil
}

func (r *rig) close() {
	r.app.Shutdown()
	r.env.Close()
}

// seriesSummary derives the scalar metrics shared by the figures.
func seriesSummary(series []metrics.Sample) map[string]float64 {
	sum := map[string]float64{}
	var peakCPU, peakNetIn, peakNetOut, peakDiskW float64
	for _, s := range series {
		sum["net_in_total_b"] += s.NetInBytes
		sum["net_out_total_b"] += s.NetOutBytes
		sum["disk_write_total_b"] += s.DiskWriteBytes
		sum["disk_read_total_b"] += s.DiskReadBytes
		peakCPU = max(peakCPU, s.CPUPct)
		peakNetIn = max(peakNetIn, s.NetInBytes)
		peakNetOut = max(peakNetOut, s.NetOutBytes)
		peakDiskW = max(peakDiskW, s.DiskWriteBytes)
	}
	sum["cpu_peak_pct"] = peakCPU
	for _, s := range series {
		sum["cpu_total_s"] += s.CPUPct / 100 * 3
	}
	sum["net_in_peak_b"] = peakNetIn
	sum["net_out_peak_b"] = peakNetOut
	sum["disk_write_peak_b"] = peakDiskW
	if n := len(series); n > 0 {
		sum["duration_s"] = series[n-1].Start.Seconds() + 3
	}
	return sum
}

// countPeaks counts local maxima above thresh — used to verify the
// "periodic disk write peaks" and "two disk write peaks" claims.
func countPeaks(series []metrics.Sample, pick func(metrics.Sample) float64, thresh float64) int {
	n := 0
	inPeak := false
	for _, s := range series {
		v := pick(s)
		if v >= thresh {
			if !inPeak {
				n++
				inPeak = true
			}
		} else {
			inPeak = false
		}
	}
	return n
}
