package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gridftp"
	"repro/internal/myproxy"
	"repro/internal/netsim"
)

// StageVariants lists the staging data-plane ablation variants: the
// paper's monolithic uncompressed PUT per staging, the chunked
// content-addressed protocol over raw bytes, and the same protocol
// shipping the database's stored gzip stream.
var StageVariants = []string{"stock", "chunked", "chunked-gzip"}

// stageChunkBytes is the chunk size the ablation runs with: small enough
// that a one-line edit of the test payload dirties exactly one chunk.
const stageChunkBytes = 64 << 10

// compressibleProgram builds a valid gsh program of roughly size bytes
// whose padding gzip actually compresses. gsh.Pad is deliberately
// pseudo-random ("passes as noise to gzip"), which would hide the
// WireCompression win, so this payload mixes a per-line counter and a
// short noise token into an otherwise repetitive comment block —
// compressible, but not degenerate.
func compressibleProgram(size int) string {
	var sb strings.Builder
	sb.Grow(size + 128)
	sb.WriteString("compute 1s\necho staged ok\n")
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; sb.Len() < size; i++ {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		tok := state * 0x2545f4914f6cdd1d
		fmt.Fprintf(&sb, "# block %06d %016x%016x%016x payload payload payload payload payload payload\n",
			i, tok, tok^0xa5a5a5a5a5a5a5a5, tok^0x3c3c3c3c3c3c3c3c)
	}
	return sb.String()
}

// perturbProgram returns an in-place (same length) modification of
// program: the noise token of one comment line near frac of the file is
// overwritten. One chunk changes, every other chunk's bytes — and so
// their digests — stay identical, which is what the re-publish dedup leg
// relies on.
func perturbProgram(program string, frac float64) string {
	at := int(float64(len(program)) * frac)
	i := strings.Index(program[at:], "\n# block ")
	if i < 0 {
		i = strings.LastIndex(program[:at], "\n# block ")
		if i < 0 {
			return program
		}
		at = 0
	}
	// The 48-hex noise token sits after "\n# block NNNNNN " (16 bytes).
	tok := at + i + len("\n# block 000000 ")
	return program[:tok] + strings.Repeat("f", 48) + program[tok+48:]
}

// stageRigOptions applies the shared knobs of the cold/re-publish legs:
// session cache on (auth measured separately), staging cache on (it
// provides the warm no-transfer measurement), fast polling.
func stageRigOptions(opts Options, variant string) (Options, error) {
	o := opts
	o.SessionCache = true
	o.StagingCache = true
	// A tight poll keeps the cold-minus-warm subtraction from being
	// quantised by poll-tick phase (the figures' 9 s default would put
	// ±9 s of noise on an ~18 s measurement).
	o.PollInterval = time.Second
	switch variant {
	case "stock":
	case "chunked":
		o.ChunkedStaging = true
		o.ChunkBytes = stageChunkBytes
	case "chunked-gzip":
		o.ChunkedStaging = true
		o.ChunkBytes = stageChunkBytes
		o.WireCompression = true
	default:
		return o, fmt.Errorf("experiments: unknown stage variant %q", variant)
	}
	return o, nil
}

// AblationStage measures the staging data plane: cold stage wall-clock
// and WAN wire bytes, the re-publish delta (a small in-place edit of the
// executable), and resume after a mid-transfer fault. fileKB sizes the
// staged payload (default 1536 KB ≈ 18 s on the paper's ~85 KB/s uplink).
//
// With no explicit variants, every entry of StageVariants runs; the
// resume study always compares stock against chunked.
func AblationStage(opts Options, fileKB int, variants ...string) (*AblationResult, error) {
	if fileKB <= 0 {
		fileKB = 1536
	}
	if len(variants) == 0 {
		variants = StageVariants
	}
	// Wall-clock here is the measurement, and the chunked variants make
	// an order of magnitude more round-trips than the stock PUT: at the
	// default ×200 dilation their real scheduling cost inflates into
	// whole virtual seconds and biases the comparison against them. Cap
	// the dilation for this ablation.
	if opts.Scale <= 0 || opts.Scale > 40 {
		opts.Scale = 40
	}
	res := &AblationResult{Notes: []string{
		fmt.Sprintf("one %d KB executable staged across the ~85 KB/s WAN; chunk size %d KB", fileKB, stageChunkBytes>>10),
		"stage_s = cold invocation minus warm invocation (staging cache serves the warm one), so auth/submit/poll overhead subtracts out",
		"wan_wire_b is the probe's WAN net-out during the leg (requests, tokens and manifests included); chunk_wire_b counts chunk payload bytes only",
		"chunked-gzip's chunk payload shrinks by exactly payload_gzip_ratio; stage_speedup_x trails wire_reduction_x only by fixed per-request overhead and poll-tick phase",
		"re-publish rewrites one comment token in place mid-file: raw chunking re-ships one chunk, stock re-ships everything",
		"chunked-gzip ships the database's stored gzip stream: fewest cold bytes, but the edit perturbs the gzip stream from that point on, so its re-publish delta is worse than raw chunking — compression and delta-dedup trade off",
		"the shared netsim link serialises bytes FIFO: chunk pipelining hides per-request latency, never multiplies bandwidth — wins come from shipping fewer bytes",
		"resume: the WAN faults after 60% of the file; chunks committed before the fault are not re-shipped on retry, stock restarts from byte zero",
	}}
	program := compressibleProgram(fileKB << 10)
	programV2 := perturbProgram(program, 0.5)
	if len(program) != len(programV2) || program == programV2 {
		return nil, errors.New("experiments: stage payload perturbation failed")
	}

	for _, variant := range variants {
		o, err := stageRigOptions(opts, variant)
		if err != nil {
			return nil, err
		}
		r, err := newRig(o)
		if err != nil {
			return nil, err
		}
		rows, err := stageColdRepublish(r, variant, program, programV2)
		r.close()
		if err != nil {
			return nil, fmt.Errorf("experiments: stage %s: %w", variant, err)
		}
		res.Rows = append(res.Rows, rows...)
	}

	// Derived speedups against the stock baseline, so "reduced in
	// proportion to the gzip ratio" can be read straight off one row:
	// wire_reduction_x tracks the ratio exactly (bytes are deterministic),
	// stage_speedup_x approaches it from below by the fixed per-request
	// overhead (probe, commit and chunk-PUT round-trips).
	coldOf := func(variant, metric string) float64 {
		for _, row := range res.Rows {
			if row.Study == "stage-cold" && row.Variant == variant && row.Metric == metric {
				return row.Value
			}
		}
		return 0
	}
	for _, variant := range variants {
		if variant == "stock" {
			continue
		}
		if base, v := coldOf("stock", "stage_s"), coldOf(variant, "stage_s"); base > 0 && v > 0 {
			res.Rows = append(res.Rows, AblationRow{
				Study: "stage-cold", Variant: variant,
				Metric: "stage_speedup_x", Value: base / v,
			})
		}
		if base, v := coldOf("stock", "wan_wire_b"), coldOf(variant, "wan_wire_b"); base > 0 && v > 0 {
			res.Rows = append(res.Rows, AblationRow{
				Study: "stage-cold", Variant: variant,
				Metric: "wire_reduction_x", Value: base / v,
			})
		}
	}

	resumeRows, err := stageResume(opts, fileKB<<10)
	if err != nil {
		return nil, fmt.Errorf("experiments: stage resume: %w", err)
	}
	res.Rows = append(res.Rows, resumeRows...)
	return res, nil
}

// stageColdRepublish runs the cold, warm and re-publish legs on one
// booted rig and returns their rows.
func stageColdRepublish(r *rig, variant, program, programV2 string) ([]AblationRow, error) {
	// Prime the session cache with a separate tiny service so the cold
	// leg of the real payload pays for staging, not for the MyProxy
	// logon.
	if err := r.uploadViaPortal("warmup.gsh", "compute 1s\necho ok\n"); err != nil {
		return nil, err
	}
	if _, err := r.invokeGenerated("WarmupService", nil); err != nil {
		return nil, fmt.Errorf("warm-up: %w", err)
	}
	if err := r.uploadViaPortal("stagejob.gsh", program); err != nil {
		return nil, err
	}
	gzRatio := 0.0
	if rec, err := r.app.DB.Table(core.ExecutablesTable).Stat("StagejobService"); err == nil && rec.CompressedSize > 0 {
		gzRatio = float64(len(program)) / float64(rec.CompressedSize)
	}

	leg := func(fn func() error) (elapsed float64, wireB float64, stats core.StageStats, err error) {
		before := r.app.OnServe.StageStats()
		r.rec.Reset()
		start := r.clock.Now()
		if err := fn(); err != nil {
			return 0, 0, core.StageStats{}, err
		}
		elapsed = r.clock.Now().Sub(start).Seconds()
		wireB = seriesSummary(r.rec.Series())["net_out_total_b"]
		after := r.app.OnServe.StageStats()
		stats = core.StageStats{
			ChunkedUploads: after.ChunkedUploads - before.ChunkedUploads,
			ChunksShipped:  after.ChunksShipped - before.ChunksShipped,
			ChunksDeduped:  after.ChunksDeduped - before.ChunksDeduped,
			WireBytes:      after.WireBytes - before.WireBytes,
			LogicalBytes:   after.LogicalBytes - before.LogicalBytes,
			Resumes:        after.Resumes - before.Resumes,
			Fallbacks:      after.Fallbacks - before.Fallbacks,
		}
		return elapsed, wireB, stats, nil
	}
	invoke := func() error {
		_, err := r.invokeGenerated("StagejobService", nil)
		return err
	}

	coldS, coldWire, coldStats, err := leg(invoke)
	if err != nil {
		return nil, fmt.Errorf("cold invoke: %w", err)
	}
	warmS, _, _, err := leg(invoke)
	if err != nil {
		return nil, fmt.Errorf("warm invoke: %w", err)
	}
	stageS := coldS - warmS
	if stageS < 0 {
		stageS = 0
	}

	// Re-publish: delete the service, upload the in-place edited payload,
	// invoke. The staging cache entry dies with the service, so staging
	// happens again — what differs per variant is how many bytes it costs.
	if err := r.app.OnServe.DeleteService("StagejobService"); err != nil {
		return nil, err
	}
	if err := r.uploadViaPortal("stagejob.gsh", programV2); err != nil {
		return nil, err
	}
	_, repubWire, repubStats, err := leg(invoke)
	if err != nil {
		return nil, fmt.Errorf("re-publish invoke: %w", err)
	}

	row := func(metric string, v float64) AblationRow {
		return AblationRow{Study: "stage-cold", Variant: variant, Metric: metric, Value: v}
	}
	rows := []AblationRow{
		row("stage_s", stageS),
		row("invoke_cold_s", coldS),
		row("invoke_warm_s", warmS),
		row("logical_b", float64(len(program))),
		row("wan_wire_b", coldWire),
		row("payload_gzip_ratio", gzRatio),
		row("chunk_wire_b", float64(coldStats.WireBytes)),
		row("chunks_shipped", float64(coldStats.ChunksShipped)),
		row("chunks_deduped", float64(coldStats.ChunksDeduped)),
	}
	rrow := func(metric string, v float64) AblationRow {
		return AblationRow{Study: "stage-republish", Variant: variant, Metric: metric, Value: v}
	}
	rows = append(rows,
		rrow("wan_wire_b", repubWire),
		rrow("chunk_wire_b", float64(repubStats.WireBytes)),
		rrow("chunks_shipped", float64(repubStats.ChunksShipped)),
		rrow("chunks_deduped", float64(repubStats.ChunksDeduped)),
	)
	return rows, nil
}

// faultTransport errors every request body read once budget bytes have
// been consumed across the client's whole lifetime — an injected WAN
// fault that kills a transfer mid-flight. With a huge budget it doubles
// as a wire-byte counter.
type faultTransport struct {
	rt     http.RoundTripper
	budget atomic.Int64
}

var errInjectedFault = errors.New("experiments: injected WAN fault")

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.budget.Load() <= 0 {
		return nil, errInjectedFault
	}
	if req.Body != nil {
		req.Body = &faultBody{rc: req.Body, t: t}
	}
	return t.rt.RoundTrip(req)
}

func (t *faultTransport) consumed(initial int64) int64 { return initial - t.budget.Load() }

type faultBody struct {
	rc io.ReadCloser
	t  *faultTransport
}

func (b *faultBody) Read(p []byte) (int, error) {
	rem := b.t.budget.Load()
	if rem <= 0 {
		return 0, errInjectedFault
	}
	if int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := b.rc.Read(p)
	b.t.budget.Add(-int64(n))
	return n, err
}

func (b *faultBody) Close() error { return b.rc.Close() }

// stageResume drives the gridftp client directly (full protocol over the
// shaped WAN, the appliance path minus the portal) and compares what a
// retry after a mid-transfer fault costs: stock restarts from byte zero,
// chunked resumes from the committed chunk set.
func stageResume(opts Options, size int) ([]AblationRow, error) {
	r, err := newRig(opts)
	if err != nil {
		return nil, err
	}
	defer r.close()
	endpoints := r.env.Endpoints()
	ftpURL := ""
	for _, u := range endpoints.FTPURLs {
		if ftpURL == "" || u < ftpURL {
			ftpURL = u
		}
	}
	if ftpURL == "" {
		return nil, errors.New("experiments: no GridFTP endpoint")
	}
	dialer := &netsim.Dialer{Profile: r.wan, Probe: r.probe}
	mp := &myproxy.Client{Addr: endpoints.MyProxyAddr, Dial: func(network, addr string) (net.Conn, error) {
		return dialer.DialContext(context.Background(), network, addr)
	}}
	cred, err := mp.Get("alice", "pw", time.Hour)
	if err != nil {
		return nil, err
	}
	newClient := func(budget int64) (*gridftp.Client, *faultTransport) {
		ft := &faultTransport{rt: &http.Transport{DialContext: dialer.DialContext}}
		ft.budget.Store(budget)
		return &gridftp.Client{BaseURL: ftpURL, Cred: cred, HTTP: &http.Client{Transport: ft}}, ft
	}

	// Enough chunks that some are fully committed before the fault even
	// with every upload worker mid-chunk — a payload of only a few chunks
	// could die with all of them partially sent and nothing to resume.
	if size < 16*stageChunkBytes {
		size = 16 * stageChunkBytes
	}
	payload := []byte(compressibleProgram(size))
	faultAfter := int64(len(payload)) * 6 / 10
	const countOnly = int64(1) << 60

	var rows []AblationRow
	// Stock: the monolithic PUT dies at 60%; the retry restarts from byte
	// zero and re-ships the whole file.
	client, _ := newClient(faultAfter)
	if _, err := client.Put("resume-stock.dat", payload); err == nil {
		return nil, errors.New("experiments: stock transfer survived the injected fault")
	}
	retry, counter := newClient(countOnly)
	if _, err := retry.Put("resume-stock.dat", payload); err != nil {
		return nil, fmt.Errorf("stock retry: %w", err)
	}
	rows = append(rows,
		AblationRow{Study: "stage-resume", Variant: "stock", Metric: "wire_before_fault_b", Value: float64(faultAfter)},
		AblationRow{Study: "stage-resume", Variant: "stock", Metric: "retry_wire_b", Value: float64(counter.consumed(countOnly))},
	)

	// Chunked: chunks committed before the fault stay in the site's
	// content-addressed store; the retry's have-probe finds them and
	// ships only the remainder.
	client, _ = newClient(faultAfter)
	if _, err := client.PutChunked("resume-chunked.dat", payload, nil, stageChunkBytes); err == nil {
		return nil, errors.New("experiments: chunked transfer survived the injected fault")
	}
	retry, counter = newClient(countOnly)
	stats, err := retry.PutChunked("resume-chunked.dat", payload, nil, stageChunkBytes)
	if err != nil {
		return nil, fmt.Errorf("chunked retry: %w", err)
	}
	if !stats.Resumed {
		return nil, errors.New("experiments: chunked retry did not resume from committed chunks")
	}
	rows = append(rows,
		AblationRow{Study: "stage-resume", Variant: "chunked", Metric: "wire_before_fault_b", Value: float64(faultAfter)},
		AblationRow{Study: "stage-resume", Variant: "chunked", Metric: "retry_wire_b", Value: float64(counter.consumed(countOnly))},
		AblationRow{Study: "stage-resume", Variant: "chunked", Metric: "retry_chunks_shipped", Value: float64(stats.ChunksShipped)},
		AblationRow{Study: "stage-resume", Variant: "chunked", Metric: "retry_chunks_resumed", Value: float64(stats.ChunksDeduped)},
	)
	return rows, nil
}
