//go:build !race

package experiments

// raceEnabled is true when the race detector is active.
const raceEnabled = false
