package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/wsclient"
)

// PollHubVariants lists the output-collection ablation variants: the
// paper's one-poller-goroutine-per-invocation loop, the sharded hub that
// batches status into one GRAM round-trip per shard tick and fetches
// stdout only when its version changed, and the push collector that
// retires polling altogether — job transitions arrive over one
// long-lived gatekeeper event stream per session.
var PollHubVariants = []string{"stock", "hub", "push"}

// AblationPollHub measures the output-collection path under many
// concurrent invocations. All variants run with the session and staging
// caches on so the comparison isolates collection: what differs is only
// how job status reaches the appliance and when stdout bytes cross the
// WAN. Each variant invokes one slow, mostly-silent service invocations
// times simultaneously; with a 3-second poll against a job that emits a
// ~100-byte report every 27 seconds, most polls see unchanged output —
// the hub confirms those for zero bytes and zero disk writes, while the
// stock poller re-fetches the full snapshot every tick, and the push
// variant issues no steady-state status RPCs at all (completion is
// pushed, so its detection latency is delivery-bound, not
// poll-interval-bound).
//
// With no explicit variants, every entry of PollHubVariants runs.
func AblationPollHub(opts Options, invocations int, variants ...string) (*AblationResult, error) {
	if invocations <= 0 {
		invocations = 64
	}
	if len(variants) == 0 {
		variants = PollHubVariants
	}
	res := &AblationResult{Notes: []string{
		fmt.Sprintf("%d simultaneous invocations of a job emitting every 27s, polled every 3s", invocations),
		"session and staging caches on for all variants: only the collection path differs",
		"one warm-up invocation precedes the burst so the whole fleet shares one grid session",
		"stock: one poller per invocation, full stdout re-fetch per tick",
		"hub: one batched status RPC per shard tick, stdout fetched only when its version changed",
		"push: one /gram/events stream per session, zero steady-state status RPCs, detection at delivery latency",
		"detect_latency_s: mean job-end to invocation-terminal gap — poll variants are bounded by the tick, push by delivery",
	}}
	for _, variant := range variants {
		o := opts
		o.SessionCache = true
		o.StagingCache = true
		o.PollInterval = 3 * time.Second
		switch variant {
		case "stock":
		case "hub":
			o.PollHub = true
		case "push":
			o.PushEvents = true
		default:
			return nil, fmt.Errorf("experiments: unknown poll-hub variant %q", variant)
		}
		r, err := newRig(o)
		if err != nil {
			return nil, err
		}
		// Three 96-byte progress reports separated by 27 silent seconds:
		// most polls see an unchanged snapshot, and every re-fetch of the
		// full snapshot costs real bytes.
		program := fmt.Sprintf("emit 27s 3 %s\n", strings.Repeat("progress-report ", 6))
		if err := r.uploadViaPortal("ticker.gsh", program); err != nil {
			r.close()
			return nil, err
		}
		proxy, err := wsclient.ImportURL(r.app.BaseURL+"/services/TickerService", r.userHTTP)
		if err != nil {
			r.close()
			return nil, err
		}
		// Warm up the session and staging caches with one sequential
		// invocation: a simultaneous cold burst would stampede the session
		// cache (every invocation missing at once and authenticating its
		// own session), and the hub batches per session.
		ticket, err := proxy.Invoke("execute", nil)
		if err == nil {
			_, err = proxy.Invoke("wait", map[string]string{"ticket": ticket})
		}
		if err != nil {
			r.close()
			return nil, fmt.Errorf("experiments: poll-hub %s warm-up: %w", variant, err)
		}
		before := r.app.OnServe.CollectorStats()
		r.rec.Reset()
		start := r.clock.Now()
		var wg sync.WaitGroup
		errs := make(chan error, invocations)
		var mu sync.Mutex
		var tickets []string
		for i := 0; i < invocations; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ticket, err := proxy.Invoke("execute", nil)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				tickets = append(tickets, ticket)
				mu.Unlock()
				if _, err := proxy.Invoke("wait", map[string]string{"ticket": ticket}); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			r.close()
			return nil, fmt.Errorf("experiments: poll-hub %s: %w", variant, err)
		}
		elapsed := r.clock.Now().Sub(start).Seconds()
		stats := r.app.OnServe.CollectorStats()
		stats.StatusRPCs -= before.StatusRPCs
		stats.OutputFetches -= before.OutputFetches
		stats.OutputNotModified -= before.OutputNotModified
		stats.OutputBytes -= before.OutputBytes
		stats.PollDiskWrites -= before.PollDiskWrites
		detect, err := meanDetectLatency(r, tickets)
		if err != nil {
			r.close()
			return nil, fmt.Errorf("experiments: poll-hub %s: %w", variant, err)
		}
		res.Rows = append(res.Rows,
			AblationRow{Study: "poll-hub", Variant: variant, Metric: "makespan_s", Value: elapsed},
			AblationRow{Study: "poll-hub", Variant: variant, Metric: "status_rpcs", Value: float64(stats.StatusRPCs)},
			AblationRow{Study: "poll-hub", Variant: variant, Metric: "output_fetches", Value: float64(stats.OutputFetches)},
			AblationRow{Study: "poll-hub", Variant: variant, Metric: "output_not_modified", Value: float64(stats.OutputNotModified)},
			AblationRow{Study: "poll-hub", Variant: variant, Metric: "output_bytes_kb", Value: float64(stats.OutputBytes) / 1024},
			AblationRow{Study: "poll-hub", Variant: variant, Metric: "poll_disk_writes", Value: float64(stats.PollDiskWrites)},
			AblationRow{Study: "poll-hub", Variant: variant, Metric: "detect_latency_s", Value: detect},
		)
		if variant == "push" {
			es := r.app.OnServe.EventStats()
			res.Rows = append(res.Rows,
				AblationRow{Study: "poll-hub", Variant: variant, Metric: "events_delivered", Value: float64(es.EventsDelivered)},
				AblationRow{Study: "poll-hub", Variant: variant, Metric: "event_streams", Value: float64(es.StreamsOpened)},
				AblationRow{Study: "poll-hub", Variant: variant, Metric: "fallbacks_to_poll", Value: float64(es.FallbacksToPoll)},
			)
		}
		r.close()
	}
	return res, nil
}

// meanDetectLatency averages, over the burst's tickets, the gap between
// the grid job's scheduler-recorded end time and the instant the
// appliance marked the invocation terminal — the completion-detection
// latency the push channel is meant to shrink below the poll interval.
func meanDetectLatency(r *rig, tickets []string) (float64, error) {
	var sum float64
	n := 0
	for _, t := range tickets {
		inv, err := r.app.OnServe.Invocation(t)
		if err != nil {
			return 0, err
		}
		job, err := r.env.Grid.Job(inv.JobID)
		if err != nil {
			return 0, err
		}
		_, _, ended := job.Times()
		if ended.IsZero() || inv.EndedAt().IsZero() {
			continue
		}
		sum += inv.EndedAt().Sub(ended).Seconds()
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}
