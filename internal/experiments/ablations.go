package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/gsh"
	"repro/internal/metrics"
	"repro/internal/wsclient"
)

// AblationRow compares one design variant against the paper's stock
// behaviour.
type AblationRow struct {
	Study   string
	Variant string
	// Metric name and value (lower is better for all studies).
	Metric string
	Value  float64
}

// AblationResult is a set of comparison rows.
type AblationResult struct {
	Rows  []AblationRow
	Notes []string
}

// Render prints the comparison table.
func (r *AblationResult) Render() string {
	var sb strings.Builder
	sb.WriteString("== ablations (design choices called out in DESIGN.md) ==\n")
	sb.WriteString("study           variant          metric                 value\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-15s %-16s %-22s %10.2f\n", row.Study, row.Variant, row.Metric, row.Value)
	}
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// AblationDoubleWrite compares the paper's temp-file-then-database store
// path against direct-to-database streaming (§VIII-D3 calls the former
// "not optimal and may lead to performance drops").
func AblationDoubleWrite(opts Options, fileKB int) (*AblationResult, error) {
	if fileKB <= 0 {
		fileKB = 1024
	}
	res := &AblationResult{Notes: []string{
		"stock spills the upload to a temp file and reads it back before the DB insert",
		"direct streams the upload straight into the database",
	}}
	for _, variant := range []struct {
		name   string
		direct bool
	}{{"stock", false}, {"direct", true}} {
		o := opts
		o.DirectDBWrite = variant.direct
		r, err := newRig(o)
		if err != nil {
			return nil, err
		}
		program := string(gsh.Pad([]byte("echo x\n"), fileKB<<10))
		r.rec.Reset()
		start := r.clock.Now()
		if err := r.uploadViaPortal("ab.gsh", program); err != nil {
			r.close()
			return nil, err
		}
		elapsed := r.clock.Now().Sub(start).Seconds()
		sum := seriesSummary(r.rec.Series())
		res.Rows = append(res.Rows,
			AblationRow{Study: "double-write", Variant: variant.name, Metric: "disk_write_total_kb", Value: sum["disk_write_total_b"] / 1024},
			AblationRow{Study: "double-write", Variant: variant.name, Metric: "upload_latency_s", Value: elapsed},
		)
		r.close()
	}
	return res, nil
}

// AblationStagingCache compares re-uploading the executable on every
// invocation (the paper's behaviour) against a content-hash staging
// cache (the paper's suggested "upload strategy that avoids frequent
// uploads of the same file").
func AblationStagingCache(opts Options, fileKB, invocations int) (*AblationResult, error) {
	if fileKB <= 0 {
		fileKB = 512
	}
	if invocations <= 0 {
		invocations = 3
	}
	res := &AblationResult{Notes: []string{
		fmt.Sprintf("%d invocations of a %d KB executable over the ~85 KB/s WAN", invocations, fileKB),
		"the cache pays the upload once; stock pays it per invocation",
	}}
	for _, variant := range []struct {
		name  string
		cache bool
	}{{"stock", false}, {"cache", true}} {
		o := opts
		o.StagingCache = variant.cache
		// Fine polling keeps completion-detection quantisation from
		// drowning the staging-time difference under comparison.
		o.PollInterval = 3 * time.Second
		r, err := newRig(o)
		if err != nil {
			return nil, err
		}
		program := string(gsh.Pad([]byte("compute 1s\necho ok\n"), fileKB<<10))
		if err := r.uploadViaPortal("cachejob.gsh", program); err != nil {
			r.close()
			return nil, err
		}
		proxy, err := wsclient.ImportURL(r.app.BaseURL+"/services/CachejobService", r.userHTTP)
		if err != nil {
			r.close()
			return nil, err
		}
		r.rec.Reset()
		start := r.clock.Now()
		for i := 0; i < invocations; i++ {
			ticket, err := proxy.Invoke("execute", nil)
			if err != nil {
				r.close()
				return nil, err
			}
			if _, err := proxy.Invoke("wait", map[string]string{"ticket": ticket}); err != nil {
				r.close()
				return nil, err
			}
		}
		elapsed := r.clock.Now().Sub(start).Seconds()
		sum := seriesSummary(r.rec.Series())
		res.Rows = append(res.Rows,
			AblationRow{Study: "staging-cache", Variant: variant.name, Metric: "net_out_total_kb", Value: sum["net_out_total_b"] / 1024},
			AblationRow{Study: "staging-cache", Variant: variant.name, Metric: "makespan_s", Value: elapsed},
		)
		r.close()
	}
	return res, nil
}

// AblationPolling sweeps the tentative-poll interval, quantifying the
// paper's worry that the workaround "may result in a service customer
// that requests the application's output more often than necessary which
// may reduce the network performance even more".
func AblationPolling(opts Options, intervals []time.Duration) (*AblationResult, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{3 * time.Second, 9 * time.Second, 30 * time.Second}
	}
	res := &AblationResult{Notes: []string{
		"a 60s job polled at each interval; faster polling means more traffic and disk writes",
		"but slower polling delays completion detection (latency beyond job end)",
		"longpoll is the gatekeeper wait extension: one blocking request, near-zero latency",
	}}
	type variantCfg struct {
		name     string
		interval time.Duration
		longPoll bool
	}
	variants := []variantCfg{{name: "longpoll", longPoll: true}}
	for _, iv := range intervals {
		variants = append(variants, variantCfg{name: iv.String(), interval: iv})
	}
	for _, v := range variants {
		o := opts
		o.UseLongPoll = v.longPoll
		if v.interval > 0 {
			o.PollInterval = v.interval
		}
		r, err := newRig(o)
		if err != nil {
			return nil, err
		}
		if err := r.uploadViaPortal("polljob.gsh", "emit 6s 10 progress-line\n"); err != nil {
			r.close()
			return nil, err
		}
		proxy, err := wsclient.ImportURL(r.app.BaseURL+"/services/PolljobService", r.userHTTP)
		if err != nil {
			r.close()
			return nil, err
		}
		r.rec.Reset()
		start := r.clock.Now()
		ticket, err := proxy.Invoke("execute", nil)
		if err != nil {
			r.close()
			return nil, err
		}
		if _, err := proxy.Invoke("wait", map[string]string{"ticket": ticket}); err != nil {
			r.close()
			return nil, err
		}
		elapsed := r.clock.Now().Sub(start).Seconds()
		sum := seriesSummary(r.rec.Series())
		res.Rows = append(res.Rows,
			AblationRow{Study: "poll-interval", Variant: v.name, Metric: "poll_disk_write_kb", Value: sum["disk_write_total_b"] / 1024},
			AblationRow{Study: "poll-interval", Variant: v.name, Metric: "completion_latency_s", Value: elapsed - 60},
		)
		r.close()
	}
	return res, nil
}

// AblationCompression sweeps the database's modelled compression cost,
// showing the decompress CPU peak of Fig. 6 against the bytes the blob
// store holds.
func AblationCompression(opts Options, fileKB int) (*AblationResult, error) {
	if fileKB <= 0 {
		fileKB = 2048
	}
	res := &AblationResult{Notes: []string{
		"slower (stronger) compression raises the upload-time CPU cost",
		"the stored blob size depends only on gzip and the payload, not the model",
	}}
	for _, variant := range []struct {
		name string
		bps  float64
	}{{"fast-8MBps", 8 << 20}, {"slow-512KBps", 512 << 10}} {
		cost := metrics.DefaultCost()
		cost.CompressBps = variant.bps
		cost.DecompressBps = 3 * variant.bps
		o := opts
		o.Cost = &cost
		r, err := newRig(o)
		if err != nil {
			return nil, err
		}
		program := string(gsh.Pad([]byte("echo x\n"), fileKB<<10))
		r.rec.Reset()
		start := r.clock.Now()
		if err := r.uploadViaPortal("zip.gsh", program); err != nil {
			r.close()
			return nil, err
		}
		elapsed := r.clock.Now().Sub(start).Seconds()
		sum := seriesSummary(r.rec.Series())
		res.Rows = append(res.Rows,
			AblationRow{Study: "compression", Variant: variant.name, Metric: "upload_cpu_total_s", Value: sum["cpu_total_s"]},
			AblationRow{Study: "compression", Variant: variant.name, Metric: "upload_latency_s", Value: elapsed},
		)
		r.close()
	}
	return res, nil
}
