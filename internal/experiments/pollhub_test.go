package experiments

import "testing"

func TestAblationPollHub(t *testing.T) {
	const n = 12
	res, err := AblationPollHub(fastOpts(), n)
	if err != nil {
		t.Fatal(err)
	}
	vals := ablationMap(res)
	// The hub batches every in-flight job of a shard into one status
	// round-trip, so it must poll the gatekeeper far less often than n
	// independent pollers.
	sRPC, hRPC := vals["poll-hub/stock/status_rpcs"], vals["poll-hub/hub/status_rpcs"]
	if hRPC == 0 || hRPC >= sRPC {
		t.Fatalf("hub should batch status polls: stock %v RPCs vs hub %v", sRPC, hRPC)
	}
	// Two of three polls see unchanged output: the hub confirms those via
	// the version in the batch reply instead of re-fetching the snapshot.
	if vals["poll-hub/hub/output_not_modified"] == 0 {
		t.Fatalf("hub never skipped an unchanged snapshot: %v", vals)
	}
	if hb, sb := vals["poll-hub/hub/output_bytes_kb"], vals["poll-hub/stock/output_bytes_kb"]; hb >= sb {
		t.Fatalf("hub should fetch fewer output bytes: stock %v KB vs hub %v KB", sb, hb)
	}
	if hw, sw := vals["poll-hub/hub/poll_disk_writes"], vals["poll-hub/stock/poll_disk_writes"]; hw >= sw {
		t.Fatalf("hub should write output to disk less often: stock %v vs hub %v", sw, hw)
	}
	// Batching must not slow completion down: makespans stay comparable
	// (host jitter leaks through dilation, so sanity bound only).
	if vals["poll-hub/hub/makespan_s"] >= vals["poll-hub/stock/makespan_s"]*1.5 {
		t.Fatalf("hub grossly slower: %v", vals)
	}
	// The push column retires steady-state status polling: at most the
	// handful of bootstrap RPCs spent before each stream connects — far
	// below even the hub's one-per-shard-tick budget.
	pRPC := vals["poll-hub/push/status_rpcs"]
	if pRPC >= hRPC {
		t.Fatalf("push should out-batch the hub: hub %v RPCs vs push %v", hRPC, pRPC)
	}
	if pRPC > vals["poll-hub/push/event_streams"] {
		t.Fatalf("push steady state not RPC-free: %v status RPCs over %v streams",
			pRPC, vals["poll-hub/push/event_streams"])
	}
	if vals["poll-hub/push/events_delivered"] == 0 {
		t.Fatalf("push delivered no events: %v", vals)
	}
	// A healthy gatekeeper never forces the collector down the ladder.
	if vals["poll-hub/push/fallbacks_to_poll"] != 0 {
		t.Fatalf("push fell back to polling against a healthy server: %v", vals)
	}
	if vals["poll-hub/push/makespan_s"] >= vals["poll-hub/stock/makespan_s"]*1.5 {
		t.Fatalf("push grossly slower: %v", vals)
	}
}

func TestAblationPollHubUnknownVariant(t *testing.T) {
	if _, err := AblationPollHub(fastOpts(), 1, "nope"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}
