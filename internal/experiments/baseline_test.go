package experiments

import (
	"strings"
	"testing"
)

func TestBaselineJSE(t *testing.T) {
	res, err := BaselineJSE(fastOpts(), 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows %+v", res.Rows)
	}
	byModel := map[string]BaselineRow{}
	for _, row := range res.Rows {
		byModel[row.Model] = row
	}
	direct, saas := byModel["jse-direct"], byModel["onserve-saas"]
	// Both paths must actually move the executable across the WAN.
	if direct.WANBytes < 256<<10 || saas.WANBytes < 256<<10 {
		t.Fatalf("staging missing: direct %v, saas %v bytes", direct.WANBytes, saas.WANBytes)
	}
	// The user's scripting burden is the paper's point: 6 protocol
	// interactions collapse to 2.
	if direct.UserSteps <= saas.UserSteps {
		t.Fatalf("steps: direct %d, saas %d", direct.UserSteps, saas.UserSteps)
	}
	// Latencies are the same order of magnitude — the SaaS layer does
	// not change the dominant staging cost.
	if saas.LatencyS > direct.LatencyS*3 || direct.LatencyS > saas.LatencyS*3 {
		t.Fatalf("latencies diverge: direct %.1fs, saas %.1fs", direct.LatencyS, saas.LatencyS)
	}
	if !strings.Contains(res.Render(), "jse-direct") {
		t.Fatal("render malformed")
	}
}
