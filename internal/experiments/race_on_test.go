//go:build race

package experiments

// raceEnabled is true when the race detector is active. Its ~10x CPU
// inflation bleeds into virtual time at high dilation, so timing-tight
// assertions are relaxed under -race (byte/shape assertions still hold).
const raceEnabled = true
