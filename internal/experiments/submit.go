package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/gsh"
	"repro/internal/wsclient"
)

// SubmitVariants lists the submission-side ablation variants: the
// paper's one-RPC-chain-per-invocation front-end (stats fetch, WAN
// staging upload, GRAM submit) against the batched front-end that
// single-flights cold stagings, coalesces submissions into one
// gatekeeper round-trip per window, and collapses concurrent stats
// fetches onto one in-flight request.
var SubmitVariants = []string{"stock", "batched"}

// AblationSubmit measures the submission path under a simultaneous cold
// burst. Both variants run with the session cache on and the staging
// cache off, so what differs is only how stats, staging bytes and
// submit RPCs reach the grid: stock pays one stats round-trip, one full
// WAN upload and one submit RPC per invocation; batched shares one
// in-flight stats fetch, one staging transfer per site, and one
// submit-batch RPC per coalescing window.
//
// With no explicit variants, every entry of SubmitVariants runs.
func AblationSubmit(opts Options, invocations int, variants ...string) (*AblationResult, error) {
	if invocations <= 0 {
		invocations = 64
	}
	if len(variants) == 0 {
		variants = SubmitVariants
	}
	res := &AblationResult{Notes: []string{
		fmt.Sprintf("%d simultaneous cold invocations of one 192 KB executable", invocations),
		"session cache on, staging cache off for both variants: only the submission front-end differs",
		"one warm-up invocation precedes the burst so the whole fleet shares one grid session",
		"stock: one stats RPC, one WAN upload and one submit RPC per invocation",
		"batched: coalesced staging + submit hub (2 s window) + stats singleflight (10 s TTL)",
	}}
	for _, variant := range variants {
		o := opts
		o.SessionCache = true
		o.StagingCache = false
		o.PollInterval = 3 * time.Second
		switch variant {
		case "stock":
		case "batched":
			o.CoalesceStaging = true
			o.SubmitHub = true
			o.SubmitHubWindow = 2 * time.Second
			o.StatsTTL = 10 * time.Second
		default:
			return nil, fmt.Errorf("experiments: unknown submit variant %q", variant)
		}
		r, err := newRig(o)
		if err != nil {
			return nil, err
		}
		// A padded executable makes each redundant WAN staging cost real
		// virtual seconds (~2.3 s at the paper's ~85 KB/s uplink).
		program := string(gsh.Pad([]byte("compute 1s\necho ok\n"), 192<<10))
		if err := r.uploadViaPortal("burstjob.gsh", program); err != nil {
			r.close()
			return nil, err
		}
		proxy, err := wsclient.ImportURL(r.app.BaseURL+"/services/BurstjobService", r.userHTTP)
		if err != nil {
			r.close()
			return nil, err
		}
		// Warm up the session cache with one sequential invocation: a
		// simultaneous cold burst would stampede the session cache (every
		// invocation missing at once and authenticating its own session),
		// and the submit hub batches per session.
		ticket, err := proxy.Invoke("execute", nil)
		if err == nil {
			_, err = proxy.Invoke("wait", map[string]string{"ticket": ticket})
		}
		if err != nil {
			r.close()
			return nil, fmt.Errorf("experiments: submit %s warm-up: %w", variant, err)
		}
		before := r.app.OnServe.SubmitStats()
		r.rec.Reset()
		start := r.clock.Now()
		var wg sync.WaitGroup
		errs := make(chan error, invocations)
		for i := 0; i < invocations; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ticket, err := proxy.Invoke("execute", nil)
				if err != nil {
					errs <- err
					return
				}
				if _, err := proxy.Invoke("wait", map[string]string{"ticket": ticket}); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			r.close()
			return nil, fmt.Errorf("experiments: submit %s: %w", variant, err)
		}
		elapsed := r.clock.Now().Sub(start).Seconds()
		stats := r.app.OnServe.SubmitStats()
		stats.Uploads -= before.Uploads
		stats.UploadsCoalesced -= before.UploadsCoalesced
		stats.SubmitRPCs -= before.SubmitRPCs
		stats.SubmitsBatched -= before.SubmitsBatched
		stats.StatsRPCs -= before.StatsRPCs
		stats.StatsCollapsed -= before.StatsCollapsed
		res.Rows = append(res.Rows,
			AblationRow{Study: "submit", Variant: variant, Metric: "makespan_s", Value: elapsed},
			AblationRow{Study: "submit", Variant: variant, Metric: "uploads", Value: float64(stats.Uploads)},
			AblationRow{Study: "submit", Variant: variant, Metric: "uploads_coalesced", Value: float64(stats.UploadsCoalesced)},
			AblationRow{Study: "submit", Variant: variant, Metric: "submit_rpcs", Value: float64(stats.SubmitRPCs)},
			AblationRow{Study: "submit", Variant: variant, Metric: "submits_batched", Value: float64(stats.SubmitsBatched)},
			AblationRow{Study: "submit", Variant: variant, Metric: "stats_rpcs", Value: float64(stats.StatsRPCs)},
			AblationRow{Study: "submit", Variant: variant, Metric: "stats_collapsed", Value: float64(stats.StatsCollapsed)},
		)
		r.close()
	}
	return res, nil
}
