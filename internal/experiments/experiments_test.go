package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// fastOpts dilates time aggressively so each experiment finishes in well
// under a second of wall time.
func fastOpts() Options {
	// 300x keeps each run around a second of wall time while leaving real
	// CPU work (gzip, hashing, syscalls) small relative to virtual time.
	// The race detector inflates real CPU ~10x, so dilate less there.
	if raceEnabled {
		return Options{Scale: 100}
	}
	return Options{Scale: 300}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary
	// "It is notable that the hard disk utilization is very low as well
	// as the amount of data sent to the Grid": the executable is tiny, so
	// total outbound traffic is dominated by protocol + credentials and
	// stays small.
	if sum["net_out_total_b"] > 200<<10 {
		t.Fatalf("small-file invocation sent %v bytes to the grid", sum["net_out_total_b"])
	}
	if sum["net_out_total_b"] < 1<<10 {
		t.Fatalf("implausibly little traffic: %v bytes", sum["net_out_total_b"])
	}
	// Two CPU phases exist (decompress, then submit): peak utilisation is
	// visible but not saturated.
	if sum["cpu_peak_pct"] <= 0 {
		t.Fatal("no CPU activity recorded")
	}
	// Periodic disk writes from the tentative output polling.
	if sum["disk_write_peaks"] < 2 {
		t.Fatalf("expected periodic poll-induced disk writes, got %v peaks", sum["disk_write_peaks"])
	}
	if !strings.Contains(res.Render(), "fig6") {
		t.Fatal("render missing title")
	}
	if !strings.Contains(res.CSV(), "t_sec") {
		t.Fatal("csv missing header")
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary
	// The ~5MB file crosses the WAN once.
	if sum["net_out_total_b"] < 5<<20 {
		t.Fatalf("upload bytes %v, want >= 5MB", sum["net_out_total_b"])
	}
	// "The transfer rate is almost constant all the time at about 80 to
	// 90 KB/s" — allow a generous band for scheduler jitter.
	if rate := sum["upload_rate_kbps"]; rate < 55 || rate > 110 {
		t.Fatalf("upload plateau rate %.1f KB/s, want ~85", rate)
	}
	// "It takes about 60 seconds to upload the file to the Grid node."
	if plateau := sum["upload_plateau_s"]; plateau < 39 || plateau > 100 {
		t.Fatalf("upload plateau %v s, want ~60", plateau)
	}
	// First disk peak: the temp spill of the full file.
	if sum["disk_write_peak_b"] < 4<<20 {
		t.Fatalf("temp spill peak %v bytes", sum["disk_write_peak_b"])
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary
	// The LAN delivers the ~5MB file to the portal.
	if sum["net_in_total_b"] < 5<<20 {
		t.Fatalf("portal received %v bytes", sum["net_in_total_b"])
	}
	// Fast network: the whole generation finishes in tens of seconds, not
	// the ~2 minutes the WAN staging of Fig. 7 takes. The bound carries
	// slack for host scheduling stalls, which dilate into virtual time;
	// under -race the real gzip/hash work of the 5MB payload inflates it
	// too much for any bound to be meaningful.
	if !raceEnabled && sum["duration_s"] > 90 {
		t.Fatalf("upload+generate took %v s over the LAN", sum["duration_s"])
	}
	// The double-write flaw: the file hits the disk twice — the 5MB temp
	// spill plus the database insert (slightly smaller after gzip even on
	// near-incompressible content).
	if sum["disk_write_total_b"] < 8<<20 {
		t.Fatalf("disk writes %v bytes, want ~2x the upload", sum["disk_write_total_b"])
	}
	// CPU is busy (reception, container, compression, service build).
	if sum["cpu_peak_pct"] < 20 {
		t.Fatalf("cpu peak %v%%", sum["cpu_peak_pct"])
	}
}

func TestScalabilitySweep(t *testing.T) {
	res, err := Scalability(fastOpts(), []int{1, 4}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	byKey := map[string]ScalabilityRow{}
	for _, row := range res.Rows {
		byKey[row.Scenario+string(rune('0'+row.Concurrency))] = row
	}
	// WAN-bound invocations degrade with concurrency: 4 concurrent
	// stagings on a shared 85 KB/s link take notably longer than 1.
	inv1, inv4 := byKey["invoke1"], byKey["invoke4"]
	if inv4.MakespanS < inv1.MakespanS*1.8 {
		t.Fatalf("WAN contention missing: 1->%vs, 4->%vs", inv1.MakespanS, inv4.MakespanS)
	}
	// LAN uploads scale far better: makespan grows sublinearly.
	up1, up4 := byKey["upload1"], byKey["upload4"]
	if up4.MakespanS > up1.MakespanS*4 {
		t.Fatalf("LAN uploads degraded superlinearly: 1->%vs, 4->%vs", up1.MakespanS, up4.MakespanS)
	}
	if !strings.Contains(res.Render(), "scalability") || !strings.Contains(res.CSV(), "scenario,") {
		t.Fatal("render/csv malformed")
	}
}

func TestSmallJobs(t *testing.T) {
	res, err := SmallJobs(fastOpts(), 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsPerMinute <= 0 {
		t.Fatalf("throughput %v", res.JobsPerMinute)
	}
	// "The additional overhead added by Cyberaide onServe should be quite
	// small compared to the runtime of a typical executable": per-job
	// overhead stays bounded (well under a minute for tiny files).
	if res.OverheadS > 60 {
		t.Fatalf("per-job overhead %v s", res.OverheadS)
	}
	if !strings.Contains(res.Render(), "jobs/min") {
		t.Fatal("render malformed")
	}
}

func TestAblationDoubleWrite(t *testing.T) {
	res, err := AblationDoubleWrite(fastOpts(), 512)
	if err != nil {
		t.Fatal(err)
	}
	vals := ablationMap(res)
	if vals["double-write/stock/disk_write_total_kb"] <= vals["double-write/direct/disk_write_total_kb"] {
		t.Fatalf("direct write should reduce disk traffic: %v", vals)
	}
}

func TestAblationStagingCache(t *testing.T) {
	res, err := AblationStagingCache(fastOpts(), 768, 3)
	if err != nil {
		t.Fatal(err)
	}
	vals := ablationMap(res)
	stock, cache := vals["staging-cache/stock/net_out_total_kb"], vals["staging-cache/cache/net_out_total_kb"]
	if cache >= stock/2 {
		t.Fatalf("cache should cut WAN traffic ~3x: stock %v KB vs cache %v KB", stock, cache)
	}
	// Byte counts are deterministic; makespans inherit host-jitter through
	// time dilation, so the latency claim only gets a sanity margin.
	if vals["staging-cache/cache/makespan_s"] >= vals["staging-cache/stock/makespan_s"]*1.5 {
		t.Fatalf("cache grossly slower: %v", vals)
	}
}

func TestAblationPolling(t *testing.T) {
	res, err := AblationPolling(fastOpts(), []time.Duration{3 * time.Second, 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	vals := ablationMap(res)
	if vals["poll-interval/3s/poll_disk_write_kb"] <= vals["poll-interval/30s/poll_disk_write_kb"] {
		t.Fatalf("faster polling should write more: %v", vals)
	}
}

func TestAblationCompression(t *testing.T) {
	res, err := AblationCompression(fastOpts(), 8192)
	if err != nil {
		t.Fatal(err)
	}
	vals := ablationMap(res)
	if vals["compression/slow-512KBps/upload_cpu_total_s"] <= vals["compression/fast-8MBps/upload_cpu_total_s"] {
		t.Fatalf("slower compression should burn more CPU: %v", vals)
	}
}

func ablationMap(res *AblationResult) map[string]float64 {
	out := map[string]float64{}
	for _, row := range res.Rows {
		out[row.Study+"/"+row.Variant+"/"+row.Metric] = row.Value
	}
	return out
}

func TestRecorderResetIsolation(t *testing.T) {
	// Sanity: Reset really drops setup-phase traffic from the series.
	r, err := newRig(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if err := r.uploadViaPortal("x.gsh", "echo x\n"); err != nil {
		t.Fatal(err)
	}
	r.rec.Reset()
	series := r.rec.Series()
	var total float64
	for _, s := range series {
		total += s.NetInBytes + s.NetOutBytes + s.DiskWriteBytes
	}
	if total != 0 {
		t.Fatalf("series not empty after reset: %v", total)
	}
	_ = metrics.CSV(series)
}
