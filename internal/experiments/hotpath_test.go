package experiments

import "testing"

func TestAblationHotPath(t *testing.T) {
	res, err := AblationHotPath(fastOpts(), 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	vals := ablationMap(res)
	// Byte counts are deterministic under the shaped links: each lever
	// removes grid-bound round-trips (MyProxy logon, stats SOAP call), so
	// warm must send strictly less than stock.
	stock, warm := vals["hot-path/stock/net_out_total_kb"], vals["hot-path/warm/net_out_total_kb"]
	if warm >= stock {
		t.Fatalf("warm path should cut grid traffic: stock %v KB vs warm %v KB", stock, warm)
	}
	if vals["hot-path/session-cache/net_out_total_kb"] >= stock {
		t.Fatalf("session cache alone should cut grid traffic: %v", vals)
	}
	// Warm also skips the per-invocation auth burn and repeat decompress.
	if vals["hot-path/warm/cpu_total_s"] >= vals["hot-path/stock/cpu_total_s"] {
		t.Fatalf("warm path should burn less CPU: %v", vals)
	}
	// Makespans inherit host jitter through time dilation: sanity only.
	if vals["hot-path/warm/makespan_s"] >= vals["hot-path/stock/makespan_s"]*1.5 {
		t.Fatalf("warm path grossly slower: %v", vals)
	}
}

func TestAblationHotPathUnknownVariant(t *testing.T) {
	if _, err := AblationHotPath(fastOpts(), 64, 1, "nope"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestAblationGroupCommit(t *testing.T) {
	res, err := AblationGroupCommit(32, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	vals := ablationMap(res)
	if vals["group-commit/stock/wal_syncs"] != 0 {
		t.Fatalf("stock path should not fsync per put: %v", vals)
	}
	if vals["group-commit/group/wal_syncs"] < 1 {
		t.Fatalf("group commit never synced: %v", vals)
	}
	if vals["group-commit/group/wal_writes"] > vals["group-commit/stock/wal_writes"] {
		t.Fatalf("batching should not increase WAL writes: %v", vals)
	}
	if vals["group-commit/stock/wal_writes"] != 64 {
		t.Fatalf("stock writes %v, want one per put", vals["group-commit/stock/wal_writes"])
	}
}
