package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/gsh"
	"repro/internal/wsclient"
)

// ScalabilityRow is one cell of the §VIII-D sweep.
type ScalabilityRow struct {
	Scenario    string  // "invoke" or "upload"
	Link        string  // "wan" (invoke staging path) or "lan" (upload path)
	Concurrency int     //
	FileKB      int     //
	MakespanS   float64 // virtual seconds until all requests completed
	PerReqS     float64 // makespan / concurrency
	ThroughputR float64 // requests per virtual minute
	CPUPeakPct  float64
}

// ScalabilityResult is the full sweep.
type ScalabilityResult struct {
	Rows  []ScalabilityRow
	Notes []string
}

// Render prints the table the paper's §VIII-D discusses qualitatively.
func (r *ScalabilityResult) Render() string {
	var sb strings.Builder
	sb.WriteString("== scalability (§VIII-D): concurrency sweep ==\n")
	sb.WriteString("scenario  link  conc  file_kb  makespan_s  per_req_s  req_per_min  cpu_peak_pct\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-9s %-5s %4d  %7d  %10.1f  %9.1f  %11.2f  %12.1f\n",
			row.Scenario, row.Link, row.Concurrency, row.FileKB,
			row.MakespanS, row.PerReqS, row.ThroughputR, row.CPUPeakPct)
	}
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// CSV renders the sweep for EXPERIMENTS.md.
func (r *ScalabilityResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("scenario,link,concurrency,file_kb,makespan_s,per_req_s,req_per_min,cpu_peak_pct\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s,%s,%d,%d,%.1f,%.1f,%.2f,%.1f\n",
			row.Scenario, row.Link, row.Concurrency, row.FileKB,
			row.MakespanS, row.PerReqS, row.ThroughputR, row.CPUPeakPct)
	}
	return sb.String()
}

// Scalability runs the §VIII-D stress scenarios: multiple simultaneous
// Web-service invocations (whose staging shares the WAN) and multiple
// simultaneous portal uploads (which share the LAN and the appliance's
// CPU/disk). The paper's claim: "the solution's scalability is limited
// either by the system's hard disk I/O-performance or its network
// connection's performance", not by CPU or memory.
func Scalability(opts Options, concurrencies []int, fileKB int) (*ScalabilityResult, error) {
	if len(concurrencies) == 0 {
		concurrencies = []int{1, 2, 4, 8}
	}
	if fileKB <= 0 {
		fileKB = 256
	}
	out := &ScalabilityResult{Notes: []string{
		"invoke: staging shares the ~85 KB/s WAN; makespan grows ~linearly with concurrency",
		"upload: the 1000 Mbit/s LAN is not the bottleneck; CPU/disk costs dominate",
	}}
	for _, conc := range concurrencies {
		row, err := scalabilityInvoke(opts, conc, fileKB)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
	}
	for _, conc := range concurrencies {
		row, err := scalabilityUpload(opts, conc, fileKB)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

// scalabilityInvoke measures conc simultaneous invocations of a service
// whose executable is fileKB large (staging contends on the WAN).
func scalabilityInvoke(opts Options, conc, fileKB int) (*ScalabilityRow, error) {
	r, err := newRig(opts)
	if err != nil {
		return nil, err
	}
	defer r.close()
	program := string(gsh.Pad([]byte("compute 1s\necho done ${tag}\n"), fileKB<<10))
	if err := r.uploadViaPortal("sweep.gsh", program, "tag"); err != nil {
		return nil, err
	}
	proxy, err := wsclient.ImportURL(r.app.BaseURL+"/services/SweepService", r.userHTTP)
	if err != nil {
		return nil, err
	}

	r.rec.Reset()
	start := r.clock.Now()
	var wg sync.WaitGroup
	errs := make(chan error, conc)
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ticket, err := proxy.Invoke("execute", map[string]string{"tag": fmt.Sprint(i)})
			if err != nil {
				errs <- err
				return
			}
			if _, err := proxy.Invoke("wait", map[string]string{"ticket": ticket}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, fmt.Errorf("experiments: invoke sweep (conc=%d): %w", conc, err)
	}
	makespan := r.clock.Now().Sub(start)
	return buildRow("invoke", "wan", conc, fileKB, makespan, r), nil
}

// scalabilityUpload measures conc simultaneous portal uploads.
func scalabilityUpload(opts Options, conc, fileKB int) (*ScalabilityRow, error) {
	r, err := newRig(opts)
	if err != nil {
		return nil, err
	}
	defer r.close()
	program := string(gsh.Pad([]byte("echo stored\n"), fileKB<<10))

	r.rec.Reset()
	start := r.clock.Now()
	var wg sync.WaitGroup
	errs := make(chan error, conc)
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("up%c.gsh", 'a'+i)
			if err := r.uploadViaPortal(name, program); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, fmt.Errorf("experiments: upload sweep (conc=%d): %w", conc, err)
	}
	makespan := r.clock.Now().Sub(start)
	return buildRow("upload", "lan", conc, fileKB, makespan, r), nil
}

func buildRow(scenario, link string, conc, fileKB int, makespan time.Duration, r *rig) *ScalabilityRow {
	sum := seriesSummary(r.rec.Series())
	row := &ScalabilityRow{
		Scenario:    scenario,
		Link:        link,
		Concurrency: conc,
		FileKB:      fileKB,
		MakespanS:   makespan.Seconds(),
		PerReqS:     makespan.Seconds() / float64(conc),
		CPUPeakPct:  sum["cpu_peak_pct"],
	}
	if makespan > 0 {
		row.ThroughputR = float64(conc) / makespan.Minutes()
	}
	return row
}
