package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/tenant"
)

// Tenancy ablation defaults.
const (
	// tenancyBurst is the hog's invocation burst when the caller passes 0.
	tenancyBurst = 1000
	// tenancyProbes is how many paced victim invocations sample latency
	// while the burst is in flight.
	tenancyProbes = 25
	// tenancyWarmup sizes the solo-latency baseline taken before the
	// burst starts.
	tenancyWarmup = 5
	// tenancySlack multiplies the victim's solo p50 into the fair-share
	// bound: with the hog capped at its in-flight quota the victim's
	// probes never queue, so p99 stays within a small factor of solo.
	tenancySlack = 3.0
)

// tenancyConfig is the two-tenant control-plane setup the ablation
// enforces: the victim gets the higher weight and the hog a hard
// in-flight cap well below the global one, so a saturating hog can
// never starve the victim of admission slots.
func tenancyConfig() *tenant.Config {
	return &tenant.Config{
		Owners: []tenant.OwnerConfig{
			{Name: "victim", Weight: 4, MaxInFlight: 4},
			{Name: "hog", Weight: 1, MaxInFlight: 8},
		},
		Keys: []tenant.KeyConfig{
			{Key: "victim-secret", Owner: "victim"},
			{Key: "hog-secret", Owner: "hog"},
		},
		Limits: tenant.LimitsConfig{
			MaxInFlight:    16,
			QueueDepth:     64,
			QueueTimeoutMS: 60000,
		},
	}
}

// AblationTenancy is the noisy-neighbor study: one hog tenant fires a
// large invocation burst at the appliance while a victim tenant keeps
// issuing paced probe invocations of its own service. Without the
// control plane the burst monopolises the grid and the victim's p99
// invoke latency blows past any bound; with -tenancy on, the hog's
// in-flight quota caps how much grid the burst can hold, queued
// admissions beyond the bound are shed with 429s, and the victim's p99
// stays within tenancySlack x its solo p50. The tenancy-on run also
// checks the audit log: every admitted or denied action appears exactly
// once, and each record's trace ID resolves to its tenant.admit span.
func AblationTenancy(opts Options, burst int) (*AblationResult, error) {
	if burst <= 0 {
		burst = tenancyBurst
	}
	// The burst multiplies every real-scheduling cost; cap the dilation
	// like the other burst ablations do.
	if opts.Scale <= 0 || opts.Scale > 40 {
		opts.Scale = 40
	}
	res := &AblationResult{Notes: []string{
		fmt.Sprintf("hog fires %d concurrent invocations while the victim issues %d paced probes of its own service", burst, tenancyProbes),
		fmt.Sprintf("fair-share bound = %.0fx the victim's solo p50, measured per variant before the burst", tenancySlack),
		"tenancy-off: the burst monopolises the grid, so the victim's probes queue behind ~all of it and p99 blows past the bound",
		"tenancy-on: the hog holds at most its in-flight quota (8 of 16 slots), overflow is shed with 429s, and the victim's p99 stays within the bound (bound_ok = 1)",
		"tenancy-on audits every action exactly once: audit_exactly_once = 1 means ok-invoke records carry unique tickets and counts match the client's view",
		"trace_resolvable = 1 means every audit record carries a well-formed trace ID and a sampled victim record's ID matches the tenant.admit span in its invocation trace",
	}}

	off, err := tenancyRun(opts, "tenancy-off", burst, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: tenancy off: %w", err)
	}
	res.Rows = append(res.Rows, off...)

	on, err := tenancyRun(opts, "tenancy-on", burst, tenancyConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: tenancy on: %w", err)
	}
	res.Rows = append(res.Rows, on...)
	return res, nil
}

// tenancyRun executes one variant: boot, publish the victim's service,
// baseline the victim solo, fire the hog burst, probe through it, and
// (tenancy on) audit the books.
func tenancyRun(o Options, variant string, burst int, cfg *tenant.Config) ([]AblationRow, error) {
	o.Tenancy = cfg
	// The staging + session caches keep per-invocation overhead flat so
	// the contended resource is the grid itself — identical in both
	// variants, so the comparison isolates the control plane.
	o.StagingCache = true
	o.SessionCache = true
	o.Tracing = cfg != nil // the on-variant verifies audit <-> trace linkage
	r, err := newRig(o)
	if err != nil {
		return nil, err
	}
	defer r.close()

	victimKey, hogKey := "", ""
	if cfg != nil {
		victimKey, hogKey = "victim-secret", "hog-secret"
	}
	if err := r.uploadWithKey("probejob.gsh", "compute 1s\necho ok\n", victimKey); err != nil {
		return nil, err
	}
	const service = "ProbejobService"

	// Solo baseline: the victim's latency with nobody else on the box.
	solo := make([]float64, 0, tenancyWarmup)
	for i := 0; i < tenancyWarmup; i++ {
		ms, err := r.probeOnce(service, victimKey, fmt.Sprintf("warm%d", i))
		if err != nil {
			return nil, fmt.Errorf("warmup probe %d: %w", i, err)
		}
		solo = append(solo, ms)
	}
	soloP50 := pctile(solo, 50)
	bound := tenancySlack * soloP50

	// Fire the burst; probe through it. The hog never waits for job
	// completion — the jobs contend for the grid either way — so every
	// burst goroutine is just one admission attempt.
	var (
		wg          sync.WaitGroup
		hogAdmitted atomic.Uint64
		hogDenied   atomic.Uint64
	)
	hogErrs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, status, err := r.invokeJSON(service, hogKey, map[string]string{"x": fmt.Sprintf("hog%d", i)})
			switch {
			case err != nil:
				hogErrs <- err
			case status == http.StatusOK:
				hogAdmitted.Add(1)
			case status == http.StatusTooManyRequests:
				hogDenied.Add(1)
			default:
				hogErrs <- fmt.Errorf("hog invoke %d: status %d", i, status)
			}
		}()
	}

	probes := make([]float64, 0, tenancyProbes)
	var lastTicket string
	for i := 0; i < tenancyProbes; i++ {
		start := r.clock.Now()
		ticket, status, err := r.invokeJSON(service, victimKey, map[string]string{"x": fmt.Sprintf("probe%d", i)})
		if err != nil {
			return nil, fmt.Errorf("victim probe %d: %w", i, err)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("victim probe %d: status %d (the victim must always admit)", i, status)
		}
		if err := r.waitTicket(ticket); err != nil {
			return nil, fmt.Errorf("victim probe %d: %w", i, err)
		}
		probes = append(probes, float64(r.clock.Now().Sub(start).Milliseconds()))
		lastTicket = ticket
	}
	wg.Wait()
	close(hogErrs)
	if err := <-hogErrs; err != nil {
		return nil, err
	}

	p99 := pctile(probes, 99)
	row := func(metric string, v float64) AblationRow {
		return AblationRow{Study: "noisy-neighbor", Variant: variant, Metric: metric, Value: v}
	}
	rows := []AblationRow{
		row("burst", float64(burst)),
		row("victim_probes", float64(tenancyProbes)),
		row("victim_solo_p50_ms", soloP50),
		row("victim_p50_ms", pctile(probes, 50)),
		row("victim_p99_ms", p99),
		row("fair_share_bound_ms", bound),
		row("bound_ok", b2f(p99 <= bound)),
		row("hog_admitted", float64(hogAdmitted.Load())),
		row("hog_denied", float64(hogDenied.Load())),
	}
	if cfg != nil {
		auditRows, err := r.tenancyAuditRows(variant, lastTicket,
			int(hogAdmitted.Load())+tenancyWarmup+tenancyProbes, int(hogDenied.Load()))
		if err != nil {
			return nil, err
		}
		rows = append(rows, auditRows...)
	}
	return rows, nil
}

// tenancyAuditRows pulls /api/audit and cross-checks it against the
// client's view of the run: every admitted invoke exactly once (unique
// tickets), every denial accounted, trace IDs well formed, and one
// sampled record's ID resolving to the tenant.admit span of its
// invocation trace.
func (r *rig) tenancyAuditRows(variant, sampleTicket string, wantOK, wantDenied int) ([]AblationRow, error) {
	resp, err := r.userHTTP.Get(r.app.BaseURL + "/api/audit?n=100000")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("audit fetch failed (%d): %s", resp.StatusCode, body)
	}
	var doc struct {
		Records []tenant.Record `json:"records"`
		Dropped uint64          `json:"dropped"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, err
	}

	okInvokes, denied := 0, 0
	tickets := map[string]bool{}
	dupTickets := false
	tracesOK := true
	var sampleTrace string
	for _, rec := range doc.Records {
		if !hex32(rec.TraceID) {
			tracesOK = false
		}
		switch {
		case rec.Verb == string(tenant.VerbInvoke) && rec.Outcome == "ok":
			okInvokes++
			if rec.Ticket == "" || tickets[rec.Ticket] {
				dupTickets = true
			}
			tickets[rec.Ticket] = true
			if rec.Ticket == sampleTicket {
				sampleTrace = rec.TraceID
			}
		case rec.Outcome == "denied":
			denied++
		}
	}
	exactlyOnce := okInvokes == wantOK && denied == wantDenied && !dupTickets && doc.Dropped == 0

	// Resolve the sampled record back to its span tree: the invocation's
	// trace must contain the tenant.admit span under the same trace ID.
	resolved := false
	if sampleTrace != "" {
		spans, err := r.fetchTrace(sampleTicket)
		if err != nil {
			return nil, err
		}
		for _, sd := range spans {
			if sd.Name == "tenant.admit" && sd.TraceID == sampleTrace {
				resolved = true
			}
		}
	}

	row := func(metric string, v float64) AblationRow {
		return AblationRow{Study: "noisy-neighbor", Variant: variant, Metric: metric, Value: v}
	}
	return []AblationRow{
		row("audit_records", float64(len(doc.Records))),
		row("audit_ok_invokes", float64(okInvokes)),
		row("audit_denied", float64(denied)),
		row("audit_dropped", float64(doc.Dropped)),
		row("audit_exactly_once", b2f(exactlyOnce)),
		row("trace_resolvable", b2f(tracesOK && resolved)),
	}, nil
}

// uploadWithKey posts the multipart upload form, stamping the tenant
// key when the control plane is on.
func (r *rig) uploadWithKey(fileName, program, key string) error {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("file", fileName)
	if err != nil {
		return err
	}
	io.WriteString(fw, program)
	mw.WriteField("user", "alice")
	mw.WriteField("description", "tenancy ablation")
	mw.Close()
	req, err := http.NewRequest(http.MethodPost, r.app.BaseURL+"/upload", &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	if key != "" {
		req.Header.Set(tenant.KeyHeader, key)
	}
	resp, err := r.userHTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("upload failed (%d): %s", resp.StatusCode, body)
	}
	return nil
}

// invokeJSON drives one invocation through the portal's JSON API,
// returning the HTTP status so callers can count 429 sheds without
// treating them as errors.
func (r *rig) invokeJSON(service, key string, args map[string]string) (string, int, error) {
	payload, _ := json.Marshal(map[string]any{"service": service, "args": args})
	req, err := http.NewRequest(http.MethodPost, r.app.BaseURL+"/api/invoke", bytes.NewReader(payload))
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set(tenant.KeyHeader, key)
	}
	resp, err := r.userHTTP.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return "", resp.StatusCode, nil
	}
	var inv struct {
		Ticket string `json:"ticket"`
	}
	if err := json.Unmarshal(body, &inv); err != nil || inv.Ticket == "" {
		return "", resp.StatusCode, fmt.Errorf("invoke reply %q: %v", body, err)
	}
	return inv.Ticket, resp.StatusCode, nil
}

// waitTicket blocks until the invocation reaches its terminal state.
func (r *rig) waitTicket(ticket string) error {
	resp, err := r.userHTTP.Get(r.app.BaseURL + "/api/wait?ticket=" + ticket)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("wait: status %d: %s", resp.StatusCode, body)
	}
	return nil
}

// probeOnce times one victim invocation end to end in virtual ms.
func (r *rig) probeOnce(service, key, tag string) (float64, error) {
	start := r.clock.Now()
	ticket, status, err := r.invokeJSON(service, key, map[string]string{"x": tag})
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("probe invoke: status %d", status)
	}
	if err := r.waitTicket(ticket); err != nil {
		return 0, err
	}
	return float64(r.clock.Now().Sub(start).Milliseconds()), nil
}

// pctile returns the p-th percentile (nearest-rank) of the samples.
func pctile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// hex32 reports whether s is a 32-digit lowercase hex trace ID.
func hex32(s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
