package experiments

import "testing"

func TestAblationTenancyShape(t *testing.T) {
	// A small burst keeps the smoke run fast; the control plane's quota
	// (8 in-flight + 64 queued for the hog) still saturates, so both the
	// shed path and the fair-share bound are exercised.
	const burst = 96
	res, err := AblationTenancy(fastOpts(), burst)
	if err != nil {
		t.Fatal(err)
	}
	vals := ablationMap(res)
	study := "noisy-neighbor"

	for _, variant := range []string{"tenancy-off", "tenancy-on"} {
		if got := vals[study+"/"+variant+"/burst"]; got != burst {
			t.Fatalf("%s burst %v, want %d", variant, got, burst)
		}
		if got := vals[study+"/"+variant+"/victim_p99_ms"]; got <= 0 {
			t.Fatalf("%s victim p99 %v", variant, got)
		}
	}

	// Off: nothing is denied — the whole burst lands on the grid.
	if got := vals[study+"/tenancy-off/hog_denied"]; got != 0 {
		t.Fatalf("tenancy-off denied %v invocations", got)
	}
	if got := vals[study+"/tenancy-off/hog_admitted"]; got != burst {
		t.Fatalf("tenancy-off admitted %v, want %d", got, burst)
	}

	// On: the hog is capped, so admitted + denied covers the burst and
	// at least the overflow past in-flight + queue depth was shed.
	admitted := vals[study+"/tenancy-on/hog_admitted"]
	denied := vals[study+"/tenancy-on/hog_denied"]
	if admitted+denied != burst {
		t.Fatalf("tenancy-on admitted %v + denied %v != %d", admitted, denied, burst)
	}
	if denied == 0 {
		t.Fatal("tenancy-on shed nothing; the quota never saturated")
	}

	// The acceptance gate: the victim's p99 stays within the fair-share
	// bound when the control plane is on.
	if got := vals[study+"/tenancy-on/bound_ok"]; got != 1 {
		t.Fatalf("tenancy-on victim p99 %v ms exceeded the fair-share bound %v ms",
			vals[study+"/tenancy-on/victim_p99_ms"], vals[study+"/tenancy-on/fair_share_bound_ms"])
	}

	// Audit books balance: every action exactly once, traces resolvable.
	if got := vals[study+"/tenancy-on/audit_exactly_once"]; got != 1 {
		t.Fatalf("audit not exactly-once: records=%v ok=%v denied=%v dropped=%v",
			vals[study+"/tenancy-on/audit_records"], vals[study+"/tenancy-on/audit_ok_invokes"],
			vals[study+"/tenancy-on/audit_denied"], vals[study+"/tenancy-on/audit_dropped"])
	}
	if got := vals[study+"/tenancy-on/trace_resolvable"]; got != 1 {
		t.Fatal("audit trace IDs did not resolve to tenant.admit spans")
	}
}
