package experiments

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/blobdb"
	"repro/internal/gsh"
	"repro/internal/wsclient"
)

// HotPathVariants lists the invocation hot-path ablation variants in
// the order they are reported: the paper-faithful stock pipeline, each
// optimisation lever alone, and all levers together ("warm").
var HotPathVariants = []string{"stock", "session-cache", "stats-ttl", "blob-lru", "warm"}

// AblationHotPath compares the invocation hot path with each
// optimisation lever against the paper's stock behaviour: per-owner
// session caching (no MyProxy logon per invocation), the TTL-cached
// grid-stats snapshot (no scheduler SOAP round-trip per invocation),
// and the decompressed-blob LRU (no gzip inflate per invocation — the
// Fig. 6 CPU peak). Each variant uploads one executable and invokes it
// invocations times back-to-back.
//
// With no explicit variants, every entry of HotPathVariants runs.
func AblationHotPath(opts Options, fileKB, invocations int, variants ...string) (*AblationResult, error) {
	if fileKB <= 0 {
		fileKB = 256
	}
	if invocations <= 0 {
		invocations = 3
	}
	if len(variants) == 0 {
		variants = HotPathVariants
	}
	res := &AblationResult{Notes: []string{
		fmt.Sprintf("%d back-to-back invocations of a %d KB executable", invocations, fileKB),
		"stock re-authenticates, re-fetches grid stats and re-inflates the blob per invocation",
		"warm enables the session cache, stats TTL and blob LRU together",
	}}
	for _, variant := range variants {
		o := opts
		// Fine polling keeps completion-detection quantisation from
		// drowning the per-invocation setup difference under comparison.
		o.PollInterval = 3 * time.Second
		switch variant {
		case "stock":
		case "session-cache":
			o.SessionCache = true
		case "stats-ttl":
			o.StatsTTL = 30 * time.Second
		case "blob-lru":
			o.BlobCacheBytes = 256 << 20
		case "warm":
			o.SessionCache = true
			o.StatsTTL = 30 * time.Second
			o.BlobCacheBytes = 256 << 20
		default:
			return nil, fmt.Errorf("experiments: unknown hot-path variant %q", variant)
		}
		r, err := newRig(o)
		if err != nil {
			return nil, err
		}
		program := string(gsh.Pad([]byte("compute 1s\necho ok\n"), fileKB<<10))
		if err := r.uploadViaPortal("hotjob.gsh", program); err != nil {
			r.close()
			return nil, err
		}
		proxy, err := wsclient.ImportURL(r.app.BaseURL+"/services/HotjobService", r.userHTTP)
		if err != nil {
			r.close()
			return nil, err
		}
		r.rec.Reset()
		start := r.clock.Now()
		for i := 0; i < invocations; i++ {
			ticket, err := proxy.Invoke("execute", nil)
			if err != nil {
				r.close()
				return nil, err
			}
			if _, err := proxy.Invoke("wait", map[string]string{"ticket": ticket}); err != nil {
				r.close()
				return nil, err
			}
		}
		elapsed := r.clock.Now().Sub(start).Seconds()
		sum := seriesSummary(r.rec.Series())
		res.Rows = append(res.Rows,
			AblationRow{Study: "hot-path", Variant: variant, Metric: "makespan_s", Value: elapsed},
			AblationRow{Study: "hot-path", Variant: variant, Metric: "per_invoke_s", Value: elapsed / float64(invocations)},
			AblationRow{Study: "hot-path", Variant: variant, Metric: "net_out_total_kb", Value: sum["net_out_total_b"] / 1024},
			AblationRow{Study: "hot-path", Variant: variant, Metric: "cpu_total_s", Value: sum["cpu_total_s"]},
		)
		r.close()
	}
	return res, nil
}

// AblationGroupCommit measures the WAL append path under concurrent
// writers: the stock one-unsynced-write-per-mutation behaviour against
// group commit (batched appends, one fsync per batch). Unlike the
// figure ablations this one runs in real time against a real on-disk
// WAL — virtual-time dilation would hide the syscall costs it exists to
// show.
func AblationGroupCommit(payloadKB, writers, putsPerWriter int) (*AblationResult, error) {
	if payloadKB <= 0 {
		payloadKB = 64
	}
	if writers <= 0 {
		writers = 8
	}
	if putsPerWriter <= 0 {
		putsPerWriter = 16
	}
	res := &AblationResult{Notes: []string{
		fmt.Sprintf("%d writers x %d puts of %d KB against an on-disk WAL (real time)", writers, putsPerWriter, payloadKB),
		"stock: one unsynced write per put; group: batched appends, one fsync per batch",
		"group commit upgrades durability (acked puts survive a crash) while amortising the flush",
	}}
	blob := gsh.Pad([]byte("echo x\n"), payloadKB<<10)
	for _, variant := range []struct {
		name  string
		group bool
	}{{"stock", false}, {"group", true}} {
		dir, err := os.MkdirTemp("", "hotpath-wal-*")
		if err != nil {
			return nil, err
		}
		db, err := blobdb.Open(blobdb.Options{Dir: dir, GroupCommit: variant.group})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		tab := db.Table("bench")
		start := time.Now()
		var wg sync.WaitGroup
		errc := make(chan error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < putsPerWriter; i++ {
					if err := tab.Put(fmt.Sprintf("w%02d-k%03d", w, i), nil, blob); err != nil {
						errc <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errc)
		if err := <-errc; err != nil {
			db.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		elapsed := time.Since(start)
		walWrites, walSyncs := db.WALStats()
		if err := db.Close(); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		os.RemoveAll(dir)
		puts := float64(writers * putsPerWriter)
		res.Rows = append(res.Rows,
			AblationRow{Study: "group-commit", Variant: variant.name, Metric: "wall_ms", Value: float64(elapsed.Milliseconds())},
			AblationRow{Study: "group-commit", Variant: variant.name, Metric: "puts_per_s", Value: puts / elapsed.Seconds()},
			AblationRow{Study: "group-commit", Variant: variant.name, Metric: "wal_writes", Value: float64(walWrites)},
			AblationRow{Study: "group-commit", Variant: variant.name, Metric: "wal_syncs", Value: float64(walSyncs)},
		)
	}
	return res, nil
}
