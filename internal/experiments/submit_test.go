package experiments

import "testing"

func TestAblationSubmitShape(t *testing.T) {
	const n = 12
	res, err := AblationSubmit(fastOpts(), n)
	if err != nil {
		t.Fatal(err)
	}
	vals := ablationMap(res)
	// Stock pays the full per-invocation price: one WAN upload, one
	// submit RPC and one stats fetch per burst member.
	if vals["submit/stock/uploads"] != n {
		t.Fatalf("stock uploads = %v, want %d", vals["submit/stock/uploads"], n)
	}
	if vals["submit/stock/submit_rpcs"] != n {
		t.Fatalf("stock submit_rpcs = %v, want %d", vals["submit/stock/submit_rpcs"], n)
	}
	// The batched front-end amortises every leg of the chain.
	if vals["submit/batched/uploads"] >= vals["submit/stock/uploads"] {
		t.Fatalf("batched uploads %v not below stock %v",
			vals["submit/batched/uploads"], vals["submit/stock/uploads"])
	}
	// Every burst member either led or joined a staging flight.
	if got := vals["submit/batched/uploads"] + vals["submit/batched/uploads_coalesced"]; got != n {
		t.Fatalf("batched uploads+coalesced = %v, want %d", got, n)
	}
	if vals["submit/batched/submit_rpcs"] >= vals["submit/stock/submit_rpcs"] {
		t.Fatalf("batched submit_rpcs %v not below stock %v",
			vals["submit/batched/submit_rpcs"], vals["submit/stock/submit_rpcs"])
	}
	if vals["submit/batched/submits_batched"] != n {
		t.Fatalf("batched submits_batched = %v, want %d", vals["submit/batched/submits_batched"], n)
	}
	if vals["submit/batched/stats_rpcs"] >= vals["submit/stock/stats_rpcs"] {
		t.Fatalf("batched stats_rpcs %v not below stock %v",
			vals["submit/batched/stats_rpcs"], vals["submit/stock/stats_rpcs"])
	}
	// Trading a short coalescing wait for the removed RPCs must not blow
	// up the makespan.
	if vals["submit/batched/makespan_s"] > vals["submit/stock/makespan_s"]*1.5 {
		t.Fatalf("batched makespan %v vs stock %v",
			vals["submit/batched/makespan_s"], vals["submit/stock/makespan_s"])
	}
}
