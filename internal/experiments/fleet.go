package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/gridenv"
	"repro/internal/gridsim"
	"repro/internal/gsh"
	"repro/internal/netsim"
	"repro/internal/vtime"
)

// FleetSizes is the default scale-out grid for the fleet ablation.
var FleetSizes = []int{1, 4, 16}

// fleetPayloadKB sizes each service's executable: big enough that
// staging it across one appliance's ~85 KB/s WAN uplink dominates, so
// aggregate throughput is bounded by how many uplinks the fleet has.
const fleetPayloadKB = 64

// AblationFleet measures consistent-hash scale-out: the same 64-way
// burst of Web-service invocations (4 invocations over each of 16
// services) is pushed through a fleet gateway fronting 1, 4, and 16
// appliances. Every appliance gets its own WAN uplink to the grid —
// the paper's single-appliance bottleneck — so makespan shrinks as the
// ring spreads the 16 services' staging traffic over more uplinks,
// while routing stickiness stays at 100%: one service's sessions,
// caches, and staged bytes never leave its shard.
//
// A final failover run repeats the burst at fleet=4 and hard-kills one
// appliance mid-burst: the circuit breaker ejects it, its keys remap to
// ring successors, the gateway replays the catalogued uploads there,
// and clients that caught the crash re-issue — every invocation must
// still complete.
func AblationFleet(opts Options, fleets []int, invocations int) (*AblationResult, error) {
	if len(fleets) == 0 {
		fleets = FleetSizes
	}
	if invocations <= 0 {
		invocations = 64
	}
	// The burst multiplies every real-scheduling cost by the fleet width;
	// cap the dilation like the other burst ablations do.
	if opts.Scale <= 0 || opts.Scale > 40 {
		opts.Scale = 40
	}
	res := &AblationResult{Notes: []string{
		fmt.Sprintf("%d simultaneous invocations, 4 per service over %d services, POSTed through the fleet gateway", invocations, invocations/4),
		fmt.Sprintf("each service's executable is %d KB; the staging cache is off, so every invocation re-stages it across its appliance's ~85 KB/s WAN uplink — the paper's single-appliance bottleneck", fleetPayloadKB),
		"requests shard by consistent hash on service|owner: stickiness_pct is the fraction of keyed dispatches that landed on the ring primary",
		"throughput_inv_per_min should scale with the fleet: more appliances = more WAN uplinks staging in parallel",
		"submit_rpcs / status_rpcs / uploads are summed over the fleet; shards_used counts appliances that executed at least one invocation",
		"the kill-1 run hard-kills one appliance mid-burst at fleet=4: ejection + ring failover + catalog replay let every invocation complete (completed == the burst size), clients re-issuing on the crash (reissues)",
	}}

	for _, n := range fleets {
		rows, err := fleetBurst(opts, fmt.Sprintf("fleet-%d", n), "scale-out", n, invocations, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet %d: %w", n, err)
		}
		res.Rows = append(res.Rows, rows...)
	}
	rows, err := fleetBurst(opts, "fleet-4", "kill-1", 4, invocations, true)
	if err != nil {
		return nil, fmt.Errorf("experiments: fleet failover: %w", err)
	}
	res.Rows = append(res.Rows, rows...)
	return res, nil
}

// fleetRig is the booted fleet measurement stack.
type fleetRig struct {
	clock *vtime.Scaled
	env   *gridenv.Env
	gw    *gateway.Gateway
}

func newFleetRig(o Options, fleetN int) (*fleetRig, error) {
	o.fill()
	clk := vtime.NewScaled(o.Scale)
	env, err := gridenv.Start(gridenv.Options{
		Clock: clk,
		// Ample grid capacity: the experiment measures the appliance tier,
		// not grid queueing. The grid's server side stays unshaped; each
		// appliance's own client-side WAN uplink is the measured link.
		Sites: []gridsim.SiteConfig{
			{Name: "ncsa-abe", Nodes: 16, CoresPerNode: 8},
			{Name: "sdsc-ds", Nodes: 16, CoresPerNode: 8},
		},
	})
	if err != nil {
		return nil, err
	}
	env.Gatekeeper.SetHeartbeatInterval(time.Minute)
	if _, err := env.AddUser("alice", "pw", 0); err != nil {
		env.Close()
		return nil, err
	}
	gw, err := gateway.Boot(gateway.Config{
		Fleet: fleetN,
		Appliance: appliance.Config{
			Endpoints:         env.Endpoints(),
			Clock:             clk,
			PollInterval:      3 * time.Second,
			InvocationTimeout: time.Hour,
			SessionCache:      true,
		},
		// Each shard gets its own shaped WAN uplink toward the grid — the
		// fleet's whole point is multiplying this link.
		PerShard: func(i int, cfg appliance.Config) appliance.Config {
			wan := netsim.WAN(clk)
			dialer := &netsim.Dialer{Profile: wan}
			cfg.GridHTTP = &http.Client{Transport: &http.Transport{DialContext: dialer.DialContext}}
			cfg.MyProxyDial = func(network, addr string) (net.Conn, error) {
				return dialer.DialContext(context.Background(), network, addr)
			}
			return cfg
		},
		Clock:         clk,
		FailThreshold: 2,
		ProbeInterval: 30 * time.Second,
		ProbeTimeout:  2 * time.Second,
		HalfOpenAfter: 2 * time.Minute,
		PullInterval:  5 * time.Minute,
	}, nil)
	if err != nil {
		env.Close()
		return nil, err
	}
	gw.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "pw"})
	return &fleetRig{clock: clk, env: env, gw: gw}, nil
}

func (r *fleetRig) close() {
	r.gw.Shutdown()
	r.env.Close()
}

// uploadService publishes one padded executable through the gateway.
func (r *fleetRig) uploadService(fileName string) error {
	program := string(gsh.Pad([]byte("compute 1s\necho ok\n"), fleetPayloadKB<<10))
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("file", fileName)
	if err != nil {
		return err
	}
	io.WriteString(fw, program)
	mw.WriteField("user", "alice")
	mw.WriteField("description", "fleet ablation")
	mw.Close()
	resp, err := http.Post(r.gw.BaseURL+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("upload %s: status %d: %s", fileName, resp.StatusCode, body)
	}
	return nil
}

// fleetInvoke drives one invocation through the gateway, returning an
// error on any non-200 so callers can re-issue.
func fleetInvoke(base, service, arg string) error {
	payload, _ := json.Marshal(map[string]any{"service": service, "args": map[string]string{"x": arg}})
	resp, err := http.Post(base+"/api/invoke", "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("invoke: status %d: %s", resp.StatusCode, body)
	}
	var inv struct {
		Ticket string `json:"ticket"`
	}
	if err := json.Unmarshal(body, &inv); err != nil || inv.Ticket == "" {
		return fmt.Errorf("invoke reply %q: %v", body, err)
	}
	resp, err = http.Get(base + "/api/wait?ticket=" + inv.Ticket)
	if err != nil {
		return err
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("wait: status %d: %s", resp.StatusCode, body)
	}
	var done struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &done); err != nil {
		return err
	}
	if done.State != string(core.InvDone) {
		return fmt.Errorf("wait: state %s", done.State)
	}
	return nil
}

// fleetBurst boots one fleet, publishes the service set, fires the
// burst, and accounts gateway + fleet-wide counters. With kill set, one
// appliance is hard-killed once an eighth of the burst has completed.
func fleetBurst(o Options, study, variant string, fleetN, invocations int, kill bool) ([]AblationRow, error) {
	r, err := newFleetRig(o, fleetN)
	if err != nil {
		return nil, err
	}
	defer r.close()

	nServices := invocations / 4
	if nServices < 1 {
		nServices = 1
	}
	services := make([]string, nServices)
	for i := range services {
		if err := r.uploadService(fmt.Sprintf("fleetjob%02d.gsh", i)); err != nil {
			return nil, err
		}
		services[i] = fmt.Sprintf("Fleetjob%02dService", i)
	}

	// The failover victim is the shard owning the most services — killing
	// it mid-burst forces the largest share of the keyspace through
	// ejection, ring failover, and catalog replay.
	victim := -1
	if kill {
		load := map[int]int{}
		for _, svc := range services {
			load[r.gw.PrimaryFor(svc, "alice")]++
		}
		for shard, n := range load {
			if victim < 0 || n > load[victim] {
				victim = shard
			}
		}
	}

	start := r.clock.Now()
	var (
		wg        sync.WaitGroup
		completed atomic.Uint64
		reissues  atomic.Uint64
	)
	errs := make(chan error, invocations)
	for i := 0; i < invocations; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc := services[i%len(services)]
			var lastErr error
			for attempt := 0; attempt < 10; attempt++ {
				if attempt > 0 {
					reissues.Add(1)
					time.Sleep(100 * time.Millisecond)
				}
				if lastErr = fleetInvoke(r.gw.BaseURL, svc, fmt.Sprint(i)); lastErr == nil {
					completed.Add(1)
					return
				}
				if !kill {
					break // healthy runs must succeed first try
				}
			}
			errs <- fmt.Errorf("invocation %d: %w", i, lastErr)
		}()
	}
	if kill {
		// Hard-kill the victim once the burst is demonstrably in flight —
		// after the first completion, while the victim still holds most of
		// its share of the burst.
		for completed.Load() == 0 {
			time.Sleep(5 * time.Millisecond)
		}
		if err := r.gw.Kill(victim); err != nil {
			return nil, err
		}
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	elapsed := r.clock.Now().Sub(start).Seconds()

	st := r.gw.GatewayStats()
	var submitRPCs, statusRPCs, uploads uint64
	shardsUsed := 0
	for i, app := range r.gw.Fleet() {
		if kill && i == victim {
			continue // killed appliance: its counters died with it
		}
		submitRPCs += app.OnServe.SubmitStats().SubmitRPCs
		statusRPCs += app.OnServe.CollectorStats().StatusRPCs
		uploads += app.OnServe.SubmitStats().Uploads
		if len(app.OnServe.Invocations()) > 0 {
			shardsUsed++
		}
	}

	row := func(metric string, v float64) AblationRow {
		return AblationRow{Study: study, Variant: variant, Metric: metric, Value: v}
	}
	rows := []AblationRow{
		row("appliances", float64(fleetN)),
		row("makespan_s", elapsed),
		row("throughput_inv_per_min", float64(invocations)/elapsed*60),
		row("stickiness_pct", 100*float64(st.StickyHits)/float64(st.Routed)),
		row("completed", float64(completed.Load())),
		row("shards_used", float64(shardsUsed)),
		row("submit_rpcs", float64(submitRPCs)),
		row("status_rpcs", float64(statusRPCs)),
		row("uploads", float64(uploads)),
	}
	if kill {
		rows = append(rows,
			row("reissues", float64(reissues.Load())),
			row("failovers", float64(st.Failovers)),
			row("retried", float64(st.Retried)),
			row("redeploys", float64(st.Redeploys)),
			row("ejections", float64(st.Ejections)),
		)
	}
	return rows, nil
}
