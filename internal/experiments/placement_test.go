package experiments

import "testing"

func TestAblationPlacementShape(t *testing.T) {
	const n = 8
	res, err := AblationPlacement(fastOpts(), n, []int{768})
	if err != nil {
		t.Fatal(err)
	}
	vals := ablationMap(res)
	study := "placement-768kb"

	// The paper's broker never probes possession.
	if vals[study+"/load-only/probe_rpcs"] != 0 {
		t.Fatalf("load-only issued %v probes", vals[study+"/load-only/probe_rpcs"])
	}
	if vals[study+"/load-only/makespan_s"] <= 0 {
		t.Fatalf("load-only makespan %v", vals[study+"/load-only/makespan_s"])
	}
	// The bytes were primed away from the load broker's favourite site,
	// so load-only placement re-ships the payload cold.
	if got := vals[study+"/load-only/chunks_shipped"]; got == 0 {
		t.Fatal("load-only burst never re-shipped the executable")
	}

	// 768 KB costs ~9 s to re-ship but at most ~4 s of queueing at this
	// burst size, so the scorer keeps the whole burst at the primed site
	// and every staging dedupes completely: the warm path ships nothing.
	if got := vals[study+"/data-aware/chunks_shipped"]; got != 0 {
		t.Fatalf("data-aware burst shipped %v chunks, want 0", got)
	}
	if got := vals[study+"/data-aware/probe_rpcs"] + vals[study+"/data-aware/probe_cache_hits"]; got == 0 {
		t.Fatal("data-aware burst neither probed nor hit the possession cache")
	}

	// The replicate variant pre-pushed to the sibling, so the burst can
	// split by load and still stage warm everywhere.
	if got := vals[study+"/data-aware+replicate/replicator_pushes"]; got < 1 {
		t.Fatalf("replicate variant pushed %v times, want >= 1", got)
	}
	if got := vals[study+"/data-aware+replicate/replicator_push_bytes"]; got <= 0 {
		t.Fatalf("replicate variant pushed %v bytes", got)
	}
	if got := vals[study+"/data-aware+replicate/chunks_shipped"]; got != 0 {
		t.Fatalf("replicate burst shipped %v chunks, want 0", got)
	}

	// Possession can only reduce the WAN bill, never raise it: the
	// data-aware chunk payload is bounded by the load-only one.
	if vals[study+"/data-aware/chunk_wire_b"] > vals[study+"/load-only/chunk_wire_b"] {
		t.Fatalf("data-aware chunk wire %v exceeds load-only %v",
			vals[study+"/data-aware/chunk_wire_b"], vals[study+"/load-only/chunk_wire_b"])
	}
}
