package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vtime"
)

func newTestRecorder() (*vtime.Manual, *Recorder) {
	clk := vtime.NewManual(time.Unix(0, 0))
	return clk, NewRecorder(clk, 3*time.Second)
}

func TestAccountGoesToCorrectBucket(t *testing.T) {
	clk, rec := newTestRecorder()
	rec.Account(NetIn, clk.Now(), 100)
	clk.Advance(7 * time.Second) // bucket 2
	rec.Account(NetIn, clk.Now(), 50)
	s := rec.Series()
	if len(s) != 3 {
		t.Fatalf("got %d buckets, want 3", len(s))
	}
	if s[0].NetInBytes != 100 || s[1].NetInBytes != 0 || s[2].NetInBytes != 50 {
		t.Fatalf("unexpected series %+v", s)
	}
}

func TestAccountSpanSplitsAcrossBuckets(t *testing.T) {
	_, rec := newTestRecorder()
	// 6 seconds of span starting at t=0 covers buckets 0 and 1 evenly.
	rec.AccountSpan(DiskWrite, time.Unix(0, 0), 6*time.Second, 600)
	s := rec.Series()
	if len(s) != 2 {
		t.Fatalf("got %d buckets, want 2", len(s))
	}
	if math.Abs(s[0].DiskWriteBytes-300) > 1e-6 || math.Abs(s[1].DiskWriteBytes-300) > 1e-6 {
		t.Fatalf("uneven split: %+v", s)
	}
}

func TestAccountSpanPartialBucket(t *testing.T) {
	_, rec := newTestRecorder()
	// Span [2s, 5s): 1s in bucket 0, 2s in bucket 1.
	rec.AccountSpan(NetOut, time.Unix(2, 0), 3*time.Second, 900)
	s := rec.Series()
	if math.Abs(s[0].NetOutBytes-300) > 1e-6 || math.Abs(s[1].NetOutBytes-600) > 1e-6 {
		t.Fatalf("wrong partial split: %+v", s)
	}
}

func TestCPUPercent(t *testing.T) {
	_, rec := newTestRecorder()
	// 1.5s of CPU busy in a 3s bucket = 50%.
	rec.AccountSpan(CPU, time.Unix(0, 0), 1500*time.Millisecond, float64(1500*time.Millisecond))
	s := rec.Series()
	if math.Abs(s[0].CPUPct-50) > 1e-6 {
		t.Fatalf("cpu pct = %v, want 50", s[0].CPUPct)
	}
}

func TestTotalConservation(t *testing.T) {
	f := func(spans []struct {
		StartSec uint16
		DurMs    uint16
		Amount   uint32
	}) bool {
		_, rec := newTestRecorder()
		var want float64
		for _, sp := range spans {
			amt := float64(sp.Amount % 1_000_000)
			rec.AccountSpan(NetIn, time.Unix(int64(sp.StartSec%3600), 0),
				time.Duration(sp.DurMs)*time.Millisecond, amt)
			want += amt
		}
		got := rec.Total(NetIn)
		return math.Abs(got-want) < 1e-3*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesDense(t *testing.T) {
	clk, rec := newTestRecorder()
	clk.Advance(30 * time.Second)
	rec.Account(NetIn, clk.Now(), 1)
	s := rec.Series()
	if len(s) != 11 {
		t.Fatalf("series length %d, want 11 (buckets 0..10)", len(s))
	}
	for i := 0; i < 10; i++ {
		if s[i].NetInBytes != 0 {
			t.Fatalf("bucket %d not empty", i)
		}
	}
}

func TestSeriesEmpty(t *testing.T) {
	_, rec := newTestRecorder()
	if s := rec.Series(); s != nil {
		t.Fatalf("expected nil series, got %v", s)
	}
}

func TestNegativeTimeClampsToBucketZero(t *testing.T) {
	_, rec := newTestRecorder()
	rec.Account(NetIn, time.Unix(-100, 0), 42)
	s := rec.Series()
	if len(s) != 1 || s[0].NetInBytes != 42 {
		t.Fatalf("pre-epoch accounting not clamped: %+v", s)
	}
}

func TestCSVHeaderAndRows(t *testing.T) {
	_, rec := newTestRecorder()
	rec.Account(NetIn, time.Unix(0, 0), 10)
	out := CSV(rec.Series())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_sec,cpu_pct") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0.0,0,0,10,0") {
		t.Fatalf("bad row %q", lines[1])
	}
}

func TestChartRendersPeaks(t *testing.T) {
	_, rec := newTestRecorder()
	rec.Account(NetIn, time.Unix(0, 0), 100)
	rec.Account(NetIn, time.Unix(9, 0), 10)
	chart := Chart("net in", "B", rec.Series(), func(s Sample) float64 { return s.NetInBytes })
	if !strings.Contains(chart, "#") {
		t.Fatalf("chart has no marks:\n%s", chart)
	}
	if !strings.Contains(chart, "peak 100 B") {
		t.Fatalf("chart missing peak annotation:\n%s", chart)
	}
}

func TestChartFlatZero(t *testing.T) {
	_, rec := newTestRecorder()
	rec.Account(CPU, time.Unix(0, 0), 0.0) // nothing recorded
	rec.Account(NetIn, time.Unix(3, 0), 5) // force non-empty series
	chart := Chart("cpu", "%", rec.Series(), func(s Sample) float64 { return s.CPUPct })
	if !strings.Contains(chart, "flat zero") {
		t.Fatalf("expected flat-zero annotation:\n%s", chart)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		CPU: "cpu_busy", DiskRead: "disk_read", DiskWrite: "disk_write",
		NetIn: "net_in", NetOut: "net_out", Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestRecorderRejectsBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecorder(vtime.Real{}, 0)
}

func TestNilProbeSafe(t *testing.T) {
	var p *Probe
	p.Burn(time.Second)
	p.BurnFor(100, 1000)
	p.DiskRead(10)
	p.DiskWrite(10)
	p.NetIn(time.Now(), 5)
	p.NetOut(time.Now(), 5)
	if p.Recorder() != nil {
		t.Fatal("nil probe recorder should be nil")
	}
	if _, ok := p.Clock().(vtime.Real); !ok {
		t.Fatal("nil probe clock should be real")
	}
}

func TestProbeBurnAdvancesClockAndAccounts(t *testing.T) {
	clk := vtime.NewScaled(10000)
	rec := NewRecorder(clk, 3*time.Second)
	p := NewProbe(rec)
	p.Burn(2 * time.Second)
	if got := rec.Total(CPU); math.Abs(got-float64(2*time.Second)) > float64(time.Millisecond) {
		t.Fatalf("cpu total %v, want 2s worth", time.Duration(got))
	}
}

func TestProbeBurnForUsesRate(t *testing.T) {
	clk := vtime.NewScaled(10000)
	rec := NewRecorder(clk, 3*time.Second)
	p := NewProbe(rec)
	p.BurnFor(1<<20, 1<<20) // 1 MiB at 1 MiB/s = 1s of CPU
	got := time.Duration(rec.Total(CPU))
	if got < 900*time.Millisecond || got > 1100*time.Millisecond {
		t.Fatalf("cpu total %v, want ~1s", got)
	}
}

func TestProbeDiskPacing(t *testing.T) {
	clk := vtime.NewScaled(10000)
	rec := NewRecorder(clk, 3*time.Second)
	p := NewProbe(rec)
	p.DiskWriteBps = 1 << 20
	start := clk.Now()
	p.DiskWrite(1 << 20) // should take ~1 virtual second
	elapsed := clk.Now().Sub(start)
	if elapsed < 900*time.Millisecond {
		t.Fatalf("paced disk write took only %v virtual", elapsed)
	}
	if rec.Total(DiskWrite) != float64(1<<20) {
		t.Fatalf("disk bytes = %v", rec.Total(DiskWrite))
	}
}

func TestProbeDiskUnpacedInstant(t *testing.T) {
	clk := vtime.NewManual(time.Unix(0, 0))
	rec := NewRecorder(clk, 3*time.Second)
	p := NewProbe(rec)
	done := make(chan struct{})
	go func() {
		p.DiskRead(1 << 30) // no rate set: instantaneous
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("unpaced disk read blocked")
	}
	if rec.Total(DiskRead) != float64(1<<30) {
		t.Fatal("bytes not accounted")
	}
}

func TestDefaultCostSane(t *testing.T) {
	c := DefaultCost()
	if c.CompressBps <= 0 || c.DecompressBps <= c.CompressBps {
		t.Fatalf("decompress should be faster than compress: %+v", c)
	}
	if c.ServiceBuild <= 0 || c.JobSubmit <= 0 || c.Auth <= 0 || c.RequestHandling <= 0 {
		t.Fatalf("non-positive cost: %+v", c)
	}
}
