package metrics

import (
	"time"

	"repro/internal/vtime"
)

// Probe is the hook components use to report resource consumption. A nil
// *Probe is valid and discards everything, so production code paths can be
// instrumented unconditionally.
//
// CPU and disk operations also *take time* on the probe's clock: Burn and
// the disk helpers sleep for the modelled duration, which is what makes
// CPU-heavy phases (decompressing a blob, building a service) show up as
// utilisation peaks spread over the correct wall-clock span, exactly as in
// the paper's figures.
type Probe struct {
	rec *Recorder
	// DiskReadBps / DiskWriteBps model hard-disk bandwidth. Zero means the
	// operation is instantaneous (bytes still accounted).
	DiskReadBps  float64
	DiskWriteBps float64
}

// NewProbe returns a probe feeding rec.
func NewProbe(rec *Recorder) *Probe {
	return &Probe{rec: rec}
}

// Recorder returns the underlying recorder, or nil.
func (p *Probe) Recorder() *Recorder {
	if p == nil {
		return nil
	}
	return p.rec
}

// Clock returns the probe's clock; a nil probe returns the real clock so
// uninstrumented paths still have a valid time source.
func (p *Probe) Clock() vtime.Clock {
	if p == nil || p.rec == nil {
		return vtime.Real{}
	}
	return p.rec.clock
}

// Burn models a CPU burst: it blocks for d of virtual time and accounts d
// of CPU busy time spread over the burst.
func (p *Probe) Burn(d time.Duration) {
	if p == nil || p.rec == nil || d <= 0 {
		return
	}
	start := p.rec.clock.Now()
	p.rec.clock.Sleep(d)
	p.rec.AccountSpan(CPU, start, d, float64(d))
}

// BurnFor models processing n bytes at bps bytes/second of CPU-bound work
// (compression, checksumming, service build). Zero bps is a no-op.
func (p *Probe) BurnFor(n int, bps float64) {
	if p == nil || bps <= 0 || n <= 0 {
		return
	}
	p.Burn(time.Duration(float64(n) / bps * float64(time.Second)))
}

// DiskRead accounts (and paces, if DiskReadBps is set) an n-byte read.
func (p *Probe) DiskRead(n int) {
	p.disk(DiskRead, n, func() float64 { return p.DiskReadBps })
}

// DiskWrite accounts (and paces, if DiskWriteBps is set) an n-byte write.
func (p *Probe) DiskWrite(n int) {
	p.disk(DiskWrite, n, func() float64 { return p.DiskWriteBps })
}

func (p *Probe) disk(k Kind, n int, bps func() float64) {
	if p == nil || p.rec == nil || n <= 0 {
		return
	}
	start := p.rec.clock.Now()
	rate := bps()
	if rate <= 0 {
		p.rec.Account(k, start, float64(n))
		return
	}
	d := time.Duration(float64(n) / rate * float64(time.Second))
	p.rec.clock.Sleep(d)
	p.rec.AccountSpan(k, start, d, float64(n))
}

// NetIn accounts n bytes received at instant at. Called by netsim as
// traffic actually arrives; no pacing happens here.
func (p *Probe) NetIn(at time.Time, n int) {
	if p == nil || p.rec == nil {
		return
	}
	p.rec.Account(NetIn, at, float64(n))
}

// NetOut accounts n bytes sent at instant at.
func (p *Probe) NetOut(at time.Time, n int) {
	if p == nil || p.rec == nil {
		return
	}
	p.rec.Account(NetOut, at, float64(n))
}

// Cost collects the CPU cost model for the 2010-era appliance host the
// paper measured. Rates are bytes per second of one core; durations are
// fixed bursts. The absolute values are calibration knobs — the figure
// shapes depend only on their relative magnitudes.
type Cost struct {
	// CompressBps / DecompressBps model gzip in the blob database. The
	// paper's Fig. 6 attributes a CPU peak to "loading and decompressing
	// the file from the database".
	CompressBps   float64
	DecompressBps float64
	// ServiceBuild models the ANT build + aar packaging burst of Fig. 8.
	ServiceBuild time.Duration
	// JobSubmit models job-description generation plus the GRAM submit
	// round (the second CPU peak of Fig. 6).
	JobSubmit time.Duration
	// Auth models credential retrieval/verification CPU.
	Auth time.Duration
	// RequestHandling models servlet-container overhead per HTTP request
	// ("tomcat handling the request and loading the java-classes").
	RequestHandling time.Duration
	// ReceiveBps models per-byte CPU spent receiving and buffering an
	// upload ("the CPU utilization is very high due to the reception and
	// storage of the file", Fig. 8 commentary).
	ReceiveBps float64
}

// DefaultCost returns the calibration used by the experiments.
func DefaultCost() Cost {
	return Cost{
		CompressBps:     8 << 20,  // 8 MB/s gzip on a 2010 core
		DecompressBps:   24 << 20, // decompression ~3x faster
		ServiceBuild:    2500 * time.Millisecond,
		JobSubmit:       1200 * time.Millisecond,
		Auth:            400 * time.Millisecond,
		RequestHandling: 300 * time.Millisecond,
		ReceiveBps:      32 << 20,
	}
}
