package metrics

import (
	"testing"
	"time"

	"repro/internal/vtime"
)

func TestRecorderReset(t *testing.T) {
	clk := vtime.NewManual(time.Unix(0, 0))
	rec := NewRecorder(clk, 3*time.Second)
	rec.Account(NetIn, clk.Now(), 100)
	clk.Advance(10 * time.Second)
	rec.Reset()
	if s := rec.Series(); s != nil {
		t.Fatalf("series after reset: %v", s)
	}
	// Post-reset accounting lands in bucket 0 relative to the new epoch.
	rec.Account(NetIn, clk.Now(), 50)
	s := rec.Series()
	if len(s) != 1 || s[0].NetInBytes != 50 || s[0].Start != 0 {
		t.Fatalf("post-reset series %+v", s)
	}
	if rec.Total(NetIn) != 50 {
		t.Fatalf("total %v", rec.Total(NetIn))
	}
}

func TestScaledMinSleep(t *testing.T) {
	c := vtime.NewScaled(100)
	if got := c.MinSleep(); got != 100*time.Millisecond {
		t.Fatalf("MinSleep %v, want 100ms (1ms real x100)", got)
	}
	if got := (vtime.Real{}).MinSleep(); got != time.Millisecond {
		t.Fatalf("real MinSleep %v", got)
	}
}

func TestProbeClockPassthrough(t *testing.T) {
	clk := vtime.NewManual(time.Unix(42, 0))
	rec := NewRecorder(clk, time.Second)
	p := NewProbe(rec)
	if !p.Clock().Now().Equal(time.Unix(42, 0)) {
		t.Fatal("probe clock not the recorder's clock")
	}
	if p.Recorder() != rec {
		t.Fatal("probe recorder lost")
	}
}
