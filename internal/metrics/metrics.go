// Package metrics implements the resource accounting used to regenerate
// the paper's evaluation figures. The paper sampled CPU utilisation,
// network I/O and hard-disk I/O of the onServe host at 3-second intervals
// (Figures 6-8); this package provides the equivalent sampler.
//
// Network byte counts are real: they are reported by the shaped
// connections in internal/netsim as traffic actually crosses the loopback
// sockets. CPU and disk are accounted through an explicit cost model
// (package-level operations call Probe methods), because measuring host
// CPU of a time-dilated run would be meaningless.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/vtime"
)

// Kind identifies a resource dimension tracked by a Recorder.
type Kind int

// Resource dimensions, matching the series plotted in the paper's figures.
const (
	CPU       Kind = iota // busy time, nanoseconds
	DiskRead              // bytes
	DiskWrite             // bytes
	NetIn                 // bytes
	NetOut                // bytes
	numKinds
)

// String returns the series name used in CSV headers.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu_busy"
	case DiskRead:
		return "disk_read"
	case DiskWrite:
		return "disk_write"
	case NetIn:
		return "net_in"
	case NetOut:
		return "net_out"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Recorder accumulates resource usage into fixed-width time buckets on a
// virtual clock. It is safe for concurrent use.
type Recorder struct {
	clock    vtime.Clock
	interval time.Duration
	epoch    time.Time

	mu      sync.Mutex
	buckets map[int64]*bucket
}

type bucket struct {
	vals [numKinds]float64
}

// NewRecorder returns a Recorder bucketing at the given interval (the
// paper uses 3 seconds). The epoch is the clock's time at construction, so
// bucket 0 starts when the experiment starts.
func NewRecorder(clock vtime.Clock, interval time.Duration) *Recorder {
	if interval <= 0 {
		panic("metrics: non-positive interval")
	}
	return &Recorder{
		clock:    clock,
		interval: interval,
		epoch:    clock.Now(),
		buckets:  make(map[int64]*bucket),
	}
}

// Interval reports the bucket width.
func (r *Recorder) Interval() time.Duration { return r.interval }

// Reset clears all buckets and moves the epoch to the clock's current
// time. Experiments call it after setup so the exported series starts at
// the moment the measured phase begins.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.buckets = make(map[int64]*bucket)
	r.epoch = r.clock.Now()
	r.mu.Unlock()
}

// Clock returns the recorder's clock, shared with components that need to
// timestamp or pace work consistently with the sampler.
func (r *Recorder) Clock() vtime.Clock { return r.clock }

// Account adds amount of kind at instant at.
func (r *Recorder) Account(k Kind, at time.Time, amount float64) {
	if amount == 0 {
		return
	}
	idx := r.index(at)
	r.mu.Lock()
	r.get(idx).vals[k] += amount
	r.mu.Unlock()
}

// AccountSpan spreads amount of kind uniformly over [start, start+dur),
// splitting across bucket boundaries. A zero dur degenerates to Account.
func (r *Recorder) AccountSpan(k Kind, start time.Time, dur time.Duration, amount float64) {
	if amount == 0 {
		return
	}
	if dur <= 0 {
		r.Account(k, start, amount)
		return
	}
	end := start.Add(dur)
	perNano := amount / float64(dur)
	r.mu.Lock()
	defer r.mu.Unlock()
	for cur := start; cur.Before(end); {
		idx := r.index(cur)
		bEnd := r.epoch.Add(time.Duration(idx+1) * r.interval)
		segEnd := bEnd
		if end.Before(bEnd) {
			segEnd = end
		}
		r.get(idx).vals[k] += perNano * float64(segEnd.Sub(cur))
		cur = segEnd
	}
}

func (r *Recorder) index(at time.Time) int64 {
	d := at.Sub(r.epoch)
	if d < 0 {
		return 0
	}
	return int64(d / r.interval)
}

// get returns the bucket for idx, creating it. Caller holds r.mu.
func (r *Recorder) get(idx int64) *bucket {
	b := r.buckets[idx]
	if b == nil {
		b = &bucket{}
		r.buckets[idx] = b
	}
	return b
}

// Sample is one bucket of the exported time series.
type Sample struct {
	// Start is the offset of the bucket from the experiment epoch.
	Start time.Duration
	// CPUPct is CPU utilisation in percent of one core over the bucket.
	CPUPct float64
	// DiskReadBytes and DiskWriteBytes are bytes moved during the bucket.
	DiskReadBytes  float64
	DiskWriteBytes float64
	// NetInBytes and NetOutBytes are bytes received/sent during the bucket.
	NetInBytes  float64
	NetOutBytes float64
}

// Series returns all buckets from the epoch through the last non-empty
// bucket, densely (empty buckets included so plots show idle gaps).
func (r *Recorder) Series() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buckets) == 0 {
		return nil
	}
	var maxIdx int64
	keys := make([]int64, 0, len(r.buckets))
	for k := range r.buckets {
		keys = append(keys, k)
		if k > maxIdx {
			maxIdx = k
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Sample, maxIdx+1)
	for i := int64(0); i <= maxIdx; i++ {
		s := Sample{Start: time.Duration(i) * r.interval}
		if b := r.buckets[i]; b != nil {
			s.CPUPct = 100 * b.vals[CPU] / float64(r.interval)
			s.DiskReadBytes = b.vals[DiskRead]
			s.DiskWriteBytes = b.vals[DiskWrite]
			s.NetInBytes = b.vals[NetIn]
			s.NetOutBytes = b.vals[NetOut]
		}
		out[i] = s
	}
	return out
}

// Total sums every bucket of kind k.
func (r *Recorder) Total(k Kind) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t float64
	for _, b := range r.buckets {
		t += b.vals[k]
	}
	return t
}

// CSV renders the series in the column layout used by EXPERIMENTS.md.
func CSV(series []Sample) string {
	var sb strings.Builder
	sb.WriteString("t_sec,cpu_pct,disk_read_b,disk_write_b,net_in_b,net_out_b\n")
	for _, s := range series {
		fmt.Fprintf(&sb, "%.0f,%.1f,%.0f,%.0f,%.0f,%.0f\n",
			s.Start.Seconds(), s.CPUPct, s.DiskReadBytes, s.DiskWriteBytes, s.NetInBytes, s.NetOutBytes)
	}
	return sb.String()
}

// Chart renders one series as a fixed-height ASCII chart, the terminal
// stand-in for the paper's figures.
func Chart(title, unit string, series []Sample, pick func(Sample) float64) string {
	const height = 8
	var maxV float64
	vals := make([]float64, len(series))
	for i, s := range series {
		vals[i] = pick(s)
		if vals[i] > maxV {
			maxV = vals[i]
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (peak %.4g %s, %d buckets of %gs)\n", title, maxV, unit,
		len(series), bucketSeconds(series))
	if maxV == 0 {
		sb.WriteString("  (flat zero)\n")
		return sb.String()
	}
	for row := height; row >= 1; row-- {
		thresh := maxV * (float64(row) - 0.5) / height
		sb.WriteString("  |")
		for _, v := range vals {
			if v >= thresh {
				sb.WriteByte('#')
			} else if v > 0 && row == 1 {
				sb.WriteByte('.')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("  +")
	sb.WriteString(strings.Repeat("-", len(vals)))
	sb.WriteString("> t\n")
	return sb.String()
}

func bucketSeconds(series []Sample) float64 {
	if len(series) < 2 {
		return math.NaN()
	}
	return (series[1].Start - series[0].Start).Seconds()
}
