package blobdb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/trace"
)

// layoutManifest declares a sharded directory. Its presence is the
// commit point for layout migrations: when it exists the sharded files
// are authoritative and any legacy wal.log/snapshot.db is stale; when it
// is absent the directory is a stock layout and any wal-<s>-<seg>.log /
// snapshot-<s>.db files are leftovers of a migration that never
// committed.
type layoutManifest struct {
	Shards int `json:"shards"`
}

// recover loads whatever layout the directory holds into the configured
// shard count, migrating the files in place when the counts differ, and
// leaves every shard with an open live WAL.
func (db *DB) recover() error {
	sp := db.tracer.StartRoot("db.replay")
	sp.SetInt("shards", int64(len(db.shards)))
	err := db.recoverLayout(sp)
	if err != nil {
		sp.Error(err.Error())
	}
	sp.End()
	return err
}

func (db *DB) recoverLayout(sp *trace.Span) error {
	db.cleanTempFiles()
	have, err := db.readManifest()
	if err != nil {
		return err
	}
	want := len(db.shards)
	if have != want {
		sp.Set("migrate", fmt.Sprintf("%d->%d", have, want))
		return db.migrate(have)
	}
	if !db.sharded {
		n, err := db.shards[0].recoverStock()
		sp.SetInt("entries", n)
		return err
	}
	// Sharded, matching count: replay the shards in parallel — each one
	// reads only its own snapshot and segments.
	var wg sync.WaitGroup
	errs := make([]error, len(db.shards))
	counts := make([]int64, len(db.shards))
	for i, s := range db.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			counts[i], errs[i] = s.recoverSharded()
		}(i, s)
	}
	wg.Wait()
	var total int64
	for i, err := range errs {
		if err != nil {
			return err
		}
		total += counts[i]
	}
	sp.SetInt("entries", total)
	// A sharded->stock migration that crashed after writing its full
	// legacy snapshot but before removing the manifest leaves stale stock
	// files behind; the manifest said this layout wins.
	return db.removeStockFiles()
}

func (db *DB) readManifest() (int, error) {
	raw, err := os.ReadFile(filepath.Join(db.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return 1, nil
	}
	if err != nil {
		return 0, fmt.Errorf("blobdb: read manifest: %w", err)
	}
	var m layoutManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.Shards < 2 {
		return 0, fmt.Errorf("%w: manifest shard count %d", ErrCorrupt, m.Shards)
	}
	return m.Shards, nil
}

func (db *DB) writeManifest() error {
	tmp, err := os.CreateTemp(db.dir, "snaptmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	raw, _ := json.Marshal(layoutManifest{Shards: len(db.shards)})
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(db.dir, manifestName)); err != nil {
		return err
	}
	return fsyncDir(db.dir)
}

// recoverStock replays the legacy snapshot + single WAL into shard 0 and
// opens the WAL for appending. A torn final WAL entry — the expected
// crash artifact — is truncated away, so post-recovery appends continue
// a clean log instead of burying garbage mid-file; corruption earlier in
// the log is reported.
func (s *shard) recoverStock() (int64, error) {
	db := s.db
	// Leftover sharded files from a migration that crashed before its
	// manifest landed: this directory is authoritatively stock.
	if err := db.removeShardedFiles(); err != nil {
		return 0, err
	}
	var entries int64
	apply := func(e *walEntry) {
		entries++
		s.apply(e, -1)
	}
	if err := replayPath(filepath.Join(db.dir, snapshotName), true, "snapshot", apply); err != nil {
		return entries, err
	}
	walPath := filepath.Join(db.dir, walName)
	if f, err := os.Open(walPath); err == nil {
		_, good, torn, rerr := replayReader(f, false, apply)
		f.Close()
		if rerr != nil {
			return entries, fmt.Errorf("%w: wal: %v", ErrCorrupt, rerr)
		}
		if torn {
			if err := os.Truncate(walPath, good); err != nil {
				return entries, fmt.Errorf("blobdb: truncate torn wal: %w", err)
			}
		}
		s.segBytes = good
	} else if !errors.Is(err, os.ErrNotExist) {
		return entries, fmt.Errorf("blobdb: open wal: %w", err)
	}
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return entries, fmt.Errorf("blobdb: open wal: %w", err)
	}
	s.wal = newWALFile(wal)
	return entries, nil
}

// recoverSharded replays one shard's snapshot and segments, rebuilds its
// per-segment liveness counts, truncates torn tails, and opens the
// highest segment for appending. Segments below the snapshot's floor are
// superseded leftovers (compaction unlinks them lazily) and are removed.
func (s *shard) recoverSharded() (int64, error) {
	db := s.db
	s.segs = make(map[int]*segMeta)
	s.tombs = make(map[string]int)
	var entries int64
	floor := 0
	snapApply := func(e *walEntry) {
		if e.Op == opFloor {
			floor = e.RawSize
			return
		}
		entries++
		s.apply(e, -1)
	}
	if err := replayPath(filepath.Join(db.dir, shardSnapshotFile(s.idx)), true, "snapshot", snapApply); err != nil {
		return entries, err
	}
	segList, err := listSegments(db.dir, s.idx)
	if err != nil {
		return entries, err
	}
	maxSeg := -1
	for _, seg := range segList {
		path := filepath.Join(db.dir, segmentFile(s.idx, seg))
		if seg < floor {
			if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
				return entries, err
			}
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return entries, fmt.Errorf("blobdb: open segment: %w", err)
		}
		_, good, torn, rerr := replayReader(f, false, func(e *walEntry) {
			entries++
			s.apply(e, seg)
		})
		f.Close()
		if rerr != nil {
			return entries, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), rerr)
		}
		if torn {
			// One torn tail per segment is tolerated; truncating keeps the
			// file consistent with what replay consumed.
			if err := os.Truncate(path, good); err != nil {
				return entries, fmt.Errorf("blobdb: truncate torn segment: %w", err)
			}
		}
		m := s.segMeta(seg)
		m.bytes = good
		maxSeg = seg
	}
	if maxSeg < 0 {
		s.seg = floor
	} else {
		s.seg = maxSeg
	}
	live := s.segMeta(s.seg)
	for i, m := range s.segs {
		m.sealed = i != s.seg
	}
	s.segBytes = live.bytes
	f, err := os.OpenFile(filepath.Join(db.dir, segmentFile(s.idx, s.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return entries, fmt.Errorf("blobdb: open segment: %w", err)
	}
	s.wal = newWALFile(f)
	return entries, nil
}

// migrate rewrites the directory from a have-shard layout into the
// configured one. Whole-file snapshots are written and made durable
// before anything old is unlinked; the manifest create/remove is the
// atomic flip. Per-key entry ordering survives any regrouping because a
// key's entries all live in one stream of the old layout.
func (db *DB) migrate(have int) error {
	want := len(db.shards)
	apply := func(e *walEntry) {
		if e.Op == opFloor {
			return
		}
		db.shardFor(e.Table, e.Key).apply(e, -1)
	}
	// 1. Replay the old layout into the new in-memory partitioning.
	if have == 1 {
		if err := replayPath(filepath.Join(db.dir, snapshotName), true, "snapshot", apply); err != nil {
			return err
		}
		if err := replayPath(filepath.Join(db.dir, walName), false, "wal", apply); err != nil {
			return err
		}
	} else {
		for i := 0; i < have; i++ {
			floor := 0
			if err := replayPath(filepath.Join(db.dir, shardSnapshotFile(i)), true, "snapshot", func(e *walEntry) {
				if e.Op == opFloor {
					floor = e.RawSize
					return
				}
				apply(e)
			}); err != nil {
				return err
			}
			segList, err := listSegments(db.dir, i)
			if err != nil {
				return err
			}
			for _, seg := range segList {
				if seg < floor {
					continue
				}
				if err := replayPath(filepath.Join(db.dir, segmentFile(i, seg)), false, "segment", apply); err != nil {
					return err
				}
			}
		}
		// 2. Collapse through the stock layout: one full snapshot, durable
		// before the manifest flip makes it authoritative.
		if err := db.writeStockSnapshot(); err != nil {
			return err
		}
		if err := os.Remove(filepath.Join(db.dir, manifestName)); err != nil {
			return err
		}
		if err := fsyncDir(db.dir); err != nil {
			return err
		}
		if err := db.removeShardedFiles(); err != nil {
			return err
		}
	}
	if want == 1 {
		// Collapse done: the stock snapshot covers everything; open an
		// empty WAL (any old wal.log content was folded in and must not
		// replay).
		s := db.shards[0]
		wal, err := os.OpenFile(filepath.Join(db.dir, walName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("blobdb: open wal: %w", err)
		}
		s.wal = newWALFile(wal)
		return fsyncDir(db.dir)
	}
	// 3. Expand stock -> sharded: per-shard snapshots, then the manifest
	// flip, then the legacy files go.
	if err := db.removeShardedFiles(); err != nil { // crashed earlier attempt
		return err
	}
	for _, s := range db.shards {
		if err := db.writeShardSnapshot(s); err != nil {
			return err
		}
	}
	if err := fsyncDir(db.dir); err != nil {
		return err
	}
	if err := db.writeManifest(); err != nil {
		return err
	}
	if err := db.removeStockFiles(); err != nil {
		return err
	}
	for _, s := range db.shards {
		s.segs = make(map[int]*segMeta)
		s.tombs = make(map[string]int)
		f, err := os.OpenFile(filepath.Join(db.dir, segmentFile(s.idx, 0)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("blobdb: open segment: %w", err)
		}
		s.seg = 0
		s.segBytes = 0
		s.segMeta(0)
		s.wal = newWALFile(f)
	}
	return nil
}

// writeStockSnapshot writes every shard's state into one legacy
// snapshot.db (temp + sync + rename + dir fsync).
func (db *DB) writeStockSnapshot() error {
	return db.writeSnapshotFile(snapshotName, -1, func(emit func(*walEntry) error) error {
		for _, s := range db.shards {
			if err := emitTables(s.tables, emit); err != nil {
				return err
			}
		}
		return nil
	})
}

func (db *DB) writeShardSnapshot(s *shard) error {
	if shardLen(s) == 0 {
		return nil // replay treats a missing snapshot as empty
	}
	return db.writeSnapshotFile(shardSnapshotFile(s.idx), -1, func(emit func(*walEntry) error) error {
		return emitTables(s.tables, emit)
	})
}

func shardLen(s *shard) int {
	n := 0
	for _, rows := range s.tables {
		n += len(rows)
	}
	return n
}

func emitTables(tables map[string]map[string]*row, emit func(*walEntry) error) error {
	for table, rows := range tables {
		for key, r := range rows {
			e := &walEntry{Op: "put", Table: table, Key: key, Meta: r.meta,
				Comp: r.comp, RawSize: r.rawSize, StoredAt: r.storedAt}
			if err := emit(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSnapshotFile writes entries to a temp file, syncs, renames to
// name, and fsyncs the directory. floor >= 0 prepends a floor entry.
func (db *DB) writeSnapshotFile(name string, floor int, fill func(emit func(*walEntry) error) error) error {
	tmp, err := os.CreateTemp(db.dir, "snaptmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if floor >= 0 {
		if err := writeEntry(bw, &walEntry{Op: opFloor, RawSize: floor}); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := fill(func(e *walEntry) error { return writeEntry(bw, e) }); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(db.dir, name)); err != nil {
		return err
	}
	return fsyncDir(db.dir)
}

// --- directory helpers ---

// listSegments returns shard idx's segment indexes, ascending.
func listSegments(dir string, idx int) ([]int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("wal-%d-*.log", idx)))
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, m := range matches {
		sh, seg, ok := parseSegmentName(filepath.Base(m))
		if !ok || sh != idx {
			return nil, fmt.Errorf("%w: unexpected wal file %s", ErrCorrupt, filepath.Base(m))
		}
		segs = append(segs, seg)
	}
	sort.Ints(segs)
	return segs, nil
}

func parseSegmentName(name string) (shard, seg int, ok bool) {
	var sh, sg int
	n, err := fmt.Sscanf(name, "wal-%d-%d.log", &sh, &sg)
	if err != nil || n != 2 {
		return 0, 0, false
	}
	if name != segmentFile(sh, sg) && name != fmt.Sprintf("wal-%d-%d.log", sh, sg) {
		return 0, 0, false
	}
	return sh, sg, true
}

func (db *DB) removeStockFiles() error {
	for _, name := range []string{walName, snapshotName} {
		if err := os.Remove(filepath.Join(db.dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return fsyncDir(db.dir)
}

// removeShardedFiles unlinks every wal-<s>-<seg>.log and snapshot-<s>.db
// in the directory, whatever the shard count that produced them.
func (db *DB) removeShardedFiles() error {
	ents, err := os.ReadDir(db.dir)
	if err != nil {
		return err
	}
	removed := false
	for _, ent := range ents {
		name := ent.Name()
		if _, _, ok := parseSegmentName(name); ok {
			if err := os.Remove(filepath.Join(db.dir, name)); err != nil {
				return err
			}
			removed = true
			continue
		}
		var idx int
		if n, err := fmt.Sscanf(name, "snapshot-%d.db", &idx); err == nil && n == 1 && name == shardSnapshotFile(idx) {
			if err := os.Remove(filepath.Join(db.dir, name)); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return fsyncDir(db.dir)
	}
	return nil
}

// cleanTempFiles drops snapshot temp files left by a crash mid-write.
func (db *DB) cleanTempFiles() {
	matches, _ := filepath.Glob(filepath.Join(db.dir, "snaptmp-*"))
	for _, m := range matches {
		os.Remove(m)
	}
}

// --- replay ---

// replayPath replays one file if it exists. strict files (snapshots,
// written atomically) must not tear; tolerant ones may tear at the tail.
func replayPath(path string, strict bool, kind string, apply func(*walEntry)) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("blobdb: open %s: %w", kind, err)
	}
	defer f.Close()
	_, _, torn, rerr := replayReader(f, strict, apply)
	if rerr != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, kind, rerr)
	}
	_ = torn
	return nil
}

// replayReader applies entries from r. strict controls whether a torn
// tail is an error; otherwise it is reported via torn, with good set to
// the offset after the last whole entry.
func replayReader(r io.Reader, strict bool, apply func(*walEntry)) (entries, good int64, torn bool, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	for {
		e, n, rerr := readEntry(br)
		if errors.Is(rerr, io.EOF) {
			return entries, good, false, nil
		}
		if errors.Is(rerr, io.ErrUnexpectedEOF) {
			if strict {
				return entries, good, false, io.ErrUnexpectedEOF
			}
			return entries, good, true, nil
		}
		if rerr != nil {
			return entries, good, false, rerr
		}
		apply(e)
		entries++
		good += n
	}
}
