// Package blobdb is the appliance's database, standing in for the MySQL
// instance of the paper: "A database stores the uploaded executables"
// (§V). It is a table-oriented blob store. Records hold a metadata map
// plus a gzip-compressed blob — compression is load-bearing for the
// reproduction, because Fig. 6 attributes a CPU peak to "loading and
// decompressing the file from the database".
//
// Durability follows the classic WAL + snapshot recipe: every mutation is
// appended to a write-ahead log before it is applied, Compact folds the
// state into a snapshot and truncates the log, and Open replays snapshot
// then log. Opening with an empty directory yields a purely in-memory
// store.
package blobdb

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

// File names inside the database directory.
const (
	walName      = "wal.log"
	snapshotName = "snapshot.db"
)

// MaxBlobBytes bounds one stored blob.
const MaxBlobBytes = 256 << 20

// Errors.
var (
	ErrNotFound  = errors.New("blobdb: no such record")
	ErrTooLarge  = errors.New("blobdb: blob exceeds size limit")
	ErrClosed    = errors.New("blobdb: database closed")
	ErrCorrupt   = errors.New("blobdb: corrupt log or snapshot")
	ErrBadrecord = errors.New("blobdb: record needs a key")
)

// Record is a stored row, returned with the blob decompressed.
type Record struct {
	Key            string
	Meta           map[string]string
	Blob           []byte
	StoredAt       time.Time
	CompressedSize int
}

// row is the in-memory representation (blob kept compressed).
type row struct {
	meta     map[string]string
	comp     []byte // gzip-compressed blob
	rawSize  int
	storedAt time.Time
	// gen is the row's generation, bumped on every put; the decompressed-
	// blob cache keys on it so stale inflations never serve.
	gen uint64
}

// walEntry is one log record.
type walEntry struct {
	Op       string            `json:"op"` // "put" | "delete"
	Table    string            `json:"table"`
	Key      string            `json:"key"`
	Meta     map[string]string `json:"meta,omitempty"`
	Comp     []byte            `json:"comp,omitempty"` // gzip bytes (JSON base64)
	RawSize  int               `json:"raw_size,omitempty"`
	StoredAt time.Time         `json:"stored_at,omitempty"`
}

// DB is the database handle. All methods are safe for concurrent use.
type DB struct {
	dir   string
	clock vtime.Clock
	probe *metrics.Probe
	cost  metrics.Cost

	mu     sync.RWMutex
	tables map[string]map[string]*row
	wal    *os.File
	closed bool
	genSeq uint64 // generation counter for rows
	// walWrites / walSyncs count WAL write and fsync calls (group-commit
	// batching makes walWrites < puts under concurrency).
	walWrites int64
	walSyncs  int64

	cache *blobCache      // decompressed-blob LRU; nil when disabled
	gc    *groupCommitter // WAL group commit; nil when disabled
}

// Options configures Open.
type Options struct {
	// Dir is the storage directory; empty means in-memory only.
	Dir string
	// Clock timestamps records; nil means real time.
	Clock vtime.Clock
	// Probe accounts CPU (compress/decompress) and disk traffic; may be nil.
	Probe *metrics.Probe
	// Cost supplies the compression CPU rates; zero rates disable burning.
	Cost metrics.Cost
	// BlobCacheBytes bounds a decompressed-blob LRU in front of Get;
	// repeat reads of an unchanged record skip the disk read and gzip
	// inflate (and their modelled costs). Zero disables the cache — the
	// paper-faithful behaviour, where every load decompresses.
	BlobCacheBytes int64
	// GroupCommit batches concurrent WAL appends into one write with a
	// single fsync (append-before-apply preserved). Off by default: the
	// stock path performs one unsynced write per mutation, as the paper's
	// MySQL stand-in did. Only effective for persistent databases.
	GroupCommit bool
}

// Open opens (creating or recovering) a database.
func Open(opts Options) (*DB, error) {
	clock := opts.Clock
	if clock == nil {
		clock = vtime.Real{}
	}
	db := &DB{
		dir:    opts.Dir,
		clock:  clock,
		probe:  opts.Probe,
		cost:   opts.Cost,
		tables: make(map[string]map[string]*row),
	}
	if opts.BlobCacheBytes > 0 {
		db.cache = newBlobCache(opts.BlobCacheBytes)
	}
	if opts.Dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("blobdb: create dir: %w", err)
	}
	if err := db.recover(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(opts.Dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blobdb: open wal: %w", err)
	}
	db.wal = wal
	if opts.GroupCommit {
		db.gc = startGroupCommitter(db)
	}
	return db, nil
}

// recover loads the snapshot (if any) and replays the WAL. A torn final
// WAL entry — the expected crash artifact — is tolerated and discarded;
// corruption earlier in the log is reported.
func (db *DB) recover() error {
	snap := filepath.Join(db.dir, snapshotName)
	if f, err := os.Open(snap); err == nil {
		err = db.replay(f, true)
		f.Close()
		if err != nil {
			return fmt.Errorf("%w: snapshot: %v", ErrCorrupt, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("blobdb: open snapshot: %w", err)
	}
	wal := filepath.Join(db.dir, walName)
	if f, err := os.Open(wal); err == nil {
		err = db.replay(f, false)
		f.Close()
		if err != nil {
			return fmt.Errorf("%w: wal: %v", ErrCorrupt, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("blobdb: open wal: %w", err)
	}
	return nil
}

// replay applies entries from r. strict controls whether a torn tail is
// an error (snapshots are written atomically, so yes; WALs may tear).
func (db *DB) replay(r io.Reader, strict bool) error {
	br := newByteReader(r)
	for {
		entry, err := readEntry(br)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if errors.Is(err, io.ErrUnexpectedEOF) && !strict {
			return nil // torn tail after a crash: drop it
		}
		if err != nil {
			return err
		}
		db.apply(entry)
	}
}

func (db *DB) apply(e *walEntry) {
	t := db.tables[e.Table]
	if t == nil {
		t = make(map[string]*row)
		db.tables[e.Table] = t
	}
	switch e.Op {
	case "put":
		db.genSeq++
		t[e.Key] = &row{meta: e.Meta, comp: e.Comp, rawSize: e.RawSize, storedAt: e.StoredAt, gen: db.genSeq}
	case "delete":
		delete(t, e.Key)
	}
	if db.cache != nil {
		db.cache.invalidate(e.Table + "\x00" + e.Key)
	}
}

// Table returns a handle for the named table (created on first write).
func (db *DB) Table(name string) *Table { return &Table{db: db, name: name} }

// TableNames lists tables with at least one row, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for name, rows := range db.tables {
		if len(rows) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Close flushes and closes the WAL. Further use returns ErrClosed.
func (db *DB) Close() error {
	if db.gc != nil {
		db.gc.shutdown() // flushes everything queued before the WAL closes
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.wal != nil {
		if err := db.wal.Sync(); err != nil {
			db.wal.Close()
			return err
		}
		return db.wal.Close()
	}
	return nil
}

// Compact writes a snapshot of current state and truncates the WAL. The
// snapshot is written to a temp file and renamed, so a crash mid-compact
// leaves the previous snapshot+WAL intact.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(db.dir, "snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	for table, rows := range db.tables {
		for key, r := range rows {
			e := &walEntry{Op: "put", Table: table, Key: key, Meta: r.meta,
				Comp: r.comp, RawSize: r.rawSize, StoredAt: r.storedAt}
			if err := writeEntry(tmp, e); err != nil {
				tmp.Close()
				return err
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(db.dir, snapshotName)); err != nil {
		return err
	}
	// Truncate the WAL now that the snapshot covers everything.
	if db.wal != nil {
		db.wal.Close()
	}
	wal, err := os.OpenFile(filepath.Join(db.dir, walName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	db.wal = wal
	return nil
}

// Table is a handle on one table.
type Table struct {
	db   *DB
	name string
}

// Put stores (or replaces) a record. The blob is gzip-compressed; the
// compression CPU and the WAL disk write are accounted to the probe.
func (t *Table) Put(key string, meta map[string]string, blob []byte) error {
	if key == "" {
		return ErrBadrecord
	}
	if len(blob) > MaxBlobBytes {
		return ErrTooLarge
	}
	db := t.db
	// Compress outside the lock: CPU-bound.
	db.probe.BurnFor(len(blob), db.cost.CompressBps)
	var cbuf bytes.Buffer
	// BestSpeed: the compression *cost model* lives in the probe burn
	// above; the real gzip pass only needs to shrink the stored bytes,
	// and keeping it cheap avoids polluting time-dilated experiment runs
	// with real CPU time.
	zw := gzipWriterPool.Get().(*gzip.Writer)
	zw.Reset(&cbuf)
	if _, err := zw.Write(blob); err != nil {
		gzipWriterPool.Put(zw)
		return err
	}
	if err := zw.Close(); err != nil {
		gzipWriterPool.Put(zw)
		return err
	}
	gzipWriterPool.Put(zw)
	metaCopy := make(map[string]string, len(meta))
	for k, v := range meta {
		metaCopy[k] = v
	}
	entry := &walEntry{
		Op: "put", Table: t.name, Key: key, Meta: metaCopy,
		Comp: cbuf.Bytes(), RawSize: len(blob), StoredAt: db.clock.Now(),
	}
	if db.gc != nil {
		return db.gc.commit(entry)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.log(entry); err != nil {
		return err
	}
	db.apply(entry)
	return nil
}

// log appends an entry to the WAL (if persistent) and accounts the disk
// write either way — the paper's DB writes hit disk whether or not our
// test process does.
func (db *DB) log(e *walEntry) error {
	var n int
	if db.wal != nil {
		buf := walBufPool.Get().(*bytes.Buffer)
		buf.Reset()
		if err := writeEntry(buf, e); err != nil {
			walBufPool.Put(buf)
			return err
		}
		n = buf.Len()
		_, err := db.wal.Write(buf.Bytes())
		walBufPool.Put(buf)
		if err != nil {
			return err
		}
		db.walWrites++
	} else {
		n = len(e.Comp) + 128
	}
	db.probe.DiskWrite(n)
	return nil
}

// Get returns the record with the blob decompressed. The disk read of the
// compressed bytes and the decompression CPU are accounted.
func (t *Table) Get(key string) (*Record, error) {
	t.db.mu.RLock()
	if t.db.closed {
		t.db.mu.RUnlock()
		return nil, ErrClosed
	}
	r, ok := t.db.tables[t.name][key]
	t.db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, t.name, key)
	}
	db := t.db
	meta := make(map[string]string, len(r.meta))
	for k, v := range r.meta {
		meta[k] = v
	}
	cacheKey := t.name + "\x00" + key
	if db.cache != nil {
		if blob, ok := db.cache.get(cacheKey, r.gen); ok {
			// Hit: no disk read, no inflate, no modelled cost — the repeat-
			// invocation CPU peak the cache exists to remove.
			return &Record{
				Key: key, Meta: meta, Blob: blob,
				StoredAt: r.storedAt, CompressedSize: len(r.comp),
			}, nil
		}
	}
	db.probe.DiskRead(len(r.comp))
	db.probe.BurnFor(r.rawSize, db.cost.DecompressBps)
	zr, err := pooledGzipReader(bytes.NewReader(r.comp))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	out := bytes.NewBuffer(make([]byte, 0, r.rawSize))
	_, err = io.Copy(out, io.LimitReader(zr, MaxBlobBytes+1))
	gzipReaderPool.Put(zr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	blob := out.Bytes()
	if db.cache != nil {
		db.cache.put(cacheKey, r.gen, blob)
	}
	return &Record{
		Key: key, Meta: meta, Blob: blob,
		StoredAt: r.storedAt, CompressedSize: len(r.comp),
	}, nil
}

// GetCompressed returns a copy of the record's stored gzip bytes and the
// decompressed size, without inflating. Only the disk read of the
// compressed bytes is accounted — this is the cheap path the
// wire-compression staging mode uses to ship the stored stream as-is.
func (t *Table) GetCompressed(key string) (comp []byte, rawSize int, err error) {
	t.db.mu.RLock()
	if t.db.closed {
		t.db.mu.RUnlock()
		return nil, 0, ErrClosed
	}
	r, ok := t.db.tables[t.name][key]
	t.db.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s/%s", ErrNotFound, t.name, key)
	}
	t.db.probe.DiskRead(len(r.comp))
	comp = make([]byte, len(r.comp))
	copy(comp, r.comp)
	return comp, r.rawSize, nil
}

// BlobCacheStats reports the decompressed-blob LRU's counters; all zero
// when the cache is disabled.
func (db *DB) BlobCacheStats() (hits, misses, bytes int64) {
	if db.cache == nil {
		return 0, 0, 0
	}
	return db.cache.stats()
}

// WALStats reports WAL write and fsync call counts. With group commit
// enabled, writes stay below the mutation count under concurrency.
func (db *DB) WALStats() (writes, syncs int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.walWrites, db.walSyncs
}

// Stat returns metadata without touching the blob (no decompression).
func (t *Table) Stat(key string) (*Record, error) {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	if t.db.closed {
		return nil, ErrClosed
	}
	r, ok := t.db.tables[t.name][key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, t.name, key)
	}
	meta := make(map[string]string, len(r.meta))
	for k, v := range r.meta {
		meta[k] = v
	}
	return &Record{
		Key: key, Meta: meta,
		StoredAt: r.storedAt, CompressedSize: len(r.comp),
	}, nil
}

// Delete removes a record.
func (t *Table) Delete(key string) error {
	entry := &walEntry{Op: "delete", Table: t.name, Key: key}
	if t.db.gc != nil {
		t.db.mu.RLock()
		_, ok := t.db.tables[t.name][key]
		t.db.mu.RUnlock()
		if !ok {
			return fmt.Errorf("%w: %s/%s", ErrNotFound, t.name, key)
		}
		return t.db.gc.commit(entry)
	}
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if t.db.closed {
		return ErrClosed
	}
	if _, ok := t.db.tables[t.name][key]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, t.name, key)
	}
	if err := t.db.log(entry); err != nil {
		return err
	}
	t.db.apply(entry)
	return nil
}

// Keys lists the table's keys, sorted.
func (t *Table) Keys() []string {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	rows := t.db.tables[t.name]
	out := make([]string, 0, len(rows))
	for k := range rows {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of rows.
func (t *Table) Len() int {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return len(t.db.tables[t.name])
}

// --- codec pools ---

// The gzip codecs and WAL encode buffers are pooled: Put/Get/log run on
// the invocation hot path, and per-call allocation of a gzip state
// machine (~1.4 MB for writers) dominated their profiles.
var (
	gzipWriterPool = sync.Pool{New: func() any {
		w, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return w
	}}
	gzipReaderPool sync.Pool
	walBufPool     = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

// pooledGzipReader returns a reset pooled reader (or a fresh one) over r.
// Return it with gzipReaderPool.Put when done.
func pooledGzipReader(r io.Reader) (*gzip.Reader, error) {
	if zr, _ := gzipReaderPool.Get().(*gzip.Reader); zr != nil {
		if err := zr.Reset(r); err != nil {
			gzipReaderPool.Put(zr)
			return nil, err
		}
		return zr, nil
	}
	return gzip.NewReader(r)
}

// --- wire format: 4-byte big-endian length + JSON ---

func writeEntry(w io.Writer, e *walEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(b)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

type byteReader struct{ r io.Reader }

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

func readEntry(br *byteReader) (*walEntry, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br.r, lenBuf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxBlobBytes*2 {
		return nil, fmt.Errorf("%w: entry of %d bytes", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br.r, buf); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	var e walEntry
	if err := json.Unmarshal(buf, &e); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &e, nil
}
